package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// The golden corpus pins the -quick output of every registered experiment
// byte-for-byte: testdata/golden/<id>.json holds exactly the bytes
// `ohmfig -quick -json <id>` prints — which are also exactly the bytes
// the ohmserve daemon serves for the same job, whether the cells ran
// in-process or on distributed workers (internal/dist's e2e test compares
// against the same files). Any model change that alters a report shows up
// here as a diff on a committed artifact instead of a silent drift.
//
// Regenerate after an intentional model change with:
//
//	go test -run TestGoldenReports -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current simulator")

func TestGoldenReports(t *testing.T) {
	drivers := experiments.Drivers()
	if len(drivers) == 0 {
		t.Fatal("no registered experiments")
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range drivers {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			// RunParams is the exact ohmfig -quick path; the package-level
			// shared runner caches cells across drivers (figs 16-19
			// overlap), so the whole corpus costs one sweep, not twenty.
			res, err := d.RunParams(experiments.Params{Quick: true})
			if err != nil {
				t.Fatalf("run %s: %v", d.ID, err)
			}
			var buf bytes.Buffer
			if err := experiments.EncodeResultJSON(&buf, d.ID, res); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", d.ID+".json")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestGoldenReports -update-golden .`): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s drifted from its golden report (%d vs %d bytes).\n%s",
					d.ID, buf.Len(), len(want), firstDiff(buf.Bytes(), want))
			}
		})
	}
}

// firstDiff locates the first divergent byte for a readable failure.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			hiG, hiW := i+60, i+60
			if hiG > len(got) {
				hiG = len(got)
			}
			if hiW > len(want) {
				hiW = len(want)
			}
			return fmt.Sprintf("first diff at byte %d:\n got: …%s…\nwant: …%s…", i, got[lo:hiG], want[lo:hiW])
		}
	}
	return fmt.Sprintf("one output is a prefix of the other (lengths %d vs %d)", len(got), len(want))
}
