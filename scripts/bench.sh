#!/usr/bin/env bash
# scripts/bench.sh — run the perf-trajectory benchmark suite and emit a
# machine-readable BENCH_<n>.json at the repo root.
#
# Usage:
#   scripts/bench.sh            # writes BENCH_9.json
#   scripts/bench.sh BENCH_10.json
#
# The suite covers four layers:
#   - kernel:   BenchmarkKernelSchedule* (steady-state event loop, allocs/op)
#   - cell:     BenchmarkKernelColdCell / BenchmarkKernelWarmCell and
#               BenchmarkSingleRun/* (one end-to-end simulation)
#   - sweep:    BenchmarkSweepCold / BenchmarkSweepWarm (a real grid through
#               batch.Runner; cells/sec and allocs/cell gate the run-state
#               pool against per-cell allocation regressions)
#   - figures:  BenchmarkFig3 (the motivation study; warm iterations hit the
#               in-process result cache, so run it cold-aware via benchtime)
#   - twin:     BenchmarkTwinCell (one closed-form analytical cell; the
#               acceptance bar is >=10^3x cheaper than a warm DES cell)
#
# Each PR that changes a hot path re-runs this script and commits the new
# BENCH_<n>.json, so the perf trajectory is recorded next to the code.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_9.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP" "$OUT.tmp"' EXIT

echo "bench: kernel steady state" >&2
go test -run='^$' -bench='BenchmarkKernelSchedule' -benchmem -benchtime=300000x . | tee -a "$TMP" >&2
echo "bench: single cells" >&2
go test -run='^$' -bench='BenchmarkKernel.*Cell|BenchmarkSingleRun' -benchmem -benchtime=5x . | tee -a "$TMP" >&2
echo "bench: sweep grid (cold simulate + warm result cache)" >&2
go test -run='^$' -bench='BenchmarkSweepCold$|BenchmarkSweepWarm$' -benchmem -benchtime=5x . | tee -a "$TMP" >&2
echo "bench: figure driver (cold first iteration + warm cache)" >&2
go test -run='^$' -bench='BenchmarkFig3$' -benchmem -benchtime=3x . | tee -a "$TMP" >&2
echo "bench: analytical twin (one closed-form cell)" >&2
go test -run='^$' -bench='BenchmarkTwinCell$' -benchmem -benchtime=10000x ./internal/twin | tee -a "$TMP" >&2
echo "bench: micro (sim/cache/stats/dram/optical)" >&2
go test -run='^$' -bench='.' -benchmem -benchtime=10000x \
  ./internal/sim ./internal/cache ./internal/stats ./internal/dram ./internal/optical | tee -a "$TMP" >&2
echo "bench: trace generation and registry" >&2
go test -run='^$' -bench='.' -benchmem -benchtime=20x ./internal/trace | tee -a "$TMP" >&2

# Parse the accumulated `go test -bench` output into JSON. Any Benchmark
# line the parser cannot extract ns/op (or iterations) from aborts the
# whole script with a non-zero exit — a partial or empty snapshot must
# never be written, because benchcheck and the committed perf trajectory
# both treat these files as complete.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go version | awk '{print $3}')" '
BEGIN { n = 0; bad = 0 }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  iters = $2; ns = ""; bytes = ""; allocs = ""; apc = ""; cps = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
    if ($(i+1) == "allocs/cell") apc = $i
    if ($(i+1) == "cells/sec") cps = $i
  }
  if (ns == "" || iters !~ /^[0-9]+$/) {
    printf "bench.sh: cannot parse benchmark line: %s\n", $0 > "/dev/stderr"
    bad = 1; exit 1
  }
  names[n] = name; its[n] = iters; nss[n] = ns; bs[n] = bytes; as[n] = allocs
  apcs[n] = apc; cpss[n] = cps; n++
}
END {
  if (bad) exit 1
  if (n == 0) {
    print "bench.sh: no benchmark lines found in the test output" > "/dev/stderr"
    exit 1
  }
  printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, gover
  for (i = 0; i < n; i++) {
    printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", names[i], its[i], nss[i]
    if (bs[i] != "") printf ", \"b_per_op\": %s", bs[i]
    if (as[i] != "") printf ", \"allocs_per_op\": %s", as[i]
    if (apcs[i] != "") printf ", \"allocs_per_cell\": %s", apcs[i]
    if (cpss[i] != "") printf ", \"cells_per_sec\": %s", cpss[i]
    printf "}%s\n", (i < n-1 ? "," : "")
  }
  printf "  ]\n}\n"
}' "$TMP" > "$OUT.tmp"

# The snapshot must decode (-benches '' -sweep-benches '' makes benchcheck
# a pure decode check, so recording a baseline with intentionally changed
# benchmarks still works), and only lands under its real name once complete.
go run ./scripts/benchcheck -baseline "$OUT.tmp" -current "$OUT.tmp" -benches '' -sweep-benches '' >/dev/null
mv "$OUT.tmp" "$OUT"

echo "bench: wrote $OUT" >&2
