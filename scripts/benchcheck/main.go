// Command benchcheck compares a freshly generated scripts/bench.sh
// snapshot against the committed baseline and fails (exit 1) when a
// guarded hot path regresses:
//
//   - a guarded benchmark is missing from either file,
//   - a guarded kernel benchmark (-benches) reports allocs_per_op > 0
//     (the allocation-free kernel guarantees of PR 2),
//   - a guarded kernel benchmark's ns/op exceeds -max-ratio times the
//     baseline (default 2x: tolerates CI-runner noise on nanosecond-scale
//     benchmarks while catching algorithmic regressions),
//   - a guarded sweep benchmark (-sweep-benches) exceeds -sweep-max-ratio
//     times the baseline ns/op (default 1.3x: grid-scale runs are long
//     enough to be stable, so the gate is tighter), or
//   - a guarded sweep benchmark's allocs/cell regresses at all versus the
//     baseline (the run-state pool makes this metric deterministic, so
//     any growth is a real leak of per-cell allocations).
//
// When the baseline and current snapshots were produced by different Go
// major.minor versions, ratio checks still run but a warning is printed:
// toolchain changes legitimately move both ns/op and allocation counts,
// so a failure right after a toolchain bump may just need a re-baseline.
//
// Usage:
//
//	go run ./scripts/benchcheck -baseline BENCH_8.json -current /tmp/BENCH_CI.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// snapshot mirrors the JSON scripts/bench.sh emits.
type snapshot struct {
	Date       string  `json:"date"`
	Go         string  `json:"go"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Name          string   `json:"name"`
	Iters         int64    `json:"iters"`
	NsPerOp       float64  `json:"ns_per_op"`
	BPerOp        *float64 `json:"b_per_op"`
	AllocsPerOp   *float64 `json:"allocs_per_op"`
	AllocsPerCell *float64 `json:"allocs_per_cell"`
	CellsPerSec   *float64 `json:"cells_per_sec"`
}

func load(path string) (map[string]entry, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, "", fmt.Errorf("%s: no benchmarks recorded", path)
	}
	m := make(map[string]entry, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		m[b.Name] = b
	}
	return m, s.Go, nil
}

// majorMinor reduces a `go version` token like "go1.22.4" to "go1.22".
func majorMinor(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

// allocsSlack absorbs the 4-significant-figure rounding bench.sh's parser
// inherits from the testing package's metric printer; any larger growth in
// allocs/cell fails the sweep gate.
const allocsSlack = 1.001

func main() {
	baseline := flag.String("baseline", "BENCH_8.json", "committed baseline snapshot")
	current := flag.String("current", "", "freshly generated snapshot to check")
	benches := flag.String("benches",
		"BenchmarkKernelScheduleID,BenchmarkAccess,BenchmarkAddEnergyHandle",
		"comma-separated guarded kernel benchmark names (0 allocs/op + ns/op ratio)")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when kernel ns/op exceeds baseline by this factor")
	sweepBenches := flag.String("sweep-benches", "BenchmarkSweepCold",
		"comma-separated guarded sweep benchmark names (ns/op ratio + allocs/cell)")
	sweepMaxRatio := flag.Float64("sweep-max-ratio", 1.3, "fail when sweep ns/op exceeds baseline by this factor")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -current is required")
		os.Exit(2)
	}

	base, baseGo, err := load(*baseline)
	if err != nil {
		fatal("load baseline: %v", err)
	}
	cur, curGo, err := load(*current)
	if err != nil {
		fatal("load current: %v", err)
	}
	if bmm, cmm := majorMinor(baseGo), majorMinor(curGo); bmm != cmm {
		fmt.Fprintf(os.Stderr,
			"benchcheck: WARNING: baseline recorded with %s, current run uses %s — "+
				"ratio failures below may reflect the toolchain change; re-baseline with scripts/bench.sh if so\n",
			baseGo, curGo)
	}

	failed := false
	lookup := func(name string) (entry, entry, bool) {
		b, okB := base[name]
		c, okC := cur[name]
		if !okB {
			fail(&failed, "%s: missing from baseline %s", name, *baseline)
		}
		if !okC {
			fail(&failed, "%s: missing from current %s (did the benchmark get renamed or dropped?)", name, *current)
		}
		return b, c, okB && okC
	}

	for _, name := range strings.Split(*benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			// -benches '' validates only that both snapshots decode and are
			// non-empty (bench.sh's post-generation sanity check).
			continue
		}
		b, c, ok2 := lookup(name)
		if !ok2 {
			continue
		}
		ok := true
		if c.AllocsPerOp == nil {
			ok = false
			fail(&failed, "%s: current run has no allocs_per_op (run with -benchmem)", name)
		} else if *c.AllocsPerOp > 0 {
			ok = false
			fail(&failed, "%s: %g allocs/op, guarded paths must stay allocation-free", name, *c.AllocsPerOp)
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(*maxRatio) {
			ok = false
			fail(&failed, "%s: %.4g ns/op vs baseline %.4g ns/op (> %.1fx)",
				name, c.NsPerOp, b.NsPerOp, *maxRatio)
		}
		if ok {
			fmt.Printf("benchcheck: %-28s %.4g ns/op (baseline %.4g, ratio %.2f) ok\n",
				name, c.NsPerOp, b.NsPerOp, c.NsPerOp/b.NsPerOp)
		}
	}

	for _, name := range strings.Split(*sweepBenches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, c, ok2 := lookup(name)
		if !ok2 {
			continue
		}
		ok := true
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(*sweepMaxRatio) {
			ok = false
			fail(&failed, "%s: %.4g ns/op vs baseline %.4g ns/op (> %.2fx)",
				name, c.NsPerOp, b.NsPerOp, *sweepMaxRatio)
		}
		switch {
		case b.AllocsPerCell == nil:
			ok = false
			fail(&failed, "%s: baseline %s has no allocs_per_cell (re-record with scripts/bench.sh)", name, *baseline)
		case c.AllocsPerCell == nil:
			ok = false
			fail(&failed, "%s: current run has no allocs_per_cell", name)
		case *c.AllocsPerCell > *b.AllocsPerCell*allocsSlack:
			ok = false
			fail(&failed, "%s: %.4g allocs/cell vs baseline %.4g — per-cell allocations must not regress",
				name, *c.AllocsPerCell, *b.AllocsPerCell)
		}
		if ok {
			fmt.Printf("benchcheck: %-28s %.4g ns/op (baseline %.4g, ratio %.2f), %.4g allocs/cell ok\n",
				name, c.NsPerOp, b.NsPerOp, c.NsPerOp/b.NsPerOp, *c.AllocsPerCell)
		}
	}

	if failed {
		os.Exit(1)
	}
}

func fail(failed *bool, format string, args ...interface{}) {
	*failed = true
	fmt.Fprintf(os.Stderr, "benchcheck: FAIL: "+format+"\n", args...)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(2)
}
