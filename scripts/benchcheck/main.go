// Command benchcheck compares a freshly generated scripts/bench.sh
// snapshot against the committed baseline and fails (exit 1) when a
// guarded hot path regresses:
//
//   - a guarded benchmark is missing from either file,
//   - a guarded benchmark reports allocs_per_op > 0 (the allocation-free
//     kernel guarantees of PR 2), or
//   - ns/op exceeds -max-ratio times the baseline (a gross slowdown;
//     the default 2x tolerates CI-runner noise on nanosecond-scale
//     benchmarks while catching algorithmic regressions).
//
// Usage:
//
//	go run ./scripts/benchcheck -baseline BENCH_2.json -current /tmp/BENCH_CI.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// snapshot mirrors the JSON scripts/bench.sh emits.
type snapshot struct {
	Date       string  `json:"date"`
	Go         string  `json:"go"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Name        string   `json:"name"`
	Iters       int64    `json:"iters"`
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      *float64 `json:"b_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	m := make(map[string]entry, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		m[b.Name] = b
	}
	return m, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_2.json", "committed baseline snapshot")
	current := flag.String("current", "", "freshly generated snapshot to check")
	benches := flag.String("benches",
		"BenchmarkKernelScheduleID,BenchmarkAccess,BenchmarkAddEnergyHandle",
		"comma-separated guarded benchmark names")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when ns/op exceeds baseline by this factor")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -current is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fatal("load baseline: %v", err)
	}
	cur, err := load(*current)
	if err != nil {
		fatal("load current: %v", err)
	}

	failed := false
	for _, name := range strings.Split(*benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			// -benches '' validates only that both snapshots decode and are
			// non-empty (bench.sh's post-generation sanity check).
			continue
		}
		b, okB := base[name]
		c, okC := cur[name]
		switch {
		case !okB:
			fail(&failed, "%s: missing from baseline %s", name, *baseline)
			continue
		case !okC:
			fail(&failed, "%s: missing from current %s (did the benchmark get renamed or dropped?)", name, *current)
			continue
		}
		ok := true
		if c.AllocsPerOp == nil {
			ok = false
			fail(&failed, "%s: current run has no allocs_per_op (run with -benchmem)", name)
		} else if *c.AllocsPerOp > 0 {
			ok = false
			fail(&failed, "%s: %g allocs/op, guarded paths must stay allocation-free", name, *c.AllocsPerOp)
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(*maxRatio) {
			ok = false
			fail(&failed, "%s: %.4g ns/op vs baseline %.4g ns/op (> %.1fx)",
				name, c.NsPerOp, b.NsPerOp, *maxRatio)
		}
		if ok {
			fmt.Printf("benchcheck: %-28s %.4g ns/op (baseline %.4g, ratio %.2f) ok\n",
				name, c.NsPerOp, b.NsPerOp, c.NsPerOp/b.NsPerOp)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fail(failed *bool, format string, args ...interface{}) {
	*failed = true
	fmt.Fprintf(os.Stderr, "benchcheck: FAIL: "+format+"\n", args...)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(2)
}
