#!/usr/bin/env bash
# Real-process distributed e2e for the ohmserve coordinator/worker
# protocol. Spins one coordinator (pure dispatcher: -local-cells -1, so
# every cell MUST travel) and two worker processes, then asserts the
# acceptance criteria end to end:
#
#   1. a fig16 -quick experiment dispatched across both workers returns
#      bytes identical to `ohmfig -quick -json fig16`;
#   2. a warm resubmit reports 0 fresh simulations;
#   3. kill -9 on one worker mid-sweep still completes the job, with the
#      result byte-identical to a single-process `ohmbatch` run;
#   4. /metrics on the coordinator AND on a worker serves valid Prometheus
#      text (scraped mid-sweep too), with the key series — cells completed,
#      leases granted, cache hits — consistent with the job results above;
#   5. kill -9 on the COORDINATOR mid-sweep, restarted on the same cache
#      dir + journal, replays the in-flight job under its original id: the
#      surviving worker re-registers, pre-crash cells come from the cache,
#      and the result is byte-identical to a single-process run;
#   6. an optimizer job (POST /v1/optimize) run against the 2-worker
#      cluster returns bytes identical to `ohmbatch -optimize` on the same
#      spec, with the mode-split completion counters accounted;
#   7. a coordinator restarted with a tight per-tenant rate answers
#      over-quota submissions 429 + Retry-After (admission metrics
#      accounted), and a tight -cache-max-bytes budget evicts on startup
#      (eviction metrics accounted).
#
# CI runs this; it also works locally: scripts/dist_e2e.sh
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

echo "== building"
go build -o "$work/ohmserve" ./cmd/ohmserve
go build -o "$work/ohmfig" ./cmd/ohmfig
go build -o "$work/ohmbatch" ./cmd/ohmbatch

addr="127.0.0.1:18099"
base="http://$addr"
w2metrics="http://127.0.0.1:18100"

# start_coord [extra flags...]: (re)start the coordinator on the same
# address, cache dir and journal, wait for healthz, record its pid in
# $coord. Restarting on the same dirs is exactly the crash-recovery path.
coord=""
start_coord() {
    "$work/ohmserve" -addr "$addr" -cache "$work/coord-cache" -local-cells -1 \
        -lease-ttl 3s -lease-poll 2s "$@" >>"$work/coord.log" 2>&1 &
    coord=$!
    pids+=($coord)
    for _ in $(seq 1 100); do
        curl -fsS "$base/v1/healthz" >/dev/null 2>&1 && break
        sleep 0.1
    done
    curl -fsS "$base/v1/healthz" >/dev/null
}

echo "== starting coordinator ($addr, pure dispatch)"
start_coord

echo "== starting 2 workers"
"$work/ohmserve" -worker -join "$base" -worker-name w1 -cache "$work/w1-cache" >"$work/w1.log" 2>&1 &
w1=$!
pids+=($w1)
"$work/ohmserve" -worker -join "$base" -worker-name w2 -cache "$work/w2-cache" \
    -metrics-addr "${w2metrics#http://}" >"$work/w2.log" 2>&1 &
pids+=($!)

# submit <json-body> -> job id
submit() {
    curl -fsS -X POST "$base/v1/sweeps" -d "$1" |
        python3 -c 'import sys,json; print(json.load(sys.stdin)["id"])'
}
# field <job> <field> -> value (empty when omitted, e.g. omitempty bools)
field() {
    curl -fsS "$base/v1/jobs/$1" |
        python3 -c "import sys,json; print(json.load(sys.stdin).get(\"$2\",\"\"))"
}
# mval <base-url> <literal-series> -> value (0 when the series is absent)
mval() {
    curl -fsS "$1/metrics" | python3 -c '
import sys
s = sys.argv[1]
v = "0"
for line in sys.stdin:
    if line.startswith(s + " "):
        v = line.rsplit(" ", 1)[1].strip()
        break
print(v)' "$2"
}
# msum <base-url> <family> -> sum over every series of the family,
# labeled or not (ohm_cells_completed_total is split by {mode=...}).
msum() {
    curl -fsS "$1/metrics" | python3 -c '
import sys
name = sys.argv[1]
tot = 0.0
for line in sys.stdin:
    if line.startswith(name + "{") or line.startswith(name + " "):
        tot += float(line.rsplit(" ", 1)[1])
print(int(tot) if tot == int(tot) else tot)' "$2"
}
# assert_ge <value> <floor> <label>
assert_ge() {
    python3 -c 'import sys; sys.exit(0 if float(sys.argv[1]) >= float(sys.argv[2]) else 1)' "$1" "$2" ||
        { echo "metric $3 = $1, want >= $2" >&2; exit 1; }
}
# assert_eq <value> <want> <label>
assert_eq() {
    python3 -c 'import sys; sys.exit(0 if float(sys.argv[1]) == float(sys.argv[2]) else 1)' "$1" "$2" ||
        { echo "metric $3 = $1, want exactly $2" >&2; exit 1; }
}
# check_expo <base-url> <label>: the body must be well-formed Prometheus
# text — every sample line parses and every family has HELP and TYPE.
check_expo() {
    curl -fsS "$1/metrics" | python3 -c '
import re, sys
helps, types, samples = set(), set(), 0
sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? -?[0-9.eE+-]+$")
name = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*")
for line in sys.stdin.read().splitlines():
    if not line:
        continue
    if line.startswith("# HELP "):
        helps.add(line.split()[2]); continue
    if line.startswith("# TYPE "):
        types.add(line.split()[2]); continue
    assert sample.match(line), f"malformed sample line: {line!r}"
    fam = re.sub(r"_(sum|count|bucket)$", "", name.match(line).group(0))
    assert fam in helps and fam in types, f"family {fam} lacks HELP/TYPE"
    samples += 1
assert samples > 0, "empty exposition"
print(f"   {sys.argv[1]}: valid exposition ({samples} samples)")' "$2"
}

# wait_done <job> <timeout-seconds>
wait_done() {
    local job=$1 budget=$2 state
    for _ in $(seq 1 $((budget * 5))); do
        state=$(field "$job" state)
        case "$state" in
        done) return 0 ;;
        failed | cancelled)
            echo "job $job ended $state" >&2
            curl -fsS "$base/v1/jobs/$job" >&2 || true
            return 1
            ;;
        esac
        sleep 0.2
    done
    echo "job $job timed out" >&2
    return 1
}

echo "== 1. fig16 -quick across 2 workers vs ohmfig"
job=$(submit '{"experiment":"fig16","params":{"quick":true}}')
wait_done "$job" 300
curl -fsS "$base/v1/jobs/$job/result" >"$work/fig16.dist.json"
"$work/ohmfig" -quick -json fig16 >"$work/fig16.local.json"
cmp "$work/fig16.dist.json" "$work/fig16.local.json"
echo "   byte-identical ($(wc -c <"$work/fig16.dist.json") bytes)"
# Snapshot the coordinator's mode-split completion counter before the
# warm rerun: the exactly-once assert below checks the delta.
cold_cc=$(msum "$base" ohm_cells_completed_total)

echo "== 2. warm resubmit answers from the coordinator cache"
job=$(submit '{"experiment":"fig16","params":{"quick":true}}')
wait_done "$job" 120
simulated=$(field "$job" simulated)
if [ "$simulated" != "0" ]; then
    echo "warm resubmit simulated $simulated cells, want 0" >&2
    exit 1
fi
curl -fsS "$base/v1/jobs/$job/result" | cmp - "$work/fig16.local.json"
echo "   0 fresh simulations, bytes identical"
warm_cells=$(field "$job" cells_done)

echo "== metrics: coordinator after cold+warm runs"
check_expo "$base" coordinator
# The cold run dispatched every cell remotely (pure dispatcher), so leases
# were granted and remote completions flowed back; the warm run answered
# every cell from the coordinator's cache through the dispatcher's hit path.
assert_ge "$(mval "$base" ohm_dist_leases_granted_total)" 1 ohm_dist_leases_granted_total
assert_ge "$(mval "$base" ohm_dist_remote_completed_total)" 1 ohm_dist_remote_completed_total
assert_ge "$(mval "$base" ohm_dist_workers_connected)" 2 ohm_dist_workers_connected
assert_ge "$(mval "$base" ohm_dist_cache_hits_total)" "$warm_cells" ohm_dist_cache_hits_total
assert_ge "$(mval "$base" 'ohm_jobs_finished_total{state="done"}')" 2 'ohm_jobs_finished_total{state=done}'
# Mode-split completion accounting must neither drop nor double for
# cluster-resolved cells: the cold run counted nothing here (every cell
# executed — and was counted — on a worker), and the warm run resolved
# every cell through the dispatcher's cache fast path, each of which must
# land in ohm_cells_completed{mode} exactly once.
warm_cc=$(msum "$base" ohm_cells_completed_total)
assert_eq "$((warm_cc - cold_cc))" "$warm_cells" "coordinator ohm_cells_completed delta over warm rerun"
echo "   leases granted, remote completions and $warm_cells+ cache hits accounted"
echo "   warm rerun counted exactly once in ohm_cells_completed ($cold_cc -> $warm_cc)"

echo "== 3. kill -9 one worker mid-sweep"
# Cells sized to run ~1-2s each so every worker is provably mid-cell when
# the kill lands: w1 must die *holding leases*, or the expiry/requeue
# asserts below race against a too-fast sweep.
spec='{"platforms":["origin","ohm-base","ohm-bw"],"modes":["planar"],"workloads":["lud","bfsdata","pagerank"],"max_instructions":150000}'
job=$(submit "{\"spec\":$spec}")
# Let the sweep get going, then hard-kill w1 (no deregister, no
# heartbeat): its leases must expire and the cells requeue onto w2.
sleep 1
kill -9 "$w1" 2>/dev/null || true
echo "== metrics: scraped mid-sweep on coordinator and surviving worker"
check_expo "$base" coordinator
check_expo "$w2metrics" worker
wait_done "$job" 300
curl -fsS "$base/v1/jobs/$job/result" >"$work/killed.dist.json"
echo "$spec" >"$work/kill.spec.json"
"$work/ohmbatch" -spec "$work/kill.spec.json" -cache "$work/batch-cache" -q -o "$work/killed.local.json"
cmp "$work/killed.dist.json" "$work/killed.local.json"
echo "   job survived the kill; bytes identical to ohmbatch"

echo "== metrics: worker-side counters consistent with the job results"
# w2 is the only runner left (pure dispatcher + dead w1): it must have
# completed cells, and the kill must show up as expired leases + requeues
# on the coordinator.
# The completion counter is split by execution mode; a worker runs DES
# cells, so the labeled series must be live (the unlabeled family name
# alone matches nothing since the mode label was added).
assert_ge "$(mval "$w2metrics" 'ohm_cells_completed_total{mode="des"}')" 1 'worker ohm_cells_completed_total{mode=des}'
assert_ge "$(mval "$base" ohm_dist_leases_expired_total)" 1 ohm_dist_leases_expired_total
assert_ge "$(mval "$base" ohm_dist_requeued_total)" 1 ohm_dist_requeued_total
echo "   worker completions, lease expiries and requeues all visible"

echo "== 4. kill -9 the COORDINATOR mid-sweep, restart, replay the job"
# Fresh cells (distinct from every earlier phase) sized to run seconds
# each, so the coordinator provably dies with the sweep in flight.
spec='{"platforms":["origin","ohm-base","ohm-bw"],"modes":["planar"],"workloads":["sssp","betw","gctopo"],"max_instructions":400000}'
job=$(submit "{\"spec\":$spec}")
# Wait until at least one cell is durably finished (journaled + cached),
# then hard-kill the coordinator: no drain, no journal close.
for _ in $(seq 1 300); do
    [ "$(field "$job" cells_done)" != "0" ] && break
    sleep 0.1
done
kill -9 "$coord" 2>/dev/null || true
wait "$coord" 2>/dev/null || true
echo "   coordinator killed with $job in flight; restarting on the same journal"
start_coord
state=$(field "$job" state)
if [ -z "$state" ]; then
    echo "job $job did not survive the restart" >&2
    exit 1
fi
wait_done "$job" 300
if [ "$(field "$job" replayed)" != "True" ]; then
    echo "job $job finished without the replayed marker" >&2
    exit 1
fi
hits=$(field "$job" cache_hits)
assert_ge "$hits" 1 "replayed job cache_hits (pre-crash cells must survive)"
curl -fsS "$base/v1/jobs/$job/result" >"$work/replayed.dist.json"
echo "$spec" >"$work/replay.spec.json"
"$work/ohmbatch" -spec "$work/replay.spec.json" -cache "$work/batch-cache" -q -o "$work/replayed.local.json"
cmp "$work/replayed.dist.json" "$work/replayed.local.json"
echo "   replayed with $hits pre-crash cells from cache; bytes identical to ohmbatch"
assert_ge "$(mval "$base" 'ohm_journal_replayed_jobs_total{disposition="requeued"}')" 1 'ohm_journal_replayed_jobs_total{disposition=requeued}'

echo "== 5. optimizer job across 2 workers vs single-process ohmbatch -optimize"
# Restore a 2-worker cluster (w1 died in phase 3): the optimizer's
# analytical inner loop runs on the coordinator, but its DES confirmation
# cells are keyed and must travel through the dispatcher. The frontier —
# and the full decision log — must come out byte-identical to a
# single-process run of the same spec from a cold cache.
"$work/ohmserve" -worker -join "$base" -worker-name w3 -cache "$work/w3-cache" >"$work/w3.log" 2>&1 &
pids+=($!)
optspec="examples/specs/optimize-throughput.json"
"$work/ohmbatch" -optimize "$optspec" -cache "$work/opt-cache" -q -o "$work/opt.local.json"
job=$(curl -fsS -X POST "$base/v1/optimize" -d @"$optspec" |
    python3 -c 'import sys,json; print(json.load(sys.stdin)["id"])')
wait_done "$job" 300
curl -fsS "$base/v1/jobs/$job/result" >"$work/opt.dist.json"
cmp "$work/opt.dist.json" "$work/opt.local.json"
frontier=$(python3 -c 'import json,sys; r=json.load(open(sys.argv[1])); print(len(r["frontier"]))' "$work/opt.dist.json")
assert_ge "$frontier" 1 "optimizer frontier size"
# The optimizer's evaluations are analytical-twin cells resolved on the
# coordinator; the mode-split counter must carry them under
# {mode="analytical"} (the dispatcher short-circuits analytical cells to
# the local runner, and that path must not drop them).
assert_ge "$(mval "$base" 'ohm_cells_completed_total{mode="analytical"}')" 1 'coordinator ohm_cells_completed_total{mode=analytical}'
echo "   optimizer result byte-identical to single-process ($frontier frontier points)"

echo "== 6. over-quota submissions answer 429; tight cache budget evicts"
kill -9 "$coord" 2>/dev/null || true
wait "$coord" 2>/dev/null || true
start_coord -tenant-rate 0.001 -tenant-burst 2 -cache-max-bytes 4KB
assert_ge "$(mval "$base" ohm_cache_evictions_total)" 1 ohm_cache_evictions_total
assert_ge "$(mval "$base" ohm_cache_reclaimed_bytes_total)" 1 ohm_cache_reclaimed_bytes_total
echo "   startup GC evicted down to the 4KB budget"
tiny='{"spec":{"platforms":["origin"],"modes":["planar"],"workloads":["lud"],"max_instructions":150000}}'
j1=$(submit "$tiny")
j2=$(submit "$tiny")
code=$(curl -sS -o "$work/reject.json" -w '%{http_code}' -X POST "$base/v1/sweeps" -d "$tiny")
if [ "$code" != "429" ]; then
    echo "over-burst submit = HTTP $code, want 429: $(cat "$work/reject.json")" >&2
    exit 1
fi
retry=$(curl -sS -o /dev/null -D - -X POST "$base/v1/sweeps" -d "$tiny" |
    tr -d '\r' | awk 'tolower($1)=="retry-after:" {print $2}')
assert_ge "${retry:-0}" 1 "Retry-After header seconds"
python3 -c '
import json,sys
r = json.load(open(sys.argv[1]))
assert r["reason"] == "rate_limited", r
assert r["tenant"] == "default", r
assert r["retry_after_seconds"] >= 1, r' "$work/reject.json"
check_expo "$base" coordinator
assert_ge "$(mval "$base" ohm_admission_accepted_total'{tenant="default"}')" 2 'ohm_admission_accepted_total{tenant=default}'
assert_ge "$(mval "$base" ohm_admission_rejected_total'{tenant="default",reason="rate_limited"}')" 1 ohm_admission_rejected_total
assert_ge "$(mval "$base" ohm_admission_tenants)" 1 ohm_admission_tenants
wait_done "$j1" 120
wait_done "$j2" 120
echo "   429 + Retry-After with machine-readable reason; admission series accounted"

echo "== distributed e2e OK"
