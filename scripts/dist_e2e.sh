#!/usr/bin/env bash
# Real-process distributed e2e for the ohmserve coordinator/worker
# protocol. Spins one coordinator (pure dispatcher: -local-cells -1, so
# every cell MUST travel) and two worker processes, then asserts the
# acceptance criteria end to end:
#
#   1. a fig16 -quick experiment dispatched across both workers returns
#      bytes identical to `ohmfig -quick -json fig16`;
#   2. a warm resubmit reports 0 fresh simulations;
#   3. kill -9 on one worker mid-sweep still completes the job, with the
#      result byte-identical to a single-process `ohmbatch` run.
#
# CI runs this; it also works locally: scripts/dist_e2e.sh
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

echo "== building"
go build -o "$work/ohmserve" ./cmd/ohmserve
go build -o "$work/ohmfig" ./cmd/ohmfig
go build -o "$work/ohmbatch" ./cmd/ohmbatch

addr="127.0.0.1:18099"
base="http://$addr"

echo "== starting coordinator ($addr, pure dispatch)"
"$work/ohmserve" -addr "$addr" -cache "$work/coord-cache" -local-cells -1 \
    -lease-ttl 3s -lease-poll 2s >"$work/coord.log" 2>&1 &
pids+=($!)

for _ in $(seq 1 100); do
    curl -fsS "$base/v1/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "$base/v1/healthz" >/dev/null

echo "== starting 2 workers"
"$work/ohmserve" -worker -join "$base" -worker-name w1 -cache "$work/w1-cache" >"$work/w1.log" 2>&1 &
w1=$!
pids+=($w1)
"$work/ohmserve" -worker -join "$base" -worker-name w2 -cache "$work/w2-cache" >"$work/w2.log" 2>&1 &
pids+=($!)

# submit <json-body> -> job id
submit() {
    curl -fsS -X POST "$base/v1/sweeps" -d "$1" |
        python3 -c 'import sys,json; print(json.load(sys.stdin)["id"])'
}
# field <job> <field> -> value
field() {
    curl -fsS "$base/v1/jobs/$1" |
        python3 -c "import sys,json; print(json.load(sys.stdin)[\"$2\"])"
}
# wait_done <job> <timeout-seconds>
wait_done() {
    local job=$1 budget=$2 state
    for _ in $(seq 1 $((budget * 5))); do
        state=$(field "$job" state)
        case "$state" in
        done) return 0 ;;
        failed | cancelled)
            echo "job $job ended $state" >&2
            curl -fsS "$base/v1/jobs/$job" >&2 || true
            return 1
            ;;
        esac
        sleep 0.2
    done
    echo "job $job timed out" >&2
    return 1
}

echo "== 1. fig16 -quick across 2 workers vs ohmfig"
job=$(submit '{"experiment":"fig16","params":{"quick":true}}')
wait_done "$job" 300
curl -fsS "$base/v1/jobs/$job/result" >"$work/fig16.dist.json"
"$work/ohmfig" -quick -json fig16 >"$work/fig16.local.json"
cmp "$work/fig16.dist.json" "$work/fig16.local.json"
echo "   byte-identical ($(wc -c <"$work/fig16.dist.json") bytes)"

echo "== 2. warm resubmit answers from the coordinator cache"
job=$(submit '{"experiment":"fig16","params":{"quick":true}}')
wait_done "$job" 120
simulated=$(field "$job" simulated)
if [ "$simulated" != "0" ]; then
    echo "warm resubmit simulated $simulated cells, want 0" >&2
    exit 1
fi
curl -fsS "$base/v1/jobs/$job/result" | cmp - "$work/fig16.local.json"
echo "   0 fresh simulations, bytes identical"

echo "== 3. kill -9 one worker mid-sweep"
spec='{"platforms":["origin","ohm-base","ohm-bw"],"modes":["planar"],"workloads":["lud","bfsdata","pagerank"],"max_instructions":3500}'
job=$(submit "{\"spec\":$spec}")
# Let the sweep get going, then hard-kill w1 (no deregister, no
# heartbeat): its leases must expire and the cells requeue onto w2.
sleep 1
kill -9 "$w1" 2>/dev/null || true
wait_done "$job" 300
curl -fsS "$base/v1/jobs/$job/result" >"$work/killed.dist.json"
echo "$spec" >"$work/kill.spec.json"
"$work/ohmbatch" -spec "$work/kill.spec.json" -cache "$work/batch-cache" -q -o "$work/killed.local.json"
cmp "$work/killed.dist.json" "$work/killed.local.json"
echo "   job survived the kill; bytes identical to ohmbatch"

echo "== distributed e2e OK"
