// Command twincheck is the calibration-drift gate for the analytical
// twin: it replays every platform preset in both memory modes across the
// full Table II workload suite through both the event simulator and the
// closed-form twin, summarizes per-metric error statistics (MAPE, Pearson
// r, worst cell), and diffs them against the committed baseline
// testdata/twin/calibration.json. It exits non-zero when any metric's
// MAPE drifts more than calib.DriftTolerance from the baseline or its
// correlation falls — meaning the twin or the simulator changed behaviour
// and the baseline must be consciously re-committed.
//
// Usage:
//
//	go run ./scripts/twincheck                 # gate against the baseline
//	go run ./scripts/twincheck -update         # re-measure and rewrite it
//	go run ./scripts/twincheck -baseline PATH  # non-default baseline path
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/twin"
	"repro/internal/twin/calib"
)

func main() {
	baseline := flag.String("baseline", "testdata/twin/calibration.json", "committed calibration baseline")
	update := flag.Bool("update", false, "rewrite the baseline from a fresh measurement instead of gating")
	flag.Parse()

	pairs, err := calib.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "twincheck:", err)
		os.Exit(1)
	}
	fresh := calib.Summarize(pairs)
	printSummary(fresh)

	if *update {
		if err := calib.Save(*baseline, fresh); err != nil {
			fmt.Fprintln(os.Stderr, "twincheck:", err)
			os.Exit(1)
		}
		fmt.Printf("twincheck: baseline %s updated (%s, %d cells)\n", *baseline, fresh.ModelVersion, fresh.Cells)
		return
	}

	committed, err := calib.Load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "twincheck: %v (run with -update to create the baseline)\n", err)
		os.Exit(1)
	}
	if bad := calib.Compare(committed, fresh); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "twincheck: drift:", b)
		}
		os.Exit(1)
	}
	fmt.Printf("twincheck: calibration holds against %s (%s, %d cells, tolerance %.2f MAPE points)\n",
		*baseline, committed.ModelVersion, committed.Cells, calib.DriftTolerance)
}

func printSummary(s calib.Summary) {
	names := make([]string, 0, len(s.Metrics))
	for m := range s.Metrics {
		names = append(names, m)
	}
	sort.Strings(names)
	bars := twin.ErrorBars()
	for _, m := range names {
		e := s.Metrics[m]
		fmt.Printf("%-14s MAPE %5.1f%%  r %.3f  worst %6.1f%% %s  (reported error bar %.1f%%)\n",
			m, e.MAPE*100, e.Pearson, e.WorstErr*100, e.WorstCell, bars[m]*100)
	}
}
