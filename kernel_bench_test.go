// Root kernel benchmarks: the steady-state schedule->fire loop of the
// discrete-event engine, closure vs closure-free, plus a cold-cell
// end-to-end run. scripts/bench.sh records them into BENCH_<n>.json and CI
// runs a short -benchtime=100x smoke pass so they cannot bit-rot.
package main

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchChurn keeps the event population constant: every fired event
// schedules its successor — the simulator's steady state.
type benchChurn struct{ eng *sim.Engine }

func (c *benchChurn) Handle(arg uint64) {
	c.eng.ScheduleID(c.eng.Now()+sim.Time(1+arg%97), c, arg+1)
}

// BenchmarkKernelScheduleID measures the closure-free hot path. Expected
// steady state: 0 allocs/op.
func BenchmarkKernelScheduleID(b *testing.B) {
	eng := sim.NewEngine()
	h := &benchChurn{eng: eng}
	const population = 128
	for i := 0; i < population; i++ {
		eng.ScheduleID(sim.Time(i), h, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkKernelScheduleClosure measures the compatibility shim the way
// the old hot path used it: every reschedule allocates a fresh capturing
// closure (the former gpu.step pattern `func() { g.step(w) }`).
func BenchmarkKernelScheduleClosure(b *testing.B) {
	eng := sim.NewEngine()
	var reschedule func(arg uint64)
	reschedule = func(arg uint64) {
		eng.Schedule(eng.Now()+sim.Time(1+arg%97), func() { reschedule(arg + 1) })
	}
	const population = 128
	for i := 0; i < population; i++ {
		i := uint64(i)
		eng.Schedule(sim.Time(i), func() { reschedule(i) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkKernelColdCell is one full cold simulation — fresh system, fresh
// trace (the registry is bypassed via Generate) — the unit cost every sweep
// pays per uncached cell.
func BenchmarkKernelColdCell(b *testing.B) {
	cfg := config.Default(config.OhmBW, config.Planar)
	cfg.MaxInstructions = 2000
	w, ok := config.WorkloadByName("bfsdata")
	if !ok {
		b.Fatal("bfsdata missing")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := trace.Generate(w, &cfg)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sys.RunTrace(tr)
	}
}

// BenchmarkKernelWarmCell is the same cell with the shared trace registry
// warm — the steady-state unit cost of a large sweep.
func BenchmarkKernelWarmCell(b *testing.B) {
	cfg := config.Default(config.OhmBW, config.Planar)
	cfg.MaxInstructions = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RunWorkload("bfsdata"); err != nil {
			b.Fatal(err)
		}
	}
}
