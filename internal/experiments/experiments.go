// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section VI). Each driver returns a typed result with
// a Render method that prints the same rows/series the paper reports;
// cmd/ohmfig wires them to the command line and bench_test.go wraps them in
// testing.B benchmarks.
//
// Absolute numbers come from our simulator, not the authors' MacSim testbed;
// EXPERIMENTS.md records the paper-vs-measured comparison for every figure.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/stats"
)

// Options bounds an experiment's cost. The zero value means "full paper
// configuration": all ten Table II workloads at the default instruction
// budget.
type Options struct {
	// Workloads to evaluate; nil means all of Table II.
	Workloads []string
	// MaxInstructions per warp; 0 means the config default (20000).
	MaxInstructions int
	// Engine, when non-nil, routes the driver's cells to a caller-owned
	// runner with cancellation and progress reporting; nil uses the
	// package's shared runner. The ohmserve daemon sets it per job.
	Engine *Engine
}

// Engine overrides where a driver's cells execute. The serving layer gives
// every job its own cancellation context and progress feed while sharing
// one process-wide runner — and therefore one result cache, concurrency
// cap and single-flight table — across jobs.
type Engine struct {
	// Runner executes the cells; nil falls back to the shared runner.
	Runner *batch.Runner
	// Executor, when non-nil, runs cells instead of Runner.RunContext —
	// the seam the ohmserve coordinator uses to fan experiment cells out
	// to remote workers. Closure-carrying cells still execute wherever
	// the executor keeps its local runner.
	Executor batch.Executor
	// Ctx cancels cell scheduling; nil means context.Background().
	Ctx context.Context
	// Progress observes per-cell completions of every batch the driver
	// submits (figure drivers submit several sequential batches).
	Progress batch.Progress
}

func (o Options) workloads() []string {
	if len(o.Workloads) == 0 {
		return config.WorkloadNames()
	}
	return o.Workloads
}

func (o Options) apply(cfg *config.Config) {
	if o.MaxInstructions > 0 {
		cfg.MaxInstructions = o.MaxInstructions
	}
}

// sharedRunner is the batch engine every figure driver submits its cells
// to: full GOMAXPROCS parallelism plus a process-wide in-memory result
// cache, so figures that visit the same (platform, mode, workload) cell —
// Figures 16-19 overlap heavily — simulate it once per process.
var sharedRunner = batch.NewRunner(0, batch.NewMemCache())

// exec executes cells on the options' engine, defaulting to the shared
// parallel runner.
func (o Options) exec(cells []batch.Cell) ([]stats.Report, error) {
	eng := o.Engine
	if eng == nil {
		return sharedRunner.Run(cells)
	}
	ctx := eng.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if eng.Executor != nil {
		return eng.Executor.RunContext(ctx, cells, eng.Progress)
	}
	runner := eng.Runner
	if runner == nil {
		runner = sharedRunner
	}
	return runner.RunContext(ctx, cells, eng.Progress)
}

// cell builds one default-configured sweep cell.
func (o Options) cell(p config.Platform, m config.MemMode, w string) batch.Cell {
	cfg := config.Default(p, m)
	o.apply(&cfg)
	return batch.Cell{Platform: p, Mode: m, Workload: w, Config: cfg}
}

// spec declares the option's grid over the given platforms and modes.
func (o Options) spec(modes []config.MemMode, platforms []config.Platform) batch.SweepSpec {
	return batch.SweepSpec{
		Platforms:       platforms,
		Modes:           modes,
		Workloads:       o.workloads(),
		MaxInstructions: o.MaxInstructions,
	}
}

// Grid is a workload x column numeric table used by most figures.
type Grid struct {
	Title string
	Unit  string
	Cols  []string
	Rows  []string // workload names
	Cells [][]float64
}

// NewGrid allocates a rows x cols grid.
func NewGrid(title, unit string, rows, cols []string) *Grid {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Grid{Title: title, Unit: unit, Cols: cols, Rows: rows, Cells: cells}
}

// Set stores a value.
func (g *Grid) Set(row, col int, v float64) { g.Cells[row][col] = v }

// Col returns a column by name; -1 if absent.
func (g *Grid) Col(name string) int {
	for i, c := range g.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// GeoMeanRow appends a geometric-mean summary row ("gmean").
func (g *Grid) GeoMeanRow() []float64 {
	out := make([]float64, len(g.Cols))
	for j := range g.Cols {
		prod, n := 1.0, 0
		for i := range g.Rows {
			v := g.Cells[i][j]
			if v > 0 {
				prod *= v
				n++
			}
		}
		if n > 0 {
			out[j] = math.Pow(prod, 1/float64(n))
		}
	}
	return out
}

// Render prints the grid in aligned columns with a gmean footer.
func (g *Grid) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", g.Title)
	if g.Unit != "" {
		fmt.Fprintf(&b, " (%s)", g.Unit)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-10s", "workload")
	for _, c := range g.Cols {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for i, r := range g.Rows {
		fmt.Fprintf(&b, "%-10s", r)
		for j := range g.Cols {
			fmt.Fprintf(&b, " %12.3f", g.Cells[i][j])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", "gmean")
	for _, v := range g.GeoMeanRow() {
		fmt.Fprintf(&b, " %12.3f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// gatherReports runs a set of platforms over the option's workloads for one
// mode — all cells in parallel on the shared runner — and returns
// reports[workload][platform].
func (o Options) gatherReports(m config.MemMode, platforms []config.Platform) (map[string]map[config.Platform]stats.Report, error) {
	cells, err := o.spec([]config.MemMode{m}, platforms).Cells()
	if err != nil {
		return nil, err
	}
	reps, err := o.exec(cells)
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[config.Platform]stats.Report)
	for i, c := range cells {
		if out[c.Workload] == nil {
			out[c.Workload] = make(map[config.Platform]stats.Report)
		}
		out[c.Workload][c.Platform] = reps[i]
	}
	return out, nil
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
