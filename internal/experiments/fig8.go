package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
)

// Fig8Row is one workload x mode observation of the baseline Ohm memory
// system's migration overhead (Section IV-A).
type Fig8Row struct {
	Workload     string
	Mode         config.MemMode
	CopyFraction float64 // channel bandwidth consumed by data copies
	LatencyNorm  float64 // baseline mean latency / Oracle mean latency
}

// Fig8Result is Figure 8: bandwidth utilization split and memory latency of
// the baseline (Ohm-base) normalized to the Oracle.
type Fig8Result struct{ Rows []Fig8Row }

// Fig8 reproduces Figure 8. Both platforms of both modes go to the batch
// runner as one parallel sweep.
func Fig8(o Options) (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, m := range config.AllModes() {
		reps, err := o.gatherReports(m, []config.Platform{config.OhmBase, config.Oracle})
		if err != nil {
			return nil, err
		}
		for _, w := range o.workloads() {
			base, oracle := reps[w][config.OhmBase], reps[w][config.Oracle]
			norm := 0.0
			if oracle.MeanLatency > 0 {
				norm = float64(base.MeanLatency) / float64(oracle.MeanLatency)
			}
			res.Rows = append(res.Rows, Fig8Row{
				Workload:     w,
				Mode:         m,
				CopyFraction: base.CopyFraction,
				LatencyNorm:  norm,
			})
		}
	}
	return res, nil
}

// MeanCopyFraction averages the copy fraction over one mode's rows.
func (r *Fig8Result) MeanCopyFraction(m config.MemMode) float64 {
	sum, n := 0.0, 0
	for _, row := range r.Rows {
		if row.Mode == m {
			sum += row.CopyFraction
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanLatencyNorm averages baseline/Oracle latency over one mode's rows.
func (r *Fig8Result) MeanLatencyNorm(m config.MemMode) float64 {
	sum, n := 0.0, 0
	for _, row := range r.Rows {
		if row.Mode == m {
			sum += row.LatencyNorm
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints the figure's two panels.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8 — baseline migration overhead (Ohm-base vs Oracle)\n")
	fmt.Fprintf(&b, "%-10s %-10s %12s %14s\n", "workload", "mode", "copy-frac", "lat/oracle")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-10s %11.1f%% %14.2f\n",
			row.Workload, row.Mode, 100*row.CopyFraction, row.LatencyNorm)
	}
	for _, m := range config.AllModes() {
		fmt.Fprintf(&b, "mean %-9s: migration=%.1f%% of bandwidth, latency %.2fx Oracle\n",
			m, 100*r.MeanCopyFraction(m), r.MeanLatencyNorm(m))
	}
	return b.String()
}
