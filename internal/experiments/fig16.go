package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
)

// Fig16Result is Figure 16: IPC of the seven GPU platforms under both
// memory modes, normalized to Ohm-base.
type Fig16Result struct {
	Planar   *Grid
	TwoLevel *Grid
}

// Fig16 reproduces Figure 16.
func Fig16(o Options) (*Fig16Result, error) {
	platforms := config.AllPlatforms()
	res := &Fig16Result{}
	for _, m := range config.AllModes() {
		reps, err := o.gatherReports(m, platforms)
		if err != nil {
			return nil, err
		}
		cols := make([]string, len(platforms))
		for i, p := range platforms {
			cols[i] = p.String()
		}
		g := NewGrid(fmt.Sprintf("Figure 16 — IPC norm. to Ohm-base, %s memory", m), "x", o.workloads(), cols)
		for i, w := range o.workloads() {
			base := reps[w][config.OhmBase].IPC
			for j, p := range platforms {
				if base > 0 {
					g.Set(i, j, reps[w][p].IPC/base)
				}
			}
		}
		if m == config.Planar {
			res.Planar = g
		} else {
			res.TwoLevel = g
		}
	}
	return res, nil
}

// Render prints both modes.
func (r *Fig16Result) Render() string {
	return r.Planar.Render() + "\n" + r.TwoLevel.Render()
}

// Fig17Result is Figure 17: average memory access latency normalized to
// Ohm-base, for the optical platforms.
type Fig17Result struct {
	Planar   *Grid
	TwoLevel *Grid
}

// Fig17 reproduces Figure 17.
func Fig17(o Options) (*Fig17Result, error) {
	platforms := []config.Platform{config.OhmBase, config.AutoRW, config.OhmWOM, config.OhmBW, config.Oracle}
	res := &Fig17Result{}
	for _, m := range config.AllModes() {
		reps, err := o.gatherReports(m, platforms)
		if err != nil {
			return nil, err
		}
		cols := make([]string, len(platforms))
		for i, p := range platforms {
			cols[i] = p.String()
		}
		g := NewGrid(fmt.Sprintf("Figure 17 — memory latency norm. to Ohm-base, %s memory", m), "x", o.workloads(), cols)
		for i, w := range o.workloads() {
			base := float64(reps[w][config.OhmBase].MeanLatency)
			for j, p := range platforms {
				if base > 0 {
					g.Set(i, j, float64(reps[w][p].MeanLatency)/base)
				}
			}
		}
		if m == config.Planar {
			res.Planar = g
		} else {
			res.TwoLevel = g
		}
	}
	return res, nil
}

// Render prints both modes.
func (r *Fig17Result) Render() string {
	return r.Planar.Render() + "\n" + r.TwoLevel.Render()
}

// Fig18Result is Figure 18: the fraction of channel bandwidth consumed by
// regular requests vs data copies for the four heterogeneous optical
// platforms.
type Fig18Result struct {
	Planar   *Grid // copy fraction per platform
	TwoLevel *Grid
}

// Fig18 reproduces Figure 18.
func Fig18(o Options) (*Fig18Result, error) {
	platforms := []config.Platform{config.OhmBase, config.AutoRW, config.OhmWOM, config.OhmBW}
	res := &Fig18Result{}
	for _, m := range config.AllModes() {
		reps, err := o.gatherReports(m, platforms)
		if err != nil {
			return nil, err
		}
		cols := make([]string, len(platforms))
		for i, p := range platforms {
			cols[i] = p.String()
		}
		g := NewGrid(fmt.Sprintf("Figure 18 — data-copy fraction of channel bandwidth, %s memory", m),
			"fraction", o.workloads(), cols)
		for i, w := range o.workloads() {
			for j, p := range platforms {
				g.Set(i, j, reps[w][p].CopyFraction)
			}
		}
		if m == config.Planar {
			res.Planar = g
		} else {
			res.TwoLevel = g
		}
	}
	return res, nil
}

// Render prints both modes.
func (r *Fig18Result) Render() string {
	return r.Planar.Render() + "\n" + r.TwoLevel.Render()
}

// Fig19Result is Figure 19: the memory-system energy breakdown of the five
// heterogeneous platforms, normalized to Hetero's total per workload.
type Fig19Result struct {
	Planar   []Fig19Row
	TwoLevel []Fig19Row
}

// Fig19Row is one workload x platform stacked bar.
type Fig19Row struct {
	Workload   string
	Platform   config.Platform
	Components map[string]float64 // fraction of Hetero total
	Total      float64            // total norm. to Hetero
}

// Fig19 reproduces Figure 19.
func Fig19(o Options) (*Fig19Result, error) {
	platforms := []config.Platform{config.Hetero, config.OhmBase, config.AutoRW, config.OhmWOM, config.OhmBW}
	res := &Fig19Result{}
	for _, m := range config.AllModes() {
		reps, err := o.gatherReports(m, platforms)
		if err != nil {
			return nil, err
		}
		var rows []Fig19Row
		for _, w := range o.workloads() {
			het := reps[w][config.Hetero].TotalEnergyPJ()
			for _, p := range platforms {
				rep := reps[w][p]
				comp := make(map[string]float64, len(rep.EnergyPJ))
				for k, v := range rep.EnergyPJ {
					if het > 0 {
						comp[k] = v / het
					}
				}
				total := 0.0
				for _, k := range sortedKeys(comp) {
					total += comp[k]
				}
				rows = append(rows, Fig19Row{Workload: w, Platform: p, Components: comp, Total: total})
			}
		}
		if m == config.Planar {
			res.Planar = rows
		} else {
			res.TwoLevel = rows
		}
	}
	return res, nil
}

// Render prints the stacked-bar data as rows.
func (r *Fig19Result) Render() string {
	var b strings.Builder
	render := func(mode string, rows []Fig19Row) {
		fmt.Fprintf(&b, "Figure 19 — energy breakdown norm. to Hetero, %s memory\n", mode)
		for _, row := range rows {
			fmt.Fprintf(&b, "%-10s %-9s total=%.3f", row.Workload, row.Platform, row.Total)
			for _, k := range sortedKeys(row.Components) {
				fmt.Fprintf(&b, " %s=%.3f", k, row.Components[k])
			}
			b.WriteByte('\n')
		}
	}
	render("planar", r.Planar)
	b.WriteByte('\n')
	render("two-level", r.TwoLevel)
	return b.String()
}
