package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Params is the JSON-decodable argument set of a registered driver: the
// wire form the ohmserve daemon accepts in POST /v1/sweeps and the shape
// cmd/ohmfig's flags map onto. The zero value means the full paper
// configuration.
type Params struct {
	// Workloads restricts the Table II workload set; empty means all ten.
	Workloads []string `json:"workloads,omitempty"`
	// MaxInstructions bounds the per-warp trace; 0 keeps the config default.
	MaxInstructions int `json:"max_instructions,omitempty"`
	// Workload selects the subject of single-workload drivers (ablations,
	// endurance); empty falls back to the first of Workloads, then pagerank.
	Workload string `json:"workload,omitempty"`
	// Quick applies cmd/ohmfig's -quick preset — three representative
	// workloads and a 4000-instruction budget — wherever the fields above
	// don't already say otherwise.
	Quick bool `json:"quick,omitempty"`
}

// Options resolves the parameters into driver options.
func (p Params) Options() Options {
	o := Options{Workloads: p.Workloads, MaxInstructions: p.MaxInstructions}
	if p.Quick {
		if len(o.Workloads) == 0 {
			o.Workloads = []string{"lud", "bfsdata", "pagerank"}
		}
		if o.MaxInstructions == 0 {
			o.MaxInstructions = 4000
		}
	}
	return o
}

// AblWorkload resolves the single-workload drivers' subject. It consults
// the resolved options so the Quick preset selects its first workload
// (lud) — the same subject `ohmfig -quick abl-*` has always studied.
func (p Params) AblWorkload() string {
	if p.Workload != "" {
		return p.Workload
	}
	if ws := p.Options().Workloads; len(ws) > 0 {
		return ws[0]
	}
	return "pagerank"
}

// Result is any experiment's renderable outcome; every driver's typed
// result satisfies it and is JSON-serializable.
type Result interface{ Render() string }

// Driver is one registered experiment — a paper figure, table, ablation or
// projection — runnable by id with JSON-decodable parameters. cmd/ohmfig
// and the ohmserve daemon both resolve ids through this registry, so the
// two front-ends expose exactly the same experiment set.
type Driver struct {
	// ID is the experiment's stable identifier (e.g. "fig16", "abl-mshr").
	ID string
	// Title is a one-line human description.
	Title string
	// PerWorkload marks drivers that study a single workload selected by
	// Params.Workload rather than sweeping the workload axis.
	PerWorkload bool

	run func(o Options, workload string) (Result, error)
}

// Run executes the driver. The workload argument is only consulted by
// PerWorkload drivers.
func (d Driver) Run(o Options, workload string) (Result, error) {
	return d.run(o, workload)
}

// RunParams executes the driver from wire-form parameters.
func (d Driver) RunParams(p Params) (Result, error) {
	return d.run(p.Options(), p.AblWorkload())
}

var registry = map[string]Driver{}

func register(id, title string, perWorkload bool, run func(Options, string) (Result, error)) {
	registry[id] = Driver{ID: id, Title: title, PerWorkload: perWorkload, run: run}
}

// sweep adapts a figure driver (no workload argument) to the registry shape.
func sweep[T Result](fn func(Options) (T, error)) func(Options, string) (Result, error) {
	return func(o Options, _ string) (Result, error) {
		r, err := fn(o)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

// study adapts a single-workload driver to the registry shape.
func study[T Result](fn func(Options, string) (T, error)) func(Options, string) (Result, error) {
	return func(o Options, w string) (Result, error) {
		r, err := fn(o, w)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

func init() {
	register("fig3a", "Figure 3a — GPU-SSD integrated system execution breakdown", false, sweep(Fig3a))
	register("fig3b", "Figure 3b — DMA degradation of the GPU memory subsystem", false, sweep(Fig3b))
	register("fig8", "Figure 8 — baseline migration overhead (Ohm-base vs Oracle)", false, sweep(Fig8))
	register("fig16", "Figure 16 — IPC of all platforms normalized to Ohm-base", false, sweep(Fig16))
	register("fig17", "Figure 17 — memory latency normalized to Ohm-base", false, sweep(Fig17))
	register("fig18", "Figure 18 — data-copy fraction of channel bandwidth", false, sweep(Fig18))
	register("fig19", "Figure 19 — memory-system energy breakdown", false, sweep(Fig19))
	register("fig20a", "Figure 20a — performance vs optical waveguide count", false, sweep(Fig20a))
	register("fig20b", "Figure 20b — bit error rates vs the reliability requirement", false,
		func(Options, string) (Result, error) { return Fig20b(), nil })
	register("fig21", "Figure 21 — cost-performance ratio normalized to Origin", false, sweep(Fig21))
	register("table2", "Table II — workload characteristics (target vs generated)", false,
		func(o Options, _ string) (Result, error) { return Table2(o), nil })
	register("table3", "Table III — cost estimation", false,
		func(Options, string) (Result, error) { return Table3(), nil })
	register("abl-threshold", "Ablation — planar hot-page migration threshold", true, study(AblationHotThreshold))
	register("abl-pagesize", "Ablation — migration page size", true, study(AblationPageSize))
	register("abl-startgap", "Ablation — Start-Gap wear levelling", true, study(AblationStartGap))
	register("abl-mshr", "Ablation — L2 MSHR coalescing", true, study(AblationMSHR))
	register("abl-division", "Ablation — wavelength division strategy", true, study(AblationChannelDivision))
	register("abl-noc", "Ablation — SM<->L2 interconnect model", true, study(AblationNoC))
	register("abl-phases", "Ablation — phase-changing hot sets", true, study(AblationPhases))
	register("endurance", "XPoint endurance and lifetime projection", true, study(Endurance))
}

// Lookup resolves a driver by id (case-insensitive).
func Lookup(id string) (Driver, bool) {
	d, ok := registry[strings.ToLower(id)]
	return d, ok
}

// Drivers lists every registered driver sorted by id.
func Drivers() []Driver {
	out := make([]Driver, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs lists the registered ids sorted, for error messages and listings.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// EncodeResultJSON writes the {"id", "result"} document cmd/ohmfig -json
// emits. The ohmserve daemon serves the same bytes for experiment jobs, so
// a served response is interchangeable with a locally generated file.
func EncodeResultJSON(w io.Writer, id string, r Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]interface{}{"id": id, "result": r}); err != nil {
		return fmt.Errorf("experiments: encode %s: %w", id, err)
	}
	return nil
}
