package experiments

import (
	"strings"
	"testing"
)

var ablQuick = Options{MaxInstructions: 1500}

func TestAblationHotThreshold(t *testing.T) {
	r, err := AblationHotThreshold(ablQuick, "bfstopo")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Lower thresholds must migrate at least as much as higher ones.
	if r.Rows[0].Migrations < r.Rows[len(r.Rows)-1].Migrations {
		t.Fatalf("threshold=2 migrated %d, less than threshold=64's %d",
			r.Rows[0].Migrations, r.Rows[len(r.Rows)-1].Migrations)
	}
	if !strings.Contains(r.Render(), "threshold=2") {
		t.Fatal("render missing rows")
	}
}

func TestAblationPageSize(t *testing.T) {
	r, err := AblationPageSize(ablQuick, "lud")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.IPC <= 0 {
			t.Fatalf("%s: zero IPC", row.Setting)
		}
	}
}

func TestAblationStartGap(t *testing.T) {
	r, err := AblationStartGap(ablQuick, "bfsdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Aggressive wear levelling (K=10) must not exceed the static layout's
	// maximum wear.
	disabled := r.Rows[0]
	k10 := r.Rows[1]
	if disabled.Setting != "disabled" || k10.Setting != "K=10" {
		t.Fatalf("unexpected ordering: %s %s", disabled.Setting, k10.Setting)
	}
	if k10.Extra["max-wear"] > disabled.Extra["max-wear"]+1 {
		t.Fatalf("Start-Gap K=10 max wear %.0f exceeds static %.0f",
			k10.Extra["max-wear"], disabled.Extra["max-wear"])
	}
}

func TestAblationMSHR(t *testing.T) {
	r, err := AblationMSHR(ablQuick, "pagerank")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].Extra["merges"] != 0 {
		t.Fatal("disabled MSHR reported merges")
	}
	// Enabled MSHRs must coalesce something on a shared-hot-page workload
	// and never hurt IPC.
	if r.Rows[2].Extra["merges"] == 0 {
		t.Fatal("64-entry MSHR coalesced nothing on pagerank")
	}
	if r.Rows[2].IPC < r.Rows[0].IPC*0.95 {
		t.Fatalf("MSHR hurt IPC: %.3f vs %.3f", r.Rows[2].IPC, r.Rows[0].IPC)
	}
}

func TestAblationChannelDivision(t *testing.T) {
	r, err := AblationChannelDivision(ablQuick, "bfsdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].Setting != "static" || r.Rows[1].Setting != "dynamic" {
		t.Fatalf("unexpected settings: %v %v", r.Rows[0].Setting, r.Rows[1].Setting)
	}
}

func TestAblationPhases(t *testing.T) {
	r, err := AblationPhases(ablQuick, "bfstopo")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if _, err := AblationPhases(ablQuick, "nope"); err == nil {
		t.Fatal("accepted unknown workload")
	}
}

func TestEndurance(t *testing.T) {
	r, err := Endurance(ablQuick, "backp")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.TotalWrites == 0 {
			t.Fatalf("%s: no XPoint writes on a write-heavy workload", row.Platform)
		}
		if row.MaxWear == 0 || row.LifetimeRuns <= 0 {
			t.Fatalf("%s: degenerate projection %+v", row.Platform, row)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestAblationNoC(t *testing.T) {
	r, err := AblationNoC(ablQuick, "bfsdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].Setting != "constant-latency" || r.Rows[1].Setting != "crossbar" {
		t.Fatalf("settings: %v %v", r.Rows[0].Setting, r.Rows[1].Setting)
	}
	// The crossbar only adds contention at the interconnect, but shifted
	// timings ripple through migration scheduling, so system-level IPC can
	// move either way by ~10%; guard only against gross divergence.
	ratio := r.Rows[1].IPC / r.Rows[0].IPC
	if ratio > 1.25 || ratio < 0.5 {
		t.Fatalf("crossbar IPC %.3f diverges from constant-latency %.3f",
			r.Rows[1].IPC, r.Rows[0].IPC)
	}
}
