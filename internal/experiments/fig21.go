package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/costmodel"
	"repro/internal/trace"
)

// Fig21Row is one workload's cost-performance comparison.
type Fig21Row struct {
	Workload string
	Mode     config.MemMode
	Origin   float64
	OhmBW    float64
	Oracle   float64
}

// Fig21Result is Figure 21: cost-performance ratio (IPC per k$) of Origin,
// Ohm-BW and Oracle, normalized to Origin per workload.
type Fig21Result struct{ Rows []Fig21Row }

// Fig21 reproduces Figure 21 using the Table III cost estimates. The three
// platforms of both modes run as parallel batch sweeps.
func Fig21(o Options) (*Fig21Result, error) {
	platforms := []config.Platform{config.Origin, config.OhmBW, config.Oracle}
	res := &Fig21Result{}
	for _, m := range config.AllModes() {
		reps, err := o.gatherReports(m, platforms)
		if err != nil {
			return nil, err
		}
		for _, w := range o.workloads() {
			cp := make(map[config.Platform]float64, 3)
			for _, p := range platforms {
				cp[p] = costmodel.CPRatio(reps[w][p].IPC, costmodel.Cost(p, m))
			}
			base := cp[config.Origin]
			if base <= 0 {
				base = 1
			}
			res.Rows = append(res.Rows, Fig21Row{
				Workload: w,
				Mode:     m,
				Origin:   cp[config.Origin] / base,
				OhmBW:    cp[config.OhmBW] / base,
				Oracle:   cp[config.Oracle] / base,
			})
		}
	}
	return res, nil
}

// Render prints the cost-performance rows.
func (r *Fig21Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 21 — cost-performance ratio norm. to Origin (higher is better)\n")
	fmt.Fprintf(&b, "%-10s %-10s %10s %10s %10s\n", "workload", "mode", "Origin", "Ohm-BW", "Oracle")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-10s %10.3f %10.3f %10.3f\n",
			row.Workload, row.Mode, row.Origin, row.OhmBW, row.Oracle)
	}
	return b.String()
}

// Table2Row compares a generated trace's measured characteristics against
// Table II's published targets.
type Table2Row struct {
	Workload      string
	TargetAPKI    int
	MeasuredAPKI  float64
	TargetRead    float64
	MeasuredRead  float64
	FootprintMB   float64
	UniquePagesHi int
}

// Table2Result validates the synthetic workload calibration.
type Table2Result struct{ Rows []Table2Row }

// Table2 regenerates every workload and measures it.
func Table2(o Options) *Table2Result {
	cfg := config.Default(config.OhmBase, config.Planar)
	o.apply(&cfg)
	res := &Table2Result{}
	for _, name := range o.workloads() {
		w, ok := config.WorkloadByName(name)
		if !ok {
			continue
		}
		tr := trace.Cached(w, &cfg) // Measure only reads; share the sweep's trace
		s := tr.Measure()
		res.Rows = append(res.Rows, Table2Row{
			Workload:      name,
			TargetAPKI:    w.APKI,
			MeasuredAPKI:  s.APKI,
			TargetRead:    w.ReadRatio,
			MeasuredRead:  s.ReadRatio,
			FootprintMB:   float64(tr.Footprint) / (1 << 20),
			UniquePagesHi: s.UniquePages,
		})
	}
	return res
}

// Render prints the calibration table.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table II — workload characteristics (target vs generated)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %8s %8s %10s\n",
		"workload", "APKI(tgt)", "APKI(gen)", "rd(tgt)", "rd(gen)", "footprint")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10d %10.1f %8.2f %8.2f %8.0fMB\n",
			row.Workload, row.TargetAPKI, row.MeasuredAPKI, row.TargetRead, row.MeasuredRead, row.FootprintMB)
	}
	return b.String()
}

// Table3Result is Table III: the cost estimation of the Ohm memories.
type Table3Result struct {
	Estimates []costmodel.Estimate
	MRRRows   []Table3MRRRow
}

// Table3MRRRow is one MRR-inventory row.
type Table3MRRRow struct {
	Platform   config.Platform
	Mode       config.MemMode
	Modulators int
	Detectors  int
}

// Table3 assembles the published cost table from the cost model.
func Table3() *Table3Result {
	res := &Table3Result{}
	for _, m := range config.AllModes() {
		for _, p := range []config.Platform{config.Origin, config.OhmBase, config.OhmBW, config.Oracle} {
			res.Estimates = append(res.Estimates, costmodel.Cost(p, m))
		}
		for _, p := range []config.Platform{config.OhmBase, config.OhmBW} {
			if c, ok := costmodel.MRRs(p, m); ok {
				res.MRRRows = append(res.MRRRows, Table3MRRRow{
					Platform: p, Mode: m, Modulators: c.Modulators, Detectors: c.Detectors,
				})
			}
		}
	}
	return res
}

// Render prints the cost table.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table III — cost estimation\n")
	for _, row := range r.MRRRows {
		fmt.Fprintf(&b, "%-9s %-10s modulators=%d detectors=%d\n",
			row.Platform, row.Mode, row.Modulators, row.Detectors)
	}
	for _, e := range r.Estimates {
		fmt.Fprintf(&b, "%s\n", e.String())
	}
	fmt.Fprintf(&b, "Ohm-BW MRR increase over Ohm-base (both modes): %.0f%%\n",
		100*costmodel.MRRIncreaseOverall())
	return b.String()
}
