package experiments

import (
	"strings"
	"testing"
)

func TestGridGeoMeanSkipsZeroCells(t *testing.T) {
	g := NewGrid("t", "", []string{"a", "b", "c"}, []string{"v"})
	g.Set(0, 0, 2)
	g.Set(1, 0, 0) // unfilled / failed cell must not zero the geomean
	g.Set(2, 0, 8)
	if gm := g.GeoMeanRow(); gm[0] != 4 {
		t.Fatalf("geomean over {2, 0, 8} = %v, want 4 (zeros skipped)", gm[0])
	}
	// A column of only zeros yields zero, not NaN.
	empty := NewGrid("t", "", []string{"a"}, []string{"v"})
	if gm := empty.GeoMeanRow(); gm[0] != 0 {
		t.Fatalf("all-zero column geomean = %v, want 0", gm[0])
	}
	// A grid with no rows at all still renders and geomeans.
	none := NewGrid("t", "", nil, []string{"v"})
	if gm := none.GeoMeanRow(); len(gm) != 1 || gm[0] != 0 {
		t.Fatalf("zero-row geomean = %v", gm)
	}
	if out := none.Render(); !strings.Contains(out, "gmean") {
		t.Fatalf("zero-row render missing footer:\n%s", out)
	}
}

func TestGridRenderAlignment(t *testing.T) {
	g := NewGrid("Title", "x", []string{"short", "longerwl"}, []string{"c1", "widecol"})
	g.Set(0, 0, 1.5)
	g.Set(0, 1, 2.25)
	g.Set(1, 0, 3)
	g.Set(1, 1, 4)
	out := g.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, 2 rows, gmean
		t.Fatalf("render = %d lines, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "Title (x)" {
		t.Fatalf("title line = %q", lines[0])
	}
	// Every data line is the same width as the header: a 10-char row label
	// plus one 13-char field per column (" %12s").
	want := 10 + 13*len(g.Cols)
	for _, l := range lines[1:] {
		if len(l) != want {
			t.Fatalf("misaligned line (%d chars, want %d): %q", len(l), want, l)
		}
	}
	// Column headers end exactly where the row values end.
	hdr := lines[1]
	if !strings.HasSuffix(hdr[:23], "c1") || !strings.HasSuffix(hdr, "widecol") {
		t.Fatalf("headers not right-aligned: %q", hdr)
	}
	for _, val := range []string{"1.500", "2.250", "3.000", "4.000"} {
		if !strings.Contains(out, val) {
			t.Fatalf("render missing %s:\n%s", val, out)
		}
	}
}
