package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
)

// EnduranceRow is one platform's XPoint lifetime projection.
type EnduranceRow struct {
	Platform    config.Platform
	MaxWear     uint64  // worst physical line's writes during the run
	TotalWrites uint64  // all XPoint media writes
	WearRatio   float64 // max / mean wear (1.0 = perfectly levelled)
	// LifetimeRuns is work-normalized lifetime: how many executions of this
	// workload the worst physical line survives before hitting the
	// endurance budget. (Wall-clock projections would reward *slow*
	// platforms, which is backwards.)
	LifetimeRuns float64
}

// EnduranceResult projects XPoint lifetime under each platform — the
// paper's Section III motivation: "DRAM in Ohm-GPU also accommodates
// write-intensive data, which can significantly reduce the number of
// writes on XPoint, thereby extending the lifetime of XPoint."
type EnduranceResult struct {
	Workload string
	Rows     []EnduranceRow
}

// Endurance measures per-line wear across the heterogeneous platforms and
// projects lifetime: endurance budget / worst-line write rate.
func Endurance(o Options, workload string) (*EnduranceResult, error) {
	res := &EnduranceResult{Workload: workload}
	for _, p := range []config.Platform{config.Hetero, config.OhmBase, config.OhmBW} {
		cfg := config.Default(p, config.Planar)
		o.apply(&cfg)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := sys.RunWorkload(workload); err != nil {
			return nil, err
		}
		var maxWear, total uint64
		var lines int
		for mc := 0; mc < cfg.GPU.MemCtrls; mc++ {
			xc := sys.Mem.XPointAt(mc)
			if xc == nil {
				continue
			}
			ws := xc.Wear()
			if ws.Max > maxWear {
				maxWear = ws.Max
			}
			total += ws.Total
			lines += ws.Lines
		}
		mean := 0.0
		if lines > 0 {
			mean = float64(total) / float64(lines)
		}
		ratio := 0.0
		if mean > 0 {
			ratio = float64(maxWear) / mean
		}
		runs := 0.0
		if maxWear > 0 {
			runs = float64(cfg.XPoint.WearLimit) / float64(maxWear)
		}
		res.Rows = append(res.Rows, EnduranceRow{
			Platform:     p,
			MaxWear:      maxWear,
			TotalWrites:  total,
			WearRatio:    ratio,
			LifetimeRuns: runs,
		})
	}
	return res, nil
}

// Render prints the work-normalized lifetime projection relative to the
// first row (Hetero).
func (r *EnduranceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "XPoint endurance projection (planar, %s)\n", r.Workload)
	fmt.Fprintf(&b, "%-9s %10s %12s %10s %14s\n", "platform", "max-wear", "total-wr", "max/mean", "rel-lifetime")
	base := 0.0
	if len(r.Rows) > 0 {
		base = r.Rows[0].LifetimeRuns
	}
	for _, row := range r.Rows {
		life := "n/a"
		if row.LifetimeRuns > 0 && base > 0 {
			life = fmt.Sprintf("%.2fx", row.LifetimeRuns/base)
		}
		fmt.Fprintf(&b, "%-9s %10d %12d %10.1f %14s\n",
			row.Platform, row.MaxWear, row.TotalWrites, row.WearRatio, life)
	}
	return b.String()
}
