package experiments

import (
	"fmt"
	"strings"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
)

// EnduranceRow is one platform's XPoint lifetime projection.
type EnduranceRow struct {
	Platform    config.Platform
	MaxWear     uint64  // worst physical line's writes during the run
	TotalWrites uint64  // all XPoint media writes
	WearRatio   float64 // max / mean wear (1.0 = perfectly levelled)
	// LifetimeRuns is work-normalized lifetime: how many executions of this
	// workload the worst physical line survives before hitting the
	// endurance budget. (Wall-clock projections would reward *slow*
	// platforms, which is backwards.)
	LifetimeRuns float64
}

// EnduranceResult projects XPoint lifetime under each platform — the
// paper's Section III motivation: "DRAM in Ohm-GPU also accommodates
// write-intensive data, which can significantly reduce the number of
// writes on XPoint, thereby extending the lifetime of XPoint."
type EnduranceResult struct {
	Workload string
	Rows     []EnduranceRow
}

// runWear executes one cell and exports the per-line XPoint wear summary
// through the report's Extra map so the rows survive the batch boundary
// (and the result cache).
func runWear(cfg config.Config, workload string) (stats.Report, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return stats.Report{}, err
	}
	rep, err := sys.RunWorkload(workload)
	if err != nil {
		return stats.Report{}, err
	}
	var maxWear, total uint64
	var lines int
	for mc := 0; mc < cfg.GPU.MemCtrls; mc++ {
		xc := sys.Mem.XPointAt(mc)
		if xc == nil {
			continue
		}
		ws := xc.Wear()
		if ws.Max > maxWear {
			maxWear = ws.Max
		}
		total += ws.Total
		lines += ws.Lines
	}
	rep.Extra[ablExtraPrefix+"max-wear"] = float64(maxWear)
	rep.Extra[ablExtraPrefix+"total-writes"] = float64(total)
	rep.Extra[ablExtraPrefix+"wear-lines"] = float64(lines)
	return rep, nil
}

// Endurance measures per-line wear across the heterogeneous platforms —
// one parallel batch — and projects lifetime: endurance budget /
// worst-line write rate.
func Endurance(o Options, workload string) (*EnduranceResult, error) {
	platforms := []config.Platform{config.Hetero, config.OhmBase, config.OhmBW}
	var cells []batch.Cell
	for _, p := range platforms {
		c := o.cell(p, config.Planar, workload)
		c.Salt, c.RunFn = "endurance-wear", runWear
		cells = append(cells, c)
	}
	reps, err := o.exec(cells)
	if err != nil {
		return nil, err
	}
	res := &EnduranceResult{Workload: workload}
	for i, p := range platforms {
		rep := reps[i]
		maxWear := uint64(rep.Extra[ablExtraPrefix+"max-wear"])
		total := uint64(rep.Extra[ablExtraPrefix+"total-writes"])
		lines := rep.Extra[ablExtraPrefix+"wear-lines"]
		mean := 0.0
		if lines > 0 {
			mean = float64(total) / lines
		}
		ratio := 0.0
		if mean > 0 {
			ratio = float64(maxWear) / mean
		}
		runs := 0.0
		if maxWear > 0 {
			runs = float64(cells[i].Config.XPoint.WearLimit) / float64(maxWear)
		}
		res.Rows = append(res.Rows, EnduranceRow{
			Platform:     p,
			MaxWear:      maxWear,
			TotalWrites:  total,
			WearRatio:    ratio,
			LifetimeRuns: runs,
		})
	}
	return res, nil
}

// Render prints the work-normalized lifetime projection relative to the
// first row (Hetero).
func (r *EnduranceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "XPoint endurance projection (planar, %s)\n", r.Workload)
	fmt.Fprintf(&b, "%-9s %10s %12s %10s %14s\n", "platform", "max-wear", "total-wr", "max/mean", "rel-lifetime")
	base := 0.0
	if len(r.Rows) > 0 {
		base = r.Rows[0].LifetimeRuns
	}
	for _, row := range r.Rows {
		life := "n/a"
		if row.LifetimeRuns > 0 && base > 0 {
			life = fmt.Sprintf("%.2fx", row.LifetimeRuns/base)
		}
		fmt.Fprintf(&b, "%-9s %10d %12d %10.1f %14s\n",
			row.Platform, row.MaxWear, row.TotalWrites, row.WearRatio, life)
	}
	return b.String()
}
