package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/optical"
)

// Fig20aRow is one point of the waveguide sensitivity study.
type Fig20aRow struct {
	Waveguides int
	OhmBase    float64 // geomean IPC norm. to Hetero
	OhmBW      float64
}

// Fig20aResult is Figure 20a: performance vs the number of optical
// waveguides, normalized to the electrical Hetero platform.
type Fig20aResult struct{ Rows []Fig20aRow }

// Fig20a reproduces Figure 20a for waveguide counts 1..8 in planar mode
// (where channel bandwidth is the binding resource). The Hetero reference
// and the full waveguide sweep are submitted as one parallel batch.
func Fig20a(o Options) (*Fig20aResult, error) {
	planar := []config.MemMode{config.Planar}
	var cells []batch.Cell
	for _, w := range o.workloads() {
		cells = append(cells, o.cell(config.Hetero, config.Planar, w))
	}
	nHet := len(cells)
	sweep := o.spec(planar, []config.Platform{config.OhmBase, config.OhmBW})
	sweep.Overrides = batch.Overrides{"optical.waveguides": {1, 2, 3, 4, 5, 6, 7, 8}}
	sweepCells, err := sweep.Cells()
	if err != nil {
		return nil, err
	}
	cells = append(cells, sweepCells...)

	reps, err := o.exec(cells)
	if err != nil {
		return nil, err
	}
	het := make(map[string]float64, nHet)
	for i := 0; i < nHet; i++ {
		het[cells[i].Workload] = reps[i].IPC
	}

	// Geomean of IPC/Hetero per (waveguides, platform) series.
	type series struct {
		wg int
		p  config.Platform
	}
	prod := make(map[series]float64)
	n := make(map[series]int)
	for i, c := range sweepCells {
		if het[c.Workload] <= 0 {
			continue
		}
		s := series{c.Config.Optical.Waveguides, c.Platform}
		if _, ok := prod[s]; !ok {
			prod[s] = 1
		}
		prod[s] *= reps[nHet+i].IPC / het[c.Workload]
		n[s]++
	}
	gm := func(s series) float64 {
		if n[s] == 0 {
			return 0
		}
		return math.Pow(prod[s], 1/float64(n[s]))
	}
	res := &Fig20aResult{}
	for wg := 1; wg <= 8; wg++ {
		res.Rows = append(res.Rows, Fig20aRow{
			Waveguides: wg,
			OhmBase:    gm(series{wg, config.OhmBase}),
			OhmBW:      gm(series{wg, config.OhmBW}),
		})
	}
	return res, nil
}

// Render prints the sensitivity series.
func (r *Fig20aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 20a — performance vs optical waveguides (norm. to Hetero, planar)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "waveguides", "Ohm-base", "Ohm-BW")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12d %12.3f %12.3f\n", row.Waveguides, row.OhmBase, row.OhmBW)
	}
	return b.String()
}

// Fig20bRow is one BER measurement of Figure 20b.
type Fig20bRow struct {
	Platform config.Platform
	Path     optical.PathKind
	BER      float64
	Meets    bool
}

// Fig20bResult is Figure 20b: bit error rates of the optical functions per
// platform against the 1e-15 reliability requirement.
type Fig20bResult struct{ Rows []Fig20bRow }

// Fig20b evaluates the Table I power model for the paths each platform
// exercises, with the platform's laser boost applied (Section VI-B).
func Fig20b() *Fig20bResult {
	cases := []struct {
		p     config.Platform
		paths []optical.PathKind
	}{
		{config.OhmBase, []optical.PathKind{optical.PathReadWrite}},
		{config.OhmWOM, []optical.PathKind{optical.PathReadWrite, optical.PathAutoRW, optical.PathSwapWOM}},
		{config.OhmBW, []optical.PathKind{optical.PathReadWrite, optical.PathAutoRW, optical.PathSwapBW}},
	}
	res := &Fig20bResult{}
	for _, c := range cases {
		cfg := config.Default(c.p, config.Planar)
		pm := optical.NewPowerModel(cfg.Optical)
		for _, path := range c.paths {
			res.Rows = append(res.Rows, Fig20bRow{
				Platform: c.p,
				Path:     path,
				BER:      pm.BER(path),
				Meets:    pm.MeetsReliability(path),
			})
		}
	}
	return res
}

// Render prints the BER table.
func (r *Fig20bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 20b — bit error rates vs the 1e-15 reliability requirement\n")
	fmt.Fprintf(&b, "%-10s %-10s %12s %8s\n", "platform", "path", "BER", "meets")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-10s %12.2e %8v\n", row.Platform, row.Path, row.BER, row.Meets)
	}
	return b.String()
}
