package experiments

import (
	"strings"
	"testing"

	"repro/internal/config"
)

// quick keeps full-system experiment tests fast: two representative
// workloads (one dense, one graph), short traces.
var quick = Options{Workloads: []string{"lud", "bfstopo"}, MaxInstructions: 1200}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if len(o.workloads()) != 10 {
		t.Fatalf("default workloads = %d, want all of Table II", len(o.workloads()))
	}
	cfg := config.Default(config.OhmBase, config.Planar)
	o.apply(&cfg)
	if cfg.MaxInstructions != 20000 {
		t.Fatal("zero MaxInstructions must keep config default")
	}
	o = Options{MaxInstructions: 77}
	o.apply(&cfg)
	if cfg.MaxInstructions != 77 {
		t.Fatal("option override lost")
	}
}

func TestGridHelpers(t *testing.T) {
	g := NewGrid("t", "x", []string{"a", "b"}, []string{"c1", "c2"})
	g.Set(0, 0, 2)
	g.Set(1, 0, 8)
	g.Set(0, 1, 3)
	g.Set(1, 1, 3)
	gm := g.GeoMeanRow()
	if gm[0] != 4 || gm[1] != 3 {
		t.Fatalf("geomean = %v", gm)
	}
	if g.Col("c2") != 1 || g.Col("nope") != -1 {
		t.Fatal("Col lookup wrong")
	}
	out := g.Render()
	if !strings.Contains(out, "gmean") || !strings.Contains(out, "c1") {
		t.Fatalf("render missing parts:\n%s", out)
	}
}

func TestFig16Shape(t *testing.T) {
	r, err := Fig16(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*Grid{r.Planar, r.TwoLevel} {
		if len(g.Cols) != 7 {
			t.Fatalf("Fig16 needs all 7 platforms, got %v", g.Cols)
		}
		// Normalized to Ohm-base: that column must be exactly 1.
		bc := g.Col("Ohm-base")
		for i := range g.Rows {
			if g.Cells[i][bc] != 1 {
				t.Fatalf("Ohm-base column not normalized: %v", g.Cells[i][bc])
			}
		}
	}
	// Paper shape: Oracle dominates, Origin trails Hetero.
	gm := r.Planar.GeoMeanRow()
	or, het, oracle, bw := gm[r.Planar.Col("Origin")], gm[r.Planar.Col("Hetero")],
		gm[r.Planar.Col("Oracle")], gm[r.Planar.Col("Ohm-BW")]
	if or >= het {
		t.Errorf("Origin (%.3f) must trail Hetero (%.3f)", or, het)
	}
	if oracle < bw {
		t.Errorf("Oracle (%.3f) must dominate Ohm-BW (%.3f)", oracle, bw)
	}
	if bw < 1 {
		t.Errorf("Ohm-BW (%.3f) must beat Ohm-base", bw)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig17Shape(t *testing.T) {
	r, err := Fig17(quick)
	if err != nil {
		t.Fatal(err)
	}
	gm := r.Planar.GeoMeanRow()
	base := gm[r.Planar.Col("Ohm-base")]
	bw := gm[r.Planar.Col("Ohm-BW")]
	oracle := gm[r.Planar.Col("Oracle")]
	if base != 1 {
		t.Fatalf("Ohm-base latency column must normalize to 1, got %v", base)
	}
	// Both the dual-route platform and the Oracle must improve on the
	// baseline; their relative order can flip at the quick test's short
	// warmup-dominated traces, so it is asserted only for full runs
	// (EXPERIMENTS.md).
	if bw > 1.0001 || oracle > 1.0001 {
		t.Fatalf("latency ordering wrong: oracle=%.3f bw=%.3f base=1", oracle, bw)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig18Shape(t *testing.T) {
	r, err := Fig18(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 18: Ohm-WOM eliminates two-level migration from the channel.
	womCol := r.TwoLevel.Col("Ohm-WOM")
	for i := range r.TwoLevel.Rows {
		if r.TwoLevel.Cells[i][womCol] > 1e-9 {
			t.Fatalf("two-level Ohm-WOM copy fraction = %v, want 0", r.TwoLevel.Cells[i][womCol])
		}
	}
	// And the baseline shows real migration traffic in planar mode for the
	// graph workload.
	baseCol := r.Planar.Col("Ohm-base")
	found := false
	for i := range r.Planar.Rows {
		if r.Planar.Cells[i][baseCol] > 0.05 {
			found = true
		}
	}
	if !found {
		t.Fatal("planar baseline shows no migration bandwidth")
	}
}

func TestFig19Shape(t *testing.T) {
	r, err := Fig19(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Planar) != len(quick.Workloads)*5 {
		t.Fatalf("planar rows = %d, want %d", len(r.Planar), len(quick.Workloads)*5)
	}
	for _, row := range r.Planar {
		if row.Platform == config.Hetero && (row.Total < 0.999 || row.Total > 1.001) {
			t.Fatalf("Hetero must normalize to 1, got %v", row.Total)
		}
		if row.Platform == config.Hetero {
			if row.Components["elec-channel"] <= 0 {
				t.Fatal("Hetero missing electrical channel energy")
			}
		} else if row.Components["opti-network"] <= 0 {
			t.Fatalf("%s missing optical energy", row.Platform)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig3aShape(t *testing.T) {
	r, err := Fig3a(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		sum := row.DataMove + row.Storage + row.GPU
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: fractions sum to %v", row.Workload, sum)
		}
		if row.DataMove <= 0 || row.Storage <= 0 {
			t.Fatalf("%s: SSD path unused (%+v)", row.Workload, row)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig3bShape(t *testing.T) {
	r, err := Fig3b(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.DMAFraction <= 0 || row.DMAFraction >= 1 {
			t.Fatalf("%s: DMA fraction %v out of range", row.Workload, row.DMAFraction)
		}
		if row.EnergyFraction <= 0 {
			t.Fatalf("%s: DMA energy missing", row.Workload)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(quick.Workloads) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, m := range config.AllModes() {
		if r.MeanLatencyNorm(m) < 1 {
			t.Errorf("%s: baseline latency must exceed Oracle, got %.2fx", m, r.MeanLatencyNorm(m))
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig20aShape(t *testing.T) {
	o := Options{Workloads: []string{"bfstopo"}, MaxInstructions: 800}
	r, err := Fig20a(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 waveguide points", len(r.Rows))
	}
	// More waveguides must never hurt, and 8 must beat 1 for Ohm-base.
	if r.Rows[7].OhmBase <= r.Rows[0].OhmBase*0.99 {
		t.Fatalf("8 waveguides (%.3f) should beat 1 (%.3f)", r.Rows[7].OhmBase, r.Rows[0].OhmBase)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig20bShape(t *testing.T) {
	r := Fig20b()
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 (1 + 3 + 3)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Meets {
			t.Errorf("%s/%s BER %.2e violates the 1e-15 requirement", row.Platform, row.Path, row.BER)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig21Shape(t *testing.T) {
	// Cost-performance needs post-warmup steady state: short traces are
	// migration-dominated and understate Ohm-BW. Use a longer trace on one
	// dense and one graph workload.
	o := Options{Workloads: []string{"lud", "pagerank"}, MaxInstructions: 4000}
	r, err := Fig21(o)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 21: Ohm-BW's cost-performance beats Origin's everywhere, is
	// competitive with Oracle's on dense kernels, and wins outright on the
	// graph workload (the paper reports +24% overall).
	for _, row := range r.Rows {
		if row.OhmBW < 0.8*row.Oracle {
			t.Errorf("%s/%s: CP(Ohm-BW)=%.3f far below CP(Oracle)=%.3f",
				row.Workload, row.Mode, row.OhmBW, row.Oracle)
		}
		if row.OhmBW <= row.Origin {
			t.Errorf("%s/%s: CP(Ohm-BW)=%.3f must beat CP(Origin)=%.3f",
				row.Workload, row.Mode, row.OhmBW, row.Origin)
		}
		if row.Workload == "pagerank" && row.OhmBW < row.Oracle {
			t.Errorf("pagerank/%s: CP(Ohm-BW)=%.3f should beat CP(Oracle)=%.3f",
				row.Mode, row.OhmBW, row.Oracle)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestTable2Shape(t *testing.T) {
	r := Table2(Options{MaxInstructions: 2000})
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(r.Rows))
	}
	for _, row := range r.Rows {
		lo, hi := 0.8*float64(row.TargetAPKI)-15, 1.2*float64(row.TargetAPKI)+15
		if float64(row.TargetAPKI) > 950 {
			continue
		}
		if row.MeasuredAPKI < lo || row.MeasuredAPKI > hi {
			t.Errorf("%s: generated APKI %.1f outside [%.0f,%.0f]", row.Workload, row.MeasuredAPKI, lo, hi)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestTable3Shape(t *testing.T) {
	r := Table3()
	if len(r.MRRRows) != 4 {
		t.Fatalf("MRR rows = %d, want 4", len(r.MRRRows))
	}
	if len(r.Estimates) != 8 {
		t.Fatalf("estimates = %d, want 8", len(r.Estimates))
	}
	out := r.Render()
	for _, want := range []string{"2112", "4928", "41%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III render missing %q:\n%s", want, out)
		}
	}
}
