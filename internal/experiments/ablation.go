package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file holds the ablation studies DESIGN.md calls out: design choices
// the paper fixes that our implementation exposes as knobs. Each ablation
// runs the Ohm-BW planar platform with one knob varied and reports the IPC
// and wear/latency consequences.

// AblationRow is one knob setting's outcome.
type AblationRow struct {
	Setting     string
	IPC         float64
	MeanLatency sim.Time
	Migrations  uint64
	Extra       map[string]float64
}

// AblationResult is a titled list of knob settings.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-22s %10s %14s %12s\n", "setting", "IPC", "mem-latency", "migrations")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %10.3f %14s %12d", row.Setting, row.IPC, row.MeanLatency, row.Migrations)
		for _, k := range sortedKeys(row.Extra) {
			fmt.Fprintf(&b, " %s=%.3g", k, row.Extra[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ablate runs one configured system on a workload and records the row.
func ablate(cfg config.Config, workload, setting string) (AblationRow, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return AblationRow{}, err
	}
	rep, err := sys.RunWorkload(workload)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Setting:     setting,
		IPC:         rep.IPC,
		MeanLatency: rep.MeanLatency,
		Migrations:  rep.Migrations,
		Extra:       map[string]float64{},
	}, nil
}

// AblationHotThreshold sweeps the planar hot-page detector's threshold:
// migrate too eagerly and swaps saturate the memory route; too lazily and
// the hot set stays in XPoint.
func AblationHotThreshold(o Options, workload string) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation — planar hot-page threshold (Ohm-BW, " + workload + ")"}
	for _, th := range []int{2, 4, 8, 16, 32, 64} {
		cfg := config.Default(config.OhmBW, config.Planar)
		cfg.Memory.HotThreshold = th
		o.apply(&cfg)
		row, err := ablate(cfg, workload, fmt.Sprintf("threshold=%d", th))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationPageSize sweeps the migration granularity: bigger pages amortize
// command overhead but move more dead bytes per swap.
func AblationPageSize(o Options, workload string) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation — migration page size (Ohm-BW, planar, " + workload + ")"}
	for _, pb := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10} {
		cfg := config.Default(config.OhmBW, config.Planar)
		cfg.Memory.PageBytes = pb
		o.apply(&cfg)
		row, err := ablate(cfg, workload, fmt.Sprintf("page=%dKiB", pb>>10))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationStartGap compares Start-Gap wear levelling against a static
// layout: performance cost vs maximum wear.
func AblationStartGap(o Options, workload string) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation — Start-Gap wear levelling (Ohm-BW, planar, " + workload + ")"}
	for _, k := range []int{0, 10, 100, 1000} {
		cfg := config.Default(config.OhmBW, config.Planar)
		cfg.XPoint.StartGapK = k
		o.apply(&cfg)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := sys.RunWorkload(workload)
		if err != nil {
			return nil, err
		}
		var maxWear uint64
		for mc := 0; mc < cfg.GPU.MemCtrls; mc++ {
			if xc := sys.Mem.XPointAt(mc); xc != nil {
				if w := xc.Wear().Max; w > maxWear {
					maxWear = w
				}
			}
		}
		setting := fmt.Sprintf("K=%d", k)
		if k == 0 {
			setting = "disabled"
		}
		res.Rows = append(res.Rows, AblationRow{
			Setting: setting, IPC: rep.IPC, MeanLatency: rep.MeanLatency,
			Migrations: rep.Migrations,
			Extra:      map[string]float64{"max-wear": float64(maxWear)},
		})
	}
	return res, nil
}

// AblationMSHR quantifies L2 miss coalescing.
func AblationMSHR(o Options, workload string) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation — L2 MSHR coalescing (Ohm-BW, planar, " + workload + ")"}
	for _, entries := range []int{0, 16, 64, 256} {
		cfg := config.Default(config.OhmBW, config.Planar)
		cfg.GPU.MSHREntries = entries
		o.apply(&cfg)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := sys.RunWorkload(workload)
		if err != nil {
			return nil, err
		}
		setting := fmt.Sprintf("entries=%d", entries)
		if entries == 0 {
			setting = "disabled"
		}
		res.Rows = append(res.Rows, AblationRow{
			Setting: setting, IPC: rep.IPC, MeanLatency: rep.MeanLatency,
			Migrations: rep.Migrations,
			Extra:      map[string]float64{"merges": float64(sys.GPU.MSHRMerges)},
		})
	}
	return res, nil
}

// AblationChannelDivision compares static wavelength division (Table I's
// default) against the dynamic borrowing strategy of [38].
func AblationChannelDivision(o Options, workload string) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation — wavelength division strategy (Ohm-BW, planar, " + workload + ")"}
	for _, dyn := range []bool{false, true} {
		cfg := config.Default(config.OhmBW, config.Planar)
		cfg.Optical.DynamicDivision = dyn
		o.apply(&cfg)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := sys.RunWorkload(workload)
		if err != nil {
			return nil, err
		}
		setting := "static"
		extra := map[string]float64{}
		if dyn {
			setting = "dynamic"
			extra["borrows"] = float64(sys.Mem.Opt.Borrows)
		}
		res.Rows = append(res.Rows, AblationRow{
			Setting: setting, IPC: rep.IPC, MeanLatency: rep.MeanLatency,
			Migrations: rep.Migrations, Extra: extra,
		})
	}
	return res, nil
}

// AblationNoC compares the constant-latency interconnect against the
// contention-aware crossbar (internal/noc).
func AblationNoC(o Options, workload string) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation — SM<->L2 interconnect model (Ohm-BW, planar, " + workload + ")"}
	for _, detailed := range []bool{false, true} {
		cfg := config.Default(config.OhmBW, config.Planar)
		cfg.GPU.NoCDetailed = detailed
		o.apply(&cfg)
		setting := "constant-latency"
		if detailed {
			setting = "crossbar"
		}
		row, err := ablate(cfg, workload, setting)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationPhases stresses migration with phase-changing hot sets: the
// paper's workloads have static hot sets; iterative algorithms rotate
// theirs every superstep, keeping migration active in steady state.
func AblationPhases(o Options, workload string) (*AblationResult, error) {
	w, ok := config.WorkloadByName(workload)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
	res := &AblationResult{Title: "Ablation — phase-changing hot sets (Ohm-BW vs Ohm-base, planar, " + workload + ")"}
	for _, phases := range []int{1, 2, 4, 8} {
		for _, p := range []config.Platform{config.OhmBase, config.OhmBW} {
			cfg := config.Default(p, config.Planar)
			o.apply(&cfg)
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return nil, err
			}
			rep := sys.RunTrace(trace.GeneratePhased(w, &cfg, phases))
			res.Rows = append(res.Rows, AblationRow{
				Setting:     fmt.Sprintf("phases=%d/%s", phases, p),
				IPC:         rep.IPC,
				MeanLatency: rep.MeanLatency,
				Migrations:  rep.Migrations,
				Extra:       map[string]float64{},
			})
		}
	}
	return res, nil
}
