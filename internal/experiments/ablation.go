package experiments

import (
	"fmt"
	"strings"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file holds the ablation studies DESIGN.md calls out: design choices
// the paper fixes that our implementation exposes as knobs. Each ablation
// runs the Ohm-BW planar platform with one knob varied and reports the IPC
// and wear/latency consequences. Every ablation submits its settings to the
// batch runner as one parallel sweep; settings that need simulator
// internals (wear counters, MSHR merges, VC borrows) export them through
// the report's Extra map under the ablExtraPrefix namespace.

// ablExtraPrefix namespaces ablation metrics inside stats.Report.Extra so
// they survive the result cache and are separable from the run-wide extras
// (cache hit rates) every report carries.
const ablExtraPrefix = "abl:"

// AblationRow is one knob setting's outcome.
type AblationRow struct {
	Setting     string
	IPC         float64
	MeanLatency sim.Time
	Migrations  uint64
	Extra       map[string]float64
}

// AblationResult is a titled list of knob settings.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-22s %10s %14s %12s\n", "setting", "IPC", "mem-latency", "migrations")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %10.3f %14s %12d", row.Setting, row.IPC, row.MeanLatency, row.Migrations)
		for _, k := range sortedKeys(row.Extra) {
			fmt.Fprintf(&b, " %s=%.3g", k, row.Extra[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ablationCell is one knob setting awaiting execution.
type ablationCell struct {
	setting string
	cell    batch.Cell
}

// ablationResult runs the settings' cells as one parallel batch on the
// options' engine and folds each report into a row, extracting the
// namespaced ablation extras.
func ablationResult(o Options, title string, acs []ablationCell) (*AblationResult, error) {
	cells := make([]batch.Cell, len(acs))
	for i, ac := range acs {
		cells[i] = ac.cell
	}
	reps, err := o.exec(cells)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: title}
	for i, rep := range reps {
		extra := map[string]float64{}
		for k, v := range rep.Extra {
			if strings.HasPrefix(k, ablExtraPrefix) {
				extra[strings.TrimPrefix(k, ablExtraPrefix)] = v
			}
		}
		res.Rows = append(res.Rows, AblationRow{
			Setting:     acs[i].setting,
			IPC:         rep.IPC,
			MeanLatency: rep.MeanLatency,
			Migrations:  rep.Migrations,
			Extra:       extra,
		})
	}
	return res, nil
}

// ohmBWCell builds an Ohm-BW/planar cell with the knob applied by mutate.
func ohmBWCell(o Options, workload string, mutate func(*config.Config)) batch.Cell {
	cfg := config.Default(config.OhmBW, config.Planar)
	mutate(&cfg)
	o.apply(&cfg)
	return batch.Cell{Platform: config.OhmBW, Mode: config.Planar, Workload: workload, Config: cfg}
}

// AblationHotThreshold sweeps the planar hot-page detector's threshold:
// migrate too eagerly and swaps saturate the memory route; too lazily and
// the hot set stays in XPoint.
func AblationHotThreshold(o Options, workload string) (*AblationResult, error) {
	var acs []ablationCell
	for _, th := range []int{2, 4, 8, 16, 32, 64} {
		th := th
		acs = append(acs, ablationCell{
			setting: fmt.Sprintf("threshold=%d", th),
			cell:    ohmBWCell(o, workload, func(c *config.Config) { c.Memory.HotThreshold = th }),
		})
	}
	return ablationResult(o, "Ablation — planar hot-page threshold (Ohm-BW, "+workload+")", acs)
}

// AblationPageSize sweeps the migration granularity: bigger pages amortize
// command overhead but move more dead bytes per swap.
func AblationPageSize(o Options, workload string) (*AblationResult, error) {
	var acs []ablationCell
	for _, pb := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10} {
		pb := pb
		acs = append(acs, ablationCell{
			setting: fmt.Sprintf("page=%dKiB", pb>>10),
			cell:    ohmBWCell(o, workload, func(c *config.Config) { c.Memory.PageBytes = pb }),
		})
	}
	return ablationResult(o, "Ablation — migration page size (Ohm-BW, planar, "+workload+")", acs)
}

// runMaxWear executes a cell's config and folds the worst per-line XPoint
// wear across controllers into the report.
func runMaxWear(cfg config.Config, workload string) (stats.Report, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return stats.Report{}, err
	}
	rep, err := sys.RunWorkload(workload)
	if err != nil {
		return stats.Report{}, err
	}
	var maxWear uint64
	for mc := 0; mc < cfg.GPU.MemCtrls; mc++ {
		if xc := sys.Mem.XPointAt(mc); xc != nil {
			if w := xc.Wear().Max; w > maxWear {
				maxWear = w
			}
		}
	}
	rep.Extra[ablExtraPrefix+"max-wear"] = float64(maxWear)
	return rep, nil
}

// AblationStartGap compares Start-Gap wear levelling against a static
// layout: performance cost vs maximum wear.
func AblationStartGap(o Options, workload string) (*AblationResult, error) {
	var acs []ablationCell
	for _, k := range []int{0, 10, 100, 1000} {
		k := k
		setting := fmt.Sprintf("K=%d", k)
		if k == 0 {
			setting = "disabled"
		}
		cell := ohmBWCell(o, workload, func(c *config.Config) { c.XPoint.StartGapK = k })
		cell.Salt, cell.RunFn = "abl-max-wear", runMaxWear
		acs = append(acs, ablationCell{setting: setting, cell: cell})
	}
	return ablationResult(o, "Ablation — Start-Gap wear levelling (Ohm-BW, planar, "+workload+")", acs)
}

// AblationMSHR quantifies L2 miss coalescing.
func AblationMSHR(o Options, workload string) (*AblationResult, error) {
	runMerges := func(cfg config.Config, w string) (stats.Report, error) {
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return stats.Report{}, err
		}
		rep, err := sys.RunWorkload(w)
		if err != nil {
			return stats.Report{}, err
		}
		rep.Extra[ablExtraPrefix+"merges"] = float64(sys.GPU.MSHRMerges)
		return rep, nil
	}
	var acs []ablationCell
	for _, entries := range []int{0, 16, 64, 256} {
		entries := entries
		setting := fmt.Sprintf("entries=%d", entries)
		if entries == 0 {
			setting = "disabled"
		}
		cell := ohmBWCell(o, workload, func(c *config.Config) { c.GPU.MSHREntries = entries })
		cell.Salt, cell.RunFn = "abl-mshr-merges", runMerges
		acs = append(acs, ablationCell{setting: setting, cell: cell})
	}
	return ablationResult(o, "Ablation — L2 MSHR coalescing (Ohm-BW, planar, "+workload+")", acs)
}

// AblationChannelDivision compares static wavelength division (Table I's
// default) against the dynamic borrowing strategy of [38].
func AblationChannelDivision(o Options, workload string) (*AblationResult, error) {
	runBorrows := func(cfg config.Config, w string) (stats.Report, error) {
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return stats.Report{}, err
		}
		rep, err := sys.RunWorkload(w)
		if err != nil {
			return stats.Report{}, err
		}
		rep.Extra[ablExtraPrefix+"borrows"] = float64(sys.Mem.Opt.Borrows)
		return rep, nil
	}
	var acs []ablationCell
	for _, dyn := range []bool{false, true} {
		dyn := dyn
		setting := "static"
		cell := ohmBWCell(o, workload, func(c *config.Config) { c.Optical.DynamicDivision = dyn })
		if dyn {
			setting = "dynamic"
			cell.Salt, cell.RunFn = "abl-vc-borrows", runBorrows
		}
		acs = append(acs, ablationCell{setting: setting, cell: cell})
	}
	return ablationResult(o, "Ablation — wavelength division strategy (Ohm-BW, planar, "+workload+")", acs)
}

// AblationNoC compares the constant-latency interconnect against the
// contention-aware crossbar (internal/noc).
func AblationNoC(o Options, workload string) (*AblationResult, error) {
	var acs []ablationCell
	for _, detailed := range []bool{false, true} {
		detailed := detailed
		setting := "constant-latency"
		if detailed {
			setting = "crossbar"
		}
		acs = append(acs, ablationCell{
			setting: setting,
			cell:    ohmBWCell(o, workload, func(c *config.Config) { c.GPU.NoCDetailed = detailed }),
		})
	}
	return ablationResult(o, "Ablation — SM<->L2 interconnect model (Ohm-BW, planar, "+workload+")", acs)
}

// AblationPhases stresses migration with phase-changing hot sets: the
// paper's workloads have static hot sets; iterative algorithms rotate
// theirs every superstep, keeping migration active in steady state.
func AblationPhases(o Options, workload string) (*AblationResult, error) {
	w, ok := config.WorkloadByName(workload)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
	phasedRun := func(phases int) batch.RunFunc {
		return func(cfg config.Config, _ string) (stats.Report, error) {
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return stats.Report{}, err
			}
			return sys.RunTrace(trace.GeneratePhased(w, &cfg, phases)), nil
		}
	}
	var acs []ablationCell
	for _, phases := range []int{1, 2, 4, 8} {
		for _, p := range []config.Platform{config.OhmBase, config.OhmBW} {
			cfg := config.Default(p, config.Planar)
			o.apply(&cfg)
			acs = append(acs, ablationCell{
				setting: fmt.Sprintf("phases=%d/%s", phases, p),
				cell: batch.Cell{
					Platform: p, Mode: config.Planar, Workload: workload, Config: cfg,
					Salt:  fmt.Sprintf("abl-phased-%d", phases),
					RunFn: phasedRun(phases),
				},
			})
		}
	}
	return ablationResult(o, "Ablation — phase-changing hot sets (Ohm-BW vs Ohm-base, planar, "+workload+")", acs)
}
