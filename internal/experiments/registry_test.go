package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/batch"
)

func TestRegistryCoversEveryDriver(t *testing.T) {
	want := []string{
		"abl-division", "abl-mshr", "abl-noc", "abl-pagesize", "abl-phases",
		"abl-startgap", "abl-threshold", "endurance",
		"fig16", "fig17", "fig18", "fig19", "fig20a", "fig20b", "fig21",
		"fig3a", "fig3b", "fig8", "table2", "table3",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registered ids = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s (IDs must be sorted)", i, got[i], want[i])
		}
	}
	ds := Drivers()
	for i, d := range ds {
		if d.ID != want[i] {
			t.Fatalf("Drivers()[%d] = %s, want %s", i, d.ID, want[i])
		}
		if d.Title == "" {
			t.Fatalf("%s has no title", d.ID)
		}
		wantPer := strings.HasPrefix(d.ID, "abl-") || d.ID == "endurance"
		if d.PerWorkload != wantPer {
			t.Fatalf("%s PerWorkload = %v", d.ID, d.PerWorkload)
		}
	}
	if _, ok := Lookup("FIG16"); !ok {
		t.Fatal("Lookup must be case-insensitive")
	}
	if _, ok := Lookup("fig99"); ok {
		t.Fatal("Lookup invented a driver")
	}
}

func TestParamsResolution(t *testing.T) {
	var p Params
	if o := p.Options(); len(o.Workloads) != 0 || o.MaxInstructions != 0 {
		t.Fatalf("zero params must keep full configuration, got %+v", o)
	}
	if p.AblWorkload() != "pagerank" {
		t.Fatalf("default ablation workload = %s", p.AblWorkload())
	}

	p = Params{Quick: true}
	o := p.Options()
	if len(o.Workloads) != 3 || o.MaxInstructions != 4000 {
		t.Fatalf("quick preset = %+v", o)
	}
	// `ohmfig -quick abl-*` has always studied the preset's first workload.
	if p.AblWorkload() != "lud" {
		t.Fatalf("quick ablation subject = %s, want lud", p.AblWorkload())
	}

	// Explicit fields win over the quick preset; Workload wins over
	// Workloads[0] for the single-workload drivers.
	p = Params{Quick: true, Workloads: []string{"sssp"}, MaxInstructions: 700, Workload: "lud"}
	o = p.Options()
	if len(o.Workloads) != 1 || o.Workloads[0] != "sssp" || o.MaxInstructions != 700 {
		t.Fatalf("explicit fields lost under quick: %+v", o)
	}
	if p.AblWorkload() != "lud" {
		t.Fatalf("AblWorkload = %s, want lud", p.AblWorkload())
	}
	if (Params{Workloads: []string{"sssp"}}).AblWorkload() != "sssp" {
		t.Fatal("AblWorkload must fall back to Workloads[0]")
	}

	// Params is the wire form: it must round-trip through JSON.
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Params
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Workload != "lud" || back.MaxInstructions != 700 || !back.Quick {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

// TestDriverRunsOnInjectedEngine proves a registry driver routes its cells
// through a caller-owned engine — the contract the ohmserve job manager
// depends on for per-job cancellation and progress.
func TestDriverRunsOnInjectedEngine(t *testing.T) {
	d, ok := Lookup("abl-noc")
	if !ok {
		t.Fatal("abl-noc not registered")
	}
	runner := batch.NewRunner(2, batch.NewMemCache())
	var cellsSeen int
	o := Options{
		Workloads:       []string{"lud"},
		MaxInstructions: 300,
		Engine: &Engine{
			Runner: runner,
			Ctx:    context.Background(),
			Progress: func(done, total int, hit bool) {
				cellsSeen = done
			},
		},
	}
	r, err := d.Run(o, "lud")
	if err != nil {
		t.Fatal(err)
	}
	if cellsSeen != 2 {
		t.Fatalf("progress saw %d cells, want 2 (constant-latency + crossbar)", cellsSeen)
	}
	if st := runner.Stats(); st.Misses != 2 {
		t.Fatalf("injected runner stats = %+v, want 2 misses", st)
	}
	if !strings.Contains(r.Render(), "crossbar") {
		t.Fatalf("unexpected render:\n%s", r.Render())
	}
	// A cancelled engine context must abort the driver.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o.Engine.Ctx = ctx
	if _, err := d.Run(o, "lud"); err == nil {
		t.Fatal("driver ignored a cancelled engine context")
	}
}

func TestEncodeResultJSONShape(t *testing.T) {
	var b strings.Builder
	if err := EncodeResultJSON(&b, "table3", Table3()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "{\n  \"id\": \"table3\",\n  \"result\":") {
		t.Fatalf("unexpected document prefix:\n%s", out[:60])
	}
	var doc struct {
		ID     string          `json:"id"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != "table3" || len(doc.Result) == 0 {
		t.Fatalf("document lost fields: %+v", doc)
	}
}
