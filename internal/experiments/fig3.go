package experiments

import (
	"fmt"
	"strings"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// fig3SSD returns the SSD configuration for the motivation study. The
// device's latencies and bandwidths are scaled up by the footprint
// scale-down (~150x): compute time does not shrink with MemScale (the GPU
// clock is unscaled), so an unscaled SSD would swamp compute entirely and
// the breakdown would degenerate to 100% staging. Scaling the staging path
// by the same factor as the footprints preserves the testbed's
// staging:compute proportions, which is what Figure 3a reports.
func fig3SSD() ssd.Config {
	return ssd.Config{
		ReadLatency:     500 * sim.Nanosecond,
		WriteLatency:    800 * sim.Nanosecond,
		BandwidthBps:    480e9,
		DMABandwidthBps: 240e9,
		DMASetup:        200 * sim.Nanosecond,
		PJPerBit:        50,
	}
}

// fig3Config is the Origin-style configuration for the GPU-SSD system:
// buffer-granularity staging (256 KiB chunks) from the SSD, as applications
// actually stage working sets.
func fig3Config(o Options) config.Config {
	cfg := config.Default(config.Origin, config.Planar)
	cfg.Memory.PageBytes = 256 << 10
	// The motivation testbed uses the full 24GB K80 (scaled), unlike the
	// capacity-starved Origin of the main evaluation: working sets fit, and
	// the cost under study is staging them from the SSD. The kernel length
	// is fixed (one staging pass per run is the regime Figure 3a reports);
	// Options.MaxInstructions still overrides for quick tests.
	cfg.Memory.DRAMBytes = int64(24<<30) / config.MemScale
	cfg.MaxInstructions = 6000
	o.apply(&cfg)
	return cfg
}

// Fig3aRow is one bar of Figure 3a: the execution-time breakdown of a
// GPU-SSD integrated system into data movement (DMA), storage access, and
// GPU computation.
type Fig3aRow struct {
	Workload string
	DataMove float64 // fraction of total
	Storage  float64
	GPU      float64
}

// Fig3aResult is Figure 3a.
type Fig3aResult struct{ Rows []Fig3aRow }

// Fig3a reproduces the motivation study: a DRAM-only GPU whose working sets
// stage from an SSD over DMA. The paper measured a real GPU+Z-NAND testbed;
// we attach the ssd package's model as the host link of the Origin
// platform. GPU time is the execution time not covered by the storage and
// DMA pipelines (they overlap each other, so the union is approximated by
// the longer of the two plus the shorter's non-overlapped half).
func Fig3a(o Options) (*Fig3aResult, error) {
	// The SSD-staged system is not a plain core.RunConfig cell: the custom
	// RunFn attaches the ssd model as the host link and folds its pipeline
	// occupancy into the report's Extra map. The salt names the variant so
	// the cells stay cacheable (the config + salt fully determine the run).
	runSSD := func(cfg config.Config, w string) (stats.Report, error) {
		dev := ssd.New(fig3SSD(), nil)
		sys, err := core.NewSystemWithHost(cfg, dev)
		if err != nil {
			return stats.Report{}, err
		}
		rep, err := sys.RunWorkload(w)
		if err != nil {
			return stats.Report{}, err
		}
		rep.Extra["ssd-storage-s"] = dev.FlashBusy().Seconds()
		rep.Extra["ssd-dma-s"] = dev.DMABusy().Seconds()
		return rep, nil
	}
	var cells []batch.Cell
	for _, w := range o.workloads() {
		cells = append(cells, batch.Cell{
			Platform: config.Origin, Mode: config.Planar, Workload: w,
			Config: fig3Config(o), Salt: "fig3a-ssd", RunFn: runSSD,
		})
	}
	reps, err := o.exec(cells)
	if err != nil {
		return nil, err
	}
	res := &Fig3aResult{}
	for i, w := range o.workloads() {
		rep := reps[i]
		storage := rep.Extra["ssd-storage-s"]
		dma := rep.Extra["ssd-dma-s"]
		elapsed := rep.Elapsed.Seconds()
		// The flash and DMA stages pipeline: their union is bounded below
		// by the longer stage and above by the sum.
		union := storage
		if dma > union {
			union = dma
		}
		union += 0.5 * (storage + dma - union)
		if union > elapsed {
			union = elapsed
		}
		gpu := elapsed - union
		scale := union / (storage + dma)
		total := storage*scale + dma*scale + gpu
		if total <= 0 {
			total = 1
		}
		res.Rows = append(res.Rows, Fig3aRow{
			Workload: w,
			DataMove: dma * scale / total,
			Storage:  storage * scale / total,
			GPU:      gpu / total,
		})
	}
	return res, nil
}

// Render prints the breakdown rows.
func (r *Fig3aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3a — GPU-SSD integrated system execution breakdown\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "workload", "data-move", "storage", "gpu")
	var dm, st, gp float64
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9.1f%% %9.1f%% %9.1f%%\n",
			row.Workload, 100*row.DataMove, 100*row.Storage, 100*row.GPU)
		dm += row.DataMove
		st += row.Storage
		gp += row.GPU
	}
	n := float64(len(r.Rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-10s %9.1f%% %9.1f%% %9.1f%%\n", "mean", 100*dm/n, 100*st/n, 100*gp/n)
	}
	return b.String()
}

// Fig3bRow is one bar pair of Figure 3b: how much DMA data movement
// degrades the GPU memory subsystem, plus DMA's share of memory-system
// energy.
type Fig3bRow struct {
	Workload       string
	DMAFraction    float64 // execution-time degradation caused by DMA
	DRAMFraction   float64 // remaining (DRAM-access) share
	EnergyFraction float64 // DMA share of memory-system energy
}

// Fig3bResult is Figure 3b.
type Fig3bResult struct{ Rows []Fig3bRow }

// instantHost is a zero-cost host link: the counterfactual "no DMA"
// system Figure 3b compares against.
type instantHost struct{}

func (instantHost) Stage(at sim.Time, n int64, write bool) sim.Time { return at }

// Fig3b measures DMA's execution-time degradation by running the Origin
// platform twice — once with its standard PCIe staging link and once with
// an instant one — the counterfactual the paper's 31% refers to. Unlike
// Figure 3a this uses the main evaluation's capacity-starved Origin, whose
// working sets spill continuously.
func Fig3b(o Options) (*Fig3bResult, error) {
	// Per workload: one standard-PCIe cell (a plain cacheable cell, shared
	// with any other figure that runs Origin/planar) and one counterfactual
	// cell whose RunFn swaps in the instant host link.
	runInstant := func(cfg config.Config, w string) (stats.Report, error) {
		sys, err := core.NewSystemWithHost(cfg, instantHost{})
		if err != nil {
			return stats.Report{}, err
		}
		return sys.RunWorkload(w)
	}
	var cells []batch.Cell
	for _, w := range o.workloads() {
		real := o.cell(config.Origin, config.Planar, w)
		instant := real
		instant.Salt, instant.RunFn = "fig3b-instant-host", runInstant
		cells = append(cells, real, instant)
	}
	reps, err := o.exec(cells)
	if err != nil {
		return nil, err
	}
	res := &Fig3bResult{}
	for i, w := range o.workloads() {
		repReal, repFree := reps[2*i], reps[2*i+1]

		var dmaF float64
		if repReal.Elapsed > 0 {
			dmaF = 1 - float64(repFree.Elapsed)/float64(repReal.Elapsed)
		}
		if dmaF < 0 {
			dmaF = 0
		}
		dmaE := repReal.EnergyPJ["dma"]
		totE := repReal.TotalEnergyPJ()
		var ef float64
		if totE > 0 {
			ef = dmaE / totE
		}
		res.Rows = append(res.Rows, Fig3bRow{
			Workload:       w,
			DMAFraction:    dmaF,
			DRAMFraction:   1 - dmaF,
			EnergyFraction: ef,
		})
	}
	return res, nil
}

// Render prints the rows.
func (r *Fig3bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3b — GPU memory subsystem: DMA degradation vs DRAM accesses\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %12s\n", "workload", "dma", "dram", "dma-energy")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9.1f%% %9.1f%% %11.1f%%\n",
			row.Workload, 100*row.DMAFraction, 100*row.DRAMFraction, 100*row.EnergyFraction)
	}
	return b.String()
}
