package dist

import "repro/internal/obs"

// Process-wide distribution-protocol metrics (promauto idiom: registered
// once in obs.Default at init, served by GET /metrics). They mirror the
// per-Dispatcher Counters snapshot but accumulate across every dispatcher
// in the process, so tests assert deltas. The worker-connected gauge moves
// with balanced Inc/Dec on register/deregister/forget, never absolute
// Sets, for the same reason.
var (
	mLeasesGranted = obs.NewCounter("ohm_dist_leases_granted_total",
		"Cell leases granted to remote workers (steals included).")
	mLeasesExpired = obs.NewCounter("ohm_dist_leases_expired_total",
		"Leases that timed out without a heartbeat or completion.")
	mLeasesStolen = obs.NewCounter("ohm_dist_leases_stolen_total",
		"Duplicate leases granted to idle workers for slow cells (work stealing).")
	mRequeuedCells = obs.NewCounter("ohm_dist_requeued_total",
		"Cells put back in the queue after a lost lease or worker error.")
	mRemoteCompleted = obs.NewCounter("ohm_dist_remote_completed_total",
		"Cells completed by remote workers and accepted by the coordinator.")
	mLocalCompleted = obs.NewCounter("ohm_dist_local_completed_total",
		"Queued cells the coordinator executed on its own runner.")
	mDistFailed = obs.NewCounter("ohm_dist_failed_total",
		"Cells that exhausted their lease attempts or failed terminally.")
	mDistCacheHits = obs.NewCounter("ohm_dist_cache_hits_total",
		"Cells answered from the coordinator cache without dispatching.")
	mHeartbeats = obs.NewCounter("ohm_dist_heartbeats_total",
		"Worker heartbeats processed.")
	mVersionSkew = obs.NewCounter("ohm_dist_version_skew_total",
		"Completions refused because the worker's content address disagreed (binary version skew).")

	mWorkersConnected = obs.NewGauge("ohm_dist_workers_connected",
		"Currently registered workers across live dispatchers.")
	mWorkerCells = obs.NewCounterVec("ohm_dist_worker_cells_total",
		"Accepted cell completions by worker (name, or id when unnamed).", "worker")
)

// workerLabel picks the low-cardinality metric label for a worker: its
// human name when it advertised one, else its coordinator-assigned id.
func workerLabel(w *workerState) string {
	if w.name != "" {
		return w.name
	}
	return w.id
}
