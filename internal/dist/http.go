package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// maxWireBytes bounds worker-protocol request bodies. Reports are a few KB;
// the bound only exists so a confused client cannot buffer unboundedly.
const maxWireBytes = 8 << 20

// Register mounts the coordinator's worker-facing endpoints on mux:
//
//	POST /v1/workers/register        join the cluster -> {worker_id, cadence}
//	POST /v1/workers/{id}/lease      long-poll for cells to run
//	POST /v1/workers/{id}/complete   return one cell's report (or error)
//	POST /v1/workers/{id}/heartbeat  keep leases alive, learn revocations
//	POST /v1/workers/{id}/deregister graceful goodbye: requeue everything
//
// The routes compose with the job API mux (cmd/ohmserve mounts both).
func Register(mux *http.ServeMux, d *Dispatcher) {
	mux.HandleFunc("POST /v1/workers/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeWire(w, r, &req) {
			return
		}
		writeWire(w, http.StatusOK, d.RegisterWorker(req.Name, req.Capacity))
	})
	mux.HandleFunc("POST /v1/workers/{id}/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeWire(w, r, &req) {
			return
		}
		id := r.PathValue("id")
		deadline := time.Now().Add(d.leasePoll())
		for {
			// Capture the wake channel before checking the queue: a cell
			// enqueued between an empty Lease and the select closes the
			// channel we already hold, so the submit is never missed.
			wake := d.wakeCh()
			cells, err := d.Lease(id, req.Max)
			if err != nil {
				writeWireError(w, http.StatusNotFound, err)
				return
			}
			if len(cells) > 0 || time.Now().After(deadline) {
				writeWire(w, http.StatusOK, LeaseResponse{Cells: cells})
				return
			}
			// Long poll: wait for queue growth, the poll deadline, client
			// disconnect or shutdown, then retry.
			wait := time.Until(deadline)
			timer := time.NewTimer(wait)
			select {
			case <-wake:
				timer.Stop()
			case <-timer.C:
			case <-r.Context().Done():
				timer.Stop()
				writeWire(w, http.StatusOK, LeaseResponse{})
				return
			case <-d.stopCh:
				timer.Stop()
				writeWire(w, http.StatusOK, LeaseResponse{})
				return
			}
		}
	})
	mux.HandleFunc("POST /v1/workers/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeWire(w, r, &req) {
			return
		}
		resp, err := d.Complete(r.PathValue("id"), req)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrUnknownWorker) {
				code = http.StatusNotFound
			}
			writeWireError(w, code, err)
			return
		}
		writeWire(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeWire(w, r, &req) {
			return
		}
		revoked, err := d.Heartbeat(r.PathValue("id"), req.TaskIDs)
		if err != nil {
			writeWireError(w, http.StatusNotFound, err)
			return
		}
		writeWire(w, http.StatusOK, HeartbeatResponse{Revoked: revoked})
	})
	mux.HandleFunc("POST /v1/workers/{id}/deregister", func(w http.ResponseWriter, r *http.Request) {
		if err := d.Deregister(r.PathValue("id")); err != nil {
			writeWireError(w, http.StatusNotFound, err)
			return
		}
		writeWire(w, http.StatusOK, map[string]bool{"ok": true})
	})
}

// Handler returns a standalone mux carrying only the worker protocol
// (tests compose it; cmd/ohmserve registers onto its combined mux).
func Handler(d *Dispatcher) http.Handler {
	mux := http.NewServeMux()
	Register(mux, d)
	return mux
}

func decodeWire(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxWireBytes))
	if err := dec.Decode(v); err != nil {
		writeWireError(w, http.StatusBadRequest, fmt.Errorf("dist: bad request body: %w", err))
		return false
	}
	return true
}

func writeWire(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeWireError(w http.ResponseWriter, code int, err error) {
	writeWire(w, code, errorBody{Error: err.Error()})
}
