package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/obs"
)

// defaultLocalSlots sizes execution pools when nothing was configured.
func defaultLocalSlots() int { return runtime.GOMAXPROCS(0) }

// jittered spreads a backoff delay uniformly over [d/2, 3d/2): a fleet
// of workers whose coordinator restarted would otherwise all retry on
// the same doubling schedule and thundering-herd the new process.
func jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Worker is the pull side of the protocol: it registers with a
// coordinator, long-polls for cell leases, runs each cell on its own
// batch.Runner — whose cache makes a worker that has seen a cell before
// answer without simulating — and ships the report back. `ohmserve
// -worker -join <url>` wraps one of these around a runner.
//
// Cancelling the Run context is the SIGTERM path: the worker deregisters
// (which requeues its in-flight cells on the coordinator immediately) and
// exits without waiting for running simulations.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Runner executes leased cells; its cache persists results locally.
	Runner *batch.Runner
	// Capacity is how many cells run concurrently; <=0 means GOMAXPROCS.
	Capacity int
	// Name labels the worker in coordinator logs.
	Name string
	// Client issues the HTTP calls; nil means a default client. Leave
	// Timeout zero — the lease call long-polls up to the coordinator's
	// poll bound.
	Client *http.Client
	// Logger, when non-nil, receives structured pull-loop events
	// (registration, leases, completions, failures), each tagged with the
	// worker and task identity.
	Logger *slog.Logger

	mu       sync.Mutex
	id       string
	hb       time.Duration
	inflight map[string]bool // task id -> still wanted (false = revoked)
}

// Run drives the worker until ctx is cancelled. It retries registration
// and transient coordinator failures with backoff, so workers can start
// before the coordinator and survive its restarts.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil {
		w.Client = &http.Client{}
	}
	if w.inflight == nil {
		w.inflight = make(map[string]bool)
	}
	capacity := w.Capacity
	if capacity <= 0 {
		capacity = defaultLocalSlots()
	}
	if err := w.register(ctx); err != nil {
		return err
	}
	defer w.deregister()

	hbStop := make(chan struct{})
	defer close(hbStop)
	go w.heartbeatLoop(hbStop)

	sem := make(chan struct{}, capacity)
	backoff := 100 * time.Millisecond
	for {
		// Block for one free slot, then opportunistically claim the rest
		// so one lease round-trip can fill every idle slot.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return nil
		}
		free := 1
	claim:
		for free < capacity {
			select {
			case sem <- struct{}{}:
				free++
			default:
				break claim
			}
		}
		unclaim := func(n int) {
			for i := 0; i < n; i++ {
				<-sem
			}
		}
		cells, err := w.lease(ctx, free)
		if ctx.Err() != nil {
			unclaim(free)
			return nil
		}
		if err != nil {
			unclaim(free)
			if isNotFound(err) {
				// The coordinator forgot us (restart, or we were silent
				// past the worker timeout): start over.
				w.log().Warn("dist: worker re-registering", "err", err)
				if rerr := w.register(ctx); rerr != nil {
					return rerr
				}
				continue
			}
			w.log().Warn("dist: lease failed, backing off", "backoff", backoff.String(), "err", err)
			select {
			case <-time.After(jittered(backoff)):
			case <-ctx.Done():
				return nil
			}
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
			continue
		}
		backoff = 100 * time.Millisecond
		unclaim(free - len(cells)) // slots the coordinator had nothing for
		if len(cells) > 0 {
			w.log().Debug("dist: leased cells", "count", len(cells))
		}
		for _, wc := range cells {
			wc := wc
			w.track(wc.TaskID)
			go func() {
				defer func() {
					w.untrack(wc.TaskID)
					<-sem
				}()
				w.runCell(ctx, wc)
			}()
		}
	}
}

// runCell executes one leased cell and completes it. The cache key is
// recomputed and checked against the coordinator's before running: a
// mismatch means the two binaries resolve the cell differently (version
// skew), and running would poison whichever cache is wrong.
func (w *Worker) runCell(ctx context.Context, wc WireCell) {
	req := CompleteRequest{TaskID: wc.TaskID, Key: wc.Key}
	cell := wc.Cell()
	key, err := cell.Key()
	switch {
	case err != nil:
		req.Error = fmt.Sprintf("key cell: %v", err)
	case key != wc.Key:
		req.Error = fmt.Sprintf("cell keyed %.12s here but %.12s at the coordinator (binary version skew?)", key, wc.Key)
	default:
		start := time.Now()
		rep, hit, ph, rerr := w.Runner.RunCellTimed(ctx, cell)
		if rerr != nil {
			req.Error = rerr.Error()
			w.log().Warn("dist: cell failed",
				obs.KeyTaskID, wc.TaskID, obs.KeyCell, cell.String(), "err", rerr)
		} else {
			req.Report = &rep
			req.CacheHit = hit
			if !ph.IsZero() {
				req.Phases = &ph
			}
			w.log().Info("dist: cell complete",
				obs.KeyTaskID, wc.TaskID, obs.KeyCell, cell.String(),
				"cache_hit", hit, "duration", time.Since(start).String())
		}
	}
	if ctx.Err() != nil || w.revoked(wc.TaskID) {
		return // lease gone or shutting down: the coordinator requeues
	}
	// Bound the round trip: a black-holed coordinator must cost this
	// slot seconds, not pin it until TCP gives up (lease expiry already
	// covers the lost result).
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	var resp CompleteResponse
	if err := w.post(cctx, "/v1/workers/"+w.wid()+"/complete", req, &resp); err != nil {
		w.log().Warn("dist: complete failed (coordinator will requeue on expiry)",
			obs.KeyTaskID, wc.TaskID, "err", err)
	}
}

// wid returns the current registered worker id.
func (w *Worker) wid() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// heartbeatLoop extends the leases on in-flight cells and learns which
// were revoked (cancelled jobs, stolen-and-finished cells).
func (w *Worker) heartbeatLoop(stop <-chan struct{}) {
	w.mu.Lock()
	interval := w.hb
	w.mu.Unlock()
	if interval <= 0 {
		interval = DefaultLeaseTTL / 3
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-stop:
			return
		}
		ids := w.inflightIDs()
		if len(ids) == 0 {
			continue
		}
		// Bound each beat by its own interval: a black-holed connection
		// must cost one beat, not stall the loop forever while every
		// lease quietly expires.
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		var resp HeartbeatResponse
		err := w.post(ctx, "/v1/workers/"+w.wid()+"/heartbeat", HeartbeatRequest{TaskIDs: ids}, &resp)
		cancel()
		if err != nil {
			w.log().Warn("dist: heartbeat failed", "err", err)
			continue
		}
		for _, id := range resp.Revoked {
			w.markRevoked(id)
		}
	}
}

// register joins the coordinator, retrying with backoff until ctx dies.
func (w *Worker) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		var resp RegisterResponse
		err := w.post(ctx, "/v1/workers/register", RegisterRequest{Name: w.Name, Capacity: w.Capacity}, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.hb = time.Duration(resp.HeartbeatMillis) * time.Millisecond
			w.mu.Unlock()
			w.log().Info("dist: registered",
				obs.KeyWorker, w.Name, "heartbeat", (time.Duration(resp.HeartbeatMillis) * time.Millisecond).String())
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.log().Warn("dist: register failed, retrying", "backoff", backoff.String(), "err", err)
		select {
		case <-time.After(jittered(backoff)):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// deregister is the graceful goodbye; errors are moot (lease expiry
// covers an unreachable coordinator).
func (w *Worker) deregister() {
	id := w.wid()
	if id == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = w.post(ctx, "/v1/workers/"+id+"/deregister", struct{}{}, &map[string]bool{})
}

// lease asks for up to max cells (long poll).
func (w *Worker) lease(ctx context.Context, max int) ([]WireCell, error) {
	var resp LeaseResponse
	if err := w.post(ctx, "/v1/workers/"+w.wid()+"/lease", LeaseRequest{Max: max}, &resp); err != nil {
		return nil, err
	}
	return resp.Cells, nil
}

// notFoundError marks a 404 so the caller can distinguish "re-register"
// from transient failures.
type notFoundError struct{ msg string }

func (e notFoundError) Error() string { return e.msg }

func isNotFound(err error) bool {
	_, ok := err.(notFoundError)
	return ok
}

// post issues one JSON round trip against the coordinator.
func (w *Worker) post(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return pathError("encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return pathError("request %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.Client.Do(req)
	if err != nil {
		return pathError("%s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
	if err != nil {
		return pathError("%s: read: %w", path, err)
	}
	if resp.StatusCode == http.StatusNotFound {
		return notFoundError{msg: fmt.Sprintf("dist: %s: 404: %s", path, bytes.TrimSpace(data))}
	}
	if resp.StatusCode != http.StatusOK {
		return pathError("%s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return pathError("%s: decode: %w", path, err)
	}
	return nil
}

func (w *Worker) track(id string) {
	w.mu.Lock()
	w.inflight[id] = true
	w.mu.Unlock()
}

func (w *Worker) untrack(id string) {
	w.mu.Lock()
	delete(w.inflight, id)
	w.mu.Unlock()
}

func (w *Worker) markRevoked(id string) {
	w.mu.Lock()
	if _, ok := w.inflight[id]; ok {
		w.inflight[id] = false
	}
	w.mu.Unlock()
}

func (w *Worker) revoked(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	wanted, ok := w.inflight[id]
	return ok && !wanted
}

func (w *Worker) inflightIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]string, 0, len(w.inflight))
	for id, wanted := range w.inflight {
		if wanted {
			ids = append(ids, id)
		}
	}
	return ids
}

// log returns the worker's logger (or the no-op logger) tagged with the
// current worker id.
func (w *Worker) log() *slog.Logger {
	return obs.Or(w.Logger).With(obs.KeyWorkerID, w.wid())
}
