package dist

import (
	"testing"
	"time"
)

// TestJitteredBounds: backoff jitter spreads sleeps over [d/2, 3d/2) so a
// fleet of workers killed together does not reconnect in lockstep, and
// never collapses a backoff to zero or stretches it unboundedly.
func TestJitteredBounds(t *testing.T) {
	const d = time.Second
	for i := 0; i < 1000; i++ {
		got := jittered(d)
		if got < d/2 || got >= 3*d/2 {
			t.Fatalf("jittered(%v) = %v, want [%v, %v)", d, got, d/2, 3*d/2)
		}
	}
	if got := jittered(0); got != 0 {
		t.Fatalf("jittered(0) = %v, want 0", got)
	}
	if got := jittered(-time.Second); got != -time.Second {
		t.Fatalf("jittered(-1s) = %v, want passthrough", got)
	}
}
