// Package dist distributes sweep cells across worker processes. The
// coordinator side (Dispatcher) is a batch.Executor: it leases cells to
// registered workers over HTTP, requeues them when a lease expires or a
// worker disappears, lets idle workers steal long-running cells, and
// inserts every returned report into the coordinator's content-addressed
// cache — so a warm rerun answers from cache no matter which node
// computed a cell. The worker side (Worker) is a pull loop: register,
// lease, simulate on a local batch.Runner (with its own cache), complete.
//
// Correctness rests on the content-addressed cache contract from
// internal/batch: a cell's key hashes its fully-resolved configuration,
// and the simulator is deterministic, so any node's result for a key is
// the result. Workers verify that the key they compute for a shipped cell
// matches the coordinator's; a mismatch (version skew between binaries)
// fails the cell loudly instead of poisoning either cache.
package dist

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/stats"
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is a human label for logs; it need not be unique.
	Name string `json:"name,omitempty"`
	// Capacity is how many cells the worker runs concurrently.
	Capacity int `json:"capacity"`
}

// RegisterResponse assigns the worker its identity and the protocol
// cadence the coordinator expects.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMillis is how long a lease lives without a heartbeat.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	// HeartbeatMillis is how often the worker should heartbeat in-flight
	// cells (a fraction of the lease TTL).
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// LeaseRequest asks for up to Max cells.
type LeaseRequest struct {
	Max int `json:"max"`
}

// LeaseResponse carries zero or more leased cells. An empty list means the
// long poll timed out with nothing runnable; the worker just polls again.
type LeaseResponse struct {
	Cells []WireCell `json:"cells"`
}

// WireCell is one leased cell on the wire: the fully-resolved
// configuration plus workload identity — everything a worker needs to
// reconstruct the exact batch.Cell and reproduce its cache key. Cells
// carrying Go closures (experiment RunFn variants) never travel; the
// dispatcher runs those locally.
type WireCell struct {
	// TaskID names the lease; Complete echoes it.
	TaskID string `json:"task_id"`
	// Key is the coordinator's content address for the cell. The worker
	// recomputes it and refuses to run on mismatch.
	Key string `json:"key"`
	// Workload is the workload name (Table II or spec-local).
	Workload string `json:"workload"`
	// WorkloadDef is the inline definition for custom workloads.
	WorkloadDef *config.Workload `json:"workload_def,omitempty"`
	// Salt is the cell's variant salt (empty for plain cells).
	Salt string `json:"salt,omitempty"`
	// Config is the fully-resolved configuration (it JSON round-trips
	// losslessly, which is also what the cache key hashes).
	Config config.Config `json:"config"`
}

// Cell reconstructs the runnable batch.Cell.
func (w WireCell) Cell() batch.Cell {
	return batch.Cell{
		Platform:    w.Config.Platform,
		Mode:        w.Config.Mode,
		Workload:    w.Workload,
		WorkloadDef: w.WorkloadDef,
		Salt:        w.Salt,
		Config:      w.Config,
	}
}

// wireCell builds the on-the-wire form of a task's cell.
func wireCell(taskID, key string, c batch.Cell) WireCell {
	return WireCell{
		TaskID:      taskID,
		Key:         key,
		Workload:    c.Workload,
		WorkloadDef: c.WorkloadDef,
		Salt:        c.Salt,
		Config:      c.Config,
	}
}

// CompleteRequest returns one finished cell. Exactly one of Report or
// Error is meaningful: a failed simulation ships its error string so the
// coordinator can count attempts and eventually fail the cell.
type CompleteRequest struct {
	TaskID string `json:"task_id"`
	Key    string `json:"key"`
	// Report is the simulation result (present on success).
	Report *stats.Report `json:"report,omitempty"`
	// Error is the failure message (present on failure).
	Error string `json:"error,omitempty"`
	// CacheHit reports whether the worker served the cell from its own
	// cache rather than simulating (coordinator observability only).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Phases is the worker-side phase split of a simulated cell (absent
	// for cache hits and failures), folded into the waiting job's timing
	// breakdown on the coordinator. Older workers simply omit it.
	Phases *obs.Phases `json:"phases,omitempty"`
}

// CompleteResponse acknowledges a completion. Revoked tells the worker
// the lease no longer existed (the job was cancelled or the cell was
// requeued and finished elsewhere); such a result is dropped, because
// without the live task there is no trusted key to verify the report
// against before it could enter the cache.
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
	Revoked  bool `json:"revoked,omitempty"`
}

// HeartbeatRequest extends the leases on the listed tasks and marks the
// worker alive.
type HeartbeatRequest struct {
	TaskIDs []string `json:"task_ids,omitempty"`
}

// HeartbeatResponse lists the subset of heartbeated tasks whose leases are
// gone (cancelled, expired-and-refinished, or stolen-and-finished); the
// worker should abandon them (their completions would be ignored).
type HeartbeatResponse struct {
	Revoked []string `json:"revoked,omitempty"`
}

// errorBody is the JSON error envelope the worker endpoints write.
type errorBody struct {
	Error string `json:"error"`
}

func (e errorBody) String() string { return e.Error }

// pathError formats a protocol-level failure.
func pathError(format string, args ...interface{}) error {
	return fmt.Errorf("dist: "+format, args...)
}
