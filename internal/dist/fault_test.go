package dist_test

// Fault-injection coverage for the distributed path: every test breaks
// the cluster mid-sweep and asserts the job still finishes with results
// byte-identical to the single-process path (or terminates with the
// documented state). The content-addressed cache is what makes all of
// this safe — any node's result for a key is the result — so the tests
// lean on byte comparison, not just completion.

import (
	"bytes"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/dist"
	"repro/internal/serve"
	"repro/internal/stats"
)

// TestWorkerKilledMidCellRequeues simulates kill -9: a worker takes a
// cell and vanishes without completing, heartbeating or deregistering.
// The lease expires, the cell requeues, a healthy worker finishes it,
// and the result is byte-identical to the single-process run.
func TestWorkerKilledMidCellRequeues(t *testing.T) {
	c := newCluster(t, -1, func(d *dist.Dispatcher) {
		d.LeaseTTL = 300 * time.Millisecond
		d.StealAfter = 10 * time.Minute // force the expiry path, not a steal
	})

	id := c.submit(sixCells)

	// The doomed worker grabs one cell and is never heard from again.
	doomed := newRawWorker(t, c)
	deadline := time.Now().Add(5 * time.Second)
	for len(doomed.lease(1)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a cell")
		}
	}

	startWorker(t, c.ts.URL, fakeRun, 2)
	st := c.wait(id, 30*time.Second)
	if st.State != serve.StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if got := c.d.Stats().Requeued; got < 1 {
		t.Fatalf("expected at least one requeue after the worker died, got %d", got)
	}
	// The requeue must have come from lease expiry (the worker never
	// deregistered), and the expiry counter is the observable that says so.
	if got := c.d.Stats().Expired; got < 1 {
		t.Fatalf("expected at least one expired lease after kill -9, got %d", got)
	}
	if !bytes.Equal(c.result(id), referenceBytes(t, sixCells)) {
		t.Fatal("post-failure result differs from single-process run")
	}
}

// TestCancelRevokesWorkerLeases pins the cancellation contract across the
// cluster: DELETE on a job revokes its cells' leases — the worker learns
// through heartbeat and completion responses — and the job reports
// cancelled with the machine-readable result body.
func TestCancelRevokesWorkerLeases(t *testing.T) {
	c := newCluster(t, -1, func(d *dist.Dispatcher) {
		d.LeaseTTL = 10 * time.Minute // nothing may expire behind the test's back
		d.StealAfter = 10 * time.Minute
	})

	id := c.submit(sixCells)
	w := newRawWorker(t, c)
	var cells []dist.WireCell
	deadline := time.Now().Add(5 * time.Second)
	for len(cells) < 2 {
		cells = append(cells, w.lease(2)...)
		if time.Now().After(deadline) {
			t.Fatalf("leased only %d cells", len(cells))
		}
	}

	if code, data := c.do("DELETE", "/v1/jobs/"+id, ""); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d: %s", code, data)
	}
	st := c.wait(id, 10*time.Second)
	if st.State != serve.StateCancelled {
		t.Fatalf("job after cancel: %s", st.State)
	}

	// The worker's next heartbeat learns both leases are gone...
	ids := []string{cells[0].TaskID, cells[1].TaskID}
	hb := w.heartbeat(ids)
	if len(hb.Revoked) != 2 {
		t.Fatalf("heartbeat revoked %v, want both of %v", hb.Revoked, ids)
	}
	// ...and a completion that raced the cancel is flagged revoked while
	// its (valid, content-addressed) report is still accepted for cache.
	rep, err := fakeRun(cells[0].Cell().Config, cells[0].Workload)
	if err != nil {
		t.Fatal(err)
	}
	resp := w.complete(dist.CompleteRequest{TaskID: cells[0].TaskID, Key: cells[0].Key, Report: &rep})
	if !resp.Revoked {
		t.Fatalf("complete after cancel: %+v, want revoked", resp)
	}

	// The cancelled job's result endpoint answers with the structured
	// 410 body rather than a generic error.
	code, data := c.do("GET", "/v1/jobs/"+id+"/result", "")
	if code != http.StatusGone {
		t.Fatalf("cancelled result: HTTP %d: %s", code, data)
	}
	if !strings.Contains(string(data), `"reason": "job_cancelled"`) {
		t.Fatalf("cancelled result body lacks machine-readable reason: %s", data)
	}
}

// TestWorkerSIGTERMRequeuesInFlight stops a worker gracefully while it is
// mid-cell: the deregister requeues its lease immediately (no TTL wait)
// and a second worker completes the sweep byte-identically.
func TestWorkerSIGTERMRequeuesInFlight(t *testing.T) {
	c := newCluster(t, -1, func(d *dist.Dispatcher) {
		d.LeaseTTL = 10 * time.Minute // requeue must come from deregister, not expiry
		d.StealAfter = 10 * time.Minute
	})

	release := make(chan struct{})
	var once bool
	blocking := func(cfg config.Config, workload string) (stats.Report, error) {
		if !once {
			once = true // capacity 1: only the first cell blocks
			<-release
		}
		return fakeRun(cfg, workload)
	}
	defer close(release)

	stop := startWorker(t, c.ts.URL, blocking, 1)
	id := c.submit(sixCells)

	// Wait until the worker holds a lease mid-simulation.
	deadline := time.Now().Add(5 * time.Second)
	for c.d.Stats().Leased == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never leased a cell")
		}
		time.Sleep(5 * time.Millisecond)
	}

	stop() // SIGTERM path: deregister → in-flight cell requeues now

	startWorker(t, c.ts.URL, fakeRun, 2)
	st := c.wait(id, 30*time.Second)
	if st.State != serve.StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if got := c.d.Stats().Requeued; got < 1 {
		t.Fatalf("expected the deregister to requeue, got %d", got)
	}
	if !bytes.Equal(c.result(id), referenceBytes(t, sixCells)) {
		t.Fatal("post-SIGTERM result differs from single-process run")
	}
}

// TestVersionSkewFailsLoudly pins the cache-integrity guard: a worker
// answering with a different content address than dispatched fails the
// cell (and the job) with a version-skew error instead of silently
// storing a wrong-keyed report.
func TestVersionSkewFailsLoudly(t *testing.T) {
	c := newCluster(t, -1, func(d *dist.Dispatcher) {
		d.LeaseTTL = 10 * time.Minute
		d.StealAfter = 10 * time.Minute
	})
	body := `{"spec":{"platforms":["origin"],"modes":["planar"],"workloads":["lud"],"max_instructions":1000}}`
	id := c.submit(body)

	w := newRawWorker(t, c)
	var wc dist.WireCell
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cells := w.lease(1); len(cells) > 0 {
			wc = cells[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never leased the cell")
		}
	}
	rep, err := fakeRun(wc.Cell().Config, wc.Workload)
	if err != nil {
		t.Fatal(err)
	}
	resp := w.complete(dist.CompleteRequest{TaskID: wc.TaskID, Key: strings.Repeat("ab", 32), Report: &rep})
	if resp.Accepted {
		t.Fatalf("mismatched key was accepted: %+v", resp)
	}
	st := c.wait(id, 10*time.Second)
	if st.State != serve.StateFailed || !strings.Contains(st.Error, "skew") {
		t.Fatalf("job = %s (%q), want failed with version-skew error", st.State, st.Error)
	}
}

// TestWorkerErrorRetriesThenFails pins the attempt budget: a cell whose
// execution errors on every worker fails the job after MaxAttempts with
// the worker's error, not a hang.
func TestWorkerErrorRetriesThenFails(t *testing.T) {
	c := newCluster(t, -1, func(d *dist.Dispatcher) {
		d.MaxAttempts = 2
		d.LeaseTTL = 10 * time.Minute
		d.StealAfter = 10 * time.Minute
	})
	failing := func(cfg config.Config, workload string) (stats.Report, error) {
		return stats.Report{}, errors.New("synthetic cell failure")
	}
	startWorker(t, c.ts.URL, failing, 1)

	body := `{"spec":{"platforms":["origin"],"modes":["planar"],"workloads":["lud"],"max_instructions":1000}}`
	id := c.submit(body)
	st := c.wait(id, 30*time.Second)
	if st.State != serve.StateFailed || !strings.Contains(st.Error, "synthetic cell failure") {
		t.Fatalf("job = %s (%q), want failed with the worker error", st.State, st.Error)
	}
}
