package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Default protocol cadence. Tests shrink these aggressively; production
// values only need to be small relative to a cell's simulation time.
const (
	DefaultLeaseTTL    = 15 * time.Second
	DefaultLeasePoll   = 10 * time.Second
	DefaultMaxAttempts = 3
)

// localHolder is the pseudo worker-id marking a cell executing on the
// coordinator's own runner. Local leases never expire (the process that
// would time them out is the process running them) and are never stolen.
const localHolder = "local"

// Dispatcher is the coordinator-side Executor: cells enter a FIFO queue,
// registered workers lease them over HTTP and ship reports back, and the
// coordinator's own runner optionally consumes from the same queue (so a
// coordinator with no workers degrades to exactly the single-process
// path). Leases carry deadlines; a worker that stops heartbeating has its
// cells requeued, an idle worker may steal a long-running cell (duplicate
// execution is safe — results are content-addressed and deterministic,
// first completion wins), and every returned report is inserted into the
// runner's cache so warm reruns answer locally no matter who computed
// what.
//
// One Dispatcher serves every job in the process, which preserves the
// single-flight guarantee across jobs: two jobs requesting the same cell
// key share one task, one lease, one simulation.
type Dispatcher struct {
	// Runner supplies the shared result cache, the local execution slots
	// and the closure fallback (cells carrying a RunFn cannot travel).
	Runner *batch.Runner
	// LeaseTTL is how long a lease survives without a heartbeat; 0 means
	// DefaultLeaseTTL. Set before the first use.
	LeaseTTL time.Duration
	// LeasePoll bounds the lease long poll; 0 means DefaultLeasePoll.
	LeasePoll time.Duration
	// LocalSlots is how many cells the coordinator itself runs
	// concurrently alongside remote workers: 0 means the runner's own
	// worker count (standalone coordinators keep full local throughput),
	// negative disables local execution (pure dispatch).
	LocalSlots int
	// MaxAttempts bounds lease grants per cell before the cell fails; 0
	// means DefaultMaxAttempts. Expired leases and worker-reported errors
	// both consume attempts.
	MaxAttempts int
	// StealAfter is how long a cell must be leased before an idle worker
	// may steal a duplicate lease; 0 means LeaseTTL/2.
	StealAfter time.Duration
	// Logger, when non-nil, receives structured protocol events (worker
	// lifecycle, lease expiry, requeues, steals, version skew).
	Logger *slog.Logger

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	closeCtx  context.Context    // cancelled by Close
	closeStop context.CancelFunc // pairs with closeCtx
	bg        sync.WaitGroup

	mu      sync.Mutex
	wake    chan struct{} // closed and replaced whenever pending grows
	seq     uint64
	wseq    uint64
	workers map[string]*workerState
	pending []*task
	tasks   map[string]*task
	byKey   map[string]*task

	leased      atomic.Uint64
	remoteDone  atomic.Uint64
	localDone   atomic.Uint64
	cacheHits   atomic.Uint64
	requeued    atomic.Uint64
	stolen      atomic.Uint64
	failed      atomic.Uint64
	expired     atomic.Uint64
	heartbeats  atomic.Uint64
	versionSkew atomic.Uint64
}

// log returns the dispatcher's logger, or the no-op logger.
func (d *Dispatcher) log() *slog.Logger { return obs.Or(d.Logger) }

// workerState is the coordinator's view of one registered worker. (The
// worker's advertised capacity shapes its own lease requests; the
// coordinator does not track it.)
type workerState struct {
	id       string
	name     string
	lastSeen time.Time
	leases   map[string]*task // task id -> task
}

// lease is one grant of a task to a holder.
type lease struct {
	deadline time.Time
	granted  time.Time
}

// task is one cell awaiting a result, shared by every job that wants its
// key (single-flight across jobs).
type task struct {
	id       string
	key      string
	cell     batch.Cell
	attempts int
	queued   bool
	created  time.Time
	leases   map[string]lease // holder id -> lease
	waiters  []waiter
}

// waiter is one (job, cell index) slot awaiting a task's result.
type waiter struct {
	call *callState
	idx  int
}

// callState is one RunContext invocation in flight.
type callState struct {
	ctx      context.Context
	span     *obs.JobSpan // from the job context; nil-safe
	reports  []stats.Report
	errs     []error
	progress batch.Progress

	mu        sync.Mutex
	completed int
	total     int
	wg        sync.WaitGroup
}

// resolve records one cell's outcome and feeds the progress callback.
// Progress mirrors Runner.RunContext: serialized, done strictly
// increasing, failed/abandoned cells never reported.
func (c *callState) resolve(idx int, rep stats.Report, hit bool, err error) {
	c.mu.Lock()
	c.reports[idx] = rep
	c.errs[idx] = err
	if err == nil && c.progress != nil {
		c.completed++
		c.progress(c.completed, c.total, hit)
	}
	c.mu.Unlock()
	c.wg.Done()
}

// NewDispatcher returns a Dispatcher executing on (and caching through)
// the given runner. Tune the exported fields before first use.
func NewDispatcher(r *batch.Runner) *Dispatcher {
	ctx, stop := context.WithCancel(context.Background())
	return &Dispatcher{
		Runner:    r,
		stopCh:    make(chan struct{}),
		closeCtx:  ctx,
		closeStop: stop,
		wake:      make(chan struct{}),
		workers:   make(map[string]*workerState),
		tasks:     make(map[string]*task),
		byKey:     make(map[string]*task),
	}
}

func (d *Dispatcher) leaseTTL() time.Duration {
	if d.LeaseTTL > 0 {
		return d.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (d *Dispatcher) leasePoll() time.Duration {
	if d.LeasePoll > 0 {
		return d.LeasePoll
	}
	return DefaultLeasePoll
}

func (d *Dispatcher) maxAttempts() int {
	if d.MaxAttempts > 0 {
		return d.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (d *Dispatcher) stealAfter() time.Duration {
	if d.StealAfter > 0 {
		return d.StealAfter
	}
	return d.leaseTTL() / 2
}

// start launches the expiry scanner and the local consumers on first use.
func (d *Dispatcher) start() {
	d.startOnce.Do(func() {
		slots := d.LocalSlots
		if slots == 0 {
			slots = d.Runner.Workers
			if slots <= 0 {
				slots = defaultLocalSlots()
			}
		}
		for i := 0; i < slots; i++ {
			d.bg.Add(1)
			go d.localConsumer()
		}
		d.bg.Add(1)
		go d.scanner()
	})
}

// Close stops the background goroutines and fails every outstanding cell.
// Jobs already draining resolve with ErrStopped. Local cells queued for a
// simulation slot abort immediately; a cell already simulating runs to
// completion first (the event core is not interruptible), exactly like
// the in-process drain.
func (d *Dispatcher) Close() {
	d.start() // so bg.Wait below has matching Adds even if never used
	d.stopOnce.Do(func() {
		close(d.stopCh)
		d.closeStop()
		d.mu.Lock()
		var resolves []func()
		for id, t := range d.tasks {
			t := t
			delete(d.tasks, id)
			delete(d.byKey, t.key)
			for _, w := range t.waiters {
				w := w
				resolves = append(resolves, func() {
					w.call.resolve(w.idx, stats.Report{}, false, ErrStopped)
				})
			}
			t.waiters = nil
		}
		d.pending = nil
		close(d.wake)
		d.wake = make(chan struct{})
		d.mu.Unlock()
		for _, fn := range resolves {
			fn()
		}
	})
	d.bg.Wait()
}

// ErrStopped fails cells abandoned by Dispatcher.Close.
var ErrStopped = fmt.Errorf("dist: dispatcher stopped")

// Counters is a snapshot of dispatcher traffic: logged by ohmserve at
// drain, asserted on by the fault-injection tests.
type Counters struct {
	Leased          uint64 `json:"leased"`
	RemoteCompleted uint64 `json:"remote_completed"`
	LocalCompleted  uint64 `json:"local_completed"`
	CacheHits       uint64 `json:"cache_hits"`
	Requeued        uint64 `json:"requeued"`
	Stolen          uint64 `json:"stolen"`
	Failed          uint64 `json:"failed"`
	Expired         uint64 `json:"expired"`
	Heartbeats      uint64 `json:"heartbeats"`
	VersionSkew     uint64 `json:"version_skew"`
}

// Stats snapshots the counters.
func (d *Dispatcher) Stats() Counters {
	return Counters{
		Leased:          d.leased.Load(),
		RemoteCompleted: d.remoteDone.Load(),
		LocalCompleted:  d.localDone.Load(),
		CacheHits:       d.cacheHits.Load(),
		Requeued:        d.requeued.Load(),
		Stolen:          d.stolen.Load(),
		Failed:          d.failed.Load(),
		Expired:         d.expired.Load(),
		Heartbeats:      d.heartbeats.Load(),
		VersionSkew:     d.versionSkew.Load(),
	}
}

// WorkerCount reports how many workers are currently registered.
func (d *Dispatcher) WorkerCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.workers)
}

var _ batch.Executor = (*Dispatcher)(nil)

// RunContext executes cells with Runner.RunContext's contract: reports
// positionally aligned, progress serialized, the error of the
// lowest-indexed failing cell, drain-on-cancel. Cacheable closure-free
// cells go through the distributed queue (local consumers and remote
// workers race for them); cells carrying a RunFn closure execute on the
// local runner, which is the only place the closure exists.
func (d *Dispatcher) RunContext(ctx context.Context, cells []batch.Cell, progress batch.Progress) ([]stats.Report, error) {
	d.start()
	call := &callState{
		ctx:      ctx,
		span:     obs.SpanFrom(ctx),
		reports:  make([]stats.Report, len(cells)),
		errs:     make([]error, len(cells)),
		progress: progress,
		total:    len(cells),
	}
	call.wg.Add(len(cells))
	for i := range cells {
		c := cells[i]
		if err := ctx.Err(); err != nil {
			call.resolveSkip(i, err)
			continue
		}
		if c.RunFn != nil || c.Exec == config.ExecAnalytical {
			// Closure cells can't be serialized; run them on the local
			// runner, which still gives them the cache and single-flight
			// (salted cells) or direct execution (unsalted). Analytical
			// cells short-circuit to local execution too: a ~20us estimate
			// costs less than one round trip of lease-queue transport.
			go func(i int, c batch.Cell) {
				rep, hit, err := d.Runner.RunCell(ctx, c)
				call.resolve(i, rep, hit, err)
			}(i, c)
			continue
		}
		key, err := c.Key()
		if err != nil {
			call.resolveSkip(i, err)
			continue
		}
		hitStart := time.Now()
		if rep, ok := d.cacheGet(key); ok {
			d.cacheHits.Add(1)
			mDistCacheHits.Inc()
			// The runner never saw this cell, so fold the hit into its
			// counters here — otherwise ohm_cells_completed{mode} and the
			// healthz cache stats under-report versus a single-process run
			// of the same sweep.
			d.Runner.NoteExternalResolve(c.Exec, false)
			call.span.RecordCell(time.Since(hitStart), obs.Phases{}, true, false)
			call.resolve(i, rep, true, nil)
			continue
		}
		d.submit(call, i, key, c)
	}

	done := make(chan struct{})
	go func() { call.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		// Revoke this job's claim on every unfinished cell. Queued cells
		// leave the queue; remotely leased cells have their leases
		// revoked (the worker learns on its next heartbeat or complete);
		// locally simulating cells run to completion in the background
		// and still land in the cache — but nothing blocks on them.
		d.detach(call)
		<-done
	}

	for i, err := range call.errs {
		if err != nil {
			return nil, fmt.Errorf("dist: cell %d (%s): %w", i, cells[i], err)
		}
	}
	return call.reports, nil
}

// resolveSkip records a cell that never dispatched (context already done,
// unkeyable cell).
func (c *callState) resolveSkip(idx int, err error) {
	c.mu.Lock()
	c.errs[idx] = err
	c.mu.Unlock()
	c.wg.Done()
}

// cacheGet reads the runner's cache if it has one.
func (d *Dispatcher) cacheGet(key string) (stats.Report, bool) {
	if d.Runner.Cache == nil {
		return stats.Report{}, false
	}
	return d.Runner.Cache.Get(key)
}

// submit enqueues one cell, joining an existing task when another job is
// already waiting on the same key.
func (d *Dispatcher) submit(call *callState, idx int, key string, c batch.Cell) {
	d.mu.Lock()
	if t, ok := d.byKey[key]; ok {
		t.waiters = append(t.waiters, waiter{call, idx})
		d.mu.Unlock()
		return
	}
	d.seq++
	t := &task{
		id:      fmt.Sprintf("cell-%08d", d.seq),
		key:     key,
		cell:    c,
		queued:  true,
		created: time.Now(),
		leases:  make(map[string]lease, 1),
		waiters: []waiter{{call, idx}},
	}
	d.tasks[t.id] = t
	d.byKey[key] = t
	d.pending = append(d.pending, t)
	d.wakeAllLocked()
	d.mu.Unlock()
}

// wakeAllLocked signals everyone blocked on queue growth. Callers hold mu.
func (d *Dispatcher) wakeAllLocked() {
	close(d.wake)
	d.wake = make(chan struct{})
}

// detach resolves every unfinished waiter of a cancelled call with the
// context error. A task nobody waits on anymore is dropped: if it was
// queued it leaves the queue, and if it was leased the lease is revoked —
// the holding worker learns through its next heartbeat or completion,
// whose report is then dropped (with the task gone there is no trusted
// key left to admit it to the cache under). Cells the coordinator itself
// is already simulating are the exception: they run to completion on the
// local runner and land in the cache like the in-process drain.
func (d *Dispatcher) detach(call *callState) {
	err := call.ctx.Err()
	if err == nil {
		return
	}
	d.mu.Lock()
	var resolves []waiter
	for id, t := range d.tasks {
		kept := t.waiters[:0]
		for _, w := range t.waiters {
			if w.call == call {
				resolves = append(resolves, w)
			} else {
				kept = append(kept, w)
			}
		}
		t.waiters = kept
		if len(t.waiters) == 0 {
			delete(d.tasks, id)
			delete(d.byKey, t.key)
			d.unqueueLocked(t)
			for holder := range t.leases {
				if w := d.workers[holder]; w != nil {
					delete(w.leases, t.id)
				}
			}
		}
	}
	d.mu.Unlock()
	for _, w := range resolves {
		w.call.resolve(w.idx, stats.Report{}, false, err)
	}
}

// unqueueLocked splices a task out of the pending FIFO.
func (d *Dispatcher) unqueueLocked(t *task) {
	if !t.queued {
		return
	}
	t.queued = false
	for i, p := range d.pending {
		if p == t {
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			return
		}
	}
}

// finalize completes a live task: it leaves every queue, its leases are
// released, and each waiting job receives a private copy of the report.
// The cell's timing folds into each waiting job's span: wall time runs
// from task creation (queueing and transport included), phases are the
// executing side's measurement (shipped over the wire for remote cells),
// and waiters beyond the first record a cache hit — they shared the
// result, exactly like the runner's single-flight followers.
func (d *Dispatcher) finalize(t *task, rep stats.Report, hit bool, ph obs.Phases, remote bool, err error) {
	d.mu.Lock()
	if _, live := d.tasks[t.id]; !live {
		d.mu.Unlock()
		return
	}
	delete(d.tasks, t.id)
	delete(d.byKey, t.key)
	d.unqueueLocked(t)
	for holder := range t.leases {
		if w := d.workers[holder]; w != nil {
			delete(w.leases, t.id)
		}
	}
	ws := t.waiters
	t.waiters = nil
	d.mu.Unlock()

	wall := time.Since(t.created)
	if err != nil {
		d.failed.Add(1)
		mDistFailed.Inc()
		d.log().Error("dist: cell failed", obs.KeyTaskID, t.id, obs.KeyCell, t.cell.String(), "err", err)
		for _, w := range ws {
			w.call.resolve(w.idx, stats.Report{}, false, err)
		}
		return
	}
	for i, w := range ws {
		r := rep
		if i > 0 {
			// Later waiters get a decoded copy so concurrent jobs never
			// alias one report's maps (the same rule Runner's
			// single-flight path follows).
			if cached, ok := d.cacheGet(t.key); ok {
				r = cached
			} else {
				r = cloneReport(rep)
			}
			// Piggyback waiters resolve without the runner ever seeing
			// their cell; count them as shared hits so the mode-split
			// completion counter matches what a single-process run of the
			// same cells would report. The first waiter is counted where
			// the work happened: locally by runCell, remotely by the
			// worker's own runner.
			d.Runner.NoteExternalResolve(t.cell.Exec, true)
			w.call.span.RecordCell(wall, obs.Phases{}, true, remote)
		} else {
			w.call.span.RecordCell(wall, ph, hit, remote)
		}
		w.call.resolve(w.idx, r, hit, nil)
	}
}

// cloneReport deep-copies a report via its JSON form (reports round-trip
// losslessly — the cache depends on that already).
func cloneReport(rep stats.Report) stats.Report {
	data, err := json.Marshal(rep)
	if err != nil {
		return rep
	}
	var out stats.Report
	if err := json.Unmarshal(data, &out); err != nil {
		return rep
	}
	return out
}

// putAndReload inserts a report under its key and returns the stored form,
// so remotely computed and locally cached results are byte-identical (the
// JSON round trip normalizes empty maps exactly like Runner.runCell).
func (d *Dispatcher) putAndReload(key string, rep stats.Report) stats.Report {
	if d.Runner.Cache == nil {
		return rep
	}
	if err := d.Runner.Cache.Put(key, rep); err != nil {
		return rep
	}
	if cached, ok := d.Runner.Cache.Get(key); ok {
		return cached
	}
	return rep
}

// localConsumer pulls queued tasks and runs them on the coordinator's own
// runner — the degenerate "cluster of one" path, and the safety net that
// keeps jobs finishing when no worker ever joins.
func (d *Dispatcher) localConsumer() {
	defer d.bg.Done()
	for {
		t := d.takeLocal()
		if t == nil {
			return
		}
		// closeCtx, not a job context: a leased cell runs to completion
		// (and lands in the cache) even if every waiting job is cancelled
		// meanwhile — identical to the in-process drain semantics — but
		// Close aborts cells still queued for a simulation slot. The job
		// span is fed by finalize, which knows the waiters; the runner
		// can't see them through closeCtx.
		rep, hit, ph, err := d.Runner.RunCellTimed(d.closeCtx, t.cell)
		if err == nil {
			d.localDone.Add(1)
			mLocalCompleted.Inc()
		}
		d.finalize(t, rep, hit, ph, false, err)
	}
}

// takeLocal blocks until a task is available (leasing it to the local
// holder) or the dispatcher stops.
func (d *Dispatcher) takeLocal() *task {
	for {
		d.mu.Lock()
		if len(d.pending) > 0 {
			t := d.pending[0]
			d.pending = d.pending[1:]
			t.queued = false
			t.attempts++
			now := time.Now()
			// Local execution cannot be lost with the coordinator alive,
			// so the lease never expires.
			t.leases[localHolder] = lease{deadline: now.Add(100 * 365 * 24 * time.Hour), granted: now}
			d.mu.Unlock()
			return t
		}
		ch := d.wake
		d.mu.Unlock()
		select {
		case <-ch:
		case <-d.stopCh:
			return nil
		}
	}
}

// scanner expires leases, requeues orphaned cells and forgets workers
// that stopped talking.
func (d *Dispatcher) scanner() {
	defer d.bg.Done()
	tick := d.leaseTTL() / 4
	if tick > time.Second {
		tick = time.Second
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			d.sweepExpired(time.Now())
		case <-d.stopCh:
			return
		}
	}
}

// sweepExpired is one scanner pass.
func (d *Dispatcher) sweepExpired(now time.Time) {
	type failure struct {
		t   *task
		err error
	}
	var failures []failure
	var resolves []waiter

	d.mu.Lock()
	// Workers silent for several lease lifetimes are gone: requeue
	// everything they hold and drop them (a re-appearing worker simply
	// re-registers).
	for id, w := range d.workers {
		if now.Sub(w.lastSeen) > 3*d.leaseTTL() {
			for _, t := range w.leases {
				delete(t.leases, id)
			}
			delete(d.workers, id)
			mWorkersConnected.Dec()
			d.log().Warn("dist: worker silent past timeout, forgotten",
				obs.KeyWorkerID, id, obs.KeyWorker, w.name, "last_seen", now.Sub(w.lastSeen).String())
		}
	}
	for _, t := range d.tasks {
		for holder, l := range t.leases {
			if now.After(l.deadline) {
				delete(t.leases, holder)
				if w := d.workers[holder]; w != nil {
					delete(w.leases, t.id)
				}
				d.expired.Add(1)
				mLeasesExpired.Inc()
				d.log().Warn("dist: lease expired",
					obs.KeyTaskID, t.id, obs.KeyWorkerID, holder, obs.KeyCell, t.cell.String())
			}
		}
		if len(t.leases) == 0 && !t.queued {
			f, rs := d.requeueLocked(t)
			resolves = append(resolves, rs...)
			if f != nil {
				failures = append(failures, failure{t, f})
			}
		}
	}
	d.mu.Unlock()

	for _, w := range resolves {
		w.call.resolve(w.idx, stats.Report{}, false, w.call.ctx.Err())
	}
	for _, f := range failures {
		d.finalize(f.t, stats.Report{}, false, obs.Phases{}, false, f.err)
	}
}

// requeueLocked puts an unleased, unqueued task back in the queue. It
// first drops waiters whose job has been cancelled (returning them for
// resolution outside the lock); a task nobody wants anymore is deleted,
// and a task out of attempts is reported for failure. Callers hold mu.
func (d *Dispatcher) requeueLocked(t *task) (failErr error, cancelled []waiter) {
	kept := t.waiters[:0]
	for _, w := range t.waiters {
		if w.call.ctx.Err() != nil {
			cancelled = append(cancelled, w)
		} else {
			kept = append(kept, w)
		}
	}
	t.waiters = kept
	if len(t.waiters) == 0 {
		delete(d.tasks, t.id)
		delete(d.byKey, t.key)
		return nil, cancelled
	}
	if t.attempts >= d.maxAttempts() {
		return fmt.Errorf("dist: cell failed after %d lease attempts (workers lost or cell erroring)", t.attempts), cancelled
	}
	d.requeued.Add(1)
	mRequeuedCells.Inc()
	d.log().Info("dist: cell requeued", obs.KeyTaskID, t.id, "attempts", t.attempts)
	t.queued = true
	d.pending = append(d.pending, t)
	d.wakeAllLocked()
	return nil, cancelled
}

// --- worker-facing operations (driven by the HTTP handlers) ---

// ErrUnknownWorker rejects calls naming an unregistered (or expired)
// worker id; the worker's recovery is to re-register.
var ErrUnknownWorker = fmt.Errorf("dist: unknown worker")

// RegisterWorker admits a worker and returns its id plus the protocol
// cadence.
func (d *Dispatcher) RegisterWorker(name string, capacity int) RegisterResponse {
	d.start()
	_ = capacity // advertised for logs; lease requests carry the real bound
	d.mu.Lock()
	d.wseq++
	id := fmt.Sprintf("w-%04d", d.wseq)
	d.workers[id] = &workerState{
		id:       id,
		name:     name,
		lastSeen: time.Now(),
		leases:   make(map[string]*task),
	}
	d.mu.Unlock()
	mWorkersConnected.Inc()
	d.log().Info("dist: worker registered",
		obs.KeyWorkerID, id, obs.KeyWorker, name, "capacity", capacity)
	ttl := d.leaseTTL()
	return RegisterResponse{
		WorkerID:        id,
		LeaseTTLMillis:  ttl.Milliseconds(),
		HeartbeatMillis: (ttl / 3).Milliseconds(),
	}
}

// Deregister removes a worker, requeuing everything it holds — the
// graceful goodbye a SIGTERM'd worker sends so its in-flight cells
// reschedule immediately instead of waiting out their leases.
func (d *Dispatcher) Deregister(id string) error {
	type failure struct {
		t   *task
		err error
	}
	var failures []failure
	var resolves []waiter
	d.mu.Lock()
	w, ok := d.workers[id]
	if !ok {
		d.mu.Unlock()
		return ErrUnknownWorker
	}
	delete(d.workers, id)
	mWorkersConnected.Dec()
	requeuing := len(w.leases)
	for _, t := range w.leases {
		delete(t.leases, id)
		if len(t.leases) == 0 && !t.queued {
			f, rs := d.requeueLocked(t)
			resolves = append(resolves, rs...)
			if f != nil {
				failures = append(failures, failure{t, f})
			}
		}
	}
	d.mu.Unlock()
	d.log().Info("dist: worker deregistered",
		obs.KeyWorkerID, id, obs.KeyWorker, w.name, "requeuing", requeuing)
	for _, wt := range resolves {
		wt.call.resolve(wt.idx, stats.Report{}, false, wt.call.ctx.Err())
	}
	for _, f := range failures {
		d.finalize(f.t, stats.Report{}, false, obs.Phases{}, false, f.err)
	}
	return nil
}

// Lease grants up to max pending cells to the worker. With the queue
// empty it attempts to steal: a cell leased elsewhere for longer than
// StealAfter gets a duplicate lease (capped at two holders), so an idle
// worker shortens the tail of a sweep instead of idling behind a slow or
// dying peer.
func (d *Dispatcher) Lease(id string, max int) ([]WireCell, error) {
	if max <= 0 {
		max = 1
	}
	now := time.Now()
	ttl := d.leaseTTL()
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.workers[id]
	if !ok {
		return nil, ErrUnknownWorker
	}
	w.lastSeen = now
	var out []WireCell
	for len(out) < max && len(d.pending) > 0 {
		t := d.pending[0]
		d.pending = d.pending[1:]
		t.queued = false
		t.attempts++
		t.leases[id] = lease{deadline: now.Add(ttl), granted: now}
		w.leases[t.id] = t
		d.leased.Add(1)
		mLeasesGranted.Inc()
		out = append(out, wireCell(t.id, t.key, t.cell))
	}
	if len(out) > 0 {
		return out, nil
	}
	// Work stealing: nothing pending, so look for the longest-leased cell
	// held only by other remote workers.
	var victim *task
	var oldest time.Time
	for _, t := range d.tasks {
		if t.queued || len(t.leases) == 0 || len(t.leases) >= 2 {
			continue
		}
		if _, mine := t.leases[id]; mine {
			continue
		}
		if _, local := t.leases[localHolder]; local {
			continue
		}
		granted := time.Time{}
		for _, l := range t.leases {
			if granted.IsZero() || l.granted.Before(granted) {
				granted = l.granted
			}
		}
		if now.Sub(granted) < d.stealAfter() {
			continue
		}
		if victim == nil || granted.Before(oldest) {
			victim, oldest = t, granted
		}
	}
	if victim != nil {
		victim.leases[id] = lease{deadline: now.Add(ttl), granted: now}
		w.leases[victim.id] = victim
		d.leased.Add(1)
		d.stolen.Add(1)
		mLeasesGranted.Inc()
		mLeasesStolen.Inc()
		d.log().Info("dist: lease stolen",
			obs.KeyTaskID, victim.id, obs.KeyWorkerID, id, "leased_for", now.Sub(oldest).String())
		out = append(out, wireCell(victim.id, victim.key, victim.cell))
	}
	return out, nil
}

// Complete accepts one finished cell from a worker. The report is
// inserted into the cache only after the claimed key is checked against
// the dispatched task's key: the cache answers every future job without
// re-simulating, so nothing unverifiable (unknown workers, dead tasks,
// mismatched keys) may ever write to it.
func (d *Dispatcher) Complete(id string, req CompleteRequest) (CompleteResponse, error) {
	d.mu.Lock()
	w, wok := d.workers[id]
	if wok {
		w.lastSeen = time.Now()
		delete(w.leases, req.TaskID)
	}
	t, live := d.tasks[req.TaskID]
	if live {
		delete(t.leases, id)
	}
	d.mu.Unlock()
	if !wok {
		return CompleteResponse{}, ErrUnknownWorker
	}
	if !live {
		// Lease long gone (cancelled, expired-and-refinished, stolen):
		// without the task there is no trusted key to check the report
		// against, so it is dropped, not cached.
		return CompleteResponse{Accepted: false, Revoked: true}, nil
	}

	if req.Error != "" {
		remoteErr := fmt.Errorf("dist: worker %s: %s", id, req.Error)
		d.log().Warn("dist: worker reported cell error",
			obs.KeyWorkerID, id, obs.KeyTaskID, req.TaskID, "err", req.Error)
		var fail bool
		var resolves []waiter
		d.mu.Lock()
		// Only requeue/fail when no duplicate lease survives: with a
		// stolen copy still running elsewhere, this failure may be the
		// dying holder's, not the cell's.
		if _, still := d.tasks[t.id]; still && !t.queued && len(t.leases) == 0 {
			var f error
			f, resolves = d.requeueLocked(t)
			fail = f != nil
		}
		d.mu.Unlock()
		for _, wt := range resolves {
			wt.call.resolve(wt.idx, stats.Report{}, false, wt.call.ctx.Err())
		}
		if fail {
			d.finalize(t, stats.Report{}, false, obs.Phases{}, true, remoteErr)
		}
		return CompleteResponse{Accepted: true}, nil
	}
	if req.Report == nil {
		return CompleteResponse{}, pathError("complete %s: neither report nor error", req.TaskID)
	}
	if req.Key != t.key {
		// A worker answering with a different content address computed a
		// different cell than we dispatched — version skew. Fail loudly,
		// and above all do not let the report anywhere near the cache.
		d.versionSkew.Add(1)
		mVersionSkew.Inc()
		d.log().Error("dist: version skew refusal",
			obs.KeyWorkerID, id, obs.KeyTaskID, t.id, "got_key", req.Key[:min(12, len(req.Key))], "want_key", t.key[:12])
		d.finalize(t, stats.Report{}, false, obs.Phases{}, true,
			pathError("worker %s returned key %.12s for cell keyed %.12s (binary version skew?)", id, req.Key, t.key))
		return CompleteResponse{Accepted: false}, nil
	}
	norm := d.putAndReload(t.key, *req.Report)
	d.remoteDone.Add(1)
	mRemoteCompleted.Inc()
	mWorkerCells.With(workerLabel(w)).Inc()
	var ph obs.Phases
	if req.Phases != nil {
		ph = *req.Phases
	}
	d.finalize(t, norm, req.CacheHit, ph, true, nil)
	return CompleteResponse{Accepted: true}, nil
}

// Heartbeat marks the worker alive and extends the leases it still holds,
// returning the ids whose leases are gone (cancelled or reassigned) so
// the worker can abandon them.
func (d *Dispatcher) Heartbeat(id string, taskIDs []string) ([]string, error) {
	now := time.Now()
	ttl := d.leaseTTL()
	d.heartbeats.Add(1)
	mHeartbeats.Inc()
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.workers[id]
	if !ok {
		return nil, ErrUnknownWorker
	}
	w.lastSeen = now
	var revoked []string
	for _, tid := range taskIDs {
		t, live := d.tasks[tid]
		if !live {
			revoked = append(revoked, tid)
			continue
		}
		if _, mine := t.leases[id]; !mine {
			revoked = append(revoked, tid)
			continue
		}
		t.leases[id] = lease{deadline: now.Add(ttl), granted: t.leases[id].granted}
	}
	return revoked, nil
}

// WakeCh returns the channel closed on the next queue growth; the lease
// long poll selects on it. Callers must treat it as single-use.
func (d *Dispatcher) wakeCh() <-chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wake
}
