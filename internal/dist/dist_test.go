package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/dist"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeRun is an instant deterministic RunFunc so protocol tests don't pay
// for real simulations; the cell's identity is recoverable from the
// report, which is what the byte-identity assertions compare.
func fakeRun(cfg config.Config, workload string) (stats.Report, error) {
	return stats.Report{
		IPC:      float64(cfg.Platform)*10 + float64(len(workload)),
		Elapsed:  sim.Time(cfg.MaxInstructions) * sim.Nanosecond,
		EnergyPJ: map[string]float64{"laser": float64(cfg.Mode) + 1},
		Extra:    map[string]float64{},
	}, nil
}

// cluster is one coordinator: shared runner + dispatcher + job manager,
// all behind a single httptest server carrying both the job API and the
// worker protocol.
type cluster struct {
	t      *testing.T
	runner *batch.Runner
	d      *dist.Dispatcher
	m      *serve.Manager
	ts     *httptest.Server
}

// newCluster builds a coordinator. localSlots < 0 makes it a pure
// dispatcher (every cell must travel to a worker); tune shrinks the
// protocol timers per test.
func newCluster(t *testing.T, localSlots int, tune func(*dist.Dispatcher)) *cluster {
	t.Helper()
	runner := batch.NewRunner(4, batch.NewMemCache())
	runner.RunFn = fakeRun
	d := dist.NewDispatcher(runner)
	d.LocalSlots = localSlots
	d.LeaseTTL = 500 * time.Millisecond
	d.LeasePoll = 100 * time.Millisecond
	if tune != nil {
		tune(d)
	}
	m := serve.NewManager(runner, 2, 16)
	m.Executor = d
	mux := http.NewServeMux()
	dist.Register(mux, d)
	mux.Handle("/", serve.NewHandler(m))
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
		d.Close()
		ts.Close()
	})
	return &cluster{t: t, runner: runner, d: d, m: m, ts: ts}
}

// do issues one request against the coordinator API.
func (c *cluster) do(method, path, body string) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, c.ts.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.ts.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, data
}

// submit posts a job body and returns the job id.
func (c *cluster) submit(body string) string {
	c.t.Helper()
	code, data := c.do("POST", "/v1/sweeps", body)
	if code != http.StatusAccepted {
		c.t.Fatalf("submit: HTTP %d: %s", code, data)
	}
	var st serve.Status
	if err := json.Unmarshal(data, &st); err != nil {
		c.t.Fatal(err)
	}
	return st.ID
}

// wait polls a job until it reaches a terminal state.
func (c *cluster) wait(id string, timeout time.Duration) serve.Status {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, data := c.do("GET", "/v1/jobs/"+id, "")
		if code != http.StatusOK {
			c.t.Fatalf("job %s: HTTP %d: %s", id, code, data)
		}
		var st serve.Status
		if err := json.Unmarshal(data, &st); err != nil {
			c.t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s still %s after %s (%d/%d cells)", id, st.State, timeout, st.CellsDone, st.CellsTotal)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// result fetches a finished job's result bytes.
func (c *cluster) result(id string) []byte {
	c.t.Helper()
	code, data := c.do("GET", "/v1/jobs/"+id+"/result", "")
	if code != http.StatusOK {
		c.t.Fatalf("result %s: HTTP %d: %s", id, code, data)
	}
	return data
}

// startWorker runs a real Worker against the cluster with its own runner
// and cache; runFn nil means real simulations. The returned stop is the
// graceful SIGTERM path (deregister → requeue).
func startWorker(t *testing.T, url string, runFn batch.RunFunc, capacity int) (stop func()) {
	t.Helper()
	r := batch.NewRunner(capacity, batch.NewMemCache())
	r.RunFn = runFn
	w := &dist.Worker{Coordinator: url, Runner: r, Capacity: capacity, Name: "test-worker"}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return stop
}

// rawWorker drives the wire protocol by hand — the "worker that
// misbehaves" every fault test needs.
type rawWorker struct {
	t   *testing.T
	url string
	id  string
}

func newRawWorker(t *testing.T, c *cluster) *rawWorker {
	t.Helper()
	w := &rawWorker{t: t, url: c.ts.URL}
	var resp dist.RegisterResponse
	w.post("/v1/workers/register", dist.RegisterRequest{Name: "raw", Capacity: 1}, &resp)
	if resp.WorkerID == "" {
		t.Fatal("raw worker: empty id")
	}
	w.id = resp.WorkerID
	return w
}

func (w *rawWorker) post(path string, in, out interface{}) int {
	w.t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		w.t.Fatal(err)
	}
	resp, err := http.Post(w.url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		w.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		w.t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			w.t.Fatalf("%s: decode %s: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

func (w *rawWorker) lease(max int) []dist.WireCell {
	var resp dist.LeaseResponse
	w.post("/v1/workers/"+w.id+"/lease", dist.LeaseRequest{Max: max}, &resp)
	return resp.Cells
}

func (w *rawWorker) complete(req dist.CompleteRequest) dist.CompleteResponse {
	var resp dist.CompleteResponse
	w.post("/v1/workers/"+w.id+"/complete", req, &resp)
	return resp
}

func (w *rawWorker) heartbeat(ids []string) dist.HeartbeatResponse {
	var resp dist.HeartbeatResponse
	w.post("/v1/workers/"+w.id+"/heartbeat", dist.HeartbeatRequest{TaskIDs: ids}, &resp)
	return resp
}

// sixCells is a small sweep body expanding to 2 platforms x 3 workloads.
const sixCells = `{"spec":{"platforms":["origin","ohm-bw"],"modes":["planar"],"workloads":["lud","bfsdata","pagerank"],"max_instructions":1000}}`

// referenceBytes runs the same job on a plain single-process manager
// (LocalExecutor, same fake RunFn) and returns its result bytes.
func referenceBytes(t *testing.T, body string) []byte {
	t.Helper()
	runner := batch.NewRunner(4, batch.NewMemCache())
	runner.RunFn = fakeRun
	m := serve.NewManager(runner, 1, 8)
	ts := httptest.NewServer(serve.NewHandler(m))
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	c := &cluster{t: t, ts: ts, m: m, runner: runner}
	id := c.submit(body)
	if st := c.wait(id, 20*time.Second); st.State != serve.StateDone {
		t.Fatalf("reference job: %s (%s)", st.State, st.Error)
	}
	return c.result(id)
}

// TestDistributedSweepMatchesSingleProcess is the core contract: a sweep
// dispatched to two remote workers returns byte-identical results to the
// single-process path, and a warm resubmit answers entirely from the
// coordinator's cache.
func TestDistributedSweepMatchesSingleProcess(t *testing.T) {
	c := newCluster(t, -1, nil) // pure dispatch: every cell must travel
	startWorker(t, c.ts.URL, fakeRun, 2)
	startWorker(t, c.ts.URL, fakeRun, 2)

	id := c.submit(sixCells)
	st := c.wait(id, 30*time.Second)
	if st.State != serve.StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if st.Simulated == 0 {
		t.Fatalf("expected fresh simulations on a cold cluster, got 0 (hits=%d)", st.CacheHits)
	}
	got := c.result(id)
	want := referenceBytes(t, sixCells)
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed result differs from single-process:\n got: %s\nwant: %s", got, want)
	}

	// Warm resubmit: every cell answers from the coordinator cache — the
	// workers are never consulted.
	id2 := c.submit(sixCells)
	st2 := c.wait(id2, 10*time.Second)
	if st2.State != serve.StateDone {
		t.Fatalf("warm job: %s (%s)", st2.State, st2.Error)
	}
	if st2.Simulated != 0 {
		t.Fatalf("warm resubmit simulated %d cells, want 0", st2.Simulated)
	}
	if got2 := c.result(id2); !bytes.Equal(got2, got) {
		t.Fatal("warm resubmit bytes differ from cold run")
	}
}

// TestDistributedFig16MatchesGolden runs the acceptance scenario with
// real simulations: a fig16 -quick experiment dispatched to two workers
// must be byte-identical to the committed golden report (which the
// single-process golden test also pins).
func TestDistributedFig16MatchesGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "fig16.json"))
	if err != nil {
		t.Skipf("golden corpus not built yet: %v", err)
	}
	c := newCluster(t, -1, func(d *dist.Dispatcher) {
		d.LeaseTTL = 10 * time.Second // real cells can take a while under -race
	})
	c.runner.RunFn = nil // real simulations end to end
	startWorker(t, c.ts.URL, nil, 2)
	startWorker(t, c.ts.URL, nil, 2)

	id := c.submit(`{"experiment":"fig16","params":{"quick":true}}`)
	st := c.wait(id, 5*time.Minute)
	if st.State != serve.StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if got := c.result(id); !bytes.Equal(got, golden) {
		t.Fatalf("distributed fig16 differs from golden (%d vs %d bytes)", len(got), len(golden))
	}
}

// TestSingleFlightAcrossJobsDistributed pins that two concurrent jobs
// wanting the same cells share one task each: the worker simulates every
// distinct cell exactly once.
func TestSingleFlightAcrossJobsDistributed(t *testing.T) {
	c := newCluster(t, -1, nil)
	var sims atomic.Int64
	counting := func(cfg config.Config, workload string) (stats.Report, error) {
		sims.Add(1)
		time.Sleep(5 * time.Millisecond)
		return fakeRun(cfg, workload)
	}

	// Submit both jobs before any worker exists, so their cells are
	// queued (and key-deduplicated) before execution starts.
	id1 := c.submit(sixCells)
	id2 := c.submit(sixCells)
	startWorker(t, c.ts.URL, counting, 2)

	st1, st2 := c.wait(id1, 30*time.Second), c.wait(id2, 30*time.Second)
	if st1.State != serve.StateDone || st2.State != serve.StateDone {
		t.Fatalf("jobs: %s/%s", st1.State, st2.State)
	}
	if got := sims.Load(); got != 6 {
		t.Fatalf("worker simulated %d cells for two identical 6-cell jobs, want 6", got)
	}
	if r1, r2 := c.result(id1), c.result(id2); !bytes.Equal(r1, r2) {
		t.Fatal("the two jobs' results differ")
	}
}

// TestWorkStealing pins that an idle worker picks up a cell leased to a
// stalled peer once StealAfter elapses, and that the stalled peer's late
// completion is answered with a revocation instead of corrupting state.
func TestWorkStealing(t *testing.T) {
	c := newCluster(t, -1, func(d *dist.Dispatcher) {
		d.LeaseTTL = 10 * time.Minute // expiry must not rescue the test
		d.StealAfter = 50 * time.Millisecond
	})
	stalled := newRawWorker(t, c)

	body := `{"spec":{"platforms":["origin"],"modes":["planar"],"workloads":["lud"],"max_instructions":1000}}`
	id := c.submit(body)

	// The stalled worker takes the only cell and sits on it.
	var wc dist.WireCell
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cells := stalled.lease(1); len(cells) > 0 {
			wc = cells[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled worker never got the cell")
		}
	}

	startWorker(t, c.ts.URL, fakeRun, 1)
	st := c.wait(id, 30*time.Second)
	if st.State != serve.StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if got := c.d.Stats().Stolen; got < 1 {
		t.Fatalf("expected at least one steal, got %d", got)
	}
	if !bytes.Equal(c.result(id), referenceBytes(t, body)) {
		t.Fatal("stolen-cell result differs from single-process")
	}

	// The stalled worker finally answers: lease long gone, so the
	// completion is flagged revoked and its report dropped (no live task
	// key remains to verify it against).
	rep, err := fakeRun(wc.Cell().Config, wc.Workload)
	if err != nil {
		t.Fatal(err)
	}
	resp := stalled.complete(dist.CompleteRequest{TaskID: wc.TaskID, Key: wc.Key, Report: &rep})
	if !resp.Revoked {
		t.Fatalf("late completion should report a revoked lease, got %+v", resp)
	}
}

// TestHealthzReportsWorkers pins the /v1/healthz worker gauge.
func TestHealthzReportsWorkers(t *testing.T) {
	c := newCluster(t, -1, nil)
	code, data := c.do("GET", "/v1/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	var h struct {
		Workers *int `json:"workers_connected"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Workers == nil || *h.Workers != 0 {
		t.Fatalf("workers_connected = %v, want 0", h.Workers)
	}
	newRawWorker(t, c)
	_, data = c.do("GET", "/v1/healthz", "")
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Workers == nil || *h.Workers != 1 {
		t.Fatalf("workers_connected = %v after register, want 1", h.Workers)
	}
}

// TestWireCellRoundTrip pins that a cell survives the wire byte-for-byte:
// the reconstructed cell produces the same content address.
func TestWireCellRoundTrip(t *testing.T) {
	spec := batch.SweepSpec{}
	cells, err := spec.Cells() // the full default grid, all 140 cells
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		key, err := cell.Key()
		if err != nil {
			t.Fatal(err)
		}
		wire, err := json.Marshal(dist.WireCell{TaskID: "x", Key: key, Workload: cell.Workload,
			WorkloadDef: cell.WorkloadDef, Salt: cell.Salt, Config: cell.Config})
		if err != nil {
			t.Fatal(err)
		}
		var back dist.WireCell
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatal(err)
		}
		key2, err := back.Cell().Key()
		if err != nil {
			t.Fatal(err)
		}
		if key2 != key {
			t.Fatalf("cell %s: key changed across the wire: %s -> %s", cell, key, key2)
		}
	}
}

// TestDispatcherFoldsExternalResolvesIntoRunnerCounters pins the
// mode-split accounting contract for clustered runs: cells the
// coordinator resolves without its runner ever seeing them — the
// dispatcher's own cache-hit fast path and piggyback waiters on a shared
// in-flight task — must still land in the runner's hit/shared counters
// (and therefore in ohm_cells_completed{mode} and /v1/healthz), so a
// cluster does not under-report completed cells versus a single-process
// run of the same sweep. The first waiter on a remotely executed cell is
// deliberately NOT counted here: the worker's runner counted it, and
// counting it again would double the cluster-wide total.
func TestDispatcherFoldsExternalResolvesIntoRunnerCounters(t *testing.T) {
	c := newCluster(t, -1, nil) // pure dispatch: every cell must travel

	// Two identical jobs queued before any worker exists: each of the six
	// distinct cells gets one task with two waiters. The first waiter is
	// the worker's work (not counted on the coordinator); the second is a
	// piggyback resolve (counted as a shared hit).
	id1 := c.submit(sixCells)
	id2 := c.submit(sixCells)
	startWorker(t, c.ts.URL, fakeRun, 2)
	if st := c.wait(id1, 30*time.Second); st.State != serve.StateDone {
		t.Fatalf("job 1: %s (%s)", st.State, st.Error)
	}
	if st := c.wait(id2, 30*time.Second); st.State != serve.StateDone {
		t.Fatalf("job 2: %s (%s)", st.State, st.Error)
	}
	st := c.runner.Stats()
	if st.Hits != 6 || st.Shared != 6 || st.Misses != 0 {
		t.Fatalf("after two piggybacked jobs: hits=%d shared=%d misses=%d, want 6/6/0",
			st.Hits, st.Shared, st.Misses)
	}

	// A warm resubmit answers entirely from the dispatcher's cache-hit
	// fast path; each of those must count as a (non-shared) hit too.
	id3 := c.submit(sixCells)
	if s := c.wait(id3, 10*time.Second); s.State != serve.StateDone {
		t.Fatalf("warm job: %s (%s)", s.State, s.Error)
	}
	st = c.runner.Stats()
	if st.Hits != 12 || st.Shared != 6 || st.Misses != 0 {
		t.Fatalf("after warm resubmit: hits=%d shared=%d misses=%d, want 12/6/0",
			st.Hits, st.Shared, st.Misses)
	}
}

// TestOptimizeCancelRevokesWorkerLease runs the optimizer's DES
// confirmation phase against a pure dispatcher, leases a confirmation
// cell to a hand-driven worker that never completes it, cancels the job,
// and requires the worker's next heartbeat to revoke the lease — cluster
// capacity must not stay pinned to a dead job.
func TestOptimizeCancelRevokesWorkerLease(t *testing.T) {
	c := newCluster(t, -1, nil) // pure dispatch: confirm cells must travel

	// Analytical evaluations short-circuit to the coordinator's runner,
	// so the job reaches its confirm phase with no worker connected; the
	// DES confirmation cells queue on the dispatcher.
	body := `{
	  "base": {"preset": "ohm-bw", "mode": "two-level", "workload": "pagerank",
	           "overrides": {"max_instructions": 2000}},
	  "axes": [{"path": "optical.waveguides", "min": 1, "max": 8}],
	  "objectives": [{"metric": "throughput"}],
	  "search": {"algorithm": "random", "seed": 5, "budget": 4, "confirm_top": 2}
	}`
	code, data := c.do("POST", "/v1/optimize", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, data)
	}
	var st serve.Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}

	w := newRawWorker(t, c)
	var cells []dist.WireCell
	deadline := time.Now().Add(30 * time.Second)
	for len(cells) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no confirmation cell ever queued for lease")
		}
		cells = w.lease(1)
		if len(cells) == 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}
	taskID := cells[0].TaskID

	if code, data := c.do("DELETE", "/v1/jobs/"+st.ID, ""); code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", code, data)
	}
	fin := c.wait(st.ID, 30*time.Second)
	if fin.State != serve.StateCancelled {
		t.Fatalf("cancelled optimizer job = %+v", fin)
	}

	// The worker still holds the lease from its point of view; the
	// heartbeat must hand the revocation back.
	deadline = time.Now().Add(10 * time.Second)
	for {
		hb := w.heartbeat([]string{taskID})
		if len(hb.Revoked) == 1 && hb.Revoked[0] == taskID {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease on %s never revoked after cancel: %+v", taskID, hb)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
