package batch

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/stats"
)

// Row is one cell's identity plus its report: the unit of machine-readable
// sweep output shared by cmd/ohmbatch and the ohmserve daemon, so a saved
// file and a served response are interchangeable.
type Row struct {
	Index      int    `json:"index"`
	Platform   string `json:"platform"`
	Mode       string `json:"mode"`
	Workload   string `json:"workload"`
	Waveguides int    `json:"waveguides"`
	// Overrides are the dotted-path settings the cell's expansion applied
	// (empty for plain grid cells).
	Overrides map[string]interface{} `json:"overrides,omitempty"`
	// WorkloadDef is the inline definition of a spec-defined custom
	// workload (nil for Table II workloads).
	WorkloadDef *config.Workload `json:"workload_def,omitempty"`
	Report      stats.Report     `json:"report"`
}

// Rows pairs cells with their reports positionally.
func Rows(cells []Cell, reports []stats.Report) []Row {
	rows := make([]Row, len(cells))
	for i, c := range cells {
		rows[i] = Row{
			Index:       c.Index,
			Platform:    c.Platform.String(),
			Mode:        config.ModeString(c.Mode, c.Exec),
			Workload:    c.Workload,
			Waveguides:  c.Config.Optical.Waveguides,
			Overrides:   c.Overrides,
			WorkloadDef: c.WorkloadDef,
			Report:      reports[i],
		}
	}
	return rows
}

// WriteJSON emits the sweep results as an indented JSON row array.
func WriteJSON(w io.Writer, cells []Cell, reports []stats.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Rows(cells, reports))
}

// csvHeader is the WriteCSV column set, exported through the header row.
var csvHeader = []string{
	"index", "platform", "mode", "workload", "waveguides",
	"elapsed_ps", "ipc", "mean_latency_ps", "p99_latency_ps",
	"copy_fraction", "instructions", "mem_requests", "migrations",
	"regular_bytes", "copy_bytes", "energy_pj", "overrides",
}

// overridesLabel renders a cell's override patch as a stable
// "path=value;path=value" string for the CSV overrides column.
func overridesLabel(o map[string]interface{}) string {
	if len(o) == 0 {
		return ""
	}
	paths := make([]string, 0, len(o))
	for p := range o {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for i, p := range paths {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s=%v", p, o[p])
	}
	return b.String()
}

// WriteCSV emits the sweep results as CSV with a fixed header.
func WriteCSV(w io.Writer, cells []Cell, reports []stats.Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i, c := range cells {
		r := reports[i]
		rec := []string{
			strconv.Itoa(c.Index),
			c.Platform.String(),
			config.ModeString(c.Mode, c.Exec),
			c.Workload,
			strconv.Itoa(c.Config.Optical.Waveguides),
			strconv.FormatInt(int64(r.Elapsed), 10),
			strconv.FormatFloat(r.IPC, 'g', -1, 64),
			strconv.FormatInt(int64(r.MeanLatency), 10),
			strconv.FormatInt(int64(r.P99Latency), 10),
			strconv.FormatFloat(r.CopyFraction, 'g', -1, 64),
			strconv.FormatUint(r.Instructions, 10),
			strconv.FormatUint(r.MemRequests, 10),
			strconv.FormatUint(r.Migrations, 10),
			strconv.FormatUint(r.RegularBytes, 10),
			strconv.FormatUint(r.CopyBytes, 10),
			strconv.FormatFloat(r.TotalEnergyPJ(), 'g', -1, 64),
			overridesLabel(c.Overrides),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
