package batch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// mustCells expands a spec, failing the test on spec errors.
func mustCells(t *testing.T, spec SweepSpec) []Cell {
	t.Helper()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// fakeRun is a deterministic, instant RunFunc for engine-mechanics tests.
func fakeRun(cfg config.Config, workload string) (stats.Report, error) {
	return stats.Report{
		IPC:         float64(cfg.Platform) + float64(len(workload)),
		Elapsed:     sim.Time(cfg.MaxInstructions) * sim.Nanosecond,
		MeanLatency: sim.Time(cfg.Optical.Waveguides) * sim.Microsecond,
		EnergyPJ:    map[string]float64{"laser": float64(cfg.Mode) + 1},
		Extra:       map[string]float64{},
	}, nil
}

func TestSpecCellsDeterministicOrder(t *testing.T) {
	spec := SweepSpec{
		Platforms:       []config.Platform{config.OhmBase, config.OhmBW},
		Modes:           []config.MemMode{config.Planar, config.TwoLevel},
		Workloads:       []string{"lud", "sssp"},
		Waveguides:      []int{1, 4},
		MaxInstructions: 500,
	}
	cells := mustCells(t, spec)
	if len(cells) != 2*2*2*2 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	// Modes outermost, then waveguides, platforms, workloads.
	want0 := "Ohm-base/planar/lud@optical.waveguides=1"
	if cells[0].String() != want0 {
		t.Fatalf("cells[0] = %s, want %s", cells[0], want0)
	}
	if cells[0].Config.Optical.Waveguides != 1 || cells[2].Config.Optical.Waveguides != 1 {
		t.Fatal("waveguide override misplaced")
	}
	if cells[4].Config.Optical.Waveguides != 4 {
		t.Fatalf("cells[4] waveguides = %d, want 4", cells[4].Config.Optical.Waveguides)
	}
	if cells[8].Mode != config.TwoLevel {
		t.Fatalf("cells[8] mode = %s, want two-level", cells[8].Mode)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cells[%d].Index = %d", i, c.Index)
		}
		if c.Config.MaxInstructions != 500 {
			t.Fatal("MaxInstructions override lost")
		}
	}
	// Expansion is itself deterministic.
	again := mustCells(t, spec)
	if !reflect.DeepEqual(cells, again) {
		t.Fatal("two expansions of one spec differ")
	}
}

func TestSpecDefaultsToFullPaperGrid(t *testing.T) {
	cells := mustCells(t, SweepSpec{})
	if len(cells) != 7*2*10 {
		t.Fatalf("default grid = %d cells, want 140", len(cells))
	}
	for _, c := range cells {
		if err := c.Config.Validate(); err != nil {
			t.Fatalf("%s: %v", c, err)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := SweepSpec{
		Platforms:       []config.Platform{config.Origin, config.OhmWOM},
		Modes:           []config.MemMode{config.TwoLevel},
		Workloads:       []string{"pagerank"},
		Waveguides:      []int{2, 8},
		MaxInstructions: 1234,
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip lost data:\n%+v\n%+v", spec, back)
	}
	if err := json.Unmarshal([]byte(`{"platforms":["nope"]}`), &back); err == nil {
		t.Fatal("accepted unknown platform name")
	}
}

func TestCellKeyDiscriminates(t *testing.T) {
	base := Cell{Config: config.Default(config.OhmBW, config.Planar), Workload: "lud"}
	k0, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	same := base
	if k, _ := same.Key(); k != k0 {
		t.Fatal("identical cells hash differently")
	}
	workload := base
	workload.Workload = "sssp"
	salt := base
	salt.Salt = "variant"
	knob := base
	knob.Config.Optical.Waveguides = 3
	instr := base
	instr.Config.MaxInstructions = 999
	seen := map[string]string{k0: "base"}
	for _, c := range []struct {
		name string
		cell Cell
	}{{"workload", workload}, {"salt", salt}, {"knob", knob}, {"instr", instr}} {
		k, err := c.cell.Key()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("%s collides with %s", c.name, prev)
		}
		seen[k] = c.name
	}
}

// runAll executes the spec with the given worker count and fake runner,
// returning the serialized results for byte-comparison.
func runAll(t *testing.T, workers int, cache Cache, run RunFunc, cells []Cell) []byte {
	t.Helper()
	r := &Runner{Workers: workers, Cache: cache, RunFn: run}
	reps, err := r.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(reps)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	spec := SweepSpec{
		Platforms:  []config.Platform{config.Origin, config.Hetero, config.OhmBW},
		Modes:      config.AllModes(),
		Workloads:  []string{"lud", "sssp", "pagerank"},
		Waveguides: []int{1, 2},
	}
	cells := mustCells(t, spec)
	serial := runAll(t, 1, nil, fakeRun, cells)
	parallel := runAll(t, 8, nil, fakeRun, cells)
	if string(serial) != string(parallel) {
		t.Fatal("parallel sweep output differs from serial")
	}
	// And with a shared cache in the loop (parallel writes, then reads).
	cache := NewMemCache()
	first := runAll(t, 8, cache, fakeRun, cells)
	warm := runAll(t, 8, cache, fakeRun, cells)
	if string(first) != string(serial) || string(warm) != string(serial) {
		t.Fatal("cached results differ from uncached")
	}
}

// TestParallelMatchesSerialRealSim runs genuine simulations through both a
// serial and a parallel runner and requires byte-identical reports — the
// acceptance criterion that makes the worker pool safe to put under every
// figure driver. Origin is included deliberately: its host-spill path once
// picked eviction victims by map iteration order, which made repeated runs
// of one config diverge.
func TestParallelMatchesSerialRealSim(t *testing.T) {
	spec := SweepSpec{
		Platforms:       []config.Platform{config.Origin, config.OhmBase, config.OhmBW},
		Modes:           []config.MemMode{config.Planar},
		Workloads:       []string{"lud", "bfstopo"},
		MaxInstructions: 400,
	}
	cells := mustCells(t, spec)
	serial := runAll(t, 1, nil, nil, cells) // nil RunFn = core.RunConfig
	parallel := runAll(t, 4, nil, nil, cells)
	if string(serial) != string(parallel) {
		t.Fatal("parallel real-sim sweep output differs from serial")
	}
	// Re-running the sweep in the same process must also be identical:
	// result caching assumes the simulator is a pure function of the
	// config, so any hidden global state is a correctness bug here.
	again := runAll(t, 4, nil, nil, cells)
	if string(serial) != string(again) {
		t.Fatal("re-running the sweep in-process changed results")
	}
}

func TestWarmCacheSkipsSimulation(t *testing.T) {
	var calls atomic.Int64
	counting := func(cfg config.Config, w string) (stats.Report, error) {
		calls.Add(1)
		return fakeRun(cfg, w)
	}
	spec := SweepSpec{
		Platforms: []config.Platform{config.OhmBase, config.Oracle},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"lud", "sssp"},
	}
	cache, err := NewDiskCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}

	cold := &Runner{Workers: 4, Cache: cache, RunFn: counting}
	if _, err := cold.Run(mustCells(t, spec)); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("cold run simulated %d cells, want 4", got)
	}
	if st := cold.Stats(); st.Hits != 0 || st.Misses != 4 {
		t.Fatalf("cold stats = %+v", st)
	}

	warm := &Runner{Workers: 4, Cache: cache, RunFn: counting}
	reps, err := warm.Run(mustCells(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("warm run re-simulated: %d total calls, want 4", got)
	}
	if st := warm.Stats(); st.Hits != 4 || st.Misses != 0 {
		t.Fatalf("warm stats = %+v", st)
	}
	if reps[0].EnergyPJ["laser"] != float64(config.Planar)+1 {
		t.Fatal("cached report lost its energy map")
	}
}

func TestCustomRunFnCaching(t *testing.T) {
	var calls atomic.Int64
	custom := func(cfg config.Config, w string) (stats.Report, error) {
		calls.Add(1)
		return fakeRun(cfg, w)
	}
	cfg := config.Default(config.OhmBW, config.Planar)
	unsalted := Cell{Config: cfg, Workload: "lud", RunFn: custom}
	salted := Cell{Config: cfg, Workload: "lud", Salt: "variant", RunFn: custom}

	r := &Runner{Workers: 1, Cache: NewMemCache()}
	for i := 0; i < 2; i++ {
		if _, err := r.Run([]Cell{unsalted, salted}); err != nil {
			t.Fatal(err)
		}
	}
	// Unsalted closures are opaque: never cached, so they ran twice. The
	// salted variant cached after its first run.
	if got := calls.Load(); got != 3 {
		t.Fatalf("calls = %d, want 3 (2 unsalted + 1 salted)", got)
	}
}

func TestRunReportsLowestFailingCell(t *testing.T) {
	boom := errors.New("boom")
	run := func(cfg config.Config, w string) (stats.Report, error) {
		if cfg.Platform == config.Hetero {
			return stats.Report{}, boom
		}
		return fakeRun(cfg, w)
	}
	cells := mustCells(t, SweepSpec{
		Platforms: []config.Platform{config.Origin, config.Hetero, config.OhmBW},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"lud", "sssp"},
	})
	r := &Runner{Workers: 4, RunFn: run}
	_, err := r.Run(cells)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	want := fmt.Sprintf("cell 2 (%s)", cells[2])
	if got := err.Error(); !strings.Contains(got, want) {
		t.Fatalf("err %q does not name the lowest failing cell %q", got, want)
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	cache, err := NewDiskCache(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	rep := stats.Report{
		IPC:      3.25,
		Elapsed:  42 * sim.Microsecond,
		EnergyPJ: map[string]float64{"dram": 1.5, "laser": 2.25},
		Extra:    map[string]float64{"l1-hit-rate": 0.5},
	}
	key, err := Cell{Config: config.Default(config.Origin, config.Planar), Workload: "lud"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	if err := cache.Put(key, rep); err != nil {
		t.Fatal(err)
	}
	back, ok := cache.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip changed report:\n%+v\n%+v", rep, back)
	}
}

// TestDiskCacheCorruptedEntryIsMissAndRewritten covers crash/partial-write
// recovery: truncated or garbage cache files must behave as misses — the
// runner re-simulates the cell and rewrites a good entry — never crash.
func TestDiskCacheCorruptedEntryIsMissAndRewritten(t *testing.T) {
	cache, err := NewDiskCache(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	cell := Cell{Config: config.Default(config.OhmBW, config.Planar), Workload: "lud"}
	key, err := cell.Key()
	if err != nil {
		t.Fatal(err)
	}
	for _, garbage := range [][]byte{nil, []byte("{"), []byte(`{"IPC": "not a number"}`), []byte("\x00\xff\x17 binary junk")} {
		p := cache.path(key)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := cache.Get(key); ok {
			t.Fatalf("corrupt entry %q served as a hit", garbage)
		}

		var calls atomic.Int64
		counting := func(cfg config.Config, w string) (stats.Report, error) {
			calls.Add(1)
			return fakeRun(cfg, w)
		}
		r := &Runner{Workers: 1, Cache: cache, RunFn: counting}
		reps, err := r.Run([]Cell{cell})
		if err != nil {
			t.Fatalf("runner crashed on corrupt cache entry %q: %v", garbage, err)
		}
		if calls.Load() != 1 {
			t.Fatalf("corrupt entry not treated as a miss: %d simulations", calls.Load())
		}
		if st := r.Stats(); st.Hits != 0 || st.Misses != 1 {
			t.Fatalf("stats after corrupt entry = %+v", st)
		}
		// The entry must have been rewritten with the good report.
		back, ok := cache.Get(key)
		if !ok {
			t.Fatal("entry not rewritten after corruption")
		}
		if !reflect.DeepEqual(back, reps[0]) {
			t.Fatalf("rewritten entry differs from result:\n%+v\n%+v", back, reps[0])
		}
	}
}

// TestSingleFlightSharesOneSimulation proves that two concurrent runs of
// the same cell on one shared Runner simulate it once: the second caller
// either joins the in-flight simulation or hits the cache the leader filled.
func TestSingleFlightSharesOneSimulation(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	blocking := func(cfg config.Config, w string) (stats.Report, error) {
		calls.Add(1)
		<-release
		return fakeRun(cfg, w)
	}
	r := &Runner{Workers: 4, Cache: NewMemCache(), RunFn: blocking}
	cell := Cell{Config: config.Default(config.OhmBase, config.Planar), Workload: "lud"}

	type result struct {
		data []byte
		err  error
	}
	runOnce := func(ch chan<- result) {
		reps, err := r.Run([]Cell{cell})
		if err != nil {
			ch <- result{err: err}
			return
		}
		data, err := json.Marshal(reps)
		ch <- result{data: data, err: err}
	}
	a, b := make(chan result, 1), make(chan result, 1)
	go runOnce(a)
	// Wait for the leader to be inside the simulation before starting the
	// second run, so the second run cannot win the race to lead.
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	go runOnce(b)
	close(release)
	ra, rb := <-a, <-b
	if ra.err != nil || rb.err != nil {
		t.Fatalf("errs: %v / %v", ra.err, rb.err)
	}
	if calls.Load() != 1 {
		t.Fatalf("concurrent identical runs simulated %d times, want 1", calls.Load())
	}
	if string(ra.data) != string(rb.data) {
		t.Fatal("shared single-flight result differs between callers")
	}
	st := r.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss (leader) + 1 hit (follower)", st)
	}
}

// TestRunContextCancelStopsScheduling: cancelling the context drains
// in-flight cells but starts no new ones, and the run reports the
// cancellation wrapped with a cell identity.
func TestRunContextCancelStopsScheduling(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	blocking := func(cfg config.Config, w string) (stats.Report, error) {
		calls.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return fakeRun(cfg, w)
	}
	cells := mustCells(t, SweepSpec{
		Platforms: []config.Platform{config.OhmBase},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"lud", "sssp", "pagerank", "bfstopo"},
	})

	r := &Runner{Workers: 1, RunFn: blocking}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := r.RunContext(ctx, cells, nil)
		errCh <- err
	}()
	<-started
	cancel()
	close(release)
	err := <-errCh
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("cancelled run simulated %d cells, want only the in-flight one", got)
	}
}

// TestRunContextProgress pins the progress contract: monotonic done out of
// a fixed total, and hit=false on a cold run vs hit=true on a warm rerun.
func TestRunContextProgress(t *testing.T) {
	cells := mustCells(t, SweepSpec{
		Platforms: []config.Platform{config.OhmBase, config.Oracle},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"lud", "sssp"},
	})
	r := &Runner{Workers: 4, Cache: NewMemCache(), RunFn: fakeRun}

	observe := func() (dones []int, totals []int, hits []bool) {
		var mu sync.Mutex
		_, err := r.RunContext(context.Background(), cells, func(done, total int, hit bool) {
			mu.Lock()
			dones = append(dones, done)
			totals = append(totals, total)
			hits = append(hits, hit)
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		return
	}

	dones, totals, hits := observe()
	if len(dones) != len(cells) {
		t.Fatalf("progress calls = %d, want %d", len(dones), len(cells))
	}
	for i := range dones {
		if dones[i] != i+1 || totals[i] != len(cells) {
			t.Fatalf("progress[%d] = (%d/%d), want (%d/%d)", i, dones[i], totals[i], i+1, len(cells))
		}
		if hits[i] {
			t.Fatal("cold run reported a cache hit")
		}
	}
	_, _, hits = observe()
	for i, h := range hits {
		if !h {
			t.Fatalf("warm rerun progress[%d] not a cache hit", i)
		}
	}
}

// TestFollowerSurvivesLeaderCancellation: when the single-flight leader's
// job is cancelled, a live follower must not inherit the cancellation —
// it retakes the flight and simulates the cell itself.
func TestFollowerSurvivesLeaderCancellation(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	var simulations atomic.Int64
	run := func(cfg config.Config, w string) (stats.Report, error) {
		simulations.Add(1)
		started <- struct{}{}
		<-release
		return fakeRun(cfg, w)
	}
	r := &Runner{Workers: 1, Cache: NewMemCache(), RunFn: run}
	occupy := Cell{Config: config.Default(config.Oracle, config.Planar), Workload: "sssp"}
	shared := Cell{Config: config.Default(config.OhmBase, config.Planar), Workload: "lud"}
	key, err := shared.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Fill the single simulation slot so the shared cell's leader blocks in
	// acquire — the only point where a leader can fail with a ctx error.
	occDone := make(chan error, 1)
	go func() { _, err := r.Run([]Cell{occupy}); occDone <- err }()
	<-started

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := make(chan error, 1)
	go func() { _, err := r.RunContext(ctxA, []Cell{shared}, nil); errA <- err }()
	for { // wait until A leads the shared cell's flight
		r.mu.Lock()
		_, inflight := r.flight[key]
		r.mu.Unlock()
		if inflight {
			break
		}
		runtime.Gosched()
	}
	errB := make(chan error, 1)
	go func() { _, err := r.RunContext(context.Background(), []Cell{shared}, nil); errB <- err }()

	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader err = %v", err)
	}
	close(release)
	if err := <-errB; err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", err)
	}
	if err := <-occDone; err != nil {
		t.Fatal(err)
	}
	if got := simulations.Load(); got != 2 {
		t.Fatalf("simulations = %d, want 2 (occupy + retaken shared cell)", got)
	}
}

// TestMissesCountOnlyRealSimulations: a cell abandoned by cancellation
// while queued for a simulation slot must not count as a miss.
func TestMissesCountOnlyRealSimulations(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	run := func(cfg config.Config, w string) (stats.Report, error) {
		started <- struct{}{}
		<-release
		return fakeRun(cfg, w)
	}
	r := &Runner{Workers: 1, Cache: NewMemCache(), RunFn: run}
	occupy := Cell{Config: config.Default(config.Oracle, config.Planar), Workload: "sssp"}
	blocked := Cell{Config: config.Default(config.OhmBase, config.Planar), Workload: "lud"}

	occDone := make(chan error, 1)
	go func() { _, err := r.Run([]Cell{occupy}); occDone <- err }()
	<-started // the only slot is held

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { _, err := r.RunContext(ctx, []Cell{blocked}, nil); errCh <- err }()
	for { // wait until the blocked cell leads its flight (queued on the slot)
		r.mu.Lock()
		n := len(r.flight)
		r.mu.Unlock()
		if n > 0 {
			break
		}
		runtime.Gosched()
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	close(release)
	if err := <-occDone; err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1 (only the occupy cell simulated)", st.Misses)
	}
}
