// Package batch is the parallel sweep engine behind every evaluation grid:
// a declarative SweepSpec expands to a deterministic list of simulation
// cells, a worker-pool Runner executes the cells concurrently across
// GOMAXPROCS goroutines (each cell is an independent single-threaded
// discrete-event run), and a content-addressed result cache keyed by the
// fully-resolved configuration makes repeated sweeps and overlapping
// figures near-free. cmd/ohmbatch drives it from the command line;
// internal/experiments builds all figure grids on top of it.
package batch

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/stats"
)

// Cell is one fully-resolved simulation to run: a complete config plus a
// workload name. The zero RunFn means core.RunConfig; experiments install
// closures when a cell needs a custom host model or trace, in which case
// Salt must name the variant for the result cache (an empty Salt disables
// caching for that cell, since the key cannot see inside a closure).
type Cell struct {
	Index    int             `json:"index"`
	Platform config.Platform `json:"-"`
	Mode     config.MemMode  `json:"-"`
	Workload string          `json:"workload"`
	Config   config.Config   `json:"-"`
	Salt     string          `json:"salt,omitempty"`
	RunFn    RunFunc         `json:"-"`
}

// RunFunc executes one cell and returns its report.
type RunFunc func(cfg config.Config, workload string) (stats.Report, error)

// String identifies the cell in errors and logs.
func (c Cell) String() string {
	s := fmt.Sprintf("%s/%s/%s", c.Platform, c.Mode, c.Workload)
	if c.Salt != "" {
		s += "#" + c.Salt
	}
	return s
}

// SweepSpec declares an evaluation grid: the cross product of platforms,
// memory modes, workloads and optional config-override axes. Specs are
// JSON-serializable (platforms and modes by their paper names) so sweeps
// can be checked into files and replayed by cmd/ohmbatch.
type SweepSpec struct {
	Platforms []config.Platform `json:"-"`
	Modes     []config.MemMode  `json:"-"`
	Workloads []string          `json:"workloads,omitempty"`

	// Waveguides sweeps the optical waveguide count (Figure 20a's axis);
	// empty means the platform default.
	Waveguides []int `json:"waveguides,omitempty"`

	// MaxInstructions overrides the per-warp instruction budget on every
	// cell; 0 keeps the config default.
	MaxInstructions int `json:"max_instructions,omitempty"`
}

// specJSON is the wire form of SweepSpec with names instead of enums.
type specJSON struct {
	Platforms       []string `json:"platforms,omitempty"`
	Modes           []string `json:"modes,omitempty"`
	Workloads       []string `json:"workloads,omitempty"`
	Waveguides      []int    `json:"waveguides,omitempty"`
	MaxInstructions int      `json:"max_instructions,omitempty"`
}

// MarshalJSON writes platforms and modes by name.
func (s SweepSpec) MarshalJSON() ([]byte, error) {
	w := specJSON{
		Workloads:       s.Workloads,
		Waveguides:      s.Waveguides,
		MaxInstructions: s.MaxInstructions,
	}
	for _, p := range s.Platforms {
		w.Platforms = append(w.Platforms, p.String())
	}
	for _, m := range s.Modes {
		w.Modes = append(w.Modes, m.String())
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses platform and mode names (ohmsim's spellings).
func (s *SweepSpec) UnmarshalJSON(data []byte) error {
	var w specJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = SweepSpec{
		Workloads:       w.Workloads,
		Waveguides:      w.Waveguides,
		MaxInstructions: w.MaxInstructions,
	}
	for _, name := range w.Platforms {
		p, err := config.ParsePlatform(name)
		if err != nil {
			return err
		}
		s.Platforms = append(s.Platforms, p)
	}
	for _, name := range w.Modes {
		m, err := config.ParseMode(name)
		if err != nil {
			return err
		}
		s.Modes = append(s.Modes, m)
	}
	return nil
}

// LoadSpec reads a SweepSpec from a JSON file.
func LoadSpec(path string) (SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepSpec{}, err
	}
	var s SweepSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return SweepSpec{}, fmt.Errorf("batch: spec %s: %w", path, err)
	}
	return s, nil
}

// withDefaults fills empty axes with the full paper grid.
func (s SweepSpec) withDefaults() SweepSpec {
	if len(s.Platforms) == 0 {
		s.Platforms = config.AllPlatforms()
	}
	if len(s.Modes) == 0 {
		s.Modes = config.AllModes()
	}
	if len(s.Workloads) == 0 {
		s.Workloads = config.WorkloadNames()
	}
	return s
}

// Cells expands the spec into its deterministic cell list: modes outermost,
// then waveguide settings, platforms, workloads — the iteration order every
// consumer (and the result ordering) can rely on.
func (s SweepSpec) Cells() []Cell {
	s = s.withDefaults()
	wgs := s.Waveguides
	if len(wgs) == 0 {
		wgs = []int{0} // 0 = platform default
	}
	var cells []Cell
	for _, m := range s.Modes {
		for _, wg := range wgs {
			for _, p := range s.Platforms {
				for _, w := range s.Workloads {
					cfg := config.Default(p, m)
					if wg > 0 {
						cfg.Optical.Waveguides = wg
					}
					if s.MaxInstructions > 0 {
						cfg.MaxInstructions = s.MaxInstructions
					}
					cells = append(cells, Cell{
						Index:    len(cells),
						Platform: p,
						Mode:     m,
						Workload: w,
						Config:   cfg,
					})
				}
			}
		}
	}
	return cells
}
