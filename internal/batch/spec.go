// Package batch is the parallel sweep engine behind every evaluation grid:
// a declarative SweepSpec expands to a deterministic list of simulation
// cells, a worker-pool Runner executes the cells concurrently across
// GOMAXPROCS goroutines (each cell is an independent single-threaded
// discrete-event run), and a content-addressed result cache keyed by the
// fully-resolved configuration makes repeated sweeps and overlapping
// figures near-free. cmd/ohmbatch drives it from the command line;
// internal/experiments builds all figure grids on top of it.
package batch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/stats"
)

// Cell is one fully-resolved simulation to run: a complete config plus a
// workload. The zero RunFn means core.RunConfig (or, when WorkloadDef is
// set, a run of that inline workload definition); experiments install
// closures when a cell needs a custom host model or trace, in which case
// Salt must name the variant for the result cache (an empty Salt disables
// caching for that cell, since the key cannot see inside a closure).
type Cell struct {
	Index    int             `json:"index"`
	Platform config.Platform `json:"-"`
	Mode     config.MemMode  `json:"-"`
	// Exec selects the evaluation engine: the discrete-event simulator
	// (zero value) or the closed-form analytical twin. Analytical cells
	// estimate instead of simulating; their cache keys are salted with the
	// twin's model version so the two result families never collide.
	Exec     config.ExecMode `json:"-"`
	Workload string          `json:"workload"`
	// WorkloadDef, when non-nil, is an inline custom workload (not a Table
	// II entry): the simulation generates its trace from this struct and
	// the cache key covers the full definition, not just the name.
	WorkloadDef *config.Workload `json:"workload_def,omitempty"`
	Config      config.Config    `json:"-"`
	// Overrides records the dotted-path settings this cell's expansion
	// applied (the Config already reflects them); it labels result rows and
	// never contributes to the cache key.
	Overrides map[string]interface{} `json:"overrides,omitempty"`
	Salt      string                 `json:"salt,omitempty"`
	RunFn     RunFunc                `json:"-"`
}

// RunFunc executes one cell and returns its report.
type RunFunc func(cfg config.Config, workload string) (stats.Report, error)

// String identifies the cell in errors and logs, including any override
// patch so two cells of one sweep axis stay distinguishable.
func (c Cell) String() string {
	s := fmt.Sprintf("%s/%s/%s", c.Platform, config.ModeString(c.Mode, c.Exec), c.Workload)
	if len(c.Overrides) > 0 {
		s += "@" + overridesLabel(c.Overrides)
	}
	if c.Salt != "" {
		s += "#" + c.Salt
	}
	return s
}

// Axis is one override axis: the list of values a dotted config path
// sweeps through. On the wire a single-valued axis is a bare scalar, a
// multi-valued one a JSON array.
type Axis []interface{}

// MarshalJSON writes single-valued axes as their scalar.
func (a Axis) MarshalJSON() ([]byte, error) {
	if len(a) == 1 {
		return json.Marshal(a[0])
	}
	return json.Marshal([]interface{}(a))
}

// UnmarshalJSON accepts a scalar or an array of scalars.
func (a *Axis) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var vals []interface{}
		if err := json.Unmarshal(data, &vals); err != nil {
			return err
		}
		*a = vals
		return nil
	}
	var v interface{}
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*a = Axis{v}
	return nil
}

// Overrides maps dotted config paths (config.OverridePaths) to the value
// axis each path sweeps; the expansion takes the cross product of every
// axis in sorted path order. A single-valued axis is a fixed override on
// every cell.
type Overrides map[string]Axis

// SweepSpec declares an evaluation grid: the cross product of platforms,
// memory modes, workloads and override axes. Specs are JSON-serializable
// (platforms and modes by their paper names) so sweeps can be checked into
// files and replayed by cmd/ohmbatch or POSTed to the ohmserve daemon.
type SweepSpec struct {
	Platforms []config.Platform `json:"-"`
	Modes     []config.MemMode  `json:"-"`
	// Execs pairs with Modes positionally: the wire "modes" entry
	// "two-level+analytical" parses to Modes[i]=TwoLevel,
	// Execs[i]=ExecAnalytical. Shorter than Modes means the remaining
	// entries are DES (the zero value), so specs predating execution modes
	// behave exactly as before.
	Execs []config.ExecMode `json:"-"`
	// Workloads lists workload names: Table II entries, or names defined in
	// CustomWorkloads (spec-local definitions shadow Table II).
	Workloads []string `json:"workloads,omitempty"`
	// CustomWorkloads defines inline workloads the spec can reference by
	// name; if Workloads is empty, the custom names become the workload
	// axis.
	CustomWorkloads []config.Workload `json:"custom_workloads,omitempty"`

	// Overrides sweeps config fields by dotted path; the cell list is the
	// cross product of all value lists (sorted by path), e.g.
	// {"optical.waveguides": [1,2,4], "xpoint.write_latency_ns": 900}.
	Overrides Overrides `json:"overrides,omitempty"`

	// Waveguides sweeps the optical waveguide count (Figure 20a's axis).
	//
	// Deprecated: alias for Overrides["optical.waveguides"]; kept for
	// existing spec files and callers.
	Waveguides []int `json:"waveguides,omitempty"`

	// MaxInstructions overrides the per-warp instruction budget on every
	// cell; 0 keeps the config default. (Equivalent to a single-valued
	// "max_instructions" override axis.)
	MaxInstructions int `json:"max_instructions,omitempty"`
}

// specJSON is the wire form of SweepSpec with names instead of enums.
type specJSON struct {
	Platforms       []string          `json:"platforms,omitempty"`
	Modes           []string          `json:"modes,omitempty"`
	Workloads       []string          `json:"workloads,omitempty"`
	CustomWorkloads []config.Workload `json:"custom_workloads,omitempty"`
	Overrides       Overrides         `json:"overrides,omitempty"`
	Waveguides      []int             `json:"waveguides,omitempty"`
	MaxInstructions int               `json:"max_instructions,omitempty"`
}

// MarshalJSON writes platforms and modes by name.
func (s SweepSpec) MarshalJSON() ([]byte, error) {
	w := specJSON{
		Workloads:       s.Workloads,
		CustomWorkloads: s.CustomWorkloads,
		Overrides:       s.Overrides,
		Waveguides:      s.Waveguides,
		MaxInstructions: s.MaxInstructions,
	}
	for _, p := range s.Platforms {
		w.Platforms = append(w.Platforms, p.String())
	}
	for i, m := range s.Modes {
		e := config.ExecDES
		if i < len(s.Execs) {
			e = s.Execs[i]
		}
		w.Modes = append(w.Modes, config.ModeString(m, e))
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses platform and mode names (ohmsim's spellings).
// Unknown fields are errors, so a misspelled axis fails loudly instead of
// silently running the wrong sweep.
func (s *SweepSpec) UnmarshalJSON(data []byte) error {
	var w specJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	*s = SweepSpec{
		Workloads:       w.Workloads,
		CustomWorkloads: w.CustomWorkloads,
		Overrides:       w.Overrides,
		Waveguides:      w.Waveguides,
		MaxInstructions: w.MaxInstructions,
	}
	for _, name := range w.Platforms {
		p, err := config.ParsePlatform(name)
		if err != nil {
			return err
		}
		s.Platforms = append(s.Platforms, p)
	}
	allDES := true
	for _, name := range w.Modes {
		m, e, err := config.ParseModes(name)
		if err != nil {
			return err
		}
		s.Modes = append(s.Modes, m)
		s.Execs = append(s.Execs, e)
		if e != config.ExecDES {
			allDES = false
		}
	}
	// Canonicalize the all-DES case to a nil Execs slice, so decoding a
	// spec written before execution modes existed round-trips unchanged.
	if allDES {
		s.Execs = nil
	}
	return nil
}

// LoadSpec reads a sweep from a JSON file. The file may be either a
// SweepSpec grid or a single config.Spec scenario document ({preset, mode,
// overrides, workload} — anything declaring one of those keys), which
// expands to a one-cell sweep, so every entry point accepts the same
// scenario files.
func LoadSpec(path string) (SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepSpec{}, err
	}
	s, err := ParseSpec(data)
	if err != nil {
		return SweepSpec{}, fmt.Errorf("batch: spec %s: %w", path, err)
	}
	return s, nil
}

// ParseSpec decodes SweepSpec or scenario JSON (see LoadSpec). A document
// declaring only "overrides" is ambiguous — it is a valid one-cell
// scenario *and* a valid full-grid sweep — so it is rejected with
// instructions rather than silently meaning different things to different
// entry points.
func ParseSpec(data []byte) (SweepSpec, error) {
	var probe struct {
		Preset   json.RawMessage `json:"preset"`
		Mode     json.RawMessage `json:"mode"`
		Workload json.RawMessage `json:"workload"`

		Platforms       json.RawMessage `json:"platforms"`
		Modes           json.RawMessage `json:"modes"`
		Workloads       json.RawMessage `json:"workloads"`
		CustomWorkloads json.RawMessage `json:"custom_workloads"`
		Waveguides      json.RawMessage `json:"waveguides"`

		Overrides json.RawMessage `json:"overrides"`
	}
	if err := json.Unmarshal(data, &probe); err == nil {
		scenario := probe.Preset != nil || probe.Mode != nil || probe.Workload != nil
		sweep := probe.Platforms != nil || probe.Modes != nil || probe.Workloads != nil ||
			probe.CustomWorkloads != nil || probe.Waveguides != nil
		switch {
		case scenario:
			var sc config.Spec
			dec := json.NewDecoder(bytes.NewReader(data))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&sc); err != nil {
				return SweepSpec{}, err
			}
			return ScenarioSpec(sc)
		case !sweep && probe.Overrides != nil:
			return SweepSpec{}, fmt.Errorf("batch: ambiguous spec: an overrides-only document could be a one-run scenario or a full-grid sweep; add \"preset\" (scenario) or \"platforms\"/\"modes\"/\"workloads\" (sweep)")
		}
	}
	var s SweepSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return SweepSpec{}, err
	}
	return s, nil
}

// ScenarioSpec converts a resolved scenario document into its one-cell
// sweep: the cell's config is exactly Spec.Resolve's, so `ohmsim -spec`,
// `ohmbatch -spec` and a POSTed scenario produce identical cache keys and
// reports.
func ScenarioSpec(sc config.Spec) (SweepSpec, error) {
	r, err := sc.Resolve() // validates preset, overrides and workload
	if err != nil {
		return SweepSpec{}, err
	}
	spec := SweepSpec{
		Platforms: []config.Platform{r.Preset.Platform},
		Modes:     []config.MemMode{r.Config.Mode},
		Execs:     []config.ExecMode{r.Exec},
		Workloads: []string{r.Workload.Name},
	}
	if r.Custom {
		spec.CustomWorkloads = []config.Workload{r.Workload}
	}
	if len(sc.Overrides) > 0 {
		spec.Overrides = make(Overrides, len(sc.Overrides))
		for path, v := range sc.Overrides {
			spec.Overrides[path] = Axis{v}
		}
	}
	return spec, nil
}

// withDefaults fills empty axes with the full paper grid (or, when the
// spec defines custom workloads and names none, with the custom set).
func (s SweepSpec) withDefaults() SweepSpec {
	if len(s.Platforms) == 0 {
		s.Platforms = config.AllPlatforms()
	}
	if len(s.Modes) == 0 {
		s.Modes = config.AllModes()
	}
	if len(s.Workloads) == 0 {
		if len(s.CustomWorkloads) > 0 {
			for _, w := range s.CustomWorkloads {
				s.Workloads = append(s.Workloads, w.Name)
			}
		} else {
			s.Workloads = config.WorkloadNames()
		}
	}
	return s
}

// MaxCells bounds one spec's expansion. Override axes cross-multiply, so a
// few hundred bytes of JSON could otherwise demand billions of cells; the
// guard runs on the counted product before anything is allocated, keeping a
// hostile or fat-fingered spec from exhausting memory (the ohmserve daemon
// expands untrusted specs at submission).
const MaxCells = 1 << 18

// overrideCombos expands the override axes (deprecated Waveguides folded
// in) into the deterministic list of per-cell patches: paths sorted, the
// first path's axis outermost. A spec with no overrides yields one empty
// combo. Paths are normalized (lower-case, trimmed) the same way
// config.Set resolves them, so two spellings of one path are a loud
// conflict instead of a silent clobber.
func (s SweepSpec) overrideCombos() ([]map[string]interface{}, error) {
	ov := make(Overrides, len(s.Overrides)+1)
	for p, a := range s.Overrides {
		key := strings.ToLower(strings.TrimSpace(p))
		if len(a) == 0 {
			return nil, fmt.Errorf("batch: override %q: empty value list", p)
		}
		if _, dup := ov[key]; dup {
			return nil, fmt.Errorf("batch: override path %q given twice (spellings are case-insensitive)", key)
		}
		ov[key] = a
	}
	if len(s.Waveguides) > 0 {
		if _, dup := ov["optical.waveguides"]; dup {
			return nil, fmt.Errorf("batch: both the deprecated waveguides field and overrides[%q] are set", "optical.waveguides")
		}
		ax := make(Axis, len(s.Waveguides))
		for i, wg := range s.Waveguides {
			ax[i] = wg
		}
		ov["optical.waveguides"] = ax
	}
	if s.MaxInstructions > 0 {
		if _, dup := ov["max_instructions"]; dup {
			return nil, fmt.Errorf("batch: both the max_instructions field (-instr) and overrides[%q] are set; drop one (-set max_instructions=... replaces a spec file's axis)", "max_instructions")
		}
	}
	if len(ov) == 0 {
		return []map[string]interface{}{nil}, nil
	}
	paths := make([]string, 0, len(ov))
	n := 1
	for p := range ov {
		paths = append(paths, p)
		if n = n * len(ov[p]); n > MaxCells {
			return nil, fmt.Errorf("batch: override axes expand to more than %d combinations", MaxCells)
		}
	}
	sort.Strings(paths)
	combos := []map[string]interface{}{{}}
	for _, p := range paths {
		next := make([]map[string]interface{}, 0, len(combos)*len(ov[p]))
		for _, base := range combos {
			for _, v := range ov[p] {
				m := make(map[string]interface{}, len(base)+1)
				for k, bv := range base {
					m[k] = bv
				}
				m[p] = v
				next = append(next, m)
			}
		}
		combos = next
	}
	// The first sorted path varies slowest (outermost), matching the
	// historical waveguide loop position.
	return combos, nil
}

// Cells expands the spec into its deterministic cell list: modes outermost,
// then override combinations (sorted paths, first path slowest), platforms,
// workloads — the iteration order every consumer (and the result ordering)
// can rely on. Unknown workload names and invalid override paths or values
// fail here, naming the offender.
func (s SweepSpec) Cells() ([]Cell, error) {
	s = s.withDefaults()
	combos, err := s.overrideCombos()
	if err != nil {
		return nil, err
	}
	// Multiply stepwise so an adversarial spec with huge axis lists cannot
	// overflow the product past the cap (each step keeps n <= MaxCells
	// before the next bounded factor).
	n := 1
	for _, f := range []int{len(s.Modes), len(combos), len(s.Platforms), len(s.Workloads)} {
		if n = n * f; n > MaxCells {
			return nil, fmt.Errorf("batch: spec expands to more than %d cells", MaxCells)
		}
	}

	custom := make(map[string]*config.Workload, len(s.CustomWorkloads))
	for i := range s.CustomWorkloads {
		w := s.CustomWorkloads[i]
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("batch: custom workload: %w", err)
		}
		if _, dup := custom[w.Name]; dup {
			return nil, fmt.Errorf("batch: custom workload %q defined twice", w.Name)
		}
		custom[w.Name] = &w
	}
	defs := make(map[string]config.Workload, len(s.Workloads))
	for _, name := range s.Workloads {
		if cw := custom[name]; cw != nil {
			defs[name] = *cw
			continue
		}
		w, ok := config.WorkloadByName(name)
		if !ok {
			return nil, fmt.Errorf("batch: unknown workload %q (Table II names: %v; spec-local: %v)",
				name, config.WorkloadNames(), customNames(s.CustomWorkloads))
		}
		defs[name] = w
	}

	var cells []Cell
	for mi, m := range s.Modes {
		exec := config.ExecDES
		if mi < len(s.Execs) {
			exec = s.Execs[mi]
		}
		for _, combo := range combos {
			for _, p := range s.Platforms {
				for _, w := range s.Workloads {
					cfg := config.Default(p, m)
					if s.MaxInstructions > 0 {
						cfg.MaxInstructions = s.MaxInstructions
					}
					if err := cfg.ApplyOverrides(combo); err != nil {
						return nil, fmt.Errorf("batch: %w", err)
					}
					if err := config.ValidateTraceBudget(defs[w], &cfg); err != nil {
						return nil, fmt.Errorf("batch: %w", err)
					}
					var def *config.Workload
					if cw := custom[w]; cw != nil {
						// The resolved definition also canonicalizes: a
						// "custom" workload identical to its Table II
						// namesake keys as the named workload.
						if table, ok := config.WorkloadByName(w); !ok || table != *cw {
							def = cw
						}
					}
					cells = append(cells, Cell{
						Index:       len(cells),
						Platform:    p,
						Mode:        m,
						Exec:        exec,
						Workload:    w,
						WorkloadDef: def,
						Config:      cfg,
						Overrides:   combo,
					})
				}
			}
		}
	}
	return cells, nil
}

func customNames(ws []config.Workload) []string {
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// Per-mode cell cost estimates for dry-run reporting: a warm DES cell costs
// tens of milliseconds of event loop (BENCH baselines), an analytical cell
// microseconds of closed-form arithmetic. These are order-of-magnitude
// planning numbers for `ohmbatch -validate` and the POST /v1/sweeps dry
// run, not measurements.
const (
	DESCellCost        = 25 * time.Millisecond
	AnalyticalCellCost = 25 * time.Microsecond
)

// CostEstimate is a dry-run's view of what a spec will cost to execute
// cold: the per-mode cell split and the serial compute estimate (divide by
// the worker count for wall clock; cache hits make real runs cheaper).
// Closure cells (experiment-driver RunFn) run arbitrary code the estimator
// cannot price: they are counted and loudly excluded from Estimated rather
// than silently mispriced as standard DES cells — the same honesty the
// analytical executor applies when it rejects closures outright.
type CostEstimate struct {
	Cells           int           `json:"cells"`
	DESCells        int           `json:"des_cells"`
	AnalyticalCells int           `json:"analytical_cells"`
	ClosureCells    int           `json:"closure_cells,omitempty"`
	Estimated       time.Duration `json:"estimated_cost_ns"`
}

// EstimateCost sums the per-mode cost estimate over a cell list.
func EstimateCost(cells []Cell) CostEstimate {
	var ce CostEstimate
	ce.Cells = len(cells)
	for _, c := range cells {
		switch {
		case c.RunFn != nil:
			ce.ClosureCells++
		case c.Exec == config.ExecAnalytical:
			ce.AnalyticalCells++
		default:
			ce.DESCells++
		}
	}
	ce.Estimated = time.Duration(ce.DESCells)*DESCellCost +
		time.Duration(ce.AnalyticalCells)*AnalyticalCellCost
	return ce
}
