package batch

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
)

// TestWaveguidesAliasMatchesOverrideAxis: the deprecated Waveguides field
// and the generic "optical.waveguides" axis must expand to identical
// configs and cache keys, in the same order — that is what keeps Figure
// 20a's cached cells warm across the redesign.
func TestWaveguidesAliasMatchesOverrideAxis(t *testing.T) {
	base := SweepSpec{
		Platforms: []config.Platform{config.OhmBase, config.OhmBW},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"lud", "sssp"},
	}
	alias := base
	alias.Waveguides = []int{1, 2, 4}
	generic := base
	generic.Overrides = Overrides{"optical.waveguides": {1, 2, 4}}

	ac := mustCells(t, alias)
	gc := mustCells(t, generic)
	if len(ac) != len(gc) || len(ac) != 3*2*2 {
		t.Fatalf("cell counts: alias %d, generic %d", len(ac), len(gc))
	}
	for i := range ac {
		if !reflect.DeepEqual(ac[i].Config, gc[i].Config) {
			t.Fatalf("cell %d config differs between alias and axis", i)
		}
		ak, err := ac[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		gk, err := gc[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		if ak != gk {
			t.Fatalf("cell %d key differs between alias and axis", i)
		}
	}
	// Both set per cell: rejected rather than silently preferring one.
	both := alias
	both.Overrides = Overrides{"optical.waveguides": {8}}
	if _, err := both.Cells(); err == nil {
		t.Fatal("waveguides + overrides[optical.waveguides] accepted")
	}
}

func TestOverrideAxesCrossProductOrder(t *testing.T) {
	spec := SweepSpec{
		Platforms: []config.Platform{config.OhmBW},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"lud"},
		Overrides: Overrides{
			"optical.waveguides": {1, 2},
			"max_instructions":   {100, 200},
		},
	}
	cells := mustCells(t, spec)
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	// Sorted paths: max_instructions before optical.waveguides, first path
	// outermost.
	want := []struct{ instr, wg int }{{100, 1}, {100, 2}, {200, 1}, {200, 2}}
	for i, w := range want {
		c := cells[i]
		if c.Config.MaxInstructions != w.instr || c.Config.Optical.Waveguides != w.wg {
			t.Fatalf("cells[%d] = instr %d wg %d, want %d/%d",
				i, c.Config.MaxInstructions, c.Config.Optical.Waveguides, w.instr, w.wg)
		}
		if c.Overrides["max_instructions"] != want[i].instr || c.Overrides["optical.waveguides"] != want[i].wg {
			t.Fatalf("cells[%d].Overrides = %v", i, c.Overrides)
		}
	}
}

func TestOverrideAxisErrorsNameThePath(t *testing.T) {
	cases := []struct {
		name string
		spec SweepSpec
		want string
	}{
		{"unknown path", SweepSpec{Overrides: Overrides{"gpu.typo": {1}}}, "gpu.typo"},
		{"type mismatch", SweepSpec{Overrides: Overrides{"optical.waveguides": {"many"}}}, "optical.waveguides"},
		{"empty axis", SweepSpec{Overrides: Overrides{"optical.waveguides": {}}}, "optical.waveguides"},
		{"unknown workload", SweepSpec{Workloads: []string{"nope"}}, `"nope"`},
	}
	for _, c := range cases {
		if _, err := c.spec.Cells(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestCustomWorkloadCellsAndKeys(t *testing.T) {
	custom := config.Workload{Name: "streamwrite", APKI: 120, ReadRatio: 0.35, FootprintScale: 3, HotSkew: 0.8}
	spec := SweepSpec{
		Platforms:       []config.Platform{config.OhmBW},
		Modes:           []config.MemMode{config.Planar},
		Workloads:       []string{"lud", "streamwrite"},
		CustomWorkloads: []config.Workload{custom},
	}
	cells := mustCells(t, spec)
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].WorkloadDef != nil {
		t.Fatal("Table II cell grew a WorkloadDef")
	}
	if cells[1].WorkloadDef == nil || cells[1].WorkloadDef.Name != "streamwrite" {
		t.Fatalf("custom cell def = %+v", cells[1].WorkloadDef)
	}

	// A custom workload shadowing a Table II name must key by definition,
	// not name: same name + different shape -> different key.
	shadow := custom
	shadow.Name = "lud"
	shadowSpec := SweepSpec{
		Platforms:       []config.Platform{config.OhmBW},
		Modes:           []config.MemMode{config.Planar},
		Workloads:       []string{"lud"},
		CustomWorkloads: []config.Workload{shadow},
	}
	shadowCells := mustCells(t, shadowSpec)
	k0, err := cells[0].Key()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := shadowCells[0].Key()
	if err != nil {
		t.Fatal(err)
	}
	if k0 == ks {
		t.Fatal("custom workload named lud collides with Table II lud")
	}

	// A "custom" definition identical to Table II canonicalizes to the
	// named form — same key as a plain grid cell.
	table, _ := config.WorkloadByName("lud")
	canonSpec := shadowSpec
	canonSpec.CustomWorkloads = []config.Workload{table}
	canonCells := mustCells(t, canonSpec)
	if canonCells[0].WorkloadDef != nil {
		t.Fatal("Table II twin not canonicalized")
	}
	kc, err := canonCells[0].Key()
	if err != nil {
		t.Fatal(err)
	}
	if kc != k0 {
		t.Fatal("canonicalized custom workload keys differently from the named workload")
	}

	// Workloads empty + custom defined: the custom set is the axis.
	implied := SweepSpec{
		Platforms:       []config.Platform{config.OhmBW},
		Modes:           []config.MemMode{config.Planar},
		CustomWorkloads: []config.Workload{custom},
	}
	if got := mustCells(t, implied); len(got) != 1 || got[0].Workload != "streamwrite" {
		t.Fatalf("implied custom axis = %+v", got)
	}

	dup := implied
	dup.CustomWorkloads = []config.Workload{custom, custom}
	if _, err := dup.Cells(); err == nil {
		t.Fatal("duplicate custom workload accepted")
	}
}

// TestCustomWorkloadSimulates runs a spec-defined workload through the real
// simulator on the runner and requires deterministic, cacheable results.
func TestCustomWorkloadSimulates(t *testing.T) {
	spec := SweepSpec{
		Platforms: []config.Platform{config.OhmBase},
		Modes:     []config.MemMode{config.Planar},
		CustomWorkloads: []config.Workload{{
			Name: "tiny", APKI: 100, ReadRatio: 0.5, FootprintScale: 2, HotSkew: 0.9}},
		MaxInstructions: 300,
	}
	cells := mustCells(t, spec)
	r := &Runner{Workers: 2, Cache: NewMemCache()}
	first, err := r.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Instructions == 0 || first[0].MemRequests == 0 {
		t.Fatalf("custom workload produced an empty report: %+v", first[0])
	}
	again, err := r.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("custom workload cache stats = %+v, want 1 miss + 1 hit", st)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatal("warm rerun of a custom workload differs")
	}
}

// TestScenarioSpecMatchesResolve: a scenario document expands to exactly
// the config its own Resolve produces — the property that makes ohmsim,
// ohmbatch and the daemon interchangeable entry points.
func TestScenarioSpecMatchesResolve(t *testing.T) {
	sc := config.Spec{
		Preset: "ohm-base",
		Mode:   "two-level",
		Overrides: map[string]interface{}{
			"xpoint.write_latency_ns": 1200,
			"optical.waveguides":      2,
			"max_instructions":        500,
		},
		Workload: &config.WorkloadSpec{Inline: &config.Workload{
			Name: "streamwrite", APKI: 120, ReadRatio: 0.35, FootprintScale: 3, HotSkew: 0.8}},
	}
	resolved, err := sc.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ScenarioSpec(sc)
	if err != nil {
		t.Fatal(err)
	}
	cells := mustCells(t, spec)
	if len(cells) != 1 {
		t.Fatalf("scenario expanded to %d cells", len(cells))
	}
	if !reflect.DeepEqual(cells[0].Config, resolved.Config) {
		t.Fatalf("scenario cell config differs from Resolve:\n%+v\n%+v", cells[0].Config, resolved.Config)
	}
	if cells[0].WorkloadDef == nil || *cells[0].WorkloadDef != resolved.Workload {
		t.Fatalf("scenario cell workload = %+v, want %+v", cells[0].WorkloadDef, resolved.Workload)
	}

	// And it survives the wire: parse the scenario JSON through ParseSpec.
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	parsedCells := mustCells(t, parsed)
	if len(parsedCells) != 1 || !reflect.DeepEqual(parsedCells[0].Config, resolved.Config) {
		t.Fatal("ParseSpec(scenario JSON) cell differs from Resolve")
	}
	k0, err := cells[0].Key()
	if err != nil {
		t.Fatal(err)
	}
	k1, err := parsedCells[0].Key()
	if err != nil {
		t.Fatal(err)
	}
	if k0 != k1 {
		t.Fatal("scenario cache key unstable across JSON round trip")
	}
}

func TestParseSpecSniffsBothForms(t *testing.T) {
	sweep, err := ParseSpec([]byte(`{"platforms":["ohm-bw"],"modes":["planar"],"workloads":["lud"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Platforms) != 1 || sweep.Platforms[0] != config.OhmBW {
		t.Fatalf("sweep form = %+v", sweep)
	}
	one, err := ParseSpec([]byte(`{"preset":"oracle","workload":"lud"}`))
	if err != nil {
		t.Fatal(err)
	}
	cells := mustCells(t, one)
	if len(cells) != 1 || cells[0].Platform != config.Oracle || cells[0].Workload != "lud" {
		t.Fatalf("scenario form = %+v", cells)
	}
	if _, err := ParseSpec([]byte(`{"preset":"oracle","platfroms":["x"]}`)); err == nil {
		t.Fatal("unknown scenario field accepted")
	}
	if _, err := ParseSpec([]byte(`{"platfroms":["x"]}`)); err == nil {
		t.Fatal("unknown sweep field accepted")
	}
}

// TestSweepSpecJSONRoundTripWithOverrides: encode -> decode -> expand gives
// the same configs and cache keys (values change Go type across JSON — int
// to float64 — but resolve identically).
func TestSweepSpecJSONRoundTripWithOverrides(t *testing.T) {
	spec := SweepSpec{
		Platforms: []config.Platform{config.OhmBase},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"lud"},
		Overrides: Overrides{
			"optical.waveguides":      {1, 2},
			"xpoint.write_latency_ns": {900.5},
		},
	}
	orig := mustCells(t, spec)
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Single-valued axes marshal as scalars and come back as such.
	if !strings.Contains(string(data), `"xpoint.write_latency_ns":900.5`) {
		t.Fatalf("single-valued axis not scalar on the wire: %s", data)
	}
	again := mustCells(t, back)
	if len(orig) != len(again) {
		t.Fatalf("cell counts differ: %d vs %d", len(orig), len(again))
	}
	for i := range orig {
		if !reflect.DeepEqual(orig[i].Config, again[i].Config) {
			t.Fatalf("cell %d config changed across the wire", i)
		}
		k0, err := orig[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		k1, err := again[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		if k0 != k1 {
			t.Fatalf("cell %d key changed across the wire", i)
		}
	}
}

// TestSpecExpansionGuards covers the loud-failure paths added around axis
// expansion: the cell-count cap (a few hundred bytes of JSON must not
// demand billions of cells), case-folded duplicate paths, and the
// max_instructions field-vs-axis conflict.
func TestSpecExpansionGuards(t *testing.T) {
	axis := func(n int) Axis {
		a := make(Axis, n)
		for i := range a {
			a[i] = i + 1
		}
		return a
	}
	bomb := SweepSpec{Overrides: Overrides{
		"gpu.sms":             axis(100),
		"gpu.l1_ways":         axis(100),
		"gpu.l2_ways":         axis(100),
		"dram.banks":          axis(100),
		"xpoint.read_buf_ent": axis(100),
	}}
	if _, err := bomb.Cells(); err == nil || !strings.Contains(err.Error(), "combinations") {
		t.Fatalf("axis bomb not capped: %v", err)
	}
	wide := SweepSpec{Overrides: Overrides{"optical.waveguides": axis(2000)}}
	if _, err := wide.Cells(); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Fatalf("cell-count bomb not capped: %v", err) // 2000*140 > MaxCells
	}

	caseDup := SweepSpec{Overrides: Overrides{
		"optical.waveguides": {1},
		"Optical.Waveguides": {2},
	}}
	if _, err := caseDup.Cells(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("case-folded duplicate path accepted: %v", err)
	}
	caseAlias := SweepSpec{
		Waveguides: []int{1, 2},
		Overrides:  Overrides{"OPTICAL.WAVEGUIDES": {4}},
	}
	if _, err := caseAlias.Cells(); err == nil {
		t.Fatal("upper-cased waveguides override slipped past the alias dup guard")
	}

	conflict := SweepSpec{
		MaxInstructions: 100,
		Overrides:       Overrides{"max_instructions": {200}},
	}
	if _, err := conflict.Cells(); err == nil || !strings.Contains(err.Error(), "max_instructions") {
		t.Fatalf("field-vs-axis max_instructions conflict accepted: %v", err)
	}
	// Mixed-case paths still apply (normalized), labelled by the canonical
	// spelling.
	mixed := SweepSpec{
		Platforms: []config.Platform{config.OhmBW},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"lud"},
		Overrides: Overrides{"Optical.Waveguides": {3}},
	}
	cells := mustCells(t, mixed)
	if cells[0].Config.Optical.Waveguides != 3 || cells[0].Overrides["optical.waveguides"] != 3 {
		t.Fatalf("mixed-case path mishandled: %+v", cells[0].Overrides)
	}
}

// TestParseSpecRejectsAmbiguousOverridesOnly: an overrides-only document is
// a valid scenario AND a valid sweep, so it must be rejected rather than
// meaning one cell to ohmsim and 140 cells to ohmbatch.
func TestParseSpecRejectsAmbiguousOverridesOnly(t *testing.T) {
	_, err := ParseSpec([]byte(`{"overrides":{"optical.waveguides":2}}`))
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("overrides-only doc not rejected: %v", err)
	}
	// Adding either discriminant resolves it.
	if _, err := ParseSpec([]byte(`{"preset":"ohm-bw","overrides":{"optical.waveguides":2}}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec([]byte(`{"modes":["planar"],"overrides":{"optical.waveguides":2}}`)); err != nil {
		t.Fatal(err)
	}
	// The historical empty document stays a full-grid sweep.
	if _, err := ParseSpec([]byte(`{}`)); err != nil {
		t.Fatal(err)
	}
}

// TestCellCountGuardResistsHugeAxes: the cap must trip on the counted
// product before allocation, even when single grid axes are enormous.
func TestCellCountGuardResistsHugeAxes(t *testing.T) {
	many := make([]string, 300_000)
	for i := range many {
		many[i] = "lud"
	}
	spec := SweepSpec{Workloads: many} // 7 platforms x 2 modes x 300k
	if _, err := spec.Cells(); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Fatalf("huge workload axis not capped: %v", err)
	}
}

// TestResourceBudgetsRejectHostileScenarios: submission-time validation
// must refuse workloads and configs whose traces could not be allocated.
func TestResourceBudgetsRejectHostileScenarios(t *testing.T) {
	_, err := ScenarioSpec(config.Spec{Workload: &config.WorkloadSpec{Inline: &config.Workload{
		Name: "x", APKI: 1, ReadRatio: 0.5, FootprintScale: 1e10, HotSkew: 0.5}}})
	if err == nil || !strings.Contains(err.Error(), "footprint_scale") {
		t.Fatalf("terabyte footprint accepted: %v", err)
	}
	_, err = ScenarioSpec(config.Spec{Overrides: map[string]interface{}{"max_instructions": 1e12}})
	if err == nil || !strings.Contains(err.Error(), "trace budget") {
		t.Fatalf("terabyte instruction budget accepted: %v", err)
	}
	_, err = ScenarioSpec(config.Spec{Overrides: map[string]interface{}{"gpu.sms": 1 << 40, "gpu.warps_per_sm": 1 << 40}})
	if err == nil {
		t.Fatal("overflowing warp count accepted")
	}
}

// TestTraceBudgetCoversPageState: tiny page sizes must not multiply a
// legal footprint into an unaffordable per-page allocation, at either spec
// entry point.
func TestTraceBudgetCoversPageState(t *testing.T) {
	_, err := ScenarioSpec(config.Spec{Overrides: map[string]interface{}{
		"gpu.line_bytes":    1,
		"memory.page_bytes": 1,
	}, Workload: &config.WorkloadSpec{Inline: &config.Workload{
		Name: "x", APKI: 1, ReadRatio: 0.5, FootprintScale: 1024, HotSkew: 0.5}}})
	if err == nil || !strings.Contains(err.Error(), "trace pages") {
		t.Fatalf("page-state bomb accepted via scenario: %v", err)
	}
	spec := SweepSpec{
		Platforms: []config.Platform{config.OhmBW},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"pagerank"},
		Overrides: Overrides{"gpu.line_bytes": {1}, "memory.page_bytes": {1}},
	}
	if _, err := spec.Cells(); err == nil || !strings.Contains(err.Error(), "trace pages") {
		t.Fatalf("page-state bomb accepted via sweep: %v", err)
	}
}
