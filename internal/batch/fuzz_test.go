package batch

import (
	"testing"
)

// FuzzParseSpec hammers the sweep/scenario sniffing parser and the cell
// expansion behind every untrusted entry point (spec files, ohmserve
// submissions): malformed documents must come back as errors, never
// panics, and a document that parses must expand without panicking within
// the MaxCells bound.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"platforms":["origin","ohm-bw"],"modes":["planar"],"workloads":["lud"]}`,
		`{"preset":"ohm-base","mode":"two-level","workload":"pagerank"}`,
		`{"preset":"ohm-bw","overrides":{"optical.waveguides":4,"xpoint.write_latency_ns":900.5}}`,
		`{"overrides":{"optical.waveguides":[1,2,4]}}`,
		`{"platforms":["origin"],"overrides":{"gpu.sms":[8,16],"max_instructions":2000}}`,
		`{"waveguides":[1,2,4],"max_instructions":4000}`,
		`{"custom_workloads":[{"name":"x","apki":10,"read_ratio":0.5,"footprint_scale":1,"hot_skew":0.5}]}`,
		`{"workload":{"name":"w","apki":1e300,"read_ratio":-5,"footprint_scale":1e308,"hot_skew":2}}`,
		`{"platforms":["nope"]}`,
		`{"modes":["sideways"]}`,
		`{"overrides":{"":null}}`,
		`{"overrides":{"optical.waveguides":[]}}`,
		`[1,2,3]`,
		`"just a string"`,
		"{",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		cells, err := spec.Cells()
		if err != nil {
			return
		}
		if len(cells) > MaxCells {
			t.Fatalf("expansion escaped the MaxCells bound: %d cells", len(cells))
		}
		// Every expanded cell must be keyable (the cache depends on it).
		for i := range cells {
			if cells[i].RunFn == nil {
				if _, err := cells[i].Key(); err != nil {
					t.Fatalf("cell %d unkeyable: %v", i, err)
				}
			}
		}
	})
}
