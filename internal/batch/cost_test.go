package batch

import (
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/stats"
)

// TestEstimateCostClosureCells is the regression for the dry-run
// mispricing bug: a closure (RunFn) cell used to be priced as a default
// DES cell, so an experiment-driver batch dry-ran as if it were tens of
// milliseconds of event loop per cell when the estimator has no idea what
// the closure costs. Closures are now counted separately and excluded
// from the estimate — the same stance the analytical executor takes when
// it rejects closures outright.
func TestEstimateCostClosureCells(t *testing.T) {
	cfg := config.Default(config.OhmBase, config.Planar)
	des := Cell{Config: cfg, Workload: "lud"}
	ana := des
	ana.Exec = config.ExecAnalytical
	closure := Cell{RunFn: func(config.Config, string) (stats.Report, error) { return stats.Report{}, nil }}

	ce := EstimateCost([]Cell{des, ana, closure})
	if ce.Cells != 3 {
		t.Fatalf("Cells = %d, want 3", ce.Cells)
	}
	if ce.DESCells != 1 || ce.AnalyticalCells != 1 || ce.ClosureCells != 1 {
		t.Fatalf("split = %d des / %d analytical / %d closure, want 1/1/1",
			ce.DESCells, ce.AnalyticalCells, ce.ClosureCells)
	}
	want := DESCellCost + AnalyticalCellCost
	if ce.Estimated != want {
		t.Fatalf("Estimated = %v includes closure cells, want %v", ce.Estimated, want)
	}

	// A closure marked analytical is still a closure: the analytical
	// executor rejects it before running, and the estimator must not
	// price it as closed-form arithmetic either.
	anaClosure := closure
	anaClosure.Exec = config.ExecAnalytical
	ce = EstimateCost([]Cell{anaClosure})
	if ce.ClosureCells != 1 || ce.AnalyticalCells != 0 {
		t.Fatalf("analytical closure counted as %d analytical / %d closure, want 0/1",
			ce.AnalyticalCells, ce.ClosureCells)
	}
	if ce.Estimated != 0 {
		t.Fatalf("Estimated = %v for a pure-closure list, want 0", ce.Estimated)
	}
}

// TestEstimateCostPureSweep pins the ordinary path: no closures, the
// split prices both tiers.
func TestEstimateCostPureSweep(t *testing.T) {
	cfg := config.Default(config.OhmBase, config.Planar)
	cells := []Cell{
		{Config: cfg, Workload: "lud"},
		{Config: cfg, Workload: "sssp"},
		{Config: cfg, Workload: "lud", Exec: config.ExecAnalytical},
	}
	ce := EstimateCost(cells)
	if ce.ClosureCells != 0 {
		t.Fatalf("ClosureCells = %d on a closure-free sweep", ce.ClosureCells)
	}
	if want := 2*DESCellCost + 1*AnalyticalCellCost; ce.Estimated != want {
		t.Fatalf("Estimated = %v, want %v", ce.Estimated, want)
	}
	if ce.Estimated < 2*DESCellCost || ce.Estimated > 2*DESCellCost+time.Millisecond {
		t.Fatalf("estimate %v not dominated by the DES cells", ce.Estimated)
	}
}
