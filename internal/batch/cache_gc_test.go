package batch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/stats"
)

// gcKey mints distinct content-address-shaped keys ("00aaaaaaaa", ...)
// that land in distinct shard directories.
func gcKey(i int) string {
	return fmt.Sprintf("%02daaaaaaaa", i)
}

// gcReport returns a report whose marshaled size is identical for every
// key, so byte budgets translate directly into entry counts.
func gcReport() stats.Report {
	return stats.Report{IPC: 1.5, Instructions: 1000}
}

// entrySize is the on-disk size of one gcReport entry.
func entrySize(t *testing.T) int64 {
	t.Helper()
	data, err := json.Marshal(gcReport())
	if err != nil {
		t.Fatal(err)
	}
	return int64(len(data))
}

// TestDiskCacheEviction: puts past the byte budget evict the coldest
// entries (insertion order, nothing re-read) and the counters track it.
func TestDiskCacheEviction(t *testing.T) {
	size := entrySize(t)
	c, err := NewBoundedDiskCache(t.TempDir(), 3*size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Put(gcKey(i), gcReport()); err != nil {
			t.Fatal(err)
		}
	}
	for i, wantHit := range []bool{false, false, true, true, true} {
		if _, ok := c.Get(gcKey(i)); ok != wantHit {
			t.Errorf("key %d cached = %v, want %v", i, ok, wantHit)
		}
	}
	st := c.CacheStats()
	if st.Entries != 3 || st.Bytes != 3*size {
		t.Fatalf("stats = %+v, want 3 entries / %d bytes", st, 3*size)
	}
	// Evicted files are really gone from disk.
	if _, err := os.Stat(c.path(gcKey(0))); !os.IsNotExist(err) {
		t.Fatalf("evicted entry still on disk: %v", err)
	}
}

// TestDiskCacheGetRefreshesRecency: a read moves an entry off the cold
// end, so the next eviction takes the least-recently-USED entry, not the
// least-recently-written one.
func TestDiskCacheGetRefreshesRecency(t *testing.T) {
	size := entrySize(t)
	c, err := NewBoundedDiskCache(t.TempDir(), 3*size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(gcKey(i), gcReport()); err != nil {
			t.Fatal(err)
		}
	}
	// Re-read the oldest entry; key 1 becomes coldest.
	if _, ok := c.Get(gcKey(0)); !ok {
		t.Fatal("warm entry missing")
	}
	if err := c.Put(gcKey(3), gcReport()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(gcKey(1)); ok {
		t.Fatal("LRU victim should have been key 1")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(gcKey(i)); !ok {
			t.Fatalf("key %d evicted, want kept", i)
		}
	}
}

// TestDiskCacheStartupGC: reopening a directory under a tighter budget
// reconstructs recency from file mtimes and immediately evicts the
// coldest entries — the warm tail of an earlier run survives restarts.
func TestDiskCacheStartupGC(t *testing.T) {
	dir := t.TempDir()
	size := entrySize(t)
	c1, err := NewDiskCache(dir) // unbounded writer
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-24 * time.Hour)
	for i := 0; i < 4; i++ {
		if err := c1.Put(gcKey(i), gcReport()); err != nil {
			t.Fatal(err)
		}
		// Pin mtimes hours apart so the scan's ordering is unambiguous.
		mt := base.Add(time.Duration(i) * time.Hour)
		if err := os.Chtimes(c1.path(gcKey(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	c2, err := NewBoundedDiskCache(dir, 2*size)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.CacheStats()
	if st.Entries != 2 || st.Bytes != 2*size {
		t.Fatalf("post-scan stats = %+v, want 2 entries / %d bytes", st, 2*size)
	}
	for i, wantHit := range []bool{false, false, true, true} {
		if _, ok := c2.Get(gcKey(i)); ok != wantHit {
			t.Errorf("key %d cached after reopen = %v, want %v", i, ok, wantHit)
		}
	}
}

// TestDiskCacheQuarantine: a corrupt entry is a miss, is moved into the
// quarantine subdirectory (not deleted — it is evidence), stops counting
// against the budget, and the startup scan of a later process ignores it.
func TestDiskCacheQuarantine(t *testing.T) {
	dir := t.TempDir()
	c, err := NewBoundedDiskCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(gcKey(0), gcReport()); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(gcKey(1), gcReport()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(gcKey(0)), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(gcKey(0)); ok {
		t.Fatal("corrupt entry decoded")
	}
	if _, err := os.Stat(c.path(gcKey(0))); !os.IsNotExist(err) {
		t.Fatal("corrupt entry left in place")
	}
	qpath := filepath.Join(dir, quarantineDir, gcKey(0)+".json")
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	if st := c.CacheStats(); st.Entries != 1 {
		t.Fatalf("stats after quarantine = %+v, want 1 entry", st)
	}
	// Second read of the same key: a clean miss, no double-count.
	if _, ok := c.Get(gcKey(0)); ok {
		t.Fatal("quarantined entry resurrected")
	}

	// A fresh process scanning the directory must not count the
	// quarantined file as a cache entry.
	c2, err := NewBoundedDiskCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.CacheStats(); st.Entries != 1 {
		t.Fatalf("rescan stats = %+v, want 1 entry (quarantine skipped)", st)
	}
}

// TestDiskCacheKeepsLastEntry: a budget smaller than a single result must
// not evict the entry that was just written — a too-small budget degrades
// to "cache of one", never to thrash.
func TestDiskCacheKeepsLastEntry(t *testing.T) {
	c, err := NewBoundedDiskCache(t.TempDir(), 1) // one byte
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(gcKey(0), gcReport()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(gcKey(0)); !ok {
		t.Fatal("sole entry evicted under tiny budget")
	}
	if err := c.Put(gcKey(1), gcReport()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(gcKey(0)); ok {
		t.Fatal("cold entry survived under tiny budget")
	}
	if _, ok := c.Get(gcKey(1)); !ok {
		t.Fatal("just-put entry evicted")
	}
	if st := c.CacheStats(); st.Entries != 1 {
		t.Fatalf("stats = %+v, want exactly 1 entry", st)
	}
}

// TestDiskCacheUnboundedUntouched: without a budget nothing is ever
// evicted and no LRU state exists.
func TestDiskCacheUnboundedUntouched(t *testing.T) {
	c, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Put(gcKey(i), gcReport()); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.CacheStats(); st.Entries != 10 {
		t.Fatalf("unbounded cache lost entries: %+v", st)
	}
	if c.lru != nil || c.index != nil {
		t.Fatal("unbounded cache allocated LRU state")
	}
}
