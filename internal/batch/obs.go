package batch

import "repro/internal/obs"

// Process-wide batch-layer metrics, following the promauto idiom: declared
// once at package init, registered in obs.Default, served by GET /metrics.
// Several Runner or cache instances may coexist in one process (tests,
// embedded uses); counters and gauges accumulate across all of them, so
// assertions and dashboards should read deltas, and gauges are updated with
// balanced Add calls rather than absolute Sets.
//
// Granularity is cells, never simulated events: the discrete-event kernel
// stays allocation-free (the benchcheck CI gate enforces it), so nothing
// here is touched from inside a running simulation.
var (
	mCellsCompleted = obs.NewCounterVec("ohm_cells_completed_total",
		"Sweep cells resolved by this process (cache hits included).", "mode")
	mCellDuration = obs.NewHistogram("ohm_cell_duration_seconds",
		"Wall time to resolve one cell, cache hits included.", nil)
	mCellPhase = obs.NewHistogramVec("ohm_cell_phase_seconds",
		"Per-phase wall time of locally simulated cells.", nil, "phase")

	mActiveSims = obs.NewGauge("ohm_simulations_active",
		"Simulations currently holding a runner slot.")
	mSimSlots = obs.NewGauge("ohm_simulation_slots",
		"Total simulation slots across live runners (saturation ceiling for ohm_simulations_active).")

	mCacheHits = obs.NewCounter("ohm_result_cache_hits_total",
		"Cells served from the result cache without simulating.")
	mCacheMisses = obs.NewCounter("ohm_result_cache_misses_total",
		"Cells that ran a fresh simulation.")
	mCacheShared = obs.NewCounter("ohm_result_cache_shared_total",
		"Cells that joined another caller's in-flight simulation (single-flight).")
	mCachePutErrors = obs.NewCounter("ohm_result_cache_put_errors_total",
		"Tolerated result-cache store failures (the result was still returned).")
	mCacheCorrupt = obs.NewCounter("ohm_result_cache_corrupt_total",
		"Cache entries that existed but failed to decode (treated as misses).")

	mCacheEvictions = obs.NewCounter("ohm_cache_evictions_total",
		"Result-cache entries evicted by the byte-budget LRU GC.")
	mCacheReclaimed = obs.NewCounter("ohm_cache_reclaimed_bytes_total",
		"Bytes reclaimed from the result cache by the LRU GC.")
	mCacheQuarantined = obs.NewCounter("ohm_result_cache_quarantined_total",
		"Corrupt result-cache entries moved aside to quarantine/ for inspection.")

	mCacheReadSeconds = obs.NewHistogram("ohm_result_cache_read_seconds",
		"Disk result-cache read latency (hits and decode failures).", obs.IOBuckets)
	mCacheWriteSeconds = obs.NewHistogram("ohm_result_cache_write_seconds",
		"Disk result-cache write latency (temp file + rename).", obs.IOBuckets)
	mCacheEntries = obs.NewGauge("ohm_result_cache_entries",
		"Stored result-cache entries across live caches.")
	mCacheBytes = obs.NewGauge("ohm_result_cache_disk_bytes",
		"Bytes of stored result-cache entries across live caches.")
)

// phaseName* label the ohm_cell_phase_seconds series; they mirror the
// obs.Phases fields.
const (
	phaseTraceGen      = "trace_gen"
	phasePlatformBuild = "platform_build"
	phaseEventLoop     = "event_loop"
)

// CacheStats is a cache's size snapshot, surfaced by /v1/healthz.
type CacheStats struct {
	// Entries is the number of stored results.
	Entries int64 `json:"entries"`
	// Bytes is the serialized size of the stored results. For a DiskCache
	// this is file bytes on disk (sharding directories excluded).
	Bytes int64 `json:"bytes"`
}

// StatCache is implemented by caches that can report their size; both
// MemCache and DiskCache do. The serving layer type-asserts against this,
// so custom Cache implementations stay a two-method interface.
type StatCache interface {
	CacheStats() CacheStats
}
