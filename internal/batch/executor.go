package batch

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Executor runs a list of sweep cells to completion: reports are aligned
// positionally with cells, progress (when non-nil) observes each completed
// cell, and cancellation follows RunContext's contract. The in-process
// Runner satisfies it through LocalExecutor; internal/dist satisfies it
// with a coordinator that leases cells to remote worker processes. The
// serving layer programs against this seam, so where cells execute is a
// deployment decision, not an API one.
type Executor interface {
	RunContext(ctx context.Context, cells []Cell, progress Progress) ([]stats.Report, error)
}

// LocalExecutor is the in-process Executor: every cell runs on the wrapped
// Runner's worker pool, sharing its result cache, concurrency cap and
// single-flight table. It is the executor every deployment starts with and
// the reference the distributed path must stay byte-identical to.
type LocalExecutor struct {
	*Runner
}

var _ Executor = LocalExecutor{}

// AnalyticalExecutor forces every cell through the closed-form analytical
// twin regardless of the mode the cell was authored with: it is the "give
// me the whole sweep as estimates" switch for design-space exploration,
// where a 10^3x cheaper answer per cell is worth a ~10% error bar.
// Coerced cells keep the Runner's cache (analytical keys are salted with
// the twin's model version, so estimates and simulations never collide).
// Closure-carrying cells have no config/workload for the twin to evaluate
// and are rejected up front, before any cell runs.
type AnalyticalExecutor struct {
	*Runner
}

var _ Executor = AnalyticalExecutor{}

// RunContext coerces the cells to analytical execution and runs them on
// the wrapped Runner.
func (a AnalyticalExecutor) RunContext(ctx context.Context, cells []Cell, progress Progress) ([]stats.Report, error) {
	coerced := make([]Cell, len(cells))
	for i, c := range cells {
		if c.RunFn != nil {
			return nil, fmt.Errorf("batch: cell %d (%s): analytical mode cannot evaluate a custom RunFn closure", i, c)
		}
		c.Exec = config.ExecAnalytical
		coerced[i] = c
	}
	return a.Runner.RunContext(ctx, coerced, progress)
}

// RunCell resolves a single cell through the Runner's full machinery —
// cache lookup, single-flight, the process-wide simulation semaphore —
// and reports whether it was served without simulating here. It is the
// per-cell entry point the distributed dispatcher uses for cells it
// executes locally (closure-carrying cells can't be shipped, and the
// coordinator may run cells itself alongside remote workers).
func (r *Runner) RunCell(ctx context.Context, c Cell) (stats.Report, bool, error) {
	rep, hit, _, err := r.runCell(ctx, c)
	return rep, hit, err
}

// RunCellTimed is RunCell plus the cell's phase split — zero when the
// cell was served from cache, joined an in-flight simulation or ran an
// opaque custom RunFn. Remote workers use it to ship the breakdown back
// to the coordinator with the result.
func (r *Runner) RunCellTimed(ctx context.Context, c Cell) (stats.Report, bool, obs.Phases, error) {
	return r.runCell(ctx, c)
}
