package batch

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// keyVersion invalidates every cached result when the simulator's
// observable behaviour changes; bump it alongside model changes that alter
// reports without altering config.Config.
const keyVersion = "ohm-batch-v1"

// Key returns the cell's content address: a hash of the fully-resolved
// configuration, the workload name and the variant salt — plus, for inline
// custom workloads, the full workload definition, so two custom workloads
// sharing a name never collide. Table II cells hash exactly as they always
// have, keeping caches warm across the spec redesign. Two cells with equal
// keys produce byte-identical reports (the simulator is deterministic and
// seeded from the config), which is what makes the cache safe.
func (c Cell) Key() (string, error) {
	cfg, err := json.Marshal(c.Config)
	if err != nil {
		return "", fmt.Errorf("batch: hash config: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte{0})
	h.Write(cfg)
	h.Write([]byte{0})
	h.Write([]byte(c.Workload))
	h.Write([]byte{0})
	h.Write([]byte(c.Salt))
	if c.WorkloadDef != nil {
		def, err := json.Marshal(c.WorkloadDef)
		if err != nil {
			return "", fmt.Errorf("batch: hash workload def: %w", err)
		}
		h.Write([]byte{0})
		h.Write(def)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheable reports whether the cell's key fully determines its result: a
// default-run cell always is; a custom RunFn is opaque, so it must declare
// a Salt naming its variant to opt in.
func (c Cell) cacheable() bool {
	return c.RunFn == nil || c.Salt != ""
}

// Cache stores marshaled stats.Report values under content-address keys.
// Both implementations store the serialized form so cached and fresh
// results are interchangeable (no shared map aliasing between callers).
type Cache interface {
	Get(key string) (stats.Report, bool)
	Put(key string, rep stats.Report) error
}

// MemCache is a process-wide in-memory cache; experiments share one so
// overlapping figures (16-19 visit many of the same cells) run each cell
// once per process.
type MemCache struct {
	mu    sync.RWMutex
	m     map[string][]byte
	bytes int64
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache {
	return &MemCache{m: make(map[string][]byte)}
}

// Get decodes the stored report, if any.
func (c *MemCache) Get(key string) (stats.Report, bool) {
	c.mu.RLock()
	data, ok := c.m[key]
	c.mu.RUnlock()
	if !ok {
		return stats.Report{}, false
	}
	var rep stats.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		mCacheCorrupt.Inc()
		return stats.Report{}, false
	}
	return rep, true
}

// Put stores the report's serialized form.
func (c *MemCache) Put(key string, rep stats.Report) error {
	data, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	c.mu.Lock()
	old, existed := c.m[key]
	c.m[key] = data
	c.bytes += int64(len(data) - len(old))
	c.mu.Unlock()
	if !existed {
		mCacheEntries.Inc()
	}
	mCacheBytes.Add(int64(len(data) - len(old)))
	return nil
}

// Len returns the number of cached entries.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// CacheStats reports the cache's entry count and stored bytes.
func (c *MemCache) CacheStats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{Entries: int64(len(c.m)), Bytes: c.bytes}
}

// DiskCache is the on-disk result cache: one JSON file per cell, named by
// its content address, sharded by the key's first byte to keep directories
// small. Writes go through a temp file + rename so a crashed run never
// leaves a torn entry.
type DiskCache struct {
	Dir string

	entries atomic.Int64
	bytes   atomic.Int64
}

// NewDiskCache opens (creating if needed) a cache rooted at dir. Opening
// scans the directory once so entry and byte counts reflect results kept
// warm from earlier runs, not just this process's writes.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("batch: cache dir: %w", err)
	}
	c := &DiskCache{Dir: dir}
	_ = filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		if info, err := d.Info(); err == nil {
			c.entries.Add(1)
			c.bytes.Add(info.Size())
		}
		return nil
	})
	mCacheEntries.Add(c.entries.Load())
	mCacheBytes.Add(c.bytes.Load())
	return c, nil
}

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.Dir, key[:2], key+".json")
}

// Get loads a cached report; a missing or unreadable entry is a miss.
func (c *DiskCache) Get(key string) (stats.Report, bool) {
	start := time.Now()
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return stats.Report{}, false
	}
	mCacheReadSeconds.ObserveDuration(time.Since(start))
	var rep stats.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		mCacheCorrupt.Inc()
		return stats.Report{}, false
	}
	return rep, true
}

// Put writes the report atomically under its key.
func (c *DiskCache) Put(key string, rep stats.Report) error {
	data, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	start := time.Now()
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Replacing an entry swaps bytes; a fresh key adds an entry. Sized
	// before the rename so the delta is exact even under concurrent Puts
	// of distinct keys (same-key concurrent Puts write identical bytes —
	// results are content-addressed — so any interleaving still balances).
	var oldSize, delta int64
	fresh := true
	if info, err := os.Stat(p); err == nil {
		oldSize, fresh = info.Size(), false
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return err
	}
	delta = int64(len(data)) - oldSize
	c.bytes.Add(delta)
	mCacheBytes.Add(delta)
	if fresh {
		c.entries.Add(1)
		mCacheEntries.Inc()
	}
	mCacheWriteSeconds.ObserveDuration(time.Since(start))
	return nil
}

// CacheStats reports the cache's entry count and file bytes on disk.
func (c *DiskCache) CacheStats() CacheStats {
	return CacheStats{Entries: c.entries.Load(), Bytes: c.bytes.Load()}
}
