package batch

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/twin"
)

// keyVersion invalidates every cached result when the simulator's
// observable behaviour changes; bump it alongside model changes that alter
// reports without altering config.Config.
const keyVersion = "ohm-batch-v1"

// Key returns the cell's content address: a hash of the fully-resolved
// configuration, the workload name and the variant salt — plus, for inline
// custom workloads, the full workload definition, so two custom workloads
// sharing a name never collide. Table II cells hash exactly as they always
// have, keeping caches warm across the spec redesign. Two cells with equal
// keys produce byte-identical reports (the simulator is deterministic and
// seeded from the config), which is what makes the cache safe.
func (c Cell) Key() (string, error) {
	cfg, err := json.Marshal(c.Config)
	if err != nil {
		return "", fmt.Errorf("batch: hash config: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte{0})
	h.Write(cfg)
	h.Write([]byte{0})
	h.Write([]byte(c.Workload))
	h.Write([]byte{0})
	h.Write([]byte(c.Salt))
	if c.Exec == config.ExecAnalytical {
		// Salt analytical keys with the execution mode AND the twin's model
		// version: estimates must never answer for simulations (or vice
		// versa), and retuning the twin must invalidate stale estimates
		// without touching any DES entry. DES cells write nothing here, so
		// their keys stay byte-identical to every cache ever populated.
		h.Write([]byte{0})
		h.Write([]byte("exec=analytical/" + twin.ModelVersion))
	}
	if c.WorkloadDef != nil {
		def, err := json.Marshal(c.WorkloadDef)
		if err != nil {
			return "", fmt.Errorf("batch: hash workload def: %w", err)
		}
		h.Write([]byte{0})
		h.Write(def)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheable reports whether the cell's key fully determines its result: a
// default-run cell always is; a custom RunFn is opaque, so it must declare
// a Salt naming its variant to opt in.
func (c Cell) cacheable() bool {
	return c.RunFn == nil || c.Salt != ""
}

// Cache stores marshaled stats.Report values under content-address keys.
// Both implementations store the serialized form so cached and fresh
// results are interchangeable (no shared map aliasing between callers).
type Cache interface {
	Get(key string) (stats.Report, bool)
	Put(key string, rep stats.Report) error
}

// MemCache is a process-wide in-memory cache; experiments share one so
// overlapping figures (16-19 visit many of the same cells) run each cell
// once per process.
type MemCache struct {
	mu    sync.RWMutex
	m     map[string][]byte
	bytes int64
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache {
	return &MemCache{m: make(map[string][]byte)}
}

// Get decodes the stored report, if any.
func (c *MemCache) Get(key string) (stats.Report, bool) {
	c.mu.RLock()
	data, ok := c.m[key]
	c.mu.RUnlock()
	if !ok {
		return stats.Report{}, false
	}
	var rep stats.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		mCacheCorrupt.Inc()
		return stats.Report{}, false
	}
	return rep, true
}

// Put stores the report's serialized form.
func (c *MemCache) Put(key string, rep stats.Report) error {
	data, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	c.mu.Lock()
	old, existed := c.m[key]
	c.m[key] = data
	c.bytes += int64(len(data) - len(old))
	c.mu.Unlock()
	if !existed {
		mCacheEntries.Inc()
	}
	mCacheBytes.Add(int64(len(data) - len(old)))
	return nil
}

// Len returns the number of cached entries.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// CacheStats reports the cache's entry count and stored bytes.
func (c *MemCache) CacheStats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{Entries: int64(len(c.m)), Bytes: c.bytes}
}

// DiskCache is the on-disk result cache: one JSON file per cell, named by
// its content address, sharded by the key's first byte to keep directories
// small. Writes go through a temp file + rename so a crashed run never
// leaves a torn entry.
//
// With a byte budget (NewBoundedDiskCache) the cache also runs LRU GC: an
// in-memory recency index is seeded from file mtimes during the startup
// scan, Get refreshes recency (bumping the file's mtime so the order
// survives restarts), and an incremental sweep after each Put evicts the
// coldest entries until the cache is back under budget. Entries that
// exist but fail to decode are moved aside into quarantineDir for
// inspection instead of silently missing forever.
type DiskCache struct {
	Dir string

	entries atomic.Int64
	bytes   atomic.Int64

	// LRU state, present only when maxBytes > 0 so the unbounded cache
	// keeps its zero-memory-overhead, atomics-only behaviour.
	maxBytes int64
	mu       sync.Mutex
	lru      *list.List // front = hottest; values are *lruEntry
	index    map[string]*list.Element
}

// lruEntry is one key's node in the recency list.
type lruEntry struct {
	key  string
	size int64
}

// quarantineDir is the subdirectory (under Dir) corrupt entries are moved
// into; the startup scan skips it.
const quarantineDir = "quarantine"

// NewDiskCache opens (creating if needed) an unbounded cache rooted at
// dir; see NewBoundedDiskCache for the byte-budgeted form.
func NewDiskCache(dir string) (*DiskCache, error) {
	return NewBoundedDiskCache(dir, 0)
}

// NewBoundedDiskCache opens (creating if needed) a cache rooted at dir
// holding at most maxBytes of entries (0 means unbounded). Opening scans
// the directory once so entry and byte counts reflect results kept warm
// from earlier runs; with a budget the same scan seeds the LRU order
// from file mtimes and immediately evicts past-budget cold entries.
func NewBoundedDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("batch: cache dir: %w", err)
	}
	c := &DiskCache{Dir: dir, maxBytes: maxBytes}
	type scanned struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []scanned
	_ = filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if d.Name() == quarantineDir {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		if info, err := d.Info(); err == nil {
			c.entries.Add(1)
			c.bytes.Add(info.Size())
			if maxBytes > 0 {
				found = append(found, scanned{
					key:   strings.TrimSuffix(d.Name(), ".json"),
					size:  info.Size(),
					mtime: info.ModTime(),
				})
			}
		}
		return nil
	})
	mCacheEntries.Add(c.entries.Load())
	mCacheBytes.Add(c.bytes.Load())
	if maxBytes > 0 {
		// Oldest-first insertion at the front leaves the most recently
		// touched entry hottest.
		sort.Slice(found, func(a, b int) bool { return found[a].mtime.Before(found[b].mtime) })
		c.lru = list.New()
		c.index = make(map[string]*list.Element, len(found))
		for _, s := range found {
			c.index[s.key] = c.lru.PushFront(&lruEntry{key: s.key, size: s.size})
		}
		c.mu.Lock()
		c.gcLocked("")
		c.mu.Unlock()
	}
	return c, nil
}

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.Dir, key[:2], key+".json")
}

// Get loads a cached report; a missing or unreadable entry is a miss, a
// present-but-corrupt entry is quarantined and then a miss.
func (c *DiskCache) Get(key string) (stats.Report, bool) {
	start := time.Now()
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return stats.Report{}, false
	}
	mCacheReadSeconds.ObserveDuration(time.Since(start))
	var rep stats.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		mCacheCorrupt.Inc()
		c.quarantine(key, int64(len(data)))
		return stats.Report{}, false
	}
	c.touch(key, int64(len(data)))
	return rep, true
}

// touch refreshes the key's recency: front of the LRU list plus an mtime
// bump on disk, so the LRU order a future process reconstructs from the
// startup scan reflects reads, not just writes. Bounded caches only — the
// unbounded cache stays syscall-for-syscall identical to its old self.
func (c *DiskCache) touch(key string, size int64) {
	if c.maxBytes <= 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
	} else {
		// Written by another process sharing the directory, or raced with
		// eviction; adopt it.
		c.index[key] = c.lru.PushFront(&lruEntry{key: key, size: size})
	}
	c.mu.Unlock()
	now := time.Now()
	_ = os.Chtimes(c.path(key), now, now)
}

// quarantine moves a corrupt entry into quarantineDir (flat, keyed file
// name) so it can be inspected and the slot serves a fresh result next
// time, instead of decoding to garbage forever.
func (c *DiskCache) quarantine(key string, size int64) {
	dst := filepath.Join(c.Dir, quarantineDir, key+".json")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return
	}
	if err := os.Rename(c.path(key), dst); err != nil {
		return
	}
	mCacheQuarantined.Inc()
	c.entries.Add(-1)
	c.bytes.Add(-size)
	mCacheEntries.Dec()
	mCacheBytes.Add(-size)
	if c.maxBytes > 0 {
		c.mu.Lock()
		if el, ok := c.index[key]; ok {
			c.lru.Remove(el)
			delete(c.index, key)
		}
		c.mu.Unlock()
	}
}

// Put writes the report atomically under its key, then (bounded caches)
// sweeps the coldest entries until the cache is back under budget.
func (c *DiskCache) Put(key string, rep stats.Report) error {
	data, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	start := time.Now()
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Replacing an entry swaps bytes; a fresh key adds an entry. Sized
	// before the rename so the delta is exact even under concurrent Puts
	// of distinct keys (same-key concurrent Puts write identical bytes —
	// results are content-addressed — so any interleaving still balances).
	var oldSize, delta int64
	fresh := true
	if info, err := os.Stat(p); err == nil {
		oldSize, fresh = info.Size(), false
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return err
	}
	delta = int64(len(data)) - oldSize
	c.bytes.Add(delta)
	mCacheBytes.Add(delta)
	if fresh {
		c.entries.Add(1)
		mCacheEntries.Inc()
	}
	mCacheWriteSeconds.ObserveDuration(time.Since(start))
	if c.maxBytes > 0 {
		c.mu.Lock()
		if el, ok := c.index[key]; ok {
			c.lru.MoveToFront(el)
			el.Value.(*lruEntry).size = int64(len(data))
		} else {
			c.index[key] = c.lru.PushFront(&lruEntry{key: key, size: int64(len(data))})
		}
		c.gcLocked(key)
		c.mu.Unlock()
	}
	return nil
}

// gcLocked evicts from the cold end of the LRU list until the cache fits
// its budget. The entry named keep (the just-written key) and the final
// remaining entry are never evicted: a budget smaller than one result
// must not make the cache thrash every Put it just did. Caller holds c.mu.
func (c *DiskCache) gcLocked(keep string) {
	for c.bytes.Load() > c.maxBytes && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*lruEntry)
		if e.key == keep {
			// The protected key is coldest only when it is effectively
			// the last real entry; stop rather than rotate forever.
			break
		}
		c.lru.Remove(el)
		delete(c.index, e.key)
		if err := os.Remove(c.path(e.key)); err != nil && !os.IsNotExist(err) {
			continue // couldn't delete; counters stay honest, retry next GC
		}
		c.entries.Add(-1)
		c.bytes.Add(-e.size)
		mCacheEntries.Dec()
		mCacheBytes.Add(-e.size)
		mCacheEvictions.Inc()
		mCacheReclaimed.Add(uint64(e.size))
	}
}

// CacheStats reports the cache's entry count and file bytes on disk.
func (c *DiskCache) CacheStats() CacheStats {
	return CacheStats{Entries: c.entries.Load(), Bytes: c.bytes.Load()}
}
