package batch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/stats"
)

// Runner executes sweep cells on a pool of worker goroutines. Each cell is
// an independent single-threaded simulation, so the sweep is embarrassingly
// parallel; results are returned in cell order regardless of completion
// order, so parallel and serial runs of the same spec are byte-identical.
type Runner struct {
	// Workers caps pool size; <=0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, short-circuits cells whose content address has a
	// stored report and stores fresh results.
	Cache Cache
	// RunFn executes a cell without its own RunFn; nil means core.RunConfig.
	// Tests inject counters here to prove warm-cache runs never simulate.
	RunFn RunFunc

	hits    atomic.Uint64
	misses  atomic.Uint64
	putErrs atomic.Uint64
}

// NewRunner returns a Runner with the given pool size and cache (both may
// be zero values).
func NewRunner(workers int, cache Cache) *Runner {
	return &Runner{Workers: workers, Cache: cache}
}

// Stats reports cache traffic since the Runner was created: hits served
// from the cache, misses that ran a simulation, and store failures that
// were tolerated (the result was still returned).
type Stats struct {
	Hits      uint64
	Misses    uint64
	PutErrors uint64
}

// Stats returns the accumulated counters.
func (r *Runner) Stats() Stats {
	return Stats{Hits: r.hits.Load(), Misses: r.misses.Load(), PutErrors: r.putErrs.Load()}
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunSpec expands the spec and runs its cells.
func (r *Runner) RunSpec(spec SweepSpec) ([]stats.Report, error) {
	return r.Run(spec.Cells())
}

// Run executes every cell and returns reports positionally aligned with
// cells. On failure it returns the error of the lowest-indexed failing
// cell, wrapped with the cell's identity; all in-flight cells still drain.
func (r *Runner) Run(cells []Cell) ([]stats.Report, error) {
	reports := make([]stats.Report, len(cells))
	errs := make([]error, len(cells))

	n := r.workers()
	if n > len(cells) {
		n = len(cells)
	}
	if n <= 1 {
		for i := range cells {
			reports[i], errs[i] = r.runCell(cells[i])
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(n)
		for w := 0; w < n; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					reports[i], errs[i] = r.runCell(cells[i])
				}
			}()
		}
		for i := range cells {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("batch: cell %d (%s): %w", i, cells[i], err)
		}
	}
	return reports, nil
}

// runCell resolves one cell: cache lookup, then simulation, then store.
func (r *Runner) runCell(c Cell) (stats.Report, error) {
	var key string
	if r.Cache != nil && c.cacheable() {
		k, err := c.Key()
		if err != nil {
			return stats.Report{}, err
		}
		key = k
		if rep, ok := r.Cache.Get(key); ok {
			r.hits.Add(1)
			return rep, nil
		}
	}
	r.misses.Add(1)

	run := c.RunFn
	if run == nil {
		run = r.RunFn
	}
	if run == nil {
		run = core.RunConfig
	}
	rep, err := run(c.Config, c.Workload)
	if err != nil {
		return stats.Report{}, err
	}
	if key != "" {
		// The cache is an optimization, not a correctness dependency: a
		// failed Put (full disk, lost permissions) must not discard a
		// successfully computed result, so it only bumps a counter the
		// caller can surface.
		if err := r.Cache.Put(key, rep); err != nil {
			r.putErrs.Add(1)
			return rep, nil
		}
		// Serve the stored form so cached and fresh paths are identical
		// byte-for-byte (JSON round-tripping normalizes empty maps).
		if cached, ok := r.Cache.Get(key); ok {
			return cached, nil
		}
	}
	return rep, nil
}
