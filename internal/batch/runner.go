package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/twin"
)

// Runner executes sweep cells on a pool of worker goroutines. Each cell is
// an independent single-threaded simulation, so the sweep is embarrassingly
// parallel; results are returned in cell order regardless of completion
// order, so parallel and serial runs of the same spec are byte-identical.
//
// One Runner is safe to share across concurrent Run/RunContext calls — the
// ohmserve daemon runs every job on a single process-wide Runner. Sharing
// gives jobs three things: a common result cache, a process-wide cap on
// concurrent simulations (the semaphore below, so N jobs cannot
// oversubscribe the machine N-fold), and single-flight deduplication on
// cache keys, so two jobs that request the same cell at the same time
// simulate it once and share the result.
type Runner struct {
	// Workers caps the number of concurrently executing simulations across
	// all Run/RunContext calls on this Runner; <=0 means GOMAXPROCS. It must
	// be set before the first Run.
	Workers int
	// Cache, when non-nil, short-circuits cells whose content address has a
	// stored report and stores fresh results.
	Cache Cache
	// RunFn executes a name-resolved cell without its own RunFn; nil means
	// core.RunConfig. Cells carrying an inline WorkloadDef bypass it and
	// always simulate their definition. Tests inject counters here to
	// prove warm-cache runs never simulate.
	RunFn RunFunc

	hits       atomic.Uint64
	misses     atomic.Uint64
	shared     atomic.Uint64
	putErrs    atomic.Uint64
	analytical atomic.Uint64

	semOnce sync.Once
	sem     chan struct{}

	mu     sync.Mutex
	flight map[string]*flightCall
}

// flightCall is one in-flight cacheable simulation that concurrent
// requesters of the same key can wait on instead of re-simulating.
type flightCall struct {
	done chan struct{}
	rep  stats.Report
	err  error
}

// NewRunner returns a Runner with the given pool size and cache (both may
// be zero values).
func NewRunner(workers int, cache Cache) *Runner {
	return &Runner{Workers: workers, Cache: cache}
}

// Stats reports cache traffic since the Runner was created: hits served
// from the cache, misses that ran a simulation, single-flight waits that
// shared another caller's in-flight simulation (also counted as hits), and
// store failures that were tolerated (the result was still returned).
type Stats struct {
	Hits      uint64
	Misses    uint64
	Shared    uint64
	PutErrors uint64
	// Analytical counts cells resolved in analytical (twin) mode,
	// whether estimated fresh or served from the cache.
	Analytical uint64
}

// Stats returns the accumulated counters.
func (r *Runner) Stats() Stats {
	return Stats{
		Hits:       r.hits.Load(),
		Misses:     r.misses.Load(),
		Shared:     r.shared.Load(),
		PutErrors:  r.putErrs.Load(),
		Analytical: r.analytical.Load(),
	}
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// acquire takes one process-wide simulation slot; cancellation while
// queued for a slot abandons the cell without simulating.
func (r *Runner) acquire(ctx context.Context) error {
	r.semOnce.Do(func() {
		r.sem = make(chan struct{}, r.workers())
		mSimSlots.Add(int64(r.workers()))
	})
	select {
	case r.sem <- struct{}{}:
		mActiveSims.Inc()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Runner) release() {
	mActiveSims.Dec()
	<-r.sem
}

// Progress observes cell completions during RunContext: done counts cells
// resolved so far out of total, and hit reports whether this cell came from
// the cache (or a shared in-flight simulation) rather than a fresh run.
// Calls are serialized and done is strictly increasing; cells abandoned by
// cancellation or failure are never reported.
type Progress func(done, total int, hit bool)

// RunSpec expands the spec and runs its cells.
func (r *Runner) RunSpec(spec SweepSpec) ([]stats.Report, error) {
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	return r.Run(cells)
}

// Run executes every cell and returns reports positionally aligned with
// cells. On failure it returns the error of the lowest-indexed failing
// cell, wrapped with the cell's identity; all in-flight cells still drain.
func (r *Runner) Run(cells []Cell) ([]stats.Report, error) {
	return r.RunContext(context.Background(), cells, nil)
}

// RunContext is Run with cancellation and per-cell progress reporting.
// Cancelling ctx stops new cells from starting and abandons cells queued
// for a simulation slot; cells already simulating run to completion (the
// discrete-event core is not interruptible) and their results still land
// in the cache. A cancelled run returns ctx's error wrapped with the first
// unstarted cell's identity.
func (r *Runner) RunContext(ctx context.Context, cells []Cell, progress Progress) ([]stats.Report, error) {
	reports := make([]stats.Report, len(cells))
	errs := make([]error, len(cells))

	// Pin every distinct trace this sweep will read before any cell runs:
	// cells then borrow the one resident trace from the registry, and its
	// LRU bound cannot evict a sweep's trace between two cells that share
	// it (which would generate it twice). Pinning is an upper bound — a
	// cell served from the result cache never touches its trace — and
	// RunFn cells are opaque, so they are not pinned.
	var pins trace.Pins
	defer pins.Release()
	for i := range cells {
		c := &cells[i]
		if c.RunFn != nil || c.Exec == config.ExecAnalytical {
			// RunFn cells are opaque; analytical cells never read a trace —
			// the twin evaluates the trace's distribution in closed form.
			continue
		}
		switch {
		case c.WorkloadDef != nil:
			pins.Add(*c.WorkloadDef, &c.Config)
		case r.RunFn == nil:
			if w, ok := config.WorkloadByName(c.Workload); ok {
				pins.Add(w, &c.Config)
			}
		}
	}

	var pmu sync.Mutex
	completed := 0
	note := func(hit bool) {
		if progress == nil {
			return
		}
		pmu.Lock()
		completed++
		progress(completed, len(cells), hit)
		pmu.Unlock()
	}

	do := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		rep, hit, _, err := r.runCell(ctx, cells[i])
		reports[i], errs[i] = rep, err
		if err == nil {
			note(hit)
		}
	}

	n := r.workers()
	if n > len(cells) {
		n = len(cells)
	}
	if n <= 1 {
		for i := range cells {
			do(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(n)
		for w := 0; w < n; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					do(i)
				}
			}()
		}
		for i := range cells {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("batch: cell %d (%s): %w", i, cells[i], err)
		}
	}
	return reports, nil
}

// runCell resolves one cell and accounts for it: wall time and the
// hit/miss outcome feed the process metrics, and when the context carries
// a job span (the serving layer attaches one per job) the cell's timing
// folds into that job's breakdown. Phase timings are returned so remote
// workers can ship them back over the wire.
func (r *Runner) runCell(ctx context.Context, c Cell) (stats.Report, bool, obs.Phases, error) {
	start := time.Now()
	rep, hit, ph, err := r.resolveCell(ctx, c)
	if err != nil {
		return rep, hit, ph, err
	}
	wall := time.Since(start)
	analytical := c.Exec == config.ExecAnalytical
	if analytical {
		r.analytical.Add(1)
	}
	mCellsCompleted.With(c.Exec.String()).Inc()
	mCellDuration.ObserveDuration(wall)
	if !ph.IsZero() {
		mCellPhase.With(phaseTraceGen).ObserveDuration(ph.TraceGen)
		mCellPhase.With(phasePlatformBuild).ObserveDuration(ph.PlatformBuild)
		mCellPhase.With(phaseEventLoop).ObserveDuration(ph.EventLoop)
	}
	obs.SpanFrom(ctx).RecordCellMode(wall, ph, hit, false, analytical)
	return rep, hit, ph, nil
}

// NoteExternalResolve accounts for a cell that was resolved outside
// runCell — the dist coordinator serving a waiter straight from the
// shared cache, or handing extra same-key waiters a copy of one computed
// result. Without this, a cell resolved by the dispatcher's fast path
// would vanish from ohm_cells_completed{mode} and the /v1/healthz cache
// counters, so a clustered run would under-report completed cells
// relative to an identical single-process run. shared marks the
// piggyback case (several waiters, one computation), mirroring the
// single-flight follower accounting in resolveCell.
func (r *Runner) NoteExternalResolve(exec config.ExecMode, shared bool) {
	r.hits.Add(1)
	mCacheHits.Inc()
	if shared {
		r.shared.Add(1)
		mCacheShared.Inc()
	}
	if exec == config.ExecAnalytical {
		r.analytical.Add(1)
	}
	mCellsCompleted.With(exec.String()).Inc()
}

// resolveCell resolves one cell: cache lookup, then single-flight
// simulation, then store. The bool result reports whether the cell was
// served without simulating here (cache hit or shared in-flight result).
func (r *Runner) resolveCell(ctx context.Context, c Cell) (stats.Report, bool, obs.Phases, error) {
	var key string
	if r.Cache != nil && c.cacheable() {
		k, err := c.Key()
		if err != nil {
			return stats.Report{}, false, obs.Phases{}, err
		}
		key = k
		if rep, ok := r.Cache.Get(key); ok {
			r.hits.Add(1)
			mCacheHits.Inc()
			return rep, true, obs.Phases{}, nil
		}
	}
	if key == "" {
		rep, ph, err := r.simulate(ctx, c)
		return rep, false, ph, err
	}

	// Single-flight: concurrent requests for one key (two jobs polling the
	// same figure, overlapping sweeps) elect a leader that simulates while
	// everyone else waits for its result.
joinFlight:
	r.mu.Lock()
	if r.flight == nil {
		r.flight = make(map[string]*flightCall)
	}
	if call, inflight := r.flight[key]; inflight {
		r.mu.Unlock()
		select {
		case <-call.done:
		case <-ctx.Done():
			return stats.Report{}, false, obs.Phases{}, ctx.Err()
		}
		if call.err != nil {
			// A context error is the *leader's* cancellation, not ours: its
			// job was deleted while this one is still live, so retake the
			// flight (or hit the cache) instead of inheriting the error and
			// cancelling an unrelated job.
			if (errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded)) && ctx.Err() == nil {
				goto joinFlight
			}
			return stats.Report{}, false, obs.Phases{}, call.err
		}
		r.shared.Add(1)
		r.hits.Add(1)
		mCacheShared.Inc()
		mCacheHits.Inc()
		// Prefer the cached form so every caller gets a private decoded
		// copy instead of aliasing the leader's report maps.
		if rep, ok := r.Cache.Get(key); ok {
			return rep, true, obs.Phases{}, nil
		}
		return call.rep, true, obs.Phases{}, nil
	}
	call := &flightCall{done: make(chan struct{})}
	r.flight[key] = call
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.flight, key)
		r.mu.Unlock()
		close(call.done)
	}()

	// A prior leader may have finished between our cache miss and taking
	// flight leadership; its Put happens before its flight entry is
	// removed, so re-checking the cache here closes that window.
	if rep, ok := r.Cache.Get(key); ok {
		r.hits.Add(1)
		mCacheHits.Inc()
		call.rep = rep
		return rep, true, obs.Phases{}, nil
	}

	rep, ph, err := r.simulate(ctx, c)
	if err != nil {
		call.err = err
		return stats.Report{}, false, obs.Phases{}, err
	}
	// The cache is an optimization, not a correctness dependency: a failed
	// Put (full disk, lost permissions) must not discard a successfully
	// computed result, so it only bumps a counter the caller can surface.
	if putErr := r.Cache.Put(key, rep); putErr != nil {
		r.putErrs.Add(1)
		mCachePutErrors.Inc()
		call.rep = rep
		return rep, false, ph, nil
	}
	// Serve the stored form so cached and fresh paths are identical
	// byte-for-byte (JSON round-tripping normalizes empty maps).
	if cached, ok := r.Cache.Get(key); ok {
		call.rep = cached
		return cached, false, ph, nil
	}
	call.rep = rep
	return rep, false, ph, nil
}

// simulate executes the cell under the process-wide concurrency cap. The
// miss counter is bumped only once a slot is held: a cell abandoned by
// cancellation while queued for a slot never simulated, and Stats.Misses
// documents "misses that ran a simulation". The phase split is measured
// for the default simulation paths; a custom RunFn is opaque, so its
// phases stay zero and only the cell's wall time is observable.
//
// The default paths build the platform into a pooled core.RunState, so
// consecutive cells on one worker reuse the previous cell's device arrays
// and arenas instead of reallocating them. Reports are value snapshots,
// so releasing the state after the run never aliases a returned report.
// RunFn cells bypass the pool: a closure's construction is opaque, so
// there is nothing to rebuild in place (see docs/reference/pooling.md).
func (r *Runner) simulate(ctx context.Context, c Cell) (stats.Report, obs.Phases, error) {
	if c.Exec == config.ExecAnalytical {
		return r.estimate(ctx, c)
	}
	if err := r.acquire(ctx); err != nil {
		return stats.Report{}, obs.Phases{}, err
	}
	defer r.release()
	r.misses.Add(1)
	mCacheMisses.Inc()
	run := c.RunFn
	if run == nil && c.WorkloadDef != nil {
		// A cell carrying an inline workload definition is self-describing:
		// it always simulates from that definition. Routing it through
		// Runner.RunFn — which only sees the workload *name* — would run
		// the Table II namesake (or fail on an unknown name) while the
		// cache keyed on the custom definition.
		st := core.AcquireRunState()
		defer core.ReleaseRunState(st)
		return core.RunWorkloadDefTimedIn(st, c.Config, *c.WorkloadDef)
	}
	if run == nil {
		run = r.RunFn
	}
	if run == nil {
		st := core.AcquireRunState()
		defer core.ReleaseRunState(st)
		return core.RunConfigTimedIn(st, c.Config, c.Workload)
	}
	rep, err := run(c.Config, c.Workload)
	return rep, obs.Phases{}, err
}

// estimate resolves an analytical cell through the closed-form twin. The
// twin takes the same inputs a simulation would — resolved config plus a
// workload definition — so a closure-valued RunFn has nothing to hand it
// and is rejected rather than silently simulated under an analytical
// label. Estimates still take a simulation slot and count as misses: the
// accounting invariant is "misses computed a result here", not "misses
// ran the event loop", and a slot held for ~20µs costs nothing.
func (r *Runner) estimate(ctx context.Context, c Cell) (stats.Report, obs.Phases, error) {
	if c.RunFn != nil {
		return stats.Report{}, obs.Phases{}, fmt.Errorf("batch: analytical mode cannot evaluate a custom RunFn closure; use a workload name or inline definition")
	}
	w := config.Workload{}
	if c.WorkloadDef != nil {
		w = *c.WorkloadDef
	} else {
		var ok bool
		if w, ok = config.WorkloadByName(c.Workload); !ok {
			return stats.Report{}, obs.Phases{}, fmt.Errorf("batch: analytical mode: unknown workload %q (custom runners are DES-only)", c.Workload)
		}
	}
	if err := r.acquire(ctx); err != nil {
		return stats.Report{}, obs.Phases{}, err
	}
	defer r.release()
	r.misses.Add(1)
	mCacheMisses.Inc()
	return twin.Estimate(&c.Config, w), obs.Phases{}, nil
}
