package batch

import (
	"context"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/twin"
)

// TestAnalyticalCacheKeyDisjoint proves analytical and DES results can
// never collide in the content-addressed cache: the same cell hashes
// differently per execution mode, while the DES key is computed exactly
// as before the analytical mode existed (the salt block is only written
// for analytical cells).
func TestAnalyticalCacheKeyDisjoint(t *testing.T) {
	des := Cell{Config: config.Default(config.OhmBW, config.Planar), Workload: "lud"}
	ana := des
	ana.Exec = config.ExecAnalytical

	kDES, err := des.Key()
	if err != nil {
		t.Fatal(err)
	}
	kAna, err := ana.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kDES == kAna {
		t.Fatal("analytical cell key collides with the DES key for the same cell")
	}

	// The zero Exec value is DES: an explicitly-DES cell must hash
	// identically to a legacy cell that never heard of execution modes.
	explicit := des
	explicit.Exec = config.ExecDES
	if k, _ := explicit.Key(); k != kDES {
		t.Fatal("explicit ExecDES changed the cache key of a legacy cell")
	}

	// Analytical keys are deterministic across calls.
	if k2, _ := ana.Key(); k2 != kAna {
		t.Fatal("analytical key is not deterministic")
	}
}

func TestRunnerAnalyticalCellMatchesTwin(t *testing.T) {
	cfg := config.Default(config.OhmBase, config.Planar)
	w, ok := config.WorkloadByName("bfstopo")
	if !ok {
		t.Fatal("workload missing")
	}
	want := twin.Estimate(&cfg, w)

	r := &Runner{Workers: 2, Cache: NewMemCache()}
	cells := []Cell{{Config: cfg, Workload: "bfstopo", Exec: config.ExecAnalytical}}
	reps, err := r.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].Elapsed != want.Elapsed || reps[0].IPC != want.IPC {
		t.Fatalf("runner analytical report differs from twin.Estimate: %+v vs %+v", reps[0], want)
	}
	st := r.Stats()
	if st.Analytical != 1 {
		t.Fatalf("Stats.Analytical = %d, want 1", st.Analytical)
	}
	if st.Misses != 1 {
		t.Fatalf("Stats.Misses = %d, want 1", st.Misses)
	}

	// Second run is a cache hit, still counted as analytical work.
	if _, err := r.Run(cells); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.Hits != 1 {
		t.Fatalf("Stats.Hits = %d, want 1 (analytical results must be cacheable)", st.Hits)
	}
	if st.Analytical != 2 {
		t.Fatalf("Stats.Analytical = %d, want 2", st.Analytical)
	}
}

func TestAnalyticalExecutorCoercesCells(t *testing.T) {
	r := &Runner{Workers: 2, Cache: NewMemCache()}
	cfg := config.Default(config.Oracle, config.Planar)
	cells := []Cell{{Config: cfg, Workload: "lud"}} // authored as DES
	exec := AnalyticalExecutor{r}
	reps, err := exec.RunContext(context.Background(), cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := config.WorkloadByName("lud")
	want := twin.Estimate(&cfg, w)
	if len(reps) != 1 || reps[0].Elapsed != want.Elapsed {
		t.Fatalf("coerced cell did not run analytically: %+v vs %+v", reps[0], want)
	}
	if st := r.Stats(); st.Analytical != 1 {
		t.Fatalf("Stats.Analytical = %d, want 1", st.Analytical)
	}
}

func TestAnalyticalRejectsClosures(t *testing.T) {
	stub := func(config.Config, string) (stats.Report, error) { return stats.Report{}, nil }
	r := &Runner{Workers: 1, Cache: NewMemCache()}
	cell := Cell{Config: config.Default(config.Oracle, config.Planar), Workload: "custom", RunFn: stub, Salt: "s"}

	exec := AnalyticalExecutor{r}
	if _, err := exec.RunContext(context.Background(), []Cell{cell}, nil); err == nil ||
		!strings.Contains(err.Error(), "RunFn closure") {
		t.Fatalf("AnalyticalExecutor accepted a closure cell: %v", err)
	}

	cell.Exec = config.ExecAnalytical
	if _, err := r.Run([]Cell{cell}); err == nil || !strings.Contains(err.Error(), "RunFn closure") {
		t.Fatalf("Runner accepted an analytical closure cell: %v", err)
	}
}

func TestAnalyticalUnknownWorkloadErrors(t *testing.T) {
	r := &Runner{Workers: 1, Cache: NewMemCache()}
	cell := Cell{Config: config.Default(config.Oracle, config.Planar), Workload: "no-such-kernel", Exec: config.ExecAnalytical}
	if _, err := r.Run([]Cell{cell}); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("want unknown-workload error, got %v", err)
	}
}

// TestAnalyticalInlineWorkloadDef checks analytical cells accept inline
// workload definitions (the ohmserve custom-workload path) without
// consulting the Table II registry.
func TestAnalyticalInlineWorkloadDef(t *testing.T) {
	def := config.Workload{Name: "inline", APKI: 50, ReadRatio: 0.8, FootprintScale: 1.5, HotSkew: 0.9}
	cfg := config.Default(config.OhmWOM, config.Planar)
	r := &Runner{Workers: 1, Cache: NewMemCache()}
	reps, err := r.Run([]Cell{{Config: cfg, Workload: "inline", WorkloadDef: &def, Exec: config.ExecAnalytical}})
	if err != nil {
		t.Fatal(err)
	}
	want := twin.Estimate(&cfg, def)
	if reps[0].Elapsed != want.Elapsed {
		t.Fatalf("inline def report %v != twin estimate %v", reps[0].Elapsed, want.Elapsed)
	}
}

// TestEstimateCost pins the dry-run cost model's mode split.
func TestEstimateCost(t *testing.T) {
	cfg := config.Default(config.Oracle, config.Planar)
	cells := []Cell{
		{Config: cfg, Workload: "lud"},
		{Config: cfg, Workload: "sssp"},
		{Config: cfg, Workload: "lud", Exec: config.ExecAnalytical},
	}
	c := EstimateCost(cells)
	if c.Cells != 3 || c.DESCells != 2 || c.AnalyticalCells != 1 {
		t.Fatalf("EstimateCost split wrong: %+v", c)
	}
	if want := 2*DESCellCost + 1*AnalyticalCellCost; c.Estimated != want {
		t.Fatalf("Estimated = %v, want %v", c.Estimated, want)
	}
}
