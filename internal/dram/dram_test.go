package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/sim"
)

func dev() *Device { return New(config.DefaultDRAM()) }

func TestColdAccessPaysActivate(t *testing.T) {
	d := dev()
	cfg := config.DefaultDRAM()
	done := d.Access(0, 0, false)
	want := cfg.TRCD + cfg.TCL + cfg.BurstNs
	if done != want {
		t.Fatalf("cold access done at %s, want %s", done, want)
	}
	if d.RowMisses != 1 || d.RowHits != 0 {
		t.Fatalf("counters: hits=%d misses=%d", d.RowHits, d.RowMisses)
	}
}

func TestRowHitIsFaster(t *testing.T) {
	d := dev()
	cfg := config.DefaultDRAM()
	first := d.Access(0, 0, false)
	second := d.Access(first, 128, false) // same row
	if second-first != cfg.TCL+cfg.BurstNs {
		t.Fatalf("row hit latency = %s, want %s", second-first, cfg.TCL+cfg.BurstNs)
	}
	if d.RowHits != 1 {
		t.Fatalf("row hits = %d, want 1", d.RowHits)
	}
}

func TestRowConflictPaysPrecharge(t *testing.T) {
	d := dev()
	cfg := config.DefaultDRAM()
	nBanks := uint64(cfg.Banks)
	rowStride := uint64(cfg.RowBytes) * nBanks // same bank, next row
	first := d.Access(0, 0, false)
	second := d.Access(first, rowStride, false)
	lat := second - first
	// Conflict must include tRP; it is strictly slower than a closed-row miss.
	if lat < cfg.TRP+cfg.TRCD+cfg.TCL+cfg.BurstNs {
		t.Fatalf("conflict latency %s too small", lat)
	}
	if d.RowConfl != 1 {
		t.Fatalf("row conflicts = %d, want 1", d.RowConfl)
	}
}

func TestBankParallelism(t *testing.T) {
	d := dev()
	cfg := config.DefaultDRAM()
	// Two accesses to different banks issued at t=0 overlap except for tRRD
	// between their activates.
	d0 := d.Access(0, 0, false)
	d1 := d.Access(0, uint64(cfg.RowBytes), false) // next bank
	if d1 >= d0+cfg.TRCD+cfg.TCL {
		t.Fatalf("different banks serialized: d0=%s d1=%s", d0, d1)
	}
	// Same bank accesses serialize fully.
	d2 := d.Access(0, 128, false) // bank 0 again, same row, but bank busy
	if d2 < d0 {
		t.Fatalf("same-bank access finished before bank free: %s < %s", d2, d0)
	}
}

func TestTRRDEnforced(t *testing.T) {
	cfg := config.DefaultDRAM()
	d := New(cfg)
	// Back-to-back activates on different banks must be spaced by tRRD.
	d.Access(0, 0, false)
	done1 := d.Access(0, uint64(cfg.RowBytes), false)
	base := cfg.TRCD + cfg.TCL + cfg.BurstNs
	if done1 < base+cfg.TRRD {
		t.Fatalf("second activate not delayed by tRRD: done=%s want>=%s", done1, base+cfg.TRRD)
	}
}

func TestPreset(t *testing.T) {
	d := dev()
	cfg := config.DefaultDRAM()
	ready := d.Preset(0, 0)
	if ready != cfg.TRCD {
		t.Fatalf("cold preset ready at %s, want tRCD=%s", ready, cfg.TRCD)
	}
	if !d.RowOpen(0) {
		t.Fatal("preset must leave row open")
	}
	// Presetting an open row is free.
	if again := d.Preset(ready, 64); again != ready {
		t.Fatalf("open-row preset cost %s", again-ready)
	}
	// After preset, an access is a row hit.
	done := d.Access(ready, 0, false)
	if done-ready != cfg.TCL+cfg.BurstNs {
		t.Fatalf("post-preset access latency %s, want row hit", done-ready)
	}
}

func TestPresetConflict(t *testing.T) {
	d := dev()
	cfg := config.DefaultDRAM()
	d.Preset(0, 0)
	rowStride := uint64(cfg.RowBytes) * uint64(cfg.Banks)
	ready := d.Preset(cfg.TRCD, rowStride)
	if ready < cfg.TRCD+cfg.TRP+cfg.TRCD {
		t.Fatalf("conflicting preset too fast: %s", ready)
	}
	if !d.RowOpen(rowStride) || d.RowOpen(0) {
		t.Fatal("preset must switch the open row")
	}
}

func TestReadWriteCounters(t *testing.T) {
	d := dev()
	d.Access(0, 0, false)
	d.Access(0, 64, true)
	d.Access(0, 128, true)
	if d.Reads != 1 || d.Writes != 2 {
		t.Fatalf("reads=%d writes=%d", d.Reads, d.Writes)
	}
}

func TestRowHitRate(t *testing.T) {
	d := dev()
	if d.RowHitRate() != 0 {
		t.Fatal("untouched device must report 0 hit rate")
	}
	at := d.Access(0, 0, false)
	at = d.Access(at, 128, false)
	at = d.Access(at, 256, false)
	_ = at
	if got := d.RowHitRate(); got < 0.6 || got > 0.7 {
		t.Fatalf("hit rate = %v, want 2/3", got)
	}
}

func TestBankBusyUntil(t *testing.T) {
	d := dev()
	done := d.Access(0, 0, false)
	if d.BankBusyUntil(0) != done {
		t.Fatalf("BankBusyUntil = %s, want %s", d.BankBusyUntil(0), done)
	}
}

func TestStringNonEmpty(t *testing.T) {
	if dev().String() == "" {
		t.Fatal("String must render")
	}
}

// Property: completion times at a single bank are monotone in issue order,
// and every access takes at least tCL + burst.
func TestTimingMonotoneProperty(t *testing.T) {
	cfg := config.DefaultDRAM()
	f := func(offsets []uint16) bool {
		d := New(cfg)
		var at, lastDone sim.Time
		for _, o := range offsets {
			addr := uint64(o) % uint64(cfg.RowBytes) // keep within bank 0
			done := d.Access(at, addr, false)
			if done < at+cfg.TCL+cfg.BurstNs {
				return false
			}
			if done < lastDone {
				return false
			}
			lastDone = done
			at = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
