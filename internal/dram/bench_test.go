package dram

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

// BenchmarkDeviceAccess streams line reads through the bank/row model —
// the per-request device cost under every memory controller.
func BenchmarkDeviceAccess(b *testing.B) {
	d := New(config.DefaultDRAM())
	at := sim.Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at += 100
		d.Access(at, uint64(i%4096)*128, i%4 == 0)
	}
}
