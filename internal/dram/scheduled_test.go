package dram

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

func TestAccessScheduledDoesNotBlockDemand(t *testing.T) {
	d := dev()
	// A migration write scheduled far in the future...
	future := 10 * sim.Microsecond
	d.AccessScheduled(future, 0, true)
	// ...must not delay a demand access to the same bank issued now.
	done := d.Access(0, 0, false)
	if done >= future {
		t.Fatalf("demand access blocked until %s by a future scheduled op", done)
	}
}

func TestAccessScheduledExactWindow(t *testing.T) {
	cfg := config.DefaultDRAM()
	d := New(cfg)
	done := d.AccessScheduled(1000, 0, false)
	want := sim.Time(1000) + cfg.TRCD + cfg.TCL + cfg.BurstNs
	if done != want {
		t.Fatalf("scheduled cold access done %s, want %s", done, want)
	}
	if d.Reads != 1 {
		t.Fatal("scheduled access not counted")
	}
}

func TestAccessScheduledUpdatesRowState(t *testing.T) {
	d := dev()
	d.AccessScheduled(0, 0, true)
	if !d.RowOpen(0) {
		t.Fatal("scheduled access must open the row")
	}
	// The following demand access to the same row is a row hit.
	cfg := config.DefaultDRAM()
	done := d.Access(cfg.TRCD+cfg.TCL+cfg.BurstNs, 128, false)
	if done-(cfg.TRCD+cfg.TCL+cfg.BurstNs) != cfg.TCL+cfg.BurstNs {
		t.Fatalf("post-scheduled access not a row hit: %s", done)
	}
}

func TestPresetDoesNotQueue(t *testing.T) {
	d := dev()
	// Occupy the bank far into the future, then preset: the preset is a
	// controller-arbitrated operation and books its own window.
	d.AccessScheduled(10*sim.Microsecond, 0, true)
	ready := d.Preset(0, uint64(config.DefaultDRAM().RowBytes)*uint64(config.DefaultDRAM().Banks))
	if ready > sim.Microsecond {
		t.Fatalf("preset queued until %s", ready)
	}
}

func TestRefreshDelaysAccesses(t *testing.T) {
	cfg := config.DefaultDRAM()
	cfg.RefreshEnable = true
	d := New(cfg)
	// An access inside the refresh window waits for it; afterwards the row
	// is closed (refresh precharges all banks).
	done := d.Access(0, 0, false) // t=0 is inside the first tRFC window
	floor := cfg.RefreshDuration + cfg.TRCD + cfg.TCL + cfg.BurstNs
	if done < floor {
		t.Fatalf("refresh-window access done %s, want >= %s", done, floor)
	}
	if d.Refreshes == 0 {
		t.Fatal("refresh not counted")
	}
	// An access between refresh windows proceeds normally.
	mid := cfg.RefreshInterval / 2
	d2 := New(cfg)
	done2 := d2.Access(mid, 0, false)
	if done2-mid != cfg.TRCD+cfg.TCL+cfg.BurstNs {
		t.Fatalf("mid-interval access latency %s", done2-mid)
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	d := dev()
	d.Access(0, 0, false)
	if d.Refreshes != 0 {
		t.Fatal("refresh fired while disabled")
	}
}
