// Package dram models a DRAM memory device at bank / row-buffer granularity
// with the Table I timing parameters (tRCD, tRP, tCL, tRRD). The model is
// first-order but captures the effects the paper's design depends on: row
// hits vs. conflicts, bank-level parallelism, and the bank-state presetting
// (precharge + activate) the memory controller performs before issuing a
// SWAP-CMD (Section V-A, Figure 11).
//
// Banks are gap-filled resources: a migration operation scheduled for a
// future arbitrated instant occupies the bank only for its own window, so
// demand accesses use the idle time in between — which is what the paper's
// conflict-detection mechanism achieves in hardware.
package dram

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
)

// bank tracks one bank's row-buffer state and occupancy.
type bank struct {
	openRow int64 // -1 when precharged (no open row)
	res     *sim.GapResource
}

// Device is one DRAM device on the memory channel.
type Device struct {
	cfg          config.DRAMConfig
	banks        []bank
	lastActivate sim.Time

	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64 // closed-row activations
	RowConfl  uint64 // conflicting-row precharge+activate
	Refreshes uint64 // accesses delayed by a refresh window
}

// New builds a device from the DRAM configuration.
func New(cfg config.DRAMConfig) *Device {
	return NewIn(nil, nil, cfg)
}

func bankName(_ string, i int) string { return fmt.Sprintf("bank%d", i) }

// NewIn is New rebuilding into a recycled device: the bank slice keeps its
// capacity and the per-bank gap resources come from pools. Both re and
// pools may be nil (New is NewIn(nil, nil, cfg)), so fresh and pooled
// construction share one code path.
func NewIn(re *Device, pools *sim.Pools, cfg config.DRAMConfig) *Device {
	if re == nil {
		re = &Device{}
	}
	banks := re.banks
	if cap(banks) < cfg.Banks {
		banks = make([]bank, cfg.Banks)
	} else {
		banks = banks[:cfg.Banks]
	}
	*re = Device{cfg: cfg, banks: banks, lastActivate: -cfg.TRRD}
	for i := range banks {
		banks[i].openRow = -1
		banks[i].res = pools.GapResource(pools.Name("bank", i, bankName))
	}
	return re
}

// decode splits a byte address into bank and row. Consecutive rows
// interleave across banks so streaming accesses exploit bank parallelism,
// matching GDDR-style address mapping.
func (d *Device) decode(addr uint64) (bankIdx int, row int64) {
	rowAddr := addr / uint64(d.cfg.RowBytes)
	return int(rowAddr % uint64(len(d.banks))), int64(rowAddr / uint64(len(d.banks)))
}

// latency computes the access latency from the bank's current row state and
// updates row-state counters.
func (d *Device) latency(b *bank, row int64, at sim.Time) sim.Time {
	switch {
	case b.openRow == row:
		d.RowHits++
		return d.cfg.TCL
	case b.openRow == -1:
		d.RowMisses++
		return d.activateDelay(at) + d.cfg.TRCD + d.cfg.TCL
	default:
		d.RowConfl++
		return d.cfg.TRP + d.activateDelay(at+d.cfg.TRP) + d.cfg.TRCD + d.cfg.TCL
	}
}

// refreshDelay returns how long an access arriving at time at must wait if
// it lands inside an all-bank refresh window (tRFC every tREFI). The
// refresh also closes the row.
func (d *Device) refreshDelay(b *bank, at sim.Time) sim.Time {
	if !d.cfg.RefreshEnable || d.cfg.RefreshInterval <= 0 {
		return 0
	}
	phase := at % d.cfg.RefreshInterval
	if phase < d.cfg.RefreshDuration {
		b.openRow = -1 // refresh precharges all banks
		d.Refreshes++
		return d.cfg.RefreshDuration - phase
	}
	return 0
}

// Access performs a line read or write whose command arrives at time at.
// It returns when the data burst completes on the device pins. Channel
// occupancy is accounted by the caller (the channel model), not here.
func (d *Device) Access(at sim.Time, addr uint64, write bool) (done sim.Time) {
	bi, row := d.decode(addr)
	b := &d.banks[bi]
	at += d.refreshDelay(b, at)
	lat := d.latency(b, row, at)
	if b.openRow != row {
		d.lastActivate = at + lat - d.cfg.TCL
	}
	b.openRow = row
	_, done = b.res.Reserve(at, lat+d.cfg.BurstNs)
	if write {
		d.Writes++
	} else {
		d.Reads++
	}
	return done
}

// AccessScheduled performs a line access whose start instant was already
// arbitrated (migration operations granted by the conflict-detection
// mechanism): it books exactly its own window and never queues.
func (d *Device) AccessScheduled(at sim.Time, addr uint64, write bool) (done sim.Time) {
	bi, row := d.decode(addr)
	b := &d.banks[bi]
	lat := d.latency(b, row, at)
	b.openRow = row
	_, done = b.res.ReserveAt(at, lat+d.cfg.BurstNs)
	if write {
		d.Writes++
	} else {
		d.Reads++
	}
	return done
}

// activateDelay enforces tRRD between successive activates device-wide.
// Activates arrive out of order (scheduled migration operations book future
// instants), so the delay is capped at one tRRD: a future activate must not
// poison the whole device's frontier.
func (d *Device) activateDelay(at sim.Time) sim.Time {
	earliest := d.lastActivate + d.cfg.TRRD
	if at >= earliest {
		return 0
	}
	delay := earliest - at
	if delay > d.cfg.TRRD {
		delay = d.cfg.TRRD
	}
	return delay
}

// Preset performs the precharge+activate sequence the memory controller
// issues to bring addr's bank to a stable activated state before handing the
// bank to the XPoint controller's DDR sequence generator (Figure 11, step 1).
// It returns when the bank is stable. If the row is already open this is
// free.
func (d *Device) Preset(at sim.Time, addr uint64) (ready sim.Time) {
	bi, row := d.decode(addr)
	b := &d.banks[bi]
	if b.openRow == row {
		return at
	}
	var lat sim.Time
	if b.openRow == -1 {
		lat = d.activateDelay(at) + d.cfg.TRCD
	} else {
		lat = d.cfg.TRP + d.activateDelay(at+d.cfg.TRP) + d.cfg.TRCD
	}
	d.lastActivate = at + lat
	b.openRow = row
	_, ready = b.res.ReserveAt(at, lat)
	return ready
}

// RowOpen reports whether addr's row is currently open in its bank — the
// bank-state knowledge the memory controller keeps (Section IV-B: "the
// memory controller records the states of all DRAM banks").
func (d *Device) RowOpen(addr uint64) bool {
	bi, row := d.decode(addr)
	return d.banks[bi].openRow == row
}

// BankBusyUntil exposes a bank's busy frontier for conflict detection.
func (d *Device) BankBusyUntil(addr uint64) sim.Time {
	bi, _ := d.decode(addr)
	return d.banks[bi].res.FreeAt()
}

// Banks returns the bank count.
func (d *Device) Banks() int { return len(d.banks) }

// RowHitRate returns rowHits / totalAccesses.
func (d *Device) RowHitRate() float64 {
	total := d.RowHits + d.RowMisses + d.RowConfl
	if total == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(total)
}

// String summarises counters for diagnostics.
func (d *Device) String() string {
	return fmt.Sprintf("dram{r=%d w=%d hit=%.2f}", d.Reads, d.Writes, d.RowHitRate())
}
