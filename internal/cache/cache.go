// Package cache implements the set-associative caches of the baseline GPU
// (per-SM L1D and the shared L2, Figure 2). The model is functional +
// timing-annotated: lookups report hit/miss and evicted dirty victims; the
// GPU model charges the configured latencies and forwards misses down the
// hierarchy.
package cache

import "fmt"

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// Cache is a blocking set-associative write-back cache with LRU replacement.
// Addresses are byte addresses; the cache operates on aligned lines.
type Cache struct {
	name      string
	lineBytes int
	sets      int
	ways      int
	lines     []line // sets*ways, row-major by set
	stamp     uint64

	Hits   uint64
	Misses uint64
	// Evictions counts dirty write-backs produced by fills.
	Evictions uint64
}

// New builds a cache of size bytes with the given associativity and line
// size. Size must divide evenly into sets of full associativity.
func New(name string, sizeBytes, ways, lineBytes int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cache %s: non-positive geometry (%d/%d/%d)", name, sizeBytes, ways, lineBytes)
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", name, lineBytes)
	}
	nLines := sizeBytes / lineBytes
	if nLines == 0 || nLines%ways != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible into %d ways", name, nLines, ways)
	}
	// Set counts need not be powers of two: indexing is modulo, which is
	// what real non-power-of-two LLCs (e.g. 6 MB shared L2) do.
	sets := nLines / ways
	return &Cache{
		name:      name,
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		lines:     make([]line, nLines),
	}, nil
}

// MustNew is New that panics; used for configurations already validated by
// config.Validate.
func MustNew(name string, sizeBytes, ways, lineBytes int) *Cache {
	c, err := New(name, sizeBytes, ways, lineBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the diagnostic name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr / uint64(c.lineBytes)
	return int(lineAddr % uint64(c.sets)), lineAddr / uint64(c.sets)
}

// Result describes the outcome of an access.
type Result struct {
	Hit bool
	// Writeback holds the byte address of a dirty victim that must be
	// written to the next level; WritebackValid reports whether one exists.
	Writeback      uint64
	WritebackValid bool
}

// Access performs a read (write=false) or write (write=true) of the line
// containing addr, filling on miss. Dirty victims are reported, not
// silently dropped — the caller owns the write-back traffic.
func (c *Cache) Access(addr uint64, write bool) Result {
	set, tag := c.index(addr)
	base := set * c.ways
	c.stamp++

	// Hit path.
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == tag {
			l.lru = c.stamp
			if write {
				l.dirty = true
			}
			c.Hits++
			return Result{Hit: true}
		}
	}

	// Miss: choose victim = invalid way or LRU.
	c.Misses++
	victim := base
	var oldest uint64 = ^uint64(0)
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if !l.valid {
			victim = base + i
			oldest = 0
			break
		}
		if l.lru < oldest {
			oldest = l.lru
			victim = base + i
		}
	}

	var res Result
	v := &c.lines[victim]
	if v.valid && v.dirty {
		res.WritebackValid = true
		res.Writeback = c.victimAddr(set, v.tag)
		c.Evictions++
	}
	*v = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return res
}

// Probe reports whether addr currently hits, without touching LRU state or
// counters. Used by tests and by the two-level controller's tag check model.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr if present, reporting whether it
// was dirty (the caller must then write it back).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == tag {
			d := l.dirty
			*l = line{}
			return true, d
		}
	}
	return false, false
}

// victimAddr reconstructs a victim's byte address from set and tag.
func (c *Cache) victimAddr(set int, tag uint64) uint64 {
	lineAddr := tag*uint64(c.sets) + uint64(set)
	return lineAddr * uint64(c.lineBytes)
}

// HitRate returns hits/(hits+misses), or 0 when untouched.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.stamp = 0
	c.Hits, c.Misses, c.Evictions = 0, 0, 0
}
