// Package cache implements the set-associative caches of the baseline GPU
// (per-SM L1D and the shared L2, Figure 2). The model is functional +
// timing-annotated: lookups report hit/miss and evicted dirty victims; the
// GPU model charges the configured latencies and forwards misses down the
// hierarchy.
package cache

import "fmt"

// flags bits.
const (
	flagValid uint8 = 1 << iota
	flagDirty
)

// Cache is a blocking set-associative write-back cache with LRU replacement.
// Addresses are byte addresses; the cache operates on aligned lines.
type Cache struct {
	name      string
	lineBytes int
	sets      int
	ways      int
	stamp     uint64

	// Per-line bookkeeping as parallel arrays (sets*ways, row-major by
	// set): the hit path scans only tags and flags, so splitting the old
	// 32-byte line struct keeps the scan inside one or two cache lines
	// per set. flags packs validBit|dirtyBit.
	tags  []uint64
	flags []uint8
	lru   []uint64 // last-touch stamp; larger = more recent

	// Index fast path: line size is always a power of two, so the line
	// split is a shift; when the set count is also a power of two the
	// set/tag split is a mask+shift instead of two integer divisions per
	// access. (Non-power-of-two set counts — the scaled 6MB L2 — keep the
	// modulo path; both compute identical indices.)
	lineShift uint
	setShift  uint
	setMask   uint64
	setsPow2  bool

	Hits   uint64
	Misses uint64
	// Evictions counts dirty write-backs produced by fills.
	Evictions uint64
}

// New builds a cache of size bytes with the given associativity and line
// size. Size must divide evenly into sets of full associativity.
func New(name string, sizeBytes, ways, lineBytes int) (*Cache, error) {
	return NewIn(nil, name, sizeBytes, ways, lineBytes)
}

// NewIn is New rebuilding into a recycled cache: re's line arrays are kept
// when their capacity covers the new geometry (cleared, so the rebuilt
// cache is observationally identical to a fresh one) and the struct itself
// is reinitialized in place. re == nil allocates fresh — New is exactly
// NewIn(nil, ...), so pooled and fresh construction share one code path.
func NewIn(re *Cache, name string, sizeBytes, ways, lineBytes int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cache %s: non-positive geometry (%d/%d/%d)", name, sizeBytes, ways, lineBytes)
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", name, lineBytes)
	}
	nLines := sizeBytes / lineBytes
	if nLines == 0 || nLines%ways != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible into %d ways", name, nLines, ways)
	}
	// Set counts need not be powers of two: indexing is modulo, which is
	// what real non-power-of-two LLCs (e.g. 6 MB shared L2) do.
	sets := nLines / ways
	if re == nil {
		re = &Cache{}
	}
	c := re
	*c = Cache{
		name:      name,
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		tags:      reuseCleared(c.tags, nLines),
		flags:     reuseCleared(c.flags, nLines),
		lru:       reuseCleared(c.lru, nLines),
	}
	for 1<<c.lineShift < lineBytes {
		c.lineShift++
	}
	if sets&(sets-1) == 0 {
		c.setsPow2 = true
		c.setMask = uint64(sets - 1)
		for 1<<c.setShift < sets {
			c.setShift++
		}
	}
	return c, nil
}

// reuseCleared returns a zeroed slice of length n, reusing s's backing
// array when it is large enough.
func reuseCleared[T uint64 | uint8](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// MustNew is New that panics; used for configurations already validated by
// config.Validate.
func MustNew(name string, sizeBytes, ways, lineBytes int) *Cache {
	c, err := New(name, sizeBytes, ways, lineBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the diagnostic name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr >> c.lineShift
	if c.setsPow2 {
		return int(lineAddr & c.setMask), lineAddr >> c.setShift
	}
	return int(lineAddr % uint64(c.sets)), lineAddr / uint64(c.sets)
}

// Result describes the outcome of an access.
type Result struct {
	Hit bool
	// Writeback holds the byte address of a dirty victim that must be
	// written to the next level; WritebackValid reports whether one exists.
	Writeback      uint64
	WritebackValid bool
}

// Access performs a read (write=false) or write (write=true) of the line
// containing addr, filling on miss. Dirty victims are reported, not
// silently dropped — the caller owns the write-back traffic.
func (c *Cache) Access(addr uint64, write bool) Result {
	set, tag := c.index(addr)
	base := set * c.ways
	c.stamp++

	// Hit path.
	for i := base; i < base+c.ways; i++ {
		if c.flags[i]&flagValid != 0 && c.tags[i] == tag {
			c.lru[i] = c.stamp
			if write {
				c.flags[i] |= flagDirty
			}
			c.Hits++
			return Result{Hit: true}
		}
	}

	// Miss: choose victim = invalid way or LRU.
	c.Misses++
	victim := base
	var oldest uint64 = ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.flags[i]&flagValid == 0 {
			victim = i
			oldest = 0
			break
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}

	var res Result
	if c.flags[victim]&(flagValid|flagDirty) == flagValid|flagDirty {
		res.WritebackValid = true
		res.Writeback = c.victimAddr(set, c.tags[victim])
		c.Evictions++
	}
	c.tags[victim] = tag
	f := uint8(flagValid)
	if write {
		f |= flagDirty
	}
	c.flags[victim] = f
	c.lru[victim] = c.stamp
	return res
}

// Probe reports whether addr currently hits, without touching LRU state or
// counters. Used by tests and by the two-level controller's tag check model.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.flags[i]&flagValid != 0 && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr if present, reporting whether it
// was dirty (the caller must then write it back).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.flags[i]&flagValid != 0 && c.tags[i] == tag {
			d := c.flags[i]&flagDirty != 0
			c.tags[i], c.flags[i], c.lru[i] = 0, 0, 0
			return true, d
		}
	}
	return false, false
}

// victimAddr reconstructs a victim's byte address from set and tag.
func (c *Cache) victimAddr(set int, tag uint64) uint64 {
	lineAddr := tag*uint64(c.sets) + uint64(set)
	return lineAddr * uint64(c.lineBytes)
}

// HitRate returns hits/(hits+misses), or 0 when untouched.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i], c.flags[i], c.lru[i] = 0, 0, 0
	}
	c.stamp = 0
	c.Hits, c.Misses, c.Evictions = 0, 0, 0
}
