package cache

import "testing"

// BenchmarkAccess measures the tag-array lookup on the pure hit path
// (power-of-two sets: shift/mask indexing) at L1-like geometry.
func BenchmarkAccess(b *testing.B) {
	c := MustNew("bench-l1", 3<<10, 6, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%24)*128, i%7 == 0)
	}
}

// BenchmarkAccessModulo covers the non-power-of-two set count (the scaled
// shared L2) that keeps the modulo indexing path.
func BenchmarkAccessModulo(b *testing.B) {
	c := MustNew("bench-l2", 384<<10, 8, 128) // 384 sets: not a power of two
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*128, false)
	}
}
