package cache

import (
	"testing"
	"testing/quick"
)

func mk(t *testing.T, size, ways, lineB int) *Cache {
	t.Helper()
	c, err := New("t", size, ways, lineB)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := []struct {
		size, ways, lineB int
	}{
		{0, 1, 64},
		{1024, 0, 64},
		{1024, 1, 0},
		{1024, 1, 96}, // non-pow2 line
		{1024, 3, 64}, // 16 lines not divisible by 3 ways
	}
	for _, b := range bad {
		if _, err := New("x", b.size, b.ways, b.lineB); err == nil {
			t.Errorf("New(%d,%d,%d) accepted bad geometry", b.size, b.ways, b.lineB)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on bad geometry")
		}
	}()
	MustNew("x", 0, 1, 64)
}

func TestGeometryAccessors(t *testing.T) {
	c := mk(t, 8192, 4, 64) // 128 lines, 32 sets
	if c.Sets() != 32 || c.Ways() != 4 || c.LineBytes() != 64 || c.Name() != "t" {
		t.Fatalf("geometry: sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineBytes())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mk(t, 1024, 2, 64)
	r := c.Access(0x100, false)
	if r.Hit {
		t.Fatal("cold access must miss")
	}
	r = c.Access(0x100, false)
	if !r.Hit {
		t.Fatal("second access must hit")
	}
	// Same line, different offset must also hit.
	if !c.Access(0x13F, false).Hit {
		t.Fatal("same-line access must hit")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mk(t, 2*64, 2, 64) // 1 set, 2 ways
	c.Access(0*64, false)
	c.Access(1*64, false)
	c.Access(0*64, false) // touch line 0, making line 1 LRU
	r := c.Access(2*64, false)
	if r.Hit {
		t.Fatal("third distinct line must miss in 2-way set")
	}
	if !c.Probe(0 * 64) {
		t.Fatal("MRU line was evicted instead of LRU")
	}
	if c.Probe(1 * 64) {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mk(t, 2*64, 2, 64) // 1 set, 2 ways
	c.Access(0*64, true)    // dirty
	c.Access(1*64, false)
	c.Access(1*64, false)
	r := c.Access(2*64, false) // evicts line 0 (LRU, dirty)
	if !r.WritebackValid {
		t.Fatal("evicting dirty line must produce a write-back")
	}
	if r.Writeback != 0 {
		t.Fatalf("writeback addr = %#x, want 0", r.Writeback)
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	// Clean evictions must not produce write-backs.
	r = c.Access(3*64, false)
	if r.WritebackValid {
		t.Fatal("clean eviction produced a write-back")
	}
}

func TestWritebackAddrRoundTrip(t *testing.T) {
	c := mk(t, 4096, 1, 64)     // direct-mapped, 64 sets
	addr := uint64(64 * 64 * 5) // tag 5, set 0
	c.Access(addr, true)
	// Conflict: same set, different tag.
	r := c.Access(addr+uint64(64*64), false)
	if !r.WritebackValid || r.Writeback != addr {
		t.Fatalf("writeback = %#x (valid=%v), want %#x", r.Writeback, r.WritebackValid, addr)
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := mk(t, 2*64, 2, 64)
	c.Access(0*64, false)
	c.Access(1*64, false)
	h, m := c.Hits, c.Misses
	for i := 0; i < 10; i++ {
		c.Probe(0 * 64) // must not refresh LRU or bump counters
	}
	if c.Hits != h || c.Misses != m {
		t.Fatal("Probe changed counters")
	}
	// Line 0 is still LRU despite the probes: it must be the victim.
	c.Access(1*64, false)
	c.Access(2*64, false)
	if c.Probe(0 * 64) {
		t.Fatal("Probe refreshed LRU state")
	}
}

func TestInvalidate(t *testing.T) {
	c := mk(t, 1024, 2, 64)
	c.Access(0x80, true)
	present, dirty := c.Invalidate(0x80)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Probe(0x80) {
		t.Fatal("line still present after Invalidate")
	}
	present, _ = c.Invalidate(0x80)
	if present {
		t.Fatal("Invalidate of absent line reported present")
	}
	c.Access(0x40, false)
	present, dirty = c.Invalidate(0x40)
	if !present || dirty {
		t.Fatalf("clean line Invalidate = (%v,%v), want (true,false)", present, dirty)
	}
}

func TestHitRateAndReset(t *testing.T) {
	c := mk(t, 1024, 2, 64)
	if c.HitRate() != 0 {
		t.Fatal("untouched cache must report 0 hit rate")
	}
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 || c.Probe(0) {
		t.Fatal("Reset incomplete")
	}
}

func TestSequentialLocality(t *testing.T) {
	// Streaming through 128B lines at 4B stride must hit 31/32 of the time.
	c := mk(t, 48<<10, 6, 128)
	hits, total := 0, 0
	for addr := uint64(0); addr < 16<<10; addr += 4 {
		if c.Access(addr, false).Hit {
			hits++
		}
		total++
	}
	rate := float64(hits) / float64(total)
	if rate < 0.95 {
		t.Fatalf("streaming hit rate = %v, want >= 0.95", rate)
	}
}

// Property: the cache never holds more distinct lines than its capacity, and
// an immediately repeated access always hits.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(addrs []uint32, writes []bool) bool {
		c := MustNew("p", 4096, 4, 64)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
			if !c.Access(uint64(a), false).Hit {
				return false // repeat must hit
			}
		}
		// Count resident lines via Probe over the touched set.
		resident := 0
		seen := map[uint64]bool{}
		for _, a := range addrs {
			la := uint64(a) / 64 * 64
			if !seen[la] {
				seen[la] = true
				if c.Probe(la) {
					resident++
				}
			}
		}
		return resident <= 4096/64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits+misses equals the number of accesses.
func TestCountersProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew("p", 2048, 2, 64)
		for _, a := range addrs {
			c.Access(uint64(a), false)
		}
		return c.Hits+c.Misses == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
