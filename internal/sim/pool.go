package sim

import "repro/internal/slab"

// Reset returns the engine to the zero state — time zero, empty queue,
// fresh sequence numbers — while keeping the arena, heap, and free-list
// capacity for the next run. Clearing the arena releases the Handler and
// closure references of any events that never fired, so a pooled engine
// does not pin a dead simulation's object graph.
func (e *Engine) Reset() {
	clear(e.arena)
	e.arena = e.arena[:0]
	e.heap = e.heap[:0]
	e.free = e.free[:0]
	e.now, e.seq, e.fired = 0, 0, 0
}

// Pools recycles the kernel's per-run occupancy trackers across simulation
// runs. Components that model channels, banks, and buses allocate dozens of
// GapResources and Resources per platform build; routing those through a
// Pools instance lets a pooled run state hand each component its previous
// incarnation — gap tables and all — reset to empty.
//
// A nil *Pools is valid everywhere and means "allocate fresh", so
// construction code takes a single path whether or not it is pooled.
type Pools struct {
	gap slab.Pool[GapResource]
	res slab.Pool[Resource]

	// names caches formatted per-index diagnostic names ("bank3",
	// "vc0-data1") per kind, so warm rebuilds reuse the interned string
	// instead of re-formatting. Name tables are append-only and survive
	// Reset: the strings are immutable and identical across runs.
	names map[string][]string
}

// Reset rewinds the pools for the next run. Objects handed out since the
// previous Reset become reusable; the caller must no longer touch them
// through old references once a new run starts (the core.RunState ownership
// discipline guarantees this).
func (p *Pools) Reset() {
	if p == nil {
		return
	}
	p.gap.Reset()
	p.res.Reset()
}

// Name returns the diagnostic name for index i of a kind, formatting with
// f on first use and serving the cached string afterwards. f must be a
// pure function of i — the cache assumes kind+index fully determines the
// name. A nil receiver formats directly, so fresh and pooled construction
// produce identical strings.
func (p *Pools) Name(kind string, i int, f func(kind string, i int) string) string {
	if p == nil {
		return f(kind, i)
	}
	tab := p.names[kind]
	for len(tab) <= i {
		tab = append(tab, f(kind, len(tab)))
	}
	if p.names == nil {
		p.names = make(map[string][]string, 8)
	}
	p.names[kind] = tab
	return tab[i]
}

// GapResource returns an empty gap-filling resource with the given
// diagnostic name, recycled when possible.
func (p *Pools) GapResource(name string) *GapResource {
	if p == nil {
		return NewGapResource(name)
	}
	r, recycled := p.gap.Get()
	if recycled {
		r.Reset()
	}
	r.name = name
	return r
}

// Resource returns an empty serially-occupied resource with the given
// diagnostic name, recycled when possible.
func (p *Pools) Resource(name string) *Resource {
	if p == nil {
		return NewResource(name)
	}
	r, _ := p.res.Get()
	r.Reset()
	r.name = name
	return r
}
