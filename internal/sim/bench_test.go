package sim

import "testing"

type benchHandler struct{ eng *Engine }

func (h *benchHandler) Handle(arg uint64) {
	h.eng.ScheduleID(h.eng.Now()+Time(1+arg%61), h, arg+1)
}

// BenchmarkEngineChurn is the kernel's steady-state schedule->pop cycle at
// a realistic queue population (one event per resident warp).
func BenchmarkEngineChurn(b *testing.B) {
	eng := NewEngine()
	h := &benchHandler{eng: eng}
	for i := 0; i < 128; i++ {
		eng.ScheduleID(Time(i), h, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkGapResourceFrontier is the common fast path: reservations past
// every remembered gap append at the frontier without scanning.
func BenchmarkGapResourceFrontier(b *testing.B) {
	r := NewGapResource("bench")
	at := Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += 7
		r.Reserve(at, 5)
	}
}

// BenchmarkGapResourceBackfill keeps live gaps around the request time so
// the first-fit scan actually runs (future bookings create the gaps).
func BenchmarkGapResourceBackfill(b *testing.B) {
	r := NewGapResource("bench")
	at := Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += 11
		if i%8 == 0 {
			r.ReserveAt(at+10000, 50) // future booking leaves a gap behind
		}
		r.Reserve(at, 3)
	}
}

// BenchmarkZipfSharedCDF draws from a generator over a pre-computed CDF —
// the per-warp cost after the CDF hoist in trace generation.
func BenchmarkZipfSharedCDF(b *testing.B) {
	cdf := ZipfCDF(1.0, 4096)
	z := NewZipfCDF(NewRng(1), cdf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
