package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{500, "500ps"},
		{Nanosecond, "1.000ns"},
		{1500, "1.500ns"},
		{Microsecond, "1.000us"},
		{Millisecond, "1.000ms"},
		{Second, "1.000s"},
		{-500, "-500ps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFreqToPeriod(t *testing.T) {
	cases := []struct {
		hz   float64
		want Time
	}{
		{1e9, 1000},  // 1 GHz -> 1 ns
		{1.2e9, 833}, // GPU core clock
		{30e9, 33},   // optical channel
		{15e9, 67},   // electrical channel
		{1e12, 1},    // 1 THz -> 1 ps
	}
	for _, c := range cases {
		if got := FreqToPeriod(c.hz); got != c.want {
			t.Errorf("FreqToPeriod(%v) = %d, want %d", c.hz, got, c.want)
		}
	}
}

func TestFreqToPeriodPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive frequency")
		}
	}()
	FreqToPeriod(0)
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %s, want 30ps", e.Now())
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested scheduling produced %v", hits)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(5, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	e.Schedule(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("RunUntil(20) fired %d events, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %s, want 20ps", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("idle RunUntil left clock at %s", e.Now())
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	e.RunFor(10)
	if e.Now() != 15 {
		t.Fatalf("RunFor: clock = %s, want 15ps", e.Now())
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine()
	for i := Time(1); i <= 100; i++ {
		e.Schedule(i, func() {})
	}
	e.Run()
	if e.Fired() != 100 {
		t.Fatalf("Fired = %d, want 100", e.Fired())
	}
}

func TestResourceFCFS(t *testing.T) {
	r := NewResource("chan")
	s1, e1 := r.Reserve(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first reservation [%d,%d), want [0,10)", s1, e1)
	}
	// Second request arrives at t=5 but must queue behind the first.
	s2, e2 := r.Reserve(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("queued reservation [%d,%d), want [10,20)", s2, e2)
	}
	// Third request arrives after the resource is idle.
	s3, e3 := r.Reserve(100, 10)
	if s3 != 100 || e3 != 110 {
		t.Fatalf("idle reservation [%d,%d), want [100,110)", s3, e3)
	}
	if r.Busy() != 30 {
		t.Fatalf("busy = %d, want 30", r.Busy())
	}
}

func TestResourceReserveAt(t *testing.T) {
	r := NewResource("bank")
	r.Reserve(0, 100)
	s, e := r.ReserveAt(50, 10) // overlapping window granted by arbiter
	if s != 50 || e != 60 {
		t.Fatalf("ReserveAt = [%d,%d), want [50,60)", s, e)
	}
	if r.FreeAt() != 100 {
		t.Fatalf("FreeAt = %d, want 100 (unchanged by interior window)", r.FreeAt())
	}
	_, e2 := r.ReserveAt(200, 10)
	if e2 != 210 || r.FreeAt() != 210 {
		t.Fatalf("ReserveAt beyond freeAt: end=%d freeAt=%d", e2, r.FreeAt())
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("u")
	r.Reserve(0, 50)
	if got := r.Utilization(100); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("utilization at zero elapsed = %v, want 0", got)
	}
	if got := r.Utilization(10); got != 1 {
		t.Fatalf("utilization clamps to 1, got %v", got)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("r")
	r.Reserve(0, 50)
	r.Reset()
	if r.Busy() != 0 || r.FreeAt() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: reservations never overlap and never start before requested.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(reqs []uint16) bool {
		r := NewResource("p")
		var lastEnd Time
		at := Time(0)
		for _, q := range reqs {
			dur := Time(q%1000) + 1
			at += Time(q % 7) // arrival times move forward
			s, e := r.Reserve(at, dur)
			if s < at || s < lastEnd || e != s+dur {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRngDeterminism(t *testing.T) {
	a, b := NewRng(42), NewRng(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRng(43)
	same := true
	a = NewRng(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRngIntnRange(t *testing.T) {
	r := NewRng(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRngIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRng(1).Intn(0)
}

func TestRngFloat64Range(t *testing.T) {
	r := NewRng(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRng(5)
	z := NewZipf(r, 1.0, 100)
	counts := make([]int, 100)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Index 0 must be drawn far more often than index 99 under skew 1.0.
	if counts[0] < 10*counts[99]+1 {
		t.Fatalf("zipf not skewed: head=%d tail=%d", counts[0], counts[99])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("zipf dropped draws: %d != %d", total, n)
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(NewRng(11), 0.8, 7)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 7 {
			t.Fatalf("zipf out of bounds: %d", v)
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=0")
		}
	}()
	NewZipf(NewRng(1), 1.0, 0)
}
