package sim

// GapResource is a serially-occupied resource that, unlike Resource, can
// backfill idle gaps. Event-driven components sometimes book a resource at
// a *future* instant (a read response scheduled for when the device will be
// ready); with a plain frontier, every request arriving in between would
// queue behind that future booking even though the resource is idle. A real
// channel scheduler fills the gap — GapResource models that by remembering
// a bounded list of recent idle windows and first-fitting new reservations
// into them.
type GapResource struct {
	name   string
	freeAt Time
	busy   Time
	gaps   []gapWindow // unordered, bounded by maxGaps
}

type gapWindow struct{ start, end Time }

// maxGaps bounds the remembered idle windows; old windows are evicted by
// replacing the smallest. 64 is plenty: gaps older than the current working
// window are never fillable again because request times move forward.
const maxGaps = 256

// NewGapResource names a gap-filling resource.
func NewGapResource(name string) *GapResource { return &GapResource{name: name} }

// Name returns the diagnostic name.
func (r *GapResource) Name() string { return r.name }

// FreeAt returns the frontier: the earliest time a reservation is
// guaranteed to fit without gap luck.
func (r *GapResource) FreeAt() Time { return r.freeAt }

// Busy returns accumulated occupancy.
func (r *GapResource) Busy() Time { return r.busy }

// Reserve books dur starting no earlier than at, preferring the earliest
// idle gap that fits, else appending at the frontier.
func (r *GapResource) Reserve(at, dur Time) (start, end Time) {
	// First-fit into the earliest suitable gap.
	best := -1
	var bestStart Time
	for i := range r.gaps {
		g := &r.gaps[i]
		s := at
		if g.start > s {
			s = g.start
		}
		if s+dur <= g.end {
			if best == -1 || s < bestStart {
				best = i
				bestStart = s
			}
		}
	}
	if best >= 0 {
		g := r.gaps[best]
		s := bestStart
		e := s + dur
		// Split the gap; drop empty remnants.
		repl := r.gaps[:0]
		for i, w := range r.gaps {
			if i == best {
				continue
			}
			repl = append(repl, w)
		}
		r.gaps = repl
		if g.start < s {
			r.addGap(g.start, s)
		}
		if e < g.end {
			r.addGap(e, g.end)
		}
		r.busy += dur
		return s, e
	}

	start = at
	if r.freeAt > start {
		start = r.freeAt
	}
	if start > r.freeAt {
		r.addGap(r.freeAt, start)
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	return start, end
}

// ReserveAt books exactly [at, at+dur) regardless of other occupancy (an
// externally arbitrated window, e.g. a migration operation granted by the
// conflict-detection logic). It never delays and never blocks earlier idle
// time; overlap with queued occupancy is the arbiter's responsibility.
func (r *GapResource) ReserveAt(at, dur Time) (start, end Time) {
	end = at + dur
	if end > r.freeAt {
		if at > r.freeAt {
			r.addGap(r.freeAt, at)
		}
		r.freeAt = end
	}
	r.busy += dur
	return at, end
}

// addGap records an idle window, evicting the smallest when full.
func (r *GapResource) addGap(start, end Time) {
	if end <= start {
		return
	}
	if len(r.gaps) < maxGaps {
		r.gaps = append(r.gaps, gapWindow{start, end})
		return
	}
	smallest, size := 0, r.gaps[0].end-r.gaps[0].start
	for i := 1; i < len(r.gaps); i++ {
		if s := r.gaps[i].end - r.gaps[i].start; s < size {
			smallest, size = i, s
		}
	}
	if end-start > size {
		r.gaps[smallest] = gapWindow{start, end}
	}
}

// Reset clears all state.
func (r *GapResource) Reset() {
	r.freeAt = 0
	r.busy = 0
	r.gaps = r.gaps[:0]
}

// Utilization returns busy/elapsed clamped to [0,1].
func (r *GapResource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
