package sim

import "math"

// GapResource is a serially-occupied resource that, unlike Resource, can
// backfill idle gaps. Event-driven components sometimes book a resource at
// a *future* instant (a read response scheduled for when the device will be
// ready); with a plain frontier, every request arriving in between would
// queue behind that future booking even though the resource is idle. A real
// channel scheduler fills the gap — GapResource models that by remembering
// a bounded list of recent idle windows and first-fitting new reservations
// into them.
//
// The gap table is stored as parallel slices (starts/ends/sizes) rather
// than a struct slice: the two O(maxGaps) scans — first-fit in Reserve and
// evict-smallest in addGap — each touch only the fields they test, halving
// the memory traffic of the hottest loops in the memory-channel model.
type GapResource struct {
	name   string
	freeAt Time
	busy   Time

	// The remembered idle windows, parallel by index, unordered, bounded
	// by maxGaps. sizes[i] caches ends[i]-starts[i] for the scans.
	starts []Time
	ends   []Time
	sizes  []Time

	// maxGapEnd is an upper bound on the latest gap end (it may go stale
	// high when that gap is consumed, never low). A reservation can only
	// fit a gap whose end reaches at+dur, so Reserve skips the first-fit
	// scan entirely when maxGapEnd rules every gap out — the common case
	// once the request stream has moved past the remembered idle windows.
	maxGapEnd Time

	// minGapSize is a lower bound on the smallest remembered gap while the
	// table is full (removals only raise the true minimum, so the bound
	// stays valid; insertions tighten it). addGap drops a new window
	// smaller than every remembered one without the O(maxGaps) eviction
	// scan, which such a window could never win.
	minGapSize Time

	// maxGapSize is an upper bound on the largest remembered gap (stale
	// high after that gap is consumed, never low). A reservation longer
	// than every gap cannot backfill, so Reserve skips the scan — the
	// common case on backlogged channels whose surviving gaps are slivers.
	maxGapSize Time
}

// maxGaps bounds the remembered idle windows; old windows are evicted by
// replacing the smallest. 64 is plenty: gaps older than the current working
// window are never fillable again because request times move forward.
const maxGaps = 256

// NewGapResource names a gap-filling resource.
func NewGapResource(name string) *GapResource { return &GapResource{name: name} }

// Name returns the diagnostic name.
func (r *GapResource) Name() string { return r.name }

// FreeAt returns the frontier: the earliest time a reservation is
// guaranteed to fit without gap luck.
func (r *GapResource) FreeAt() Time { return r.freeAt }

// Busy returns accumulated occupancy.
func (r *GapResource) Busy() Time { return r.busy }

// Reserve books dur starting no earlier than at, preferring the earliest
// idle gap that fits, else appending at the frontier.
func (r *GapResource) Reserve(at, dur Time) (start, end Time) {
	if at+dur > r.maxGapEnd || dur > r.maxGapSize {
		// No remembered gap can contain [at, at+dur): append at the
		// frontier without scanning.
		return r.reserveFrontier(at, dur)
	}

	// First-fit into the earliest suitable gap. A gap fits iff it is long
	// enough (size >= dur) and ends late enough (end >= at+dur); the
	// adjusted start is then max(at, start). Ties on the adjusted start
	// resolve to the earliest slice index (strict less below), so the scan
	// can stop at the first gap already open at `at`: its adjusted start
	// `at` is unbeatable.
	atDur := at + dur
	best := -1
	var bestStart Time
	for i := range r.ends {
		if r.ends[i] < atDur || r.sizes[i] < dur {
			continue
		}
		s := at
		if r.starts[i] > s {
			s = r.starts[i]
		}
		if best == -1 || s < bestStart {
			best = i
			bestStart = s
		}
		if s == at {
			break
		}
	}
	if best >= 0 {
		gStart, gEnd := r.starts[best], r.ends[best]
		s := bestStart
		e := s + dur
		r.removeGap(best)
		if gStart < s {
			r.addGap(gStart, s)
		}
		if e < gEnd {
			r.addGap(e, gEnd)
		}
		r.busy += dur
		return s, e
	}

	return r.reserveFrontier(at, dur)
}

// reserveFrontier appends an occupancy at the frontier, recording the idle
// window it skips over.
func (r *GapResource) reserveFrontier(at, dur Time) (start, end Time) {
	start = at
	if r.freeAt > start {
		start = r.freeAt
	}
	if start > r.freeAt {
		r.addGap(r.freeAt, start)
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	return start, end
}

// ReserveAt books exactly [at, at+dur) regardless of other occupancy (an
// externally arbitrated window, e.g. a migration operation granted by the
// conflict-detection logic). It never delays and never blocks earlier idle
// time; overlap with queued occupancy is the arbiter's responsibility.
func (r *GapResource) ReserveAt(at, dur Time) (start, end Time) {
	end = at + dur
	if end > r.freeAt {
		if at > r.freeAt {
			r.addGap(r.freeAt, at)
		}
		r.freeAt = end
	}
	r.busy += dur
	return at, end
}

// removeGap deletes index i, preserving slice order (the first-fit
// tie-break depends on it).
func (r *GapResource) removeGap(i int) {
	copy(r.starts[i:], r.starts[i+1:])
	copy(r.ends[i:], r.ends[i+1:])
	copy(r.sizes[i:], r.sizes[i+1:])
	n := len(r.starts) - 1
	r.starts = r.starts[:n]
	r.ends = r.ends[:n]
	r.sizes = r.sizes[:n]
}

// addGap records an idle window, evicting the smallest when full.
func (r *GapResource) addGap(start, end Time) {
	if end <= start {
		return
	}
	if end > r.maxGapEnd {
		r.maxGapEnd = end
	}
	newSize := end - start
	if newSize > r.maxGapSize {
		r.maxGapSize = newSize
	}
	if len(r.starts) < maxGaps {
		if r.starts == nil {
			// Size the table once: it reaches maxGaps quickly on any busy
			// resource, and incremental regrowth of three slices shows up
			// in cold-cell allocation counts.
			r.starts = make([]Time, 0, maxGaps)
			r.ends = make([]Time, 0, maxGaps)
			r.sizes = make([]Time, 0, maxGaps)
		}
		if len(r.starts) == 0 || newSize < r.minGapSize {
			r.minGapSize = newSize
		}
		r.starts = append(r.starts, start)
		r.ends = append(r.ends, end)
		r.sizes = append(r.sizes, newSize)
		return
	}
	if newSize <= r.minGapSize {
		// Smaller than (or tied with) every remembered gap: the strict
		// eviction comparison below could never pick it.
		return
	}
	// Full eviction scan over the cached sizes — a sequential int64 scan,
	// cheaper in practice than any pointer-chasing index structure. Track
	// the runner-up so the minimum bound stays exact afterwards.
	smallest, size := 0, r.sizes[0]
	second := Time(math.MaxInt64)
	for i := 1; i < len(r.sizes); i++ {
		if s := r.sizes[i]; s < size {
			smallest, size, second = i, s, size
		} else if s < second {
			second = s
		}
	}
	if newSize > size {
		r.starts[smallest] = start
		r.ends[smallest] = end
		r.sizes[smallest] = newSize
		// Exact new minimum: the runner-up or the inserted gap. Keeping the
		// bound exact lets the next undersized arrival drop without a scan.
		if newSize < second {
			second = newSize
		}
		r.minGapSize = second
	} else {
		r.minGapSize = size
	}
}

// gapCount reports the remembered idle windows (tests).
func (r *GapResource) gapCount() int { return len(r.starts) }

// gapAt returns window i as (start, end) (tests).
func (r *GapResource) gapAt(i int) (Time, Time) { return r.starts[i], r.ends[i] }

// Reset clears all state.
func (r *GapResource) Reset() {
	r.freeAt = 0
	r.busy = 0
	r.starts = r.starts[:0]
	r.ends = r.ends[:0]
	r.sizes = r.sizes[:0]
	r.maxGapEnd = 0
	r.minGapSize = 0
	r.maxGapSize = 0
}

// Utilization returns busy/elapsed clamped to [0,1].
func (r *GapResource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
