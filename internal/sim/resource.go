package sim

import "math"

// Resource models a serially-occupied shared resource such as an optical
// virtual channel, a DRAM bank data bus, or a DMA engine. Callers reserve an
// occupancy window; the resource tracks the earliest time a new occupancy
// can begin and accumulates total busy time for bandwidth accounting.
//
// Resource implements FCFS semantics: a reservation made at time t begins at
// max(t, freeAt) and pushes freeAt forward by the duration. This is the
// standard first-order queueing model used by memory-channel simulators.
type Resource struct {
	name   string
	freeAt Time
	busy   Time // accumulated occupied picoseconds
}

// NewResource names a resource; the name appears only in diagnostics.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the diagnostic name.
func (r *Resource) Name() string { return r.name }

// FreeAt returns the earliest time a new occupancy can start.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Busy returns the total occupied time so far.
func (r *Resource) Busy() Time { return r.busy }

// Reserve books the resource for dur starting no earlier than at, returning
// the start and end times of the granted window.
func (r *Resource) Reserve(at, dur Time) (start, end Time) {
	start = at
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	return start, end
}

// ReserveAt books the resource for [at, at+dur) unconditionally, moving
// freeAt forward if needed. Used when an external arbiter has already
// resolved conflicts (e.g. the photonic demultiplexer grants exclusivity).
func (r *Resource) ReserveAt(at, dur Time) (start, end Time) {
	end = at + dur
	if end > r.freeAt {
		r.freeAt = end
	}
	r.busy += dur
	return at, end
}

// Reset clears occupancy accounting (used between kernels).
func (r *Resource) Reset() {
	r.freeAt = 0
	r.busy = 0
}

// Utilization returns busy/elapsed in [0,1]; elapsed <= 0 yields 0.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Rng is a SplitMix64 pseudo-random generator. Every stochastic choice in
// the simulator draws from a seeded Rng so runs are reproducible; we do not
// use math/rand because its global state would couple unrelated components.
type Rng struct{ state uint64 }

// NewRng seeds a generator. Distinct components should use distinct seeds
// derived from the configuration seed (e.g. seed ^ componentID).
func NewRng(seed uint64) *Rng { return &Rng{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rng) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Zipf draws from a Zipf-like distribution over [0, n) with skew s > 0 using
// inverse-CDF on a harmonic approximation. Higher s concentrates mass on
// small indices; graph workloads (pagerank, sssp) use s≈0.8–1.2 to model hot
// vertices, which is what drives migration in the paper's planar mode.
type Zipf struct {
	n   int
	cdf []float64
	rng *Rng
}

// NewZipf precomputes the CDF; n must be positive.
func NewZipf(rng *Rng, s float64, n int) *Zipf {
	return NewZipfCDF(rng, ZipfCDF(s, n))
}

// ZipfCDF precomputes the CDF for skew s over [0, n). The CDF depends only
// on (s, n), so callers creating many generators over the same distribution
// (one per warp, say) should compute it once and share it via NewZipfCDF:
// the math.Pow loop dominates trace generation otherwise.
func ZipfCDF(s float64, n int) []float64 {
	if n <= 0 {
		panic("sim: ZipfCDF with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// NewZipfCDF builds a generator over a CDF from ZipfCDF. The CDF is shared,
// not copied; it is read-only to the generator.
func NewZipfCDF(rng *Rng, cdf []float64) *Zipf {
	if len(cdf) == 0 {
		panic("sim: NewZipfCDF with empty cdf")
	}
	return &Zipf{n: len(cdf), cdf: cdf, rng: rng}
}

// Next draws the next index.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
