package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestGapResourceFrontier(t *testing.T) {
	r := NewGapResource("g")
	s, e := r.Reserve(0, 10)
	if s != 0 || e != 10 {
		t.Fatalf("first reservation [%d,%d)", s, e)
	}
	s, e = r.Reserve(5, 10)
	if s != 10 || e != 20 {
		t.Fatalf("queued reservation [%d,%d), want [10,20)", s, e)
	}
	if r.FreeAt() != 20 || r.Busy() != 20 {
		t.Fatalf("frontier %d busy %d", r.FreeAt(), r.Busy())
	}
}

func TestGapResourceBackfill(t *testing.T) {
	r := NewGapResource("g")
	// A future booking leaves an idle gap behind it...
	s, _ := r.Reserve(1000, 50)
	if s != 1000 {
		t.Fatalf("future booking started at %d", s)
	}
	// ...which an earlier request must fill instead of queueing at 1050.
	s, e := r.Reserve(0, 100)
	if s != 0 || e != 100 {
		t.Fatalf("backfill got [%d,%d), want [0,100)", s, e)
	}
	// The remaining gap [100,1000) keeps absorbing fits.
	s, e = r.Reserve(200, 300)
	if s != 200 || e != 500 {
		t.Fatalf("second backfill [%d,%d), want [200,500)", s, e)
	}
	// An oversized request falls through to the frontier.
	s, _ = r.Reserve(0, 900)
	if s != 1050 {
		t.Fatalf("oversized request started at %d, want frontier 1050", s)
	}
}

func TestGapResourceEarliestGapWins(t *testing.T) {
	r := NewGapResource("g")
	r.Reserve(100, 10) // gap [0,100)
	r.Reserve(300, 10) // gap [110,300)
	s, _ := r.Reserve(0, 50)
	if s != 0 {
		t.Fatalf("should fill the earliest suitable gap, started at %d", s)
	}
}

func TestGapResourceReserveAt(t *testing.T) {
	r := NewGapResource("g")
	r.Reserve(0, 100)
	// Interior scheduled window: no frontier movement.
	s, e := r.ReserveAt(50, 10)
	if s != 50 || e != 60 || r.FreeAt() != 100 {
		t.Fatalf("interior ReserveAt [%d,%d) frontier %d", s, e, r.FreeAt())
	}
	// Future scheduled window extends the frontier and leaves a fillable gap.
	r.ReserveAt(500, 10)
	if r.FreeAt() != 510 {
		t.Fatalf("frontier %d, want 510", r.FreeAt())
	}
	s, _ = r.Reserve(100, 50)
	if s != 100 {
		t.Fatalf("gap before scheduled window not fillable: started %d", s)
	}
}

func TestGapResourceReset(t *testing.T) {
	r := NewGapResource("g")
	r.Reserve(100, 10)
	r.Reset()
	if r.FreeAt() != 0 || r.Busy() != 0 {
		t.Fatal("Reset incomplete")
	}
	if s, _ := r.Reserve(0, 5); s != 0 {
		t.Fatal("state leaked through Reset")
	}
}

func TestGapResourceUtilization(t *testing.T) {
	r := NewGapResource("g")
	r.Reserve(0, 50)
	if got := r.Utilization(100); got != 0.5 {
		t.Fatalf("utilization %v", got)
	}
	if r.Utilization(0) != 0 {
		t.Fatal("zero elapsed must yield 0")
	}
	if r.Utilization(10) != 1 {
		t.Fatal("must clamp to 1")
	}
}

// Property: Reserve windows never overlap each other, regardless of how
// they interleave with ReserveAt bookings.
func TestGapResourceNoOverlapProperty(t *testing.T) {
	type window struct{ s, e Time }
	f := func(ops []uint32) bool {
		r := NewGapResource("p")
		var reserved []window
		at := Time(0)
		for _, op := range ops {
			dur := Time(op%500) + 1
			if op%3 == 0 {
				// Scheduled booking at a (possibly future) instant.
				r.ReserveAt(at+Time(op%10000), dur)
				continue
			}
			s, e := r.Reserve(at, dur)
			if s < at || e != s+dur {
				return false
			}
			reserved = append(reserved, window{s, e})
			at += Time(op % 97)
		}
		sort.Slice(reserved, func(i, j int) bool { return reserved[i].s < reserved[j].s })
		for i := 1; i < len(reserved); i++ {
			if reserved[i].s < reserved[i-1].e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: total busy time equals the sum of requested durations.
func TestGapResourceBusyAccountingProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		r := NewGapResource("p")
		var want Time
		for i, d := range durs {
			dur := Time(d%1000) + 1
			want += dur
			if i%2 == 0 {
				r.Reserve(Time(i*13), dur)
			} else {
				r.ReserveAt(Time(i*29), dur)
			}
		}
		return r.Busy() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: under gap eviction pressure (many future bookings), Reserve
// still never returns a start before the request time.
func TestGapResourceEvictionPressureProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		r := NewGapResource("p")
		for i, s := range seeds {
			// Create far-flung scheduled windows to force gap eviction.
			r.ReserveAt(Time(s%1_000_000)+Time(i)*10_000, Time(s%50)+1)
		}
		at := Time(0)
		for i := 0; i < 100; i++ {
			s, e := r.Reserve(at, 100)
			if s < at || e != s+100 {
				return false
			}
			at = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
