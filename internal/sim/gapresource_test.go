package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestGapResourceFrontier(t *testing.T) {
	r := NewGapResource("g")
	s, e := r.Reserve(0, 10)
	if s != 0 || e != 10 {
		t.Fatalf("first reservation [%d,%d)", s, e)
	}
	s, e = r.Reserve(5, 10)
	if s != 10 || e != 20 {
		t.Fatalf("queued reservation [%d,%d), want [10,20)", s, e)
	}
	if r.FreeAt() != 20 || r.Busy() != 20 {
		t.Fatalf("frontier %d busy %d", r.FreeAt(), r.Busy())
	}
}

func TestGapResourceBackfill(t *testing.T) {
	r := NewGapResource("g")
	// A future booking leaves an idle gap behind it...
	s, _ := r.Reserve(1000, 50)
	if s != 1000 {
		t.Fatalf("future booking started at %d", s)
	}
	// ...which an earlier request must fill instead of queueing at 1050.
	s, e := r.Reserve(0, 100)
	if s != 0 || e != 100 {
		t.Fatalf("backfill got [%d,%d), want [0,100)", s, e)
	}
	// The remaining gap [100,1000) keeps absorbing fits.
	s, e = r.Reserve(200, 300)
	if s != 200 || e != 500 {
		t.Fatalf("second backfill [%d,%d), want [200,500)", s, e)
	}
	// An oversized request falls through to the frontier.
	s, _ = r.Reserve(0, 900)
	if s != 1050 {
		t.Fatalf("oversized request started at %d, want frontier 1050", s)
	}
}

func TestGapResourceEarliestGapWins(t *testing.T) {
	r := NewGapResource("g")
	r.Reserve(100, 10) // gap [0,100)
	r.Reserve(300, 10) // gap [110,300)
	s, _ := r.Reserve(0, 50)
	if s != 0 {
		t.Fatalf("should fill the earliest suitable gap, started at %d", s)
	}
}

func TestGapResourceReserveAt(t *testing.T) {
	r := NewGapResource("g")
	r.Reserve(0, 100)
	// Interior scheduled window: no frontier movement.
	s, e := r.ReserveAt(50, 10)
	if s != 50 || e != 60 || r.FreeAt() != 100 {
		t.Fatalf("interior ReserveAt [%d,%d) frontier %d", s, e, r.FreeAt())
	}
	// Future scheduled window extends the frontier and leaves a fillable gap.
	r.ReserveAt(500, 10)
	if r.FreeAt() != 510 {
		t.Fatalf("frontier %d, want 510", r.FreeAt())
	}
	s, _ = r.Reserve(100, 50)
	if s != 100 {
		t.Fatalf("gap before scheduled window not fillable: started %d", s)
	}
}

func TestGapResourceReset(t *testing.T) {
	r := NewGapResource("g")
	r.Reserve(100, 10)
	r.Reset()
	if r.FreeAt() != 0 || r.Busy() != 0 {
		t.Fatal("Reset incomplete")
	}
	if s, _ := r.Reserve(0, 5); s != 0 {
		t.Fatal("state leaked through Reset")
	}
}

func TestGapResourceUtilization(t *testing.T) {
	r := NewGapResource("g")
	r.Reserve(0, 50)
	if got := r.Utilization(100); got != 0.5 {
		t.Fatalf("utilization %v", got)
	}
	if r.Utilization(0) != 0 {
		t.Fatal("zero elapsed must yield 0")
	}
	if r.Utilization(10) != 1 {
		t.Fatal("must clamp to 1")
	}
}

// Property: Reserve windows never overlap each other, regardless of how
// they interleave with ReserveAt bookings.
func TestGapResourceNoOverlapProperty(t *testing.T) {
	type window struct{ s, e Time }
	f := func(ops []uint32) bool {
		r := NewGapResource("p")
		var reserved []window
		at := Time(0)
		for _, op := range ops {
			dur := Time(op%500) + 1
			if op%3 == 0 {
				// Scheduled booking at a (possibly future) instant.
				r.ReserveAt(at+Time(op%10000), dur)
				continue
			}
			s, e := r.Reserve(at, dur)
			if s < at || e != s+dur {
				return false
			}
			reserved = append(reserved, window{s, e})
			at += Time(op % 97)
		}
		sort.Slice(reserved, func(i, j int) bool { return reserved[i].s < reserved[j].s })
		for i := 1; i < len(reserved); i++ {
			if reserved[i].s < reserved[i-1].e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: total busy time equals the sum of requested durations.
func TestGapResourceBusyAccountingProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		r := NewGapResource("p")
		var want Time
		for i, d := range durs {
			dur := Time(d%1000) + 1
			want += dur
			if i%2 == 0 {
				r.Reserve(Time(i*13), dur)
			} else {
				r.ReserveAt(Time(i*29), dur)
			}
		}
		return r.Busy() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: under gap eviction pressure (many future bookings), Reserve
// still never returns a start before the request time.
func TestGapResourceEvictionPressureProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		r := NewGapResource("p")
		for i, s := range seeds {
			// Create far-flung scheduled windows to force gap eviction.
			r.ReserveAt(Time(s%1_000_000)+Time(i)*10_000, Time(s%50)+1)
		}
		at := Time(0)
		for i := 0; i < 100; i++ {
			s, e := r.Reserve(at, 100)
			if s < at || e != s+100 {
				return false
			}
			at = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// refGapResource is the pre-optimization algorithm (no maxGapEnd early-out,
// no minGapSize eviction skip, no scan break): the oracle the fast paths
// must match window-for-window.
type refGapWindow struct{ start, end Time }

type refGapResource struct {
	freeAt Time
	busy   Time
	gaps   []refGapWindow
}

func (r *refGapResource) reserve(at, dur Time) (start, end Time) {
	best := -1
	var bestStart Time
	for i := range r.gaps {
		g := &r.gaps[i]
		s := at
		if g.start > s {
			s = g.start
		}
		if s+dur <= g.end {
			if best == -1 || s < bestStart {
				best = i
				bestStart = s
			}
		}
	}
	if best >= 0 {
		g := r.gaps[best]
		s := bestStart
		e := s + dur
		repl := r.gaps[:0]
		for i, w := range r.gaps {
			if i == best {
				continue
			}
			repl = append(repl, w)
		}
		r.gaps = repl
		if g.start < s {
			r.addGap(g.start, s)
		}
		if e < g.end {
			r.addGap(e, g.end)
		}
		r.busy += dur
		return s, e
	}
	start = at
	if r.freeAt > start {
		start = r.freeAt
	}
	if start > r.freeAt {
		r.addGap(r.freeAt, start)
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	return start, end
}

func (r *refGapResource) reserveAt(at, dur Time) (start, end Time) {
	end = at + dur
	if end > r.freeAt {
		if at > r.freeAt {
			r.addGap(r.freeAt, at)
		}
		r.freeAt = end
	}
	r.busy += dur
	return at, end
}

func (r *refGapResource) addGap(start, end Time) {
	if end <= start {
		return
	}
	if len(r.gaps) < maxGaps {
		r.gaps = append(r.gaps, refGapWindow{start, end})
		return
	}
	smallest, size := 0, r.gaps[0].end-r.gaps[0].start
	for i := 1; i < len(r.gaps); i++ {
		if s := r.gaps[i].end - r.gaps[i].start; s < size {
			smallest, size = i, s
		}
	}
	if end-start > size {
		r.gaps[smallest] = refGapWindow{start, end}
	}
}

// TestGapResourceMatchesReference hammers the optimized GapResource and the
// reference with an identical random operation stream — bursty times, zero
// and large durations, future ReserveAt bookings — and requires identical
// grants, frontiers and busy accounting at every step, plus identical gap
// tables at the end. This pins the fast-path invariants: maxGapEnd is an
// upper bound, minGapSize a lower bound, and the scan break preserves the
// first-fit tie-break.
func TestGapResourceMatchesReference(t *testing.T) {
	rng := NewRng(7)
	r := NewGapResource("opt")
	ref := &refGapResource{}
	var base Time
	for op := 0; op < 200000; op++ {
		// Drift a base time forward with occasional rewinds so both the
		// frontier-append and the gap-fill paths stay exercised.
		switch rng.Intn(10) {
		case 0:
			base += Time(rng.Intn(5000))
		case 1:
			base -= Time(rng.Intn(300))
			if base < 0 {
				base = 0
			}
		default:
			base += Time(rng.Intn(50))
		}
		at := base + Time(rng.Intn(200))
		dur := Time(rng.Intn(120))
		if rng.Intn(20) == 0 {
			dur += Time(rng.Intn(5000)) // occasional huge occupancy
		}
		var s1, e1, s2, e2 Time
		if rng.Intn(4) == 0 {
			future := at + Time(rng.Intn(3000))
			s1, e1 = r.ReserveAt(future, dur)
			s2, e2 = ref.reserveAt(future, dur)
		} else {
			s1, e1 = r.Reserve(at, dur)
			s2, e2 = ref.reserve(at, dur)
		}
		if s1 != s2 || e1 != e2 {
			t.Fatalf("op %d: grant (%d,%d) != reference (%d,%d)", op, s1, e1, s2, e2)
		}
		if r.FreeAt() != ref.freeAt || r.Busy() != ref.busy {
			t.Fatalf("op %d: frontier/busy (%d,%d) != reference (%d,%d)",
				op, r.FreeAt(), r.Busy(), ref.freeAt, ref.busy)
		}
	}
	if r.gapCount() != len(ref.gaps) {
		t.Fatalf("gap table length %d != reference %d", r.gapCount(), len(ref.gaps))
	}
	for i := range ref.gaps {
		gs, ge := r.gapAt(i)
		if gs != ref.gaps[i].start || ge != ref.gaps[i].end {
			t.Fatalf("gap %d: (%d,%d) != reference %+v", i, gs, ge, ref.gaps[i])
		}
	}
}
