package sim

import (
	"container/heap"
	"math"
	"strings"
	"testing"
)

// refEvent / refHeap reimplement the pre-rewrite container/heap event queue
// as the ordering oracle: the index-based 4-ary kernel must pop events in
// exactly the (at, seq) order the pointer heap produced.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// orderRecorder collects the ids of fired closure-free events.
type orderRecorder struct{ got []uint64 }

func (r *orderRecorder) Handle(arg uint64) { r.got = append(r.got, arg) }

// TestKernelMatchesReferenceHeap drives the engine and the old-kernel
// reference with an identical pseudo-random schedule — heavy time
// collisions included — and requires the exact same firing order.
func TestKernelMatchesReferenceHeap(t *testing.T) {
	const n = 5000
	rng := NewRng(42)
	eng := NewEngine()
	rec := &orderRecorder{}
	var ref refHeap
	var seq uint64
	for i := 0; i < n; i++ {
		// Few distinct times => many (at) ties resolved by seq.
		at := Time(rng.Intn(97))
		eng.ScheduleID(at, rec, uint64(i))
		heap.Push(&ref, &refEvent{at: at, seq: seq, id: i})
		seq++
	}
	eng.Run()
	if len(rec.got) != n {
		t.Fatalf("fired %d events, want %d", len(rec.got), n)
	}
	for i := 0; i < n; i++ {
		want := heap.Pop(&ref).(*refEvent)
		if rec.got[i] != uint64(want.id) {
			t.Fatalf("event %d fired id %d, reference heap says %d", i, rec.got[i], want.id)
		}
	}
}

// TestScheduleAndScheduleIDInterleave proves the closure shim and the
// closure-free path share one sequence ordering: alternating both forms at
// one timestamp fires in exact submission order.
func TestScheduleAndScheduleIDInterleave(t *testing.T) {
	eng := NewEngine()
	var got []int
	rec := handlerFunc(func(arg uint64) { got = append(got, int(arg)) })
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			i := i
			eng.Schedule(5, func() { got = append(got, i) })
		} else {
			eng.ScheduleID(5, rec, uint64(i))
		}
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d fired event %d; closure and ID events must share seq order", i, v)
		}
	}
}

type handlerFunc func(arg uint64)

func (f handlerFunc) Handle(arg uint64) { f(arg) }

// churnHandler keeps a constant-population event queue: every fired event
// schedules its successor, the steady state of every simulation.
type churnHandler struct {
	eng  *Engine
	left int
}

func (h *churnHandler) Handle(arg uint64) {
	if h.left <= 0 {
		return
	}
	h.left--
	h.eng.ScheduleID(h.eng.Now()+Time(1+arg%13), h, arg+1)
}

// TestSteadyStateLoopAllocFree is the tentpole guard: once the arena and
// free-list are warm, the closure-free schedule->fire loop must not
// allocate at all.
func TestSteadyStateLoopAllocFree(t *testing.T) {
	eng := NewEngine()
	h := &churnHandler{eng: eng, left: 1 << 30}
	const population = 32
	for i := 0; i < population; i++ {
		eng.ScheduleID(Time(i), h, uint64(i))
	}
	// Warm the arena, heap and free-list.
	for i := 0; i < 4*population; i++ {
		eng.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() { eng.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state event loop allocates %.1f objects/op, want 0", allocs)
	}
}

func TestFreeListRecyclesArena(t *testing.T) {
	eng := NewEngine()
	rec := &orderRecorder{}
	// Schedule and drain the same population repeatedly: the arena must not
	// grow past the high-water mark of simultaneously pending events.
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			eng.ScheduleID(eng.Now()+Time(i+1), rec, uint64(i))
		}
		eng.Run()
	}
	if got := len(eng.arena); got > 8 {
		t.Fatalf("arena grew to %d slots for a max-8-pending workload", got)
	}
}

func TestTimeStringMinInt64(t *testing.T) {
	// Regression: -t on MinInt64 wraps back to MinInt64 and used to recurse
	// until stack exhaustion.
	s := Time(math.MinInt64).String()
	if !strings.HasPrefix(s, "-") || !strings.HasSuffix(s, "s") {
		t.Fatalf("Time(MinInt64).String() = %q, want a negative seconds rendering", s)
	}
	// Ordinary negatives keep the old format.
	if got := Time(-1500).String(); got != "-1.500ns" {
		t.Fatalf("Time(-1500).String() = %q, want \"-1.500ns\"", got)
	}
}
