// Package sim provides the discrete-event simulation kernel used by every
// other component of the Ohm-GPU model: a picosecond-resolution clock, an
// event queue with deterministic ordering, and helpers for modelling
// occupancy of shared resources (channels, banks, buffers).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulation time in picoseconds. Using integer picoseconds keeps
// every timing computation exact: a 1.2 GHz GPU cycle is 833 ps, a 30 GHz
// optical bit-slot is 33 ps, and XPoint's 763 ns write is 763_000 ps.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1_000
	Microsecond Time = 1_000_000
	Millisecond Time = 1_000_000_000
	Second      Time = 1_000_000_000_000
)

// Forever is a sentinel time later than any event a simulation schedules.
const Forever Time = 1<<62 - 1

// String renders the time with an adaptive unit, e.g. "1.234us".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Seconds converts t to floating-point seconds (for energy integration).
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// FreqToPeriod converts a frequency in Hz to the integer period in
// picoseconds, rounding to the nearest picosecond. It panics on
// non-positive frequencies, which are always configuration errors.
func FreqToPeriod(hz float64) Time {
	if hz <= 0 {
		panic(fmt.Sprintf("sim: non-positive frequency %v", hz))
	}
	return Time(1e12/hz + 0.5)
}

// Event is a scheduled callback. Events with equal time fire in the order of
// their sequence numbers (i.e. scheduling order), which makes simulations
// deterministic regardless of heap internals.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a model bug, and silently clamping would hide causality violations.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %s before now %s", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
}

// After runs fn delay picoseconds from now.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %s", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Step executes the next event, advancing the clock. It reports whether an
// event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline. The clock is left at the
// later of its current value and deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d picoseconds of simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
