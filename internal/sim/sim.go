// Package sim provides the discrete-event simulation kernel used by every
// other component of the Ohm-GPU model: a picosecond-resolution clock, an
// event queue with deterministic ordering, and helpers for modelling
// occupancy of shared resources (channels, banks, buffers).
package sim

import (
	"fmt"
	"math"
)

// Time is simulation time in picoseconds. Using integer picoseconds keeps
// every timing computation exact: a 1.2 GHz GPU cycle is 833 ps, a 30 GHz
// optical bit-slot is 33 ps, and XPoint's 763 ns write is 763_000 ps.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1_000
	Microsecond Time = 1_000_000
	Millisecond Time = 1_000_000_000
	Second      Time = 1_000_000_000_000
)

// Forever is a sentinel time later than any event a simulation schedules.
const Forever Time = 1<<62 - 1

// String renders the time with an adaptive unit, e.g. "1.234us".
func (t Time) String() string {
	switch {
	case t == math.MinInt64:
		// -t would overflow back to MinInt64 and recurse forever; render
		// the one unnegatable value directly in seconds.
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Seconds converts t to floating-point seconds (for energy integration).
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// FreqToPeriod converts a frequency in Hz to the integer period in
// picoseconds, rounding to the nearest picosecond. It panics on
// non-positive frequencies, which are always configuration errors.
func FreqToPeriod(hz float64) Time {
	if hz <= 0 {
		panic(fmt.Sprintf("sim: non-positive frequency %v", hz))
	}
	return Time(1e12/hz + 0.5)
}

// Handler is the closure-free event callback: components implement it once
// and pass a uint64 argument (a warp index, a request id) per event, so the
// steady-state event loop allocates nothing. The hot schedulers (GPU warp
// issue/retire) use this path; Schedule(at, func()) remains as a
// compatibility shim for cold paths and tests.
type Handler interface {
	Handle(arg uint64)
}

// event is one scheduled callback, stored by value in the engine's arena.
// Events with equal time fire in the order of their sequence numbers (i.e.
// scheduling order), which makes simulations deterministic regardless of
// heap internals. Exactly one of fn and h is set.
type event struct {
	at  Time
	seq uint64
	arg uint64
	h   Handler
	fn  func()
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use.
//
// The queue is an index-based 4-ary min-heap: events live by value in an
// arena slice whose slots are recycled through a free-list, and the heap
// orders int32 arena indices. Compared to the former container/heap of
// *event this removes the per-event allocation, the interface{} boxing on
// push/pop, and two levels of pointer indirection per comparison; sift
// operations move 4-byte indices instead of 48-byte events.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64

	arena []event // event storage, indexed by heap entries
	heap  []int32 // 4-ary min-heap of arena indices ordered by (at, seq)
	free  []int32 // recycled arena slots
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) }

// less orders heap entries by (at, seq).
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.arena[a], &e.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// push inserts an event, reusing a free arena slot when one exists.
func (e *Engine) push(ev event) {
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
		e.arena[slot] = ev
	} else {
		slot = int32(len(e.arena))
		e.arena = append(e.arena, ev)
	}
	e.heap = append(e.heap, slot)
	e.siftUp(len(e.heap) - 1)
}

// pop removes and returns the arena index of the earliest event.
func (e *Engine) pop() int32 {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return root
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	idx := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(idx, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = idx
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	idx := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(h[c], h[best]) {
				best = c
			}
		}
		if !e.less(h[best], idx) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = idx
}

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a model bug, and silently clamping would hide causality violations.
//
// This is the compatibility shim over the value-typed queue: the closure
// itself is still one allocation at the call site. Hot paths should use
// ScheduleID.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %s before now %s", at, e.now))
	}
	e.push(event{at: at, seq: e.seq, fn: fn})
	e.seq++
}

// ScheduleID runs h.Handle(arg) at absolute time at. It shares the sequence
// counter with Schedule, so closure and closure-free events interleave in
// exact scheduling order. The steady-state cost is zero allocations: the
// Handler is an interface over a pre-existing pointer and the event is
// stored by value in a recycled arena slot.
func (e *Engine) ScheduleID(at Time, h Handler, arg uint64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %s before now %s", at, e.now))
	}
	e.push(event{at: at, seq: e.seq, h: h, arg: arg})
	e.seq++
}

// After runs fn delay picoseconds from now.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %s", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// AfterID runs h.Handle(arg) delay picoseconds from now on the closure-free
// path.
func (e *Engine) AfterID(delay Time, h Handler, arg uint64) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %s", delay))
	}
	e.ScheduleID(e.now+delay, h, arg)
}

// Step executes the next event, advancing the clock. It reports whether an
// event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	slot := e.pop()
	ev := &e.arena[slot]
	at, h, arg, fn := ev.at, ev.h, ev.arg, ev.fn
	// Clear the slot's references before recycling so the arena does not
	// pin dead closures or handlers for the GC.
	ev.h, ev.fn = nil, nil
	e.free = append(e.free, slot)
	e.now = at
	e.fired++
	if h != nil {
		h.Handle(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline. The clock is left at the
// later of its current value and deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 && e.arena[e.heap[0]].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d picoseconds of simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
