package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLatencyDistBasics(t *testing.T) {
	var d LatencyDist
	if d.Mean() != 0 || d.Percentile(99) != 0 {
		t.Fatal("empty dist must report zeros")
	}
	d.Add(100 * sim.Nanosecond)
	d.Add(200 * sim.Nanosecond)
	d.Add(300 * sim.Nanosecond)
	if d.Count != 3 {
		t.Fatalf("count = %d", d.Count)
	}
	if d.Mean() != 200*sim.Nanosecond {
		t.Fatalf("mean = %s, want 200ns", d.Mean())
	}
	if d.Min != 100*sim.Nanosecond || d.Max != 300*sim.Nanosecond {
		t.Fatalf("min/max = %s/%s", d.Min, d.Max)
	}
}

func TestLatencyDistNegativeClamped(t *testing.T) {
	var d LatencyDist
	d.Add(-5)
	if d.Min != 0 {
		t.Fatal("negative sample must clamp to zero")
	}
}

func TestLatencyDistPercentileMonotone(t *testing.T) {
	var d LatencyDist
	for i := 1; i <= 1000; i++ {
		d.Add(sim.Time(i) * sim.Nanosecond)
	}
	p50 := d.Percentile(50)
	p90 := d.Percentile(90)
	p99 := d.Percentile(99)
	if p50 > p90 || p90 > p99 {
		t.Fatalf("percentiles not monotone: p50=%s p90=%s p99=%s", p50, p90, p99)
	}
	if p99 > d.Max*2 {
		t.Fatalf("p99=%s wildly exceeds max=%s", p99, d.Max)
	}
}

func TestLatencyDistMerge(t *testing.T) {
	var a, b LatencyDist
	a.Add(10 * sim.Nanosecond)
	b.Add(30 * sim.Nanosecond)
	a.Merge(&b)
	if a.Count != 2 || a.Mean() != 20*sim.Nanosecond {
		t.Fatalf("merge: count=%d mean=%s", a.Count, a.Mean())
	}
	if a.Min != 10*sim.Nanosecond || a.Max != 30*sim.Nanosecond {
		t.Fatalf("merge min/max wrong: %s/%s", a.Min, a.Max)
	}
	var empty LatencyDist
	a.Merge(&empty) // must be a no-op
	if a.Count != 2 {
		t.Fatal("merging empty changed count")
	}
}

// Property: mean is always within [min, max] and sum == mean*count +/- rounding.
func TestLatencyDistMeanProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		var d LatencyDist
		for _, s := range samples {
			d.Add(sim.Time(s % 1_000_000))
		}
		if d.Count == 0 {
			return d.Mean() == 0
		}
		m := d.Mean()
		return m >= d.Min && m <= d.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorChannelClasses(t *testing.T) {
	c := NewCollector()
	c.AddChannel(RegularRequest, 1000, 60*sim.Nanosecond)
	c.AddChannel(DataCopy, 500, 40*sim.Nanosecond)
	if got := c.CopyFraction(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("copy fraction = %v, want 0.4", got)
	}
	if c.ChannelBytes[RegularRequest] != 1000 || c.ChannelBytes[DataCopy] != 500 {
		t.Fatal("byte accounting wrong")
	}
}

func TestCollectorCopyFractionEmpty(t *testing.T) {
	if NewCollector().CopyFraction() != 0 {
		t.Fatal("empty collector must report 0 copy fraction")
	}
}

func TestCollectorIPC(t *testing.T) {
	c := NewCollector()
	c.Instructions = 1200
	// 1 us at 1.2 GHz = 1200 cycles => IPC 1.0
	got := c.IPC(sim.Microsecond, 1.2e9)
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("IPC = %v, want 1.0", got)
	}
	if c.IPC(0, 1.2e9) != 0 {
		t.Fatal("IPC at zero elapsed must be 0")
	}
}

func TestCollectorEnergy(t *testing.T) {
	c := NewCollector()
	c.AddEnergy("dram-static", 10)
	c.AddEnergy("dram-static", 5)
	c.AddEnergy("xpoint", 7)
	if c.EnergyPJ["dram-static"] != 15 {
		t.Fatal("energy accumulation wrong")
	}
	if got := c.TotalEnergyPJ(); math.Abs(got-22) > 1e-9 {
		t.Fatalf("total energy = %v, want 22", got)
	}
	names := c.EnergyComponents()
	if len(names) != 2 || names[0] != "dram-static" || names[1] != "xpoint" {
		t.Fatalf("components not sorted: %v", names)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	c := NewCollector()
	c.Instructions = 100
	c.AddEnergy("x", 1)
	c.Extra["k"] = 2
	c.MemLatency.Add(50 * sim.Nanosecond)
	r := c.Snapshot(sim.Microsecond, 1e9)
	// Mutating the collector after snapshot must not affect the report.
	c.AddEnergy("x", 100)
	c.Extra["k"] = 99
	if r.EnergyPJ["x"] != 1 || r.Extra["k"] != 2 {
		t.Fatal("snapshot shares maps with collector")
	}
	if r.Instructions != 100 || r.MeanLatency != 50*sim.Nanosecond {
		t.Fatalf("snapshot fields wrong: %+v", r)
	}
	if r.TotalEnergyPJ() != 1 {
		t.Fatalf("report energy = %v", r.TotalEnergyPJ())
	}
}

func TestReportString(t *testing.T) {
	r := Report{Elapsed: sim.Microsecond, IPC: 1.5, MeanLatency: 100 * sim.Nanosecond}
	s := r.String()
	if s == "" {
		t.Fatal("empty report string")
	}
}

func TestClassString(t *testing.T) {
	if RegularRequest.String() != "regular" || DataCopy.String() != "copy" {
		t.Fatal("class strings wrong")
	}
}

func TestHandleCountersAllocFree(t *testing.T) {
	c := NewCollector()
	he := c.InternEnergy("opti-network")
	hx := c.InternExtra("xp-lat-sum")
	allocs := testing.AllocsPerRun(2000, func() {
		c.AddEnergyH(he, 1.5)
		c.AddExtraH(hx, 2.0)
	})
	if allocs != 0 {
		t.Fatalf("handle counters allocate %.1f objects/op, want 0", allocs)
	}
}

func TestHandleCountersFoldIntoMaps(t *testing.T) {
	c := NewCollector()
	he := c.InternEnergy("laser")
	hx := c.InternExtra("waits")
	unused := c.InternExtra("never-touched")
	_ = unused
	c.AddEnergyH(he, 3)
	c.AddEnergyH(he, 4)
	c.AddExtraH(hx, 1)
	// String-keyed adds to the same component coexist with handle adds.
	c.AddEnergy("laser", 10)

	rep := c.Snapshot(sim.Second, 1e9)
	if got := rep.EnergyPJ["laser"]; got != 17 {
		t.Fatalf("laser energy = %v, want 17", got)
	}
	if got := rep.Extra["waits"]; got != 1 {
		t.Fatalf("waits = %v, want 1", got)
	}
	if _, ok := rep.Extra["never-touched"]; ok {
		t.Fatal("interning alone must not create map keys")
	}
	// Flushing is idempotent: a second snapshot sees the same totals.
	rep2 := c.Snapshot(sim.Second, 1e9)
	if rep2.EnergyPJ["laser"] != 17 || rep2.Extra["waits"] != 1 {
		t.Fatalf("second snapshot changed totals: %v / %v", rep2.EnergyPJ["laser"], rep2.Extra["waits"])
	}
	// Re-interning returns the same handle.
	if c.InternEnergy("laser") != he || c.InternExtra("waits") != hx {
		t.Fatal("re-interning a name must return the original handle")
	}
}
