package stats

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkAddEnergyHandle is the pre-interned hot-counter path: no string
// hashing, 0 allocs/op.
func BenchmarkAddEnergyHandle(b *testing.B) {
	c := NewCollector()
	h := c.InternEnergy("opti-network")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AddEnergyH(h, 0.2)
	}
}

// BenchmarkAddEnergyString is the string-keyed map path the handles
// replaced on per-access code.
func BenchmarkAddEnergyString(b *testing.B) {
	c := NewCollector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AddEnergy("opti-network", 0.2)
	}
}

func BenchmarkLatencyDistAdd(b *testing.B) {
	var d LatencyDist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Add(sim.Time(1000 + i%100000))
	}
}
