package search

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// metricDef maps one canonical metric name to its extractor and natural
// optimization direction.
type metricDef struct {
	maximize bool
	value    func(stats.Report) float64
}

// metricTable defines the objective metrics. "wear_bytes" is the
// endurance proxy: total bytes written through the memory channels
// (regular traffic plus migration copies), the quantity cell wear scales
// with when no per-line wear instrumentation is attached.
var metricTable = map[string]metricDef{
	"ipc":             {true, func(r stats.Report) float64 { return r.IPC }},
	"elapsed_ns":      {false, func(r stats.Report) float64 { return r.Elapsed.Nanoseconds() }},
	"mean_latency_ns": {false, func(r stats.Report) float64 { return r.MeanLatency.Nanoseconds() }},
	"p99_latency_ns":  {false, func(r stats.Report) float64 { return r.P99Latency.Nanoseconds() }},
	"energy_pj":       {false, func(r stats.Report) float64 { return r.TotalEnergyPJ() }},
	"mem_requests":    {false, func(r stats.Report) float64 { return float64(r.MemRequests) }},
	"migrations":      {false, func(r stats.Report) float64 { return float64(r.Migrations) }},
	"copy_bytes":      {false, func(r stats.Report) float64 { return float64(r.CopyBytes) }},
	"wear_bytes":      {false, func(r stats.Report) float64 { return float64(r.RegularBytes + r.CopyBytes) }},
}

// metricAliases maps accepted spellings to canonical names.
var metricAliases = map[string]string{
	"throughput": "ipc",
	"endurance":  "wear_bytes",
}

// canonicalMetric resolves a metric spelling to its canonical name and
// natural direction.
func canonicalMetric(name string) (canonical string, maximize bool, ok bool) {
	key := strings.ToLower(strings.TrimSpace(name))
	if alias, found := metricAliases[key]; found {
		key = alias
	}
	def, found := metricTable[key]
	if !found {
		return "", false, false
	}
	return key, def.maximize, true
}

// MetricNames lists the canonical objective metrics, sorted.
func MetricNames() []string {
	names := make([]string, 0, len(metricTable))
	for n := range metricTable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// metricsOf extracts the objective metrics from a report.
func metricsOf(objs []objectiveSpec, rep stats.Report) map[string]float64 {
	out := make(map[string]float64, len(objs))
	for _, o := range objs {
		out[o.metric] = metricTable[o.metric].value(rep)
	}
	return out
}

// ratioEps keeps baseline-relative scores finite when a metric is zero on
// either side; real magnitudes (ns, pJ, bytes) dwarf it.
const ratioEps = 1e-9

// score computes one objective's baseline-relative score: >1 means the
// candidate improves on the baseline regardless of direction (value/base
// for max goals, base/value for min goals).
func (o objectiveSpec) score(value, base float64) float64 {
	if o.maximize {
		return (value + ratioEps) / (base + ratioEps)
	}
	return (base + ratioEps) / (value + ratioEps)
}

// violations returns the caps a metric set violates, formatted for the
// decision log, in objective order. A value exactly at its cap is
// feasible.
func violations(objs []objectiveSpec, metrics map[string]float64) []string {
	var out []string
	for _, o := range objs {
		if o.cap == nil {
			continue
		}
		v := metrics[o.metric]
		if o.maximize && v < *o.cap {
			out = append(out, fmt.Sprintf("%s=%g < cap %g", o.metric, v, *o.cap))
		}
		if !o.maximize && v > *o.cap {
			out = append(out, fmt.Sprintf("%s=%g > cap %g", o.metric, v, *o.cap))
		}
	}
	return out
}

// fitnessOf folds per-objective scores into the weighted scalar fitness.
func fitnessOf(objs []objectiveSpec, scores map[string]float64) float64 {
	var sum, wsum float64
	for _, o := range objs {
		sum += o.weight * scores[o.metric]
		wsum += o.weight
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// dominates reports whether metric set a Pareto-dominates b: at least as
// good on every objective (direction-adjusted) and strictly better on at
// least one.
func dominates(objs []objectiveSpec, a, b map[string]float64) bool {
	strict := false
	for _, o := range objs {
		av, bv := a[o.metric], b[o.metric]
		if !o.maximize {
			av, bv = -av, -bv
		}
		if av < bv {
			return false
		}
		if av > bv {
			strict = true
		}
	}
	return strict
}
