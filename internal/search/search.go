package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/stats"
)

// Progress is a phase-level status snapshot the optimizer publishes as it
// runs; the serving layer copies it into job status so clients can watch
// per-generation progress.
type Progress struct {
	// Phase is "baseline", "search" or "confirm".
	Phase string `json:"phase"`
	// Generation counts completed search batches (rungs for halving,
	// generations for evolution, 1 for random search) out of Generations.
	Generation  int `json:"generation"`
	Generations int `json:"generations"`
	// Evaluated counts twin evaluations issued so far out of Planned.
	Evaluated int `json:"evaluated"`
	Planned   int `json:"planned"`
	// FrontierSize is set once the frontier exists (confirm phase on).
	FrontierSize int `json:"frontier_size,omitempty"`
}

// Options wires an optimizer run into its execution environment.
type Options struct {
	// Executor evaluates candidate cells; required. The in-process
	// LocalExecutor and the distributed dispatcher both work — analytical
	// inner-loop cells short-circuit to the local runner either way, and
	// DES confirmation cells fan out to workers under a dispatcher.
	Executor batch.Executor
	// Progress, when non-nil, observes each evaluated cell (the
	// batch.Executor contract's callback, forwarded verbatim).
	Progress batch.Progress
	// OnPhase, when non-nil, observes phase-level progress snapshots.
	OnPhase func(Progress)
}

// candidate is one explored configuration and its bookkeeping.
type candidate struct {
	id        int
	gen       int
	parent    *int
	genome    []float64
	overrides map[string]interface{}
	fidelity  int // MaxInstructions of the last evaluation; 0 = base
	full      bool
	metrics   map[string]float64
	scores    map[string]float64
	fitness   float64
	feasible  bool
	verdict   string
	reason    string
	dupOf     int // id of the candidate this one's genome repeats; -1 if unique
}

// run is the in-flight state of one optimizer run.
type run struct {
	r    *resolved
	opt  Options
	rng  *rand.Rand
	full int // full-fidelity instruction budget (base config's)

	cands     []*candidate
	byGenome  map[string]int
	baselines map[int]map[string]float64 // fidelity -> baseline metrics
	evaluated int
	planned   int
}

// Run executes the optimizer spec and returns its result. The search
// trajectory is fully determined by (spec, seed): candidates are generated
// sequentially from one seeded RNG before each batch evaluates, and the
// executor returns reports positionally, so worker completion order never
// leaks into the outcome.
func Run(ctx context.Context, spec Spec, opt Options) (*Result, error) {
	if opt.Executor == nil {
		return nil, fmt.Errorf("search: Options.Executor is required")
	}
	res, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	s := &run{
		r:         res,
		opt:       opt,
		rng:       rand.New(rand.NewSource(res.strategy.Seed)),
		full:      res.scenario.Config.MaxInstructions,
		byGenome:  make(map[string]int),
		baselines: make(map[int]map[string]float64),
		planned:   spec.PlannedEvaluations(),
	}

	s.phase(Progress{Phase: "baseline"})
	if err := s.evalBaseline(ctx); err != nil {
		return nil, err
	}

	switch res.strategy.Algorithm {
	case AlgoEvolution:
		err = s.runEvolution(ctx)
	case AlgoHalving:
		err = s.runHalving(ctx)
	default:
		err = s.runRandom(ctx)
	}
	if err != nil {
		return nil, err
	}

	frontier := s.pareto()
	s.phase(Progress{Phase: "confirm", FrontierSize: len(frontier)})
	confirmed, err := s.confirm(ctx, frontier)
	if err != nil {
		return nil, err
	}
	return s.result(frontier, confirmed), nil
}

// phase publishes a phase snapshot with the counters filled in.
func (s *run) phase(p Progress) {
	if s.opt.OnPhase == nil {
		return
	}
	p.Evaluated = s.evaluated
	p.Planned = s.planned
	s.opt.OnPhase(p)
}

// --- genome handling ---

// genomeKey identifies a genome for deduplication.
func genomeKey(g []float64) string {
	var b strings.Builder
	for _, v := range g {
		b.WriteString(strconv.FormatFloat(v, 'g', 17, 64))
		b.WriteByte('|')
	}
	return b.String()
}

// sampleAxis draws one uniform position on an axis.
func (s *run) sampleAxis(d axisDomain) float64 {
	if d.continuous {
		return d.min + s.rng.Float64()*(d.max-d.min)
	}
	return float64(s.rng.Intn(d.n))
}

// mutateAxis perturbs one position: categorical/quantized axes take a
// small (never zero) index step, continuous axes a gaussian nudge of a
// tenth of the range. Results stay in the domain.
func (s *run) mutateAxis(d axisDomain, cur float64) float64 {
	if d.continuous {
		v := cur + s.rng.NormFloat64()*(d.max-d.min)/10
		return math.Min(d.max, math.Max(d.min, v))
	}
	if d.n <= 1 {
		return cur
	}
	step := int(math.Round(s.rng.NormFloat64() * float64(d.n) / 6))
	if step == 0 {
		if s.rng.Intn(2) == 0 {
			step = -1
		} else {
			step = 1
		}
	}
	idx := int(cur) + step
	if idx < 0 {
		idx = 0
	}
	if idx >= d.n {
		idx = d.n - 1
	}
	if idx == int(cur) {
		if idx == 0 {
			idx = 1
		} else {
			idx--
		}
	}
	return float64(idx)
}

// sampleGenome draws a full uniform genome.
func (s *run) sampleGenome() []float64 {
	g := make([]float64, len(s.r.axes))
	for i, d := range s.r.axes {
		g[i] = s.sampleAxis(d)
	}
	return g
}

// mutateGenome copies a parent genome and mutates at least one axis (each
// axis mutates with probability 1/len, and one forced axis always does).
func (s *run) mutateGenome(parent []float64) []float64 {
	g := make([]float64, len(parent))
	copy(g, parent)
	forced := s.rng.Intn(len(g))
	for i, d := range s.r.axes {
		if i == forced || s.rng.Intn(len(g)) == 0 {
			g[i] = s.mutateAxis(d, g[i])
		}
	}
	return g
}

// overridesOf converts a genome into the override patch it encodes.
func (s *run) overridesOf(g []float64) map[string]interface{} {
	ov := make(map[string]interface{}, len(g))
	for i, d := range s.r.axes {
		switch {
		case len(d.values) > 0:
			ov[d.path] = d.values[int(g[i])]
		case d.continuous:
			ov[d.path] = g[i]
		default:
			v := d.min + g[i]*d.step
			if d.typ == "float" {
				ov[d.path] = v
			} else {
				ov[d.path] = int64(math.Round(v))
			}
		}
	}
	return ov
}

// addCandidate registers a genome as a new candidate, resolving
// duplicates against every earlier genome (a duplicate shares the
// original's evaluation and never re-evaluates).
func (s *run) addCandidate(gen int, parent *int, g []float64) *candidate {
	c := &candidate{
		id:        len(s.cands),
		gen:       gen,
		parent:    parent,
		genome:    g,
		overrides: s.overridesOf(g),
		dupOf:     -1,
	}
	key := genomeKey(g)
	if prev, ok := s.byGenome[key]; ok {
		c.dupOf = prev
	} else {
		s.byGenome[key] = c.id
	}
	s.cands = append(s.cands, c)
	return c
}

// freshGenome samples (or mutates toward) a genome not yet seen, giving
// up after a bounded number of retries — a duplicate is then recorded as
// such rather than burning evaluations.
func (s *run) freshGenome(sample func() []float64) []float64 {
	for try := 0; try < 20; try++ {
		g := sample()
		if _, dup := s.byGenome[genomeKey(g)]; !dup {
			return g
		}
	}
	return sample()
}

// --- evaluation ---

// cellFor builds the evaluation cell for an override patch at a fidelity.
func (s *run) cellFor(idx int, ov map[string]interface{}, fidelity int, exec config.ExecMode) (batch.Cell, error) {
	sc := s.r.scenario
	cfg := sc.Config
	if fidelity > 0 {
		cfg.MaxInstructions = fidelity
	}
	if err := cfg.ApplyOverrides(ov); err != nil {
		return batch.Cell{}, err
	}
	if err := cfg.Validate(); err != nil {
		return batch.Cell{}, err
	}
	cell := batch.Cell{
		Index:     idx,
		Platform:  sc.Preset.Platform,
		Mode:      cfg.Mode,
		Exec:      exec,
		Workload:  sc.Workload.Name,
		Config:    cfg,
		Overrides: ov,
	}
	if sc.Custom {
		w := sc.Workload
		cell.WorkloadDef = &w
	}
	return cell, nil
}

// evalBaseline evaluates the unperturbed base scenario as candidate 0.
// The baseline has no genome (its override patch is empty, not a decoded
// zero position), so it never collides with a sampled candidate in the
// duplicate check.
func (s *run) evalBaseline(ctx context.Context) error {
	base, err := s.baselineAt(ctx, s.full)
	if err != nil {
		return err
	}
	c := &candidate{
		id:        0,
		overrides: map[string]interface{}{},
		fidelity:  s.full,
		full:      true,
		metrics:   base,
		scores:    s.scoresOf(base, base),
		feasible:  len(violations(s.r.objs, base)) == 0,
		verdict:   VerdictBaseline,
		reason:    "unperturbed base scenario; scores normalize against it",
		dupOf:     -1,
	}
	c.fitness = fitnessOf(s.r.objs, c.scores)
	s.cands = append(s.cands, c)
	return nil
}

// baselineAt evaluates (and memoizes) the base scenario's metrics at a
// fidelity; halving rungs rank their candidates against the baseline
// measured at the same instruction budget.
func (s *run) baselineAt(ctx context.Context, fidelity int) (map[string]float64, error) {
	if m, ok := s.baselines[fidelity]; ok {
		return m, nil
	}
	cell, err := s.cellFor(0, nil, fidelity, config.ExecAnalytical)
	if err != nil {
		return nil, fmt.Errorf("search: baseline: %w", err)
	}
	reps, err := s.opt.Executor.RunContext(ctx, []batch.Cell{cell}, s.opt.Progress)
	if err != nil {
		return nil, fmt.Errorf("search: baseline evaluation: %w", err)
	}
	s.evaluated++
	m := metricsOf(s.r.objs, reps[0])
	s.baselines[fidelity] = m
	return m, nil
}

// scoresOf computes the per-objective baseline-relative scores.
func (s *run) scoresOf(metrics, base map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(s.r.objs))
	for _, o := range s.r.objs {
		out[o.metric] = o.score(metrics[o.metric], base[o.metric])
	}
	return out
}

// evalBatch evaluates a candidate batch at one fidelity through the
// executor. Invalid configurations are marked and skipped; duplicates
// inherit the original's evaluation.
func (s *run) evalBatch(ctx context.Context, cands []*candidate, fidelity int) error {
	base, err := s.baselineAt(ctx, fidelity)
	if err != nil {
		return err
	}
	var cells []batch.Cell
	var live []*candidate
	for _, c := range cands {
		if c.dupOf >= 0 {
			orig := s.cands[c.dupOf]
			c.fidelity = orig.fidelity
			c.full = orig.full
			c.metrics = orig.metrics
			c.scores = orig.scores
			c.fitness = orig.fitness
			c.feasible = orig.feasible
			c.verdict = VerdictDuplicate
			c.reason = fmt.Sprintf("override set repeats candidate %d; shares its evaluation", c.dupOf)
			continue
		}
		cell, err := s.cellFor(len(cells), c.overrides, fidelity, config.ExecAnalytical)
		if err != nil {
			c.verdict = VerdictInvalid
			c.reason = fmt.Sprintf("sampled configuration rejected: %v", err)
			c.fidelity = fidelity
			continue
		}
		cells = append(cells, cell)
		live = append(live, c)
	}
	if len(cells) == 0 {
		return nil
	}
	reps, err := s.opt.Executor.RunContext(ctx, cells, s.opt.Progress)
	if err != nil {
		return fmt.Errorf("search: candidate evaluation: %w", err)
	}
	s.evaluated += len(cells)
	for i, c := range live {
		s.applyReport(c, reps[i], base, fidelity)
	}
	return nil
}

// applyReport folds one evaluation into a candidate.
func (s *run) applyReport(c *candidate, rep stats.Report, base map[string]float64, fidelity int) {
	c.fidelity = fidelity
	c.full = fidelity >= s.full
	c.metrics = metricsOf(s.r.objs, rep)
	c.scores = s.scoresOf(c.metrics, base)
	c.fitness = fitnessOf(s.r.objs, c.scores)
	c.feasible = len(violations(s.r.objs, c.metrics)) == 0
}

// --- strategies ---

// runRandom evaluates Budget uniform samples in one full-fidelity batch.
func (s *run) runRandom(ctx context.Context) error {
	var gen []*candidate
	for i := 0; i < s.r.strategy.Budget; i++ {
		gen = append(gen, s.addCandidate(0, nil, s.freshGenome(s.sampleGenome)))
	}
	if err := s.evalBatch(ctx, gen, s.full); err != nil {
		return err
	}
	s.phase(Progress{Phase: "search", Generation: 1, Generations: 1})
	return nil
}

// runHalving runs successive halving: an initial pool at a cheap
// instruction budget, the top 1/eta surviving into each richer rung, the
// final rung at full fidelity. Rung ranking compares against the baseline
// evaluated at the same fidelity.
func (s *run) runHalving(ctx context.Context) error {
	st := s.r.strategy
	pool := make([]*candidate, 0, st.Budget)
	for i := 0; i < st.Budget; i++ {
		pool = append(pool, s.addCandidate(0, nil, s.freshGenome(s.sampleGenome)))
	}
	for rung := 0; rung < st.Rungs; rung++ {
		fid := s.rungFidelity(rung)
		for _, c := range pool {
			c.gen = rung
		}
		if err := s.evalBatch(ctx, pool, fid); err != nil {
			return err
		}
		s.phase(Progress{Phase: "search", Generation: rung + 1, Generations: st.Rungs})
		if rung == st.Rungs-1 {
			break
		}
		ranked := rankCandidates(pool)
		keep := (len(ranked) + st.Eta - 1) / st.Eta
		if keep < 1 {
			keep = 1
		}
		for i, c := range ranked {
			if i >= keep {
				c.verdict = VerdictCulled
				c.reason = fmt.Sprintf("rank %d of %d at rung %d (fidelity %d instructions): below the top-%d cut",
					i+1, len(ranked), rung, fid, keep)
			}
		}
		pool = ranked[:keep]
	}
	return nil
}

// rungFidelity is the instruction budget of one halving rung: the full
// budget divided by eta per remaining rung, floored at minFidelity.
func (s *run) rungFidelity(rung int) int {
	st := s.r.strategy
	fid := s.full
	for i := 0; i < st.Rungs-1-rung; i++ {
		fid /= st.Eta
	}
	if fid < minFidelity {
		fid = minFidelity
	}
	if fid > s.full {
		fid = s.full
	}
	return fid
}

// runEvolution runs the (μ+λ) strategy: a uniform first generation, then
// each generation mutates offspring from the μ elite of everything
// evaluated so far and re-selects.
func (s *run) runEvolution(ctx context.Context) error {
	st := s.r.strategy
	var all []*candidate
	for g := 0; g < st.Generations; g++ {
		elite := rankCandidates(all)
		if len(elite) > st.Mu {
			elite = elite[:st.Mu]
		}
		var gen []*candidate
		for i := 0; i < st.Lambda; i++ {
			if len(elite) == 0 {
				gen = append(gen, s.addCandidate(g, nil, s.freshGenome(s.sampleGenome)))
				continue
			}
			parent := elite[s.rng.Intn(len(elite))]
			pid := parent.id
			g2 := s.freshGenome(func() []float64 { return s.mutateGenome(parent.genome) })
			gen = append(gen, s.addCandidate(g, &pid, g2))
		}
		if err := s.evalBatch(ctx, gen, s.full); err != nil {
			return err
		}
		all = append(all, gen...)
		s.phase(Progress{Phase: "search", Generation: g + 1, Generations: st.Generations})
	}
	return nil
}

// rankCandidates orders evaluated candidates for selection: feasible
// first, then fitness descending, candidate id ascending — a total,
// deterministic order. Invalid and duplicate candidates are excluded.
func rankCandidates(cands []*candidate) []*candidate {
	out := make([]*candidate, 0, len(cands))
	for _, c := range cands {
		if c.verdict == VerdictInvalid || c.dupOf >= 0 {
			continue
		}
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.feasible != b.feasible {
			return a.feasible
		}
		if a.fitness != b.fitness {
			return a.fitness > b.fitness
		}
		return a.id < b.id
	})
	return out
}

// --- frontier, confirmation, result ---

// pareto computes the frontier over feasible full-fidelity candidates and
// writes the kept/culled verdicts the searches have not already assigned.
func (s *run) pareto() []*candidate {
	var eligible []*candidate
	for _, c := range s.cands {
		if c.verdict == VerdictInvalid || c.verdict == VerdictDuplicate || c.verdict == VerdictCulled {
			continue
		}
		if !c.feasible {
			c.verdict = VerdictInfeasible
			c.reason = "violates " + strings.Join(violations(s.r.objs, c.metrics), "; ")
			continue
		}
		if !c.full {
			continue
		}
		eligible = append(eligible, c)
	}
	var frontier []*candidate
	for _, c := range eligible {
		dominator := -1
		for _, o := range eligible {
			if o.id != c.id && dominates(s.r.objs, o.metrics, c.metrics) {
				dominator = o.id
				break
			}
		}
		if dominator >= 0 {
			if c.verdict == "" {
				c.verdict = VerdictDominated
				c.reason = fmt.Sprintf("feasible but Pareto-dominated by candidate %d", dominator)
			}
			continue
		}
		if c.verdict == "" || c.verdict == VerdictBaseline {
			if c.verdict == "" {
				c.verdict = VerdictFrontier
			}
			c.reason = fmt.Sprintf("feasible and non-dominated (fitness %.6g vs baseline 1)", c.fitness)
			if c.verdict == VerdictBaseline {
				c.reason = "unperturbed base scenario; scores normalize against it; on the Pareto frontier"
			}
		}
		frontier = append(frontier, c)
	}
	sort.SliceStable(frontier, func(i, j int) bool {
		a, b := frontier[i], frontier[j]
		if a.fitness != b.fitness {
			return a.fitness > b.fitness
		}
		return a.id < b.id
	})
	return frontier
}

// confirm re-evaluates the top frontier points under the discrete-event
// simulator and returns the confirmed metrics by candidate id. The twin
// picked the frontier; the simulator reports how far off its estimates
// were (FrontierPoint.TwinError) — membership is not revised, because the
// two tiers' metrics are not interchangeable within one frontier.
func (s *run) confirm(ctx context.Context, frontier []*candidate) (map[int]map[string]float64, error) {
	n := len(frontier)
	if ct := s.r.strategy.ConfirmTop; ct != nil && *ct < n {
		n = *ct
	}
	if n == 0 {
		return nil, nil
	}
	var cells []batch.Cell
	ids := make([]int, 0, n)
	for _, c := range frontier[:n] {
		cell, err := s.cellFor(len(cells), c.overrides, s.full, config.ExecDES)
		if err != nil {
			return nil, fmt.Errorf("search: confirmation cell: %w", err)
		}
		cells = append(cells, cell)
		ids = append(ids, c.id)
	}
	reps, err := s.opt.Executor.RunContext(ctx, cells, s.opt.Progress)
	if err != nil {
		return nil, fmt.Errorf("search: DES confirmation: %w", err)
	}
	out := make(map[int]map[string]float64, n)
	for i, id := range ids {
		out[id] = metricsOf(s.r.objs, reps[i])
	}
	return out, nil
}

// result assembles the final document.
func (s *run) result(frontier []*candidate, confirmed map[int]map[string]float64) *Result {
	spec := s.r.spec
	spec.Search = s.r.strategy // echo with defaults filled in
	res := &Result{
		Spec:      spec,
		Baseline:  s.baselines[s.full],
		Evaluated: s.evaluated,
		Confirmed: len(confirmed),
	}
	for _, c := range frontier {
		fp := FrontierPoint{
			Candidate: c.id,
			Overrides: c.overrides,
			Fitness:   c.fitness,
			Metrics:   c.metrics,
		}
		if des, ok := confirmed[c.id]; ok {
			fp.Confirmed = des
			fp.TwinError = make(map[string]float64, len(des))
			for _, o := range s.r.objs {
				est, got := c.metrics[o.metric], des[o.metric]
				fp.TwinError[o.metric] = (est - got) / math.Max(math.Abs(got), ratioEps)
			}
		}
		res.Frontier = append(res.Frontier, fp)
	}
	for _, c := range s.cands {
		d := Decision{
			Candidate:  c.id,
			Generation: c.gen,
			Parent:     c.parent,
			Overrides:  c.overrides,
			Metrics:    c.metrics,
			Scores:     c.scores,
			Fitness:    c.fitness,
			Feasible:   c.feasible,
			Verdict:    c.verdict,
			Reason:     c.reason,
		}
		if c.fidelity != s.full {
			d.Fidelity = c.fidelity
		}
		res.Decisions = append(res.Decisions, d)
	}
	return res
}
