// Package search adds optimization on top of the sweep engine: instead of
// exhaustively gridding override axes, a seeded search strategy (random
// sampling, successive halving, or a (μ+λ) evolutionary strategy) explores
// declared axes — continuous ranges, integer steps, categorical sets
// layered on config.OverridePaths — steered by a weighted multi-objective
// fitness spec with constraint caps. Candidates evaluate through the
// batch.Executor seam: the closed-form analytical twin is the cheap inner
// loop, and the Pareto-frontier survivors are re-evaluated under the
// discrete-event simulator for confirmation (mode-salted cache keys keep
// the two result families separate). Every run emits the frontier plus a
// machine-readable decision log explaining why each candidate was kept or
// culled, and a given (spec, seed) reproduces the identical trajectory.
package search

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/config"
)

// Algorithm names accepted by Strategy.Algorithm.
const (
	AlgoRandom    = "random"
	AlgoHalving   = "halving"
	AlgoEvolution = "evolution"
)

// MaxEvaluations bounds one spec's total planned candidate evaluations,
// for the same reason batch.MaxCells bounds sweep expansion: the ohmserve
// daemon validates untrusted specs at submission.
const MaxEvaluations = 4096

// minFidelity floors the instruction budget successive halving assigns to
// its cheapest rung; below this the twin's inputs stop resembling the
// workload the full-fidelity rung evaluates.
const minFidelity = 1000

// Axis declares one searchable override dimension on a dotted config path
// (see config.OverridePaths for the schema). Exactly one of Values
// (categorical set) or Min/Max (numeric range) must be given. Integer,
// uint and duration_ns paths default to Step 1; float paths with Step 0
// are continuous.
type Axis struct {
	// Path is the dotted override path this axis searches.
	Path string `json:"path"`
	// Values is a categorical set: candidates take exactly one of these.
	Values []interface{} `json:"values,omitempty"`
	// Min and Max bound a numeric range axis (inclusive on both ends).
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Step quantizes a range axis; 0 means the path type's default
	// (1 for integer-like paths, continuous for float paths).
	Step float64 `json:"step,omitempty"`
}

// Objective is one term of the fitness function: a report metric, the
// direction to push it, its weight in the scalarized fitness, and an
// optional feasibility cap.
type Objective struct {
	// Metric names a report metric; see MetricNames.
	Metric string `json:"metric"`
	// Goal is "max" or "min"; empty picks the metric's natural direction
	// (max for throughput, min for everything else).
	Goal string `json:"goal,omitempty"`
	// Weight scales this objective's contribution to the scalar fitness;
	// 0 means 1.
	Weight float64 `json:"weight,omitempty"`
	// Cap, when set, is a hard feasibility constraint on the raw metric:
	// a min-goal metric must stay <= cap, a max-goal metric >= cap.
	// A value exactly at the cap is feasible. Infeasible candidates are
	// logged and culled from the frontier but still steer the search.
	Cap *float64 `json:"cap,omitempty"`
}

// Strategy selects and parameterizes the search algorithm. Zero values
// take documented defaults, so {"algorithm":"random"} is a full strategy.
type Strategy struct {
	// Algorithm is "random", "halving" or "evolution"; empty means random.
	Algorithm string `json:"algorithm,omitempty"`
	// Seed seeds the search RNG: a given (spec, seed) reproduces the
	// identical candidate trajectory, frontier and decision log.
	Seed int64 `json:"seed,omitempty"`
	// Budget is the candidate count for random search and the initial
	// pool for successive halving; 0 means 32 (random) / 16 (halving).
	Budget int `json:"budget,omitempty"`
	// Generations bounds the evolutionary strategy; 0 means 4.
	Generations int `json:"generations,omitempty"`
	// Mu is the parent-elite size of the (μ+λ) strategy; 0 means 4.
	Mu int `json:"mu,omitempty"`
	// Lambda is the offspring count per generation; 0 means 8.
	Lambda int `json:"lambda,omitempty"`
	// Rungs is the successive-halving rung count; 0 means 3.
	Rungs int `json:"rungs,omitempty"`
	// Eta is the halving cull factor (keep ceil(n/eta) per rung) and the
	// fidelity growth factor between rungs; 0 means 2.
	Eta int `json:"eta,omitempty"`
	// ConfirmTop bounds how many frontier points are re-evaluated under
	// the discrete-event simulator after the search: nil confirms the
	// whole frontier, 0 disables confirmation, n > 0 confirms the top n
	// by fitness.
	ConfirmTop *int `json:"confirm_top,omitempty"`
}

// Spec is a complete optimizer job: the base scenario every candidate
// patches, the axes to search, the fitness objectives, and the strategy.
type Spec struct {
	// Base is the scenario candidates perturb ({preset, mode, overrides,
	// workload} — the ohmsim -spec shape). Its mode token's memory mode is
	// honored; the execution tier is chosen by the optimizer (analytical
	// inner loop, DES confirmation).
	Base config.Spec `json:"base"`
	// Axes are the searched dimensions; at least one.
	Axes []Axis `json:"axes"`
	// Objectives define fitness; at least one.
	Objectives []Objective `json:"objectives"`
	// Search selects and tunes the algorithm.
	Search Strategy `json:"search"`
}

// WithDefaults returns the strategy with zero fields filled in: the exact
// parameters a run with this strategy uses (Result.Spec echoes this form).
func (st Strategy) WithDefaults() Strategy {
	return st.withDefaults()
}

// withDefaults returns the strategy with zero fields filled in.
func (st Strategy) withDefaults() Strategy {
	if st.Algorithm == "" {
		st.Algorithm = AlgoRandom
	}
	if st.Budget <= 0 {
		if st.Algorithm == AlgoHalving {
			st.Budget = 16
		} else {
			st.Budget = 32
		}
	}
	if st.Generations <= 0 {
		st.Generations = 4
	}
	if st.Mu <= 0 {
		st.Mu = 4
	}
	if st.Lambda <= 0 {
		st.Lambda = 8
	}
	if st.Rungs <= 0 {
		st.Rungs = 3
	}
	if st.Eta <= 1 {
		st.Eta = 2
	}
	return st
}

// PlannedEvaluations is the number of twin evaluations the search will
// issue (baseline included, DES confirmations excluded): the admission
// charge and dry-run cost basis.
func (s Spec) PlannedEvaluations() int {
	st := s.Search.withDefaults()
	switch st.Algorithm {
	case AlgoEvolution:
		return 1 + st.Lambda*st.Generations
	case AlgoHalving:
		// Each rung also evaluates the baseline at its own fidelity so
		// rung ranking compares like against like; the full-fidelity
		// baseline is the shared candidate-0 evaluation.
		total, n := 0, st.Budget
		for r := 0; r < st.Rungs && n > 0; r++ {
			total += n
			n = (n + st.Eta - 1) / st.Eta
		}
		return st.Rungs + total
	default:
		return 1 + st.Budget
	}
}

// Validate checks the whole spec: the base scenario must resolve, every
// axis must name a known override path with a well-formed domain, and the
// objectives must reference known metrics. Errors name the offender.
func (s Spec) Validate() error {
	_, err := s.resolve()
	return err
}

// resolved is the validated, execution-ready form of a Spec.
type resolved struct {
	spec     Spec
	strategy Strategy
	scenario config.Scenario
	axes     []axisDomain
	objs     []objectiveSpec
}

// axisDomain is one axis with its sampling domain worked out.
type axisDomain struct {
	path string
	typ  string // OverridePath.Type
	// categorical
	values []interface{}
	// numeric range
	min, max, step float64
	continuous     bool
	n              int // distinct positions for quantized axes
}

// objectiveSpec is one objective with goal and weight resolved.
type objectiveSpec struct {
	metric   string // canonical name
	maximize bool
	weight   float64
	cap      *float64
}

func (s Spec) resolve() (*resolved, error) {
	st := s.Search.withDefaults()
	switch st.Algorithm {
	case AlgoRandom, AlgoHalving, AlgoEvolution:
	default:
		return nil, fmt.Errorf("search: unknown algorithm %q (random|halving|evolution)", st.Algorithm)
	}
	if n := s.PlannedEvaluations(); n > MaxEvaluations {
		return nil, fmt.Errorf("search: strategy plans %d evaluations, more than the %d cap", n, MaxEvaluations)
	}
	if st.ConfirmTop != nil && *st.ConfirmTop < 0 {
		return nil, fmt.Errorf("search: confirm_top must be >= 0")
	}

	sc, err := s.Base.Resolve()
	if err != nil {
		return nil, fmt.Errorf("search: base scenario: %w", err)
	}

	if len(s.Axes) == 0 {
		return nil, fmt.Errorf("search: no axes declared (at least one override path to search)")
	}
	types := make(map[string]string, 64)
	for _, p := range config.OverridePaths() {
		types[p.Path] = p.Type
	}
	axes := make([]axisDomain, 0, len(s.Axes))
	seen := make(map[string]struct{}, len(s.Axes))
	for _, a := range s.Axes {
		path := strings.ToLower(strings.TrimSpace(a.Path))
		typ, ok := types[path]
		if !ok {
			return nil, fmt.Errorf("search: axis %q: unknown override path (see ohmbatch -paths)", a.Path)
		}
		if _, dup := seen[path]; dup {
			return nil, fmt.Errorf("search: axis path %q declared twice", path)
		}
		seen[path] = struct{}{}
		if path == "max_instructions" && st.Algorithm == AlgoHalving {
			return nil, fmt.Errorf("search: axis %q conflicts with successive halving, which uses the instruction budget as its fidelity knob", path)
		}
		d := axisDomain{path: path, typ: typ}
		switch {
		case len(a.Values) > 0 && (a.Min != nil || a.Max != nil):
			return nil, fmt.Errorf("search: axis %q: declare values or min/max, not both", path)
		case len(a.Values) > 0:
			// Probe every categorical value against a scratch config so a
			// type mismatch fails at validation, not mid-search.
			for _, v := range a.Values {
				probe := sc.Config
				if err := probe.Set(path, v); err != nil {
					return nil, fmt.Errorf("search: axis %q value %v: %w", path, v, err)
				}
			}
			d.values = a.Values
			d.n = len(a.Values)
		case a.Min != nil && a.Max != nil:
			if typ == "bool" {
				return nil, fmt.Errorf("search: axis %q: bool paths need a values list, not a range", path)
			}
			d.min, d.max, d.step = *a.Min, *a.Max, a.Step
			if d.min > d.max {
				return nil, fmt.Errorf("search: axis %q: min %v > max %v", path, d.min, d.max)
			}
			if d.step < 0 {
				return nil, fmt.Errorf("search: axis %q: negative step", path)
			}
			if typ != "float" {
				// Integer-like paths quantize; a fractional step would
				// generate values Set round-trips inconsistently.
				if d.step == 0 {
					d.step = 1
				}
				if d.step != math.Trunc(d.step) {
					return nil, fmt.Errorf("search: axis %q: step %v must be an integer for %s paths", path, d.step, typ)
				}
				if (typ == "uint" || typ == "duration_ns") && d.min < 0 {
					return nil, fmt.Errorf("search: axis %q: min %v must be non-negative for %s paths", path, d.min, typ)
				}
			}
			if d.step > 0 {
				d.n = int(math.Floor((d.max-d.min)/d.step)) + 1
			} else {
				d.continuous = true
			}
			// Probe both endpoints.
			for _, v := range []float64{d.min, d.max} {
				probe := sc.Config
				if err := probe.Set(path, v); err != nil {
					return nil, fmt.Errorf("search: axis %q bound %v: %w", path, v, err)
				}
			}
		default:
			return nil, fmt.Errorf("search: axis %q: declare a values list or a min/max range", path)
		}
		axes = append(axes, d)
	}

	if len(s.Objectives) == 0 {
		return nil, fmt.Errorf("search: no objectives declared (at least one fitness metric)")
	}
	objs := make([]objectiveSpec, 0, len(s.Objectives))
	seenM := make(map[string]struct{}, len(s.Objectives))
	for _, o := range s.Objectives {
		metric, defMax, ok := canonicalMetric(o.Metric)
		if !ok {
			return nil, fmt.Errorf("search: objective metric %q: unknown (known: %s)", o.Metric, strings.Join(MetricNames(), ", "))
		}
		if _, dup := seenM[metric]; dup {
			return nil, fmt.Errorf("search: objective metric %q declared twice", metric)
		}
		seenM[metric] = struct{}{}
		os := objectiveSpec{metric: metric, maximize: defMax, weight: o.Weight, cap: o.Cap}
		switch o.Goal {
		case "":
		case "max":
			os.maximize = true
		case "min":
			os.maximize = false
		default:
			return nil, fmt.Errorf("search: objective %q: goal %q must be \"max\" or \"min\"", metric, o.Goal)
		}
		if os.weight < 0 {
			return nil, fmt.Errorf("search: objective %q: negative weight", metric)
		}
		if os.weight == 0 {
			os.weight = 1
		}
		objs = append(objs, os)
	}

	return &resolved{spec: s, strategy: st, scenario: sc, axes: axes, objs: objs}, nil
}
