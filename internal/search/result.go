package search

import (
	"encoding/json"
	"io"
)

// Verdict values in the decision log.
const (
	// VerdictBaseline marks candidate 0, the unperturbed base scenario.
	VerdictBaseline = "baseline"
	// VerdictFrontier marks a feasible, non-dominated, full-fidelity
	// candidate: a member of the Pareto frontier.
	VerdictFrontier = "frontier"
	// VerdictDominated marks a feasible candidate some frontier-eligible
	// candidate Pareto-dominates.
	VerdictDominated = "dominated"
	// VerdictInfeasible marks a candidate violating a constraint cap.
	VerdictInfeasible = "infeasible"
	// VerdictCulled marks a successive-halving candidate dropped at a
	// low-fidelity rung; it was never evaluated at full fidelity.
	VerdictCulled = "culled"
	// VerdictInvalid marks a sampled configuration Config.Validate
	// rejected; it was never evaluated.
	VerdictInvalid = "invalid"
	// VerdictDuplicate marks a candidate whose override set repeats an
	// earlier candidate's; it shares that candidate's evaluation.
	VerdictDuplicate = "duplicate"
)

// Decision is one line of the machine-readable decision log: what a
// candidate was, how it measured, and why it was kept or culled.
type Decision struct {
	// Candidate is the stable candidate id (0 is the baseline).
	Candidate int `json:"candidate"`
	// Generation is the batch the candidate was generated in: the rung
	// for successive halving, the generation for evolution, 0 for random
	// search and the baseline.
	Generation int `json:"generation"`
	// Parent is the elite candidate an evolutionary offspring mutated
	// from; absent for sampled candidates.
	Parent *int `json:"parent,omitempty"`
	// Overrides is the candidate's override patch over the base scenario.
	Overrides map[string]interface{} `json:"overrides"`
	// Fidelity is the per-warp instruction budget of the candidate's last
	// evaluation when it differs from the base config's (successive
	// halving evaluates early rungs cheaply).
	Fidelity int `json:"fidelity,omitempty"`
	// Metrics are the raw objective-metric values of the last (highest
	// fidelity) twin evaluation; absent for invalid candidates.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Scores are the baseline-relative per-objective scores (>1 improves
	// on the baseline).
	Scores map[string]float64 `json:"scores,omitempty"`
	// Fitness is the weighted scalar the search ranks by.
	Fitness float64 `json:"fitness"`
	// Feasible reports whether every constraint cap holds.
	Feasible bool `json:"feasible"`
	// Verdict is the outcome class; Reason is the human sentence.
	Verdict string `json:"verdict"`
	Reason  string `json:"reason"`
}

// FrontierPoint is one Pareto-optimal candidate, with its analytical
// metrics and (when confirmation ran) the DES-confirmed values.
type FrontierPoint struct {
	Candidate int                    `json:"candidate"`
	Overrides map[string]interface{} `json:"overrides"`
	Fitness   float64                `json:"fitness"`
	// Metrics are the twin's estimates the search ranked on.
	Metrics map[string]float64 `json:"metrics"`
	// Confirmed are the discrete-event simulator's values for the same
	// configuration; absent when confirmation was disabled or this point
	// fell outside confirm_top.
	Confirmed map[string]float64 `json:"confirmed,omitempty"`
	// TwinError is the twin's per-metric relative error against the
	// confirmed value: (estimate - confirmed) / confirmed.
	TwinError map[string]float64 `json:"twin_error,omitempty"`
}

// Result is an optimizer run's complete output. It is deterministic for a
// given (spec, seed): maps marshal with sorted keys and candidates are
// ordered by id, so two runs of one spec are byte-identical through
// WriteJSON.
type Result struct {
	// Spec echoes the request (defaults filled into the strategy) so the
	// result is self-describing and replayable.
	Spec Spec `json:"spec"`
	// Baseline is the base scenario's objective metrics (candidate 0).
	Baseline map[string]float64 `json:"baseline"`
	// Evaluated counts twin evaluations issued (baseline and repeated
	// halving rungs included; DES confirmations excluded).
	Evaluated int `json:"evaluated"`
	// Confirmed counts frontier points re-evaluated under the simulator.
	Confirmed int `json:"confirmed"`
	// Frontier is the Pareto frontier over feasible full-fidelity
	// candidates, ordered by fitness (best first; candidate id breaks
	// ties).
	Frontier []FrontierPoint `json:"frontier"`
	// Decisions is the complete decision log, ordered by candidate id.
	Decisions []Decision `json:"decisions"`
}

// WriteJSON writes the result in the canonical indented form every
// surface serves (ohmbatch -optimize, GET /v1/jobs/{id}/result); the
// bytes are identical wherever the same spec ran.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
