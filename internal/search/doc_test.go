package search

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestOptimizerDocCoversEverySpecField keeps docs/reference/optimizer.md
// honest the same way spec.md is kept honest for override paths: every
// wire field of the optimizer's spec, result and progress types — and
// every objective metric name — must appear in the reference page,
// either backtick-quoted or as a JSON key in an example block, so the
// documented schema cannot drift from the code.
func TestOptimizerDocCoversEverySpecField(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "reference", "optimizer.md"))
	if err != nil {
		t.Fatalf("reference page missing: %v", err)
	}
	doc := string(raw)
	covered := func(name string) bool {
		return strings.Contains(doc, "`"+name+"`") || strings.Contains(doc, `"`+name+`"`)
	}

	var fields []string
	for _, typ := range []reflect.Type{
		reflect.TypeOf(Spec{}),
		reflect.TypeOf(Axis{}),
		reflect.TypeOf(Objective{}),
		reflect.TypeOf(Strategy{}),
		reflect.TypeOf(Result{}),
		reflect.TypeOf(FrontierPoint{}),
		reflect.TypeOf(Decision{}),
		reflect.TypeOf(Progress{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			tag := typ.Field(i).Tag.Get("json")
			name := strings.Split(tag, ",")[0]
			if name == "" || name == "-" {
				continue
			}
			fields = append(fields, name)
		}
	}
	fields = append(fields, MetricNames()...)
	for alias := range metricAliases {
		fields = append(fields, alias)
	}
	for _, name := range fields {
		if !covered(name) {
			t.Errorf("docs/reference/optimizer.md does not document field or metric %q", name)
		}
	}
}
