package search

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/stats"
)

// testSpec is a small two-axis optimizer spec over the default scenario.
func testSpec(algo string, seed int64) Spec {
	min, max := 1.0, 8.0
	confirm := 1
	return Spec{
		// A short instruction budget keeps the DES confirmations cheap;
		// it also exercises layering axis overrides over base overrides.
		Base: config.Spec{Overrides: map[string]interface{}{"max_instructions": 4000}},
		Axes: []Axis{
			{Path: "optical.waveguides", Min: &min, Max: &max},
			{Path: "gpu.mshr_entries", Values: []interface{}{8.0, 16.0, 32.0}},
		},
		Objectives: []Objective{
			{Metric: "throughput"},
			{Metric: "energy_pj"},
		},
		Search: Strategy{
			Algorithm:   algo,
			Seed:        seed,
			Budget:      8,
			Generations: 3,
			Mu:          2,
			Lambda:      4,
			Rungs:       3,
			Eta:         2,
			ConfirmTop:  &confirm,
		},
	}
}

func localExec() batch.LocalExecutor {
	return batch.LocalExecutor{Runner: batch.NewRunner(2, batch.NewMemCache())}
}

func runSpec(t *testing.T, spec Spec, exec batch.Executor) *Result {
	t.Helper()
	res, err := Run(context.Background(), spec, Options{Executor: exec})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// shuffledExecutor evaluates cells in a scrambled order but returns
// reports positionally, simulating distributed workers completing in
// arbitrary order. A deterministic optimizer must be invariant to it.
type shuffledExecutor struct {
	inner batch.Executor
	rng   *rand.Rand
}

func (e shuffledExecutor) RunContext(ctx context.Context, cells []batch.Cell, p batch.Progress) ([]stats.Report, error) {
	perm := e.rng.Perm(len(cells))
	shuffled := make([]batch.Cell, len(cells))
	for i, j := range perm {
		shuffled[j] = cells[i]
	}
	reps, err := e.inner.RunContext(ctx, shuffled, p)
	if err != nil {
		return nil, err
	}
	out := make([]stats.Report, len(cells))
	for i, j := range perm {
		out[i] = reps[j]
	}
	return out, nil
}

// TestDeterminismByteIdentical pins the core reproducibility contract:
// the same (spec, seed) yields byte-identical result documents across
// fresh runner states and across shuffled worker completion order, for
// every algorithm.
func TestDeterminismByteIdentical(t *testing.T) {
	for _, algo := range []string{AlgoRandom, AlgoHalving, AlgoEvolution} {
		t.Run(algo, func(t *testing.T) {
			spec := testSpec(algo, 42)
			want := resultBytes(t, runSpec(t, spec, localExec()))
			again := resultBytes(t, runSpec(t, spec, localExec()))
			if !bytes.Equal(want, again) {
				t.Fatalf("same spec+seed produced different result bytes")
			}
			shuffled := resultBytes(t, runSpec(t, spec, shuffledExecutor{inner: localExec(), rng: rand.New(rand.NewSource(7))}))
			if !bytes.Equal(want, shuffled) {
				t.Fatalf("shuffled completion order changed the result bytes")
			}
			// A different seed must explore a different trajectory.
			other := resultBytes(t, runSpec(t, testSpec(algo, 43), localExec()))
			if bytes.Equal(want, other) {
				t.Fatalf("different seed reproduced the identical result")
			}
		})
	}
}

// TestResultShape checks the decision log and frontier invariants on a
// random-search run.
func TestResultShape(t *testing.T) {
	spec := testSpec(AlgoRandom, 1)
	res := runSpec(t, spec, localExec())

	if res.Decisions[0].Verdict != VerdictBaseline {
		t.Fatalf("decision 0 verdict = %q, want baseline", res.Decisions[0].Verdict)
	}
	if len(res.Decisions[0].Overrides) != 0 {
		t.Fatalf("baseline overrides = %v, want empty", res.Decisions[0].Overrides)
	}
	for i, d := range res.Decisions {
		if d.Candidate != i {
			t.Fatalf("decision %d carries candidate id %d", i, d.Candidate)
		}
		if d.Verdict == "" || d.Reason == "" {
			t.Fatalf("candidate %d: empty verdict (%q) or reason (%q)", i, d.Verdict, d.Reason)
		}
		for _, ax := range spec.Axes {
			if d.Candidate > 0 {
				if _, ok := d.Overrides[ax.Path]; !ok {
					t.Fatalf("candidate %d overrides missing axis %s", i, ax.Path)
				}
			}
		}
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier on an unconstrained search")
	}
	if res.Confirmed != 1 {
		t.Fatalf("Confirmed = %d, want 1 (confirm_top)", res.Confirmed)
	}
	top := res.Frontier[0]
	if len(top.Confirmed) == 0 || len(top.TwinError) == 0 {
		t.Fatal("top frontier point missing DES confirmation")
	}
	for i := 1; i < len(res.Frontier); i++ {
		if res.Frontier[i].Fitness > res.Frontier[i-1].Fitness {
			t.Fatal("frontier not ordered by fitness descending")
		}
	}
	if res.Evaluated == 0 || res.Evaluated > spec.PlannedEvaluations() {
		t.Fatalf("Evaluated = %d outside (0, planned=%d]", res.Evaluated, spec.PlannedEvaluations())
	}
}

// TestHalvingCullsAtLowFidelity checks successive halving both culls
// candidates at reduced instruction budgets and evaluates the survivors
// at full fidelity.
func TestHalvingCullsAtLowFidelity(t *testing.T) {
	spec := testSpec(AlgoHalving, 5)
	res := runSpec(t, spec, localExec())

	culled, full := 0, 0
	for _, d := range res.Decisions {
		switch d.Verdict {
		case VerdictCulled:
			culled++
			if d.Fidelity == 0 {
				t.Fatalf("culled candidate %d evaluated at full fidelity", d.Candidate)
			}
		case VerdictFrontier, VerdictDominated, VerdictInfeasible:
			full++
			if d.Fidelity != 0 {
				t.Fatalf("surviving candidate %d stuck at fidelity %d", d.Candidate, d.Fidelity)
			}
		}
	}
	if culled == 0 {
		t.Fatal("no candidates culled at low-fidelity rungs")
	}
	if full == 0 {
		t.Fatal("no candidates reached the full-fidelity rung")
	}
}

// TestEvolutionRecordsParents checks offspring carry their elite parent
// in the decision log.
func TestEvolutionRecordsParents(t *testing.T) {
	res := runSpec(t, testSpec(AlgoEvolution, 9), localExec())
	withParent := 0
	for _, d := range res.Decisions {
		if d.Parent != nil {
			withParent++
			if *d.Parent >= d.Candidate {
				t.Fatalf("candidate %d claims later parent %d", d.Candidate, *d.Parent)
			}
			if d.Generation == 0 {
				t.Fatalf("generation-0 candidate %d has a parent", d.Candidate)
			}
		}
	}
	if withParent == 0 {
		t.Fatal("no evolutionary offspring recorded a parent")
	}
}

// TestAllInfeasiblePopulation: an unsatisfiable cap empties the frontier
// but the decision log still explains every candidate.
func TestAllInfeasiblePopulation(t *testing.T) {
	spec := testSpec(AlgoRandom, 3)
	impossible := 1e12
	spec.Objectives[0].Cap = &impossible // ipc >= 1e12 is unsatisfiable
	res := runSpec(t, spec, localExec())

	if len(res.Frontier) != 0 {
		t.Fatalf("frontier has %d points with an unsatisfiable cap", len(res.Frontier))
	}
	if res.Confirmed != 0 {
		t.Fatalf("Confirmed = %d with an empty frontier", res.Confirmed)
	}
	for _, d := range res.Decisions {
		if d.Feasible {
			t.Fatalf("candidate %d feasible under an unsatisfiable cap", d.Candidate)
		}
		if d.Candidate > 0 && d.Verdict == VerdictInfeasible && !strings.Contains(d.Reason, "cap") {
			t.Fatalf("candidate %d infeasible reason does not name the cap: %q", d.Candidate, d.Reason)
		}
	}
}

// TestConstraintExactlyAtCapIsFeasible: a candidate measuring exactly at
// its cap is feasible, per the documented closed-constraint semantics.
func TestConstraintExactlyAtCapIsFeasible(t *testing.T) {
	// Learn the baseline's exact metrics first, then re-run with caps set
	// exactly at those values: the baseline must stay feasible.
	spec := testSpec(AlgoRandom, 3)
	spec.Search.Budget = 2
	probe := runSpec(t, spec, localExec())
	ipc := probe.Baseline["ipc"]
	energy := probe.Baseline["energy_pj"]

	spec.Objectives[0].Cap = &ipc    // max goal: ipc >= cap
	spec.Objectives[1].Cap = &energy // min goal: energy <= cap
	res := runSpec(t, spec, localExec())
	if !res.Decisions[0].Feasible {
		t.Fatal("baseline exactly at both caps judged infeasible")
	}
}

// TestSingleAxisSearch: a one-dimensional search runs end to end.
func TestSingleAxisSearch(t *testing.T) {
	noConfirm := 0
	spec := Spec{
		Base:       config.Spec{},
		Axes:       []Axis{{Path: "gpu.mshr_entries", Values: []interface{}{8.0, 32.0}}},
		Objectives: []Objective{{Metric: "p99_latency_ns"}},
		Search:     Strategy{Algorithm: AlgoRandom, Budget: 4, Seed: 2, ConfirmTop: &noConfirm},
	}
	res := runSpec(t, spec, localExec())
	if len(res.Frontier) == 0 {
		t.Fatal("single-axis search produced no frontier")
	}
	if res.Confirmed != 0 {
		t.Fatalf("Confirmed = %d with confirm_top 0", res.Confirmed)
	}
	// Only two distinct configurations exist; extra samples must be
	// marked duplicates, not re-evaluated.
	dups := 0
	for _, d := range res.Decisions {
		if d.Verdict == VerdictDuplicate {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("budget 4 over a 2-point axis recorded no duplicates")
	}
}

// TestCancellationPropagates: a cancelled context aborts the run with a
// context error.
func TestCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, testSpec(AlgoRandom, 1), Options{Executor: localExec()})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

// TestOnPhaseProgress: phase snapshots arrive in order with monotonic
// evaluation counts.
func TestOnPhaseProgress(t *testing.T) {
	var phases []Progress
	spec := testSpec(AlgoEvolution, 4)
	_, err := Run(context.Background(), spec, Options{
		Executor: localExec(),
		OnPhase:  func(p Progress) { phases = append(phases, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) < 3 || phases[0].Phase != "baseline" || phases[len(phases)-1].Phase != "confirm" {
		t.Fatalf("phase sequence %v", phases)
	}
	seenSearch := 0
	last := -1
	for _, p := range phases {
		if p.Evaluated < last {
			t.Fatalf("evaluated count went backwards: %v", phases)
		}
		last = p.Evaluated
		if p.Phase == "search" {
			seenSearch++
			if p.Generation != seenSearch || p.Generations != spec.Search.Generations {
				t.Fatalf("generation counters off: %+v", p)
			}
			if p.Planned != spec.PlannedEvaluations() {
				t.Fatalf("planned = %d, want %d", p.Planned, spec.PlannedEvaluations())
			}
		}
	}
	if seenSearch != spec.Search.Generations {
		t.Fatalf("saw %d search phases, want %d", seenSearch, spec.Search.Generations)
	}
}

// TestValidateRejects covers the validation matrix.
func TestValidateRejects(t *testing.T) {
	min, max := 1.0, 8.0
	neg := -1
	base := func() Spec { return testSpec(AlgoRandom, 0) }
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown algorithm", func(s *Spec) { s.Search.Algorithm = "anneal" }, "unknown algorithm"},
		{"no axes", func(s *Spec) { s.Axes = nil }, "no axes"},
		{"unknown path", func(s *Spec) { s.Axes[0].Path = "optical.nonesuch" }, "unknown override path"},
		{"duplicate path", func(s *Spec) { s.Axes[1] = s.Axes[0] }, "declared twice"},
		{"values and range", func(s *Spec) {
			s.Axes[0].Values = []interface{}{1.0}
		}, "not both"},
		{"no domain", func(s *Spec) { s.Axes[0] = Axis{Path: "optical.waveguides"} }, "values list or a min/max range"},
		{"min over max", func(s *Spec) { s.Axes[0].Min, s.Axes[0].Max = &max, &min }, "min"},
		{"bool range", func(s *Spec) {
			s.Axes[0] = Axis{Path: "dram.refresh_enable", Min: &min, Max: &max}
		}, "bool"},
		{"fractional int step", func(s *Spec) { s.Axes[0].Step = 0.5 }, "integer"},
		{"bad categorical value", func(s *Spec) {
			s.Axes[1].Values = []interface{}{"not-a-number"}
		}, "value"},
		{"no objectives", func(s *Spec) { s.Objectives = nil }, "no objectives"},
		{"unknown metric", func(s *Spec) { s.Objectives[0].Metric = "qps" }, "unknown"},
		{"duplicate metric", func(s *Spec) { s.Objectives[1].Metric = "ipc" }, "declared twice"},
		{"bad goal", func(s *Spec) { s.Objectives[0].Goal = "maximize" }, "goal"},
		{"negative weight", func(s *Spec) { s.Objectives[0].Weight = -1 }, "negative weight"},
		{"negative confirm_top", func(s *Spec) { s.Search.ConfirmTop = &neg }, "confirm_top"},
		{"over evaluation cap", func(s *Spec) { s.Search.Budget = MaxEvaluations + 1 }, "cap"},
		{"halving fidelity conflict", func(s *Spec) {
			s.Search.Algorithm = AlgoHalving
			s.Axes[0] = Axis{Path: "max_instructions", Min: &min, Max: &max}
		}, "fidelity"},
		{"bad base", func(s *Spec) { s.Base.Preset = "nonesuch" }, "base scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestPlannedEvaluations pins the admission-charge arithmetic.
func TestPlannedEvaluations(t *testing.T) {
	cases := []struct {
		st   Strategy
		want int
	}{
		{Strategy{Algorithm: AlgoRandom, Budget: 8}, 9},
		{Strategy{Algorithm: AlgoRandom}, 33},
		{Strategy{Algorithm: AlgoEvolution, Generations: 3, Lambda: 4}, 13},
		// halving: rungs + pool sizes 8+4+2, baseline per rung
		{Strategy{Algorithm: AlgoHalving, Budget: 8, Rungs: 3, Eta: 2}, 17},
	}
	for _, tc := range cases {
		got := Spec{Search: tc.st}.PlannedEvaluations()
		if got != tc.want {
			t.Errorf("PlannedEvaluations(%+v) = %d, want %d", tc.st, got, tc.want)
		}
	}
}

// TestExecutorRequired: Run without an executor fails fast.
func TestExecutorRequired(t *testing.T) {
	if _, err := Run(context.Background(), testSpec(AlgoRandom, 0), Options{}); err == nil {
		t.Fatal("Run accepted nil executor")
	}
}
