// Package ecc implements the SECDED (single-error-correct, double-error-
// detect) Hamming code used by the memory system. The two-level memory mode
// stores a cache line's tag, valid and dirty bits *inside* the ECC region of
// each DRAM line (Section III-B) — that trick only works if the ECC region
// actually has spare capacity, so this package implements the real (72,64)
// extended Hamming code and exposes how many metadata bits ride along.
package ecc

import (
	"fmt"
	"math/bits"
)

// Word is a 64-bit data word; Codeword carries it plus 8 check bits in the
// standard DDR ECC arrangement (one ECC byte per 8 data bytes).
type Word = uint64

// Codeword is an encoded (72,64) word: Data plus the 8-bit check byte.
type Codeword struct {
	Data  Word
	Check uint8
}

// Result classifies decode outcomes.
type Result int

const (
	// OK means no error was present.
	OK Result = iota
	// Corrected means exactly one bit (data or check) was flipped and has
	// been repaired.
	Corrected
	// Detected means an uncorrectable (double-bit) error was found.
	Detected
)

func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// position maps a logical bit index 1..72 (Hamming positions, 1-based) to
// either a data bit (0..63) or a check bit. Positions that are powers of
// two hold check bits; the rest hold data bits in order.
//
// The 8th check bit (index 7) is the overall parity bit making the code
// SECDED rather than just SEC.

// dataPositions[i] is the 1-based Hamming position of data bit i.
var dataPositions [64]uint8

// checkPositions[i] is the 1-based Hamming position of check bit i (i<7);
// check bit 7 is overall parity and has no Hamming position.
var checkPositions = [7]uint8{1, 2, 4, 8, 16, 32, 64}

func init() {
	pos := uint8(1)
	di := 0
	for di < 64 {
		if pos&(pos-1) != 0 { // not a power of two: data position
			dataPositions[di] = pos
			di++
		}
		pos++
	}
}

// syndromeOf computes the 7-bit Hamming syndrome over the 71 positioned
// bits (data in their positions, check bits in power-of-two positions).
func syndromeOf(data Word, check uint8) uint8 {
	var syn uint8
	for i := 0; i < 64; i++ {
		if data>>uint(i)&1 == 1 {
			syn ^= dataPositions[i]
		}
	}
	for i := 0; i < 7; i++ {
		if check>>uint(i)&1 == 1 {
			syn ^= checkPositions[i]
		}
	}
	return syn
}

// overallParity returns the parity of all 72 bits.
func overallParity(data Word, check uint8) uint8 {
	p := uint8(bits.OnesCount64(data)) ^ uint8(bits.OnesCount8(check))
	return p & 1
}

// Encode produces the codeword for a 64-bit data word.
func Encode(data Word) Codeword {
	var check uint8
	// Each Hamming check bit covers positions whose index has that bit set;
	// computing the syndrome of (data, 0) yields exactly the check bits.
	syn := syndromeOf(data, 0)
	for i := 0; i < 7; i++ {
		if syn&checkPositions[i] != 0 {
			check |= 1 << uint(i)
		}
	}
	// Overall parity (bit 7) makes total parity even.
	if overallParity(data, check) == 1 {
		check |= 1 << 7
	}
	return Codeword{Data: data, Check: check}
}

// Decode validates a possibly-corrupted codeword, repairing single-bit
// errors in place. It returns the repaired data and the classification.
func Decode(cw Codeword) (Word, Result) {
	syn := syndromeOf(cw.Data, cw.Check&0x7F)
	parity := overallParity(cw.Data, cw.Check)

	switch {
	case syn == 0 && parity == 0:
		return cw.Data, OK
	case parity == 1:
		// Odd parity: a single-bit error at Hamming position syn (or in
		// the overall parity bit itself when syn == 0).
		if syn == 0 {
			return cw.Data, Corrected // parity bit flipped; data intact
		}
		// Repair: find what the syndrome points at.
		for i := 0; i < 64; i++ {
			if dataPositions[i] == syn {
				return cw.Data ^ 1<<uint(i), Corrected
			}
		}
		// Syndrome points at a check bit: data intact.
		return cw.Data, Corrected
	default:
		// syn != 0 with even parity: two bits flipped — uncorrectable.
		return cw.Data, Detected
	}
}

// LineMetadata is the metadata the two-level memory mode hides in the ECC
// region of a DRAM cache line (Section III-B): 1 valid bit, 1 dirty bit and
// a handful of tag bits. A 128-byte line carries 16 ECC bytes, of which the
// (72,64) code strictly needs 16 check bytes — but DRAM ECC DIMMs
// over-provision by bank structure, and the paper's design (after [44])
// reclaims the slack. We model the published budget: up to 6 tag bits plus
// valid and dirty ride along per line.
type LineMetadata struct {
	Valid bool
	Dirty bool
	Tag   uint8 // up to TagBits bits
}

// TagBits is the maximum direct-map tag width the ECC region accommodates
// (Section III-B quotes 3-6 bits; we expose the full 6).
const TagBits = 6

// PackMetadata encodes the metadata into one byte for storage in the ECC
// region. It fails loudly on tags beyond the budget — a configuration that
// needs more tag bits cannot use the tag-in-ECC design.
func PackMetadata(m LineMetadata) (uint8, error) {
	if m.Tag >= 1<<TagBits {
		return 0, fmt.Errorf("ecc: tag %#x exceeds the %d-bit ECC budget", m.Tag, TagBits)
	}
	b := m.Tag
	if m.Valid {
		b |= 1 << 6
	}
	if m.Dirty {
		b |= 1 << 7
	}
	return b, nil
}

// UnpackMetadata decodes a metadata byte.
func UnpackMetadata(b uint8) LineMetadata {
	return LineMetadata{
		Valid: b&(1<<6) != 0,
		Dirty: b&(1<<7) != 0,
		Tag:   b & (1<<TagBits - 1),
	}
}

// TagBitsNeeded returns how many tag bits a direct-mapped DRAM cache of
// nSets sets over a capacity of totalLines lines requires. The two-level
// design is feasible only when this fits TagBits.
func TagBitsNeeded(totalLines, nSets int64) int {
	if nSets <= 0 || totalLines <= nSets {
		return 0
	}
	ways := (totalLines + nSets - 1) / nSets
	n := 0
	for v := ways - 1; v > 0; v >>= 1 {
		n++
	}
	return n
}
