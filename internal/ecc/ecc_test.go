package ecc

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, d := range []Word{0, 1, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEF00D, 1 << 63} {
		cw := Encode(d)
		got, res := Decode(cw)
		if res != OK || got != d {
			t.Errorf("Decode(Encode(%#x)) = (%#x, %s)", d, got, res)
		}
	}
}

func TestSingleBitDataErrorsCorrected(t *testing.T) {
	d := Word(0xA5A5_5A5A_0F0F_F0F0)
	cw := Encode(d)
	for bit := 0; bit < 64; bit++ {
		bad := cw
		bad.Data ^= 1 << uint(bit)
		got, res := Decode(bad)
		if res != Corrected {
			t.Fatalf("bit %d: result %s, want corrected", bit, res)
		}
		if got != d {
			t.Fatalf("bit %d: repaired to %#x, want %#x", bit, got, d)
		}
	}
}

func TestSingleBitCheckErrorsCorrected(t *testing.T) {
	d := Word(0x0123_4567_89AB_CDEF)
	cw := Encode(d)
	for bit := 0; bit < 8; bit++ {
		bad := cw
		bad.Check ^= 1 << uint(bit)
		got, res := Decode(bad)
		if res != Corrected || got != d {
			t.Fatalf("check bit %d: (%#x, %s)", bit, got, res)
		}
	}
}

func TestDoubleBitErrorsDetected(t *testing.T) {
	d := Word(0xFEED_FACE_BEEF_1234)
	cw := Encode(d)
	cases := [][2]int{{0, 1}, {5, 40}, {63, 62}, {0, 63}, {17, 31}}
	for _, c := range cases {
		bad := cw
		bad.Data ^= 1 << uint(c[0])
		bad.Data ^= 1 << uint(c[1])
		_, res := Decode(bad)
		if res != Detected {
			t.Fatalf("double flip %v: result %s, want detected", c, res)
		}
	}
	// One data + one check bit also detects.
	bad := cw
	bad.Data ^= 1 << 9
	bad.Check ^= 1 << 2
	if _, res := Decode(bad); res != Detected {
		t.Fatalf("data+check double flip: %s", res)
	}
}

func TestResultString(t *testing.T) {
	for _, r := range []Result{OK, Corrected, Detected, Result(9)} {
		if r.String() == "" {
			t.Fatal("empty result string")
		}
	}
}

// Property: round trip is identity; every single-bit flip is corrected to
// the original word.
func TestSECDEDProperty(t *testing.T) {
	f := func(d Word, bit uint8) bool {
		cw := Encode(d)
		if got, res := Decode(cw); res != OK || got != d {
			return false
		}
		bad := cw
		if bit%9 == 8 {
			bad.Check ^= 1 << uint(bit%8)
		} else {
			bad.Data ^= 1 << uint(bit%64)
		}
		got, res := Decode(bad)
		return res == Corrected && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: any two distinct data-bit flips are detected, never silently
// accepted or miscorrected into valid data.
func TestDoubleErrorProperty(t *testing.T) {
	f := func(d Word, a, b uint8) bool {
		i, j := int(a%64), int(b%64)
		if i == j {
			return true
		}
		bad := Encode(d)
		bad.Data ^= 1 << uint(i)
		bad.Data ^= 1 << uint(j)
		_, res := Decode(bad)
		return res == Detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataPackRoundTrip(t *testing.T) {
	for _, m := range []LineMetadata{
		{},
		{Valid: true},
		{Dirty: true},
		{Valid: true, Dirty: true, Tag: 63},
		{Valid: true, Tag: 5},
	} {
		b, err := PackMetadata(m)
		if err != nil {
			t.Fatalf("pack %+v: %v", m, err)
		}
		if got := UnpackMetadata(b); got != m {
			t.Fatalf("round trip %+v -> %+v", m, got)
		}
	}
}

func TestMetadataTagBudget(t *testing.T) {
	if _, err := PackMetadata(LineMetadata{Tag: 64}); err == nil {
		t.Fatal("tag beyond the ECC budget must be rejected")
	}
}

func TestTagBitsNeeded(t *testing.T) {
	cases := []struct {
		lines, sets int64
		want        int
	}{
		{64, 64, 0},   // direct map covers everything: no tag
		{128, 64, 1},  // 2 ways' worth of aliasing
		{4096, 64, 6}, // 64:1 => 6 bits (the paper's 1:64 two-level ratio)
		{512, 64, 3},  // 8:1 => 3 bits (the paper's "3~6 tag bits" low end)
		{0, 64, 0},
		{64, 0, 0},
	}
	for _, c := range cases {
		if got := TagBitsNeeded(c.lines, c.sets); got != c.want {
			t.Errorf("TagBitsNeeded(%d,%d) = %d, want %d", c.lines, c.sets, got, c.want)
		}
	}
}

func TestPaperRatiosFitECCBudget(t *testing.T) {
	// The paper's two-level capacity ratios must fit the tag-in-ECC design:
	// 1:8 needs 3 bits, 1:64 needs 6 — both within TagBits.
	for _, ratio := range []int64{8, 64} {
		need := TagBitsNeeded(64*ratio, 64)
		if need > TagBits {
			t.Errorf("ratio 1:%d needs %d tag bits, exceeding the %d-bit ECC budget",
				ratio, need, TagBits)
		}
	}
}
