// Package config holds every configuration parameter of the Ohm-GPU model.
// The defaults reproduce Table I (system configuration) and Table II
// (workload characteristics) of the paper. All simulator components receive
// their parameters from this package so that an experiment is fully
// described by one Config value.
package config

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Platform identifies one of the seven evaluated GPU memory platforms
// (Section VI, "Heterogeneous memory platforms").
type Platform int

const (
	// Origin is the baseline GPU with a DRAM-only memory system and
	// electrical channels; large footprints spill to host memory over PCIe.
	Origin Platform = iota
	// Hetero is DRAM+XPoint over electrical channels; the memory controller
	// copies migration data itself.
	Hetero
	// OhmBase is DRAM+XPoint over the optical channel, still with
	// controller-driven migration.
	OhmBase
	// AutoRW adds the auto-read/write (snarf) function to OhmBase.
	AutoRW
	// OhmWOM adds swap and reverse-write with WOM-coded dual routes.
	OhmWOM
	// OhmBW replaces WOM coding with half-coupled-MRR transmitters,
	// restoring full request bandwidth at 4x laser power.
	OhmBW
	// Oracle is an ideal all-DRAM memory of the full heterogeneous capacity
	// on the optical channel; no migration exists.
	Oracle
)

var platformNames = [...]string{"Origin", "Hetero", "Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle"}

// String returns the paper's platform name.
func (p Platform) String() string {
	if p < 0 || int(p) >= len(platformNames) {
		return fmt.Sprintf("Platform(%d)", int(p))
	}
	return platformNames[p]
}

// AllPlatforms lists the seven platforms in the paper's order.
func AllPlatforms() []Platform {
	return []Platform{Origin, Hetero, OhmBase, AutoRW, OhmWOM, OhmBW, Oracle}
}

// ParsePlatform resolves a platform from its paper name (case-insensitive,
// "-" and "_" interchangeable), via the preset registry: "origin",
// "hetero", "ohm-base", "auto-rw", "ohm-wom", "ohm-bw", "oracle".
func ParsePlatform(name string) (Platform, error) {
	if p, ok := LookupPreset(name); ok {
		return p.Platform, nil
	}
	return 0, fmt.Errorf("config: unknown platform %q (%s)",
		name, strings.Join(PresetNames(), "|"))
}

// ParseMode resolves a memory mode from its name: "planar", "two-level"
// (also "twolevel" or "2lm").
func ParseMode(name string) (MemMode, error) {
	switch normalizeName(name) {
	case "planar":
		return Planar, nil
	case "two-level", "twolevel", "2lm":
		return TwoLevel, nil
	}
	return 0, fmt.Errorf("config: unknown memory mode %q (planar|two-level)", name)
}

// normalizeName lower-cases and folds "_" into "-" for flag-friendly names.
func normalizeName(s string) string {
	return strings.ReplaceAll(strings.ToLower(s), "_", "-")
}

// ExecMode selects how a scenario is evaluated: by the discrete-event
// simulator (the default) or by the closed-form analytical twin
// (internal/twin), which estimates the same report shape without running
// the event loop. ExecMode is deliberately not a Config field: it changes
// how a config is evaluated, not what is evaluated, so DES cache keys and
// golden outputs are untouched by its existence.
type ExecMode int

const (
	// ExecDES runs the discrete-event simulator.
	ExecDES ExecMode = iota
	// ExecAnalytical runs the closed-form analytical twin.
	ExecAnalytical
)

func (e ExecMode) String() string {
	if e == ExecAnalytical {
		return "analytical"
	}
	return "des"
}

// AllExecModes lists both execution modes, DES first.
func AllExecModes() []ExecMode { return []ExecMode{ExecDES, ExecAnalytical} }

// ParseExecMode resolves an execution mode name: "des" (also "simulate")
// or "analytical" (also "twin").
func ParseExecMode(name string) (ExecMode, error) {
	switch normalizeName(name) {
	case "des", "simulate":
		return ExecDES, nil
	case "analytical", "twin":
		return ExecAnalytical, nil
	}
	return 0, fmt.Errorf("config: unknown execution mode %q (des|analytical)", name)
}

// ParseModes resolves a combined mode token: a memory mode, an execution
// mode, or both joined with "+" in either order. Accepted forms include
// "planar", "two-level", "analytical" (planar memory, analytical
// execution), "two-level+analytical" and "planar+des". The memory mode
// defaults to planar when only an execution token is given.
func ParseModes(name string) (MemMode, ExecMode, error) {
	var (
		mem     MemMode
		exec    ExecMode
		haveMem bool
	)
	for _, part := range strings.Split(name, "+") {
		if e, err := ParseExecMode(part); err == nil {
			if e == ExecAnalytical {
				exec = ExecAnalytical
			}
			continue
		}
		m, err := ParseMode(part)
		if err != nil {
			return 0, 0, fmt.Errorf("config: unknown memory mode %q (planar|two-level, optionally +analytical)", name)
		}
		if haveMem && m != mem {
			return 0, 0, fmt.Errorf("config: mode %q names two memory modes", name)
		}
		mem, haveMem = m, true
	}
	return mem, exec, nil
}

// ModeString renders the canonical combined mode token ParseModes accepts:
// the bare memory mode for DES, "analytical" for planar+analytical, and
// "two-level+analytical" otherwise.
func ModeString(m MemMode, e ExecMode) string {
	if e != ExecAnalytical {
		return m.String()
	}
	if m == Planar {
		return "analytical"
	}
	return m.String() + "+analytical"
}

// OpticalPlatforms lists the platforms whose memory channel is optical.
func OpticalPlatforms() []Platform {
	return []Platform{OhmBase, AutoRW, OhmWOM, OhmBW, Oracle}
}

// Optical reports whether the platform uses the optical channel.
func (p Platform) Optical() bool { return p != Origin && p != Hetero }

// Heterogeneous reports whether the platform mixes DRAM and XPoint.
func (p Platform) Heterogeneous() bool {
	return p == Hetero || p == OhmBase || p == AutoRW || p == OhmWOM || p == OhmBW
}

// MemMode selects the heterogeneous memory operational mode (Section III-B).
type MemMode int

const (
	// Planar exposes DRAM and XPoint in one unified address space and swaps
	// hot XPoint pages with their group's DRAM page.
	Planar MemMode = iota
	// TwoLevel uses DRAM as a direct-mapped inclusive cache of XPoint with
	// tag metadata stored in the ECC region of each DRAM cache line.
	TwoLevel
)

func (m MemMode) String() string {
	if m == Planar {
		return "planar"
	}
	return "two-level"
}

// AllModes lists both operational modes.
func AllModes() []MemMode { return []MemMode{Planar, TwoLevel} }

// GPUConfig reproduces the "GPU configuration" column of Table I.
type GPUConfig struct {
	SMs           int     // streaming multiprocessors
	CoreFreqHz    float64 // SM clock
	WarpsPerSM    int     // resident warps per SM
	WarpSize      int     // threads per warp (lockstep group)
	L1SizeBytes   int     // private L1D per SM
	L1Ways        int
	L2SizeBytes   int // shared L2
	L2Ways        int
	LineBytes     int      // cache line / memory access granularity
	MemCtrls      int      // GPU-side memory controllers
	InterconnectL sim.Time // SM<->L2 interconnect hop latency
	// MSHREntries enables L2-level miss-status-holding registers when
	// positive: concurrent misses to the same line coalesce into one memory
	// request. Off by default so the published calibration is unchanged;
	// the ablation experiments quantify its effect.
	MSHREntries int
	// NoCDetailed replaces the constant SM<->L2 interconnect latency with
	// the contention-aware crossbar of internal/noc. Off by default (same
	// reason as MSHREntries); the ablation quantifies it.
	NoCDetailed bool
	L2Latency   sim.Time // L2 lookup latency
	L1Latency   sim.Time // L1 lookup latency
}

// CacheScale shrinks the Table I cache capacities to track the memory-
// system scale-down (MemScale). Without it the unscaled 6MB L2 would
// swallow the scaled working sets entirely and starve the memory system —
// the paper's Table II APKI values are measured at the memory controllers,
// i.e. with caches that filter very little of these workloads.
const CacheScale = 16

// DefaultGPU returns Table I's GPU configuration (16 SMs @ 1.2 GHz, 48KB
// 6-way L1 and 6MB 8-way shared L2 — both divided by CacheScale — and 6
// memory controllers).
func DefaultGPU() GPUConfig {
	return GPUConfig{
		SMs:           16,
		CoreFreqHz:    1.2e9,
		WarpsPerSM:    8,
		WarpSize:      32,
		L1SizeBytes:   48 << 10 / CacheScale,
		L1Ways:        6,
		L2SizeBytes:   6 << 20 / CacheScale,
		L2Ways:        8,
		LineBytes:     128,
		MemCtrls:      6,
		InterconnectL: 20 * sim.Nanosecond,
		L2Latency:     10 * sim.Nanosecond,
		L1Latency:     1 * sim.Nanosecond,
	}
}

// DRAMConfig reproduces the DRAM timing rows of Table I.
type DRAMConfig struct {
	TRCD     sim.Time // row-to-column delay (25 ns in Table I)
	TRP      sim.Time // precharge (10 ns)
	TCL      sim.Time // CAS latency (11 ns)
	TRRD     sim.Time // rank-to-rank / activate-to-activate delay (5 ns)
	Banks    int      // banks per device
	RowBytes int      // row-buffer size
	BurstNs  sim.Time // data burst time for one cache line on the device bus
	// RefreshInterval (tREFI) and RefreshDuration (tRFC) model all-bank
	// refresh: every interval, each bank is unavailable for the duration.
	// RefreshEnable gates the model (off by default: refresh costs ~1-2%
	// and the published calibration was done without it; the ablation
	// experiments quantify it).
	RefreshEnable   bool
	RefreshInterval sim.Time
	RefreshDuration sim.Time
}

// DefaultDRAM returns Table I's DRAM timing.
func DefaultDRAM() DRAMConfig {
	return DRAMConfig{
		TRCD:            25 * sim.Nanosecond,
		TRP:             10 * sim.Nanosecond,
		TCL:             11 * sim.Nanosecond,
		TRRD:            5 * sim.Nanosecond,
		Banks:           16,
		RowBytes:        2 << 10,
		BurstNs:         4 * sim.Nanosecond,
		RefreshInterval: 7800 * sim.Nanosecond, // tREFI
		RefreshDuration: 350 * sim.Nanosecond,  // tRFC
	}
}

// XPointConfig reproduces the PRAM rows of Table I plus logic-layer
// controller parameters (Section III-A).
type XPointConfig struct {
	ReadLatency  sim.Time // 190 ns (Table I, PRAM read)
	WriteLatency sim.Time // 763 ns (Table I, PRAM write)
	ReadBufEnt   int      // read buffer entries in the XPoint controller
	WriteBufEnt  int      // persistent write buffer entries
	Partitions   int      // internal media parallelism (concurrent accesses)
	StartGapK    int      // Start-Gap: move the gap every K writes
	WearLimit    uint64   // per-line endurance budget (writes)
	RegisterKB   int      // device-front register buffer (16 KB, Section III-A)
}

// DefaultXPoint returns Table I's XPoint latencies with controller defaults.
func DefaultXPoint() XPointConfig {
	return XPointConfig{
		ReadLatency:  190 * sim.Nanosecond,
		WriteLatency: 763 * sim.Nanosecond,
		ReadBufEnt:   64,
		WriteBufEnt:  64,
		Partitions:   32,
		StartGapK:    100,
		WearLimit:    1_000_000,
		RegisterKB:   16,
	}
}

// OpticalConfig reproduces the "Optical channel configuration" and "Optical
// power model" sections of Table I.
type OpticalConfig struct {
	ChannelBits     int     // total channel width (96 bits)
	FreqHz          float64 // 30 GHz
	VirtualChannels int     // 6 (static channel division, one per MC)
	Waveguides      int     // number of physical waveguides (sensitivity knob)
	// DynamicDivision enables the wavelength-borrowing strategy of [38]
	// (Table I's default is static division): a controller whose own
	// virtual channel is backlogged may borrow the least-loaded idle VC,
	// paying an extra demux switch. An ablation experiment quantifies it.
	DynamicDivision bool
	// BandwidthScale divides effective channel bandwidth to match the
	// footprint scale-down (the paper scales memory 12x for simulation
	// speed; we scale footprints further and rescale the channel so the
	// demand:bandwidth ratio — the regime under study — is preserved).
	BandwidthScale float64

	// Power model (Table I, right column).
	MRRTuningFJPerBit float64 // 200 fJ/bit
	FilterDropDB      float64 // 1.5 dB
	WaveguideLossDBcm float64 // 0.3 dB/cm
	SplitterLossDB    float64 // 0.2 dB
	DetectorLossDB    float64 // 0.1 dB
	ModulatorLossDB   float64 // up to 1 dB
	WaveguideCM       float64 // modelled waveguide length in cm
	LaserPowerMW      float64 // per-wavelength laser power (0.73 mW default)
	LaserBoost        float64 // multiplier (2x Auto-rw/Ohm-WOM, 4x Ohm-BW)

	// DemuxSwitch is the photonic demultiplexer arbitration switch time that
	// gates a memory device onto a virtual channel.
	DemuxSwitch sim.Time
	// HCMRRTune is the half-coupled MRR resonance tuning time (500 ps, [53]).
	HCMRRTune sim.Time
	// SerDesLatency is the serializer/deserializer latency at each endpoint.
	SerDesLatency sim.Time
}

// DefaultOptical returns Table I's optical channel configuration: one
// waveguide, 96-bit channel at 30 GHz statically divided into six 16-bit
// virtual channels, and the published power model constants.
func DefaultOptical() OpticalConfig {
	return OpticalConfig{
		ChannelBits:       96,
		FreqHz:            30e9,
		VirtualChannels:   6,
		Waveguides:        1,
		BandwidthScale:    10,
		MRRTuningFJPerBit: 200,
		FilterDropDB:      1.5,
		WaveguideLossDBcm: 0.3,
		SplitterLossDB:    0.2,
		DetectorLossDB:    0.1,
		ModulatorLossDB:   1.0,
		WaveguideCM:       2.0,
		LaserPowerMW:      0.73,
		LaserBoost:        1.0,
		DemuxSwitch:       100 * sim.Picosecond,
		HCMRRTune:         500 * sim.Picosecond,
		SerDesLatency:     1 * sim.Nanosecond,
	}
}

// ElectricalConfig reproduces Table I's electrical channel row: 6 channels,
// 32-bit each, 15 GHz.
type ElectricalConfig struct {
	Channels int
	LaneBits int
	FreqHz   float64
	PJPerBit float64 // energy per transferred bit (DMA power basis)
	// BandwidthScale mirrors OpticalConfig.BandwidthScale so the default
	// optical and electrical channels stay bandwidth-equivalent.
	BandwidthScale float64
}

// DefaultElectrical returns Table I's electrical channel configuration.
func DefaultElectrical() ElectricalConfig {
	return ElectricalConfig{Channels: 6, LaneBits: 32, FreqHz: 15e9, PJPerBit: 0.7, BandwidthScale: 10}
}

// MemoryConfig sizes the heterogeneous memory. The paper scales footprints
// to 8 GB and GPU memory down 12x for simulation speed; we scale further for
// unit-test speed but preserve the DRAM:XPoint capacity ratios (1:8 planar,
// 1:64 two-level).
type MemoryConfig struct {
	Mode      MemMode
	DRAMBytes int64 // DRAM capacity
	// BaselineDRAMBytes is the heterogeneous baseline's DRAM capacity; the
	// workload generator sizes footprints against it so all platforms in a
	// mode run the identical trace (Oracle's larger DRAM must not inflate
	// its workload).
	BaselineDRAMBytes int64
	XPointBytes       int64 // XPoint capacity (0 for Origin/Oracle)
	PageBytes         int   // migration granularity (planar groups, 2-level lines)
	HotThreshold      int   // planar: accesses within the epoch that mark a page hot
	HotEpoch          sim.Time
	Devices           int // number of memory devices on the channel (<=24, Table III)
}

// MemScale is the capacity scale-down versus the paper's testbed (which
// itself scales memory 12x and footprints to 8GB for simulation speed). At
// 256x the scaled footprints (tens of MB) remain far larger than the 6MB
// L2, preserving the cache-filtering behaviour the evaluation depends on.
const MemScale = 256

// FootprintUnit is the byte value of one Workload.FootprintScale unit: the
// paper's 8GB-class footprints scale to the 12-40MB range, always well
// above the 6MB L2 so the memory system stays exercised.
const FootprintUnit = 8 << 20

// DefaultMemory returns the scaled memory configuration for a mode,
// preserving Table I/III's capacities: planar uses twelve 1GB DRAM DIMMs
// (1:8 => 108GB class), two-level six 1GB DIMMs (1:64 => 390GB class).
func DefaultMemory(mode MemMode) MemoryConfig {
	dram := int64(12<<30) / MemScale
	if mode == TwoLevel {
		dram /= 2 // Table III: 1GB x 6 instead of 1GB x 12
	}
	m := MemoryConfig{
		Mode:              mode,
		DRAMBytes:         dram,
		BaselineDRAMBytes: dram,
		PageBytes:         4 << 10,
		HotThreshold:      4,
		HotEpoch:          50 * sim.Microsecond,
		Devices:           24,
	}
	switch mode {
	case Planar:
		m.XPointBytes = dram * 8
	case TwoLevel:
		m.XPointBytes = dram * 64
	}
	return m
}

// Config is a complete experiment description.
type Config struct {
	Platform   Platform
	Mode       MemMode
	GPU        GPUConfig
	DRAM       DRAMConfig
	XPoint     XPointConfig
	Optical    OpticalConfig
	Electrical ElectricalConfig
	Memory     MemoryConfig
	Seed       uint64
	// MaxInstructions bounds the per-warp trace length (simulation budget).
	MaxInstructions int
}

// Default assembles the full Table I configuration for a platform and mode.
// Platform-specific adjustments (laser boost, Oracle capacity) are applied
// here so callers get a runnable config in one call.
func Default(p Platform, mode MemMode) Config {
	c := Config{
		Platform:        p,
		Mode:            mode,
		GPU:             DefaultGPU(),
		DRAM:            DefaultDRAM(),
		XPoint:          DefaultXPoint(),
		Optical:         DefaultOptical(),
		Electrical:      DefaultElectrical(),
		Memory:          DefaultMemory(mode),
		Seed:            0x0A11CE,
		MaxInstructions: 20000,
	}
	switch p {
	case Origin:
		// DRAM-only, small capacity: the paper scales the K80's 24GB down
		// 12x to 2GB, below every footprint, so Origin spills over PCIe.
		c.Memory.XPointBytes = 0
		c.Memory.DRAMBytes = int64(1<<30) / MemScale
	case Oracle:
		// Ideal: all-DRAM with the full heterogeneous capacity.
		c.Memory.DRAMBytes += c.Memory.XPointBytes
		c.Memory.XPointBytes = 0
	case AutoRW, OhmWOM:
		c.Optical.LaserBoost = 2
	case OhmBW:
		c.Optical.LaserBoost = 4
	}
	return c
}

// Validate checks internal consistency; every experiment validates its
// config before running so a typo fails loudly rather than skewing results.
func (c *Config) Validate() error {
	if c.GPU.SMs <= 0 || c.GPU.WarpsPerSM <= 0 || c.GPU.WarpSize <= 0 {
		return fmt.Errorf("config: GPU dimensions must be positive: %+v", c.GPU)
	}
	if c.GPU.LineBytes <= 0 || c.GPU.LineBytes&(c.GPU.LineBytes-1) != 0 {
		return fmt.Errorf("config: line size %d must be a positive power of two", c.GPU.LineBytes)
	}
	if c.GPU.MemCtrls <= 0 {
		return fmt.Errorf("config: need at least one memory controller")
	}
	if c.Optical.VirtualChannels != c.GPU.MemCtrls && c.Platform.Optical() {
		return fmt.Errorf("config: static channel division requires VCs (%d) == MCs (%d)",
			c.Optical.VirtualChannels, c.GPU.MemCtrls)
	}
	if c.Optical.Waveguides <= 0 {
		return fmt.Errorf("config: waveguides must be positive")
	}
	if c.Memory.DRAMBytes <= 0 {
		return fmt.Errorf("config: DRAM capacity must be positive")
	}
	if c.Platform.Heterogeneous() && c.Memory.XPointBytes <= 0 {
		return fmt.Errorf("config: %s requires XPoint capacity", c.Platform)
	}
	if c.Memory.PageBytes <= 0 || c.Memory.PageBytes%c.GPU.LineBytes != 0 {
		return fmt.Errorf("config: page size %d must be a positive multiple of line size %d",
			c.Memory.PageBytes, c.GPU.LineBytes)
	}
	if c.XPoint.ReadLatency <= 0 || c.XPoint.WriteLatency <= 0 {
		return fmt.Errorf("config: XPoint latencies must be positive")
	}
	if c.DRAM.Banks <= 0 {
		return fmt.Errorf("config: DRAM banks must be positive")
	}
	if c.MaxInstructions <= 0 {
		return fmt.Errorf("config: MaxInstructions must be positive")
	}
	// Bound the total trace budget: every warp pre-allocates its
	// instruction stream, and all three factors are override-reachable from
	// untrusted specs, so an unbounded product would let a small document
	// demand a terabyte-class allocation (the cap still allows >10,000x the
	// default 16x8x20000 budget).
	if c.GPU.SMs > MaxTraceInstructions ||
		c.GPU.WarpsPerSM > MaxTraceInstructions/c.GPU.SMs ||
		c.MaxInstructions > MaxTraceInstructions/(c.GPU.SMs*c.GPU.WarpsPerSM) {
		return fmt.Errorf("config: trace budget %d SMs x %d warps x %d instructions exceeds %d total instructions",
			c.GPU.SMs, c.GPU.WarpsPerSM, c.MaxInstructions, MaxTraceInstructions)
	}
	return nil
}

// MaxTraceInstructions caps SMs x WarpsPerSM x MaxInstructions, the number
// of trace instructions a single cell may allocate.
const MaxTraceInstructions = 1 << 28

// OpticalChannelBandwidth returns bytes/second of the whole optical channel
// (all waveguides).
func (c *Config) OpticalChannelBandwidth() float64 {
	return float64(c.Optical.ChannelBits) / 8 * c.Optical.FreqHz * float64(c.Optical.Waveguides)
}

// ElectricalChannelBandwidth returns bytes/second of all electrical channels.
func (c *Config) ElectricalChannelBandwidth() float64 {
	e := c.Electrical
	return float64(e.Channels*e.LaneBits) / 8 * e.FreqHz
}
