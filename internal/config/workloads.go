package config

import "fmt"

// Workload describes one evaluated application per Table II. APKI is memory
// accesses per kilo-instruction observed at the memory controller; ReadRatio
// is the read fraction of those accesses. FootprintScale and HotSkew shape
// the synthetic trace: footprint relative to DRAM capacity (so >1 forces
// XPoint/host residency) and the Zipf skew of the address stream (higher =
// hotter pages = more migration opportunities). The JSON form is the wire
// shape of inline custom workloads in scenario specs.
type Workload struct {
	Name           string  `json:"name"`
	APKI           int     `json:"apki"`
	ReadRatio      float64 `json:"read_ratio"`
	Suite          string  `json:"suite,omitempty"`         // Rodinia / Polybench / GraphBIG per Table II
	FootprintScale float64 `json:"footprint_scale"`         // working-set bytes / DRAM capacity
	HotSkew        float64 `json:"hot_skew"`                // Zipf skew of the page-level address stream
	ComputeBound   bool    `json:"compute_bound,omitempty"` // compute- vs memory-intensive classification
}

// MaxFootprintScale bounds inline workload footprints (units of
// FootprintUnit, i.e. 8 GiB at the cap). Trace generation allocates
// per-page state, so an unbounded scale would let a small untrusted spec
// demand a terabyte-class allocation inside the ohmserve daemon.
const MaxFootprintScale = 1024

// Validate checks an inline workload definition; spec resolution rejects
// definitions the trace generator cannot calibrate to (or cannot afford).
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: name is required")
	}
	if w.APKI <= 0 {
		return fmt.Errorf("workload %q: apki must be positive, got %d", w.Name, w.APKI)
	}
	if w.ReadRatio < 0 || w.ReadRatio > 1 {
		return fmt.Errorf("workload %q: read_ratio must be in [0,1], got %g", w.Name, w.ReadRatio)
	}
	if w.FootprintScale <= 0 || w.FootprintScale > MaxFootprintScale {
		return fmt.Errorf("workload %q: footprint_scale must be in (0,%d], got %g",
			w.Name, MaxFootprintScale, w.FootprintScale)
	}
	if w.HotSkew < 0 {
		return fmt.Errorf("workload %q: hot_skew must be non-negative, got %g", w.Name, w.HotSkew)
	}
	return nil
}

// Workloads reproduces Table II's ten applications. Footprint scales and
// skews are our calibration knobs (the paper gives only APKI and read
// ratio): graph workloads get large footprints and strong skew, dense
// kernels get moderate footprints and mild skew.
func Workloads() []Workload {
	return []Workload{
		{Name: "backp", APKI: 30, ReadRatio: 0.53, Suite: "Rodinia", FootprintScale: 2.0, HotSkew: 0.6, ComputeBound: true},
		{Name: "lud", APKI: 20, ReadRatio: 0.52, Suite: "Rodinia", FootprintScale: 1.5, HotSkew: 0.5, ComputeBound: true},
		{Name: "GRAMS", APKI: 266, ReadRatio: 0.70, Suite: "Polybench", FootprintScale: 3.0, HotSkew: 0.7},
		{Name: "FDTD", APKI: 86, ReadRatio: 0.70, Suite: "Polybench", FootprintScale: 2.5, HotSkew: 0.6},
		{Name: "betw", APKI: 193, ReadRatio: 0.99, Suite: "GraphBIG", FootprintScale: 4.0, HotSkew: 1.25},
		{Name: "bfsdata", APKI: 84, ReadRatio: 0.95, Suite: "GraphBIG", FootprintScale: 4.0, HotSkew: 1.15},
		{Name: "bfstopo", APKI: 25, ReadRatio: 0.97, Suite: "GraphBIG", FootprintScale: 3.5, HotSkew: 1.15},
		{Name: "gctopo", APKI: 93, ReadRatio: 0.99, Suite: "GraphBIG", FootprintScale: 3.5, HotSkew: 1.25},
		{Name: "pagerank", APKI: 599, ReadRatio: 0.99, Suite: "GraphBIG", FootprintScale: 5.0, HotSkew: 1.35},
		{Name: "sssp", APKI: 103, ReadRatio: 0.98, Suite: "GraphBIG", FootprintScale: 4.5, HotSkew: 1.25},
	}
}

// WorkloadByName looks a workload up; ok reports whether it exists.
func WorkloadByName(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// WorkloadNames returns the ten names in Table II order.
func WorkloadNames() []string {
	ws := Workloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}
