package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Spec is the declarative scenario document: one JSON-serializable value
// that fully describes a run. It resolves to a complete Config plus a
// workload, so "a new platform variant" or "a new workload" is a spec file,
// not a Go change:
//
//	{
//	  "preset": "ohm-base",
//	  "mode": "two-level",
//	  "overrides": {"xpoint.write_latency_ns": 1200, "optical.waveguides": 2},
//	  "workload": {"name": "streamwrite", "apki": 120, "read_ratio": 0.35,
//	               "footprint_scale": 3.0, "hot_skew": 0.8}
//	}
//
// Empty fields take ohmsim's defaults: preset "ohm-bw", mode "planar",
// workload "pagerank". The workload is either a Table II name (JSON string)
// or an inline definition (JSON object). Resolution is canonical: encoding,
// decoding and resolving a spec yields the same Config — and therefore the
// same batch cache key — as resolving the original.
type Spec struct {
	// Preset names a platform preset from the registry (the seven paper
	// platforms); empty means "ohm-bw".
	Preset string `json:"preset,omitempty"`
	// Mode is the combined mode token: a memory mode ("planar" or
	// "two-level"), optionally joined with an execution mode using "+"
	// ("two-level+analytical"). The bare token "analytical" selects planar
	// memory with analytical execution. Empty means planar memory evaluated
	// by the discrete-event simulator.
	Mode string `json:"mode,omitempty"`
	// Overrides patches individual config fields by dotted path after the
	// preset is built; see OverridePaths for the schema.
	Overrides map[string]interface{} `json:"overrides,omitempty"`
	// Workload selects a Table II workload by name or defines one inline.
	Workload *WorkloadSpec `json:"workload,omitempty"`
}

// DefaultPreset is the preset an empty Spec.Preset resolves to.
const DefaultPreset = "ohm-bw"

// DefaultWorkload is the workload an empty Spec.Workload resolves to.
const DefaultWorkload = "pagerank"

// WorkloadSpec is a workload reference: a Table II name, or an inline
// custom definition. On the wire it is either a JSON string or a workload
// object.
type WorkloadSpec struct {
	// Name references a Table II workload; unset when Inline is given.
	Name string
	// Inline is a full custom workload definition.
	Inline *Workload
}

// MarshalJSON writes the name string or the inline object.
func (w WorkloadSpec) MarshalJSON() ([]byte, error) {
	if w.Inline != nil {
		return json.Marshal(w.Inline)
	}
	return json.Marshal(w.Name)
}

// UnmarshalJSON accepts a workload name string or an inline definition
// object (unknown object fields are errors, so typos fail loudly).
func (w *WorkloadSpec) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '"' {
		w.Inline = nil
		return json.Unmarshal(data, &w.Name)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var def Workload
	if err := dec.Decode(&def); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	w.Name = ""
	w.Inline = &def
	return nil
}

// Scenario is a resolved Spec: the runnable configuration plus the workload
// to drive it with.
type Scenario struct {
	// Preset is the registry entry the config was built from.
	Preset Preset
	// Config is the fully-resolved, validated configuration.
	Config Config
	// Workload is the resolved workload definition.
	Workload Workload
	// Custom reports whether Workload is an inline definition rather than a
	// Table II entry — custom workloads carry their full definition into
	// cache keys and trace generation. An inline definition identical to
	// its Table II namesake is canonicalized back to the named form.
	Custom bool
	// Exec selects discrete-event simulation (default) or the closed-form
	// analytical twin.
	Exec ExecMode
}

// Resolve builds the scenario: preset lookup, mode parse, override patch,
// workload resolution, then validation. All errors name what failed — an
// unknown preset lists the registry, a bad override names its path.
func (s Spec) Resolve() (Scenario, error) {
	presetName := s.Preset
	if presetName == "" {
		presetName = DefaultPreset
	}
	pre, ok := LookupPreset(presetName)
	if !ok {
		return Scenario{}, fmt.Errorf("config: spec: unknown preset %q (%s)",
			s.Preset, strings.Join(PresetNames(), "|"))
	}
	modeName := s.Mode
	if modeName == "" {
		modeName = Planar.String()
	}
	mode, exec, err := ParseModes(modeName)
	if err != nil {
		return Scenario{}, fmt.Errorf("config: spec: %w", err)
	}
	cfg := pre.Build(mode)
	if err := cfg.ApplyOverrides(s.Overrides); err != nil {
		return Scenario{}, err
	}

	ws := s.Workload
	if ws == nil {
		ws = &WorkloadSpec{Name: DefaultWorkload}
	}
	var (
		w      Workload
		custom bool
	)
	switch {
	case ws.Inline != nil:
		w = *ws.Inline
		if err := w.Validate(); err != nil {
			return Scenario{}, fmt.Errorf("config: spec: %w", err)
		}
		// Canonicalize: an inline copy of a Table II workload keys and runs
		// exactly as the named workload would.
		if table, ok := WorkloadByName(w.Name); !ok || table != w {
			custom = true
		}
	case ws.Name != "":
		w, ok = WorkloadByName(ws.Name)
		if !ok {
			return Scenario{}, fmt.Errorf("config: spec: unknown workload %q (Table II names: %v)",
				ws.Name, WorkloadNames())
		}
	default:
		return Scenario{}, fmt.Errorf("config: spec: workload must be a Table II name or an inline definition")
	}

	if err := cfg.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("config: spec: %w", err)
	}
	if err := ValidateTraceBudget(w, &cfg); err != nil {
		return Scenario{}, fmt.Errorf("config: spec: %w", err)
	}
	return Scenario{Preset: pre, Config: cfg, Workload: w, Custom: custom, Exec: exec}, nil
}

// MaxTracePages caps a trace's page count (footprint / page size). Trace
// generation allocates per-page rank state, and both factors are reachable
// from untrusted specs (footprint_scale, memory.page_bytes), so the
// product must be bounded like the instruction budget is.
const MaxTracePages = 1 << 23

// ValidateTraceBudget rejects (workload, config) pairs whose trace would
// need more per-page state than MaxTracePages allows. Both spec entry
// points (scenario resolution and sweep expansion) run it on every cell.
func ValidateTraceBudget(w Workload, c *Config) error {
	pages := w.FootprintScale * FootprintUnit / float64(c.Memory.PageBytes)
	if pages > MaxTracePages {
		return fmt.Errorf("config: workload %q: footprint_scale %g over %d-byte pages needs %.0f trace pages (limit %d); raise memory.page_bytes or shrink the footprint",
			w.Name, w.FootprintScale, c.Memory.PageBytes, pages, MaxTracePages)
	}
	return nil
}

// LoadSpec reads a scenario spec from a JSON file; unknown top-level fields
// are errors so a misspelled key fails instead of being ignored.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("config: spec %s: %w", path, err)
	}
	return s, nil
}

// Preset is a named platform configuration: the serializable identity the
// spec layer exposes instead of the Platform enum. The seven paper
// platforms are the built-in registry; Build returns the exact
// Default(platform, mode) configuration, so preset-built cells keep the
// cache keys they have always had.
type Preset struct {
	// Name is the canonical spec name ("ohm-bw").
	Name string `json:"name"`
	// Platform is the simulator platform the preset builds.
	Platform Platform `json:"-"`
	// Title is a one-line description for listings.
	Title string `json:"title"`
	// Build assembles the preset's full configuration for a memory mode.
	Build func(MemMode) Config `json:"-"`
}

var presetList = buildPresets()

func buildPresets() []Preset {
	titles := map[Platform]string{
		Origin:  "baseline GPU: DRAM-only over electrical channels, host spill via PCIe",
		Hetero:  "DRAM+XPoint over electrical channels, controller-driven migration",
		OhmBase: "DRAM+XPoint over the optical channel, controller-driven migration",
		AutoRW:  "Ohm-base plus the auto-read/write (snarf) function",
		OhmWOM:  "auto-rw plus swap and reverse-write with WOM-coded dual routes",
		OhmBW:   "full-bandwidth dual routes via half-coupled MRR transmitters (4x laser power)",
		Oracle:  "ideal all-DRAM memory of the full heterogeneous capacity on the optical channel",
	}
	ps := make([]Preset, 0, len(platformNames))
	for _, p := range AllPlatforms() {
		p := p
		ps = append(ps, Preset{
			Name:     normalizeName(p.String()),
			Platform: p,
			Title:    titles[p],
			Build:    func(m MemMode) Config { return Default(p, m) },
		})
	}
	return ps
}

// Presets lists the registered platform presets in the paper's order.
func Presets() []Preset {
	out := make([]Preset, len(presetList))
	copy(out, presetList)
	return out
}

// PresetNames lists the canonical preset names in the paper's order.
func PresetNames() []string {
	names := make([]string, len(presetList))
	for i, p := range presetList {
		names[i] = p.Name
	}
	return names
}

// LookupPreset resolves a preset by name (case-insensitive, "-" and "_"
// interchangeable).
func LookupPreset(name string) (Preset, bool) {
	n := normalizeName(name)
	for _, p := range presetList {
		if p.Name == n {
			return p, true
		}
	}
	return Preset{}, false
}
