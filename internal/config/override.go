package config

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// The override layer makes every numeric/boolean knob of Config settable by
// a dotted path ("optical.waveguides", "xpoint.write_latency_ns",
// "gpu.mshr_entries", ...), so a platform variant can be described in a
// serializable spec document instead of Go code. The path table is derived
// from the Config struct by reflection at init, so a field added to any
// section becomes overridable without touching this file; names are the
// snake_case form of the Go field, with sim.Time fields suffixed "_ns"
// (their spec values are nanoseconds, fractional allowed).
//
// Platform, Mode and Memory.Mode are deliberately not overridable: they are
// the preset/mode identity of the scenario, set by Spec.Preset / Spec.Mode.

// OverridePath documents one settable field of Config.
type OverridePath struct {
	// Path is the dotted spec name, e.g. "dram.trcd_ns".
	Path string `json:"path"`
	// Type is the value's wire type: "int", "uint", "float", "bool", or
	// "duration_ns" (a number of nanoseconds, fractional allowed).
	Type string `json:"type"`
}

type ovKind int

const (
	ovInt ovKind = iota
	ovUint
	ovFloat
	ovBool
	ovTime
)

func (k ovKind) String() string {
	switch k {
	case ovInt:
		return "int"
	case ovUint:
		return "uint"
	case ovFloat:
		return "float"
	case ovBool:
		return "bool"
	default:
		return "duration_ns"
	}
}

type ovField struct {
	index []int // reflect field index chain into Config
	kind  ovKind
	typ   reflect.Type
}

// specNameOverrides fixes field names whose mechanical snake_case form is
// wrong or unreadable.
var specNameOverrides = map[string]string{
	"SMs":               "sms",
	"InterconnectL":     "interconnect_latency",
	"NoCDetailed":       "noc_detailed",
	"WaveguideLossDBcm": "waveguide_loss_db_cm",
	"XPointBytes":       "xpoint_bytes",
}

// sectionNames maps Config's struct sections to their spec prefixes.
var sectionNames = map[string]string{
	"GPU":        "gpu",
	"DRAM":       "dram",
	"XPoint":     "xpoint",
	"Optical":    "optical",
	"Electrical": "electrical",
	"Memory":     "memory",
}

var (
	timeType = reflect.TypeOf(sim.Time(0))
	ovTable  = buildOvTable()
)

func buildOvTable() map[string]ovField {
	table := make(map[string]ovField)
	cfg := reflect.TypeOf(Config{})
	for i := 0; i < cfg.NumField(); i++ {
		f := cfg.Field(i)
		switch f.Name {
		case "Platform", "Mode":
			continue // scenario identity, not an override
		}
		if sec, ok := sectionNames[f.Name]; ok {
			for j := 0; j < f.Type.NumField(); j++ {
				leaf := f.Type.Field(j)
				if leaf.Name == "Mode" {
					continue // memory.mode is scenario identity too
				}
				k, ok := kindOf(leaf.Type)
				if !ok {
					continue
				}
				table[sec+"."+specName(leaf.Name, k)] = ovField{
					index: []int{i, j}, kind: k, typ: leaf.Type,
				}
			}
			continue
		}
		if k, ok := kindOf(f.Type); ok {
			table[specName(f.Name, k)] = ovField{index: []int{i}, kind: k, typ: f.Type}
		}
	}
	return table
}

func kindOf(t reflect.Type) (ovKind, bool) {
	if t == timeType {
		return ovTime, true
	}
	switch t.Kind() {
	case reflect.Int, reflect.Int64:
		return ovInt, true
	case reflect.Uint64:
		return ovUint, true
	case reflect.Float64:
		return ovFloat, true
	case reflect.Bool:
		return ovBool, true
	}
	return 0, false
}

func specName(field string, k ovKind) string {
	name, ok := specNameOverrides[field]
	if !ok {
		name = snakeCase(field)
	}
	if k == ovTime && !strings.HasSuffix(name, "_ns") {
		name += "_ns"
	}
	return name
}

// snakeCase converts a Go field name to its spec form: "MSHREntries" ->
// "mshr_entries", "L1SizeBytes" -> "l1_size_bytes". Digits extend the
// current word; an uppercase run keeps together with its last letter
// starting a new word when followed by lowercase.
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				prev, next := rs[i-1], rune(0)
				if i+1 < len(rs) {
					next = rs[i+1]
				}
				prevLower := prev >= 'a' && prev <= 'z' || prev >= '0' && prev <= '9'
				prevUpper := prev >= 'A' && prev <= 'Z'
				if prevLower || (prevUpper && next >= 'a' && next <= 'z') {
					b.WriteByte('_')
				}
			}
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// OverridePaths lists every settable path with its wire type, sorted —
// the schema behind docs/reference/spec.md and the discovery endpoints.
func OverridePaths() []OverridePath {
	out := make([]OverridePath, 0, len(ovTable))
	for p, f := range ovTable {
		out = append(out, OverridePath{Path: p, Type: f.kind.String()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Set applies one override. The value may be a JSON-decoded scalar
// (float64, bool, string, int variants) or a string in CLI "-set
// path=value" form; strings are parsed per the field's type. Errors always
// name the offending path.
func (c *Config) Set(path string, value interface{}) error {
	key := strings.ToLower(strings.TrimSpace(path))
	f, ok := ovTable[key]
	if !ok {
		if hint := nearestPath(key); hint != "" {
			return fmt.Errorf("config: override %q: unknown path (did you mean %q?)", path, hint)
		}
		return fmt.Errorf("config: override %q: unknown path (see docs/reference/spec.md for the full list)", path)
	}
	field := reflect.ValueOf(c).Elem().FieldByIndex(f.index)
	switch f.kind {
	case ovBool:
		b, err := toBool(value)
		if err != nil {
			return fmt.Errorf("config: override %q: expected bool, %v", path, err)
		}
		field.SetBool(b)
	case ovInt:
		n, err := toInt(value)
		if err != nil {
			return fmt.Errorf("config: override %q: expected integer, %v", path, err)
		}
		field.SetInt(n)
	case ovUint:
		n, err := toInt(value)
		if err != nil || n < 0 {
			return fmt.Errorf("config: override %q: expected non-negative integer, got %v", path, value)
		}
		field.SetUint(uint64(n))
	case ovFloat:
		v, err := toFloat(value)
		if err != nil {
			return fmt.Errorf("config: override %q: expected number, %v", path, err)
		}
		field.SetFloat(v)
	case ovTime:
		v, err := toFloat(value)
		if err != nil {
			return fmt.Errorf("config: override %q: expected nanoseconds, %v", path, err)
		}
		// Every duration in the model is a physical latency or interval;
		// a negative one would silently skew timing arithmetic that
		// Config.Validate does not individually cover.
		if v < 0 {
			return fmt.Errorf("config: override %q: nanoseconds must be non-negative, got %v", path, v)
		}
		field.SetInt(int64(math.Round(v * float64(sim.Nanosecond))))
	}
	return nil
}

// ApplyOverrides applies a path->value patch in sorted path order (so the
// outcome never depends on map iteration), stopping at the first error.
// Two spellings that normalize to one path (Set is case-insensitive) are a
// conflict, not a silent last-writer-wins.
func (c *Config) ApplyOverrides(overrides map[string]interface{}) error {
	if len(overrides) == 0 {
		return nil
	}
	paths := make([]string, 0, len(overrides))
	seen := make(map[string]struct{}, len(overrides))
	for p := range overrides {
		key := strings.ToLower(strings.TrimSpace(p))
		if _, dup := seen[key]; dup {
			return fmt.Errorf("config: override path %q given twice (spellings are case-insensitive)", key)
		}
		seen[key] = struct{}{}
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := c.Set(p, overrides[p]); err != nil {
			return err
		}
	}
	return nil
}

// nearestPath suggests a known path sharing the leaf name of an unknown one
// ("waveguides" -> "optical.waveguides").
func nearestPath(key string) string {
	leaf := key
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		leaf = key[i+1:]
	}
	if leaf == "" {
		return ""
	}
	var best string
	for p := range ovTable {
		if p == leaf || strings.HasSuffix(p, "."+leaf) {
			if best == "" || p < best {
				best = p
			}
		}
	}
	return best
}

func toBool(v interface{}) (bool, error) {
	switch x := v.(type) {
	case bool:
		return x, nil
	case string:
		b, err := strconv.ParseBool(strings.TrimSpace(x))
		if err != nil {
			return false, fmt.Errorf("got %q", x)
		}
		return b, nil
	}
	return false, fmt.Errorf("got %T(%v)", v, v)
}

func toFloat(v interface{}) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case uint64:
		return float64(x), nil
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return 0, fmt.Errorf("got %q", x)
		}
		return f, nil
	}
	return 0, fmt.Errorf("got %T(%v)", v, v)
}

func toInt(v interface{}) (int64, error) {
	switch x := v.(type) {
	case int:
		return int64(x), nil
	case int64:
		return x, nil
	case uint64:
		return int64(x), nil
	case float64:
		if x != math.Trunc(x) {
			return 0, fmt.Errorf("got non-integral %v", x)
		}
		return int64(x), nil
	case string:
		n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("got %q", x)
		}
		return n, nil
	}
	return 0, fmt.Errorf("got %T(%v)", v, v)
}
