package config

import (
	"strings"
	"testing"
)

func TestPlatformString(t *testing.T) {
	want := map[Platform]string{
		Origin: "Origin", Hetero: "Hetero", OhmBase: "Ohm-base",
		AutoRW: "Auto-rw", OhmWOM: "Ohm-WOM", OhmBW: "Ohm-BW", Oracle: "Oracle",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if got := Platform(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown platform string = %q", got)
	}
}

func TestAllPlatformsOrder(t *testing.T) {
	ps := AllPlatforms()
	if len(ps) != 7 {
		t.Fatalf("AllPlatforms returned %d platforms, want 7", len(ps))
	}
	if ps[0] != Origin || ps[6] != Oracle {
		t.Fatalf("platform order wrong: %v", ps)
	}
}

func TestPlatformPredicates(t *testing.T) {
	if Origin.Optical() || Hetero.Optical() {
		t.Error("electrical platforms misreported as optical")
	}
	for _, p := range OpticalPlatforms() {
		if !p.Optical() {
			t.Errorf("%s should be optical", p)
		}
	}
	if Origin.Heterogeneous() || Oracle.Heterogeneous() {
		t.Error("DRAM-only platforms misreported as heterogeneous")
	}
	for _, p := range []Platform{Hetero, OhmBase, AutoRW, OhmWOM, OhmBW} {
		if !p.Heterogeneous() {
			t.Errorf("%s should be heterogeneous", p)
		}
	}
}

func TestMemModeString(t *testing.T) {
	if Planar.String() != "planar" || TwoLevel.String() != "two-level" {
		t.Error("mode strings wrong")
	}
	if len(AllModes()) != 2 {
		t.Error("AllModes should return both modes")
	}
}

func TestDefaultTable1Values(t *testing.T) {
	g := DefaultGPU()
	if g.SMs != 16 {
		t.Errorf("SMs = %d, want 16 (Table I)", g.SMs)
	}
	if g.CoreFreqHz != 1.2e9 {
		t.Errorf("core freq = %v, want 1.2GHz", g.CoreFreqHz)
	}
	if g.L1SizeBytes != 48<<10/CacheScale || g.L1Ways != 6 {
		t.Error("L1 must be 48KB 6-way scaled by CacheScale (Table I)")
	}
	if g.L2SizeBytes != 6<<20/CacheScale || g.L2Ways != 8 {
		t.Error("L2 must be 6MB 8-way scaled by CacheScale (Table I)")
	}

	d := DefaultDRAM()
	if d.TRCD != 25_000 || d.TRP != 10_000 || d.TCL != 11_000 || d.TRRD != 5_000 {
		t.Errorf("DRAM timings %v/%v/%v/%v do not match Table I", d.TRCD, d.TRP, d.TCL, d.TRRD)
	}

	x := DefaultXPoint()
	if x.ReadLatency != 190_000 {
		t.Errorf("PRAM read = %v, want 190ns (Table I)", x.ReadLatency)
	}
	if x.WriteLatency != 763_000 {
		t.Errorf("PRAM write = %v, want 763ns (Table I)", x.WriteLatency)
	}

	o := DefaultOptical()
	if o.ChannelBits != 96 || o.FreqHz != 30e9 || o.VirtualChannels != 6 {
		t.Error("optical channel must be 96-bit / 30GHz / 6 VCs (Table I)")
	}
	if o.LaserPowerMW != 0.73 {
		t.Errorf("laser power = %v mW, want 0.73 (Section VI)", o.LaserPowerMW)
	}
	if o.MRRTuningFJPerBit != 200 || o.FilterDropDB != 1.5 || o.WaveguideLossDBcm != 0.3 ||
		o.SplitterLossDB != 0.2 || o.DetectorLossDB != 0.1 {
		t.Error("optical power model constants do not match Table I")
	}

	e := DefaultElectrical()
	if e.Channels != 6 || e.LaneBits != 32 || e.FreqHz != 15e9 {
		t.Error("electrical channels must be 6 x 32-bit x 15GHz (Table I)")
	}
}

func TestCapacityRatios(t *testing.T) {
	p := DefaultMemory(Planar)
	if p.XPointBytes != p.DRAMBytes*8 {
		t.Errorf("planar ratio = %d:%d, want 1:8", p.DRAMBytes, p.XPointBytes)
	}
	tl := DefaultMemory(TwoLevel)
	if tl.XPointBytes != tl.DRAMBytes*64 {
		t.Errorf("two-level ratio = %d:%d, want 1:64", tl.DRAMBytes, tl.XPointBytes)
	}
}

func TestDefaultPlatformAdjustments(t *testing.T) {
	if c := Default(Origin, Planar); c.Memory.XPointBytes != 0 {
		t.Error("Origin must have no XPoint")
	}
	or := Default(Oracle, Planar)
	base := Default(OhmBase, Planar)
	if or.Memory.DRAMBytes != base.Memory.DRAMBytes+base.Memory.XPointBytes {
		t.Error("Oracle DRAM must equal full heterogeneous capacity")
	}
	if or.Memory.XPointBytes != 0 {
		t.Error("Oracle must have no XPoint")
	}
	if Default(AutoRW, Planar).Optical.LaserBoost != 2 {
		t.Error("Auto-rw laser boost must be 2x (Section VI)")
	}
	if Default(OhmWOM, Planar).Optical.LaserBoost != 2 {
		t.Error("Ohm-WOM laser boost must be 2x")
	}
	if Default(OhmBW, Planar).Optical.LaserBoost != 4 {
		t.Error("Ohm-BW laser boost must be 4x")
	}
	if Default(OhmBase, Planar).Optical.LaserBoost != 1 {
		t.Error("Ohm-base laser boost must be 1x")
	}
}

func TestValidateDefaults(t *testing.T) {
	for _, p := range AllPlatforms() {
		for _, m := range AllModes() {
			c := Default(p, m)
			if err := c.Validate(); err != nil {
				t.Errorf("Default(%s,%s) invalid: %v", p, m, err)
			}
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero SMs", func(c *Config) { c.GPU.SMs = 0 }},
		{"non-pow2 line", func(c *Config) { c.GPU.LineBytes = 96 }},
		{"zero MCs", func(c *Config) { c.GPU.MemCtrls = 0 }},
		{"VC/MC mismatch", func(c *Config) { c.Optical.VirtualChannels = 3 }},
		{"zero waveguides", func(c *Config) { c.Optical.Waveguides = 0 }},
		{"zero DRAM", func(c *Config) { c.Memory.DRAMBytes = 0 }},
		{"hetero without xpoint", func(c *Config) { c.Memory.XPointBytes = 0 }},
		{"bad page size", func(c *Config) { c.Memory.PageBytes = 100 }},
		{"zero xpoint read", func(c *Config) { c.XPoint.ReadLatency = 0 }},
		{"zero banks", func(c *Config) { c.DRAM.Banks = 0 }},
		{"zero instructions", func(c *Config) { c.MaxInstructions = 0 }},
	}
	for _, m := range mutations {
		c := Default(OhmBW, Planar)
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted config with %s", m.name)
		}
	}
}

func TestBandwidthEquivalence(t *testing.T) {
	// Section VI: the default single optical channel provides the same
	// bandwidth as the six 32-bit electrical channels.
	c := Default(OhmBase, Planar)
	opt := c.OpticalChannelBandwidth()
	ele := c.ElectricalChannelBandwidth()
	ratio := opt / ele
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("optical (%.3g B/s) and electrical (%.3g B/s) default bandwidths must match; ratio %.3f",
			opt, ele, ratio)
	}
	c.Optical.Waveguides = 4
	if got := c.OpticalChannelBandwidth(); got != 4*opt {
		t.Errorf("waveguide scaling: got %.3g, want %.3g", got, 4*opt)
	}
}

func TestWorkloadsTable2(t *testing.T) {
	ws := Workloads()
	if len(ws) != 10 {
		t.Fatalf("Table II has 10 workloads, got %d", len(ws))
	}
	want := map[string]struct {
		apki int
		rr   float64
	}{
		"backp": {30, 0.53}, "lud": {20, 0.52}, "GRAMS": {266, 0.70},
		"FDTD": {86, 0.70}, "betw": {193, 0.99}, "bfsdata": {84, 0.95},
		"bfstopo": {25, 0.97}, "gctopo": {93, 0.99}, "pagerank": {599, 0.99},
		"sssp": {103, 0.98},
	}
	for _, w := range ws {
		exp, ok := want[w.Name]
		if !ok {
			t.Errorf("unexpected workload %q", w.Name)
			continue
		}
		if w.APKI != exp.apki || w.ReadRatio != exp.rr {
			t.Errorf("%s: APKI=%d rr=%v, want APKI=%d rr=%v", w.Name, w.APKI, w.ReadRatio, exp.apki, exp.rr)
		}
		if w.FootprintScale <= 1 {
			t.Errorf("%s: footprint scale %v must exceed DRAM capacity to exercise migration", w.Name, w.FootprintScale)
		}
		if w.HotSkew <= 0 {
			t.Errorf("%s: hot skew must be positive", w.Name)
		}
	}
}

func TestWorkloadByName(t *testing.T) {
	w, ok := WorkloadByName("pagerank")
	if !ok || w.APKI != 599 {
		t.Fatalf("WorkloadByName(pagerank) = %+v, %v", w, ok)
	}
	if _, ok := WorkloadByName("nope"); ok {
		t.Fatal("WorkloadByName accepted unknown name")
	}
	names := WorkloadNames()
	if len(names) != 10 || names[0] != "backp" || names[9] != "sssp" {
		t.Fatalf("WorkloadNames order wrong: %v", names)
	}
}
