package config

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ServeConfig parameterizes the ohmserve daemon (cmd/ohmserve): where it
// listens and how much simulation work it admits at once. Wall-clock
// durations use time.Duration, not sim.Time — they bound the daemon, not
// the simulated system.
type ServeConfig struct {
	// Addr is the HTTP listen address.
	Addr string
	// JobWorkers is how many jobs execute concurrently. Cells within and
	// across jobs additionally share the engine's CellWorkers cap, so more
	// job workers improve fairness (short jobs aren't stuck behind long
	// ones) without oversubscribing the machine.
	JobWorkers int
	// QueueDepth bounds the FIFO of accepted-but-not-started jobs; a full
	// queue rejects submissions with 503 rather than buffering unboundedly.
	QueueDepth int
	// CellWorkers caps concurrently executing simulations process-wide;
	// <=0 means GOMAXPROCS.
	CellWorkers int
	// CacheDir is the on-disk result cache shared by every job; empty
	// selects a memory-only cache.
	CacheDir string
	// CacheMaxBytes is the disk cache's byte budget: past it the coldest
	// entries (LRU by last read or write) are garbage-collected. <=0
	// means unbounded. Accepts human sizes on the command line via
	// ParseBytes ("2GB", "512MiB").
	CacheMaxBytes int64
	// JournalPath is the durable job journal. "auto" (the default) puts
	// journal.jsonl inside CacheDir — and disables journaling when the
	// cache is memory-only; "" disables it explicitly; anything else is
	// used verbatim.
	JournalPath string
	// JobHistory bounds how many finished jobs (with their results) stay
	// queryable before the oldest are evicted.
	JobHistory int
	// DrainTimeout bounds the SIGTERM graceful drain: queued and running
	// jobs get this long to finish before being cancelled.
	DrainTimeout time.Duration

	// LeaseTTL is how long a dispatched cell's lease survives without a
	// worker heartbeat before the cell is requeued (coordinator mode).
	LeaseTTL time.Duration
	// LeasePoll bounds how long a worker's lease request long-polls at
	// the coordinator before returning empty.
	LeasePoll time.Duration
	// LocalCells is how many cells the coordinator itself executes
	// alongside remote workers: 0 means CellWorkers' resolution (a
	// coordinator with no workers keeps full local throughput), negative
	// makes the coordinator a pure dispatcher.
	LocalCells int
	// WorkerCapacity is how many leased cells a worker process runs
	// concurrently (`ohmserve -worker`); <=0 means GOMAXPROCS.
	WorkerCapacity int

	// TenantRate is each tenant's sustained job-submission rate
	// (submissions/second, token bucket); <=0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the token-bucket depth: how many submissions a
	// tenant can make at once after idling. <=0 derives from TenantRate.
	TenantBurst int
	// TenantMaxJobs caps a tenant's live (queued or running) jobs; <=0
	// disables the cap.
	TenantMaxJobs int
	// TenantMaxCells caps a tenant's total outstanding sweep cells
	// across live jobs; <=0 disables the cap.
	TenantMaxCells int

	// PprofAddr, when non-empty, starts a net/http/pprof listener on this
	// address (both coordinator and worker modes). Keep it off public
	// interfaces; profiles expose process internals.
	PprofAddr string
	// MetricsAddr, when non-empty, starts a standalone /metrics listener.
	// Coordinators always serve /metrics on the main API address; this knob
	// exists so worker processes — which have no API listener — can be
	// scraped too.
	MetricsAddr string
	// LogLevel is the minimum structured-log level: debug, info, warn or
	// error. Debug includes per-poll worker traffic (lease/heartbeat lines).
	LogLevel string
	// LogJSON switches structured logs from human-readable key=value text
	// to one JSON object per line.
	LogJSON bool
}

// DefaultServe returns the daemon defaults.
func DefaultServe() ServeConfig {
	return ServeConfig{
		Addr:          ":8080",
		JobWorkers:    2,
		QueueDepth:    64,
		CellWorkers:   0,
		CacheDir:      ".ohmserve-cache",
		CacheMaxBytes: 0,
		JournalPath:   "auto",
		JobHistory:    512,
		DrainTimeout:  30 * time.Second,

		TenantRate:     50,
		TenantBurst:    100,
		TenantMaxJobs:  32,
		TenantMaxCells: 2_000_000,

		LeaseTTL:       15 * time.Second,
		LeasePoll:      10 * time.Second,
		LocalCells:     0,
		WorkerCapacity: 0,

		PprofAddr:   "",
		MetricsAddr: "",
		LogLevel:    "info",
		LogJSON:     false,
	}
}

// ParseBytes parses a human byte size: a plain integer is bytes, and
// decimal (KB, MB, GB, TB = powers of 1000) or binary (KiB, MiB, GiB,
// TiB = powers of 1024) suffixes are accepted case-insensitively, with
// an optional trailing "B" on the binary forms' short spellings ("512M"
// = MB). Fractions work where they are exact enough to matter ("1.5GB").
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("config: empty byte size")
	}
	upper := strings.ToUpper(t)
	mult := int64(1)
	suffixes := []struct {
		suffix string
		mult   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30}, {"TIB", 1 << 40},
		{"KB", 1000}, {"MB", 1000_000}, {"GB", 1000_000_000}, {"TB", 1000_000_000_000},
		{"K", 1000}, {"M", 1000_000}, {"G", 1000_000_000}, {"T", 1000_000_000_000},
		{"B", 1},
	}
	num := upper
	for _, sf := range suffixes {
		if strings.HasSuffix(upper, sf.suffix) {
			num = strings.TrimSpace(strings.TrimSuffix(upper, sf.suffix))
			mult = sf.mult
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("config: bad byte size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("config: negative byte size %q", s)
	}
	return int64(v * float64(mult)), nil
}
