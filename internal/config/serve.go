package config

import "time"

// ServeConfig parameterizes the ohmserve daemon (cmd/ohmserve): where it
// listens and how much simulation work it admits at once. Wall-clock
// durations use time.Duration, not sim.Time — they bound the daemon, not
// the simulated system.
type ServeConfig struct {
	// Addr is the HTTP listen address.
	Addr string
	// JobWorkers is how many jobs execute concurrently. Cells within and
	// across jobs additionally share the engine's CellWorkers cap, so more
	// job workers improve fairness (short jobs aren't stuck behind long
	// ones) without oversubscribing the machine.
	JobWorkers int
	// QueueDepth bounds the FIFO of accepted-but-not-started jobs; a full
	// queue rejects submissions with 503 rather than buffering unboundedly.
	QueueDepth int
	// CellWorkers caps concurrently executing simulations process-wide;
	// <=0 means GOMAXPROCS.
	CellWorkers int
	// CacheDir is the on-disk result cache shared by every job; empty
	// selects a memory-only cache.
	CacheDir string
	// JobHistory bounds how many finished jobs (with their results) stay
	// queryable before the oldest are evicted.
	JobHistory int
	// DrainTimeout bounds the SIGTERM graceful drain: queued and running
	// jobs get this long to finish before being cancelled.
	DrainTimeout time.Duration

	// LeaseTTL is how long a dispatched cell's lease survives without a
	// worker heartbeat before the cell is requeued (coordinator mode).
	LeaseTTL time.Duration
	// LeasePoll bounds how long a worker's lease request long-polls at
	// the coordinator before returning empty.
	LeasePoll time.Duration
	// LocalCells is how many cells the coordinator itself executes
	// alongside remote workers: 0 means CellWorkers' resolution (a
	// coordinator with no workers keeps full local throughput), negative
	// makes the coordinator a pure dispatcher.
	LocalCells int
	// WorkerCapacity is how many leased cells a worker process runs
	// concurrently (`ohmserve -worker`); <=0 means GOMAXPROCS.
	WorkerCapacity int

	// PprofAddr, when non-empty, starts a net/http/pprof listener on this
	// address (both coordinator and worker modes). Keep it off public
	// interfaces; profiles expose process internals.
	PprofAddr string
	// MetricsAddr, when non-empty, starts a standalone /metrics listener.
	// Coordinators always serve /metrics on the main API address; this knob
	// exists so worker processes — which have no API listener — can be
	// scraped too.
	MetricsAddr string
	// LogLevel is the minimum structured-log level: debug, info, warn or
	// error. Debug includes per-poll worker traffic (lease/heartbeat lines).
	LogLevel string
	// LogJSON switches structured logs from human-readable key=value text
	// to one JSON object per line.
	LogJSON bool
}

// DefaultServe returns the daemon defaults.
func DefaultServe() ServeConfig {
	return ServeConfig{
		Addr:         ":8080",
		JobWorkers:   2,
		QueueDepth:   64,
		CellWorkers:  0,
		CacheDir:     ".ohmserve-cache",
		JobHistory:   512,
		DrainTimeout: 30 * time.Second,

		LeaseTTL:       15 * time.Second,
		LeasePoll:      10 * time.Second,
		LocalCells:     0,
		WorkerCapacity: 0,

		PprofAddr:   "",
		MetricsAddr: "",
		LogLevel:    "info",
		LogJSON:     false,
	}
}
