package config

import "time"

// ServeConfig parameterizes the ohmserve daemon (cmd/ohmserve): where it
// listens and how much simulation work it admits at once. Wall-clock
// durations use time.Duration, not sim.Time — they bound the daemon, not
// the simulated system.
type ServeConfig struct {
	// Addr is the HTTP listen address.
	Addr string
	// JobWorkers is how many jobs execute concurrently. Cells within and
	// across jobs additionally share the engine's CellWorkers cap, so more
	// job workers improve fairness (short jobs aren't stuck behind long
	// ones) without oversubscribing the machine.
	JobWorkers int
	// QueueDepth bounds the FIFO of accepted-but-not-started jobs; a full
	// queue rejects submissions with 503 rather than buffering unboundedly.
	QueueDepth int
	// CellWorkers caps concurrently executing simulations process-wide;
	// <=0 means GOMAXPROCS.
	CellWorkers int
	// CacheDir is the on-disk result cache shared by every job; empty
	// selects a memory-only cache.
	CacheDir string
	// JobHistory bounds how many finished jobs (with their results) stay
	// queryable before the oldest are evicted.
	JobHistory int
	// DrainTimeout bounds the SIGTERM graceful drain: queued and running
	// jobs get this long to finish before being cancelled.
	DrainTimeout time.Duration
}

// DefaultServe returns the daemon defaults.
func DefaultServe() ServeConfig {
	return ServeConfig{
		Addr:         ":8080",
		JobWorkers:   2,
		QueueDepth:   64,
		CellWorkers:  0,
		CacheDir:     ".ohmserve-cache",
		JobHistory:   512,
		DrainTimeout: 30 * time.Second,
	}
}
