package config

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestPresetsResolveIdenticalToDefault is the acceptance criterion that
// keeps every batch cache key stable across the spec redesign: building a
// platform through the preset registry must be byte-identical to
// config.Default for all seven platforms in both modes.
func TestPresetsResolveIdenticalToDefault(t *testing.T) {
	if len(Presets()) != len(AllPlatforms()) {
		t.Fatalf("preset registry has %d entries, want %d", len(Presets()), len(AllPlatforms()))
	}
	for _, pre := range Presets() {
		for _, m := range AllModes() {
			got := pre.Build(m)
			want := Default(pre.Platform, m)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("preset %s/%s != Default:\n%+v\n%+v", pre.Name, m, got, want)
			}
			gj, _ := json.Marshal(got)
			wj, _ := json.Marshal(want)
			if string(gj) != string(wj) {
				t.Fatalf("preset %s/%s JSON differs from Default", pre.Name, m)
			}

			sc, err := Spec{Preset: pre.Name, Mode: m.String()}.Resolve()
			if err != nil {
				t.Fatalf("Spec{%s,%s}.Resolve: %v", pre.Name, m, err)
			}
			if !reflect.DeepEqual(sc.Config, want) {
				t.Fatalf("spec-resolved %s/%s differs from Default", pre.Name, m)
			}
			if sc.Custom {
				t.Fatalf("default workload resolved as custom")
			}
			if sc.Workload.Name != DefaultWorkload {
				t.Fatalf("default workload = %q", sc.Workload.Name)
			}
		}
	}
}

func TestLookupPresetAndParsePlatformAgree(t *testing.T) {
	for _, name := range []string{"ohm-bw", "OHM_BW", "Ohm-base", "oracle"} {
		pre, ok := LookupPreset(name)
		if !ok {
			t.Fatalf("LookupPreset(%q) missed", name)
		}
		p, err := ParsePlatform(name)
		if err != nil || p != pre.Platform {
			t.Fatalf("ParsePlatform(%q) = %v, %v; preset says %v", name, p, err, pre.Platform)
		}
	}
	_, err := ParsePlatform("nope")
	if err == nil {
		t.Fatal("ParsePlatform accepted unknown name")
	}
	for _, name := range PresetNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("ParsePlatform error %q does not enumerate %q", err, name)
		}
	}
}

func TestOverrideSetKnownPaths(t *testing.T) {
	cfg := Default(OhmBW, Planar)
	cases := []struct {
		path  string
		value interface{}
		check func() bool
	}{
		{"optical.waveguides", float64(4), func() bool { return cfg.Optical.Waveguides == 4 }},
		{"xpoint.write_latency_ns", float64(1200), func() bool { return cfg.XPoint.WriteLatency == 1200*sim.Nanosecond }},
		{"xpoint.read_latency_ns", 95.5, func() bool { return cfg.XPoint.ReadLatency == sim.Time(95.5*float64(sim.Nanosecond)) }},
		{"gpu.mshr_entries", 16, func() bool { return cfg.GPU.MSHREntries == 16 }},
		{"gpu.noc_detailed", true, func() bool { return cfg.GPU.NoCDetailed }},
		{"dram.refresh_enable", "true", func() bool { return cfg.DRAM.RefreshEnable }},
		{"dram.trcd_ns", 30, func() bool { return cfg.DRAM.TRCD == 30*sim.Nanosecond }},
		{"memory.dram_bytes", float64(1 << 20), func() bool { return cfg.Memory.DRAMBytes == 1<<20 }},
		{"memory.xpoint_bytes", "8388608", func() bool { return cfg.Memory.XPointBytes == 8<<20 }},
		{"optical.laser_boost", 2.5, func() bool { return cfg.Optical.LaserBoost == 2.5 }},
		{"electrical.pj_per_bit", 0.9, func() bool { return cfg.Electrical.PJPerBit == 0.9 }},
		{"seed", float64(42), func() bool { return cfg.Seed == 42 }},
		{"max_instructions", "4000", func() bool { return cfg.MaxInstructions == 4000 }},
		{"gpu.sms", 8, func() bool { return cfg.GPU.SMs == 8 }},
		{"gpu.l2_size_bytes", 1 << 15, func() bool { return cfg.GPU.L2SizeBytes == 1<<15 }},
		{"xpoint.wear_limit", float64(5000), func() bool { return cfg.XPoint.WearLimit == 5000 }},
	}
	for _, c := range cases {
		if err := cfg.Set(c.path, c.value); err != nil {
			t.Fatalf("Set(%q, %v): %v", c.path, c.value, err)
		}
		if !c.check() {
			t.Fatalf("Set(%q, %v) did not land", c.path, c.value)
		}
	}
}

func TestOverrideErrorsNameThePath(t *testing.T) {
	cfg := Default(OhmBW, Planar)
	cases := []struct {
		path  string
		value interface{}
	}{
		{"optical.wavelengths", 4},         // unknown leaf
		{"nope.waveguides", 4},             // unknown section
		{"gpu.mshr_entries", "many"},       // unparsable int
		{"gpu.mshr_entries", 1.5},          // non-integral
		{"optical.waveguides", true},       // bool for int
		{"gpu.noc_detailed", 3.0},          // number for bool
		{"xpoint.wear_limit", float64(-1)}, // negative for uint
		{"dram.trcd_ns", -30},              // negative duration
		{"platform", "oracle"},             // identity, not overridable
		{"mode", "planar"},                 // identity, not overridable
		{"memory.mode", float64(1)},        // identity, not overridable
	}
	for _, c := range cases {
		err := cfg.Set(c.path, c.value)
		if err == nil {
			t.Fatalf("Set(%q, %v) accepted", c.path, c.value)
		}
		if !strings.Contains(err.Error(), c.path) {
			t.Fatalf("error %q does not name path %q", err, c.path)
		}
	}
	// Unknown paths sharing a known leaf get a suggestion.
	err := cfg.Set("waveguides", 4)
	if err == nil || !strings.Contains(err.Error(), "optical.waveguides") {
		t.Fatalf("no suggestion for bare leaf: %v", err)
	}
}

func TestApplyOverridesDeterministicAndAtLeastFirstError(t *testing.T) {
	cfg := Default(Origin, Planar)
	err := cfg.ApplyOverrides(map[string]interface{}{
		"max_instructions": 1000,
		"zzz.bad":          1,
		"aaa.bad":          1,
	})
	if err == nil || !strings.Contains(err.Error(), "aaa.bad") {
		t.Fatalf("ApplyOverrides should fail on the first sorted path: %v", err)
	}
}

func TestOverridePathsSchema(t *testing.T) {
	paths := OverridePaths()
	byName := map[string]string{}
	for _, p := range paths {
		byName[p.Path] = p.Type
	}
	want := map[string]string{
		"optical.waveguides":            "int",
		"xpoint.write_latency_ns":       "duration_ns",
		"gpu.mshr_entries":              "int",
		"gpu.interconnect_latency_ns":   "duration_ns",
		"dram.burst_ns":                 "duration_ns",
		"memory.hot_epoch_ns":           "duration_ns",
		"optical.waveguide_loss_db_cm":  "float",
		"memory.xpoint_bytes":           "int",
		"gpu.noc_detailed":              "bool",
		"xpoint.wear_limit":             "uint",
		"seed":                          "uint",
		"max_instructions":              "int",
		"optical.mrr_tuning_fj_per_bit": "float",
		"electrical.bandwidth_scale":    "float",
	}
	for p, typ := range want {
		if got, ok := byName[p]; !ok || got != typ {
			t.Fatalf("OverridePaths missing %s (%s); got %q ok=%v", p, typ, got, ok)
		}
	}
	for _, forbidden := range []string{"platform", "mode", "memory.mode"} {
		if _, ok := byName[forbidden]; ok {
			t.Fatalf("identity field %q must not be overridable", forbidden)
		}
	}
}

// TestSpecRoundTripCanonical: JSON encode -> decode -> resolve produces the
// same Config (and thus cache key) as resolving the original spec.
func TestSpecRoundTripCanonical(t *testing.T) {
	specs := []Spec{
		{},
		{Preset: "oracle", Mode: "two-level"},
		{Preset: "ohm-base", Mode: "planar",
			Overrides: map[string]interface{}{"optical.waveguides": 2, "xpoint.write_latency_ns": 900.5},
			Workload:  &WorkloadSpec{Name: "lud"}},
		{Preset: "hetero", Mode: "two-level",
			Overrides: map[string]interface{}{"gpu.mshr_entries": 32, "max_instructions": 2000},
			Workload: &WorkloadSpec{Inline: &Workload{
				Name: "streamwrite", APKI: 120, ReadRatio: 0.35, FootprintScale: 3, HotSkew: 0.8}}},
	}
	for i, s := range specs {
		orig, err := s.Resolve()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		again, err := back.Resolve()
		if err != nil {
			t.Fatalf("spec %d re-resolve: %v", i, err)
		}
		if !reflect.DeepEqual(orig.Config, again.Config) {
			t.Fatalf("spec %d: round trip changed the resolved config", i)
		}
		if orig.Workload != again.Workload || orig.Custom != again.Custom {
			t.Fatalf("spec %d: round trip changed the workload (%+v vs %+v)", i, orig.Workload, again.Workload)
		}
	}
}

func TestSpecInlineTableIIWorkloadCanonicalizes(t *testing.T) {
	table, _ := WorkloadByName("pagerank")
	sc, err := Spec{Workload: &WorkloadSpec{Inline: &table}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Custom {
		t.Fatal("inline copy of a Table II workload must canonicalize to the named form")
	}
	// A modified copy is genuinely custom.
	mod := table
	mod.HotSkew = 2.0
	sc, err = Spec{Workload: &WorkloadSpec{Inline: &mod}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Custom {
		t.Fatal("modified inline workload must be custom")
	}
}

func TestSpecResolveErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown preset", Spec{Preset: "nope"}, "unknown preset"},
		{"unknown mode", Spec{Mode: "sideways"}, "unknown memory mode"},
		{"bad override path", Spec{Overrides: map[string]interface{}{"gpu.typo": 1}}, "gpu.typo"},
		{"bad override type", Spec{Overrides: map[string]interface{}{"gpu.mshr_entries": "lots"}}, "gpu.mshr_entries"},
		{"unknown workload", Spec{Workload: &WorkloadSpec{Name: "nope"}}, "unknown workload"},
		{"invalid inline workload", Spec{Workload: &WorkloadSpec{Inline: &Workload{Name: "x"}}}, "apki"},
		{"invalid resolved config", Spec{Overrides: map[string]interface{}{"optical.waveguides": 0}}, "waveguides"},
	}
	for _, c := range cases {
		_, err := c.spec.Resolve()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestWorkloadSpecJSONForms(t *testing.T) {
	var w WorkloadSpec
	if err := json.Unmarshal([]byte(`"sssp"`), &w); err != nil || w.Name != "sssp" || w.Inline != nil {
		t.Fatalf("name form: %+v, %v", w, err)
	}
	inline := `{"name":"mix","apki":50,"read_ratio":0.5,"footprint_scale":2,"hot_skew":1}`
	if err := json.Unmarshal([]byte(inline), &w); err != nil || w.Inline == nil || w.Inline.Name != "mix" {
		t.Fatalf("inline form: %+v, %v", w, err)
	}
	if err := json.Unmarshal([]byte(`{"name":"mix","apki":50,"reed_ratio":0.5}`), &w); err == nil {
		t.Fatal("unknown inline field accepted")
	}
	data, err := json.Marshal(WorkloadSpec{Name: "lud"})
	if err != nil || string(data) != `"lud"` {
		t.Fatalf("marshal name form = %s, %v", data, err)
	}
	data, err = json.Marshal(WorkloadSpec{Inline: &Workload{Name: "mix", APKI: 50, ReadRatio: 0.5, FootprintScale: 2, HotSkew: 1}})
	if err != nil || !strings.Contains(string(data), `"apki":50`) {
		t.Fatalf("marshal inline form = %s, %v", data, err)
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"MSHREntries":       "mshr_entries",
		"L1SizeBytes":       "l1_size_bytes",
		"HCMRRTune":         "hcmrr_tune",
		"TRCD":              "trcd",
		"CoreFreqHz":        "core_freq_hz",
		"DRAMBytes":         "dram_bytes",
		"BaselineDRAMBytes": "baseline_dram_bytes",
		"PJPerBit":          "pj_per_bit",
		"WarpsPerSM":        "warps_per_sm",
		"StartGapK":         "start_gap_k",
		"RegisterKB":        "register_kb",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Fatalf("snakeCase(%s) = %s, want %s", in, got, want)
		}
	}
}

// TestSpecDocCoversEveryOverridePath keeps docs/reference/spec.md honest:
// every registered override path must appear (backtick-quoted) in the
// reference page, so the schema table can't drift from the code.
func TestSpecDocCoversEveryOverridePath(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "reference", "spec.md"))
	if err != nil {
		t.Fatalf("reference page missing: %v", err)
	}
	for _, p := range OverridePaths() {
		if !strings.Contains(string(doc), "`"+p.Path+"`") {
			t.Errorf("docs/reference/spec.md does not document override path %q", p.Path)
		}
	}
}

func TestApplyOverridesRejectsCaseFoldedDuplicates(t *testing.T) {
	cfg := Default(OhmBW, Planar)
	err := cfg.ApplyOverrides(map[string]interface{}{
		"optical.waveguides": 2,
		"Optical.Waveguides": 4,
	})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("case-folded duplicate accepted: %v", err)
	}
}
