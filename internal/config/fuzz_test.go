package config

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSpecResolve covers the scenario document path (ohmsim -spec,
// ohmserve {"scenario": ...}): arbitrary JSON must either fail decoding,
// fail Resolve with a named error, or resolve to a validated scenario —
// never panic.
func FuzzSpecResolve(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"preset":"ohm-base"}`,
		`{"preset":"ohm-bw","mode":"two-level","workload":"pagerank"}`,
		`{"preset":"origin","overrides":{"gpu.sms":16}}`,
		`{"overrides":{"xpoint.write_latency_ns":-1}}`,
		`{"overrides":{"xpoint.write_latency_ns":1e308}}`,
		`{"overrides":{"memory.page_bytes":0}}`,
		`{"workload":{"name":"w","apki":100,"read_ratio":0.5,"footprint_scale":1e30,"hot_skew":0.5}}`,
		`{"workload":{"name":"w","apki":-1,"read_ratio":2,"footprint_scale":0,"hot_skew":-3}}`,
		`{"workload":""}`,
		`{"preset":"oHm_BaSe","mode":"2lm"}`,
		`{"mode":"nope"}`,
		`{"mode":"analytical"}`,
		`{"preset":"ohm-bw","mode":"two-level+analytical","workload":"pagerank"}`,
		`{"mode":"planar+des"}`,
		`{"mode":"twin+two-level"}`,
		`{"mode":"analytical+analytical"}`,
		`{"mode":"+"}`,
		`null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return
		}
		sc, err := s.Resolve()
		if err != nil {
			return
		}
		// A resolved scenario must survive the canonical round trip: the
		// spec layer promises encode→decode→resolve reaches the same
		// config (and therefore the same cache key).
		if err := sc.Config.Validate(); err != nil {
			t.Fatalf("resolved config fails its own validation: %v", err)
		}
	})
}

// FuzzSet covers the dotted-path override layer with CLI-shaped string
// values ("-set path=value"): unknown paths and untypeable values must
// return errors naming the path, never panic, and a successful Set must
// leave a config that still marshals (cache keys hash the JSON form).
func FuzzSet(f *testing.F) {
	type seed struct{ path, value string }
	seeds := []seed{
		{"optical.waveguides", "4"},
		{"xpoint.write_latency_ns", "900.5"},
		{"gpu.sms", "-3"},
		{"seed", "18446744073709551615"},
		{"seed", "-1"},
		{"memory.hot_threshold", "true"},
		{"noc_detailed", "yes"},
		{"dram.trcd_ns", "1e400"},
		{"dram.trcd_ns", "NaN"},
		{"", ""},
		{"....", "0"},
		{"OPTICAL.WAVEGUIDES", " 2 "},
		{"waveguides", "1"},
		{"optical.waveguides.extra", "1"},
	}
	for _, s := range seeds {
		f.Add(s.path, s.value)
	}
	f.Fuzz(func(t *testing.T, path, value string) {
		cfg := Default(OhmBW, Planar)
		if err := cfg.Set(path, value); err != nil {
			return
		}
		if _, err := json.Marshal(cfg); err != nil {
			t.Fatalf("config unmarshalable after Set(%q, %q): %v", path, value, err)
		}
	})
}
