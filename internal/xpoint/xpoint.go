// Package xpoint models a 3D XPoint memory device together with its
// logic-layer controller (Section III-A, Figure 6c). The controller
// implements what the paper describes: read and persistent-write buffers
// that decouple the asynchronous DDR-T protocol from the memory channel,
// Start-Gap wear-levelling ([55]) instead of a DRAM-resident mapping table,
// address translation, and the new migration functions — auto-read/write
// (snarf), swap (DDR sequence generator), and reverse-write — whose channel
// scheduling lives in the heterogeneous memory controller.
package xpoint

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
)

// Device is the raw XPoint storage array. Internal partitions provide
// limited parallelism; each partitioned access pays the Table I read or
// write latency. Partitions are gap-filled so an arbitrated migration
// operation at a future instant does not block demand in between.
type Device struct {
	cfg        config.XPointConfig
	lineBytes  int
	partitions []*sim.GapResource

	Reads  uint64
	Writes uint64
}

// NewDevice builds a device; partitions is the internal parallelism (a
// device property, 8 matches contemporary Optane-class media).
func NewDevice(cfg config.XPointConfig, lineBytes, partitions int) *Device {
	return newDeviceIn(nil, nil, cfg, lineBytes, partitions)
}

func partName(_ string, i int) string { return fmt.Sprintf("xp-part%d", i) }

// newDeviceIn is NewDevice rebuilding into a recycled device; re and pools
// may both be nil, so fresh and pooled construction share one code path.
func newDeviceIn(re *Device, pools *sim.Pools, cfg config.XPointConfig, lineBytes, partitions int) *Device {
	if partitions <= 0 {
		partitions = 1
	}
	if re == nil {
		re = &Device{}
	}
	parts := re.partitions
	if cap(parts) < partitions {
		parts = make([]*sim.GapResource, partitions)
	} else {
		parts = parts[:partitions]
	}
	*re = Device{cfg: cfg, lineBytes: lineBytes, partitions: parts}
	for i := range parts {
		parts[i] = pools.GapResource(pools.Name("xp-part", i, partName))
	}
	return re
}

func (d *Device) partition(addr uint64) int {
	// Mix high bits into the partition index: page-aligned operations
	// (migrations) would otherwise all land on partition 0 and serialize.
	idx := addr / uint64(d.lineBytes)
	idx ^= idx >> 5
	idx ^= idx >> 11
	return int(idx % uint64(len(d.partitions)))
}

// Read performs a media read whose command arrives at time at; it returns
// when data is available at the device interface.
func (d *Device) Read(at sim.Time, addr uint64) sim.Time {
	p := d.partition(addr)
	_, done := d.partitions[p].Reserve(at, d.cfg.ReadLatency)
	d.Reads++
	return done
}

// Write performs a media write; it returns when the cell array has
// persisted the line.
func (d *Device) Write(at sim.Time, addr uint64) sim.Time {
	p := d.partition(addr)
	_, done := d.partitions[p].Reserve(at, d.cfg.WriteLatency)
	d.Writes++
	return done
}

// StartGap implements the Start-Gap wear-levelling scheme [55]: N logical
// lines map onto N+1 physical lines with a roaming gap. Every K writes the
// gap moves one slot, slowly rotating the mapping so hot lines spread over
// the physical array. This removes the DRAM-resident mapping table a
// page-table-based scheme would need (Section III-A).
type StartGap struct {
	n     int64 // logical lines
	gap   int64 // physical index of the unused line
	start int64 // rotation offset
	k     int   // writes per gap movement
	count int   // writes since last movement

	GapMoves uint64
}

// NewStartGap builds the mapper for n logical lines, moving the gap every k
// writes. n must be positive; k <= 0 disables movement (degenerates to a
// static layout, useful as an ablation baseline).
func NewStartGap(n int64, k int) *StartGap {
	if n <= 0 {
		panic(fmt.Sprintf("xpoint: StartGap with non-positive lines %d", n))
	}
	return &StartGap{n: n, gap: n, k: k}
}

// Translate maps a logical line index to its physical line index using the
// canonical Start-Gap formula [55]: rotate by start over the n logical
// slots, then skip the gap.
func (s *StartGap) Translate(logical int64) int64 {
	if logical < 0 || logical >= s.n {
		panic(fmt.Sprintf("xpoint: logical line %d out of [0,%d)", logical, s.n))
	}
	p := (logical + s.start) % s.n
	if p >= s.gap {
		p++
	}
	return p
}

// OnWrite advances the wear-levelling state machine after one line write
// and reports whether the gap moved (the move itself costs one internal
// line copy, which the controller charges as an extra device write).
func (s *StartGap) OnWrite() (moved bool) {
	if s.k <= 0 {
		return false
	}
	s.count++
	if s.count < s.k {
		return false
	}
	s.count = 0
	s.GapMoves++
	s.gap--
	if s.gap < 0 {
		s.gap = s.n
		s.start = (s.start + 1) % s.n
	}
	return true
}

// pendingWrite tracks one entry draining from the persistent write buffer.
type pendingWrite struct {
	done sim.Time
}

// Controller is the XPoint logic-layer controller.
type Controller struct {
	cfg       config.XPointConfig
	dev       *Device
	sg        *StartGap
	lineBytes int

	// Persistent write buffer: entries admitted immediately if a slot is
	// free; otherwise the DDR-T ack stalls until the earliest drain.
	writeBuf []pendingWrite
	// Read buffer simply bounds outstanding reads.
	readBuf []pendingWrite

	wear []uint32 // per-physical-line write counts (uint32 bounds memory at scale)

	// wearTouched journals the distinct physical lines written this run, so
	// a pooled rebuild zeroes O(touched lines) instead of the whole wear
	// array — by far the largest allocation in a cell, and writes touch a
	// small fraction of it. When the journal would exceed an eighth of the
	// array, wearFull switches the rebuild to one full clear instead.
	// Invariant: every non-zero wear entry is journaled or wearFull is set,
	// so after the rebuild's clearing step the backing array is all zero.
	wearTouched []int64
	wearFull    bool

	BufferedWrites uint64
	StalledWrites  uint64
	SnarfedBytes   uint64
	SwapOps        uint64
	ReverseWrites  uint64
}

// NewController assembles a controller over capacityBytes of media.
func NewController(cfg config.XPointConfig, capacityBytes int64, lineBytes int) *Controller {
	return NewControllerIn(nil, nil, cfg, capacityBytes, lineBytes)
}

// NewControllerIn is NewController rebuilding into a recycled controller:
// the wear array, write/read buffers, device partitions and Start-Gap state
// are reinitialized in place. The recycled wear array is scrubbed through
// the wearTouched journal rather than wholesale, so reuse costs time
// proportional to the previous run's writes, not the media capacity. Both
// re and pools may be nil; New is exactly NewControllerIn(nil, nil, ...).
func NewControllerIn(re *Controller, pools *sim.Pools, cfg config.XPointConfig, capacityBytes int64, lineBytes int) *Controller {
	lines := capacityBytes / int64(lineBytes)
	if lines < 1 {
		lines = 1
	}
	parts := cfg.Partitions
	if parts <= 0 {
		parts = 8
	}
	if re == nil {
		re = &Controller{}
	}
	// Scrub the retained wear array to all-zero (see the wearTouched
	// invariant), then resize it within capacity when possible.
	wear := re.wear
	if re.wearFull {
		clear(wear)
	} else {
		for _, p := range re.wearTouched {
			wear[p] = 0
		}
	}
	need := int(lines + 1)
	if cap(wear) < need {
		wear = make([]uint32, need)
	} else {
		wear = wear[:need]
	}
	sg := re.sg
	if sg == nil {
		sg = NewStartGap(lines, cfg.StartGapK)
	} else {
		if lines <= 0 {
			panic(fmt.Sprintf("xpoint: StartGap with non-positive lines %d", lines))
		}
		*sg = StartGap{n: lines, gap: lines, k: cfg.StartGapK}
	}
	*re = Controller{
		cfg:         cfg,
		dev:         newDeviceIn(re.dev, pools, cfg, lineBytes, parts),
		sg:          sg,
		lineBytes:   lineBytes,
		wear:        wear,
		wearTouched: re.wearTouched[:0],
		writeBuf:    re.writeBuf[:0],
		readBuf:     re.readBuf[:0],
	}
	return re
}

// noteWear counts one write to a physical line, journaling its first touch
// for the pooled rebuild's scrub.
func (c *Controller) noteWear(pline int64) {
	if c.wear[pline] == 0 && !c.wearFull {
		if len(c.wearTouched) < len(c.wear)/8 {
			c.wearTouched = append(c.wearTouched, pline)
		} else {
			c.wearFull = true
			c.wearTouched = c.wearTouched[:0]
		}
	}
	c.wear[pline]++
}

// Device exposes the raw device (used by tests and energy accounting).
func (c *Controller) Device() *Device { return c.dev }

// Gap exposes the wear-levelling state (for tests/ablation).
func (c *Controller) Gap() *StartGap { return c.sg }

func (c *Controller) logicalLine(addr uint64) int64 {
	l := int64(addr) / int64(c.lineBytes)
	n := c.sg.n
	if l >= n {
		l %= n
	}
	return l
}

func (c *Controller) physAddr(addr uint64) (uint64, int64) {
	p := c.sg.Translate(c.logicalLine(addr))
	return uint64(p) * uint64(c.lineBytes), p
}

// compact drops drained buffer entries (done <= at).
func compact(buf []pendingWrite, at sim.Time) []pendingWrite {
	out := buf[:0]
	for _, p := range buf {
		if p.done > at {
			out = append(out, p)
		}
	}
	return out
}

// earliest returns the earliest completion in buf; callers guarantee buf is
// non-empty.
func earliest(buf []pendingWrite) sim.Time {
	e := buf[0].done
	for _, p := range buf[1:] {
		if p.done < e {
			e = p.done
		}
	}
	return e
}

// Read issues a line read through the read buffer; it returns when data is
// ready at the controller (DDR-T would then schedule the channel transfer).
func (c *Controller) Read(at sim.Time, addr uint64) sim.Time {
	c.readBuf = compact(c.readBuf, at)
	start := at
	if len(c.readBuf) >= c.cfg.ReadBufEnt {
		start = earliest(c.readBuf)
		c.readBuf = compact(c.readBuf, start)
	}
	pa, _ := c.physAddr(addr)
	done := c.dev.Read(start, pa)
	c.readBuf = append(c.readBuf, pendingWrite{done: done})
	return done
}

// Write admits a line write into the persistent write buffer. The returned
// ack is when DDR-T acknowledges the command (slot admission), which is
// what the memory channel observes; the media write drains in background.
func (c *Controller) Write(at sim.Time, addr uint64) (ack sim.Time) {
	c.writeBuf = compact(c.writeBuf, at)
	ack = at
	if len(c.writeBuf) >= c.cfg.WriteBufEnt {
		ack = earliest(c.writeBuf)
		c.writeBuf = compact(c.writeBuf, ack)
		c.StalledWrites++
	}
	pa, pline := c.physAddr(addr)
	done := c.dev.Write(ack, pa)
	c.noteWear(pline)
	c.writeBuf = append(c.writeBuf, pendingWrite{done: done})
	c.BufferedWrites++
	if c.sg.OnWrite() {
		// Gap movement copies one line internally.
		gapAddr := uint64(c.sg.gap) * uint64(c.lineBytes)
		c.dev.Write(done, gapAddr)
	}
	return ack
}

// DrainedBy reports when all currently buffered writes have persisted.
func (c *Controller) DrainedBy(at sim.Time) sim.Time {
	latest := at
	for _, p := range c.writeBuf {
		if p.done > latest {
			latest = p.done
		}
	}
	return latest
}

// Snarf models the controller hooking command/address/data/ECC/tag off the
// optical channel while the memory controller talks to DRAM (Section IV-B,
// auto-read/write). It costs the controller nothing on the channel; the
// captured bytes are accounted for reporting.
func (c *Controller) Snarf(bytes uint64) {
	c.SnarfedBytes += bytes
}

// scheduledOp performs a media operation whose start instant was already
// arbitrated by the controller's conflict detection: it books exactly its
// own window without queueing.
func (c *Controller) scheduledOp(at sim.Time, pa uint64, write bool) sim.Time {
	p := c.dev.partition(pa)
	lat := c.cfg.ReadLatency
	if write {
		lat = c.cfg.WriteLatency
		c.dev.Writes++
	} else {
		c.dev.Reads++
	}
	_, done := c.dev.partitions[p].ReserveAt(at, lat)
	return done
}

// SwapWrite is the media half of the swap function: the DDR sequence
// generator has read the DRAM side; this persists the line into XPoint. It
// bypasses the write-buffer DDR-T ack path because the XPoint controller
// itself originates the transfer (Figure 11 steps 3-4).
func (c *Controller) SwapWrite(at sim.Time, addr uint64) sim.Time {
	pa, pline := c.physAddr(addr)
	done := c.scheduledOp(at, pa, true)
	c.noteWear(pline)
	c.SwapOps++
	if c.sg.OnWrite() {
		gapAddr := uint64(c.sg.gap) * uint64(c.lineBytes)
		c.scheduledOp(done, gapAddr, true)
	}
	return done
}

// MigrWrite persists a migration line write at an arbitrated instant.
func (c *Controller) MigrWrite(at sim.Time, addr uint64) sim.Time {
	pa, pline := c.physAddr(addr)
	c.noteWear(pline)
	return c.scheduledOp(at, pa, true)
}

// MigrRead fetches a migration line at an arbitrated instant.
func (c *Controller) MigrRead(at sim.Time, addr uint64) sim.Time {
	pa, _ := c.physAddr(addr)
	return c.scheduledOp(at, pa, false)
}

// ReverseRead is the media half of the reverse-write function: read a line
// from XPoint that the controller will push to DRAM over the memory route
// (Figure 12).
func (c *Controller) ReverseRead(at sim.Time, addr uint64) sim.Time {
	pa, _ := c.physAddr(addr)
	c.ReverseWrites++
	return c.scheduledOp(at, pa, false)
}

// WearStats summarises the physical wear distribution.
type WearStats struct {
	Max, Min, Total uint64
	Lines           int
}

// Wear computes the current wear statistics (Min over written lines only
// when any line is written; all-zero arrays report zeros).
func (c *Controller) Wear() WearStats {
	ws := WearStats{Lines: len(c.wear)}
	first := true
	for _, w32 := range c.wear {
		w := uint64(w32)
		ws.Total += w
		if w > ws.Max {
			ws.Max = w
		}
		if first || w < ws.Min {
			ws.Min = w
			first = false
		}
	}
	return ws
}

// ExceedsEndurance reports whether any line passed the endurance budget.
func (c *Controller) ExceedsEndurance() bool {
	return c.Wear().Max > c.cfg.WearLimit
}
