package xpoint

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/sim"
)

const lineB = 128

func ctrl() *Controller {
	return NewController(config.DefaultXPoint(), 1<<20, lineB)
}

func TestDeviceLatencies(t *testing.T) {
	cfg := config.DefaultXPoint()
	d := NewDevice(cfg, lineB, 8)
	if done := d.Read(0, 0); done != cfg.ReadLatency {
		t.Fatalf("read done at %s, want %s", done, cfg.ReadLatency)
	}
	if done := d.Write(cfg.ReadLatency, lineB); done != cfg.ReadLatency+cfg.WriteLatency {
		t.Fatalf("write latency wrong: %s", done)
	}
	if d.Reads != 1 || d.Writes != 1 {
		t.Fatalf("counters r=%d w=%d", d.Reads, d.Writes)
	}
}

func TestDevicePartitionParallelism(t *testing.T) {
	cfg := config.DefaultXPoint()
	d := NewDevice(cfg, lineB, 8)
	// Lines 0 and 1 land in different partitions: both complete at ReadLatency.
	d0 := d.Read(0, 0)
	d1 := d.Read(0, lineB)
	if d0 != cfg.ReadLatency || d1 != cfg.ReadLatency {
		t.Fatalf("parallel partitions serialized: %s %s", d0, d1)
	}
	// Same partition serializes.
	d2 := d.Read(0, 8*lineB)
	if d2 != 2*cfg.ReadLatency {
		t.Fatalf("same-partition read must queue: %s", d2)
	}
}

func TestDeviceSinglePartitionFallback(t *testing.T) {
	d := NewDevice(config.DefaultXPoint(), lineB, 0)
	d.Read(0, 0)
	if len(d.partitions) != 1 {
		t.Fatal("non-positive partitions must fall back to 1")
	}
}

func TestStartGapBijective(t *testing.T) {
	sg := NewStartGap(100, 5)
	for round := 0; round < 30; round++ {
		seen := make(map[int64]bool)
		for l := int64(0); l < 100; l++ {
			p := sg.Translate(l)
			if p < 0 || p > 100 {
				t.Fatalf("physical %d out of range", p)
			}
			if p == sg.gap {
				t.Fatalf("logical %d mapped onto the gap %d", l, sg.gap)
			}
			if seen[p] {
				t.Fatalf("mapping not injective at round %d", round)
			}
			seen[p] = true
		}
		for i := 0; i < 7; i++ {
			sg.OnWrite()
		}
	}
}

func TestStartGapMovesEveryK(t *testing.T) {
	sg := NewStartGap(10, 3)
	moves := 0
	for i := 0; i < 30; i++ {
		if sg.OnWrite() {
			moves++
		}
	}
	if moves != 10 {
		t.Fatalf("gap moved %d times in 30 writes with K=3, want 10", moves)
	}
	if sg.GapMoves != 10 {
		t.Fatalf("GapMoves = %d", sg.GapMoves)
	}
}

func TestStartGapDisabled(t *testing.T) {
	sg := NewStartGap(10, 0)
	for i := 0; i < 100; i++ {
		if sg.OnWrite() {
			t.Fatal("disabled start-gap must never move")
		}
	}
}

func TestStartGapFullRotation(t *testing.T) {
	// After (n+1)*K writes the gap wraps and start advances: still bijective.
	sg := NewStartGap(8, 1)
	for i := 0; i < 9; i++ {
		sg.OnWrite()
	}
	if sg.start != 1 {
		t.Fatalf("start = %d after full gap rotation, want 1", sg.start)
	}
	seen := make(map[int64]bool)
	for l := int64(0); l < 8; l++ {
		p := sg.Translate(l)
		if seen[p] {
			t.Fatal("mapping broken after rotation")
		}
		seen[p] = true
	}
}

func TestStartGapPanicsOutOfRange(t *testing.T) {
	sg := NewStartGap(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range logical line")
		}
	}()
	sg.Translate(10)
}

func TestControllerReadLatency(t *testing.T) {
	c := ctrl()
	cfg := config.DefaultXPoint()
	if done := c.Read(0, 0); done != cfg.ReadLatency {
		t.Fatalf("controller read done %s, want %s", done, cfg.ReadLatency)
	}
}

func TestControllerWriteAckFastWhenBuffered(t *testing.T) {
	c := ctrl()
	// With free write-buffer slots, DDR-T acks immediately: the channel is
	// not held for the 763ns media write.
	if ack := c.Write(100, 0); ack != 100 {
		t.Fatalf("buffered write ack at %s, want 100ps", ack)
	}
	if c.BufferedWrites != 1 || c.StalledWrites != 0 {
		t.Fatalf("buffered=%d stalled=%d", c.BufferedWrites, c.StalledWrites)
	}
}

func TestControllerWriteBufferBackpressure(t *testing.T) {
	cfg := config.DefaultXPoint()
	cfg.WriteBufEnt = 2
	cfg.StartGapK = 0
	c := NewController(cfg, 1<<20, lineB)
	// Two writes to the same partition fill the buffer; the third must stall
	// until the earliest media write drains.
	c.Write(0, 0)
	c.Write(0, 8*lineB) // same partition 0 (8 partitions): drains at 2*WriteLatency
	ack := c.Write(0, 16*lineB)
	if ack == 0 {
		t.Fatal("third write should stall on a full buffer")
	}
	if c.StalledWrites != 1 {
		t.Fatalf("stalled = %d, want 1", c.StalledWrites)
	}
	if ack != cfg.WriteLatency {
		t.Fatalf("stalled ack at %s, want first drain %s", ack, cfg.WriteLatency)
	}
}

func TestControllerReadBufferBounded(t *testing.T) {
	cfg := config.DefaultXPoint()
	cfg.ReadBufEnt = 4
	c := NewController(cfg, 1<<20, lineB)
	var latest sim.Time
	for i := 0; i < 16; i++ {
		if done := c.Read(0, uint64(i)*lineB); done > latest {
			latest = done
		}
	}
	// 16 concurrent reads through a 4-entry read buffer cannot all finish
	// at one ReadLatency even with unlimited media parallelism.
	if latest <= cfg.ReadLatency {
		t.Fatalf("read buffer not limiting: latest done %s", latest)
	}
}

func TestWearTracking(t *testing.T) {
	cfg := config.DefaultXPoint()
	cfg.StartGapK = 0 // isolate wear accounting
	c := NewController(cfg, 1<<20, lineB)
	for i := 0; i < 10; i++ {
		c.Write(sim.Time(i)*sim.Microsecond*100, 0)
	}
	ws := c.Wear()
	if ws.Max != 10 {
		t.Fatalf("max wear = %d, want 10", ws.Max)
	}
	if ws.Total != 10 {
		t.Fatalf("total wear = %d, want 10", ws.Total)
	}
	if c.ExceedsEndurance() {
		t.Fatal("10 writes must not exceed endurance")
	}
}

func TestStartGapSpreadsWear(t *testing.T) {
	// Hammering one logical line: with Start-Gap the writes spread across
	// physical lines; without it they pile onto one line. This is the whole
	// point of the scheme.
	mk := func(k int) uint64 {
		cfg := config.DefaultXPoint()
		cfg.StartGapK = k
		cfg.WriteBufEnt = 1 << 20
		c := NewController(cfg, 64*lineB, lineB)
		for i := 0; i < 640; i++ {
			c.Write(sim.Time(i)*sim.Millisecond, 0)
		}
		return c.Wear().Max
	}
	withSG := mk(1) // one gap move per write: ~10 full rotations in 640 writes
	without := mk(0)
	if without != 640 {
		t.Fatalf("static mapping max wear = %d, want 640", without)
	}
	if withSG >= without/3 {
		t.Fatalf("start-gap max wear %d not sufficiently below static %d", withSG, without)
	}
}

func TestSnarfAccounting(t *testing.T) {
	c := ctrl()
	c.Snarf(128)
	c.Snarf(128)
	if c.SnarfedBytes != 256 {
		t.Fatalf("snarfed = %d", c.SnarfedBytes)
	}
}

func TestSwapWriteAndReverseRead(t *testing.T) {
	cfg := config.DefaultXPoint()
	c := NewController(cfg, 1<<20, lineB)
	done := c.SwapWrite(0, 0)
	if done != cfg.WriteLatency {
		t.Fatalf("swap write done %s", done)
	}
	if c.SwapOps != 1 {
		t.Fatal("swap op not counted")
	}
	rdone := c.ReverseRead(done, lineB)
	if rdone != done+cfg.ReadLatency {
		t.Fatalf("reverse read done %s", rdone)
	}
	if c.ReverseWrites != 1 {
		t.Fatal("reverse write not counted")
	}
}

func TestDrainedBy(t *testing.T) {
	cfg := config.DefaultXPoint()
	cfg.StartGapK = 0
	c := NewController(cfg, 1<<20, lineB)
	c.Write(0, 0)
	c.Write(0, lineB)
	if got := c.DrainedBy(0); got != cfg.WriteLatency {
		t.Fatalf("DrainedBy = %s, want %s", got, cfg.WriteLatency)
	}
}

func TestAddressWrapping(t *testing.T) {
	// Addresses beyond capacity wrap instead of panicking: the hmem layer
	// scales footprints, but defensive wrapping keeps property tests honest.
	c := NewController(config.DefaultXPoint(), 16*lineB, lineB)
	done := c.Read(0, 1<<40)
	if done <= 0 {
		t.Fatal("wrapped read failed")
	}
}

// Property: translate is always a bijection avoiding the gap, for arbitrary
// write interleavings.
func TestStartGapBijectionProperty(t *testing.T) {
	f := func(writes uint16, n uint8) bool {
		lines := int64(n%60) + 2
		sg := NewStartGap(lines, 3)
		for i := 0; i < int(writes%500); i++ {
			sg.OnWrite()
		}
		seen := make(map[int64]bool)
		for l := int64(0); l < lines; l++ {
			p := sg.Translate(l)
			if p == sg.gap || p < 0 || p > lines || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: controller write acks are never before the request time.
func TestWriteAckMonotonicProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := ctrl()
		at := sim.Time(0)
		for _, a := range addrs {
			ack := c.Write(at, uint64(a)*lineB)
			if ack < at {
				return false
			}
			at += 10 * sim.Nanosecond
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
