// Package costmodel reproduces Table III ("Cost estimation of different Ohm
// memories") and the cost-performance analysis of Figure 21. Memory device
// prices come from the paper's market references [19], [62]; MRR counts
// come from the Figure 15 transmitter/receiver layouts; MRR fabrication
// cost from [22]; the GPU base price is the NVIDIA K80 launch price ($5k).
package costmodel

import (
	"fmt"

	"repro/internal/config"
)

// MRRCounts is the modulator/detector inventory of one platform+mode.
type MRRCounts struct {
	Modulators int
	Detectors  int
}

// Table III MRR counts. The paper derives these by instantiating the
// Figure 15 layouts over up to 24 memory devices; we carry the published
// totals as the calibrated layout model.
var mrrTable = map[config.Platform]map[config.MemMode]MRRCounts{
	config.OhmBase: {
		config.Planar:   {Modulators: 2112, Detectors: 2112},
		config.TwoLevel: {Modulators: 2368, Detectors: 2368},
	},
	config.OhmBW: {
		config.Planar:   {Modulators: 2176, Detectors: 3136},
		config.TwoLevel: {Modulators: 2368, Detectors: 4928},
	},
}

// Per-MRR fabrication cost in dollars, from [22]: a few thousandths of a
// dollar per ring at volume; Table III prices whole inventories at $3-$7.
const mrrUnitCost = 0.0014

// Memory device prices (Table III).
const (
	planarDRAMCost   = 140.0 // 1GB x 12
	planarXPCost     = 125.0 // 8GB x 12
	twoLevelDRAMCost = 70.0  // 1GB x 6
	twoLevelXPCost   = 499.0 // 32GB x 12
	vcselCost        = 100.0
	gpuBasePrice     = 5000.0
)

// DRAM price per GB implied by Table III (used to price Oracle's all-DRAM
// configurations).
const dramPerGB = planarDRAMCost / 12.0

// MRRs returns the Table III MRR inventory for a platform+mode; ok reports
// whether the paper tabulates that combination.
func MRRs(p config.Platform, m config.MemMode) (MRRCounts, bool) {
	if byMode, ok := mrrTable[p]; ok {
		c, ok := byMode[m]
		return c, ok
	}
	return MRRCounts{}, false
}

// Estimate is a full cost breakdown in dollars.
type Estimate struct {
	Platform config.Platform
	Mode     config.MemMode
	DRAM     float64
	XPoint   float64
	MRR      float64
	VCSEL    float64
	GPUBase  float64
}

// Total sums the estimate.
func (e Estimate) Total() float64 {
	return e.DRAM + e.XPoint + e.MRR + e.VCSEL + e.GPUBase
}

// MemoryUpgrade is the cost above the bare GPU.
func (e Estimate) MemoryUpgrade() float64 { return e.Total() - e.GPUBase }

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("%s/%s: DRAM $%.0f + XPoint $%.0f + MRR $%.2f + VCSEL $%.0f + GPU $%.0f = $%.0f",
		e.Platform, e.Mode, e.DRAM, e.XPoint, e.MRR, e.VCSEL, e.GPUBase, e.Total())
}

// Cost estimates the bill of materials for a platform+mode.
func Cost(p config.Platform, m config.MemMode) Estimate {
	e := Estimate{Platform: p, Mode: m, GPUBase: gpuBasePrice}
	switch p {
	case config.Origin:
		// The bare K80-class GPU: its 24GB GDDR is part of the base price.
		return e
	case config.Oracle:
		// All-DRAM at the full heterogeneous capacity (108GB planar, 390GB
		// two-level).
		var gb float64
		if m == config.Planar {
			gb = 108
		} else {
			gb = 390
		}
		e.DRAM = gb * dramPerGB
		e.VCSEL = vcselCost
		if c, ok := MRRs(config.OhmBase, m); ok {
			e.MRR = float64(c.Modulators+c.Detectors) * mrrUnitCost
		}
		return e
	}

	if m == config.Planar {
		e.DRAM, e.XPoint = planarDRAMCost, planarXPCost
	} else {
		e.DRAM, e.XPoint = twoLevelDRAMCost, twoLevelXPCost
	}
	if p.Optical() {
		e.VCSEL = vcselCost
		lookup := p
		// Auto-rw and Ohm-WOM share Ohm-BW's dual-route MRR inventory class;
		// the paper tabulates the two endpoints.
		switch p {
		case config.AutoRW, config.OhmWOM:
			lookup = config.OhmBW
		}
		if c, ok := MRRs(lookup, m); ok {
			e.MRR = float64(c.Modulators+c.Detectors) * mrrUnitCost
		}
	}
	return e
}

// CPRatio is Figure 21's cost-performance metric: performance (IPC,
// normalized however the caller likes) per thousand dollars.
func CPRatio(perf float64, e Estimate) float64 {
	t := e.Total()
	if t <= 0 {
		return 0
	}
	return perf / (t / 1000)
}

// MRRIncreaseVsBase returns the fractional extra MRRs Ohm-BW needs over
// Ohm-base in one mode.
func MRRIncreaseVsBase(m config.MemMode) float64 {
	base, _ := MRRs(config.OhmBase, m)
	bw, _ := MRRs(config.OhmBW, m)
	b := float64(base.Modulators + base.Detectors)
	if b == 0 {
		return 0
	}
	return float64(bw.Modulators+bw.Detectors)/b - 1
}

// MRRIncreaseOverall aggregates both modes; this is the paper's "Ohm-BW
// employs 41% more MRRs than Ohm-base" figure (Section VI-B).
func MRRIncreaseOverall() float64 {
	var base, bw int
	for _, m := range config.AllModes() {
		b, _ := MRRs(config.OhmBase, m)
		w, _ := MRRs(config.OhmBW, m)
		base += b.Modulators + b.Detectors
		bw += w.Modulators + w.Detectors
	}
	if base == 0 {
		return 0
	}
	return float64(bw)/float64(base) - 1
}
