package costmodel

import (
	"math"
	"testing"

	"repro/internal/config"
)

func TestTable3MRRCounts(t *testing.T) {
	cases := []struct {
		p          config.Platform
		m          config.MemMode
		mods, dets int
	}{
		{config.OhmBase, config.Planar, 2112, 2112},
		{config.OhmBase, config.TwoLevel, 2368, 2368},
		{config.OhmBW, config.Planar, 2176, 3136},
		{config.OhmBW, config.TwoLevel, 2368, 4928},
	}
	for _, c := range cases {
		got, ok := MRRs(c.p, c.m)
		if !ok {
			t.Errorf("MRRs(%s,%s) missing", c.p, c.m)
			continue
		}
		if got.Modulators != c.mods || got.Detectors != c.dets {
			t.Errorf("MRRs(%s,%s) = %+v, want %d/%d (Table III)", c.p, c.m, got, c.mods, c.dets)
		}
	}
	if _, ok := MRRs(config.Origin, config.Planar); ok {
		t.Error("Origin has no MRR inventory")
	}
}

func TestMRRIncreaseMatchesPaper(t *testing.T) {
	// Overhead analysis: "Ohm-BW employs 41% more MRRs ... than Ohm-base"
	// (both modes aggregated).
	inc := MRRIncreaseOverall()
	if math.Abs(inc-0.41) > 0.02 {
		t.Fatalf("overall MRR increase = %.3f, want ~0.41", inc)
	}
	if MRRIncreaseVsBase(config.Planar) <= 0 || MRRIncreaseVsBase(config.TwoLevel) <= 0 {
		t.Fatal("Ohm-BW must need more MRRs than Ohm-base in each mode")
	}
}

func TestCostUpgradeFractions(t *testing.T) {
	// "planar and two-level memory modes enabled Ohm-BW only increase total
	// cost by 7.6% and 13.5%" over the $5k GPU.
	planar := Cost(config.OhmBW, config.Planar)
	frac := planar.MemoryUpgrade() / planar.GPUBase
	if math.Abs(frac-0.076) > 0.01 {
		t.Fatalf("planar upgrade fraction = %.4f, want ~0.076", frac)
	}
	twolvl := Cost(config.OhmBW, config.TwoLevel)
	frac2 := twolvl.MemoryUpgrade() / twolvl.GPUBase
	if math.Abs(frac2-0.135) > 0.01 {
		t.Fatalf("two-level upgrade fraction = %.4f, want ~0.135", frac2)
	}
}

func TestOriginIsBasePrice(t *testing.T) {
	e := Cost(config.Origin, config.Planar)
	if e.Total() != 5000 || e.MemoryUpgrade() != 0 {
		t.Fatalf("Origin cost = %v", e)
	}
}

func TestOracleCostsScaleWithCapacity(t *testing.T) {
	p := Cost(config.Oracle, config.Planar)
	tl := Cost(config.Oracle, config.TwoLevel)
	if p.DRAM <= 1000 || tl.DRAM <= p.DRAM {
		t.Fatalf("Oracle DRAM costs: planar $%.0f, two-level $%.0f", p.DRAM, tl.DRAM)
	}
	// 108GB at Table III's $140/12GB = $1260.
	if math.Abs(p.DRAM-1260) > 10 {
		t.Fatalf("Oracle planar DRAM = $%.0f, want ~$1260", p.DRAM)
	}
	if math.Abs(tl.DRAM-4550) > 10 {
		t.Fatalf("Oracle two-level DRAM = $%.0f, want ~$4550", tl.DRAM)
	}
}

func TestHeteroElectricalHasNoOpticalParts(t *testing.T) {
	e := Cost(config.Hetero, config.Planar)
	if e.MRR != 0 || e.VCSEL != 0 {
		t.Fatalf("electrical platform priced optical parts: %v", e)
	}
	if e.DRAM != 140 || e.XPoint != 125 {
		t.Fatalf("Hetero planar device costs wrong: %v", e)
	}
}

func TestCPRatioOrderingMatchesFig21(t *testing.T) {
	// With the paper's relative performance (Origin 0.53, Ohm-BW 1.34,
	// Oracle 1.52 of Ohm-base in planar mode), Ohm-BW has the best CP.
	origin := CPRatio(0.53, Cost(config.Origin, config.Planar))
	ohmBW := CPRatio(1.34, Cost(config.OhmBW, config.Planar))
	oracle := CPRatio(1.52, Cost(config.Oracle, config.Planar))
	if !(ohmBW > oracle && ohmBW > origin) {
		t.Fatalf("CP ordering wrong: origin=%.3f ohmBW=%.3f oracle=%.3f", origin, ohmBW, oracle)
	}
	if CPRatio(1, Estimate{}) != 0 {
		t.Fatal("zero-cost estimate must yield zero ratio")
	}
}

func TestEstimateString(t *testing.T) {
	if Cost(config.OhmBW, config.Planar).String() == "" {
		t.Fatal("estimate must render")
	}
}

func TestAutoRWAndWOMShareBWInventory(t *testing.T) {
	a := Cost(config.AutoRW, config.Planar)
	w := Cost(config.OhmWOM, config.Planar)
	b := Cost(config.OhmBW, config.Planar)
	if a.MRR != b.MRR || w.MRR != b.MRR {
		t.Fatalf("dual-route platforms should share the MRR inventory class: %v %v %v", a.MRR, w.MRR, b.MRR)
	}
}
