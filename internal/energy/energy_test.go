package energy

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestFinalizeComponents(t *testing.T) {
	cfg := config.Default(config.OhmBase, config.Planar)
	col := stats.NewCollector()
	m := Default()
	m.Finalize(col, &cfg, Counters{
		Elapsed:      sim.Millisecond,
		DRAMReads:    100,
		DRAMWrites:   50,
		XPointReads:  30,
		XPointWrites: 10,
	})
	for _, k := range []string{"dram-static", "dram-dynamic", "xpoint", "opti-network"} {
		if col.EnergyPJ[k] <= 0 {
			t.Errorf("component %q missing or non-positive: %v", k, col.EnergyPJ[k])
		}
	}
	wantDyn := 150 * m.DRAMDynamicPJPerAccess
	if math.Abs(col.EnergyPJ["dram-dynamic"]-wantDyn) > 1e-6 {
		t.Errorf("dram-dynamic = %v, want %v", col.EnergyPJ["dram-dynamic"], wantDyn)
	}
	wantXP := 30*m.XPointReadPJ + 10*m.XPointWritePJ
	if math.Abs(col.EnergyPJ["xpoint"]-wantXP) > 1e-6 {
		t.Errorf("xpoint = %v, want %v", col.EnergyPJ["xpoint"], wantXP)
	}
}

func TestStaticScalesWithTime(t *testing.T) {
	cfg := config.Default(config.OhmBase, config.Planar)
	m := Default()
	c1, c2 := stats.NewCollector(), stats.NewCollector()
	m.Finalize(c1, &cfg, Counters{Elapsed: sim.Millisecond})
	m.Finalize(c2, &cfg, Counters{Elapsed: 2 * sim.Millisecond})
	if math.Abs(c2.EnergyPJ["dram-static"]-2*c1.EnergyPJ["dram-static"]) > 1e-3 {
		t.Fatal("static energy must scale linearly with elapsed time")
	}
}

func TestElectricalPlatformHasNoLaser(t *testing.T) {
	cfg := config.Default(config.Hetero, config.Planar)
	col := stats.NewCollector()
	Default().Finalize(col, &cfg, Counters{Elapsed: sim.Millisecond, XPointReads: 1})
	if col.EnergyPJ["opti-network"] != 0 {
		t.Fatal("electrical platform must not pay laser power")
	}
	if col.EnergyPJ["xpoint"] <= 0 {
		t.Fatal("hetero platform must account XPoint energy")
	}
}

func TestDRAMOnlyPlatformHasNoXPoint(t *testing.T) {
	cfg := config.Default(config.Oracle, config.Planar)
	col := stats.NewCollector()
	Default().Finalize(col, &cfg, Counters{Elapsed: sim.Millisecond, XPointReads: 99})
	if col.EnergyPJ["xpoint"] != 0 {
		t.Fatal("Oracle must not account XPoint energy")
	}
}

func TestLaserBoostRaisesOpticalEnergy(t *testing.T) {
	base := config.Default(config.OhmBase, config.Planar)
	bw := config.Default(config.OhmBW, config.Planar)
	c1, c2 := stats.NewCollector(), stats.NewCollector()
	Default().Finalize(c1, &base, Counters{Elapsed: sim.Millisecond})
	Default().Finalize(c2, &bw, Counters{Elapsed: sim.Millisecond})
	if c2.EnergyPJ["opti-network"] <= c1.EnergyPJ["opti-network"] {
		t.Fatal("4x laser boost must raise optical energy")
	}
	ratio := c2.EnergyPJ["opti-network"] / c1.EnergyPJ["opti-network"]
	if math.Abs(ratio-4) > 0.01 {
		t.Fatalf("laser energy ratio = %v, want 4", ratio)
	}
}

func TestOracleStaticDominatesWithHugeDRAM(t *testing.T) {
	// Oracle carries 9x the DRAM in planar mode: its static energy must be
	// 9x Ohm-base's for equal elapsed time.
	base := config.Default(config.OhmBase, config.Planar)
	oracle := config.Default(config.Oracle, config.Planar)
	c1, c2 := stats.NewCollector(), stats.NewCollector()
	Default().Finalize(c1, &base, Counters{Elapsed: sim.Millisecond})
	Default().Finalize(c2, &oracle, Counters{Elapsed: sim.Millisecond})
	ratio := c2.EnergyPJ["dram-static"] / c1.EnergyPJ["dram-static"]
	if math.Abs(ratio-9) > 0.01 {
		t.Fatalf("Oracle static DRAM ratio = %v, want 9 (1+8 capacity)", ratio)
	}
}

func TestBreakdownFractions(t *testing.T) {
	r := stats.Report{EnergyPJ: map[string]float64{"a": 30, "b": 70}}
	f := BreakdownFractions(r)
	if math.Abs(f["a"]-0.3) > 1e-9 || math.Abs(f["b"]-0.7) > 1e-9 {
		t.Fatalf("fractions = %v", f)
	}
	empty := BreakdownFractions(stats.Report{EnergyPJ: map[string]float64{}})
	if len(empty) != 0 {
		t.Fatal("empty report must yield empty fractions")
	}
}
