// Package energy implements the power models of Section VI ("Workloads and
// energy model"): an empirical DRAM model (static power plus per-access
// dynamic energy, after GPUWattch [37]), XPoint average/burst energy from
// the Optane measurements [28], the optical channel model (laser static
// power plus 200 fJ/bit MRR tuning, Table I), and electrical channel DMA
// energy. Channel transfer energies are accumulated incrementally by the
// channel models; Finalize adds the time- and access-proportional terms.
package energy

import (
	"repro/internal/config"
	"repro/internal/optical"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Model holds the coefficient set. Defaults are first-order values with the
// right relative magnitudes; Figure 19 reports normalized breakdowns, so
// ratios — not absolute joules — are what the reproduction preserves.
type Model struct {
	// DRAMStaticMWPerGB is background (refresh + leakage) power per GB.
	DRAMStaticMWPerGB float64
	// DRAMDynamicPJPerAccess is activation+IO energy per line access.
	DRAMDynamicPJPerAccess float64
	// XPointReadPJ / XPointWritePJ are per-line-access energies. XPoint has
	// no refresh, so there is no static term (Section I).
	XPointReadPJ  float64
	XPointWritePJ float64
}

// Default returns the coefficient set used by all experiments.
func Default() Model {
	return Model{
		// Static power is per unscaled chip count: the 256x capacity
		// scale-down shrinks simulated time and bytes but not the DIMMs'
		// background draw, so the per-GB coefficient carries the scale.
		DRAMStaticMWPerGB:      5000,
		DRAMDynamicPJPerAccess: 1000, // ~8 pJ/bit x 128B line
		XPointReadPJ:           6400,
		XPointWritePJ:          19200, // writes ~3x read energy [28]
	}
}

// Counters are the run totals Finalize needs.
type Counters struct {
	Elapsed      sim.Time
	DRAMReads    uint64
	DRAMWrites   uint64
	XPointReads  uint64
	XPointWrites uint64
}

// Finalize adds the time- and access-proportional energy components to the
// collector:
//
//	"dram-static"  — DRAM background power x elapsed time
//	"dram-dynamic" — per-access DRAM energy
//	"xpoint"       — per-access XPoint energy
//	"opti-network" — laser static power x elapsed (tuning energy was added
//	                 incrementally by the channel)
//
// Electrical platforms get no laser term; their transfer energy is already
// under "elec-channel"/"dma".
func (m Model) Finalize(col *stats.Collector, cfg *config.Config, c Counters) {
	seconds := c.Elapsed.Seconds()

	dramGB := float64(cfg.Memory.DRAMBytes) / float64(1<<30)
	// mW x s = mJ = 1e9 pJ.
	col.AddEnergy("dram-static", m.DRAMStaticMWPerGB*dramGB*seconds*1e9)
	col.AddEnergy("dram-dynamic", float64(c.DRAMReads+c.DRAMWrites)*m.DRAMDynamicPJPerAccess)

	if cfg.Platform.Heterogeneous() {
		col.AddEnergy("xpoint",
			float64(c.XPointReads)*m.XPointReadPJ+float64(c.XPointWrites)*m.XPointWritePJ)
	}

	if cfg.Platform.Optical() {
		pm := optical.NewPowerModel(cfg.Optical)
		col.AddEnergy("opti-network", pm.LaserPowerMW()*seconds*1e9)
	}
}

// BreakdownFractions normalizes a report's energy components to fractions
// of the total, in the order Figure 19 stacks them.
func BreakdownFractions(r stats.Report) map[string]float64 {
	total := r.TotalEnergyPJ()
	out := make(map[string]float64, len(r.EnergyPJ))
	if total <= 0 {
		return out
	}
	for k, v := range r.EnergyPJ {
		out[k] = v / total
	}
	return out
}
