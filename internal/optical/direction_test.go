package optical

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestDirectionsIndependent(t *testing.T) {
	c := chn(nil)
	// Saturate the forward path; a backward transfer must not queue.
	_, fwdEnd := c.Transfer(0, 0, Forward, 0, 1<<16, stats.RegularRequest)
	s, _ := c.Transfer(0, 0, Backward, 0, 128, stats.RegularRequest)
	if s >= fwdEnd {
		t.Fatalf("backward transfer queued behind forward path: start %s >= %s", s, fwdEnd)
	}
}

func TestSameDirectionSerializes(t *testing.T) {
	c := chn(nil)
	_, e0 := c.Transfer(0, 0, Backward, 0, 4096, stats.RegularRequest)
	s1, _ := c.Transfer(0, 0, Backward, 0, 4096, stats.RegularRequest)
	if s1 < e0 {
		t.Fatalf("same-direction transfers overlapped: %s < %s", s1, e0)
	}
}

func TestBackwardNeverPaysWOMTax(t *testing.T) {
	// The swap shares only the forward path's light (Figure 15); read
	// responses on the backward path keep full bandwidth.
	c := chn(nil)
	c.TransferWOMShared(0, 0, 1<<20) // WOM-active for a long window
	_, fwdEnd := c.Transfer(0, 0, Forward, 0, 4096, stats.RegularRequest)
	_, bwdEnd := c.Transfer(0, 0, Backward, 0, 4096, stats.RegularRequest)
	fwdDur := fwdEnd - c.cfg.DemuxSwitch - c.cfg.SerDesLatency
	bwdDur := bwdEnd - c.cfg.DemuxSwitch - c.cfg.SerDesLatency
	ratio := float64(fwdDur) / float64(bwdDur)
	if ratio < Overhead*0.95 || ratio > Overhead*1.05 {
		t.Fatalf("forward/backward duration ratio = %.3f, want ~%.1f (WOM tax on forward only)", ratio, Overhead)
	}
}

func TestDemuxSwitchPerDirection(t *testing.T) {
	// Device tracking is per direction: alternating devices on opposite
	// directions must not charge extra switches.
	c := chn(nil)
	c.Transfer(0, 0, Forward, 0, 64, stats.RegularRequest)
	c.Transfer(0, 1, Backward, 0, 64, stats.RegularRequest)
	c.Transfer(0, 0, Forward, 0, 64, stats.RegularRequest) // same fwd device: no switch
	c.Transfer(0, 1, Backward, 0, 64, stats.RegularRequest)
	if c.DemuxSwitches != 2 {
		t.Fatalf("demux switches = %d, want 2 (one cold grant per direction)", c.DemuxSwitches)
	}
}

func TestGapBackfillOnChannel(t *testing.T) {
	// A response booked at a future device-ready instant must not block a
	// command issued meanwhile on the same direction.
	c := chn(nil)
	future := 10 * sim.Microsecond
	c.Transfer(0, 0, Backward, future, 128, stats.RegularRequest)
	s, _ := c.Transfer(0, 0, Backward, 0, 128, stats.RegularRequest)
	if s >= future {
		t.Fatalf("earlier transfer queued behind future booking: start %s", s)
	}
}

func TestVCsTimesTwoDataResources(t *testing.T) {
	c := NewChannel(config.DefaultOptical(), nil)
	if c.VCs() != 6 {
		t.Fatalf("VCs = %d, want 6", c.VCs())
	}
	if len(c.data) != 12 {
		t.Fatalf("data resources = %d, want 12 (2 per VC)", len(c.data))
	}
}

func TestDynamicDivisionBorrowsIdleVC(t *testing.T) {
	cfg := config.DefaultOptical()
	cfg.DynamicDivision = true
	c := NewChannel(cfg, nil)
	// Backlog VC 0's forward path, then issue another transfer on VC 0: it
	// must borrow an idle VC and start immediately.
	c.Transfer(0, 0, Forward, 0, 1<<16, stats.RegularRequest)
	s, _ := c.Transfer(0, 0, Forward, 0, 128, stats.RegularRequest)
	if s != 0 {
		t.Fatalf("dynamic division did not borrow an idle VC: start %s", s)
	}
	if c.Borrows == 0 {
		t.Fatal("borrow not counted")
	}
}

func TestStaticDivisionNeverBorrows(t *testing.T) {
	c := chn(nil)
	c.Transfer(0, 0, Forward, 0, 1<<16, stats.RegularRequest)
	c.Transfer(0, 0, Forward, 0, 128, stats.RegularRequest)
	if c.Borrows != 0 {
		t.Fatal("static division must never borrow")
	}
}
