package optical

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Direction selects the forward (controller -> device: commands, write
// data) or backward (device -> controller: read data) path of a virtual
// channel. The two directions use distinct MRR pairs (Figure 15's forward
// and backward paths), so a response scheduled for a future device-ready
// instant never blocks commands issued meanwhile.
type Direction int

const (
	// Forward is controller -> device.
	Forward Direction = iota
	// Backward is device -> controller.
	Backward
)

// Channel is the optical memory channel of Figure 6b: one or more waveguides
// carrying DWDM wavelengths that are statically divided into per-memory-
// controller virtual channels. Each virtual channel direction serializes
// transfers FCFS; a photonic demultiplexer arbitrates which memory device's
// detector is enabled, costing a switch delay whenever the target device
// changes.
//
// Dual routes (Section IV-C): each virtual channel additionally owns a
// *memory route* between memory devices. When the platform supports it,
// migration transfers ride the memory route and leave the data route free
// for memory requests — that is the paper's central mechanism.
type Channel struct {
	cfg  config.OpticalConfig
	pm   *PowerModel
	col  *stats.Collector
	wom  WOM
	data []*sim.GapResource // data route per VC x direction (2 per VC)
	mem  []*sim.GapResource // memory route per virtual channel (dual routes)
	last []int              // last device granted per VC x direction
	// womActive marks VCs whose light is currently shared by a WOM-coded
	// swap; request serialization on them pays the 3/2 overhead.
	womActive []sim.Time // until when WOM sharing is active per VC

	bitTime sim.Time // time of one parallel word on one VC
	vcBytes float64  // bytes carried per word on one VC across waveguides

	// hEnergy is the pre-interned "opti-network" energy handle; transfers
	// fire on every memory access, so per-transfer accounting must not hash
	// the component name. Valid only when col != nil.
	hEnergy stats.EnergyHandle

	Transfers     uint64
	DemuxSwitches uint64
	Borrows       uint64 // dynamic-division wavelength borrows
}

// NewChannel builds the optical channel. The collector may be nil when the
// caller does its own accounting (unit tests).
func NewChannel(cfg config.OpticalConfig, col *stats.Collector) *Channel {
	return NewChannelIn(nil, nil, cfg, col)
}

func dataName(_ string, i int) string { return fmt.Sprintf("vc%d-data%d", i/2, i%2) }
func memName(_ string, i int) string  { return fmt.Sprintf("vc%d-mem", i) }

// NewChannelIn is NewChannel rebuilding into a recycled channel: the
// per-VC slices keep their capacity and the route resources come from
// pools. Both re and pools may be nil (NewChannel is NewChannelIn(nil,
// nil, ...)), so fresh and pooled construction share one code path.
func NewChannelIn(re *Channel, pools *sim.Pools, cfg config.OpticalConfig, col *stats.Collector) *Channel {
	if cfg.VirtualChannels <= 0 {
		panic("optical: need at least one virtual channel")
	}
	if re == nil {
		re = &Channel{}
	}
	pm := re.pm
	if pm == nil {
		pm = NewPowerModel(cfg)
	} else {
		*pm = PowerModel{cfg: cfg}
	}
	c := re
	*c = Channel{
		cfg:       cfg,
		pm:        pm,
		col:       col,
		data:      reuseSlice(c.data, 2*cfg.VirtualChannels),
		mem:       reuseSlice(c.mem, cfg.VirtualChannels),
		last:      reuseSlice(c.last, 2*cfg.VirtualChannels),
		womActive: reuseSlice(c.womActive, cfg.VirtualChannels),
	}
	if col != nil {
		c.hEnergy = col.InternEnergy("opti-network")
	}
	for i := range c.data {
		c.data[i] = pools.GapResource(pools.Name("opti-data", i, dataName))
		c.last[i] = -1
	}
	for i := range c.mem {
		c.mem[i] = pools.GapResource(pools.Name("opti-mem", i, memName))
	}
	clear(c.womActive)
	scale := cfg.BandwidthScale
	if scale <= 0 {
		scale = 1
	}
	c.bitTime = sim.Time(float64(sim.FreqToPeriod(cfg.FreqHz))*scale + 0.5)
	vcBits := float64(cfg.ChannelBits) / float64(cfg.VirtualChannels)
	c.vcBytes = vcBits / 8 * float64(cfg.Waveguides)
	return c
}

// reuseSlice returns a slice of length n reusing s's backing array when
// large enough; elements are overwritten by the caller.
func reuseSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// PowerModel exposes the channel's power/BER model.
func (c *Channel) PowerModel() *PowerModel { return c.pm }

// serialization returns how long n bytes occupy one virtual channel.
// womTaxed selects whether an active WOM sharing window (or being the
// WOM-coded transfer itself) applies the 3/2 code expansion; only the
// forward path's light is shared by a swap (Figure 15), so backward
// transfers never pay it.
func (c *Channel) serialization(vc int, at sim.Time, n int, womTaxed bool) sim.Time {
	words := float64(n) / c.vcBytes
	t := sim.Time(words*float64(c.bitTime) + 0.5)
	if t < c.bitTime {
		t = c.bitTime
	}
	if womTaxed {
		t = sim.Time(float64(t)*Overhead + 0.5)
	}
	return t
}

// Transfer serializes n bytes on vc's data route toward device dev on the
// given direction, starting no earlier than at. It returns the transfer
// window. class attributes the occupancy to regular or migration traffic.
//
// Under dynamic channel division ([38]; Table I's default is static), a
// backlogged virtual channel borrows the least-loaded one instead, paying
// an extra demultiplexer switch to retune the wavelength.
func (c *Channel) Transfer(vc int, dev int, dir Direction, at sim.Time, n int, class stats.Class) (start, end sim.Time) {
	c.checkVC(vc)
	useVC := vc
	var borrowed bool
	if c.cfg.DynamicDivision {
		if alt := c.leastLoaded(dir, at); alt != vc && c.data[2*vc+int(dir)].FreeAt() > at {
			useVC, borrowed = alt, true
			c.Borrows++
		}
	}
	idx := 2*useVC + int(dir)
	taxed := dir == Forward && at < c.womActive[useVC]
	dur := c.serialization(useVC, at, n, taxed) + c.cfg.SerDesLatency
	if c.last[idx] != dev || borrowed {
		dur += c.cfg.DemuxSwitch
		c.last[idx] = dev
		c.DemuxSwitches++
	}
	start, end = c.data[idx].Reserve(at, dur)
	c.account(class, n, dur)
	c.Transfers++
	return start, end
}

// leastLoaded returns the virtual channel whose dir frontier is earliest.
func (c *Channel) leastLoaded(dir Direction, at sim.Time) int {
	best, bestAt := 0, c.data[int(dir)].FreeAt()
	for vc := 1; vc < len(c.mem); vc++ {
		if f := c.data[2*vc+int(dir)].FreeAt(); f < bestAt {
			best, bestAt = vc, f
		}
	}
	return best
}

// TransferMemRoute serializes n bytes on vc's memory route — the device-to-
// device route created by the half-coupled MRRs. It does not occupy the
// data route, so memory requests proceed in parallel; this is only legal on
// platforms whose MRR layout provides the route (the hmem controller guards
// that). Occupancy is accounted as migration traffic but NOT as data-route
// busy time, matching Figure 18 (dual-route migration leaves the channel).
func (c *Channel) TransferMemRoute(vc int, at sim.Time, n int) (start, end sim.Time) {
	c.checkVC(vc)
	dur := c.serialization(vc, at, n, false) + c.cfg.HCMRRTune
	start, end = c.mem[vc].Reserve(at, dur)
	if c.col != nil {
		// Bytes move, but the data route stays free: record bytes with zero
		// data-route occupancy.
		c.col.AddChannel(stats.DataCopy, uint64(n), 0)
		c.col.DualRouteBytes += uint64(n)
		c.col.AddEnergyH(c.hEnergy, c.pm.TuningEnergyPJ(uint64(n)))
	}
	c.Transfers++
	return start, end
}

// TransferWOMShared serializes a swap's migration bytes multiplexed into the
// same light as ongoing requests (Ohm-WOM's swap, Figure 13b/14). The
// migration itself uses spare code capacity so it books the memory route,
// but it marks the VC WOM-active for its duration: concurrent request
// transfers pay the 3/2 serialization overhead.
func (c *Channel) TransferWOMShared(vc int, at sim.Time, n int) (start, end sim.Time) {
	c.checkVC(vc)
	dur := c.serialization(vc, at, n, true) + c.cfg.HCMRRTune
	start, end = c.mem[vc].Reserve(at, dur)
	if end > c.womActive[vc] {
		c.womActive[vc] = end
	}
	if c.col != nil {
		c.col.AddChannel(stats.DataCopy, uint64(n), 0)
		c.col.DualRouteBytes += uint64(n)
		c.col.AddEnergyH(c.hEnergy, c.pm.TuningEnergyPJ(uint64(n)))
	}
	c.Transfers++
	return start, end
}

// DataFreeAt returns when vc's data route frees in a direction (conflict
// detection input).
func (c *Channel) DataFreeAt(vc int, dir Direction) sim.Time {
	c.checkVC(vc)
	return c.data[2*vc+int(dir)].FreeAt()
}

// MemFreeAt returns when vc's memory route frees.
func (c *Channel) MemFreeAt(vc int) sim.Time {
	c.checkVC(vc)
	return c.mem[vc].FreeAt()
}

// DataBusy returns total data-route occupancy across VCs.
func (c *Channel) DataBusy() sim.Time {
	var t sim.Time
	for _, r := range c.data {
		t += r.Busy()
	}
	return t
}

// MemRouteBusy returns total memory-route occupancy across VCs.
func (c *Channel) MemRouteBusy() sim.Time {
	var t sim.Time
	for _, r := range c.mem {
		t += r.Busy()
	}
	return t
}

// VCs returns the number of virtual channels.
func (c *Channel) VCs() int { return len(c.mem) }

func (c *Channel) account(class stats.Class, n int, busy sim.Time) {
	if c.col == nil {
		return
	}
	c.col.AddChannel(class, uint64(n), busy)
	c.col.AddEnergyH(c.hEnergy, c.pm.TuningEnergyPJ(uint64(n)))
}

func (c *Channel) checkVC(vc int) {
	if vc < 0 || vc >= len(c.mem) {
		panic(fmt.Sprintf("optical: virtual channel %d out of [0,%d)", vc, len(c.mem)))
	}
}
