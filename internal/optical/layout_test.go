package optical

import (
	"math"
	"testing"
)

func TestGeneralLayoutCoversAllFunctions(t *testing.T) {
	funcs := map[string]bool{}
	for _, d := range GeneralLayout() {
		for _, r := range d.Rings {
			funcs[r.Function] = true
		}
	}
	for _, want := range []string{"conventional", "auto-read/write", "reverse-write", "swap"} {
		if !funcs[want] {
			t.Errorf("general layout missing function %q", want)
		}
	}
}

func TestLayoutReductionsMatchPaper(t *testing.T) {
	// Section V-C: "Our customized design can reduce the number of required
	// MRRs by 58% and 42% in planar and two-level memory modes".
	planar := Reduction(PlanarLayout())
	if math.Abs(planar-0.58) > 0.02 {
		t.Errorf("planar MRR reduction = %.3f, want ~0.58", planar)
	}
	twoLvl := Reduction(TwoLevelLayout())
	if math.Abs(twoLvl-0.42) > 0.02 {
		t.Errorf("two-level MRR reduction = %.3f, want ~0.42", twoLvl)
	}
}

func TestPlanarLayoutOnlySwap(t *testing.T) {
	for _, d := range PlanarLayout() {
		for _, r := range d.Rings {
			if r.Function != "conventional" && r.Function != "swap" {
				t.Errorf("planar layout carries %q ring on %s", r.Function, d.Device)
			}
		}
	}
}

func TestTwoLevelLayoutNoSwap(t *testing.T) {
	for _, d := range TwoLevelLayout() {
		for _, r := range d.Rings {
			if r.Function == "swap" || r.Function == "parallelism" {
				t.Errorf("two-level layout carries %q ring on %s", r.Function, d.Device)
			}
		}
	}
}

func TestTwoLevelKeepsSnarfReceivers(t *testing.T) {
	// Auto-read/write requires half-coupled receivers on both paths of the
	// DRAM device (the XPoint controller snarfs MC<->DRAM light).
	var fwd, bwd bool
	for _, d := range TwoLevelLayout() {
		if d.Device != "dram" {
			continue
		}
		for _, r := range d.Rings {
			if r.Kind == HalfRx && r.Function == "auto-read/write" {
				if r.Forward {
					fwd = true
				} else {
					bwd = true
				}
			}
		}
	}
	if !fwd || !bwd {
		t.Fatalf("two-level DRAM must keep snarf receivers on both paths (fwd=%v bwd=%v)", fwd, bwd)
	}
}

func TestPlanarLayoutHasHalfCoupledTransmitters(t *testing.T) {
	// The swap function's dual routes need half-coupled transmitters on
	// both devices (Section IV-C).
	byDev := map[string]bool{}
	for _, d := range PlanarLayout() {
		for _, r := range d.Rings {
			if r.Kind == HalfTx && r.Function == "swap" {
				byDev[d.Device] = true
			}
		}
	}
	if !byDev["dram"] || !byDev["xpoint"] {
		t.Fatalf("swap needs HalfTx on both devices: %v", byDev)
	}
}

func TestCountsAndKinds(t *testing.T) {
	for _, d := range GeneralLayout() {
		mods, dets := d.Counts()
		if mods+dets != len(d.Rings) {
			t.Fatalf("%s: counts %d+%d != %d rings", d.Device, mods, dets, len(d.Rings))
		}
		if mods == 0 || dets == 0 {
			t.Fatalf("%s: degenerate layout (%d mods, %d dets)", d.Device, mods, dets)
		}
	}
	for _, k := range []MRRKind{FullTx, FullRx, HalfTx, HalfRx, MRRKind(9)} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}
