package optical

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// BenchmarkTransfer is the per-request channel cost: serialization,
// demux arbitration and handle-based energy accounting.
func BenchmarkTransfer(b *testing.B) {
	col := stats.NewCollector()
	c := NewChannel(config.DefaultOptical(), col)
	at := sim.Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at += 500
		c.Transfer(i%c.VCs(), i%2, Direction(i%2), at, 128, stats.RegularRequest)
	}
}
