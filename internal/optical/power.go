package optical

import (
	"math"

	"repro/internal/config"
)

// PathKind enumerates the end-to-end optical paths whose reliability
// Figure 20b evaluates: the plain request path, the snarfed auto-read/write
// path (one half-coupled MRR in the way), and the two swap variants.
type PathKind int

const (
	// PathReadWrite is a plain memory request: MC modulator -> device
	// detector, all fully-coupled MRRs.
	PathReadWrite PathKind = iota
	// PathAutoRW adds one half-coupled MRR: the XPoint controller snarfs
	// the MC->DRAM light, so the DRAM detector sees half the power.
	PathAutoRW
	// PathSwapWOM shares the light between two transmitters with WOM
	// coding; the final detector distinguishes quarter-strength levels.
	PathSwapWOM
	// PathSwapBW is Ohm-BW's aggressive variant: half-coupled transmitters
	// and detectors, two halvings end to end.
	PathSwapBW
)

func (p PathKind) String() string {
	switch p {
	case PathReadWrite:
		return "rd/wr"
	case PathAutoRW:
		return "auto"
	case PathSwapWOM:
		return "swap-wom"
	case PathSwapBW:
		return "swap-bw"
	default:
		return "unknown"
	}
}

// PowerModel evaluates the Table I optical power budget. All arithmetic is
// in dBm/dB; the BER calibration constant is chosen so the default
// configuration (0.73 mW laser, no half-coupling) lands at the paper's
// 7.2e-16 BER for plain requests (Section VI-B).
type PowerModel struct {
	cfg config.OpticalConfig
}

// NewPowerModel builds the model from an optical configuration.
func NewPowerModel(cfg config.OpticalConfig) *PowerModel {
	return &PowerModel{cfg: cfg}
}

// halfCouplings returns how many times the light is halved (-3 dB each) on
// a path, beyond the ordinary insertion losses.
func halfCouplings(p PathKind) int {
	switch p {
	case PathAutoRW:
		return 1 // one HCMRR detector snarfs the light
	case PathSwapWOM:
		return 1 // shared light consumed by the first receiver's coupling
	case PathSwapBW:
		return 2 // half-coupled transmitter and half-coupled mid detector
	default:
		return 0
	}
}

// womLevelPenaltyDB is the extra sensing margin a WOM-coded swap needs: the
// receiver discriminates intermediate light levels rather than on/off. BER
// is extremely steep in Q around the operating point, so a tenth of a dB
// reproduces the paper's gap between the plain path (7.2e-16) and the WOM
// swap path (9.9e-16) while both stay under the 1e-15 requirement.
const womLevelPenaltyDB = 0.1

// ReceivedPowerDBm returns the optical power at the final detector for a
// path, in dBm.
func (m *PowerModel) ReceivedPowerDBm(p PathKind) float64 {
	c := m.cfg
	laserMW := c.LaserPowerMW * boost(c.LaserBoost)
	pw := 10 * math.Log10(laserMW) // dBm
	pw -= c.ModulatorLossDB
	pw -= c.FilterDropDB
	pw -= c.WaveguideLossDBcm * c.WaveguideCM
	pw -= c.SplitterLossDB
	pw -= c.DetectorLossDB
	pw -= 3.0103 * float64(halfCouplings(p)) // each half-coupling halves power
	if p == PathSwapWOM {
		pw -= womLevelPenaltyDB
	}
	return pw
}

func boost(b float64) float64 {
	if b <= 0 {
		return 1
	}
	return b
}

// noiseFloorMW calibrates the detector noise so the default configuration's
// plain path sits at BER ~7.2e-16, the paper's measured baseline. The BER of
// an optical on-off-keyed link is 0.5*erfc(Q/sqrt(2)) with Q the ratio of
// received signal to noise amplitude [39]; Q ~= 8.04 gives 2.2e-16-class
// BERs, and our default path loss is 3.4 dB off 0.73 mW.
const noiseFloorMW = 0.333 / (8.04 * 8.04)

// BER returns the bit error rate of a path under the model's configuration.
func (m *PowerModel) BER(p PathKind) float64 {
	rxMW := math.Pow(10, m.ReceivedPowerDBm(p)/10)
	q := math.Sqrt(rxMW / noiseFloorMW)
	return 0.5 * math.Erfc(q/math.Sqrt2)
}

// MeetsReliability reports whether the path satisfies the paper's 1e-15
// BER requirement.
func (m *PowerModel) MeetsReliability(p PathKind) bool {
	return m.BER(p) < 1e-15
}

// ReliabilityRequirement is the paper's end-to-end BER target.
const ReliabilityRequirement = 1e-15

// TuningEnergyPJ returns MRR tuning energy for transferring n bytes
// (Table I: 200 fJ/bit).
func (m *PowerModel) TuningEnergyPJ(nBytes uint64) float64 {
	bits := float64(nBytes) * 8
	return bits * m.cfg.MRRTuningFJPerBit / 1000 // fJ -> pJ
}

// LaserPowerMW returns the static laser power drawn while the channel is
// powered, including the platform's boost and one source per wavelength
// (virtual channel) per waveguide.
func (m *PowerModel) LaserPowerMW() float64 {
	c := m.cfg
	return c.LaserPowerMW * boost(c.LaserBoost) * float64(c.VirtualChannels) * float64(c.Waveguides)
}
