package optical

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// --- WOM coding -----------------------------------------------------------

func TestWOMFirstGeneration(t *testing.T) {
	var w WOM
	for d := uint8(0); d < 4; d++ {
		code := w.EncodeFirst(d)
		if popcount3(code) > 1 {
			t.Errorf("first-gen code %03b for %02b has weight > 1", code, d)
		}
		got, gen := w.Decode(code)
		if got != d || gen != 1 {
			t.Errorf("Decode(EncodeFirst(%02b)) = (%02b, gen %d)", d, got, gen)
		}
	}
}

func TestWOMSecondGenerationAllPairs(t *testing.T) {
	// For every (first datum, second datum) pair: the second write never
	// clears a set bit, and decodes to the second datum.
	var w WOM
	for d1 := uint8(0); d1 < 4; d1++ {
		for d2 := uint8(0); d2 < 4; d2++ {
			c1 := w.EncodeFirst(d1)
			c2 := w.EncodeSecond(d2, c1)
			if c2&c1 != c1 {
				t.Errorf("second write %02b over %02b cleared bits: %03b -> %03b", d2, d1, c1, c2)
			}
			got, _ := w.Decode(c2)
			if got != d2 {
				t.Errorf("Decode(second %02b over first %02b) = %02b", d2, d1, got)
			}
		}
	}
}

func TestWOMSameValueLeavesLight(t *testing.T) {
	var w WOM
	for d := uint8(0); d < 4; d++ {
		c1 := w.EncodeFirst(d)
		if c2 := w.EncodeSecond(d, c1); c2 != c1 {
			t.Errorf("rewriting same value %02b changed light %03b -> %03b", d, c1, c2)
		}
	}
}

func TestWOMDecodeTotal(t *testing.T) {
	// All 8 code states decode without panicking.
	var w WOM
	for code := uint8(0); code < 8; code++ {
		d, gen := w.Decode(code)
		if d > 3 || (gen != 1 && gen != 2) {
			t.Errorf("Decode(%03b) = (%d, %d)", code, d, gen)
		}
	}
}

func TestWOMOverheadConstant(t *testing.T) {
	if Overhead != 1.5 {
		t.Fatalf("WOM overhead = %v, want 1.5 (3 light bits per 2 data bits)", Overhead)
	}
}

func TestWOMProperty(t *testing.T) {
	var w WOM
	f := func(d1, d2 uint8) bool {
		c1 := w.EncodeFirst(d1 & 3)
		c2 := w.EncodeSecond(d2&3, c1)
		if c2&c1 != c1 {
			return false
		}
		got, _ := w.Decode(c2)
		return got == d2&3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Power / BER ----------------------------------------------------------

func TestDefaultBERNearPaper(t *testing.T) {
	pm := NewPowerModel(config.DefaultOptical())
	ber := pm.BER(PathReadWrite)
	// Paper: 7.2e-16 with default laser power. We require the same order of
	// magnitude and meeting the 1e-15 requirement.
	if ber > 1e-15 || ber < 1e-17 {
		t.Fatalf("default rd/wr BER = %.2e, want ~7e-16", ber)
	}
	if !pm.MeetsReliability(PathReadWrite) {
		t.Fatal("default path must meet the 1e-15 requirement")
	}
}

func TestBoostedPathsMeetReliability(t *testing.T) {
	// Section VI-B: Auto-rw/Ohm-WOM boost laser 2x, Ohm-BW 4x, and then all
	// measured paths stay under 1e-15.
	cases := []struct {
		boost float64
		path  PathKind
	}{
		{2, PathAutoRW},
		{2, PathSwapWOM},
		{4, PathSwapBW},
		{4, PathAutoRW},
	}
	for _, c := range cases {
		cfg := config.DefaultOptical()
		cfg.LaserBoost = c.boost
		pm := NewPowerModel(cfg)
		if !pm.MeetsReliability(c.path) {
			t.Errorf("%s with %gx laser: BER %.2e exceeds 1e-15", c.path, c.boost, pm.BER(c.path))
		}
	}
}

func TestUnboostedDualRoutesFail(t *testing.T) {
	// Without the laser boost, the half-coupled paths must NOT meet the
	// requirement — that is exactly why the paper raises the laser power.
	pm := NewPowerModel(config.DefaultOptical())
	if pm.MeetsReliability(PathSwapBW) {
		t.Fatalf("swap-bw at 1x laser should fail reliability, got BER %.2e", pm.BER(PathSwapBW))
	}
}

func TestBERMonotoneInLoss(t *testing.T) {
	pm := NewPowerModel(config.DefaultOptical())
	plain := pm.BER(PathReadWrite)
	auto := pm.BER(PathAutoRW)
	bw := pm.BER(PathSwapBW)
	if !(plain < auto && auto < bw) {
		t.Fatalf("BER must grow with half-couplings: %.2e %.2e %.2e", plain, auto, bw)
	}
}

func TestReceivedPowerAccountsLosses(t *testing.T) {
	cfg := config.DefaultOptical()
	pm := NewPowerModel(cfg)
	got := pm.ReceivedPowerDBm(PathReadWrite)
	laser := 10 * math.Log10(cfg.LaserPowerMW)
	loss := cfg.ModulatorLossDB + cfg.FilterDropDB + cfg.WaveguideLossDBcm*cfg.WaveguideCM +
		cfg.SplitterLossDB + cfg.DetectorLossDB
	if math.Abs(got-(laser-loss)) > 1e-9 {
		t.Fatalf("received power %v, want %v", got, laser-loss)
	}
}

func TestTuningEnergy(t *testing.T) {
	pm := NewPowerModel(config.DefaultOptical())
	// 128 bytes = 1024 bits at 200 fJ/bit = 204.8 pJ.
	if got := pm.TuningEnergyPJ(128); math.Abs(got-204.8) > 1e-9 {
		t.Fatalf("tuning energy = %v pJ, want 204.8", got)
	}
}

func TestLaserPowerScaling(t *testing.T) {
	cfg := config.DefaultOptical()
	base := NewPowerModel(cfg).LaserPowerMW()
	cfg.LaserBoost = 4
	if got := NewPowerModel(cfg).LaserPowerMW(); math.Abs(got-4*base) > 1e-9 {
		t.Fatalf("4x boost laser power = %v, want %v", got, 4*base)
	}
	cfg.LaserBoost = 0 // defensive: non-positive boost treated as 1x
	if got := NewPowerModel(cfg).LaserPowerMW(); math.Abs(got-base) > 1e-9 {
		t.Fatalf("zero boost treated as %v, want %v", got, base)
	}
}

func TestPathKindStrings(t *testing.T) {
	for _, p := range []PathKind{PathReadWrite, PathAutoRW, PathSwapWOM, PathSwapBW, PathKind(9)} {
		if p.String() == "" {
			t.Fatal("empty path name")
		}
	}
}

// --- Channel --------------------------------------------------------------

func chn(col *stats.Collector) *Channel {
	return NewChannel(config.DefaultOptical(), col)
}

func TestChannelSerialization(t *testing.T) {
	c := chn(nil)
	cfg := config.DefaultOptical()
	// One VC carries 16 bits = 2 bytes per 33ps word. 128 bytes = 64 words.
	_, end := c.Transfer(0, 0, Forward, 0, 128, stats.RegularRequest)
	minDur := sim.Time(64)*sim.FreqToPeriod(cfg.FreqHz) + cfg.SerDesLatency
	if end < minDur {
		t.Fatalf("transfer end %s earlier than serialization floor %s", end, minDur)
	}
}

func TestChannelVCsIndependent(t *testing.T) {
	c := chn(nil)
	_, e0 := c.Transfer(0, 0, Forward, 0, 1024, stats.RegularRequest)
	s1, _ := c.Transfer(1, 0, Forward, 0, 1024, stats.RegularRequest)
	if s1 >= e0 {
		t.Fatal("virtual channels must not serialize against each other")
	}
}

func TestChannelFCFSWithinVC(t *testing.T) {
	c := chn(nil)
	_, e0 := c.Transfer(0, 0, Forward, 0, 1024, stats.RegularRequest)
	s1, _ := c.Transfer(0, 0, Forward, 0, 1024, stats.RegularRequest)
	if s1 < e0 {
		t.Fatalf("same-VC transfers overlapped: second starts %s before %s", s1, e0)
	}
}

func TestDemuxSwitchCost(t *testing.T) {
	c := chn(nil)
	cfg := config.DefaultOptical()
	_, e0 := c.Transfer(0, 0, Forward, 0, 128, stats.RegularRequest) // device 0: one switch (cold)
	_, e1 := c.Transfer(0, 0, Forward, e0, 128, stats.RegularRequest)
	d1 := e1 - e0
	_, e2 := c.Transfer(0, 1, Forward, e1, 128, stats.RegularRequest) // device change
	d2 := e2 - e1
	if d2 != d1+cfg.DemuxSwitch {
		t.Fatalf("device switch cost %s, want %s extra", d2-d1, cfg.DemuxSwitch)
	}
	if c.DemuxSwitches != 2 { // cold grant + one change
		t.Fatalf("demux switches = %d, want 2", c.DemuxSwitches)
	}
}

func TestMemRouteParallelToDataRoute(t *testing.T) {
	c := chn(nil)
	_, dataEnd := c.Transfer(0, 0, Forward, 0, 4096, stats.RegularRequest)
	s, memEnd := c.TransferMemRoute(0, 0, 4096)
	if s != 0 {
		t.Fatalf("memory route should start immediately, started at %s", s)
	}
	if memEnd >= dataEnd+c.DataFreeAt(0, Forward) && s != 0 {
		t.Fatal("memory route serialized behind data route")
	}
	if c.DataBusy() == 0 || c.MemRouteBusy() == 0 {
		t.Fatal("route busy accounting missing")
	}
}

func TestMemRouteDoesNotChargeDataRoute(t *testing.T) {
	col := stats.NewCollector()
	c := chn(col)
	c.TransferMemRoute(0, 0, 1024)
	if col.ChannelBusy[stats.DataCopy] != 0 {
		t.Fatal("dual-route migration must not occupy the data route")
	}
	if col.ChannelBytes[stats.DataCopy] != 1024 {
		t.Fatalf("migration bytes = %d, want 1024", col.ChannelBytes[stats.DataCopy])
	}
	if col.DualRouteBytes != 1024 {
		t.Fatal("dual-route bytes not accounted")
	}
}

func TestWOMSharingSlowsRequests(t *testing.T) {
	c := chn(nil)
	// Baseline request duration.
	_, e0 := c.Transfer(0, 0, Forward, 0, 1024, stats.RegularRequest)
	base := e0 - c.cfg.DemuxSwitch

	// Activate WOM sharing long enough to cover a second transfer.
	c2 := chn(nil)
	c2.TransferWOMShared(0, 0, 1<<20)
	_, e1 := c2.Transfer(0, 0, Forward, 0, 1024, stats.RegularRequest)
	shared := e1 - c2.cfg.DemuxSwitch
	ratio := float64(shared-c2.cfg.SerDesLatency) / float64(base-c.cfg.SerDesLatency)
	if math.Abs(ratio-Overhead) > 0.05 {
		t.Fatalf("WOM-shared request slowdown = %.3f, want %.2f", ratio, Overhead)
	}
}

func TestChannelAccounting(t *testing.T) {
	col := stats.NewCollector()
	c := chn(col)
	c.Transfer(0, 0, Forward, 0, 100, stats.RegularRequest)
	c.Transfer(1, 0, Forward, 0, 50, stats.DataCopy)
	if col.ChannelBytes[stats.RegularRequest] != 100 || col.ChannelBytes[stats.DataCopy] != 50 {
		t.Fatalf("byte accounting: %v", col.ChannelBytes)
	}
	col.Flush()
	if col.EnergyPJ["opti-network"] <= 0 {
		t.Fatal("optical energy not accounted")
	}
	if c.Transfers != 2 {
		t.Fatalf("transfers = %d", c.Transfers)
	}
}

func TestWaveguidesScaleBandwidth(t *testing.T) {
	cfg := config.DefaultOptical()
	one := NewChannel(cfg, nil)
	cfg.Waveguides = 4
	four := NewChannel(cfg, nil)
	_, e1 := one.Transfer(0, 0, Forward, 0, 4096, stats.RegularRequest)
	_, e4 := four.Transfer(0, 0, Forward, 0, 4096, stats.RegularRequest)
	// Serialization shrinks ~4x (fixed overheads aside).
	if float64(e4) > float64(e1)*0.5 {
		t.Fatalf("4 waveguides not faster: %s vs %s", e4, e1)
	}
}

func TestChannelPanicsOnBadVC(t *testing.T) {
	c := chn(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad VC")
		}
	}()
	c.Transfer(99, 0, Forward, 0, 8, stats.RegularRequest)
}

func TestChannelPanicsOnZeroVCs(t *testing.T) {
	cfg := config.DefaultOptical()
	cfg.VirtualChannels = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero VCs")
		}
	}()
	NewChannel(cfg, nil)
}

func TestMinimumOneWord(t *testing.T) {
	c := chn(nil)
	// Even a 1-byte transfer occupies at least one word slot.
	_, end := c.Transfer(0, 0, Forward, 0, 1, stats.RegularRequest)
	if end < sim.FreqToPeriod(c.cfg.FreqHz) {
		t.Fatalf("sub-word transfer took %s", end)
	}
}

// Property: transfers on one VC never overlap regardless of arrival order.
func TestChannelNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		c := chn(nil)
		var lastEnd sim.Time
		at := sim.Time(0)
		for _, sz := range sizes {
			s, e := c.Transfer(0, 0, Forward, at, int(sz%2048)+1, stats.RegularRequest)
			if s < lastEnd || e <= s {
				return false
			}
			lastEnd = e
			at += 100
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
