// Package optical models the silicon-photonic memory channel of Ohm-GPU:
// DWDM virtual channels over one or more waveguides, photonic demultiplexer
// arbitration, micro-ring resonator (MRR) modulators/detectors including the
// half-coupled MRR (HCMRR) that enables dual routes, write-once-memory (WOM)
// coding for sharing one light between two transmitters, and the optical
// power / bit-error-rate model of Table I.
package optical

import "fmt"

// WOM implements the Rivest–Shamir (2,3) write-once-memory code of
// Figure 14: a 3-bit light signal carries one 2-bit datum from the first
// transmitter and later a second 2-bit datum from a downstream transmitter,
// under the constraint that a transmitter can only *consume* light (set code
// bits), never restore it. This is what lets the memory controller and the
// XPoint controller modulate the same laser light during a swap, at the cost
// of 3 light bits per 2 data bits (the paper's 33% effective-bandwidth
// reduction).
//
// First-write codes have weight <= 1, second-write codes weight >= 2, so a
// receiver distinguishes generations by popcount alone. The second-write
// code for value v covers every first-write code except first(v) itself —
// and in that case the light already encodes v, so no rewrite is needed.
type WOM struct{}

// womFirst maps a 2-bit datum to its first-generation 3-bit code.
var womFirst = [4]uint8{
	0b00: 0b000,
	0b01: 0b100,
	0b10: 0b010,
	0b11: 0b001,
}

// womSecond maps a 2-bit datum to its second-generation 3-bit code (the
// bitwise complement of the first-generation code).
var womSecond = [4]uint8{
	0b00: 0b111,
	0b01: 0b011,
	0b10: 0b101,
	0b11: 0b110,
}

// EncodeFirst returns the first-write code for a 2-bit datum.
func (WOM) EncodeFirst(data uint8) uint8 {
	return womFirst[data&3]
}

// EncodeSecond returns the code on the light after the second transmitter
// writes data over the current code. If the light already encodes data, it
// is left untouched; otherwise the second-generation code is written, which
// by construction only sets bits.
func (WOM) EncodeSecond(data uint8, current uint8) uint8 {
	data &= 3
	current &= 7
	if womFirst[data] == current {
		return current
	}
	return womSecond[data]
}

// Decode recovers the most recent 2-bit datum from a 3-bit code. Generation
// is determined by weight: <=1 is a first write, >=2 a second write.
func (WOM) Decode(code uint8) (data uint8, generation int) {
	code &= 7
	if popcount3(code) <= 1 {
		for d, c := range womFirst {
			if c == code {
				return uint8(d), 1
			}
		}
	}
	for d, c := range womSecond {
		if c == code {
			return uint8(d), 2
		}
	}
	// 4 first-gen + 4 second-gen codes cover all 8 states of a 3-bit code,
	// so this is unreachable; keep a loud failure for future table edits.
	panic(fmt.Sprintf("optical: undecodable WOM code %03b", code))
}

// Overhead is the WOM bandwidth expansion: 3 light bits per 2 data bits.
const Overhead = 1.5

func popcount3(x uint8) int {
	return int(x&1 + x>>1&1 + x>>2&1)
}
