package optical

import "fmt"

// This file models Figure 15: the transmitter/receiver (MRR) layout a
// DRAM + XPoint device pair needs on the optical channel — the general
// design that supports every migration function (Figure 15a) and the
// per-mode customized designs that drop unused rings (Figure 15b: planar
// needs only the swap function, two-level only auto-read/write and
// reverse-write). The paper reports the customized designs save 58%
// (planar) and 42% (two-level) of MRRs versus the general design;
// Reduction reproduces those numbers from the layout tables below.

// MRRKind distinguishes ring roles.
type MRRKind int

const (
	// FullTx is a conventional fully-coupled photonic transmitter.
	FullTx MRRKind = iota
	// FullRx is a conventional fully-coupled photonic receiver.
	FullRx
	// HalfTx is a half-coupled transmitter (Ohm-BW's shared-light
	// modulation for the swap function).
	HalfTx
	// HalfRx is a half-coupled receiver (the snarf path).
	HalfRx
)

func (k MRRKind) String() string {
	switch k {
	case FullTx:
		return "tx"
	case FullRx:
		return "rx"
	case HalfTx:
		return "half-tx"
	case HalfRx:
		return "half-rx"
	default:
		return fmt.Sprintf("MRRKind(%d)", int(k))
	}
}

// Ring is one MRR in a device's array, attached to the forward or backward
// path and serving one memory function.
type Ring struct {
	Kind     MRRKind
	Forward  bool   // forward path (MC -> devices) vs backward
	Function string // which memory function needs it
}

// DeviceLayout is a device's ring inventory.
type DeviceLayout struct {
	Device string // "dram" or "xpoint"
	Rings  []Ring
}

// Counts tallies modulators (transmitters) and detectors (receivers).
func (d DeviceLayout) Counts() (mods, dets int) {
	for _, r := range d.Rings {
		switch r.Kind {
		case FullTx, HalfTx:
			mods++
		case FullRx, HalfRx:
			dets++
		}
	}
	return mods, dets
}

// GeneralLayout is Figure 15a: every function available on both devices of
// a DRAM + XPoint pair — four conventional pairs per device (forward and
// backward paths), the half-coupled receiver sets for auto-read/write and
// reverse-write, the half-coupled transmitters for swap, and the optional
// T9-T11 transmitters that add request/swap scheduling parallelism.
func GeneralLayout() []DeviceLayout {
	dram := DeviceLayout{Device: "dram", Rings: []Ring{
		{FullTx, true, "conventional"}, {FullRx, true, "conventional"},
		{FullTx, false, "conventional"}, {FullRx, false, "conventional"},
		{HalfRx, true, "auto-read/write"}, {HalfRx, false, "auto-read/write"},
		{HalfRx, false, "reverse-write"},
		{HalfTx, true, "swap"}, {HalfTx, false, "swap"},
		{HalfTx, true, "parallelism"}, {HalfTx, false, "parallelism"},
		{HalfTx, true, "parallelism"},
	}}
	xp := DeviceLayout{Device: "xpoint", Rings: []Ring{
		{FullTx, true, "conventional"}, {FullRx, true, "conventional"},
		{FullTx, false, "conventional"}, {FullRx, false, "conventional"},
		{HalfRx, true, "auto-read/write"}, {HalfRx, false, "auto-read/write"},
		{HalfRx, true, "auto-read/write"},
		{HalfTx, true, "swap"}, {HalfTx, false, "swap"},
		{FullTx, false, "reverse-write"},
		{HalfRx, true, "swap"}, {HalfTx, true, "parallelism"},
	}}
	return []DeviceLayout{dram, xp}
}

// PlanarLayout is Figure 15b's planar customization: the planar mode only
// needs the swap function, so the snarf receiver sets, the reverse-write
// rings and the extra parallelism transmitters are dropped, and each device
// keeps a single conventional pair per direction it actually uses.
func PlanarLayout() []DeviceLayout {
	dram := DeviceLayout{Device: "dram", Rings: []Ring{
		{FullTx, true, "conventional"}, {FullRx, true, "conventional"},
		{FullRx, false, "conventional"},
		{HalfTx, true, "swap"}, {HalfTx, false, "swap"},
	}}
	xp := DeviceLayout{Device: "xpoint", Rings: []Ring{
		{FullTx, false, "conventional"}, {FullRx, true, "conventional"},
		{HalfTx, true, "swap"}, {HalfRx, true, "swap"},
		{HalfTx, false, "swap"},
	}}
	return []DeviceLayout{dram, xp}
}

// TwoLevelLayout is Figure 15b's two-level customization: auto-read/write
// and reverse-write stay, swap disappears.
func TwoLevelLayout() []DeviceLayout {
	dram := DeviceLayout{Device: "dram", Rings: []Ring{
		{FullTx, true, "conventional"}, {FullRx, true, "conventional"},
		{FullTx, false, "conventional"}, {FullRx, false, "conventional"},
		{HalfRx, true, "auto-read/write"}, {HalfRx, false, "auto-read/write"},
		{HalfRx, false, "reverse-write"},
	}}
	xp := DeviceLayout{Device: "xpoint", Rings: []Ring{
		{FullTx, true, "conventional"}, {FullRx, true, "conventional"},
		{FullTx, false, "conventional"},
		{HalfRx, true, "auto-read/write"}, {HalfRx, false, "auto-read/write"},
		{FullTx, false, "reverse-write"},
		{HalfRx, true, "auto-read/write"},
	}}
	return []DeviceLayout{dram, xp}
}

// TotalRings sums rings across a layout set.
func TotalRings(ls []DeviceLayout) int {
	n := 0
	for _, l := range ls {
		n += len(l.Rings)
	}
	return n
}

// Reduction returns the fractional MRR saving of a customized layout versus
// the general design (Figure 15b's 58% planar / 42% two-level).
func Reduction(custom []DeviceLayout) float64 {
	g := TotalRings(GeneralLayout())
	if g == 0 {
		return 0
	}
	return 1 - float64(TotalRings(custom))/float64(g)
}
