// Calibration gate for the analytical twin: replays the full preset ×
// memory-mode × Table II grid through both the event simulator and the
// twin (via internal/twin/calib) and fails when the per-metric error
// statistics drift from the committed testdata/twin/calibration.json
// baseline. This is what makes the twin's accuracy a tested contract —
// any model or kernel change that moves MAPE beyond calib.DriftTolerance
// must consciously re-commit the baseline via scripts/twincheck -update.
package twin_test

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/twin"
	"repro/internal/twin/calib"
)

const baselinePath = "../../testdata/twin/calibration.json"

func TestCalibrationGrid(t *testing.T) {
	cells := calib.Grid()
	want := len(config.Presets()) * len(config.AllModes()) * len(config.WorkloadNames())
	if len(cells) != want {
		t.Fatalf("grid has %d cells, want %d (presets × modes × workloads)", len(cells), want)
	}
	seen := map[calib.Cell]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate grid cell %+v", c)
		}
		seen[c] = true
	}
}

func TestCalibrationAgainstBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid DES replay; run without -short or use scripts/twincheck")
	}
	committed, err := calib.Load(filepath.FromSlash(baselinePath))
	if err != nil {
		t.Fatalf("committed baseline missing: %v (create with scripts/twincheck -update)", err)
	}
	pairs, err := calib.Run()
	if err != nil {
		t.Fatal(err)
	}
	fresh := calib.Summarize(pairs)
	for _, bad := range calib.Compare(committed, fresh) {
		t.Errorf("calibration drift: %s", bad)
	}
}

// TestErrorBarsMatchBaseline pins the error bars the twin stamps into
// Report.Extra["twin:mape:*"] to the committed calibration baseline, so a
// re-calibration that moves the measured MAPE also has to update the
// constants the estimator reports.
func TestErrorBarsMatchBaseline(t *testing.T) {
	committed, err := calib.Load(filepath.FromSlash(baselinePath))
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	bars := twin.ErrorBars()
	if len(bars) != len(calib.Metrics) {
		t.Fatalf("ErrorBars has %d metrics, calibration tracks %d", len(bars), len(calib.Metrics))
	}
	for _, m := range calib.Metrics {
		bar, ok := bars[m]
		if !ok {
			t.Errorf("metric %s: no reported error bar", m)
			continue
		}
		if got := committed.Metrics[m].MAPE; math.Abs(bar-got) > 0.005 {
			t.Errorf("metric %s: reported error bar %.4f != committed MAPE %.4f", m, bar, got)
		}
	}
}

// TestEstimateCarriesErrorBars checks every analytical report carries its
// calibrated per-metric error bars and model version.
func TestEstimateCarriesErrorBars(t *testing.T) {
	cfg := config.Default(config.OhmBW, config.Planar)
	w, _ := config.WorkloadByName("pagerank")
	rep := twin.Estimate(&cfg, w)
	if rep.Extra["twin:model-version"] == 0 {
		t.Fatal("report missing twin:model-version")
	}
	for m, bar := range twin.ErrorBars() {
		if got := rep.Extra["twin:mape:"+m]; got != bar {
			t.Errorf("Extra[twin:mape:%s] = %v, want %v", m, got, bar)
		}
	}
}

// TestAnalyticalDocCoversTwinMetrics keeps docs/reference/analytical.md
// honest the same way spec.md is kept honest for override paths: every
// metric key an analytical report stamps into Extra must appear
// (backtick-quoted) in the reference page, so adding a twin-reported
// metric without documenting it fails CI.
func TestAnalyticalDocCoversTwinMetrics(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "reference", "analytical.md"))
	if err != nil {
		t.Fatalf("reference page missing: %v", err)
	}
	cfg := config.Default(config.OhmBW, config.Planar)
	w, _ := config.WorkloadByName("pagerank")
	rep := twin.Estimate(&cfg, w)
	for key := range rep.Extra {
		if !strings.Contains(string(doc), "`"+key+"`") {
			t.Errorf("docs/reference/analytical.md does not document report metric %q", key)
		}
	}
}

// BenchmarkTwinCell is the cost of one analytical cell. The acceptance
// bar for the twin is ≥10³× cheaper than a warm DES cell (~21.6 ms in
// BENCH snapshots), i.e. ≤ ~21.6 µs here.
func BenchmarkTwinCell(b *testing.B) {
	cfg := config.Default(config.OhmBW, config.Planar)
	w, _ := config.WorkloadByName("pagerank")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := twin.Estimate(&cfg, w)
		if rep.Elapsed == 0 {
			b.Fatal("empty report")
		}
	}
}
