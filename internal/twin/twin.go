// Package twin is the analytical twin of the discrete-event simulator: a
// closed-form estimator that maps a resolved configuration plus workload to
// a stats.Report-shaped result without running the event loop. The model
// mirrors each DES component with its first-order analytical counterpart —
// Zipf/Che cache hit rates for the trace registry's reference process,
// serialization and M/D/1-style queueing for the optical/electrical
// channels, occupancy bounds for DRAM banks and XPoint partitions, and the
// exact energy coefficient set — so a twin cell costs microseconds where a
// warm DES cell costs tens of milliseconds. Accuracy is continuously
// cross-validated against the kernel by the calibration suite
// (calibrate_test.go, scripts/twincheck); per-metric error bars ride along
// in Report.Extra["twin:mape:<metric>"].
package twin

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ModelVersion names the twin's model generation. It salts analytical cache
// keys so twin results can never collide with DES results or with results
// from an older model, and is reported in Extra["twin:model-version"].
const ModelVersion = "twin-v1"

// modelVersionNum is ModelVersion as a number for the Extra map.
const modelVersionNum = 1

// Calibration constants: first-order coefficients for effects the
// closed-form model cannot derive from the configuration alone. Values are
// fitted once against the DES kernel by the calibration suite and pinned by
// testdata/twin/calibration.json; see docs/reference/analytical.md for the
// derivation and known-bad regions.
const (
	// rowLocalitySurvival is the fraction of a warp's sequential-run row
	// locality that survives interleaving with the other ~127 warps at the
	// memory controller.
	rowLocalitySurvival = 0.6
	// rowConflictShare is the fraction of row misses that find a different
	// row open (paying tRP) rather than a precharged bank.
	rowConflictShare = 0.5
	// directMapFactor derates the two-level DRAM cache's Che capacity for
	// direct-mapped conflict misses (Che assumes full associativity).
	directMapFactor = 0.7
	// utilizationCap bounds every queueing-model utilization: past it the
	// throughput legs, not the latency inflation, own the estimate.
	utilizationCap = 0.95
	// xpInflateCap bounds XPoint partition-contention latency inflation.
	xpInflateCap = 4.0
	// womOverhead is the WOM-coded request serialization expansion while a
	// swap shares the forward light (optical.Overhead).
	womOverhead = 1.5
	// hotFilterBlend interpolates the hottest-VC traffic concentration
	// between the post-L2 miss stream (0: hot pages hit on-chip, traffic is
	// near-uniform) and the raw popularity stream (1: no filtering). The L2
	// filters most but not all of the concentration — writebacks, thrash
	// windows and MC-side row traffic keep part of the raw skew alive.
	hotFilterBlend = 0.5
	// littleLoadConc and littleStoreConc set the outstanding-request
	// population for the saturated-latency floor (Little's law): each warp
	// parks about one blocked load at the bottleneck, while fire-and-forget
	// stores pile up behind it in proportion to their share of the mix.
	littleLoadConc  = 0.75
	littleStoreConc = 2.0
	// tailBase maps the mean latency to the p99 tail of ordinary request
	// mixtures (a few× the mean). Platform-specific burst tails — Origin's
	// DMA backlog, the swap platforms' swap window — ride in
	// passOut.burstLat instead.
	tailBase = 4.0
	// hostBytesPerSec and hostSetup mirror the PCIe host link model.
	hostBytesPerSec = 18e9
	hostSetup       = 2e-6
)

// cmdB mirrors hmem's command/metadata message size on the channel.
const cmdB = 16

// errorBars is the per-metric MAPE the calibration suite measured for the
// current ModelVersion across all presets × Table II workloads (both memory
// modes). calibrate_test asserts these stay consistent with the committed
// testdata/twin/calibration.json baseline, so the error bars a report
// carries are always the honest measured ones.
var errorBars = map[string]float64{
	"ipc":          0.1523,
	"elapsed":      0.1501,
	"mean-latency": 0.2835,
	"p99-latency":  0.4250,
	"energy":       0.2560,
	"mem-requests": 0.0965,
}

// ErrorBars returns a copy of the calibrated per-metric MAPE table.
func ErrorBars() map[string]float64 {
	out := make(map[string]float64, len(errorBars))
	for k, v := range errorBars {
		out[k] = v
	}
	return out
}

// Estimate produces the analytical report for a resolved configuration and
// workload. It is deterministic, allocation-light, and costs microseconds.
func Estimate(cfg *config.Config, w config.Workload) stats.Report {
	e := newEst(cfg, w)
	return e.report()
}

// path is one request-latency component of the MC latency mixture.
type path struct {
	w   float64 // request count
	lat float64 // seconds
}

// passOut is one fixed-point iteration's view of the memory system.
type passOut struct {
	busyFwdReg, busyBwdReg   float64 // data-route occupancy, regular class
	busyFwdCopy, busyBwdCopy float64 // data-route occupancy, migration class
	busyMem                  float64 // memory-route occupancy (dual routes)
	regBytes, copyBytes      float64
	dualBytes, snarfBytes    float64

	dramReads, dramWrites float64
	xpReads, xpWrites     float64
	xpDevBusy             float64 // partition-seconds of XPoint media work
	dramDevBusy           float64 // bank-seconds of DRAM work

	memReqs                   float64
	migrations, migratedBytes float64
	hostBytes, hostStages     float64
	hostTime, dmaBusy         float64
	dmaEnergyPJ               float64

	paths      []path
	loadMemLat float64 // load-visible MC latency (seconds)
	legs       []float64
	burstLat   float64 // p99 burst-tail floor (backlog or swap window)
}

// est carries the elapsed-independent workload/platform statistics.
type est struct {
	cfg *config.Config
	w   config.Workload

	nWarps, totalInstr    float64
	memOps, loads, stores float64
	nPages, linesPerPage  int
	pages                 *zipfDist
	distinctLines         float64

	h1, l2Local    float64
	l1Rate, l2Rate float64
	missP1         float64
	m1Misses       float64
	m2Misses       float64
	wbacks         float64
	rdReqs, wrReqs float64

	mcs, vcs            int
	unitB, slot, serdes float64
	demux, memTune      float64
	optical             bool

	cycle, icL, l1L, l2L float64
	dLat, dLatHit        float64
	xpR, xpW             float64
	pageB, lineB         float64
	rowsPerPage          float64
	runLen               float64
}

func newEst(cfg *config.Config, w config.Workload) *est {
	e := &est{cfg: cfg, w: w}
	g := &cfg.GPU

	e.nWarps = float64(g.SMs * g.WarpsPerSM)
	e.totalInstr = e.nWarps * float64(cfg.MaxInstructions)
	memProb := float64(w.APKI) / 1000
	if memProb > 0.95 {
		memProb = 0.95
	}
	e.memOps = e.totalInstr * memProb
	e.loads = e.memOps * w.ReadRatio
	e.stores = e.memOps - e.loads

	e.pageB = float64(cfg.Memory.PageBytes)
	e.lineB = float64(g.LineBytes)
	footprint := w.FootprintScale * config.FootprintUnit
	if footprint < e.pageB {
		footprint = e.pageB
	}
	e.nPages = int(footprint / e.pageB)
	if e.nPages < 1 {
		e.nPages = 1
	}
	e.linesPerPage = cfg.Memory.PageBytes / g.LineBytes
	if e.linesPerPage < 1 {
		e.linesPerPage = 1
	}
	e.pages = cachedZipfDist(w.HotSkew, e.nPages)
	lpp := float64(e.linesPerPage)
	e.distinctLines = e.pages.distinct(e.memOps, lpp)

	// Cache hierarchy: per-SM L1 via Che over the SM's share of the stream,
	// then the shared L2's local rate from the stack property at the
	// combined capacity (an L2 hit is a reference whose reuse distance
	// exceeds L1 but fits L1+L2).
	c1 := float64(g.L1SizeBytes / g.LineBytes)
	c2 := float64(g.L2SizeBytes / g.LineBytes)
	smStream := e.memOps / float64(g.SMs)
	t1 := e.pages.cheT(c1, smStream, lpp)
	e.h1 = e.pages.hitT(t1, smStream, lpp)
	c12 := float64(g.SMs)*c1 + c2
	t12 := e.pages.cheT(c12, e.memOps, lpp)
	h12 := e.pages.hitT(t12, e.memOps, lpp)
	if h12 < e.h1 {
		h12 = e.h1
	}
	e.l2Local = 0
	if e.h1 < 1 {
		e.l2Local = (h12 - e.h1) / (1 - e.h1)
	}
	if e.l2Local > 1 {
		e.l2Local = 1
	}
	e.m1Misses = e.memOps * (1 - e.h1)
	e.m2Misses = e.memOps * (1 - h12)
	e.missP1 = e.pages.missTopShare(t12, e.memOps, lpp)

	// Reported hit-rate mirrors: the DES L2 counter also sees L1 dirty
	// victims written back functionally; they hit while their line is still
	// L2-resident (reuse distance ≈ one L1 lifetime vs the L2 window).
	e.l1Rate = e.h1
	vw := e.m1Misses * (1 - w.ReadRatio)
	pVic := 1.0
	if t1 > 0 && t12 < t1*float64(g.SMs) {
		pVic = t12 / (t1 * float64(g.SMs))
	}
	if e.m1Misses+vw > 0 {
		e.l2Rate = (e.l2Local*e.m1Misses + vw*pVic) / (e.m1Misses + vw)
	}

	// Memory traffic: every L2 miss (load or store) issues a memory
	// request; evicted dirty L2 victims add background writes.
	refsPerLine := 1.0
	if e.distinctLines > 0 {
		refsPerLine = e.memOps / e.distinctLines
		if refsPerLine > 8 {
			refsPerLine = 8
		}
		if refsPerLine < 1 {
			refsPerLine = 1
		}
	}
	dirty2 := 1 - math.Pow(w.ReadRatio, refsPerLine)
	evictions := e.m2Misses - c2
	if evictions < 0 {
		evictions = 0
	}
	e.wbacks = evictions * dirty2
	e.rdReqs = e.m2Misses * w.ReadRatio
	e.wrReqs = e.m2Misses * (1 - w.ReadRatio)

	// Channel geometry, mirroring the serialization math of the concrete
	// channel models (including their picosecond rounding of the word time).
	e.mcs = g.MemCtrls
	e.optical = cfg.Platform.Optical()
	if e.optical {
		oc := &cfg.Optical
		scale := oc.BandwidthScale
		if scale <= 0 {
			scale = 1
		}
		slotPs := math.Floor(float64(sim.FreqToPeriod(oc.FreqHz))*scale + 0.5)
		e.slot = slotPs * 1e-12
		e.unitB = float64(oc.ChannelBits) / float64(oc.VirtualChannels) / 8 * float64(oc.Waveguides)
		e.vcs = oc.VirtualChannels
		e.serdes = oc.SerDesLatency.Seconds()
		e.demux = oc.DemuxSwitch.Seconds()
		e.memTune = oc.HCMRRTune.Seconds()
	} else {
		ec := &cfg.Electrical
		scale := ec.BandwidthScale
		if scale <= 0 {
			scale = 1
		}
		slotPs := math.Floor(float64(sim.FreqToPeriod(ec.FreqHz))*scale + 0.5)
		e.slot = slotPs * 1e-12
		e.unitB = float64(ec.LaneBits) / 8
		e.vcs = ec.Channels
	}

	e.cycle = sim.FreqToPeriod(g.CoreFreqHz).Seconds()
	e.icL = g.InterconnectL.Seconds()
	e.l1L = g.L1Latency.Seconds()
	e.l2L = g.L2Latency.Seconds()

	// DRAM mean latency from the workload's row locality: a warp's
	// sequential run keeps a row open for runLen lines, interleaving at the
	// controller erodes part of it.
	d := &cfg.DRAM
	burst := d.BurstNs.Seconds()
	seqRun := 8
	if w.Suite == "GraphBIG" {
		seqRun = 2
	}
	rl := expRunLen(seqRun, e.linesPerPage)
	e.runLen = rl
	rowHit := 0.0
	if rl > 1 {
		rowHit = (rl - 1) / rl * rowLocalitySurvival
	}
	tcl, trcd, trp := d.TCL.Seconds(), d.TRCD.Seconds(), d.TRP.Seconds()
	e.dLatHit = tcl + burst
	e.dLat = rowHit*(tcl) + (1-rowHit)*(trcd+tcl+rowConflictShare*trp) + burst
	rowB := float64(d.RowBytes)
	e.rowsPerPage = e.pageB / rowB
	if e.rowsPerPage < 1 {
		e.rowsPerPage = 1
	}
	if banks := float64(d.Banks); e.rowsPerPage > banks {
		e.rowsPerPage = banks
	}

	e.xpR = cfg.XPoint.ReadLatency.Seconds()
	e.xpW = cfg.XPoint.WriteLatency.Seconds()
	return e
}

// expRunLen is the expected sequential-run length: a run ends after seqRun
// lines or at the page boundary, whichever comes first, with a uniform
// start line — exactly the trace generator's process.
func expRunLen(seqRun, linesPerPage int) float64 {
	var s float64
	for u := 0; u < linesPerPage; u++ {
		r := seqRun
		if linesPerPage-u < r {
			r = linesPerPage - u
		}
		s += float64(r)
	}
	return s / float64(linesPerPage)
}

// serData is one data-route serialization (one VC/lane, one direction).
func (e *est) serData(n float64) float64 {
	t := n / e.unitB * e.slot
	if t < e.slot {
		t = e.slot
	}
	return t + e.serdes
}

// serMemRoute is one memory-route serialization (dual-route platforms).
func (e *est) serMemRoute(n float64, wom bool) float64 {
	t := n / e.unitB * e.slot
	if t < e.slot {
		t = e.slot
	}
	if wom {
		t *= womOverhead
	}
	return t + e.memTune
}

// queueWait is the mean M/D/1-style queueing delay for a pool of servers
// with the given total busy time and mean service time over the elapsed
// window; utilization is capped so the latency model stays finite while
// the throughput legs own saturated regimes.
func queueWait(busy, servers, service, elapsed float64) float64 {
	if busy <= 0 || servers <= 0 || elapsed <= 0 || service <= 0 {
		return 0
	}
	rho := busy / (servers * elapsed)
	if rho > utilizationCap {
		rho = utilizationCap
	}
	return rho / (1 - rho) * service / 2
}

// inflate is a capped 1/(1-rho) service-time inflation for always-busy
// media (XPoint partitions).
func inflate(busy, servers, elapsed float64) float64 {
	if busy <= 0 || servers <= 0 || elapsed <= 0 {
		return 1
	}
	rho := busy / (servers * elapsed)
	if rho > utilizationCap {
		rho = utilizationCap
	}
	f := 1 / (1 - rho)
	if f > xpInflateCap {
		f = xpInflateCap
	}
	return f
}

// littleConc is the average outstanding-request population of a saturated
// memory system: each warp parks about one blocked load at the bottleneck,
// while its fire-and-forget stores pile up behind it in proportion to
// their share of the request mix.
func (e *est) littleConc() float64 {
	allReqs := e.rdReqs + e.wrReqs + e.wbacks
	wrShare := 0.0
	if allReqs > 0 {
		wrShare = (e.wrReqs + e.wbacks) / allReqs
	}
	return e.nWarps * (littleLoadConc + littleStoreConc*wrShare)
}

// hotVCShare is the busiest virtual channel's share of channel traffic:
// pages interleave across MCs, so the hottest page pins its whole mass on
// one VC while the rest spreads uniformly. The concentration the channel
// actually sees is the raw Zipf mass filtered through the on-chip caches
// (hot pages mostly hit in L2), blended by hotFilterBlend.
func (e *est) hotVCShare() float64 {
	u := 1 / float64(e.vcs)
	p := e.missP1 + hotFilterBlend*(e.pages.p1-e.missP1)
	return u + (1-u)*p
}

// demandReqs returns the per-pass demand read/write request counts. MSHR
// coalescing (off by default) merges concurrent load misses to one line.
func (e *est) demandReqs(elapsed float64) (reads, writes float64) {
	reads = e.rdReqs
	writes = e.wrReqs + e.wbacks
	if m := e.cfg.GPU.MSHREntries; m > 0 && elapsed > 0 {
		// In-flight misses form a window over the line popularity
		// distribution: a new miss whose line is already in flight merges.
		inflight := e.rdReqs / elapsed * (e.icL + e.l2L + 300e-9)
		if inflight > float64(m) {
			inflight = float64(m)
		}
		merge := e.pages.hitT(inflight, e.memOps, float64(e.linesPerPage))
		reads *= 1 - merge
	}
	return reads, writes
}

// pass evaluates the platform model for one fixed-point iteration.
func (e *est) pass(elapsed float64) passOut {
	var o passOut
	switch {
	case e.cfg.Platform == config.Origin:
		e.passOrigin(elapsed, &o)
	case e.cfg.Platform.Heterogeneous() && e.cfg.Mode == config.TwoLevel:
		e.passTwoLevel(elapsed, &o)
	case e.cfg.Platform.Heterogeneous():
		e.passPlanar(elapsed, &o)
	default:
		e.passFlat(elapsed, &o)
	}
	return o
}

// dramLegs appends the DRAM bank occupancy bounds: total bank-seconds
// across the pool, and the hottest page's bank serialization.
func (e *est) dramLegs(o *passOut, elapsed float64) {
	banks := float64(e.mcs * e.cfg.DRAM.Banks)
	o.legs = append(o.legs, o.dramDevBusy/banks)
	hot := e.pages.p1 * (o.dramReads + o.dramWrites) * e.dLatHit / e.rowsPerPage
	o.legs = append(o.legs, hot)
}

// hotBankWait is the queueing delay the hottest page's bank adds to the
// mean DRAM path, weighted by the probability of hitting that page.
func (e *est) hotBankWait(dramOps, elapsed float64) float64 {
	hotBusy := e.pages.p1 * dramOps * e.dLatHit / e.rowsPerPage
	return e.pages.p1 * queueWait(hotBusy, 1, e.dLatHit, elapsed)
}

// passFlat models Oracle: flat DRAM of sufficient capacity.
func (e *est) passFlat(elapsed float64, o *passOut) {
	reads, writes := e.demandReqs(elapsed)
	o.memReqs = reads + writes
	serCmd, serLine, serCmdLine := e.serData(cmdB), e.serData(e.lineB), e.serData(cmdB+e.lineB)

	o.busyFwdReg = reads*serCmd + writes*serCmdLine
	o.busyBwdReg = reads * serLine
	o.regBytes = (reads + writes) * (cmdB + e.lineB)
	o.dramReads, o.dramWrites = reads, writes
	o.dramDevBusy = (reads + writes) * e.dLat

	fw := queueWait(o.busyFwdReg, float64(e.vcs), o.busyFwdReg/math.Max(reads+writes, 1), elapsed)
	bw := queueWait(o.busyBwdReg, float64(e.vcs), serLine, elapsed)
	dWait := e.hotBankWait(reads+writes, elapsed)
	rdLat := serCmd + fw + e.dLat + dWait + serLine + bw
	wrLat := serCmdLine + fw + e.dLat + dWait
	o.paths = append(o.paths, path{reads, rdLat}, path{writes, wrLat})
	o.loadMemLat = rdLat
	e.dramLegs(o, elapsed)
}

// passOrigin models the DRAM-only small-capacity baseline: requests to
// pages outside the FIFO-resident set stage the page over the PCIe host
// link (one shared DMA engine) before the DRAM access.
func (e *est) passOrigin(elapsed float64, o *passOut) {
	reads, writes := e.demandReqs(elapsed)
	o.memReqs = reads + writes
	reqs := reads + writes
	serCmd, serLine, serCmdLine := e.serData(cmdB), e.serData(e.lineB), e.serData(cmdB+e.lineB)

	resCap := float64(e.cfg.Memory.DRAMBytes) / e.pageB
	if resCap < 1 {
		resCap = 1
	}
	// One staging serves a page *visit*, not a request: the trace walks
	// ~runLen consecutive lines per draw, so the dense kernels send deep
	// same-page bursts to the MC that all ride the first request's
	// staging. The residency stream the FIFO set actually sees is the
	// visit stream (capped by the request count — the pointer-chasing
	// suite decays to one request per visit after the caches filter it).
	visits := e.memOps / e.runLen
	if visits > reqs {
		visits = reqs
	}
	hVis := e.pages.fifoHit(resCap, visits, 1)
	stages := visits * (1 - hVis)
	hRes := 1.0
	if reqs > 0 {
		hRes = 1 - stages/reqs
	}

	wire := e.pageB / hostBytesPerSec
	o.dmaBusy = stages * wire
	dmaWait := queueWait(o.dmaBusy, 1, wire, elapsed)
	stageLat := dmaWait + wire + hostSetup

	o.hostStages = stages
	o.hostBytes = stages * e.pageB
	if stages > 0 {
		// A staged request can sit behind the whole outstanding population
		// queued on the single DMA engine: loads close the loop at ~one per
		// warp, while fire-and-forget stores deepen the backlog.
		o.burstLat = e.littleConc() * wire
	}
	o.hostTime = stages * stageLat
	o.dmaEnergyPJ = stages * e.pageB * 8 * 3

	o.busyFwdReg = reads*serCmd + writes*serCmdLine
	o.busyBwdReg = reads * serLine
	o.regBytes = reqs * (cmdB + e.lineB)
	o.dramReads, o.dramWrites = reads, writes
	o.dramDevBusy = reqs * e.dLat

	fw := queueWait(o.busyFwdReg, float64(e.vcs), o.busyFwdReg/math.Max(reqs, 1), elapsed)
	bw := queueWait(o.busyBwdReg, float64(e.vcs), serLine, elapsed)
	dWait := e.hotBankWait(reqs, elapsed)
	rdLat := serCmd + fw + e.dLat + dWait + serLine + bw
	wrLat := serCmdLine + fw + e.dLat + dWait
	o.paths = append(o.paths,
		path{reads * hRes, rdLat},
		path{reads * (1 - hRes), stageLat + rdLat},
		path{writes * hRes, wrLat},
		path{writes * (1 - hRes), stageLat + wrLat})
	o.loadMemLat = hRes*rdLat + (1-hRes)*(stageLat+rdLat)
	o.legs = append(o.legs, o.dmaBusy)
	e.dramLegs(o, elapsed)
}

// passPlanar models the planar heterogeneous platforms: kernel pages start
// in XPoint; pages whose access count trips the hot threshold swap into
// their group's DRAM slot, serialized per controller by the swap protocol.
func (e *est) passPlanar(elapsed float64, o *passOut) {
	cfg := e.cfg
	reads, writes := e.demandReqs(elapsed)
	o.memReqs = reads + writes
	reqs := reads + writes
	serCmd, serLine, serCmdLine := e.serData(cmdB), e.serData(e.lineB), e.serData(cmdB+e.lineB)
	serPage := e.serData(e.pageB)
	kind := cfg.Platform

	// Swap cost on the critical path of one migration (the per-MC swap
	// serialization window).
	var swapCost float64
	wom := kind == config.OhmWOM
	switch kind {
	case config.Hetero, config.OhmBase:
		swapCost = 2*e.dLat + 4*serPage + e.xpW + e.xpR
	case config.AutoRW:
		swapCost = 2*e.dLat + 3*serPage + e.xpW + e.xpR
	default: // Ohm-WOM / Ohm-BW: SWAP-CMD + two memory-route page moves
		swapCost = serCmd + e.cfg.DRAM.TRCD.Seconds() +
			2*e.serMemRoute(e.pageB, wom) + e.xpW + e.xpR + e.dLat
	}
	maxSwaps := float64(e.mcs) * elapsed / swapCost
	slots := float64(cfg.Memory.DRAMBytes) / e.pageB
	if maxSwaps > slots {
		maxSwaps = slots
	}
	thresh := float64(cfg.Memory.HotThreshold)
	swaps, dFrac := e.pages.dramResidency(maxSwaps, reqs, thresh)

	o.migrations = swaps
	o.migratedBytes = swaps * 2 * e.pageB
	// On the single-route platforms swap pages ride the data route and a
	// line request can get stuck mid-way behind one swap window.
	if swaps > 0 && kind != config.OhmWOM && kind != config.OhmBW {
		o.burstLat = swapCost / 2
	}

	// Demand traffic (read: cmd forward, line back; write: cmd+line
	// forward) is identical whichever device serves it.
	o.busyFwdReg = reads*serCmd + writes*serCmdLine
	o.busyBwdReg = reads * serLine
	o.regBytes = reqs * (cmdB + e.lineB)

	// Swap channel traffic per migration kind.
	serMemPage := e.serMemRoute(e.pageB, wom)
	switch kind {
	case config.Hetero, config.OhmBase:
		o.busyFwdCopy = swaps * 2 * serPage
		o.busyBwdCopy = swaps * 2 * serPage
		o.copyBytes = swaps * 4 * e.pageB
	case config.AutoRW:
		o.busyFwdCopy = swaps * serPage
		o.busyBwdCopy = swaps * 2 * serPage
		o.copyBytes = swaps * 3 * e.pageB
		o.snarfBytes = swaps * e.pageB
	default: // Ohm-WOM / Ohm-BW
		o.busyFwdCopy = swaps * serCmd
		o.busyMem = swaps * 2 * serMemPage
		o.copyBytes = swaps * (cmdB + 2*e.pageB)
		o.dualBytes = swaps * 2 * e.pageB
	}

	// WOM code expansion taxes forward requests while a swap shares the
	// light.
	womFrac := 0.0
	if wom && elapsed > 0 {
		womFrac = swaps * 2 * serMemPage / (float64(e.mcs) * elapsed)
		if womFrac > 1 {
			womFrac = 1
		}
		o.busyFwdReg *= 1 + (womOverhead-1)*womFrac
	}

	// Demux retuning when DRAM- and XPoint-bound transfers alternate on a
	// VC (occupancy only; 100 ps is invisible next to the latency paths).
	if e.optical {
		pSwitch := 2 * dFrac * (1 - dFrac)
		o.busyFwdReg += reqs * pSwitch * e.demux
		o.busyBwdReg += reads * pSwitch * e.demux
	}

	// Device op counts: demand split by residency plus one of each per swap.
	o.dramReads = reads*dFrac + swaps
	o.dramWrites = writes*dFrac + swaps
	o.xpReads = reads*(1-dFrac) + swaps
	o.xpWrites = writes*(1-dFrac) + swaps
	o.dramDevBusy = (reads+writes)*dFrac*e.dLat + swaps*2*e.dLat
	o.xpDevBusy = o.xpReads*e.xpR + o.xpWrites*e.xpW

	parts := float64(e.mcs * cfg.XPoint.Partitions)
	xpRQ := e.xpR * inflate(o.xpDevBusy, parts, elapsed)

	fwBusy := o.busyFwdReg + o.busyFwdCopy
	fw := queueWait(fwBusy, float64(e.vcs), fwBusy/math.Max(reqs+4*swaps, 1), elapsed)
	if wom {
		fw += (womOverhead - 1) * womFrac * serCmd
	}
	bw := queueWait(o.busyBwdReg+o.busyBwdCopy, float64(e.vcs), serLine, elapsed)
	dWait := e.hotBankWait((reads+writes)*dFrac, elapsed)

	dramR := serCmd + fw + e.dLat + dWait + serLine + bw
	dramW := serCmdLine + fw + e.dLat + dWait
	xpRead := serCmd + fw + xpRQ + serLine + bw
	// XPoint writes acknowledge at write-buffer admission; the media drain
	// is background (known-bad when the 64-entry buffer saturates).
	xpWrite := serCmdLine + fw

	o.paths = append(o.paths,
		path{reads * dFrac, dramR},
		path{reads * (1 - dFrac), xpRead},
		path{writes * dFrac, dramW},
		path{writes * (1 - dFrac), xpWrite})
	o.loadMemLat = dFrac*dramR + (1-dFrac)*xpRead
	o.legs = append(o.legs, swaps*swapCost/float64(e.mcs), o.xpDevBusy/parts)
	e.dramLegs(o, elapsed)
}

// passTwoLevel models the two-level mode: DRAM as a direct-mapped inclusive
// cache of the XPoint space with tags in the ECC bits.
func (e *est) passTwoLevel(elapsed float64, o *passOut) {
	cfg := e.cfg
	reads, writes := e.demandReqs(elapsed)
	o.memReqs = reads + writes
	reqs := reads + writes
	serCmd, serLine, serCmdLine := e.serData(cmdB), e.serData(e.lineB), e.serData(cmdB+e.lineB)
	kind := cfg.Platform
	lpp := float64(e.linesPerPage)

	sets := float64(cfg.Memory.DRAMBytes) / e.lineB
	hDC := e.pages.hit(sets*directMapFactor, reqs, lpp)
	miss := reqs * (1 - hDC)
	hits := reqs - miss

	rdShare := 0.0
	if reqs > 0 {
		rdShare = reads / reqs
	}

	// Channel traffic: hits look like flat DRAM accesses; every miss does
	// a tag read (cmd fwd + line back) and a demand line from XPoint.
	o.busyFwdReg = hits*(rdShare*serCmd+(1-rdShare)*serCmdLine) + miss*serCmd
	o.busyBwdReg = hits*rdShare*serLine + miss*2*serLine
	o.regBytes = hits*(cmdB+e.lineB) + miss*(cmdB+2*e.lineB)

	// Dirty victims drain through the controller's write buffer without
	// crossing the channel or reaching XPoint media within the run (the
	// kernel's counters show ≈0 XPoint writes in two-level mode), so only
	// the fill transfer shows up as copy traffic.
	wom := kind == config.OhmWOM
	serMemLine := e.serMemRoute(e.lineB, wom)
	switch kind {
	case config.Hetero, config.OhmBase, config.AutoRW:
		// The fill line crosses the data route.
		o.busyFwdCopy = miss * serCmdLine
		o.copyBytes = miss * (cmdB + e.lineB)
	default: // Ohm-WOM / Ohm-BW: reverse-write fill on the memory route
		o.busyMem = miss * serMemLine
		o.copyBytes = miss * e.lineB
		o.dualBytes = miss * e.lineB
	}

	womFrac := 0.0
	if wom && elapsed > 0 {
		womFrac = miss * serMemLine / (float64(e.mcs) * elapsed)
		if womFrac > 1 {
			womFrac = 1
		}
		o.busyFwdReg *= 1 + (womOverhead-1)*womFrac
	}
	if e.optical {
		pSwitch := 2 * (1 - hDC) * hDC
		o.busyFwdReg += reqs * pSwitch * e.demux
		o.busyBwdReg += reqs * pSwitch * e.demux
	}

	o.migrations = miss
	o.migratedBytes = miss * e.lineB
	o.dramReads = hits*rdShare + miss
	o.dramWrites = hits*(1-rdShare) + miss
	o.xpReads = miss
	o.xpWrites = 0
	o.dramDevBusy = (o.dramReads + o.dramWrites) * e.dLat
	o.xpDevBusy = o.xpReads*e.xpR + o.xpWrites*e.xpW

	parts := float64(e.mcs * cfg.XPoint.Partitions)
	xpRQ := e.xpR * inflate(o.xpDevBusy, parts, elapsed)

	fwBusy := o.busyFwdReg + o.busyFwdCopy
	fw := queueWait(fwBusy, float64(e.vcs), fwBusy/math.Max(reqs+miss, 1), elapsed)
	bw := queueWait(o.busyBwdReg, float64(e.vcs), serLine, elapsed)
	dWait := e.hotBankWait(o.dramReads+o.dramWrites, elapsed)

	hitR := serCmd + fw + e.dLat + dWait + serLine + bw
	hitW := serCmdLine + fw + e.dLat + dWait
	missLat := serCmd + fw + e.dLat + dWait + serLine + bw + xpRQ + serLine + bw
	if kind == config.Hetero || kind == config.OhmBase {
		// The request completes only when the fill lands in DRAM.
		missLat += serCmdLine + fw + e.dLat
	}

	o.paths = append(o.paths,
		path{hits * rdShare, hitR},
		path{hits * (1 - rdShare), hitW},
		path{miss, missLat})
	o.loadMemLat = hDC*hitR + (1-hDC)*missLat
	o.legs = append(o.legs, o.xpDevBusy/parts)
	e.dramLegs(o, elapsed)
}

// report runs the fixed point over elapsed and assembles the final report.
func (e *est) report() stats.Report {
	g := &e.cfg.GPU
	tIssue := float64(g.WarpsPerSM) * float64(e.cfg.MaxInstructions) * e.cycle

	elapsed := tIssue
	var o passOut
	for i := 0; i < 4; i++ {
		o = e.pass(elapsed)

		loadLat := e.h1*e.l1L + (1-e.h1)*(e.l1L+e.icL+e.l2L+e.icL+(1-e.l2Local)*o.loadMemLat)
		tLat := float64(e.cfg.MaxInstructions)*e.cycle +
			e.loads/e.nWarps*loadLat + e.stores/e.nWarps*e.l1L

		hot := e.hotVCShare()
		next := math.Max(tIssue, tLat)
		next = math.Max(next, (o.busyFwdReg+o.busyFwdCopy)*hot)
		next = math.Max(next, (o.busyBwdReg+o.busyBwdCopy)*hot)
		next = math.Max(next, o.busyMem*hot)
		for _, leg := range o.legs {
			next = math.Max(next, leg)
		}
		if math.Abs(next-elapsed) <= 1e-3*elapsed {
			elapsed = next
			break
		}
		elapsed = next
	}

	// Latency mixture → mean and the DES log-bucket p99 upper bound.
	var wSum, latSum float64
	for _, p := range o.paths {
		wSum += p.w
		latSum += p.w * p.lat
	}
	meanLat := 0.0
	if wSum > 0 {
		meanLat = latSum / wSum
	}
	// Saturated memory systems queue far deeper than the capped M/D/1 path
	// waits admit: by Little's law the mean request latency is the average
	// outstanding population times elapsed over the request count. Warps
	// block on loads (≈ one parked load each) while stores are fire-and-
	// forget and pile up behind the bottleneck; the floor only engages to
	// the extent the run is memory-bound (elapsed beyond the issue bound).
	satFrac := 0.0
	if elapsed > tIssue {
		satFrac = 1 - tIssue/elapsed
	}
	if o.memReqs > 0 && satFrac > 0 {
		if floor := satFrac * e.littleConc() * elapsed / o.memReqs; meanLat < floor {
			meanLat = floor
		}
	}
	sort.Slice(o.paths, func(i, j int) bool { return o.paths[i].lat < o.paths[j].lat })
	p99 := 0.0
	cum := 0.0
	for _, p := range o.paths {
		cum += p.w
		p99 = p.lat
		if cum >= 0.99*wSum {
			break
		}
	}
	// Tail floors: ordinary mixtures tail at a few× the mean, and a request
	// can get stuck behind the platform's page-burst window.
	if tail := tailBase * meanLat; p99 < tail {
		p99 = tail
	}
	if o.burstLat > 0 && p99 < o.burstLat {
		p99 = o.burstLat
	}

	sec := elapsed
	rep := stats.Report{
		Elapsed:      sim.Time(sec*1e12 + 0.5),
		IPC:          e.totalInstr / (sec * g.CoreFreqHz),
		MeanLatency:  sim.Time(meanLat*1e12 + 0.5),
		P99Latency:   p99Bucket(p99),
		Instructions: uint64(e.totalInstr + 0.5),
		MemRequests:  uint64(o.memReqs + 0.5),
		Migrations:   uint64(o.migrations + 0.5),
		RegularBytes: uint64(o.regBytes + 0.5),
		CopyBytes:    uint64(o.copyBytes + o.dualBytes + 0.5),
		EnergyPJ:     make(map[string]float64, 6),
		Extra:        make(map[string]float64, 4+len(errorBars)),
	}
	busyReg := o.busyFwdReg + o.busyBwdReg
	busyCopy := o.busyFwdCopy + o.busyBwdCopy
	if busyReg+busyCopy > 0 {
		rep.CopyFraction = busyCopy / (busyReg + busyCopy)
	}

	// Energy: the exact coefficient mirror of energy.Model plus the
	// channel-incremental terms the concrete channels accumulate.
	em := energyModel()
	dramGB := float64(e.cfg.Memory.DRAMBytes) / float64(1<<30)
	rep.EnergyPJ["dram-static"] = em.static * dramGB * sec * 1e9
	rep.EnergyPJ["dram-dynamic"] = (o.dramReads + o.dramWrites) * em.dynamic
	if e.cfg.Platform.Heterogeneous() {
		rep.EnergyPJ["xpoint"] = o.xpReads*em.xpRead + o.xpWrites*em.xpWrite
	}
	allBytes := o.regBytes + o.copyBytes + o.dualBytes
	if e.optical {
		oc := &e.cfg.Optical
		b := oc.LaserBoost
		if b <= 0 {
			b = 1
		}
		laserMW := oc.LaserPowerMW * b * float64(oc.VirtualChannels) * float64(oc.Waveguides)
		rep.EnergyPJ["opti-network"] = laserMW*sec*1e9 +
			allBytes*8*oc.MRRTuningFJPerBit/1000
	} else {
		rep.EnergyPJ["elec-channel"] = allBytes * 8 * e.cfg.Electrical.PJPerBit
	}
	if o.dmaEnergyPJ > 0 {
		rep.EnergyPJ["dma"] = o.dmaEnergyPJ
	}

	rep.Extra["l1-hit-rate"] = e.l1Rate
	rep.Extra["l2-hit-rate"] = e.l2Rate
	rep.Extra["twin:model-version"] = modelVersionNum
	for k, v := range errorBars {
		rep.Extra["twin:mape:"+k] = v
	}
	return rep
}

// p99Bucket mirrors stats.LatencyDist's log-histogram percentile: a sample
// of n nanoseconds lands in bucket bitlen(n), reported as its upper bound.
func p99Bucket(sec float64) sim.Time {
	ns := uint64(sec * 1e9)
	b := bits.Len64(ns)
	return sim.Time(uint64(1)<<uint(b)) * sim.Nanosecond
}

// energyModel mirrors energy.Default's coefficients. Kept literal (the
// values are part of the published calibration) so the twin does not import
// the energy package's collector machinery.
type energyCoeffs struct {
	static, dynamic, xpRead, xpWrite float64
}

func energyModel() energyCoeffs {
	return energyCoeffs{static: 5000, dynamic: 1000, xpRead: 6400, xpWrite: 19200}
}

// HitRates exposes the twin's L1/L2 hit-rate estimates for a configuration
// and workload — the quantities mirrored into Extra["l1-hit-rate"] and
// Extra["l2-hit-rate"] — for the calibration edge tests.
func HitRates(cfg *config.Config, w config.Workload) (l1, l2 float64) {
	e := newEst(cfg, w)
	return e.l1Rate, e.l2Rate
}
