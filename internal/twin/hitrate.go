// Cache hit-rate estimation for the analytical twin: a bucketed Zipf
// popularity model evaluated through Che's approximation with a cold-start
// (finite-stream) correction. The trace generator draws pages from
// sim.ZipfCDF(HotSkew, nPages) and walks lines within a page, so a page's
// reference probability is its Zipf mass and a line's is that mass divided
// by the lines per page — the twin never materializes the CDF, it evaluates
// the same distribution in closed form.
package twin

import (
	"math"
	"sync"
)

// zbucket groups a contiguous range of Zipf popularity ranks sharing one
// representative per-rank reference probability.
type zbucket struct {
	items float64 // ranks in the bucket
	p     float64 // per-rank reference probability (normalized)
}

// zipfDist is a bucketed Zipf(skew) popularity distribution over n ranks.
// The head ranks are exact (they carry most of the mass at Table II skews);
// the tail is grouped geometrically with bucket masses from a closed-form
// generalized harmonic sum, so building and evaluating the distribution is
// O(buckets) — the twin's whole budget is a few microseconds, not the
// O(n·iterations) a per-rank Che solve would cost.
type zipfDist struct {
	n       int
	p1      float64 // hottest rank's probability (channel-imbalance model)
	buckets []zbucket
}

// zipfExactHead is how many head ranks are computed exactly before the
// geometric tail bucketing starts.
const zipfExactHead = 32

// eulerGamma is the Euler–Mascheroni constant for the s=1 harmonic form.
const eulerGamma = 0.5772156649015329

// harmonic approximates the generalized harmonic number H(k,s) = Σ_{i≤k}
// i^-s by Euler–Maclaurin. Differences of this form give tail bucket
// masses; it is only evaluated for k ≥ zipfExactHead where the error is
// far below the model's other approximations.
func harmonic(k, s float64) float64 {
	if math.Abs(s-1) < 1e-9 {
		return math.Log(k) + eulerGamma + 1/(2*k) - 1/(12*k*k)
	}
	return (math.Pow(k, 1-s)-1)/(1-s) + (1+math.Pow(k, -s))/2 + s*(1-math.Pow(k, -s-1))/12
}

func newZipfDist(skew float64, n int) *zipfDist {
	if n < 1 {
		n = 1
	}
	d := &zipfDist{n: n}
	head := n
	if head > zipfExactHead {
		head = zipfExactHead
	}
	type raw struct{ items, w float64 }
	raws := make([]raw, 0, head+24)
	var total float64
	for i := 1; i <= head; i++ {
		w := math.Pow(float64(i), -skew)
		raws = append(raws, raw{1, w})
		total += w
	}
	if n > head {
		hLo := harmonic(float64(head), skew)
		for lo := head + 1; lo <= n; {
			hi := lo + lo/3 // geometric ratio ~4/3 keeps ~20 tail buckets at any n
			if hi > n {
				hi = n
			}
			hHi := harmonic(float64(hi), skew)
			mass := hHi - hLo
			if mass < 0 {
				mass = 0
			}
			items := float64(hi - lo + 1)
			raws = append(raws, raw{items, mass / items})
			total += mass
			hLo = hHi
			lo = hi + 1
		}
	}
	d.buckets = make([]zbucket, len(raws))
	for i, r := range raws {
		d.buckets[i] = zbucket{items: r.items, p: r.w / total}
	}
	d.p1 = d.buckets[0].p
	return d
}

// distCache memoizes distributions by (skew, n): a sweep reuses the same
// Table II workloads across thousands of cells exactly like the DES trace
// registry shares generated traces. Bounded so adversarial sweeps over
// footprint/skew axes cannot grow it without limit.
var (
	distMu    sync.Mutex
	distCache = map[distKey]*zipfDist{}
)

type distKey struct {
	skew float64
	n    int
}

const distCacheCap = 512

func cachedZipfDist(skew float64, n int) *zipfDist {
	key := distKey{skew, n}
	distMu.Lock()
	d := distCache[key]
	distMu.Unlock()
	if d != nil {
		return d
	}
	d = newZipfDist(skew, n)
	distMu.Lock()
	if len(distCache) < distCacheCap {
		distCache[key] = d
	}
	distMu.Unlock()
	return d
}

// distinct returns the expected number of distinct items touched by t
// references when every rank is split into `split` equally-popular
// sub-items (split=1 evaluates pages, split=linesPerPage evaluates lines).
func (d *zipfDist) distinct(t, split float64) float64 {
	var s float64
	for _, b := range d.buckets {
		q := b.p / split
		s += b.items * split * -math.Expm1(-q*t)
	}
	return s
}

// distinctDeriv is d(distinct)/dt, used by the Newton solve.
func (d *zipfDist) distinctDeriv(t, split float64) float64 {
	var s float64
	for _, b := range d.buckets {
		q := b.p / split
		s += b.items * split * q * math.Exp(-q*t)
	}
	return s
}

// cheT solves distinct(T) = capacity for Che's characteristic time. Since
// distinct is concave increasing and distinct(t) ≤ t, Newton from t=capacity
// converges monotonically from below in a handful of iterations. The result
// is clamped to the stream length: a cache that never fills within the run
// has an effective window of the whole run.
func (d *zipfDist) cheT(capacity, stream, split float64) float64 {
	if capacity <= 0 {
		return 0
	}
	if d.distinct(stream, split) <= capacity {
		return stream
	}
	t := capacity
	for i := 0; i < 16; i++ {
		f := d.distinct(t, split)
		if capacity-f <= 1e-4*capacity {
			break
		}
		df := d.distinctDeriv(t, split)
		if df <= 0 {
			break
		}
		nt := t + (capacity-f)/df
		if nt <= t {
			break
		}
		t = nt
		if t >= stream {
			return stream
		}
	}
	return t
}

// hitT returns the expected hit rate over a finite stream given a
// characteristic time T. Steady-state Che says a reference to an item with
// rate q hits with probability 1−e^(−qT); the finite-stream correction
// removes each item's compulsory first reference (probability 1−e^(−q·m)
// of appearing at all), which dominates on short calibration runs where
// the working set is touched mostly once.
func (d *zipfDist) hitT(t, stream, split float64) float64 {
	if stream <= 0 {
		return 0
	}
	// A characteristic time spanning the whole run means the cache never
	// fills: nothing is evicted, so every non-compulsory reference hits.
	full := t >= stream
	var hits float64
	for _, b := range d.buckets {
		q := b.p / split
		refs := q * stream
		fill := 1.0
		if !full {
			fill = -math.Expm1(-q * t)
		}
		first := -math.Expm1(-refs)
		h := fill * (refs - first)
		if h > 0 {
			hits += b.items * split * h
		}
	}
	h := hits / stream
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}

// hit estimates the LRU hit rate of a cache with `capacity` item slots over
// a cold-start reference stream of the given length.
func (d *zipfDist) hit(capacity, stream, split float64) float64 {
	return d.hitT(d.cheT(capacity, stream, split), stream, split)
}

// fifoHit estimates the hit rate of a FIFO-evicting cache of `capacity`
// item slots over a cold-start stream. FIFO (like RANDOM) cannot
// preferentially retain hot items the way LRU does: King's approximation
// makes an item's steady-state occupancy rational in its reference rate —
// qT/(1+qT) — rather than LRU's exponential 1−e^(−qT), which materially
// lowers hit rates on skewed streams. T solves Σ occupancy = capacity.
func (d *zipfDist) fifoHit(capacity, stream, split float64) float64 {
	if capacity <= 0 || stream <= 0 {
		return 0
	}
	if d.distinct(stream, split) <= capacity {
		return d.hitT(stream, stream, split) // never fills: compulsory only
	}
	// Newton solve from below: f(T) = Σ qT/(1+qT) is concave increasing
	// with f(T) ≤ T, so starting at T = capacity converges monotonically.
	t := capacity
	for i := 0; i < 16; i++ {
		var f, df float64
		for _, b := range d.buckets {
			q := b.p / split
			qt := q * t
			f += b.items * split * qt / (1 + qt)
			df += b.items * split * q / ((1 + qt) * (1 + qt))
		}
		if capacity-f <= 1e-4*capacity || df <= 0 {
			break
		}
		nt := t + (capacity-f)/df
		if nt <= t {
			break
		}
		t = nt
	}
	var hits float64
	for _, b := range d.buckets {
		q := b.p / split
		refs := q * stream
		occ := q * t / (1 + q*t)
		first := -math.Expm1(-refs)
		if h := occ * (refs - first); h > 0 {
			hits += b.items * split * h
		}
	}
	h := hits / stream
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}

// missTopShare returns the hottest rank's share of the *miss* stream of a
// cache with characteristic time t. The channel never sees raw popularity:
// the hottest page's lines are almost always cache-resident, so its share
// of post-cache traffic collapses toward its compulsory misses while
// mid-popularity ranks dominate the miss mix.
func (d *zipfDist) missTopShare(t, stream, split float64) float64 {
	if stream <= 0 {
		return d.p1
	}
	var top, total float64
	for i, b := range d.buckets {
		q := b.p / split
		refs := q * stream
		fill := -math.Expm1(-q * t)
		first := -math.Expm1(-refs)
		h := fill * (refs - first)
		if h < 0 {
			h = 0
		}
		m := refs - h
		if m < 0 {
			m = 0
		}
		total += b.items * split * m
		if i == 0 {
			top = split * m
		}
	}
	if total <= 0 {
		return d.p1
	}
	return top / total
}

// topMass returns the popularity mass of the k hottest ranks.
func (d *zipfDist) topMass(k float64) float64 {
	var mass float64
	for _, b := range d.buckets {
		if k <= 0 {
			break
		}
		take := b.items
		if take > k {
			take = k
		}
		mass += take * b.p
		k -= take
	}
	return mass
}

// dramResidency models planar hot-page migration: pages whose expected
// reference count reaches the hot threshold eventually swap into DRAM
// (hottest first, bounded by maxPages — DRAM slots or the swap-rate
// ceiling). A page that swaps after its thresh-th access is DRAM-resident
// for roughly the remaining 1−thresh/refs of its references. Returns the
// number of swapped pages and the fraction of all references they absorb
// while resident.
func (d *zipfDist) dramResidency(maxPages, refs, thresh float64) (pages, frac float64) {
	if refs <= 0 || maxPages <= 0 {
		return 0, 0
	}
	for _, b := range d.buckets {
		if pages >= maxPages {
			break
		}
		r := b.p * refs
		if r < thresh {
			break // buckets are hottest-first; colder ones never trip
		}
		take := b.items
		if pages+take > maxPages {
			take = maxPages - pages
		}
		resident := 1 - thresh/r
		if resident > 0 {
			frac += take * b.p * resident
		}
		pages += take
	}
	return pages, frac
}

// CacheHitRate estimates the finite-stream LRU hit rate of a cache of
// capacityLines lines serving `accesses` references whose pages follow a
// Zipf(skew) distribution over `pages` pages of `linesPerPage` lines each —
// the exact address process the trace generator produces. It is the
// estimator the twin uses for L1/L2/DRAM-cache hit rates, exported so the
// calibration tests can pin its edge behaviour (single page, skew→0,
// skew→∞, working set smaller than the cache) against measured DES runs.
func CacheHitRate(skew float64, pages, linesPerPage, capacityLines int, accesses float64) float64 {
	if pages < 1 || linesPerPage < 1 || capacityLines < 1 || accesses <= 0 {
		return 0
	}
	d := cachedZipfDist(skew, pages)
	return d.hit(float64(capacityLines), accesses, float64(linesPerPage))
}
