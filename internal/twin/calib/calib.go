// Package calib cross-validates the analytical twin against the event
// simulator: it replays every platform preset in both memory modes over
// the full Table II workload suite, computes per-metric error statistics
// (MAPE and Pearson correlation), and diffs them against a committed
// baseline so the twin's accuracy is a tested contract, not a claim.
//
// It lives in its own package because it needs both sides of the
// comparison — internal/twin must never import the simulator it
// approximates, and internal/core must never know the twin exists.
package calib

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/twin"
)

// Metrics are the headline report metrics the calibration tracks, in
// display order. They match the twin's Extra["twin:mape:*"] keys.
var Metrics = []string{"ipc", "elapsed", "mean-latency", "p99-latency", "energy", "mem-requests"}

// Cell identifies one calibration point.
type Cell struct {
	Preset   string `json:"preset"`
	Mode     string `json:"mode"`
	Workload string `json:"workload"`
}

// Pair is one cell's DES measurement next to the twin's estimate.
type Pair struct {
	Cell
	DES  map[string]float64 `json:"des"`
	Twin map[string]float64 `json:"twin"`
}

// MetricError summarizes one metric across all calibration cells.
type MetricError struct {
	// MAPE is the mean absolute percentage error of the twin against the
	// simulator, as a fraction (0.12 = 12%).
	MAPE float64 `json:"mape"`
	// Pearson is the linear correlation between estimate and measurement
	// across cells — high correlation with moderate MAPE means the twin
	// ranks design points correctly even where its absolute numbers drift.
	Pearson float64 `json:"pearson"`
	// WorstCell names the cell with the largest absolute error.
	WorstCell string `json:"worst_cell"`
	// WorstErr is that cell's absolute percentage error (fraction).
	WorstErr float64 `json:"worst_err"`
}

// Summary is the committed calibration baseline: the twin model version
// it was measured for, the grid size, and per-metric error statistics.
type Summary struct {
	ModelVersion string                 `json:"model_version"`
	Cells        int                    `json:"cells"`
	Metrics      map[string]MetricError `json:"metrics"`
}

// metricsOf flattens the headline metrics of a report for comparison.
func metricsOf(r stats.Report) map[string]float64 {
	return map[string]float64{
		"ipc":          r.IPC,
		"elapsed":      float64(r.Elapsed),
		"mean-latency": float64(r.MeanLatency),
		"p99-latency":  float64(r.P99Latency),
		"energy":       r.TotalEnergyPJ(),
		"mem-requests": float64(r.MemRequests),
	}
}

// Grid returns the calibration grid: every preset in both memory modes
// across the full Table II workload suite.
func Grid() []Cell {
	var cells []Cell
	for _, p := range config.Presets() {
		for _, m := range config.AllModes() {
			for _, w := range config.WorkloadNames() {
				cells = append(cells, Cell{Preset: p.Name, Mode: m.String(), Workload: w})
			}
		}
	}
	return cells
}

// Run replays the grid through both the simulator and the twin and
// returns the pairs. The simulator side reuses a pooled run state, so a
// full 140-cell replay costs a few seconds.
func Run() ([]Pair, error) {
	st := core.AcquireRunState()
	defer core.ReleaseRunState(st)
	var pairs []Pair
	for _, c := range Grid() {
		pre, ok := config.LookupPreset(c.Preset)
		if !ok {
			return nil, fmt.Errorf("calib: unknown preset %q", c.Preset)
		}
		mode, err := config.ParseMode(c.Mode)
		if err != nil {
			return nil, err
		}
		w, ok := config.WorkloadByName(c.Workload)
		if !ok {
			return nil, fmt.Errorf("calib: unknown workload %q", c.Workload)
		}
		cfg := pre.Build(mode)
		des, _, err := core.RunWorkloadDefTimedIn(st, cfg, w)
		if err != nil {
			return nil, fmt.Errorf("calib: %s/%s/%s: %w", c.Preset, c.Mode, c.Workload, err)
		}
		est := twin.Estimate(&cfg, w)
		pairs = append(pairs, Pair{Cell: c, DES: metricsOf(des), Twin: metricsOf(est)})
	}
	return pairs, nil
}

// Summarize reduces pairs to per-metric error statistics.
func Summarize(pairs []Pair) Summary {
	s := Summary{
		ModelVersion: twin.ModelVersion,
		Cells:        len(pairs),
		Metrics:      make(map[string]MetricError, len(Metrics)),
	}
	for _, m := range Metrics {
		var (
			sumErr, worst float64
			worstCell     string
			xs, ys        []float64
		)
		for _, p := range pairs {
			ref, est := p.DES[m], p.Twin[m]
			if ref == 0 {
				continue
			}
			e := math.Abs(est-ref) / math.Abs(ref)
			sumErr += e
			if e > worst {
				worst, worstCell = e, fmt.Sprintf("%s/%s/%s", p.Preset, p.Mode, p.Workload)
			}
			xs, ys = append(xs, ref), append(ys, est)
		}
		me := MetricError{WorstCell: worstCell, WorstErr: round4(worst)}
		if len(xs) > 0 {
			me.MAPE = round4(sumErr / float64(len(xs)))
			me.Pearson = round4(pearson(xs, ys))
		}
		s.Metrics[m] = me
	}
	return s
}

// round4 keeps the committed baseline diff-stable across platforms.
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx, my = mx/n, my/n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Load reads a committed baseline file.
func Load(path string) (Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Summary{}, err
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return Summary{}, fmt.Errorf("calib: %s: %w", path, err)
	}
	return s, nil
}

// Save writes a baseline with stable formatting for committing.
func Save(path string, s Summary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DriftTolerance is how far a freshly measured per-metric MAPE may move
// from the committed baseline before Compare fails, in absolute MAPE
// points (0.02 = two percentage points). Small wobble is expected — the
// simulator is deterministic but the metric mix shifts as workloads or
// presets are retuned — while larger drift means the twin or the
// simulator changed behaviour and the baseline must be consciously
// re-committed via scripts/twincheck -update.
const DriftTolerance = 0.02

// Compare diffs a fresh summary against the committed baseline and
// returns the list of violations (empty means calibration holds).
func Compare(baseline, fresh Summary) []string {
	var bad []string
	if baseline.ModelVersion != fresh.ModelVersion {
		bad = append(bad, fmt.Sprintf("model version %q != baseline %q (re-run scripts/twincheck -update)",
			fresh.ModelVersion, baseline.ModelVersion))
	}
	if baseline.Cells != fresh.Cells {
		bad = append(bad, fmt.Sprintf("grid size %d != baseline %d", fresh.Cells, baseline.Cells))
	}
	names := make([]string, 0, len(baseline.Metrics))
	for m := range baseline.Metrics {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		b, f := baseline.Metrics[m], fresh.Metrics[m]
		if d := math.Abs(f.MAPE - b.MAPE); d > DriftTolerance {
			bad = append(bad, fmt.Sprintf("%s: MAPE %.4f drifted from baseline %.4f (|Δ| %.4f > %.2f)",
				m, f.MAPE, b.MAPE, d, DriftTolerance))
		}
		if f.Pearson < b.Pearson-DriftTolerance {
			bad = append(bad, fmt.Sprintf("%s: Pearson r %.4f fell below baseline %.4f",
				m, f.Pearson, b.Pearson))
		}
	}
	return bad
}
