// Edge-behaviour tests for the twin's Zipf/Che cache hit-rate estimator:
// degenerate single-page traces, the skew→0 (uniform) and skew→∞ (single
// hot page) limits, and working sets smaller than the cache. The pure
// closed-form cases are checked against an independent uniform-IRM
// implementation; the composite L1/L2 estimates are pinned against hit
// rates measured from short event-simulator runs of the same workloads.
package calib

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/twin"
)

func TestCacheHitRateDegenerateArgs(t *testing.T) {
	cases := []struct {
		name                          string
		pages, linesPerPage, capacity int
		accesses                      float64
	}{
		{"zero pages", 0, 32, 1024, 1e6},
		{"zero lines per page", 64, 0, 1024, 1e6},
		{"zero capacity", 64, 32, 0, 1e6},
		{"negative capacity", 64, 32, -5, 1e6},
		{"zero accesses", 64, 32, 1024, 0},
		{"negative accesses", 64, 32, 1024, -1},
	}
	for _, c := range cases {
		if got := twin.CacheHitRate(0.8, c.pages, c.linesPerPage, c.capacity, c.accesses); got != 0 {
			t.Errorf("%s: CacheHitRate = %v, want 0", c.name, got)
		}
	}
}

// uniformHitRate is an independent closed-form implementation of the
// estimator for the uniform (skew=0) special case: n equally-popular lines,
// Che characteristic time T solving n(1−e^(−T/n)) = capacity, steady-state
// hit probability 1−e^(−T/n) = capacity/n, and the same finite-stream
// compulsory-miss correction the estimator applies.
func uniformHitRate(lines, capacity int, accesses float64) float64 {
	n := float64(lines)
	fill := float64(capacity) / n
	if float64(capacity) >= n*-math.Expm1(-accesses/n) {
		fill = 1 // never fills within the stream: only compulsory misses
	}
	refs := accesses / n
	first := -math.Expm1(-refs)
	h := fill * (refs - first) * n / accesses
	return math.Min(1, math.Max(0, h))
}

func TestCacheHitRateUniformLimit(t *testing.T) {
	const pages, lpp = 4096, 32
	for _, cap := range []int{512, 8192, 65536} {
		for _, accesses := range []float64{1e4, 1e6} {
			got := twin.CacheHitRate(0, pages, lpp, cap, accesses)
			want := uniformHitRate(pages*lpp, cap, accesses)
			if math.Abs(got-want) > 1e-3 {
				t.Errorf("skew=0 cap=%d accesses=%g: CacheHitRate %.6f != uniform closed form %.6f",
					cap, accesses, got, want)
			}
		}
	}
}

func TestCacheHitRateSinglePage(t *testing.T) {
	const lpp = 32
	// One page of lpp lines: the page-level Zipf collapses to a point mass
	// and the line stream is uniform over lpp lines, at any skew.
	for _, skew := range []float64{0, 0.8, 3} {
		got := twin.CacheHitRate(skew, 1, lpp, 2*lpp, 1e5)
		want := uniformHitRate(lpp, 2*lpp, 1e5)
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("single page skew=%g: CacheHitRate %.6f != uniform-over-lines %.6f", skew, got, want)
		}
	}
	// With far more references than lines, almost everything hits.
	if got := twin.CacheHitRate(0.8, 1, lpp, 2*lpp, 1e6); got < 0.999 {
		t.Errorf("single hot page with 1e6 references: hit rate %.6f, want ≥ 0.999", got)
	}
}

func TestCacheHitRateExtremeSkewLimit(t *testing.T) {
	// skew→∞ concentrates all mass on the hottest page: the estimate must
	// converge to the single-page trace with the same line geometry.
	const pages, lpp, cap = 4096, 32, 64
	got := twin.CacheHitRate(50, pages, lpp, cap, 1e5)
	want := twin.CacheHitRate(50, 1, lpp, cap, 1e5)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("skew=50 over %d pages: hit %.8f, want single-page limit %.8f", pages, got, want)
	}
	// And skew must help a small cache monotonically: a more concentrated
	// stream can never hit less under LRU.
	prev := -1.0
	for _, skew := range []float64{0, 0.5, 1, 2, 4, 8} {
		h := twin.CacheHitRate(skew, pages, lpp, cap, 1e6)
		if h < 0 || h > 1 {
			t.Fatalf("skew=%g: hit rate %v outside [0,1]", skew, h)
		}
		if h < prev-1e-9 {
			t.Errorf("hit rate fell from %.6f to %.6f as skew rose to %g", prev, h, skew)
		}
		prev = h
	}
}

func TestCacheHitRateWorkingSetFitsInCache(t *testing.T) {
	// Working set strictly smaller than the cache: nothing is ever evicted,
	// so the only misses are compulsory — hit = 1 − E[distinct]/accesses.
	const pages, lpp = 16, 32
	accesses := 1e5
	got := twin.CacheHitRate(0.8, pages, lpp, 10*pages*lpp, accesses)
	if got < 0.99 {
		t.Fatalf("working set %d lines inside a %d-line cache: hit %.6f, want ≥ 0.99",
			pages*lpp, 10*pages*lpp, got)
	}
	// The miss count must be bounded by the working-set size (every line
	// can miss at most once), and the bound must be nearly tight here.
	misses := (1 - got) * accesses
	if ws := float64(pages * lpp); misses > ws+1e-6 {
		t.Errorf("compulsory-only misses %.2f exceed working set %g", misses, ws)
	}
	// Capacity is irrelevant once the working set fits: doubling it again
	// must not change the estimate.
	if h2 := twin.CacheHitRate(0.8, pages, lpp, 20*pages*lpp, accesses); math.Abs(h2-got) > 1e-9 {
		t.Errorf("hit rate changed with surplus capacity: %.9f vs %.9f", got, h2)
	}
}

// TestHitRateEdgesAgainstDES pins the twin's composite L1/L2 hit-rate
// estimates against rates measured from short event-simulator runs at each
// estimator edge: a degenerate single-page trace, skew→0, extreme skew, and
// a working set that fits inside the L2.
func TestHitRateEdgesAgainstDES(t *testing.T) {
	onePage := float64(4<<10) / float64(config.FootprintUnit)
	cases := []config.Workload{
		{Name: "single-page", APKI: 100, ReadRatio: 0.7, FootprintScale: onePage, HotSkew: 0.8},
		{Name: "uniform", APKI: 100, ReadRatio: 0.7, FootprintScale: 2.0, HotSkew: 0},
		{Name: "extreme-skew", APKI: 100, ReadRatio: 0.7, FootprintScale: 2.0, HotSkew: 6.0},
		{Name: "fits-in-l2", APKI: 100, ReadRatio: 0.7, FootprintScale: float64(512<<10) / float64(config.FootprintUnit), HotSkew: 0.8},
	}
	const tol = 0.06 // absolute hit-rate error vs. the measured run
	st := core.AcquireRunState()
	defer core.ReleaseRunState(st)
	cfg := config.Default(config.OhmBase, config.Planar)
	for _, w := range cases {
		rep, _, err := core.RunWorkloadDefTimedIn(st, cfg, w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		l1, l2 := twin.HitRates(&cfg, w)
		if d := math.Abs(l1 - rep.Extra["l1-hit-rate"]); d > tol {
			t.Errorf("%s: twin L1 hit rate %.4f vs measured %.4f (|Δ| %.4f > %.2f)",
				w.Name, l1, rep.Extra["l1-hit-rate"], d, tol)
		}
		if d := math.Abs(l2 - rep.Extra["l2-hit-rate"]); d > tol {
			t.Errorf("%s: twin L2 hit rate %.4f vs measured %.4f (|Δ| %.4f > %.2f)",
				w.Name, l2, rep.Extra["l2-hit-rate"], d, tol)
		}
	}
}
