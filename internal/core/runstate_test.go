package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"repro/internal/config"
)

// TestPooledRunsByteIdentical is the pooling correctness gate: a shuffled
// grid of cells runs twice, once with fresh per-cell construction and once
// through a single reused RunState, and every report — including the Extra
// map — must be byte-identical between the two. The shuffle makes each CI
// run exercise a different platform/mode adjacency (the spare-stash and
// scrub paths depend on what the previous cell left behind); the seed is
// logged so a failure reproduces.
func TestPooledRunsByteIdentical(t *testing.T) {
	type cell struct {
		p config.Platform
		m config.MemMode
		w string
		// def, when non-nil, runs the inline-definition path instead of a
		// Table II name.
		def *config.Workload
	}
	custom := config.Workload{
		Name: "pooled-custom", APKI: 60, ReadRatio: 0.7,
		FootprintScale: 1.5, HotSkew: 0.8,
	}
	var cells []cell
	for _, p := range config.AllPlatforms() {
		for _, m := range config.AllModes() {
			cells = append(cells, cell{p: p, m: m, w: "bfstopo"})
		}
	}
	cells = append(cells,
		cell{p: config.OhmWOM, m: config.Planar, w: "pagerank"},
		cell{p: config.OhmBW, m: config.TwoLevel, w: "sssp"},
		cell{p: config.Origin, m: config.Planar, w: "backp"},
		cell{p: config.Hetero, m: config.TwoLevel, w: "lud"},
		cell{p: config.OhmBase, m: config.Planar, def: &custom},
	)
	seed := time.Now().UnixNano()
	t.Logf("shuffle seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })

	st := AcquireRunState()
	defer ReleaseRunState(st)
	for _, c := range cells {
		cfg := fastCfg(c.p, c.m)
		var label string
		runBoth := func(dst *RunState) ([]byte, error) {
			if c.def != nil {
				rep, _, err := RunWorkloadDefTimedIn(dst, cfg, *c.def)
				if err != nil {
					return nil, err
				}
				return json.Marshal(rep)
			}
			rep, _, err := RunConfigTimedIn(dst, cfg, c.w)
			if err != nil {
				return nil, err
			}
			return json.Marshal(rep)
		}
		if c.def != nil {
			label = c.p.String() + "/" + c.m.String() + "/" + c.def.Name
		} else {
			label = c.p.String() + "/" + c.m.String() + "/" + c.w
		}
		fresh, err := runBoth(nil)
		if err != nil {
			t.Fatalf("%s fresh: %v", label, err)
		}
		pooled, err := runBoth(st)
		if err != nil {
			t.Fatalf("%s pooled: %v", label, err)
		}
		if !bytes.Equal(fresh, pooled) {
			t.Errorf("%s: pooled report diverges from fresh\nfresh:  %s\npooled: %s",
				label, fresh, pooled)
		}
	}
}

// TestPooledRebuildAllocs pins down what the pool buys: once a RunState
// has run a configuration, rebuilding the same platform into it allocates
// a small constant (the System value, the link header and per-run handles)
// instead of the full device-array footprint a cold build pays.
func TestPooledRebuildAllocs(t *testing.T) {
	cfg := fastCfg(config.OhmWOM, config.Planar)
	st := AcquireRunState()
	defer ReleaseRunState(st)
	if _, err := NewSystemIn(st, cfg); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(20, func() {
		if _, err := NewSystemIn(st, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// A cold build allocates thousands of objects (wear arrays, cache tag
	// arrays, per-bank resources, stats maps). The warm bound is the small
	// fixed overhead of assembling a System around recycled state —
	// measured at 3 objects (System value, link wrapper, escape of the
	// config copy); 8 leaves slack for toolchain drift without letting a
	// real regression hide.
	if warm > 8 {
		t.Fatalf("warm NewSystemIn allocates %.0f objects per rebuild, want <= 8", warm)
	}
}
