package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

// fastCfg shrinks the instruction budget so full-system tests stay quick.
func fastCfg(p config.Platform, m config.MemMode) config.Config {
	c := config.Default(p, m)
	c.MaxInstructions = 1500
	return c
}

func runFast(t *testing.T, p config.Platform, m config.MemMode, w string) stats.Report {
	t.Helper()
	sys, err := NewSystem(fastCfg(p, m))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	cfg := config.Default(config.OhmBase, config.Planar)
	cfg.GPU.MemCtrls = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("accepted invalid config")
	}
}

func TestRunWorkloadUnknownName(t *testing.T) {
	sys, err := NewSystem(fastCfg(config.OhmBase, config.Planar))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWorkload("nope"); err == nil {
		t.Fatal("accepted unknown workload")
	}
}

func TestAllPlatformsRunEndToEnd(t *testing.T) {
	for _, p := range config.AllPlatforms() {
		for _, m := range config.AllModes() {
			rep := runFast(t, p, m, "bfstopo")
			if rep.Instructions == 0 || rep.Elapsed <= 0 || rep.IPC <= 0 {
				t.Errorf("%s/%s: degenerate report %+v", p, m, rep)
			}
			if rep.MemRequests == 0 {
				t.Errorf("%s/%s: no memory requests reached the controller", p, m)
			}
			if rep.TotalEnergyPJ() <= 0 {
				t.Errorf("%s/%s: no energy accounted", p, m)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := runFast(t, config.OhmWOM, config.Planar, "sssp")
	b := runFast(t, config.OhmWOM, config.Planar, "sssp")
	if a.Elapsed != b.Elapsed || a.Instructions != b.Instructions ||
		a.MemRequests != b.MemRequests || a.Migrations != b.Migrations {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestOracleBeatsHeterogeneous(t *testing.T) {
	// DRAM delivers up to 6x XPoint throughput: Oracle must outperform every
	// heterogeneous platform (Section VI-A).
	oracle := runFast(t, config.Oracle, config.Planar, "pagerank")
	base := runFast(t, config.OhmBase, config.Planar, "pagerank")
	if oracle.IPC <= base.IPC {
		t.Fatalf("Oracle IPC %.3f must exceed Ohm-base %.3f", oracle.IPC, base.IPC)
	}
	if oracle.Migrations != 0 {
		t.Fatal("Oracle must not migrate")
	}
}

func TestOriginWorstOnBigFootprints(t *testing.T) {
	origin := runFast(t, config.Origin, config.Planar, "pagerank")
	hetero := runFast(t, config.Hetero, config.Planar, "pagerank")
	if origin.IPC >= hetero.IPC {
		t.Fatalf("Origin IPC %.3f should trail Hetero %.3f on oversubscribed footprints",
			origin.IPC, hetero.IPC)
	}
}

func TestMigrationMachineryOrdering(t *testing.T) {
	// The paper's headline ordering in planar mode:
	// Ohm-base <= Auto-rw <= Ohm-WOM <= Ohm-BW <= Oracle (IPC).
	ipc := map[config.Platform]float64{}
	for _, p := range []config.Platform{config.OhmBase, config.AutoRW, config.OhmWOM, config.OhmBW, config.Oracle} {
		ipc[p] = runFast(t, p, config.Planar, "pagerank").IPC
	}
	if !(ipc[config.AutoRW] >= ipc[config.OhmBase]) {
		t.Errorf("Auto-rw (%.3f) must not trail Ohm-base (%.3f)", ipc[config.AutoRW], ipc[config.OhmBase])
	}
	if !(ipc[config.OhmWOM] >= ipc[config.AutoRW]) {
		t.Errorf("Ohm-WOM (%.3f) must not trail Auto-rw (%.3f)", ipc[config.OhmWOM], ipc[config.AutoRW])
	}
	if !(ipc[config.OhmBW] >= ipc[config.OhmWOM]*0.99) {
		t.Errorf("Ohm-BW (%.3f) must not trail Ohm-WOM (%.3f)", ipc[config.OhmBW], ipc[config.OhmWOM])
	}
	if !(ipc[config.Oracle] >= ipc[config.OhmBW]) {
		t.Errorf("Oracle (%.3f) must dominate Ohm-BW (%.3f)", ipc[config.Oracle], ipc[config.OhmBW])
	}
}

func TestDualRoutesReduceCopyFraction(t *testing.T) {
	base := runFast(t, config.OhmBase, config.Planar, "pagerank")
	wom := runFast(t, config.OhmWOM, config.Planar, "pagerank")
	if base.CopyFraction == 0 {
		t.Fatal("baseline shows no migration traffic; workload too small")
	}
	if wom.CopyFraction >= base.CopyFraction {
		t.Fatalf("dual routes did not reduce channel copy fraction: %.3f vs %.3f",
			wom.CopyFraction, base.CopyFraction)
	}
}

func TestTwoLevelMigrationEliminated(t *testing.T) {
	wom := runFast(t, config.OhmWOM, config.TwoLevel, "bfsdata")
	if wom.CopyFraction > 1e-9 {
		t.Fatalf("Ohm-WOM two-level copy fraction = %.4f, want 0 (Figure 18)", wom.CopyFraction)
	}
	base := runFast(t, config.OhmBase, config.TwoLevel, "bfsdata")
	if base.CopyFraction <= 0 {
		t.Fatal("two-level baseline must show migration traffic")
	}
}

func TestRunHelpers(t *testing.T) {
	rep, err := Run(config.OhmBase, config.TwoLevel, "lud")
	if err != nil || rep.Instructions == 0 {
		t.Fatalf("Run: %v %+v", err, rep)
	}
	cfg := fastCfg(config.OhmBase, config.Planar)
	rep2, err := RunConfig(cfg, "lud")
	if err != nil || rep2.Instructions == 0 {
		t.Fatalf("RunConfig: %v", err)
	}
}

func TestExtraMetricsPopulated(t *testing.T) {
	rep := runFast(t, config.OhmBase, config.Planar, "backp")
	if _, ok := rep.Extra["l1-hit-rate"]; !ok {
		t.Fatal("l1-hit-rate missing from report extras")
	}
	if _, ok := rep.Extra["l2-hit-rate"]; !ok {
		t.Fatal("l2-hit-rate missing from report extras")
	}
}

func TestHeteroTracksOhmBase(t *testing.T) {
	// Section VI-A: with the default bandwidth-equivalent channels, Hetero
	// and Ohm-base perform within a few percent of each other.
	for _, m := range config.AllModes() {
		het := runFast(t, config.Hetero, m, "gctopo")
		base := runFast(t, config.OhmBase, m, "gctopo")
		ratio := het.IPC / base.IPC
		if ratio < 0.85 || ratio > 1.18 {
			t.Errorf("%s: Hetero/Ohm-base IPC ratio = %.3f, want ~1", m, ratio)
		}
	}
}

func TestSameWorkAllPlatforms(t *testing.T) {
	// Every platform must execute the identical instruction stream: the
	// instruction count is platform-invariant even though timing differs.
	var want uint64
	for _, p := range config.AllPlatforms() {
		rep := runFast(t, p, config.Planar, "FDTD")
		if want == 0 {
			want = rep.Instructions
		} else if rep.Instructions != want {
			t.Errorf("%s executed %d instructions, others %d", p, rep.Instructions, want)
		}
	}
}

func TestEnergyAccountingConsistent(t *testing.T) {
	rep := runFast(t, config.OhmBW, config.Planar, "GRAMS")
	sum := 0.0
	for _, v := range rep.EnergyPJ {
		if v < 0 {
			t.Fatalf("negative energy component: %v", rep.EnergyPJ)
		}
		sum += v
	}
	if sum != rep.TotalEnergyPJ() {
		t.Fatal("energy total mismatch")
	}
	if rep.EnergyPJ["elec-channel"] != 0 {
		t.Fatal("optical platform charged electrical channel energy")
	}
}

func TestWaveguidesImproveOhmBase(t *testing.T) {
	cfg1 := fastCfg(config.OhmBase, config.Planar)
	cfg8 := fastCfg(config.OhmBase, config.Planar)
	cfg8.Optical.Waveguides = 8
	r1, err := RunConfig(cfg1, "betw")
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunConfig(cfg8, "betw")
	if err != nil {
		t.Fatal(err)
	}
	if r8.IPC < r1.IPC {
		t.Fatalf("8 waveguides (%.3f) should not trail 1 (%.3f)", r8.IPC, r1.IPC)
	}
}

func TestMigrationsOnlyOnHeterogeneous(t *testing.T) {
	for _, p := range []config.Platform{config.Origin, config.Oracle} {
		rep := runFast(t, p, config.Planar, "sssp")
		if rep.Migrations != 0 || rep.CopyBytes != 0 {
			t.Errorf("%s: migrations=%d copyBytes=%d, want 0", p, rep.Migrations, rep.CopyBytes)
		}
	}
}
