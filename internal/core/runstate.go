package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/gpu"
	"repro/internal/hmem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RunState owns the recyclable allocations of one simulation run: the
// device structures (GPU, memory controllers, caches, channel models), the
// stats counter arenas, the event-heap arena and the resource pools. A
// sweep cell acquires one, builds its System into it, and releases it for
// the next cell — warm cells then reuse the previous cell's arrays instead
// of reallocating them.
//
// A RunState must never back two live Systems at once: the System returned
// by NewSystemIn aliases the state's components, so release it only after
// the run's Report has been taken (reports are value snapshots and remain
// valid afterwards).
type RunState struct {
	col   *stats.Collector
	pools *sim.Pools
	mem   *hmem.Controller
	gpu   *gpu.GPU
}

// runStatePool recycles RunStates across cells. sync.Pool gives scheduler-
// friendly per-P caching under the batch runner's worker parallelism and
// lets idle state be garbage collected between sweeps.
var runStatePool = sync.Pool{New: func() any { return new(RunState) }}

// AcquireRunState takes a recycled run state (or a fresh empty one) from
// the process-wide pool.
func AcquireRunState() *RunState {
	return runStatePool.Get().(*RunState)
}

// ReleaseRunState returns a state to the pool. The caller must no longer
// hold a System built into it. Safe on nil.
func ReleaseRunState(st *RunState) {
	if st != nil {
		runStatePool.Put(st)
	}
}

// NewSystemIn is NewSystem building into a recycled run state. A nil st
// falls back to fresh construction, so callers can thread an optional
// state through unconditionally.
func NewSystemIn(st *RunState, cfg config.Config) (*System, error) {
	return NewSystemWithHostIn(st, cfg, nil)
}

// NewSystemWithHostIn is NewSystemWithHost building into a recycled run
// state. The components are reinitialized through the same construction
// path fresh builds use (every New is NewIn(nil, ...)), which is what
// guarantees a pooled System produces byte-identical reports.
func NewSystemWithHostIn(st *RunState, cfg config.Config, host hmem.HostLink) (*System, error) {
	if st == nil {
		return NewSystemWithHost(cfg, host)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if st.col == nil {
		st.col = stats.NewCollector()
	} else {
		st.col.Reset()
	}
	if st.pools == nil {
		st.pools = &sim.Pools{}
	}
	st.pools.Reset()
	mem, err := hmem.NewIn(st.mem, st.pools, &cfg, st.col, host)
	if err != nil {
		return nil, fmt.Errorf("core: memory system: %w", err)
	}
	st.mem = mem
	g, err := gpu.NewIn(st.gpu, st.pools, &cfg, st.col, mem)
	if err != nil {
		return nil, fmt.Errorf("core: gpu: %w", err)
	}
	st.gpu = g
	return &System{Cfg: cfg, Col: st.col, Mem: mem, GPU: g, model: energy.Default()}, nil
}

// RunConfigTimedIn is RunConfigTimed building the platform into a recycled
// run state (nil st = fresh).
func RunConfigTimedIn(st *RunState, cfg config.Config, workload string) (stats.Report, obs.Phases, error) {
	var ph obs.Phases
	t := time.Now()
	sys, err := NewSystemIn(st, cfg)
	ph.PlatformBuild = time.Since(t)
	if err != nil {
		return stats.Report{}, ph, err
	}
	t = time.Now()
	tr, err := trace.CachedByName(workload, &sys.Cfg)
	ph.TraceGen = time.Since(t)
	if err != nil {
		return stats.Report{}, ph, err
	}
	t = time.Now()
	rep := sys.RunTrace(tr)
	ph.EventLoop = time.Since(t)
	return rep, ph, nil
}

// RunWorkloadDefTimedIn is RunWorkloadDefTimed building the platform into
// a recycled run state (nil st = fresh).
func RunWorkloadDefTimedIn(st *RunState, cfg config.Config, w config.Workload) (stats.Report, obs.Phases, error) {
	var ph obs.Phases
	t := time.Now()
	sys, err := NewSystemIn(st, cfg)
	ph.PlatformBuild = time.Since(t)
	if err != nil {
		return stats.Report{}, ph, err
	}
	t = time.Now()
	tr := trace.Cached(w, &sys.Cfg)
	ph.TraceGen = time.Since(t)
	t = time.Now()
	rep := sys.RunTrace(tr)
	ph.EventLoop = time.Since(t)
	return rep, ph, nil
}
