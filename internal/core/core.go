// Package core is the public face of the Ohm-GPU reproduction: it assembles
// a complete simulated system (GPU multiprocessor + Ohm memory system) for
// any of the paper's seven platforms and runs Table II workloads on it,
// producing the measurements the evaluation section reports (IPC, memory
// latency, channel bandwidth split, energy breakdown).
//
// Typical use:
//
//	sys, err := core.NewSystem(config.Default(config.OhmBW, config.Planar))
//	rep, err := sys.RunWorkload("pagerank")
//	fmt.Println(rep.IPC, rep.MeanLatency)
package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/gpu"
	"repro/internal/hmem"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

// System is one fully-assembled platform instance. A System is single-use
// per workload run in the sense that caches and channel accounting carry
// over between runs; construct a fresh System per experiment cell for
// independent measurements (the experiment drivers do).
type System struct {
	Cfg config.Config
	Col *stats.Collector
	Mem *hmem.Controller
	GPU *gpu.GPU

	model energy.Model
}

// NewSystem builds a platform from a configuration, using the default PCIe
// host link for spill traffic.
func NewSystem(cfg config.Config) (*System, error) {
	return NewSystemWithHost(cfg, nil)
}

// NewSystemWithHost builds a platform with a custom host/storage link (the
// Figure 3 experiment passes an SSD model here).
func NewSystemWithHost(cfg config.Config, host hmem.HostLink) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	col := stats.NewCollector()
	mem, err := hmem.New(&cfg, col, host)
	if err != nil {
		return nil, fmt.Errorf("core: memory system: %w", err)
	}
	g, err := gpu.New(&cfg, col, mem)
	if err != nil {
		return nil, fmt.Errorf("core: gpu: %w", err)
	}
	return &System{Cfg: cfg, Col: col, Mem: mem, GPU: g, model: energy.Default()}, nil
}

// RunTrace executes a prepared trace and returns the run report.
func (s *System) RunTrace(tr *trace.Trace) stats.Report {
	elapsed := s.GPU.Run(tr)
	s.model.Finalize(s.Col, &s.Cfg, energy.Counters{
		Elapsed:      elapsed,
		DRAMReads:    s.Mem.DRAMReads,
		DRAMWrites:   s.Mem.DRAMWrites,
		XPointReads:  s.Mem.XPointReads,
		XPointWrites: s.Mem.XPointWrites,
	})
	s.Col.Extra["l1-hit-rate"] = s.GPU.L1HitRate()
	s.Col.Extra["l2-hit-rate"] = s.GPU.L2HitRate()
	return s.Col.Snapshot(elapsed, s.Cfg.GPU.CoreFreqHz)
}

// RunWorkload runs the named Table II workload. The trace comes from the
// in-process registry (traces are deterministic in the config), so
// multi-cell sweeps generate each distinct trace once instead of once per
// cell; execution never mutates it.
func (s *System) RunWorkload(name string) (stats.Report, error) {
	tr, err := trace.CachedByName(name, &s.Cfg)
	if err != nil {
		return stats.Report{}, err
	}
	return s.RunTrace(tr), nil
}

// RunWorkloadDef runs an explicit workload definition — an inline custom
// workload from a scenario spec, or a Table II struct. The trace registry
// keys on the full definition, so two custom workloads sharing a name get
// distinct traces, and a definition equal to a Table II entry shares that
// entry's cached trace.
func (s *System) RunWorkloadDef(w config.Workload) stats.Report {
	return s.RunTrace(trace.Cached(w, &s.Cfg))
}

// Run builds a fresh system for (platform, mode) and runs one workload;
// this is the one-call entry point used by experiments and benchmarks.
func Run(p config.Platform, m config.MemMode, workload string) (stats.Report, error) {
	sys, err := NewSystem(config.Default(p, m))
	if err != nil {
		return stats.Report{}, err
	}
	return sys.RunWorkload(workload)
}

// RunConfig builds a system from an explicit config and runs one workload.
func RunConfig(cfg config.Config, workload string) (stats.Report, error) {
	rep, _, err := RunConfigTimed(cfg, workload)
	return rep, err
}

// RunConfigTimed is RunConfig with a wall-clock split of the three
// per-cell phases: platform construction, trace generation (near zero
// when the in-process registry already holds the trace) and the
// discrete-event loop. The report is identical to RunConfig's — timing
// rides alongside, never inside, the pinned stats.Report.
func RunConfigTimed(cfg config.Config, workload string) (stats.Report, obs.Phases, error) {
	return RunConfigTimedIn(nil, cfg, workload)
}

// RunWorkloadDef builds a system from an explicit config and runs an
// explicit workload definition (the custom-workload counterpart of
// RunConfig, used by the batch engine for spec-defined workloads).
func RunWorkloadDef(cfg config.Config, w config.Workload) (stats.Report, error) {
	rep, _, err := RunWorkloadDefTimed(cfg, w)
	return rep, err
}

// RunWorkloadDefTimed is RunWorkloadDef with the same phase split as
// RunConfigTimed.
func RunWorkloadDefTimed(cfg config.Config, w config.Workload) (stats.Report, obs.Phases, error) {
	return RunWorkloadDefTimedIn(nil, cfg, w)
}
