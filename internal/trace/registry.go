package trace

import (
	"sync"

	"repro/internal/config"
)

// The in-process trace registry: generated traces are deterministic pure
// functions of the workload and the handful of config fields Generate reads,
// so multi-cell sweeps that visit the same workload at the same trace
// geometry can share one immutable *Trace instead of regenerating it per
// cell. Trace generation used to dominate cold-cell profiles (the Zipf CDF
// and per-warp streams), so a 140-cell grid paid it up to 140 times.
//
// Entries are sync.Once-guarded: concurrent sweep workers asking for the
// same key block on one generation instead of racing duplicates. Traces
// returned by Cached are shared and MUST be treated as read-only — callers
// that mutate instruction streams (GeneratePhased's hot-set rotation) keep
// calling Generate for a private copy.

// traceKey captures every input Generate reads. Two configs with equal keys
// produce bit-identical traces.
type traceKey struct {
	wl        config.Workload
	seed      uint64
	maxInstr  int
	sms       int
	warpsPer  int
	lineBytes int
	pageBytes int
}

type traceEntry struct {
	once sync.Once
	tr   *Trace
}

var (
	regMu    sync.Mutex
	registry = make(map[traceKey]*traceEntry)
)

func keyFor(w config.Workload, c *config.Config) traceKey {
	return traceKey{
		wl:        w,
		seed:      c.Seed,
		maxInstr:  c.MaxInstructions,
		sms:       c.GPU.SMs,
		warpsPer:  c.GPU.WarpsPerSM,
		lineBytes: c.GPU.LineBytes,
		pageBytes: c.Memory.PageBytes,
	}
}

// Cached returns the shared immutable trace for (w, c), generating it on
// first use. Safe for concurrent use; see the package comment on mutation.
func Cached(w config.Workload, c *config.Config) *Trace {
	k := keyFor(w, c)
	regMu.Lock()
	e := registry[k]
	if e == nil {
		e = &traceEntry{}
		registry[k] = e
	}
	regMu.Unlock()
	e.once.Do(func() { e.tr = Generate(w, c) })
	return e.tr
}

// CachedByName resolves a Table II workload name and returns its shared
// trace; the drop-in cached variant of GenerateByName.
func CachedByName(name string, c *config.Config) (*Trace, error) {
	w, ok := config.WorkloadByName(name)
	if !ok {
		return nil, unknownWorkloadErr(name)
	}
	return Cached(w, c), nil
}

// ResetCache drops all cached traces (tests, or reclaiming memory between
// sweeps over disjoint geometries).
func ResetCache() {
	regMu.Lock()
	registry = make(map[traceKey]*traceEntry)
	regMu.Unlock()
}

// CacheLen reports how many distinct traces are resident (diagnostics).
func CacheLen() int {
	regMu.Lock()
	defer regMu.Unlock()
	return len(registry)
}
