package trace

import (
	"sync"

	"repro/internal/config"
)

// The in-process trace registry: generated traces are deterministic pure
// functions of the workload and the handful of config fields Generate reads,
// so multi-cell sweeps that visit the same workload at the same trace
// geometry can share one immutable *Trace instead of regenerating it per
// cell. Trace generation used to dominate cold-cell profiles (the Zipf CDF
// and per-warp streams), so a 140-cell grid paid it up to 140 times.
//
// Entries are sync.Once-guarded: concurrent sweep workers asking for the
// same key block on one generation instead of racing duplicates. Traces
// returned by Cached are shared and MUST be treated as read-only — callers
// that mutate instruction streams (GeneratePhased's hot-set rotation) keep
// calling Generate for a private copy.

// traceKey captures every input Generate reads. Two configs with equal keys
// produce bit-identical traces.
type traceKey struct {
	wl        config.Workload
	seed      uint64
	maxInstr  int
	sms       int
	warpsPer  int
	lineBytes int
	pageBytes int
}

type traceEntry struct {
	once sync.Once
	tr   *Trace

	// pins counts live sweep-level holds (see Pins); a pinned entry is
	// never evicted. lastUse is the registry's logical clock at the last
	// lookup, driving LRU eviction of unpinned entries.
	pins    int
	lastUse uint64
}

// regCap bounds how many unpinned traces stay resident. Traces are the
// largest single allocation a sweep makes (per-warp instruction streams),
// so an unbounded registry would grow with every distinct geometry the
// process ever saw; 64 comfortably covers the paper's largest grid while
// keeping a long-lived daemon's footprint flat.
const regCap = 64

var (
	regMu    sync.Mutex
	registry = make(map[traceKey]*traceEntry)
	regTick  uint64
)

// entryLocked returns the (possibly new) entry for k, stamping its use
// time and evicting LRU unpinned entries to stay within regCap. Caller
// holds regMu.
func entryLocked(k traceKey) *traceEntry {
	regTick++
	e := registry[k]
	if e == nil {
		if len(registry) >= regCap {
			evictLocked()
		}
		e = &traceEntry{}
		registry[k] = e
	}
	e.lastUse = regTick
	return e
}

// evictLocked drops least-recently-used unpinned entries until the
// registry is below capacity. Pinned entries are exempt: a sweep over
// more than regCap distinct traces keeps them all resident for its
// duration (the registry grows past cap rather than thrash mid-sweep).
func evictLocked() {
	for len(registry) >= regCap {
		var victimKey traceKey
		var victim *traceEntry
		for k, e := range registry {
			if e.pins > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(registry, victimKey)
	}
}

func keyFor(w config.Workload, c *config.Config) traceKey {
	return traceKey{
		wl:        w,
		seed:      c.Seed,
		maxInstr:  c.MaxInstructions,
		sms:       c.GPU.SMs,
		warpsPer:  c.GPU.WarpsPerSM,
		lineBytes: c.GPU.LineBytes,
		pageBytes: c.Memory.PageBytes,
	}
}

// Cached returns the shared immutable trace for (w, c), generating it on
// first use. Safe for concurrent use; see the package comment on mutation.
func Cached(w config.Workload, c *config.Config) *Trace {
	regMu.Lock()
	e := entryLocked(keyFor(w, c))
	regMu.Unlock()
	e.once.Do(func() { e.tr = Generate(w, c) })
	return e.tr
}

// Pins keeps a set of trace keys resident across a sweep: the batch
// runner pins every distinct key its cells will read before any cell
// runs, so the registry's LRU bound cannot evict a trace mid-sweep and
// force a second generation. Pinning does not generate — the trace is
// still built lazily by the first cell that borrows it via Cached.
//
// The zero value is ready to use. Safe for concurrent use.
type Pins struct {
	mu      sync.Mutex
	entries map[*traceEntry]struct{}
}

// Add pins the trace key for (w, c). Duplicate adds of one key are
// deduplicated, so callers can feed every cell of a sweep through Add.
func (p *Pins) Add(w config.Workload, c *config.Config) {
	// Pin under the registry lock so no eviction can slip between the
	// lookup and the increment.
	regMu.Lock()
	e := entryLocked(keyFor(w, c))
	e.pins++
	regMu.Unlock()

	p.mu.Lock()
	if p.entries == nil {
		p.entries = make(map[*traceEntry]struct{})
	}
	_, dup := p.entries[e]
	if !dup {
		p.entries[e] = struct{}{}
	}
	p.mu.Unlock()

	if dup {
		regMu.Lock()
		e.pins--
		regMu.Unlock()
	}
}

// Release unpins everything added so far. Idempotent; the pinned entries
// become ordinary LRU candidates again.
func (p *Pins) Release() {
	p.mu.Lock()
	entries := p.entries
	p.entries = nil
	p.mu.Unlock()

	regMu.Lock()
	for e := range entries {
		e.pins--
	}
	regMu.Unlock()
}

// CachedByName resolves a Table II workload name and returns its shared
// trace; the drop-in cached variant of GenerateByName.
func CachedByName(name string, c *config.Config) (*Trace, error) {
	w, ok := config.WorkloadByName(name)
	if !ok {
		return nil, unknownWorkloadErr(name)
	}
	return Cached(w, c), nil
}

// ResetCache drops all cached traces (tests, or reclaiming memory between
// sweeps over disjoint geometries).
func ResetCache() {
	regMu.Lock()
	registry = make(map[traceKey]*traceEntry)
	regMu.Unlock()
}

// CacheLen reports how many distinct traces are resident (diagnostics).
func CacheLen() int {
	regMu.Lock()
	defer regMu.Unlock()
	return len(registry)
}
