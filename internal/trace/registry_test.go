package trace

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/config"
)

func TestCachedReturnsSharedIdenticalTrace(t *testing.T) {
	ResetCache()
	defer ResetCache()
	c := config.Default(config.OhmBW, config.Planar)
	c.MaxInstructions = 300
	w, _ := config.WorkloadByName("bfsdata")

	a := Cached(w, &c)
	b := Cached(w, &c)
	if a != b {
		t.Fatal("same key must return the same shared *Trace")
	}
	fresh := Generate(w, &c)
	if !reflect.DeepEqual(a.Warps, fresh.Warps) {
		t.Fatal("cached trace differs from a fresh generation")
	}
	if CacheLen() != 1 {
		t.Fatalf("cache holds %d traces, want 1", CacheLen())
	}
}

func TestCachedKeySeparatesGeometry(t *testing.T) {
	ResetCache()
	defer ResetCache()
	c1 := config.Default(config.OhmBW, config.Planar)
	c1.MaxInstructions = 200
	c2 := c1
	c2.MaxInstructions = 400
	w, _ := config.WorkloadByName("lud")

	a := Cached(w, &c1)
	b := Cached(w, &c2)
	if a == b {
		t.Fatal("different MaxInstructions must not share a trace")
	}
	if len(a.Warps[0]) == len(b.Warps[0]) {
		t.Fatal("trace lengths should differ across MaxInstructions")
	}
}

func TestCachedConcurrentSingleGeneration(t *testing.T) {
	ResetCache()
	defer ResetCache()
	c := config.Default(config.Oracle, config.Planar)
	c.MaxInstructions = 200
	w, _ := config.WorkloadByName("sssp")

	const gor = 16
	out := make([]*Trace, gor)
	var wg sync.WaitGroup
	for i := 0; i < gor; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = Cached(w, &c)
		}()
	}
	wg.Wait()
	for i := 1; i < gor; i++ {
		if out[i] != out[0] {
			t.Fatal("concurrent callers must share one generated trace")
		}
	}
	if CacheLen() != 1 {
		t.Fatalf("cache holds %d traces, want 1", CacheLen())
	}
}

func TestCachedByNameUnknown(t *testing.T) {
	c := config.Default(config.Oracle, config.Planar)
	if _, err := CachedByName("nope", &c); err == nil {
		t.Fatal("unknown workload must error")
	}
}
