package trace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func testConfig() config.Config {
	c := config.Default(config.OhmBase, config.Planar)
	c.MaxInstructions = 4000
	return c
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Load.String() != "load" || Store.String() != "store" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func TestGenerateShape(t *testing.T) {
	c := testConfig()
	w, _ := config.WorkloadByName("pagerank")
	tr := Generate(w, &c)
	if len(tr.Warps) != c.GPU.SMs*c.GPU.WarpsPerSM {
		t.Fatalf("warps = %d, want %d", len(tr.Warps), c.GPU.SMs*c.GPU.WarpsPerSM)
	}
	for i, wt := range tr.Warps {
		if len(wt) != c.MaxInstructions {
			t.Fatalf("warp %d has %d instructions, want %d", i, len(wt), c.MaxInstructions)
		}
	}
	// The footprint must dwarf the L2 so the memory system under study stays
	// exercised; the planar group layout (1 DRAM page per 8 XPoint pages)
	// provides XPoint exposure regardless of footprint:DRAM ratio.
	if tr.Footprint < 4*int64(c.GPU.L2SizeBytes) {
		t.Fatalf("pagerank footprint %d too small versus L2 %d", tr.Footprint, c.GPU.L2SizeBytes)
	}
}

func TestGenerateCalibration(t *testing.T) {
	// The measured APKI and read ratio of every generated trace must land
	// near Table II. APKI is capped at 950 by the generator, so pagerank
	// (599) and GRAMS (266) must still match closely.
	c := testConfig()
	for _, w := range config.Workloads() {
		tr := Generate(w, &c)
		s := tr.Measure()
		wantAPKI := float64(w.APKI)
		if wantAPKI > 950 {
			wantAPKI = 950
		}
		if math.Abs(s.APKI-wantAPKI) > 0.15*wantAPKI+10 {
			t.Errorf("%s: APKI = %.1f, want about %.0f", w.Name, s.APKI, wantAPKI)
		}
		if math.Abs(s.ReadRatio-w.ReadRatio) > 0.05 {
			t.Errorf("%s: read ratio = %.3f, want about %.2f", w.Name, s.ReadRatio, w.ReadRatio)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	c := testConfig()
	w, _ := config.WorkloadByName("bfsdata")
	a := Generate(w, &c)
	b := Generate(w, &c)
	if len(a.Warps) != len(b.Warps) {
		t.Fatal("nondeterministic warp count")
	}
	for i := range a.Warps {
		for j := range a.Warps[i] {
			if a.Warps[i][j] != b.Warps[i][j] {
				t.Fatalf("trace diverges at warp %d instr %d", i, j)
			}
		}
	}
}

func TestGenerateDistinctWorkloads(t *testing.T) {
	c := testConfig()
	w1, _ := config.WorkloadByName("backp")
	w2, _ := config.WorkloadByName("pagerank")
	a, b := Generate(w1, &c), Generate(w2, &c)
	same := true
	for j := 0; j < 100 && j < len(a.Warps[0]) && j < len(b.Warps[0]); j++ {
		if a.Warps[0][j] != b.Warps[0][j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different workloads generated identical streams")
	}
}

func TestAddressesLineAlignedAndInFootprint(t *testing.T) {
	c := testConfig()
	for _, name := range []string{"lud", "sssp"} {
		w, _ := config.WorkloadByName(name)
		tr := Generate(w, &c)
		for _, wt := range tr.Warps {
			for _, in := range wt {
				if in.Kind == Compute {
					if in.Addr != 0 {
						t.Fatalf("%s: compute instr carries address %#x", name, in.Addr)
					}
					continue
				}
				if in.Addr%uint64(c.GPU.LineBytes) != 0 {
					t.Fatalf("%s: address %#x not line-aligned", name, in.Addr)
				}
				if in.Addr >= uint64(tr.Footprint) {
					t.Fatalf("%s: address %#x outside footprint %d", name, in.Addr, tr.Footprint)
				}
			}
		}
	}
}

func TestGraphWorkloadsHotterThanDense(t *testing.T) {
	// GraphBIG traces must concentrate accesses on fewer pages than dense
	// kernels relative to footprint: that skew is what drives migration.
	c := testConfig()
	pr, _ := config.WorkloadByName("pagerank")
	lud, _ := config.WorkloadByName("lud")
	sPR := Generate(pr, &c).Measure()
	sLud := Generate(lud, &c).Measure()
	if sPR.MemOps == 0 || sLud.MemOps == 0 {
		t.Fatal("no memory ops generated")
	}
	prPagesPerOp := float64(sPR.UniquePages) / float64(sPR.MemOps)
	ludPagesPerOp := float64(sLud.UniquePages) / float64(sLud.MemOps)
	if prPagesPerOp >= ludPagesPerOp {
		t.Fatalf("pagerank (%.4f pages/op) should be more concentrated than lud (%.4f)",
			prPagesPerOp, ludPagesPerOp)
	}
}

func TestGenerateByName(t *testing.T) {
	c := testConfig()
	if _, err := GenerateByName("pagerank", &c); err != nil {
		t.Fatalf("GenerateByName(pagerank): %v", err)
	}
	if _, err := GenerateByName("doesnotexist", &c); err == nil {
		t.Fatal("GenerateByName accepted unknown workload")
	}
}

func TestMeasureEmptyTrace(t *testing.T) {
	tr := &Trace{Name: "empty", PageBytes: 4096}
	s := tr.Measure()
	if s.Instructions != 0 || s.APKI != 0 || s.ReadRatio != 0 {
		t.Fatalf("empty trace stats wrong: %+v", s)
	}
}

func TestFootprintFloor(t *testing.T) {
	c := testConfig()
	w := config.Workload{Name: "tiny", APKI: 100, ReadRatio: 0.5, FootprintScale: 0, HotSkew: 1}
	tr := Generate(w, &c)
	if tr.Footprint < int64(c.Memory.PageBytes) {
		t.Fatalf("footprint %d below one page", tr.Footprint)
	}
}

// Property: for arbitrary APKI/read-ratio combinations the generator obeys
// its own calibration contract.
func TestGenerateCalibrationProperty(t *testing.T) {
	c := testConfig()
	c.MaxInstructions = 3000
	f := func(apkiSeed, rrSeed uint16) bool {
		apki := int(apkiSeed%900) + 20
		rr := float64(rrSeed%100) / 100
		w := config.Workload{
			Name: "prop", APKI: apki, ReadRatio: rr,
			FootprintScale: 2, HotSkew: 0.8, Suite: "GraphBIG",
		}
		s := Generate(w, &c).Measure()
		if math.Abs(s.APKI-float64(apki)) > 0.2*float64(apki)+15 {
			return false
		}
		if s.MemOps > 0 && math.Abs(s.ReadRatio-rr) > 0.08 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePhasedRotatesHotSet(t *testing.T) {
	c := testConfig()
	w, _ := config.WorkloadByName("pagerank")
	// Phase 1 vs phase 4: the trace keeps its calibration but the hottest
	// pages of the first half must differ from the second half's.
	tr := GeneratePhased(w, &c, 4)
	s := tr.Measure()
	if math.Abs(s.APKI-599) > 120 {
		t.Fatalf("phased trace broke APKI calibration: %.1f", s.APKI)
	}
	hot := func(fromFrac, toFrac float64) map[uint64]int {
		counts := map[uint64]int{}
		for _, wt := range tr.Warps {
			lo, hi := int(fromFrac*float64(len(wt))), int(toFrac*float64(len(wt)))
			for _, in := range wt[lo:hi] {
				if in.Kind != Compute {
					counts[in.Addr/uint64(tr.PageBytes)]++
				}
			}
		}
		return counts
	}
	first, last := hot(0, 0.25), hot(0.75, 1.0)
	top := func(m map[uint64]int) uint64 {
		var best uint64
		bestC := -1
		for p, c := range m {
			if c > bestC {
				best, bestC = p, c
			}
		}
		return best
	}
	if top(first) == top(last) {
		t.Fatal("phased trace's hottest page did not move between phases")
	}
}

func TestGeneratePhasedDegenerate(t *testing.T) {
	c := testConfig()
	w, _ := config.WorkloadByName("lud")
	a := Generate(w, &c)
	b := GeneratePhased(w, &c, 1)
	if len(a.Warps) != len(b.Warps) || a.Warps[0][0] != b.Warps[0][0] {
		t.Fatal("phases=1 must equal Generate")
	}
}
