// Package trace generates synthetic GPU instruction traces calibrated to
// the paper's Table II workload characteristics. The paper drives MacSim
// with Rodinia, Polybench and GraphBIG traces; we do not have those, so we
// synthesize per-warp instruction streams that reproduce the published
// memory intensity (APKI), read ratio, working-set footprint and page
// hotness skew — the four properties the evaluation actually depends on.
package trace

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
)

// Kind classifies a warp instruction.
type Kind uint8

const (
	// Compute is an ALU instruction: one cycle, no memory traffic.
	Compute Kind = iota
	// Load is a memory read at Addr.
	Load
	// Store is a memory write at Addr.
	Store
)

func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Instr is one warp-level instruction. Memory instructions carry the
// (already coalesced) line-aligned address the warp accesses.
type Instr struct {
	Kind Kind
	Addr uint64
}

// WarpTrace is the instruction stream of one warp.
type WarpTrace []Instr

// Trace is a complete workload: one stream per resident warp plus the
// footprint the streams touch.
type Trace struct {
	Name      string
	Warps     []WarpTrace
	Footprint int64 // bytes spanned by generated addresses
	PageBytes int
}

// Stats summarises a trace for calibration checks.
type Stats struct {
	Instructions int
	MemOps       int
	Loads        int
	Stores       int
	APKI         float64 // memory ops per kilo-instruction
	ReadRatio    float64
	UniquePages  int
}

// Measure recomputes the trace's aggregate characteristics.
func (t *Trace) Measure() Stats {
	var s Stats
	pages := make(map[uint64]struct{})
	for _, w := range t.Warps {
		for _, in := range w {
			s.Instructions++
			switch in.Kind {
			case Load:
				s.MemOps++
				s.Loads++
				pages[in.Addr/uint64(t.PageBytes)] = struct{}{}
			case Store:
				s.MemOps++
				s.Stores++
				pages[in.Addr/uint64(t.PageBytes)] = struct{}{}
			}
		}
	}
	s.UniquePages = len(pages)
	if s.Instructions > 0 {
		s.APKI = float64(s.MemOps) / float64(s.Instructions) * 1000
	}
	if s.MemOps > 0 {
		s.ReadRatio = float64(s.Loads) / float64(s.MemOps)
	}
	return s
}

// GeneratePhased builds a trace whose hot set rotates through `phases`
// distinct regions over the run — the phase-changing behaviour that keeps
// planar migration active in steady state (iterative graph algorithms
// change their frontier every superstep). phases <= 1 degenerates to
// Generate.
func GeneratePhased(w config.Workload, c *config.Config, phases int) *Trace {
	if phases <= 1 {
		return Generate(w, c)
	}
	base := Generate(w, c)
	nPages := int(base.Footprint) / base.PageBytes
	if nPages < phases {
		return base
	}
	// Rotate each warp's pages by footprint/phases at each phase boundary:
	// the popularity distribution is preserved but the hot identities move.
	shift := nPages / phases
	for _, wt := range base.Warps {
		per := len(wt) / phases
		if per == 0 {
			continue
		}
		for i, in := range wt {
			if in.Kind == Compute {
				continue
			}
			phase := i / per
			if phase >= phases {
				phase = phases - 1
			}
			page := int(in.Addr)/base.PageBytes + phase*shift
			page %= nPages
			off := int(in.Addr) % base.PageBytes
			wt[i].Addr = uint64(page*base.PageBytes + off)
		}
	}
	return base
}

// Generate builds the synthetic trace for workload w under configuration c.
//
// Calibration strategy:
//   - memory-instruction probability = APKI/1000 (Table II is measured in
//     accesses per kilo-instruction);
//   - each memory op is a Load with probability ReadRatio;
//   - pages are drawn from a Zipf distribution with the workload's HotSkew,
//     over a footprint of FootprintScale x DRAM capacity — so every
//     heterogeneous workload oversubscribes DRAM and triggers migration;
//   - dense kernels (Rodinia/Polybench) emit sequential runs of lines within
//     a page (spatial locality -> cache hits); graph workloads emit short
//     runs (pointer chasing -> cache misses), which is what produces their
//     high effective APKI at the memory controller.
func Generate(w config.Workload, c *config.Config) *Trace {
	nWarps := c.GPU.SMs * c.GPU.WarpsPerSM
	footprint := int64(w.FootprintScale * config.FootprintUnit)
	if footprint < int64(c.Memory.PageBytes) {
		footprint = int64(c.Memory.PageBytes)
	}
	pageBytes := c.Memory.PageBytes
	nPages := int(footprint / int64(pageBytes))
	if nPages < 1 {
		nPages = 1
	}
	linesPerPage := pageBytes / c.GPU.LineBytes

	seqRun := 8 // dense kernels stream through pages
	if w.Suite == "GraphBIG" {
		seqRun = 2 // pointer chasing
	}

	t := &Trace{
		Name:      w.Name,
		Warps:     make([]WarpTrace, nWarps),
		Footprint: footprint,
		PageBytes: pageBytes,
	}

	// Popularity rank and page number must be de-correlated: hot data is
	// scattered across the address space, not packed at its start. A shared
	// deterministic permutation maps Zipf ranks to page numbers; without it
	// consecutive hot pages would collide in the same planar migration
	// group and fight over its single DRAM slot.
	perm := make([]int32, nPages)
	for i := range perm {
		perm[i] = int32(i)
	}
	prng := sim.NewRng(c.Seed ^ hashName(w.Name) ^ 0xBADC0FFEE)
	for i := nPages - 1; i > 0; i-- {
		j := prng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}

	memProb := float64(w.APKI) / 1000
	if memProb > 0.95 {
		memProb = 0.95
	}

	// The Zipf CDF depends only on (skew, nPages): compute it once and share
	// it across warps. Per-warp NewZipf recomputed the math.Pow-heavy CDF
	// nWarps times and dominated whole-cell profiles.
	cdf := sim.ZipfCDF(w.HotSkew, nPages)

	for wi := 0; wi < nWarps; wi++ {
		rng := sim.NewRng(c.Seed ^ uint64(wi)*0x9E3779B97F4A7C15 ^ hashName(w.Name))
		zipf := sim.NewZipfCDF(rng, cdf)
		tr := make(WarpTrace, 0, c.MaxInstructions)

		curPage := int(perm[zipf.Next()])
		curLine := rng.Intn(linesPerPage)
		run := 0
		for len(tr) < c.MaxInstructions {
			if rng.Float64() >= memProb {
				tr = append(tr, Instr{Kind: Compute})
				continue
			}
			// Memory op: continue the sequential run or pick a new page.
			if run >= seqRun || curLine >= linesPerPage {
				curPage = int(perm[zipf.Next()])
				curLine = rng.Intn(linesPerPage)
				run = 0
			}
			addr := uint64(curPage)*uint64(pageBytes) + uint64(curLine)*uint64(c.GPU.LineBytes)
			curLine++
			run++
			k := Store
			if rng.Float64() < w.ReadRatio {
				k = Load
			}
			tr = append(tr, Instr{Kind: k, Addr: addr})
		}
		t.Warps[wi] = tr
	}
	return t
}

// GenerateByName is a convenience wrapper resolving a Table II name. It
// always generates a fresh private trace; use CachedByName on paths that
// only read the trace.
func GenerateByName(name string, c *config.Config) (*Trace, error) {
	w, ok := config.WorkloadByName(name)
	if !ok {
		return nil, unknownWorkloadErr(name)
	}
	return Generate(w, c), nil
}

func unknownWorkloadErr(name string) error {
	return fmt.Errorf("trace: unknown workload %q (Table II names: %v)",
		name, config.WorkloadNames())
}

// hashName folds a workload name into the RNG seed so two workloads with the
// same config still get distinct streams.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
