package trace

import (
	"testing"

	"repro/internal/config"
)

// BenchmarkGenerate is the cold trace-generation cost per cell (shared
// Zipf CDF, per-warp streams).
func BenchmarkGenerate(b *testing.B) {
	cfg := config.Default(config.OhmBW, config.Planar)
	cfg.MaxInstructions = 2000
	w, _ := config.WorkloadByName("bfsdata")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(w, &cfg)
	}
}

// BenchmarkCachedWarm is the registry hit path a sweep pays per repeat
// cell: one lock + map probe.
func BenchmarkCachedWarm(b *testing.B) {
	ResetCache()
	defer ResetCache()
	cfg := config.Default(config.OhmBW, config.Planar)
	cfg.MaxInstructions = 2000
	w, _ := config.WorkloadByName("bfsdata")
	Cached(w, &cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cached(w, &cfg)
	}
}
