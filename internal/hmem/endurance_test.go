package hmem

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestWearLevellingActiveDuringMigration verifies the Start-Gap machinery
// is exercised by real migration traffic: enough swaps move the gap, and
// wear spreads rather than piling onto one physical line.
func TestWearLevellingActiveDuringMigration(t *testing.T) {
	cfg := config.Default(config.OhmBW, config.Planar)
	cfg.XPoint.StartGapK = 4 // move the gap aggressively for the test
	col := stats.NewCollector()
	c, err := New(&cfg, col, nil)
	if err != nil {
		t.Fatal(err)
	}
	pb := uint64(cfg.Memory.PageBytes)
	nMC := uint64(len(c.mcs))
	at := sim.Time(0)
	// Hammer several XPoint pages of MC 0 hot enough to swap.
	for p := uint64(1); p <= 8; p++ {
		for i := 0; i < cfg.Memory.HotThreshold; i++ {
			at = c.Access(at+sim.Microsecond*50, p*pb*nMC, true)
		}
	}
	xp := c.mcs[0].xp
	if xp.Gap().GapMoves == 0 {
		t.Fatal("migration writes never moved the Start-Gap")
	}
	ws := xp.Wear()
	if ws.Total == 0 {
		t.Fatal("no wear recorded")
	}
	if xp.ExceedsEndurance() {
		t.Fatal("endurance exceeded in a short run")
	}
}

// TestMigrationSerializedPerController verifies the SWAP-CMD handshake
// bounds outstanding swaps to one per controller (Figure 11 steps 5-6).
func TestMigrationSerializedPerController(t *testing.T) {
	c, _ := mkCtrl(t, config.OhmWOM, config.Planar)
	pb := uint64(c.cfg.Memory.PageBytes)
	nMC := uint64(len(c.mcs))
	p := c.mcs[0].planar

	// Make two pages hot at nearly the same instant; the second swap must
	// start only after the first one's completion handshake.
	at := sim.Time(0)
	for i := 0; i < c.cfg.Memory.HotThreshold; i++ {
		at = c.Access(at, 1*pb*nMC, false)
	}
	firstDone := p.swapBusyUntil
	if firstDone <= 0 {
		t.Fatal("first swap not recorded")
	}
	for i := 0; i < c.cfg.Memory.HotThreshold; i++ {
		// Issue within the first swap's window.
		c.Access(at, 2*pb*nMC, false)
	}
	if p.Swaps > 1 && p.swapBusyUntil < firstDone {
		t.Fatal("second swap completed before the first")
	}
}

// TestPlanarWriteHeatTriggersMigration checks writes count toward hotness:
// DRAM accommodates write-intensive data to extend XPoint lifetime
// (Section III).
func TestPlanarWriteHeatTriggersMigration(t *testing.T) {
	c, col := mkCtrl(t, config.OhmBase, config.Planar)
	pb := uint64(c.cfg.Memory.PageBytes)
	nMC := uint64(len(c.mcs))
	at := sim.Time(0)
	for i := 0; i < c.cfg.Memory.HotThreshold; i++ {
		at = c.Access(at, pb*nMC, true)
	}
	if col.Migrations != 1 {
		t.Fatalf("write-hot page did not migrate: %d", col.Migrations)
	}
}

// TestTwoLevelReverseWriteOverlapsDemand verifies the reverse-write fill
// does not gate the demand response on dual-route platforms.
func TestTwoLevelReverseWriteOverlapsDemand(t *testing.T) {
	base, _ := mkCtrl(t, config.OhmBase, config.TwoLevel)
	bw, _ := mkCtrl(t, config.OhmBW, config.TwoLevel)
	// Cold miss on both platforms: the copy baseline serializes the fill
	// after the demand transfer on the data route; reverse-write runs it on
	// the memory route in parallel, so the miss completes no later.
	baseDone := base.Access(0, 0, false)
	bwDone := bw.Access(0, 0, false)
	if bwDone > baseDone {
		t.Fatalf("reverse-write miss (%s) slower than copy baseline (%s)", bwDone, baseDone)
	}
}

// TestOriginEvictionBounded: the Origin resident set never exceeds its
// configured capacity even under heavy churn.
func TestOriginEvictionBounded(t *testing.T) {
	c, _ := mkCtrl(t, config.Origin, config.Planar)
	pb := int64(c.cfg.Memory.PageBytes)
	nMC := int64(len(c.mcs))
	at := sim.Time(0)
	for i := int64(0); i < 4*c.resCap; i++ {
		at = c.Access(at, uint64(i*nMC*pb), false)
	}
	if got := int64(c.resident[0].count); got > c.resCap {
		t.Fatalf("resident set %d exceeds capacity %d", got, c.resCap)
	}
}

// TestDeterministicControllers: two identical controllers replaying the
// same access sequence produce identical timing and counters.
func TestDeterministicControllers(t *testing.T) {
	run := func() (sim.Time, uint64, uint64) {
		c, col := mkCtrl(t, config.OhmWOM, config.Planar)
		rng := sim.NewRng(7)
		at := sim.Time(0)
		var last sim.Time
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(1 << 22))
			last = c.Access(at, addr, rng.Intn(10) == 0)
			at += sim.Time(rng.Intn(200)) * sim.Nanosecond
		}
		return last, col.MemRequests, col.Migrations
	}
	l1, r1, m1 := run()
	l2, r2, m2 := run()
	if l1 != l2 || r1 != r2 || m1 != m2 {
		t.Fatalf("nondeterministic controller: (%s,%d,%d) vs (%s,%d,%d)", l1, r1, m1, l2, r2, m2)
	}
}
