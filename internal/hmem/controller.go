// Package hmem implements the Ohm memory system's memory controllers
// (Figures 4, 6 and 7): the planar and two-level heterogeneous memory
// modes, migration via controller copies, auto-read/write (snarf), swap
// (SWAP-CMD + DDR sequence generator) and reverse-write, with conflict
// detection and dual-route scheduling over the optical channel.
//
// Address interleaving: pages are interleaved across memory controllers
// (rather than lines) so one migration is wholly owned by one controller —
// a simplification over line interleaving that keeps the migration protocol
// identical to the paper's single-channel description while preserving
// controller-level parallelism.
package hmem

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/elec"
	"repro/internal/optical"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xpoint"
)

// MigrationKind is the migration machinery a platform provides.
type MigrationKind int

const (
	// MigrNone means no migration exists (Origin, Oracle).
	MigrNone MigrationKind = iota
	// MigrCopy is controller-driven copying on the data route
	// (Hetero, Ohm-base).
	MigrCopy
	// MigrAutoRW adds the snarf-based auto-read/write function.
	MigrAutoRW
	// MigrWOM adds swap + reverse-write over WOM-coded dual routes.
	MigrWOM
	// MigrBW is MigrWOM with half-coupled-MRR transmitters instead of WOM
	// coding (no request-bandwidth penalty).
	MigrBW
)

// KindFor maps a platform to its migration machinery.
func KindFor(p config.Platform) MigrationKind {
	switch p {
	case config.Hetero, config.OhmBase:
		return MigrCopy
	case config.AutoRW:
		return MigrAutoRW
	case config.OhmWOM:
		return MigrWOM
	case config.OhmBW:
		return MigrBW
	default:
		return MigrNone
	}
}

// cmdBytes is the size of a command/metadata message on the channel
// (request header, SWAP-CMD with DRAM/XPoint addresses and size).
const cmdBytes = 16

// link abstracts the memory channel so the controller logic is identical
// over optical and electrical interconnects. toDevice selects the forward
// (controller -> device) or backward (device -> controller) path.
type link interface {
	// request serializes n bytes between controller vc and device dev on
	// the data route, returning the transfer end.
	request(vc, dev int, toDevice bool, at sim.Time, n int, class stats.Class) sim.Time
	// memRoute serializes n migration bytes on the second route (dual
	// routes). wom selects WOM-coded sharing. Falls back to the data route
	// when the link has no dual routes.
	memRoute(vc int, at sim.Time, n int, wom bool) sim.Time
	// dual reports whether a second route exists.
	dual() bool
}

type opticalLink struct {
	ch        *optical.Channel
	dualRoute bool
}

func (l *opticalLink) request(vc, dev int, toDevice bool, at sim.Time, n int, class stats.Class) sim.Time {
	dir := optical.Backward
	if toDevice {
		dir = optical.Forward
	}
	_, end := l.ch.Transfer(vc, dev, dir, at, n, class)
	return end
}

func (l *opticalLink) memRoute(vc int, at sim.Time, n int, wom bool) sim.Time {
	if !l.dualRoute {
		_, end := l.ch.Transfer(vc, 1, optical.Forward, at, n, stats.DataCopy)
		return end
	}
	if wom {
		_, end := l.ch.TransferWOMShared(vc, at, n)
		return end
	}
	_, end := l.ch.TransferMemRoute(vc, at, n)
	return end
}

func (l *opticalLink) dual() bool { return l.dualRoute }

type elecLink struct {
	ch *elec.Channel
}

func (l *elecLink) request(vc, _ int, toDevice bool, at sim.Time, n int, class stats.Class) sim.Time {
	dir := elec.Backward
	if toDevice {
		dir = elec.Forward
	}
	_, end := l.ch.Transfer(vc, dir, at, n, class)
	return end
}

func (l *elecLink) memRoute(vc int, at sim.Time, n int, _ bool) sim.Time {
	_, end := l.ch.Transfer(vc, elec.Forward, at, n, stats.DataCopy)
	return end
}

func (l *elecLink) dual() bool { return false }

// device ids on a virtual channel (for demux arbitration accounting).
const (
	devDRAM   = 0
	devXPoint = 1
)

// bank is one per-controller slice of the memory system.
type bank struct {
	dram *dram.Device
	xp   *xpoint.Controller // nil on DRAM-only platforms

	planar *planarState // nil unless planar heterogeneous
	twolvl *twoLevelState
}

// HostLink stages pages between host and GPU memory (Origin's spill path
// and the Figure 3 SSD experiment).
type HostLink interface {
	Stage(at sim.Time, n int64, write bool) (done sim.Time)
}

// Controller is the complete Ohm memory system: per-MC devices, the shared
// channel, mode logic and migration machinery.
type Controller struct {
	cfg  *config.Config
	col  *stats.Collector
	kind MigrationKind
	link link
	mcs  []bank

	// Optical/electrical concrete channels retained for accounting.
	Opt  *optical.Channel
	Elec *elec.Channel

	// Origin host-spill state.
	host     HostLink
	resident []resSet // per-MC resident host pages
	resCap   int64    // pages per MC before eviction
	hostOnly bool     // spill path active (DRAM-only, small capacity)

	pageBytes int64
	lineBytes int64

	// Pre-interned collector handles for per-access metrics: the hot path
	// accumulates through indices instead of hashing (and, for the latency
	// taps, concatenating) map-key strings on every memory access.
	hDMAEnergy  stats.EnergyHandle
	hStageWait  stats.ExtraHandle
	hDramPart   stats.ExtraHandle
	hConflict   stats.ExtraHandle
	hDramLatSum stats.ExtraHandle
	hDramLatCnt stats.ExtraHandle
	hXPLatSum   stats.ExtraHandle
	hXPLatCnt   stats.ExtraHandle

	// Aggregate ops (inputs to the energy model).
	DRAMReads    uint64
	DRAMWrites   uint64
	XPointReads  uint64
	XPointWrites uint64

	// spare* stash recycled platform-dependent components that the current
	// configuration does not use, so a pooled rebuild that alternates
	// platforms (a sweep grid's inner loop) keeps the big arrays — XPoint
	// wear, two-level tags — instead of dropping them on every platform
	// switch. Invisible to simulation: only NewIn reads or writes them.
	spareXP     []*xpoint.Controller
	sparePlanar []*planarState
	spareTwolvl []*twoLevelState
	spareOpt    *optical.Channel
	spareElec   *elec.Channel
	spareHost   *pcieHost
	spareRes    []resSet
}

// New assembles the memory system for cfg. col must not be nil. host may be
// nil; it is only used by platforms that spill (Origin) — a nil host there
// installs the default PCIe model.
func New(cfg *config.Config, col *stats.Collector, host HostLink) (*Controller, error) {
	return NewIn(nil, nil, cfg, col, host)
}

// NewIn is New rebuilding into a recycled controller: device structures,
// per-MC state and channel models are reinitialized in place, and
// platform-dependent components the new configuration does not need move
// to the spare stashes for a later cell. Both re and pools may be nil —
// New is exactly NewIn(nil, nil, ...) — so fresh and pooled construction
// share one code path, which is what keeps pooled results byte-identical.
func NewIn(re *Controller, pools *sim.Pools, cfg *config.Config, col *stats.Collector, host HostLink) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if col == nil {
		return nil, fmt.Errorf("hmem: nil collector")
	}
	if re == nil {
		re = &Controller{}
	}
	c := re

	// Scavenge the previous incarnation's recyclable parts into locals
	// before the struct is overwritten. Per-bank sub-objects are nil'ed in
	// the retained bank slice so no component is ever reachable from two
	// owners; dram devices stay with their slot (they are only ever owned
	// by that slot).
	spXP, spPl, spTL := c.spareXP, c.sparePlanar, c.spareTwolvl
	spOpt, spElec, spHost, spRes := c.spareOpt, c.spareElec, c.spareHost, c.spareRes
	if c.Opt != nil {
		spOpt = c.Opt
	}
	if c.Elec != nil {
		spElec = c.Elec
	}
	if ph, ok := c.host.(*pcieHost); ok {
		spHost = ph
	}
	if c.resident != nil {
		spRes = c.resident
	}
	mcs := c.mcs
	for i := range mcs {
		b := &mcs[i]
		if b.xp != nil {
			spXP = append(spXP, b.xp)
			b.xp = nil
		}
		if b.planar != nil {
			spPl = append(spPl, b.planar)
			b.planar = nil
		}
		if b.twolvl != nil {
			spTL = append(spTL, b.twolvl)
			b.twolvl = nil
		}
	}

	*c = Controller{
		cfg:         cfg,
		col:         col,
		kind:        KindFor(cfg.Platform),
		pageBytes:   int64(cfg.Memory.PageBytes),
		lineBytes:   int64(cfg.GPU.LineBytes),
		hDMAEnergy:  col.InternEnergy("dma"),
		hStageWait:  col.InternExtra("origin-stage-wait"),
		hDramPart:   col.InternExtra("origin-dram-part"),
		hConflict:   col.InternExtra("conflict-wait"),
		hDramLatSum: col.InternExtra("dram-lat-sum"),
		hDramLatCnt: col.InternExtra("dram-count"),
		hXPLatSum:   col.InternExtra("xp-lat-sum"),
		hXPLatCnt:   col.InternExtra("xp-count"),
	}

	if cfg.Platform.Optical() {
		c.Opt = optical.NewChannelIn(spOpt, pools, cfg.Optical, col)
		spOpt = nil
		c.link = &opticalLink{ch: c.Opt, dualRoute: c.kind == MigrAutoRW || c.kind == MigrWOM || c.kind == MigrBW}
	} else {
		c.Elec = elec.NewIn(spElec, pools, cfg.Electrical, col)
		spElec = nil
		c.link = &elecLink{ch: c.Elec}
	}

	n := cfg.GPU.MemCtrls
	if cap(mcs) < n {
		mcs = make([]bank, n)
	} else {
		mcs = mcs[:n]
	}
	c.mcs = mcs
	dramPerMC := cfg.Memory.DRAMBytes / int64(n)
	xpPerMC := cfg.Memory.XPointBytes / int64(n)
	for i := range c.mcs {
		b := &c.mcs[i]
		b.dram = dram.NewIn(b.dram, pools, cfg.DRAM)
		if cfg.Platform.Heterogeneous() {
			var reXP *xpoint.Controller
			if k := len(spXP); k > 0 {
				reXP, spXP = spXP[k-1], spXP[:k-1]
			}
			b.xp = xpoint.NewControllerIn(reXP, pools, cfg.XPoint, xpPerMC, cfg.GPU.LineBytes)
			switch cfg.Mode {
			case config.Planar:
				var rePl *planarState
				if k := len(spPl); k > 0 {
					rePl, spPl = spPl[k-1], spPl[:k-1]
				}
				b.planar = newPlanarStateIn(rePl, dramPerMC, xpPerMC, c.pageBytes, cfg.Memory.HotThreshold)
			case config.TwoLevel:
				// The tag-in-ECC design (Section III-B) only works while
				// the direct-map tag fits the ECC region's spare bits. The
				// DRAM cache maps the XPoint space (inclusive), so the tag
				// distinguishes XPoint lines aliasing onto one set.
				totalLines := xpPerMC / c.lineBytes
				nSets := dramPerMC / c.lineBytes
				if need := ecc.TagBitsNeeded(totalLines, nSets); need > ecc.TagBits {
					return nil, fmt.Errorf(
						"hmem: two-level tag needs %d bits, exceeding the %d-bit ECC budget (capacity ratio too large)",
						need, ecc.TagBits)
				}
				var reTL *twoLevelState
				if k := len(spTL); k > 0 {
					reTL, spTL = spTL[k-1], spTL[:k-1]
				}
				b.twolvl = newTwoLevelStateIn(reTL, dramPerMC, c.lineBytes)
			}
		}
	}

	if cfg.Platform == config.Origin {
		c.hostOnly = true
		c.host = host
		if c.host == nil {
			c.host = defaultHostLinkIn(spHost, pools)
			spHost = nil
		}
		resident := spRes
		spRes = nil
		if cap(resident) < n {
			resident = make([]resSet, n)
		} else {
			resident = resident[:n]
			for i := range resident {
				resident[i].reset()
			}
		}
		c.resident = resident
		c.resCap = dramPerMC / c.pageBytes
		if c.resCap < 1 {
			c.resCap = 1
		}
	}

	// Whatever was not consumed stays stashed for the next rebuild.
	c.spareXP, c.sparePlanar, c.spareTwolvl = spXP, spPl, spTL
	c.spareOpt, c.spareElec, c.spareHost, c.spareRes = spOpt, spElec, spHost, spRes
	return c, nil
}

// resSet tracks one controller's resident host pages: a direct-indexed
// presence array (pages are dense small integers) plus a FIFO ring for
// deterministic eviction. It replaces a map probed on every Origin access.
type resSet struct {
	present []bool
	fifo    []int64
	head    int // fifo[head:] is the queue; compacted when it outgrows its tail
	count   int
}

func (r *resSet) has(page int64) bool {
	return page < int64(len(r.present)) && r.present[page]
}

func (r *resSet) add(page int64) {
	if page >= int64(len(r.present)) {
		grown := make([]bool, page+1+int64(len(r.present)))
		copy(grown, r.present)
		r.present = grown
	}
	r.present[page] = true
	if r.head > 0 && r.head >= len(r.fifo)-r.head {
		r.fifo = append(r.fifo[:0], r.fifo[r.head:]...)
		r.head = 0
	}
	r.fifo = append(r.fifo, page)
	r.count++
}

// reset empties the set for a pooled rebuild, scrubbing only the pages
// still queued. Invariant: present[p] implies p is in fifo[head:], because
// evictOldest clears its victim's presence bit and compaction only discards
// fifo[:head] — so walking the live queue restores the whole present array.
func (r *resSet) reset() {
	for _, p := range r.fifo[r.head:] {
		r.present[p] = false
	}
	r.fifo = r.fifo[:0]
	r.head = 0
	r.count = 0
}

// evictOldest removes and returns the longest-resident page.
func (r *resSet) evictOldest() int64 {
	victim := r.fifo[r.head]
	r.head++
	r.present[victim] = false
	r.count--
	return victim
}

// Kind returns the controller's migration machinery.
func (c *Controller) Kind() MigrationKind { return c.kind }

// XPointAt exposes controller mc's XPoint logic-layer controller (nil on
// DRAM-only platforms); used by wear/endurance reporting.
func (c *Controller) XPointAt(mc int) *xpoint.Controller {
	if mc < 0 || mc >= len(c.mcs) {
		return nil
	}
	return c.mcs[mc].xp
}

// route splits a global address into (mc, localAddr): pages interleave
// across controllers.
func (c *Controller) route(addr uint64) (mc int, local uint64) {
	page := int64(addr) / c.pageBytes
	off := int64(addr) % c.pageBytes
	n := int64(len(c.mcs))
	mc = int(page % n)
	local = uint64((page/n)*c.pageBytes + off)
	return mc, local
}

// Access serves one line-granularity memory request arriving at the memory
// controller at time at. It returns when the response is available at the
// controller (read data arrived / write acknowledged). Latency is recorded
// in the collector.
func (c *Controller) Access(at sim.Time, addr uint64, write bool) (done sim.Time) {
	c.col.MemRequests++
	if write {
		c.col.Writes++
	} else {
		c.col.Reads++
	}
	mc, local := c.route(addr)
	b := &c.mcs[mc]

	switch {
	case c.hostOnly:
		done = c.accessOrigin(mc, b, at, local, write)
	case b.planar != nil:
		done = c.accessPlanar(mc, b, at, local, write)
	case b.twolvl != nil:
		done = c.accessTwoLevel(mc, b, at, local, write)
	default:
		// Oracle-style flat DRAM of sufficient capacity.
		done = c.dramAccess(mc, b, at, local, write, stats.RegularRequest)
		c.noteDRAMLat(int64(done - at))
	}
	c.col.MemLatency.Add(done - at)
	return done
}

// dramAccess performs command transfer + DRAM access + data transfer.
func (c *Controller) dramAccess(mc int, b *bank, at sim.Time, local uint64, write bool, class stats.Class) sim.Time {
	lineB := int(c.lineBytes)
	if write {
		// Command+data to device, then the array write completes.
		xfer := c.link.request(mc, devDRAM, true, at, cmdBytes+lineB, class)
		done := b.dram.Access(xfer, local, true)
		c.DRAMWrites++
		return done
	}
	cmd := c.link.request(mc, devDRAM, true, at, cmdBytes, class)
	ready := b.dram.Access(cmd, local, false)
	done := c.link.request(mc, devDRAM, false, ready, lineB, class)
	c.DRAMReads++
	return done
}

// xpAccess performs command transfer + XPoint access + data transfer.
func (c *Controller) xpAccess(mc int, b *bank, at sim.Time, local uint64, write bool, class stats.Class) sim.Time {
	lineB := int(c.lineBytes)
	if write {
		xfer := c.link.request(mc, devXPoint, true, at, cmdBytes+lineB, class)
		ack := b.xp.Write(xfer, local)
		c.XPointWrites++
		return ack
	}
	cmd := c.link.request(mc, devXPoint, true, at, cmdBytes, class)
	ready := b.xp.Read(cmd, local)
	done := c.link.request(mc, devXPoint, false, ready, lineB, class)
	c.XPointReads++
	return done
}

// accessOrigin is the DRAM-only small-capacity path: non-resident pages are
// staged over the host link first (the frequent host<->GPU copies that cost
// Origin 42% versus Hetero in Figure 16).
func (c *Controller) accessOrigin(mc int, b *bank, at sim.Time, local uint64, write bool) sim.Time {
	page := int64(local) / c.pageBytes
	res := &c.resident[mc]
	start := at
	if !res.has(page) {
		if int64(res.count) >= c.resCap {
			// Evict the oldest page (FIFO). The spill traffic is what
			// matters, not the exact victim — but the victim must be
			// deterministic: result caching and parallel-vs-serial sweep
			// equivalence both require identical reruns, and picking the
			// victim via map iteration order broke that.
			res.evictOldest()
		}
		res.add(page)
		start = c.host.Stage(at, c.pageBytes, false)
		c.col.HostBytes += uint64(c.pageBytes)
		c.col.HostTime += start - at
		// PCIe DMA transfer energy (pJ/bit), the basis of Figure 3b's DMA
		// energy fraction; the coefficient sits a few x above the on-board
		// electrical channel's per-bit cost.
		c.col.AddEnergyH(c.hDMAEnergy, float64(c.pageBytes)*8*3)
	}
	wrapped := uint64(int64(local) % (c.cfg.Memory.DRAMBytes / int64(len(c.mcs))))
	done := c.dramAccess(mc, b, start, wrapped, write, stats.RegularRequest)
	c.col.AddExtraH(c.hStageWait, float64(start-at))
	c.col.AddExtraH(c.hDramPart, float64(done-start))
	return done
}
