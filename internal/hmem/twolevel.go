package hmem

import (
	"fmt"

	"repro/internal/ddrt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// twoLevelState implements the two-level memory mode (Figure 7b): DRAM is a
// direct-mapped inclusive cache of the XPoint space. The tag, valid and
// dirty bits live in the ECC region of each DRAM cache line (Section III-B),
// so a hit costs exactly one DRAM access — the tag check and the data fetch
// are the same read.
type twoLevelState struct {
	nSets     int64
	lineBytes int64

	// tag[s] is the XPoint line index resident in set s; -1 when invalid.
	tag   []int64
	dirty []bool

	// touched journals the sets whose tag left the invalid state this run,
	// so a pooled rebuild restores O(touched) entries instead of refilling
	// the whole tag array; past an eighth of the sets, full switches the
	// rebuild to one wholesale refill. Invariant: every valid tag entry in
	// the backing array is journaled or full is set, so after the rebuild's
	// scrub the backing arrays are entirely invalid/false.
	touched []int64
	full    bool

	Hits      uint64
	MissClean uint64
	MissDirty uint64
}

func newTwoLevelState(dramBytes, lineBytes int64) *twoLevelState {
	return newTwoLevelStateIn(nil, dramBytes, lineBytes)
}

// newTwoLevelStateIn is newTwoLevelState rebuilding into a recycled state,
// scrubbing the retained tag/dirty arrays through the touched journal.
func newTwoLevelStateIn(re *twoLevelState, dramBytes, lineBytes int64) *twoLevelState {
	n := dramBytes / lineBytes
	if n < 1 {
		n = 1
	}
	if re == nil {
		re = &twoLevelState{}
	}
	tag, dirty := re.tag, re.dirty
	if re.full {
		for i := range tag {
			tag[i] = -1
		}
		clear(dirty)
	} else {
		for _, s := range re.touched {
			tag[s] = -1
			dirty[s] = false
		}
	}
	if int64(cap(tag)) < n {
		tag = make([]int64, n)
		for i := range tag {
			tag[i] = -1
		}
		dirty = make([]bool, n)
	} else {
		tag = tag[:n]
		dirty = dirty[:n]
	}
	*re = twoLevelState{
		nSets:     n,
		lineBytes: lineBytes,
		tag:       tag,
		dirty:     dirty,
		touched:   re.touched[:0],
	}
	return re
}

// install records a fill into set s, journaling the set's first departure
// from the invalid state for the pooled rebuild's scrub.
func (t *twoLevelState) install(set, line int64, dirty bool) {
	if t.tag[set] == -1 && !t.full {
		if int64(len(t.touched)) < t.nSets/8 {
			t.touched = append(t.touched, set)
		} else {
			t.full = true
			t.touched = t.touched[:0]
		}
	}
	t.tag[set] = line
	t.dirty[set] = dirty
}

// lookup maps a local address to (set, xpoint line, hit).
func (t *twoLevelState) lookup(local uint64) (set int64, line int64, hit bool) {
	line = int64(local) / t.lineBytes
	set = line % t.nSets
	return set, line, t.tag[set] == line
}

// accessTwoLevel serves one request in two-level mode on controller mc.
//
// Hit: one DRAM access returns data + metadata in a single cache line (the
// tag-in-ECC design), one response transfer.
//
// Miss: the DRAM read that performed the tag check has already fetched the
// victim line; if dirty it must go to XPoint, then the missing line is read
// from XPoint, returned to the GPU, and installed in DRAM. Who moves those
// bytes depends on the migration machinery:
//
//   - MigrCopy: the memory controller does everything on the data route —
//     victim transfer to XPoint and fill write to DRAM both occupy it.
//   - MigrAutoRW: the XPoint controller snarfed the tag-check read off the
//     channel (Figure 9b), so a dirty victim is written to XPoint
//     internally — the victim transfer disappears from the channel.
//   - MigrWOM/MigrBW: additionally the fill (XPoint -> DRAM) rides the
//     memory route via reverse-write (Figures 10b, 12) while the demand
//     data still flows to the controller on the data route. Migration then
//     occupies no data-route bandwidth at all — Figure 18's "fully
//     eliminated" bar.
func (c *Controller) accessTwoLevel(mc int, b *bank, at sim.Time, local uint64, write bool) sim.Time {
	t := b.twolvl
	set, line, hit := t.lookup(local)
	lineB := int(c.lineBytes)
	dramAddr := uint64(set) * uint64(c.lineBytes)

	if hit {
		t.Hits++
		done := c.dramAccess(mc, b, at, dramAddr, write, stats.RegularRequest)
		if write {
			t.dirty[set] = true
		}
		return done
	}

	// Miss path. The tag check itself is a DRAM read: command + line
	// response (metadata rides the ECC bits of the same line).
	cmd := c.link.request(mc, devDRAM, true, at, cmdBytes, stats.RegularRequest)
	tagRead := b.dram.Access(cmd, dramAddr, false)
	tagResp := c.link.request(mc, devDRAM, false, tagRead, lineB, stats.RegularRequest)
	c.DRAMReads++

	victim := t.tag[set]
	victimDirty := victim >= 0 && t.dirty[set]

	// Evict the dirty victim.
	evictDone := tagResp
	if victimDirty {
		t.MissDirty++
		switch c.kind {
		case MigrCopy:
			// Controller pushes the victim over the data route.
			tr := c.link.request(mc, devXPoint, true, tagResp, lineB, stats.DataCopy)
			evictDone = b.xp.MigrWrite(tr, uint64(victim)*uint64(c.lineBytes))
			c.XPointWrites++
		default:
			// Auto-read/write: the XPoint controller snarfed the tag-check
			// read and detected the miss by comparing tags itself; it
			// absorbs the eviction with no extra channel transfer.
			b.xp.Snarf(uint64(lineB))
			c.col.SnarfedBytes += uint64(lineB)
			evictDone = b.xp.SwapWrite(tagResp, uint64(victim)*uint64(c.lineBytes))
			c.XPointWrites++
		}
	} else if victim >= 0 {
		t.MissClean++
	} else {
		t.MissClean++
	}

	// Fetch the missing line from XPoint and serve the GPU.
	xr := b.xp.Read(tagResp, uint64(line)*uint64(c.lineBytes))
	if xr < evictDone && c.kind == MigrCopy {
		// The single controller buffer serializes eviction before fill in
		// the copy baseline.
		xr = evictDone
	}
	demandDone := c.link.request(mc, devXPoint, false, xr, lineB, stats.RegularRequest)
	c.XPointReads++

	// Install the line in DRAM.
	var fillDone sim.Time
	switch c.kind {
	case MigrWOM, MigrBW:
		// Reverse-write: the XPoint controller writes DRAM over the memory
		// route while the controller snarfs the demand data (handled above
		// as the demand transfer). The handshake checker asserts the
		// Figure 12 protocol.
		var hs ddrt.ReverseWriteHandshake
		for _, m := range ddrt.ReverseWriteSequence(1) {
			if err := hs.Step(m); err != nil {
				panic(fmt.Sprintf("hmem: reverse-write protocol violation: %v", err))
			}
		}
		tr := c.link.memRoute(mc, xr, lineB, c.kind == MigrWOM)
		fillDone = b.dram.AccessScheduled(tr, dramAddr, true)
	default:
		// Controller writes the fill over the data route.
		tr := c.link.request(mc, devDRAM, true, demandDone, cmdBytes+lineB, stats.DataCopy)
		fillDone = b.dram.AccessScheduled(tr, dramAddr, true)
	}
	c.DRAMWrites++

	t.install(set, line, write)
	c.col.Migrations++
	c.col.MigratedBytes += uint64(lineB)
	if victimDirty {
		c.col.MigratedBytes += uint64(lineB)
	}

	// The request completes when the demand data reaches the controller;
	// the fill may continue in the background on dual-route platforms, but
	// in the copy baseline the controller is busy until the fill is done.
	if c.kind == MigrCopy && fillDone > demandDone {
		return fillDone
	}
	return demandDone
}
