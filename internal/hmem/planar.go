package hmem

import (
	"fmt"

	"repro/internal/ddrt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// planarState implements the planar memory mode (Figure 7a): the unified
// address space is split into groups of one DRAM page plus R XPoint pages
// (R = capacity ratio). Kernel data is allocated in the groups' XPoint
// pages, interleaved across all groups (page mod nGroups) so every DRAM
// slot is reachable, while each slot initially holds unrelated cold data —
// planar kernels therefore suffer NVM latency until hot pages migrate,
// exactly the behaviour Section III-B describes. A hot XPoint page swaps
// with its group's DRAM page; a mapping table redirects later accesses.
// The design is the OS-transparent migration of [65].
type planarState struct {
	nGroups   int64
	ratio     int64
	pageBytes int64
	hotThresh int

	// slotOwner[g] is the logical kernel page currently occupying group g's
	// DRAM slot; absent means the slot still holds its initial cold data.
	slotOwner map[int64]int64
	// heat counts accesses to non-resident pages since their last swap.
	heat map[int64]int
	// migratingUntil blocks conflicting accesses while a group's swap is in
	// flight (the conflict-detection mechanism of Section IV-B). Only the
	// two pages participating in the swap conflict; other pages of the
	// group proceed.
	migratingUntil map[int64]sim.Time
	swapPages      map[int64][2]int64
	// lastSwap enforces a per-group cooldown so two hot pages sharing a
	// group do not ping-pong the DRAM slot.
	lastSwap map[int64]sim.Time
	cooldown sim.Time
	// swapBusyUntil serializes swaps per controller: a new SWAP-CMD is only
	// issued after the previous swap's completion handshake (Figure 11
	// steps 5-6), which bounds migration backlog exactly as the hardware
	// protocol does.
	swapBusyUntil sim.Time

	Swaps uint64
}

func newPlanarState(dramBytes, xpBytes, pageBytes int64, hotThresh int) *planarState {
	return newPlanarStateIn(nil, dramBytes, xpBytes, pageBytes, hotThresh)
}

// newPlanarStateIn is newPlanarState rebuilding into a recycled state: the
// five tracking maps are emptied with clear(), which keeps their buckets —
// map churn is proportional to the pages a run actually touched, so reuse
// costs O(touched), never O(capacity).
func newPlanarStateIn(re *planarState, dramBytes, xpBytes, pageBytes int64, hotThresh int) *planarState {
	n := dramBytes / pageBytes
	if n < 1 {
		n = 1
	}
	ratio := xpBytes / dramBytes
	if ratio < 1 {
		ratio = 1
	}
	if re == nil {
		re = &planarState{
			slotOwner:      make(map[int64]int64),
			heat:           make(map[int64]int),
			migratingUntil: make(map[int64]sim.Time),
			swapPages:      make(map[int64][2]int64),
			lastSwap:       make(map[int64]sim.Time),
		}
	} else {
		clear(re.slotOwner)
		clear(re.heat)
		clear(re.migratingUntil)
		clear(re.swapPages)
		clear(re.lastSwap)
	}
	*re = planarState{
		nGroups:        n,
		ratio:          ratio,
		pageBytes:      pageBytes,
		hotThresh:      hotThresh,
		slotOwner:      re.slotOwner,
		heat:           re.heat,
		migratingUntil: re.migratingUntil,
		swapPages:      re.swapPages,
		lastSwap:       re.lastSwap,
		cooldown:       25 * sim.Microsecond,
	}
	return re
}

// group returns the group of a local logical page.
func (p *planarState) group(page int64) int64 {
	return page % p.nGroups
}

// owner returns the logical kernel page resident in group g's DRAM slot, or
// -1 while the slot still holds its initial non-kernel data.
func (p *planarState) owner(g int64) int64 {
	if o, ok := p.slotOwner[g]; ok {
		return o
	}
	return -1
}

// inDRAM reports whether a logical page is the DRAM-resident member of its
// group.
func (p *planarState) inDRAM(page int64) bool {
	return p.owner(p.group(page)) == page
}

// accessPlanar serves one request in planar mode on controller mc.
func (c *Controller) accessPlanar(mc int, b *bank, at sim.Time, local uint64, write bool) sim.Time {
	p := b.planar
	page := int64(local) / c.pageBytes
	g := p.group(page)

	// Conflict detection: only requests to the two pages participating in
	// an in-flight swap wait for it (Section IV-B); other pages — even in
	// the same group — proceed.
	start := at
	if until, ok := p.migratingUntil[g]; ok && until > start {
		if sp := p.swapPages[g]; sp[0] == page || sp[1] == page {
			start = until
			c.col.AddExtraH(c.hConflict, float64(until-at))
		}
	}

	var done sim.Time
	if p.inDRAM(page) {
		done = c.dramAccess(mc, b, start, c.dramSlotAddr(p, g, local), write, stats.RegularRequest)
		c.noteDRAMLat(int64(done - at))
	} else {
		done = c.xpAccess(mc, b, start, local, write, stats.RegularRequest)
		c.noteXPLat(int64(done - at))
		// Heat tracking drives hot-page detection; the per-group cooldown
		// prevents two hot pages from ping-ponging the single DRAM slot.
		p.heat[page]++
		last, swappedBefore := p.lastSwap[g]
		if p.heat[page] >= p.hotThresh && done >= p.swapBusyUntil &&
			(!swappedBefore || done >= last+p.cooldown) {
			p.heat[page] = 0
			c.swapPlanar(mc, b, done, g, page)
		}
	}
	return done
}

// dramSlotAddr maps group g's DRAM slot to a device address; the line
// offset within the page is preserved.
func (c *Controller) dramSlotAddr(p *planarState, g int64, local uint64) uint64 {
	off := int64(local) % c.pageBytes
	return uint64(g*c.pageBytes + off)
}

// swapPlanar migrates hot page `page` into its group's DRAM slot, evicting
// the current owner back to XPoint. The channel cost depends on the
// platform's migration machinery:
//
//   - MigrCopy: the memory controller copies everything through its buffer:
//     read DRAM -> MC, write MC -> XPoint, read XPoint -> MC, write MC ->
//     DRAM; four page transfers occupying the data route (Figure 7a).
//   - MigrAutoRW: the XPoint controller snarfs the DRAM read off the
//     channel and performs the XPoint write internally, eliminating the
//     MC -> XPoint transfer (Figure 9a); three transfers remain.
//   - MigrWOM / MigrBW: the memory controller issues a SWAP-CMD (command
//     bytes on the data route) and presets the DRAM bank; the XPoint
//     controller's DDR sequence generator moves both directions over the
//     memory route (Figures 10a, 11). WOM coding shares the request light
//     (3/2 request serialization while active); BW avoids the penalty.
func (c *Controller) swapPlanar(mc int, b *bank, at sim.Time, g, page int64) {
	p := b.planar
	evict := p.owner(g)
	if evict < 0 {
		// The slot's initial cold data evicts into the hot page's old
		// XPoint slot; model its XPoint address by the group index.
		evict = g
	}
	pageB := int(c.pageBytes)
	dramAddr := uint64(g * c.pageBytes)

	var done sim.Time
	switch c.kind {
	case MigrCopy:
		// Read the DRAM page to the controller buffer.
		rd := b.dram.AccessScheduled(at, dramAddr, false)
		t := c.link.request(mc, devDRAM, false, rd, pageB, stats.DataCopy)
		// Write it into XPoint (evicted page's slot).
		t = c.link.request(mc, devXPoint, true, t, pageB, stats.DataCopy)
		wDone := b.xp.MigrWrite(t, uint64(evict*c.pageBytes))
		// Read the hot page from XPoint.
		xr := b.xp.MigrRead(wDone, uint64(page*c.pageBytes))
		t = c.link.request(mc, devXPoint, false, xr, pageB, stats.DataCopy)
		// Write it into the DRAM slot.
		t = c.link.request(mc, devDRAM, true, t, pageB, stats.DataCopy)
		done = b.dram.AccessScheduled(t, dramAddr, true)
		c.DRAMReads++
		c.DRAMWrites++
		c.XPointReads++
		c.XPointWrites++

	case MigrAutoRW:
		// DRAM -> XPoint: MC reads DRAM over the data route; the XPoint
		// controller snarfs the same light (Figure 9a) and writes the page
		// internally — no MC -> XPoint transfer.
		rd := b.dram.AccessScheduled(at, dramAddr, false)
		t := c.link.request(mc, devDRAM, false, rd, pageB, stats.DataCopy)
		b.xp.Snarf(uint64(pageB))
		c.col.SnarfedBytes += uint64(pageB)
		wDone := b.xp.SwapWrite(t, uint64(evict*c.pageBytes))
		// XPoint -> DRAM still goes through the controller (DRAM cannot
		// snarf): read XPoint -> MC, write MC -> DRAM.
		xr := b.xp.MigrRead(wDone, uint64(page*c.pageBytes))
		t = c.link.request(mc, devXPoint, false, xr, pageB, stats.DataCopy)
		t = c.link.request(mc, devDRAM, true, t, pageB, stats.DataCopy)
		done = b.dram.AccessScheduled(t, dramAddr, true)
		c.DRAMReads++
		c.DRAMWrites++
		c.XPointReads++
		c.XPointWrites++

	case MigrWOM, MigrBW:
		// SWAP-CMD carries the DRAM/XPoint addresses and size on the data
		// route; the controller presets the bank to the activated state.
		// The DDR-T handshake checker asserts the Figure 11 protocol is
		// followed exactly (a hardware bus checker's role).
		rowOpen := b.dram.RowOpen(dramAddr)
		var hs ddrt.SwapHandshake
		for _, m := range ddrt.SwapSequence(int(c.pageBytes/c.lineBytes), rowOpen) {
			if err := hs.Step(m); err != nil {
				panic(fmt.Sprintf("hmem: swap protocol violation: %v", err))
			}
		}
		if !hs.Done() {
			panic("hmem: swap handshake incomplete")
		}
		cmdEnd := c.link.request(mc, devXPoint, true, at, cmdBytes, stats.DataCopy)
		bankReady := b.dram.Preset(cmdEnd, dramAddr)
		wom := c.kind == MigrWOM
		// DDR sequence generator reads the DRAM page and streams it to
		// XPoint over the memory route.
		t := c.link.memRoute(mc, bankReady, pageB, wom)
		xw := b.xp.SwapWrite(t, uint64(evict*c.pageBytes))
		// Then reads the hot page from XPoint and writes it to DRAM, still
		// on the memory route.
		xr := b.xp.ReverseRead(xw, uint64(page*c.pageBytes))
		t = c.link.memRoute(mc, xr, pageB, wom)
		done = b.dram.AccessScheduled(t, dramAddr, true)
		c.DRAMReads++
		c.DRAMWrites++
		c.XPointReads++
		c.XPointWrites++

	default:
		return // no migration machinery
	}

	// Record the swap window: only the two participating pages conflict.
	p.migratingUntil[g] = done
	p.swapPages[g] = [2]int64{page, evict}
	p.lastSwap[g] = done
	p.swapBusyUntil = done
	p.slotOwner[g] = page
	p.Swaps++
	c.col.Migrations++
	c.col.MigratedBytes += 2 * uint64(c.pageBytes)
}
