package hmem

import (
	"repro/internal/sim"
)

// pcieHost is the default host link for Origin's spill path: host-DRAM
// staging over PCIe. A single shared DMA engine serializes transfers,
// which is what makes Origin's frequent host copies so expensive
// (Section VI-A: Origin degrades 42% versus Hetero).
type pcieHost struct {
	dma      *sim.Resource
	setup    sim.Time
	bwBps    float64
	pjPerBit float64
	col      energySink
}

type energySink interface {
	AddEnergy(component string, pj float64)
}

func defaultHostLink() *pcieHost {
	return defaultHostLinkIn(nil, nil)
}

// defaultHostLinkIn is defaultHostLink rebuilding into a recycled link with
// the DMA resource drawn from pools; re and pools may both be nil.
func defaultHostLinkIn(re *pcieHost, pools *sim.Pools) *pcieHost {
	if re == nil {
		re = &pcieHost{}
	}
	*re = pcieHost{
		dma:   pools.Resource("pcie"),
		setup: 2 * sim.Microsecond,
		bwBps: 18e9, // PCIe 3.0 x16-class staging
	}
	return re
}

// Stage transfers n bytes between host and GPU memory. Only the wire time
// occupies the shared DMA link; the programming setup adds latency to this
// transfer without blocking queued ones.
func (h *pcieHost) Stage(at sim.Time, n int64, write bool) sim.Time {
	wire := sim.Time(float64(n) / h.bwBps * 1e12)
	_, end := h.dma.Reserve(at, wire)
	if h.col != nil {
		h.col.AddEnergy("dma", float64(n)*8*h.pjPerBit)
	}
	return end + h.setup
}
