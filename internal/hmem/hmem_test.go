package hmem

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

func mkCtrl(t *testing.T, p config.Platform, m config.MemMode) (*Controller, *stats.Collector) {
	t.Helper()
	cfg := config.Default(p, m)
	col := stats.NewCollector()
	c, err := New(&cfg, col, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, col
}

func TestKindFor(t *testing.T) {
	want := map[config.Platform]MigrationKind{
		config.Origin: MigrNone, config.Oracle: MigrNone,
		config.Hetero: MigrCopy, config.OhmBase: MigrCopy,
		config.AutoRW: MigrAutoRW, config.OhmWOM: MigrWOM, config.OhmBW: MigrBW,
	}
	for p, k := range want {
		if got := KindFor(p); got != k {
			t.Errorf("KindFor(%s) = %d, want %d", p, got, k)
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := config.Default(config.OhmBase, config.Planar)
	cfg.GPU.SMs = 0
	if _, err := New(&cfg, stats.NewCollector(), nil); err == nil {
		t.Fatal("New accepted invalid config")
	}
	good := config.Default(config.OhmBase, config.Planar)
	if _, err := New(&good, nil, nil); err == nil {
		t.Fatal("New accepted nil collector")
	}
}

func TestAllPlatformsConstruct(t *testing.T) {
	for _, p := range config.AllPlatforms() {
		for _, m := range config.AllModes() {
			c, _ := mkCtrl(t, p, m)
			if done := c.Access(0, 0, false); done <= 0 {
				t.Errorf("%s/%s: first access returned %s", p, m, done)
			}
		}
	}
}

func TestRouteInterleavesPages(t *testing.T) {
	c, _ := mkCtrl(t, config.OhmBase, config.Planar)
	pb := uint64(c.cfg.Memory.PageBytes)
	mc0, l0 := c.route(0)
	mc1, _ := c.route(pb)
	mc6, l6 := c.route(6 * pb)
	if mc0 != 0 || mc1 != 1 || mc6 != 0 {
		t.Fatalf("page interleave wrong: %d %d %d", mc0, mc1, mc6)
	}
	if l0 != 0 || l6 != pb {
		t.Fatalf("local addresses wrong: %d %d", l0, l6)
	}
	// Offsets within a page are preserved.
	_, lOff := c.route(6*pb + 128)
	if lOff != pb+128 {
		t.Fatalf("offset lost: %d", lOff)
	}
}

func TestOracleLatencyIsDRAMClass(t *testing.T) {
	c, col := mkCtrl(t, config.Oracle, config.Planar)
	done := c.Access(0, 0, false)
	// Command transfer + cold DRAM activate+CAS+burst + line response.
	if done < 36*sim.Nanosecond || done > 200*sim.Nanosecond {
		t.Fatalf("Oracle read latency %s not DRAM-class", done)
	}
	if col.MemRequests != 1 || col.Reads != 1 {
		t.Fatal("request accounting missing")
	}
}

func TestPlanarXPointSlowerThanDRAM(t *testing.T) {
	c, _ := mkCtrl(t, config.OhmBase, config.Planar)
	pb := uint64(c.cfg.Memory.PageBytes)
	// Local page 0 is group 0's DRAM page; local page 1 is the group's
	// first XPoint page (global address pb*MCs under page interleaving).
	dramDone := c.Access(0, 0, false)
	xpAddr := pb * uint64(len(c.mcs))
	xpDone := c.Access(0, xpAddr, false) - 0
	if xpDone <= dramDone {
		t.Fatalf("XPoint access (%s) must be slower than DRAM (%s)", xpDone, dramDone)
	}
	if xpDone < c.cfg.XPoint.ReadLatency {
		t.Fatalf("XPoint read %s below media latency", xpDone)
	}
}

func TestPlanarHotPageSwaps(t *testing.T) {
	c, col := mkCtrl(t, config.OhmBase, config.Planar)
	pb := uint64(c.cfg.Memory.PageBytes)
	xpAddr := pb * uint64(len(c.mcs)) // group 0's first XPoint page
	at := sim.Time(0)
	for i := 0; i < c.cfg.Memory.HotThreshold; i++ {
		at = c.Access(at, xpAddr, false)
	}
	if c.mcs[0].planar.Swaps != 1 {
		t.Fatalf("swaps = %d after %d hot accesses, want 1", c.mcs[0].planar.Swaps, c.cfg.Memory.HotThreshold)
	}
	if col.Migrations != 1 {
		t.Fatalf("collector migrations = %d", col.Migrations)
	}
	if !c.mcs[0].planar.inDRAM(int64(xpAddr / pb / uint64(len(c.mcs)))) {
		t.Fatal("hot page not resident in DRAM after swap")
	}
	// After the swap completes (the window is dominated by the 763ns XPoint
	// media write), the page is served from DRAM: fast. Local page 1 maps
	// to group 1 under the modulo layout.
	probe := c.mcs[0].planar.migratingUntil[1] + sim.Microsecond
	fast := c.Access(probe, xpAddr, false) - probe
	if fast >= c.cfg.XPoint.ReadLatency {
		t.Fatalf("post-swap access still XPoint-slow: %s", fast)
	}
}

func TestPlanarSwapEvictsOldOwner(t *testing.T) {
	c, _ := mkCtrl(t, config.OhmBase, config.Planar)
	pb := uint64(c.cfg.Memory.PageBytes)
	nMC := uint64(len(c.mcs))
	xpAddr := pb * nMC // group 0's first XPoint page
	at := sim.Time(0)
	for i := 0; i < c.cfg.Memory.HotThreshold; i++ {
		at = c.Access(at, xpAddr, false)
	}
	// Page 0 (old owner of group 0) must now be in XPoint.
	if c.mcs[0].planar.inDRAM(0) {
		t.Fatal("evicted page still marked DRAM-resident")
	}
	slow := c.Access(at, 0, false) - at
	if slow < c.cfg.XPoint.ReadLatency {
		t.Fatalf("evicted page access %s should be XPoint-slow", slow)
	}
}

func TestPlanarMigrationChannelCostByPlatform(t *testing.T) {
	// The data-route bytes consumed by one swap must strictly shrink as the
	// machinery improves: copy (4 page transfers) > auto-rw (3) > swap via
	// dual routes (command only).
	cost := func(p config.Platform) uint64 {
		c, col := mkCtrl(t, p, config.Planar)
		pb := uint64(c.cfg.Memory.PageBytes)
		nMC := uint64(len(c.mcs))
		xpAddr := pb * nMC
		at := sim.Time(0)
		for i := 0; i < c.cfg.Memory.HotThreshold; i++ {
			at = c.Access(at, xpAddr, false)
		}
		if c.mcs[0].planar.Swaps != 1 {
			t.Fatalf("%s: swaps = %d", p, c.mcs[0].planar.Swaps)
		}
		// Bytes that occupied the data route as migration traffic: total
		// copy bytes minus those carried by the memory route.
		return col.ChannelBytes[stats.DataCopy] - col.DualRouteBytes
	}
	base := cost(config.OhmBase)
	auto := cost(config.AutoRW)
	wom := cost(config.OhmWOM)
	bw := cost(config.OhmBW)
	pageB := uint64(config.Default(config.OhmBase, config.Planar).Memory.PageBytes)
	if base < 4*pageB {
		t.Fatalf("copy baseline moved %d bytes on data route, want >= 4 pages", base)
	}
	if auto >= base || auto < 2*pageB {
		t.Fatalf("auto-rw data-route migration bytes %d, want in [2 pages, base %d)", auto, base)
	}
	if wom >= auto || wom > 4*cmdBytes {
		t.Fatalf("WOM swap data-route migration bytes = %d, want only command traffic", wom)
	}
	if bw != wom {
		t.Fatalf("BW (%d) and WOM (%d) should move the same command bytes", bw, wom)
	}
}

func TestPlanarDualRoutesCarryMigration(t *testing.T) {
	c, col := mkCtrl(t, config.OhmWOM, config.Planar)
	pb := uint64(c.cfg.Memory.PageBytes)
	nMC := uint64(len(c.mcs))
	xpAddr := pb * nMC // group 0's first XPoint page
	at := sim.Time(0)
	for i := 0; i < c.cfg.Memory.HotThreshold; i++ {
		at = c.Access(at, xpAddr, false)
	}
	if col.DualRouteBytes < 2*pb {
		t.Fatalf("dual-route bytes = %d, want >= both page transfers (%d)", col.DualRouteBytes, 2*pb)
	}
	if c.Opt.MemRouteBusy() == 0 {
		t.Fatal("memory route never used")
	}
}

func TestTwoLevelHitVsMiss(t *testing.T) {
	c, _ := mkCtrl(t, config.OhmBase, config.TwoLevel)
	// First access: cold miss (XPoint fetch).
	missLat := c.Access(0, 0, false)
	if missLat < c.cfg.XPoint.ReadLatency {
		t.Fatalf("cold miss latency %s below XPoint read", missLat)
	}
	// Second access to the same line: DRAM hit.
	start := missLat * 2
	hitLat := c.Access(start, 0, false) - start
	if hitLat >= c.cfg.XPoint.ReadLatency/2 {
		t.Fatalf("hit latency %s not DRAM-class", hitLat)
	}
	tl := c.mcs[0].twolvl
	if tl.Hits != 1 || tl.MissClean != 1 {
		t.Fatalf("hits=%d clean misses=%d", tl.Hits, tl.MissClean)
	}
}

func TestTwoLevelDirtyEviction(t *testing.T) {
	c, _ := mkCtrl(t, config.OhmBase, config.TwoLevel)
	tl := c.mcs[0].twolvl
	nMC := int64(len(c.mcs))
	// Write line 0 (dirty), then access the conflicting line that maps to
	// the same set: global stride = sets * lineBytes * MCs within one page?
	// Sets cover dramPerMC/lineB lines; conflict line index = nSets.
	conflict := uint64(tl.nSets * tl.lineBytes)
	// Keep it in MC 0: address conflict*nMC pages away... simpler: compute
	// a local conflict through the page interleave. Page-sized strides of
	// nMC keep MC 0.
	pb := int64(c.cfg.Memory.PageBytes)
	pagesPerSetSpan := (tl.nSets * tl.lineBytes) / pb
	globalConflict := uint64(pagesPerSetSpan * nMC * pb)
	_ = conflict

	at := c.Access(0, 0, true) // dirty line 0 in set 0
	if !tl.dirty[0] {
		t.Fatal("write did not mark set dirty")
	}
	at = c.Access(at, globalConflict, false)
	if tl.MissDirty != 1 {
		t.Fatalf("dirty misses = %d, want 1", tl.MissDirty)
	}
	// Line 0 must have been evicted: re-access misses again.
	before := tl.Hits
	c.Access(at*2, 0, false)
	if tl.Hits != before {
		t.Fatal("evicted line still hit")
	}
}

func TestTwoLevelWOMEliminatesMigrationOnDataRoute(t *testing.T) {
	// Figure 18: Ohm-WOM in two-level mode fully eliminates data-route
	// occupancy from migration (evictions snarfed, fills reverse-written).
	run := func(p config.Platform) (dataCopyBusy sim.Time) {
		c, col := mkCtrl(t, p, config.TwoLevel)
		tl := c.mcs[0].twolvl
		nMC := int64(len(c.mcs))
		pb := int64(c.cfg.Memory.PageBytes)
		span := (tl.nSets * tl.lineBytes) / pb * nMC * pb
		at := sim.Time(0)
		// Generate dirty-evicting conflict misses.
		for i := 0; i < 6; i++ {
			at = c.Access(at, uint64(int64(i)*span), true)
		}
		return col.ChannelBusy[stats.DataCopy]
	}
	base := run(config.OhmBase)
	wom := run(config.OhmWOM)
	if base == 0 {
		t.Fatal("baseline generated no migration channel traffic")
	}
	if wom != 0 {
		t.Fatalf("Ohm-WOM two-level data-route migration busy = %s, want 0", wom)
	}
}

func TestOriginSpillsToHost(t *testing.T) {
	c, col := mkCtrl(t, config.Origin, config.Planar)
	// Touch more pages than the per-MC resident capacity on MC 0.
	pb := int64(c.cfg.Memory.PageBytes)
	nMC := int64(len(c.mcs))
	at := sim.Time(0)
	for i := int64(0); i < c.resCap+4; i++ {
		at = c.Access(at, uint64(i*nMC*pb), false)
	}
	if col.HostBytes == 0 {
		t.Fatal("Origin never staged pages from host")
	}
	// Re-touching a just-staged page must not restage it.
	hb := col.HostBytes
	c.Access(at, uint64((c.resCap+3)*nMC*pb), false)
	if col.HostBytes != hb {
		t.Fatal("resident page restaged")
	}
}

func TestOriginFirstTouchSlow(t *testing.T) {
	c, _ := mkCtrl(t, config.Origin, config.Planar)
	first := c.Access(0, 0, false)
	if first < sim.Microsecond {
		t.Fatalf("first touch %s should include host staging", first)
	}
	second := c.Access(first, 128, false) - first
	if second >= sim.Microsecond {
		t.Fatalf("resident access %s should be DRAM-class", second)
	}
}

func TestHeteroUsesElectricalChannel(t *testing.T) {
	c, _ := mkCtrl(t, config.Hetero, config.Planar)
	if c.Elec == nil || c.Opt != nil {
		t.Fatal("Hetero must use the electrical channel")
	}
	c.Access(0, 0, false)
	if c.Elec.Busy() == 0 {
		t.Fatal("electrical channel unused")
	}
}

func TestOpticalPlatformsUseOpticalChannel(t *testing.T) {
	for _, p := range config.OpticalPlatforms() {
		c, _ := mkCtrl(t, p, config.Planar)
		if c.Opt == nil {
			t.Errorf("%s must use the optical channel", p)
		}
	}
}

func TestConflictDetectionBlocksMigratingGroup(t *testing.T) {
	c, _ := mkCtrl(t, config.OhmBase, config.Planar)
	pb := uint64(c.cfg.Memory.PageBytes)
	nMC := uint64(len(c.mcs))
	xpAddr := pb * nMC // group 0's first XPoint page // group 0
	at := sim.Time(0)
	for i := 0; i < c.cfg.Memory.HotThreshold; i++ {
		at = c.Access(at, xpAddr, false)
	}
	until := c.mcs[0].planar.migratingUntil[1] // local page 1 -> group 1
	if until <= at {
		t.Fatal("no migration window recorded")
	}
	// An access to a swap participant issued mid-swap completes after the
	// swap ends; the hot page itself is the participant here.
	blocked := c.Access(at, xpAddr, false)
	if blocked < until {
		t.Fatalf("conflicting access done %s before migration end %s", blocked, until)
	}
}

func TestLatencyRecorded(t *testing.T) {
	c, col := mkCtrl(t, config.OhmBase, config.TwoLevel)
	c.Access(0, 0, false)
	c.Access(sim.Millisecond, 0, false)
	if col.MemLatency.Count != 2 {
		t.Fatalf("latency samples = %d", col.MemLatency.Count)
	}
	if col.MemLatency.Mean() <= 0 {
		t.Fatal("zero mean latency")
	}
}

func TestWritesAckFasterThanReadsOnXPoint(t *testing.T) {
	// DDR-T buffered writes ack quickly; reads pay media latency.
	c, _ := mkCtrl(t, config.OhmBase, config.Planar)
	pb := uint64(c.cfg.Memory.PageBytes)
	nMC := uint64(len(c.mcs))
	xpAddr := pb * nMC // group 0's first XPoint page
	rd := c.Access(0, xpAddr, false)
	c2, _ := mkCtrl(t, config.OhmBase, config.Planar)
	wr := c2.Access(0, xpAddr, true)
	if wr >= rd {
		t.Fatalf("buffered XPoint write ack (%s) should beat read (%s)", wr, rd)
	}
}
