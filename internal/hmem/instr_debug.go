package hmem

// Per-destination latency taps (mean DRAM vs XPoint service time), consumed
// by the calibration experiments from Extra. They fire on every memory
// access, so they accumulate through pre-interned collector handles: the
// former string-keyed form (Extra[dest+"-lat-sum"]) allocated a concatenated
// key and hashed the map twice per access.

func (c *Controller) noteDRAMLat(d int64) {
	c.col.AddExtraH(c.hDramLatSum, float64(d))
	c.col.AddExtraH(c.hDramLatCnt, 1)
}

func (c *Controller) noteXPLat(d int64) {
	c.col.AddExtraH(c.hXPLatSum, float64(d))
	c.col.AddExtraH(c.hXPLatCnt, 1)
}
