package hmem

// Debug instrumentation: per-destination latency sums for calibration runs.
// Kept behind ordinary counters (no build tags) because the overhead is two
// map updates per access and the experiments read them from Extra.
func (c *Controller) noteLat(dest string, d int64) {
	c.col.Extra[dest+"-lat-sum"] += float64(d)
	c.col.Extra[dest+"-count"]++
}
