// Package slab provides the reusable-memory primitive behind run-state
// pooling: object pools that recycle component structs in deterministic
// cursor order. A pool is a single-goroutine structure — a pooled
// simulation run state is owned by exactly one worker at a time (the
// core.RunState pool enforces that) — so it takes no locks.
//
// The contract every user relies on: an object obtained from a Pool is
// handed to the caller to reinitialize fully before use, and after that
// reinitialization it is indistinguishable from a freshly allocated one.
// Run-to-run byte-identity of simulation results rests on that contract;
// the randomized fresh-vs-pooled equivalence tests in internal/core pin it.
package slab

// Pool recycles heap objects in deterministic cursor order: the i-th Get
// after a Reset always returns the same object, so a simulation that
// builds its components in a fixed order gets each component's previous
// incarnation back — with whatever internal slice capacity it grew — and
// reinitializes it in place.
type Pool[T any] struct {
	items []*T
	off   int
}

// Get returns the next pooled object and whether it is recycled (true) or
// freshly allocated (false). Recycled objects hold their previous run's
// state; the caller must reinitialize every field it reads.
func (p *Pool[T]) Get() (t *T, recycled bool) {
	if p.off < len(p.items) {
		t = p.items[p.off]
		p.off++
		return t, true
	}
	t = new(T)
	p.items = append(p.items, t)
	p.off++
	return t, false
}

// Reset rewinds the cursor for the next run.
func (p *Pool[T]) Reset() { p.off = 0 }
