// Package ddrt models the asynchronous DDR-T protocol between the memory
// controller and the XPoint controller, including the new handshakes the
// paper adds for its migration functions: the swap handshake of Figure 11
// (Precharge/Activate -> SWAP-CMD -> read/write by the DDR sequence
// generator -> Ready -> Confirm) and the reverse-write handshake of
// Figure 12 (Ready -> Confirm -> write + snarf -> Complete).
//
// The simulator's timing lives in internal/hmem; this package provides the
// message vocabulary and protocol state machines that verify a controller
// emits legal sequences — the same role a bus-functional checker plays in
// hardware bring-up.
package ddrt

import "fmt"

// Msg is one protocol message on the channel.
type Msg int

const (
	// MsgRead is a DDR-T asynchronous read command.
	MsgRead Msg = iota
	// MsgWrite is a DDR-T asynchronous write command (buffered ack).
	MsgWrite
	// MsgData is a data packet in either direction.
	MsgData
	// MsgPrecharge is the DDR precharge the MC issues while presetting a
	// bank for the swap function (Figure 11 step 1).
	MsgPrecharge
	// MsgActivate is the DDR activate of the same preset.
	MsgActivate
	// MsgSwapCmd is the new SWAP-CMD carrying DRAM address, XPoint address
	// and size (Figure 11 step 2).
	MsgSwapCmd
	// MsgSeqRead is a DRAM read issued by the XPoint controller's DDR
	// sequence generator (Figure 11 step 3).
	MsgSeqRead
	// MsgSeqWrite is a DRAM write issued by the DDR sequence generator
	// (Figure 11 step 4).
	MsgSeqWrite
	// MsgReady is the XPoint controller's ready signal (Figure 11 step 5,
	// Figure 12 step 1).
	MsgReady
	// MsgConfirm is the memory controller's confirmation (Figure 11 step 6,
	// Figure 12 step 2).
	MsgConfirm
	// MsgComplete is the completion signal ending a reverse-write
	// (Figure 12 step 4).
	MsgComplete
)

var msgNames = [...]string{
	"read", "write", "data", "precharge", "activate", "swap-cmd",
	"seq-read", "seq-write", "ready", "confirm", "complete",
}

func (m Msg) String() string {
	if m < 0 || int(m) >= len(msgNames) {
		return fmt.Sprintf("Msg(%d)", int(m))
	}
	return msgNames[m]
}

// SwapHandshake validates the Figure 11 sequence. States advance on Step;
// illegal messages return an error identifying the violation.
type SwapHandshake struct {
	state swapState
	reads int
	wrote int
}

type swapState int

const (
	swapIdle swapState = iota
	swapPreset
	swapIssued
	swapMigrating
	swapReady
	swapDone
)

// Step feeds one message to the checker.
func (h *SwapHandshake) Step(m Msg) error {
	switch h.state {
	case swapIdle:
		switch m {
		case MsgPrecharge, MsgActivate:
			h.state = swapPreset
			return nil
		case MsgSwapCmd:
			// Legal when the target row is already open: no preset needed.
			h.state = swapIssued
			return nil
		}
	case swapPreset:
		switch m {
		case MsgPrecharge, MsgActivate:
			return nil // presetting may take both commands
		case MsgSwapCmd:
			h.state = swapIssued
			return nil
		}
	case swapIssued:
		switch m {
		case MsgSeqRead:
			h.state = swapMigrating
			h.reads++
			return nil
		}
	case swapMigrating:
		switch m {
		case MsgSeqRead:
			h.reads++
			return nil
		case MsgSeqWrite:
			h.wrote++
			return nil
		case MsgReady:
			if h.wrote == 0 {
				return fmt.Errorf("ddrt: ready before any seq-write")
			}
			h.state = swapReady
			return nil
		}
	case swapReady:
		if m == MsgConfirm {
			h.state = swapDone
			return nil
		}
	case swapDone:
		return fmt.Errorf("ddrt: message %s after swap completed", m)
	}
	return fmt.Errorf("ddrt: illegal %s in swap state %d", m, h.state)
}

// Done reports whether the handshake completed.
func (h *SwapHandshake) Done() bool { return h.state == swapDone }

// Reset returns the checker to idle.
func (h *SwapHandshake) Reset() { *h = SwapHandshake{} }

// ReverseWriteHandshake validates the Figure 12 sequence: Ready -> Confirm
// -> (XPoint writes DRAM while the MC snarfs) -> Complete.
type ReverseWriteHandshake struct {
	state  rwState
	writes int
}

type rwState int

const (
	rwIdle rwState = iota
	rwReadySent
	rwConfirmed
	rwDone
)

// Step feeds one message to the checker.
func (h *ReverseWriteHandshake) Step(m Msg) error {
	switch h.state {
	case rwIdle:
		if m == MsgReady {
			h.state = rwReadySent
			return nil
		}
	case rwReadySent:
		if m == MsgConfirm {
			h.state = rwConfirmed
			return nil
		}
	case rwConfirmed:
		switch m {
		case MsgSeqWrite, MsgData:
			h.writes++
			return nil
		case MsgComplete:
			if h.writes == 0 {
				return fmt.Errorf("ddrt: complete before any data")
			}
			h.state = rwDone
			return nil
		}
	case rwDone:
		return fmt.Errorf("ddrt: message %s after reverse-write completed", m)
	}
	return fmt.Errorf("ddrt: illegal %s in reverse-write state %d", m, h.state)
}

// Done reports whether the handshake completed.
func (h *ReverseWriteHandshake) Done() bool { return h.state == rwDone }

// Reset returns the checker to idle.
func (h *ReverseWriteHandshake) Reset() { *h = ReverseWriteHandshake{} }

// SwapSequence returns the canonical legal message sequence for a swap
// migrating nLines lines in each direction — what the hmem controller's
// MigrWOM/MigrBW path logically emits.
func SwapSequence(nLines int, rowOpen bool) []Msg {
	var s []Msg
	if !rowOpen {
		s = append(s, MsgPrecharge, MsgActivate)
	}
	s = append(s, MsgSwapCmd)
	for i := 0; i < nLines; i++ {
		s = append(s, MsgSeqRead)
	}
	for i := 0; i < nLines; i++ {
		s = append(s, MsgSeqWrite)
	}
	s = append(s, MsgReady, MsgConfirm)
	return s
}

// ReverseWriteSequence returns the canonical legal reverse-write sequence
// for nLines lines.
func ReverseWriteSequence(nLines int) []Msg {
	s := []Msg{MsgReady, MsgConfirm}
	for i := 0; i < nLines; i++ {
		s = append(s, MsgSeqWrite)
	}
	return append(s, MsgComplete)
}
