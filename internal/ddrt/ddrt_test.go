package ddrt

import (
	"testing"
	"testing/quick"
)

func feed(t *testing.T, h interface{ Step(Msg) error }, msgs []Msg) {
	t.Helper()
	for i, m := range msgs {
		if err := h.Step(m); err != nil {
			t.Fatalf("step %d (%s): %v", i, m, err)
		}
	}
}

func TestSwapCanonicalSequences(t *testing.T) {
	for _, rowOpen := range []bool{false, true} {
		var h SwapHandshake
		feed(t, &h, SwapSequence(4, rowOpen))
		if !h.Done() {
			t.Fatalf("canonical swap (rowOpen=%v) did not complete", rowOpen)
		}
	}
}

func TestSwapInterleavedReadsWrites(t *testing.T) {
	// The DDR sequence generator may interleave reads and writes once
	// migration started.
	var h SwapHandshake
	feed(t, &h, []Msg{MsgPrecharge, MsgActivate, MsgSwapCmd,
		MsgSeqRead, MsgSeqWrite, MsgSeqRead, MsgSeqWrite, MsgReady, MsgConfirm})
	if !h.Done() {
		t.Fatal("interleaved swap did not complete")
	}
}

func TestSwapIllegalTransitions(t *testing.T) {
	cases := []struct {
		name string
		msgs []Msg
	}{
		{"ready without swap-cmd", []Msg{MsgReady}},
		{"seq-read before swap-cmd", []Msg{MsgPrecharge, MsgSeqRead}},
		{"ready before any write", []Msg{MsgSwapCmd, MsgSeqRead, MsgReady}},
		{"confirm before ready", []Msg{MsgSwapCmd, MsgSeqRead, MsgSeqWrite, MsgConfirm}},
		{"data after done", append(SwapSequence(1, true), MsgData)},
		{"demand read mid-handshake", []Msg{MsgSwapCmd, MsgRead}},
	}
	for _, c := range cases {
		var h SwapHandshake
		var err error
		for _, m := range c.msgs {
			if err = h.Step(m); err != nil {
				break
			}
		}
		if err == nil {
			t.Errorf("%s: accepted illegal sequence", c.name)
		}
	}
}

func TestSwapReset(t *testing.T) {
	var h SwapHandshake
	feed(t, &h, SwapSequence(1, true))
	h.Reset()
	if h.Done() {
		t.Fatal("reset did not clear state")
	}
	feed(t, &h, SwapSequence(2, false))
	if !h.Done() {
		t.Fatal("second handshake failed after reset")
	}
}

func TestReverseWriteCanonical(t *testing.T) {
	var h ReverseWriteHandshake
	feed(t, &h, ReverseWriteSequence(8))
	if !h.Done() {
		t.Fatal("canonical reverse-write did not complete")
	}
}

func TestReverseWriteIllegal(t *testing.T) {
	cases := []struct {
		name string
		msgs []Msg
	}{
		{"confirm first", []Msg{MsgConfirm}},
		{"data before confirm", []Msg{MsgReady, MsgData}},
		{"complete without data", []Msg{MsgReady, MsgConfirm, MsgComplete}},
		{"message after done", append(ReverseWriteSequence(1), MsgData)},
	}
	for _, c := range cases {
		var h ReverseWriteHandshake
		var err error
		for _, m := range c.msgs {
			if err = h.Step(m); err != nil {
				break
			}
		}
		if err == nil {
			t.Errorf("%s: accepted illegal sequence", c.name)
		}
	}
}

func TestReverseWriteReset(t *testing.T) {
	var h ReverseWriteHandshake
	feed(t, &h, ReverseWriteSequence(1))
	h.Reset()
	feed(t, &h, ReverseWriteSequence(2))
	if !h.Done() {
		t.Fatal("second reverse-write failed after reset")
	}
}

func TestMsgStrings(t *testing.T) {
	for m := MsgRead; m <= MsgComplete; m++ {
		if m.String() == "" {
			t.Fatalf("message %d has no name", int(m))
		}
	}
	if Msg(99).String() == "" {
		t.Fatal("unknown message must render")
	}
}

// Property: every generated canonical sequence is accepted, for any line
// count and row state.
func TestCanonicalSequencesProperty(t *testing.T) {
	f := func(n uint8, rowOpen bool) bool {
		lines := int(n%64) + 1
		var sw SwapHandshake
		for _, m := range SwapSequence(lines, rowOpen) {
			if sw.Step(m) != nil {
				return false
			}
		}
		var rw ReverseWriteHandshake
		for _, m := range ReverseWriteSequence(lines) {
			if rw.Step(m) != nil {
				return false
			}
		}
		return sw.Done() && rw.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random prefix of the canonical sequence never reports Done.
func TestPrefixNotDoneProperty(t *testing.T) {
	f := func(n, cut uint8) bool {
		seq := SwapSequence(int(n%8)+1, false)
		k := int(cut) % len(seq)
		var h SwapHandshake
		for _, m := range seq[:k] {
			if h.Step(m) != nil {
				return false
			}
		}
		return !h.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
