package elec

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestTransferDuration(t *testing.T) {
	cfg := config.DefaultElectrical()
	c := New(cfg, nil)
	// 32-bit lane at 15 GHz: 4 bytes per word of 67ps x BandwidthScale;
	// 128 bytes = 32 words.
	_, end := c.Transfer(0, Forward, 0, 128, stats.RegularRequest)
	word := sim.Time(float64(sim.FreqToPeriod(15e9))*cfg.BandwidthScale + 0.5)
	want := 32 * word
	if end < want-sim.Nanosecond || end > want+sim.Nanosecond {
		t.Fatalf("128B transfer took %s, want about %s", end, want)
	}
}

func TestChannelsIndependent(t *testing.T) {
	c := New(config.DefaultElectrical(), nil)
	_, e0 := c.Transfer(0, Forward, 0, 4096, stats.RegularRequest)
	s1, _ := c.Transfer(1, Forward, 0, 4096, stats.RegularRequest)
	if s1 >= e0 {
		t.Fatal("distinct electrical channels serialized")
	}
	if c.Channels() != 6 {
		t.Fatalf("channels = %d, want 6 (Table I)", c.Channels())
	}
}

func TestSameChannelSerializes(t *testing.T) {
	c := New(config.DefaultElectrical(), nil)
	_, e0 := c.Transfer(0, Forward, 0, 4096, stats.RegularRequest)
	s1, _ := c.Transfer(0, Forward, 0, 4096, stats.RegularRequest)
	if s1 != e0 {
		t.Fatalf("same-channel transfer started at %s, want %s", s1, e0)
	}
}

func TestAccounting(t *testing.T) {
	col := stats.NewCollector()
	c := New(config.DefaultElectrical(), col)
	c.Transfer(0, Forward, 0, 100, stats.DataCopy)
	if col.ChannelBytes[stats.DataCopy] != 100 {
		t.Fatal("copy bytes not accounted")
	}
	col.Flush()
	want := 100.0 * 8 * config.DefaultElectrical().PJPerBit
	if got := col.EnergyPJ["elec-channel"]; got != want {
		t.Fatalf("energy = %v pJ, want %v", got, want)
	}
}

func TestMinimumWord(t *testing.T) {
	c := New(config.DefaultElectrical(), nil)
	_, end := c.Transfer(0, Forward, 0, 1, stats.RegularRequest)
	if end < sim.FreqToPeriod(15e9) {
		t.Fatalf("1-byte transfer took %s", end)
	}
}

func TestPanicsOnBadChannel(t *testing.T) {
	c := New(config.DefaultElectrical(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Transfer(6, Forward, 0, 8, stats.RegularRequest)
}

func TestPanicsOnZeroChannels(t *testing.T) {
	cfg := config.DefaultElectrical()
	cfg.Channels = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(cfg, nil)
}

func TestNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		c := New(config.DefaultElectrical(), nil)
		var lastEnd sim.Time
		for _, sz := range sizes {
			s, e := c.Transfer(0, Forward, 0, int(sz%4096)+1, stats.RegularRequest)
			if s < lastEnd || e <= s {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpticalElectricalBandwidthParity(t *testing.T) {
	// Section VI: the default optical channel matches the aggregate
	// electrical bandwidth. A 4 KiB transfer split evenly across 6
	// electrical channels should take about as long as 6 parallel optical
	// VC transfers of the same total size.
	cfg := config.Default(config.OhmBase, config.Planar)
	ec := New(cfg.Electrical, nil)
	per := 4096 / 6
	var eEnd sim.Time
	for ch := 0; ch < 6; ch++ {
		_, e := ec.Transfer(ch, Forward, 0, per, stats.RegularRequest)
		if e > eEnd {
			eEnd = e
		}
	}
	// 682B over 4B words of 67ps x BandwidthScale(10) = ~171 words = ~114ns.
	word := sim.Time(float64(sim.FreqToPeriod(15e9))*cfg.Electrical.BandwidthScale + 0.5)
	want := sim.Time(171) * word
	if eEnd < want-10*sim.Nanosecond || eEnd > want+10*sim.Nanosecond {
		t.Fatalf("electrical 4KiB/6ch = %s, want ~%s", eEnd, want)
	}
}
