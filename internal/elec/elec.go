// Package elec models the traditional electrical memory channels that the
// Origin and Hetero platforms use (Table I: six 32-bit channels at 15 GHz).
// Each channel is a serially occupied bus; unlike the optical channel there
// is no second route, so migration traffic always contends with requests.
package elec

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Direction selects the request (controller -> device) or response
// (device -> controller) half of a channel, mirroring the optical model so
// platform comparisons are apples to apples.
type Direction int

const (
	// Forward is controller -> device.
	Forward Direction = iota
	// Backward is device -> controller.
	Backward
)

// Channel is the set of electrical memory channels, one per memory
// controller.
type Channel struct {
	cfg      config.ElectricalConfig
	col      *stats.Collector
	lanes    []*sim.GapResource
	wordTime sim.Time
	laneB    float64

	// hEnergy is the pre-interned "elec-channel" energy handle (valid only
	// when col != nil); transfers fire per memory access, so accounting must
	// not hash the component name.
	hEnergy stats.EnergyHandle

	Transfers uint64
}

// New builds the electrical channels. col may be nil.
func New(cfg config.ElectricalConfig, col *stats.Collector) *Channel {
	return NewIn(nil, nil, cfg, col)
}

func laneName(_ string, i int) string { return fmt.Sprintf("elec%d", i) }

// NewIn is New rebuilding into a recycled channel set with lane resources
// drawn from pools; re and pools may both be nil (New is NewIn(nil, nil,
// ...)), so fresh and pooled construction share one code path.
func NewIn(re *Channel, pools *sim.Pools, cfg config.ElectricalConfig, col *stats.Collector) *Channel {
	if cfg.Channels <= 0 {
		panic("elec: need at least one channel")
	}
	scale := cfg.BandwidthScale
	if scale <= 0 {
		scale = 1
	}
	if re == nil {
		re = &Channel{}
	}
	lanes := re.lanes
	if cap(lanes) < 2*cfg.Channels {
		lanes = make([]*sim.GapResource, 2*cfg.Channels)
	} else {
		lanes = lanes[:2*cfg.Channels]
	}
	*re = Channel{
		cfg:      cfg,
		col:      col,
		lanes:    lanes,
		wordTime: sim.Time(float64(sim.FreqToPeriod(cfg.FreqHz))*scale + 0.5),
		laneB:    float64(cfg.LaneBits) / 8,
	}
	if col != nil {
		re.hEnergy = col.InternEnergy("elec-channel")
	}
	for i := range lanes {
		lanes[i] = pools.GapResource(pools.Name("elec", i, laneName))
	}
	return re
}

// Transfer serializes n bytes on channel ch's dir half, starting no
// earlier than at.
func (c *Channel) Transfer(ch int, dir Direction, at sim.Time, n int, class stats.Class) (start, end sim.Time) {
	if ch < 0 || 2*ch >= len(c.lanes) {
		panic(fmt.Sprintf("elec: channel %d out of [0,%d)", ch, len(c.lanes)/2))
	}
	words := float64(n) / c.laneB
	dur := sim.Time(words*float64(c.wordTime) + 0.5)
	if dur < c.wordTime {
		dur = c.wordTime
	}
	start, end = c.lanes[2*ch+int(dir)].Reserve(at, dur)
	if c.col != nil {
		c.col.AddChannel(class, uint64(n), dur)
		c.col.AddEnergyH(c.hEnergy, float64(n)*8*c.cfg.PJPerBit)
	}
	c.Transfers++
	return start, end
}

// FreeAt returns when channel ch's dir half frees.
func (c *Channel) FreeAt(ch int, dir Direction) sim.Time { return c.lanes[2*ch+int(dir)].FreeAt() }

// Busy returns total occupancy across channels.
func (c *Channel) Busy() sim.Time {
	var t sim.Time
	for _, l := range c.lanes {
		t += l.Busy()
	}
	return t
}

// Channels returns the channel count.
func (c *Channel) Channels() int { return len(c.lanes) / 2 }
