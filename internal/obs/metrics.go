// Package obs is the cluster's observability core: process-wide metrics
// (atomic counters, gauges and fixed-bucket histograms with Prometheus
// text exposition), structured logging built on log/slog, lightweight
// per-job spans that aggregate cell timings into a machine-readable
// breakdown, and a pprof listener helper. It depends only on the standard
// library, so every layer — the batch runner, the distributed dispatcher,
// the HTTP daemon — can import it without cycles or third-party modules.
//
// Metrics follow the promauto idiom: packages declare their instruments
// as package-level vars via NewCounter/NewGauge/NewHistogram (and the
// label-vector variants), which register in the Default registry exactly
// once per process. GET /metrics serves Default via Handler().
//
// Instrumentation granularity is cells and jobs, never simulated events:
// the discrete-event kernel stays allocation-free, and the benchcheck CI
// gate enforces that.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// collector is one registered metric family; it renders its own series.
type collector interface {
	describe() (name, help, typ string)
	write(w io.Writer)
}

// Registry holds metric families and renders them as Prometheus text
// exposition (version 0.0.4). Families are emitted in name order so the
// output is deterministic — the exposition test pins it byte-for-byte.
type Registry struct {
	mu     sync.Mutex
	byName map[string]collector
}

// NewRegistry returns an empty registry. Most code uses Default through
// the package-level constructors; tests build private registries to get
// deterministic, isolated exposition.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]collector)}
}

// Default is the process-wide registry served by Handler.
var Default = NewRegistry()

func (r *Registry) register(c collector) {
	name, _, _ := c.describe()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric registration: " + name)
	}
	r.byName[name] = c
}

// WritePrometheus renders every family in name order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	cs := make([]collector, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		cs = append(cs, r.byName[n])
	}
	r.mu.Unlock()

	for _, c := range cs {
		name, help, typ := c.describe()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		c.write(w)
	}
}

// Handler serves the registry as text exposition (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }

// formatFloat renders a sample value the way Prometheus parsers expect.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels formats `k1="v1",k2="v2"` (no braces) for the given pairs.
func renderLabels(keys, values []string) string {
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// series renders `name` or `name{labels}`.
func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// --- Counter ---

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	labels     string // rendered label pairs when a vec child, else ""
	v          atomic.Uint64
}

// Counter registers a counter in r.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// NewCounter registers a counter in Default.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) describe() (string, string, string) { return c.name, c.help, "counter" }

func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", series(c.name, c.labels), c.v.Load())
}

// --- Gauge ---

// Gauge is an integer value that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Gauge registers a gauge in r.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// NewGauge registers a gauge in Default.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) describe() (string, string, string) { return g.name, g.help, "gauge" }

func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
}

// --- GaugeFunc ---

// GaugeFunc is a gauge whose value is computed at scrape time.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// GaugeFunc registers a callback gauge in r.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(g)
	return g
}

// NewGaugeFunc registers a callback gauge in Default.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return Default.GaugeFunc(name, help, fn)
}

func (g *GaugeFunc) describe() (string, string, string) { return g.name, g.help, "gauge" }

func (g *GaugeFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// --- Histogram ---

// DurationBuckets is the default bucket layout for request/cell/job
// latencies: 1ms to 60s, roughly logarithmic.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// IOBuckets is the default layout for fast local I/O (cache reads and
// writes): 10µs to 1s.
var IOBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025,
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1,
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// exposition. Observations are lock-free (one atomic add per bucket plus
// a CAS loop for the sum).
type Histogram struct {
	name, help string
	labels     string // rendered label pairs when a vec child, else ""
	bounds     []float64
	counts     []atomic.Uint64 // len(bounds)+1; last bucket is +Inf overflow
	count      atomic.Uint64
	sumBits    atomic.Uint64 // float64 bits
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Histogram registers a histogram in r with the given upper bounds
// (ascending; +Inf is implicit). Nil buckets means DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(name, help, buckets)
	r.register(h)
	return h
}

// NewHistogram registers a histogram in Default.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.Histogram(name, help, buckets)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) describe() (string, string, string) { return h.name, h.help, "histogram" }

func (h *Histogram) write(w io.Writer) {
	var cum uint64
	sep := h.labels
	if sep != "" {
		sep += ","
	}
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", h.name, sep, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, sep, cum)
	fmt.Fprintf(w, "%s %s\n", series(h.name+"_sum", h.labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", series(h.name+"_count", h.labels), h.count.Load())
}

// --- Label vectors ---

// CounterVec is a family of counters partitioned by label values. Label
// sets must stay low-cardinality (routes, states, worker names) — every
// distinct combination lives for the life of the process.
type CounterVec struct {
	name, help string
	keys       []string
	mu         sync.RWMutex
	children   map[string]*Counter
}

// CounterVec registers a labeled counter family in r.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, keys: labels, children: make(map[string]*Counter)}
	r.register(v)
	return v
}

// NewCounterVec registers a labeled counter family in Default.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.CounterVec(name, help, labels...)
}

// With returns the child counter for the given label values (created on
// first use). len(values) must equal the label count.
func (v *CounterVec) With(values ...string) *Counter {
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.keys), len(values)))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c = &Counter{name: v.name, help: v.help, labels: renderLabels(v.keys, values)}
	v.children[key] = c
	return c
}

func (v *CounterVec) describe() (string, string, string) { return v.name, v.help, "counter" }

func (v *CounterVec) write(w io.Writer) {
	v.mu.RLock()
	cs := make([]*Counter, 0, len(v.children))
	for _, c := range v.children {
		cs = append(cs, c)
	}
	v.mu.RUnlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].labels < cs[j].labels })
	for _, c := range cs {
		c.write(w)
	}
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	name, help string
	buckets    []float64
	keys       []string
	mu         sync.RWMutex
	children   map[string]*Histogram
}

// HistogramVec registers a labeled histogram family in r.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{name: name, help: help, buckets: buckets, keys: labels, children: make(map[string]*Histogram)}
	r.register(v)
	return v
}

// NewHistogramVec registers a labeled histogram family in Default.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return Default.HistogramVec(name, help, buckets, labels...)
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	h, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.keys), len(values)))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[key]; ok {
		return h
	}
	h = newHistogram(v.name, v.help, v.buckets)
	h.labels = renderLabels(v.keys, values)
	v.children[key] = h
	return h
}

func (v *HistogramVec) describe() (string, string, string) { return v.name, v.help, "histogram" }

func (v *HistogramVec) write(w io.Writer) {
	v.mu.RLock()
	hs := make([]*Histogram, 0, len(v.children))
	for _, h := range v.children {
		hs = append(hs, h)
	}
	v.mu.RUnlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].labels < hs[j].labels })
	for _, h := range hs {
		h.write(w)
	}
}
