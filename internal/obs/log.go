package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Canonical structured-log attribute keys, so every layer tags the same
// identity the same way and a log pipeline can join across components:
//
//	request_id  one HTTP request through the daemon middleware
//	job_id      one submitted job (serve.Job)
//	task_id     one dispatched cell lease (dist task)
//	cell        a cell's human identity (platform/mode/workload[@overrides])
//	worker_id   a registered worker (coordinator-side id)
//	worker      a worker's human label
//	tenant      the admission-control identity a job bills against
const (
	KeyRequestID = "request_id"
	KeyJobID     = "job_id"
	KeyTaskID    = "task_id"
	KeyCell      = "cell"
	KeyWorkerID  = "worker_id"
	KeyWorker    = "worker"
	KeyTenant    = "tenant"
)

// NewLogger builds the daemon's structured logger: JSON (one object per
// line, for log pipelines) or logfmt-style text (for humans), at the given
// level.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps "debug"/"info"/"warn"/"error" (case-insensitive) to a
// slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Nop returns a logger that discards everything; components treat a nil
// Logger field as this, so instrumentation never requires configuration.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler drops every record. (slog.DiscardHandler exists only from Go
// 1.24; this keeps the module's 1.22 floor.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// Or returns l, or the Nop logger when l is nil — the one-liner every
// component uses to make its Logger field optional.
func Or(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return Nop()
}
