package obs

import (
	"context"
	"sync"
	"time"
)

// Phases is one simulation's wall-clock split into the three per-cell
// stages: workload trace generation (near zero when the in-process trace
// registry already holds the trace), platform construction (device
// arrays, caches, channel models), and the discrete-event loop itself.
// Durations marshal as integer nanoseconds, so the breakdown is
// machine-readable from the job API and the worker wire protocol.
type Phases struct {
	TraceGen      time.Duration `json:"trace_gen_ns"`
	PlatformBuild time.Duration `json:"platform_build_ns"`
	EventLoop     time.Duration `json:"event_loop_ns"`
}

// Add accumulates q into p.
func (p *Phases) Add(q Phases) {
	p.TraceGen += q.TraceGen
	p.PlatformBuild += q.PlatformBuild
	p.EventLoop += q.EventLoop
}

// Total returns the summed phase time.
func (p Phases) Total() time.Duration {
	return p.TraceGen + p.PlatformBuild + p.EventLoop
}

// IsZero reports whether no phase was measured (cache hits, shared
// single-flight results, opaque closure cells).
func (p Phases) IsZero() bool { return p == Phases{} }

// JobSpan aggregates the cells of one job into a timing breakdown. The
// executor records each resolved cell (the runner for in-process and
// closure cells, the dispatcher for distributed ones, via the job's
// context); the serving layer snapshots the span into the job status, so
// a slow sweep is diagnosable from GET /v1/jobs/{id} alone: is the time
// in trace generation, platform setup, the event loop, cache churn or
// remote dispatch?
type JobSpan struct {
	mu         sync.Mutex
	cells      int
	hits       int
	remote     int
	analytical int
	wall       time.Duration
	phases     Phases
}

// RecordCell folds one resolved cell into the span: its wall time (queue
// and transport included for remote cells), its phase split when it was
// simulated locally or shipped back by a worker, whether it was served
// from cache, and whether a remote worker computed it.
func (s *JobSpan) RecordCell(wall time.Duration, ph Phases, hit, remote bool) {
	s.RecordCellMode(wall, ph, hit, remote, false)
}

// RecordCellMode is RecordCell with the cell's execution mode: analytical
// cells (closed-form twin estimates) are counted separately so a job's
// timing breakdown distinguishes estimated cells from simulated ones.
func (s *JobSpan) RecordCellMode(wall time.Duration, ph Phases, hit, remote, analytical bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cells++
	if hit {
		s.hits++
	}
	if remote {
		s.remote++
	}
	if analytical {
		s.analytical++
	}
	s.wall += wall
	s.phases.Add(ph)
	s.mu.Unlock()
}

// SpanSnapshot is the serializable view of a JobSpan.
type SpanSnapshot struct {
	// Cells is how many cell resolutions the span observed.
	Cells int `json:"cells"`
	// CacheHits counts cells served without simulating for this job.
	CacheHits int `json:"cache_hits"`
	// RemoteCells counts cells computed by remote workers.
	RemoteCells int `json:"remote_cells"`
	// AnalyticalCells counts cells resolved by the closed-form twin
	// instead of the event simulator.
	AnalyticalCells int `json:"analytical_cells"`
	// CellsWall sums per-cell wall time across all cells (queueing and
	// transport included); it exceeds elapsed time under parallelism.
	CellsWall time.Duration `json:"cells_wall_ns"`
	// Phases sums the measured per-phase time of simulated cells.
	Phases Phases `json:"phases"`
}

// Snapshot returns the current totals.
func (s *JobSpan) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanSnapshot{
		Cells:           s.cells,
		CacheHits:       s.hits,
		RemoteCells:     s.remote,
		AnalyticalCells: s.analytical,
		CellsWall:       s.wall,
		Phases:          s.phases,
	}
}

type spanKey struct{}

// WithSpan attaches a span to ctx; executors running cells under this
// context record into it.
func WithSpan(ctx context.Context, s *JobSpan) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span attached to ctx, or nil.
func SpanFrom(ctx context.Context) *JobSpan {
	s, _ := ctx.Value(spanKey{}).(*JobSpan)
	return s
}
