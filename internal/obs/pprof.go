package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PprofMux returns a mux carrying the standard /debug/pprof endpoints
// (index, cmdline, profile, symbol, trace plus the runtime profiles the
// index links). Callers mount it on a dedicated — ideally loopback-only —
// listener: profiles expose memory contents and must not share the public
// API surface.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartPprof serves the pprof endpoints on addr in a background
// goroutine, returning the bound address (useful with ":0") and a stop
// function. The ohmserve -pprof flag drives this for both coordinator
// and worker processes.
func StartPprof(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	// ReadHeaderTimeout evicts slowloris connections; no write timeout —
	// /debug/pprof/profile and /trace stream for their sampling window.
	srv := &http.Server{Handler: PprofMux(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
