package obs

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusExposition pins the exposition format byte-for-byte: one
// of every instrument kind in a private registry, rendered in family name
// order with HELP/TYPE headers, cumulative buckets, escaped labels.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("test_requests_total", "Requests served.")
	c.Add(3)

	g := r.Gauge("test_queue_depth", "Jobs waiting.")
	g.Set(7)
	g.Dec()

	r.GaugeFunc("test_uptime_seconds", "Seconds since start.", func() float64 { return 1.5 })

	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.1) // == bound: falls in the le="0.1" bucket
	h.Observe(5)
	h.Observe(50) // overflow -> +Inf only

	cv := r.CounterVec("test_hits_total", "Hits by route.", "route", "code")
	cv.With("/v1/jobs", "200").Add(2)
	cv.With("/v1/jobs/{id}", "404").Inc()
	cv.With(`we"ird\nk`, "200").Inc() // escaping

	hv := r.HistogramVec("test_io_seconds", "IO latency.", []float64{0.5}, "op")
	hv.With("read").Observe(0.25)
	hv.With("write").Observe(2)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)

	want := `# HELP test_hits_total Hits by route.
# TYPE test_hits_total counter
test_hits_total{route="/v1/jobs",code="200"} 2
test_hits_total{route="/v1/jobs/{id}",code="404"} 1
test_hits_total{route="we\"ird\\nk",code="200"} 1
# HELP test_io_seconds IO latency.
# TYPE test_io_seconds histogram
test_io_seconds_bucket{op="read",le="0.5"} 1
test_io_seconds_bucket{op="read",le="+Inf"} 1
test_io_seconds_sum{op="read"} 0.25
test_io_seconds_count{op="read"} 1
test_io_seconds_bucket{op="write",le="0.5"} 0
test_io_seconds_bucket{op="write",le="+Inf"} 1
test_io_seconds_sum{op="write"} 2
test_io_seconds_count{op="write"} 1
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="10"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 55.15
test_latency_seconds_count 4
# HELP test_queue_depth Jobs waiting.
# TYPE test_queue_depth gauge
test_queue_depth 6
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_uptime_seconds Seconds since start.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 1.5
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDuplicateRegistrationPanics pins the promauto contract: a metric
// name registers once per registry.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("second registration of dup_total did not panic")
		}
	}()
	r.Counter("dup_total", "y")
}

// TestHandlerServesExposition covers the HTTP surface GET /metrics mounts.
func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "Things served.").Add(9)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "served_total 9\n") {
		t.Errorf("body missing series:\n%s", body)
	}
}

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; run under -race this pins the lock-free paths, and the
// final values pin that no increment is lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "x")
	g := r.Gauge("conc_gauge", "x")
	h := r.Histogram("conc_hist_seconds", "x", []float64{0.5})
	cv := r.CounterVec("conc_vec_total", "x", "k")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%2) * 0.75)
				cv.With("a").Inc()
				if w == 0 {
					var buf bytes.Buffer
					r.WritePrometheus(&buf) // scrape while writing
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := cv.With("a").Value(); got != workers*per {
		t.Errorf("vec counter = %d, want %d", got, workers*per)
	}
}

// TestJobSpan covers cell accumulation and the context plumbing.
func TestJobSpan(t *testing.T) {
	s := &JobSpan{}
	s.RecordCell(100*time.Millisecond, Phases{TraceGen: 10 * time.Millisecond, PlatformBuild: 20 * time.Millisecond, EventLoop: 60 * time.Millisecond}, false, false)
	s.RecordCell(1*time.Millisecond, Phases{}, true, false)
	s.RecordCell(50*time.Millisecond, Phases{EventLoop: 40 * time.Millisecond}, false, true)

	snap := s.Snapshot()
	if snap.Cells != 3 || snap.CacheHits != 1 || snap.RemoteCells != 1 {
		t.Errorf("snapshot counts = %+v", snap)
	}
	if snap.CellsWall != 151*time.Millisecond {
		t.Errorf("cells wall = %s, want 151ms", snap.CellsWall)
	}
	if snap.Phases.EventLoop != 100*time.Millisecond || snap.Phases.Total() != 130*time.Millisecond {
		t.Errorf("phases = %+v", snap.Phases)
	}

	ctx := WithSpan(context.Background(), s)
	if SpanFrom(ctx) != s {
		t.Error("SpanFrom did not return the attached span")
	}
	if SpanFrom(context.Background()) != nil {
		t.Error("SpanFrom on a bare context should be nil")
	}
	// Nil spans are safe everywhere: executors record unconditionally.
	var nilSpan *JobSpan
	nilSpan.RecordCell(time.Second, Phases{}, false, false)
	if got := nilSpan.Snapshot(); got.Cells != 0 {
		t.Errorf("nil span snapshot = %+v", got)
	}
}

// TestParseLevel covers the flag surface.
func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}

// TestLoggers covers the JSON/text constructors and the Nop fallback.
func TestLoggers(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, slog.LevelInfo, true).Info("hello", KeyJobID, "job-000001")
	if s := buf.String(); !strings.Contains(s, `"job_id":"job-000001"`) || !strings.Contains(s, `"msg":"hello"`) {
		t.Errorf("json log = %s", s)
	}
	buf.Reset()
	NewLogger(&buf, slog.LevelWarn, false).Info("dropped")
	if buf.Len() != 0 {
		t.Errorf("info under warn level should be dropped, got %s", buf.String())
	}
	Nop().Error("nowhere", "k", "v") // must not panic
	if Or(nil) == nil || Or(Nop()) == nil {
		t.Error("Or must never return nil")
	}
}

// TestStartPprof boots the profiling listener on an ephemeral port and
// fetches an index page.
func TestStartPprof(t *testing.T) {
	addr, stop, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = HTTP %d", resp.StatusCode)
	}
}
