package serve

import (
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Process-wide serving metrics (promauto idiom; see internal/batch/obs.go
// for the conventions — deltas, balanced gauges).
var (
	mHTTPRequests = obs.NewCounterVec("ohm_http_requests_total",
		"HTTP requests served, by normalized route, method and status code.",
		"route", "method", "code")
	mHTTPDuration = obs.NewHistogramVec("ohm_http_request_duration_seconds",
		"HTTP request latency by normalized route.", nil, "route")
	mHTTPInFlight = obs.NewGauge("ohm_http_in_flight_requests",
		"HTTP requests currently being served.")

	mJobsSubmitted = obs.NewCounterVec("ohm_jobs_submitted_total",
		"Jobs accepted by kind (sweep or experiment).", "kind")
	mJobsFinished = obs.NewCounterVec("ohm_jobs_finished_total",
		"Jobs reaching a terminal state, by state.", "state")
	mJobsQueued = obs.NewGauge("ohm_jobs_queued",
		"Jobs waiting in the FIFO queue.")
	mJobsRunning = obs.NewGauge("ohm_jobs_running",
		"Jobs currently executing.")
	mJobDuration = obs.NewHistogram("ohm_job_duration_seconds",
		"Job execution time from start to terminal state (queue wait excluded).", nil)
)

// reqSeq numbers requests for the request_id attribute, so one request's
// access-log line joins with any job events it triggered.
var reqSeq atomic.Uint64

// statusWriter captures the response code and body size for metrics and
// the access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// routeLabel normalizes a request path to its route shape so metric
// cardinality stays bounded: job and worker ids collapse to {id}, and
// anything unrecognized becomes "other" (one arbitrary-path scrape must
// not mint a series).
func routeLabel(path string) string {
	switch path {
	case "/v1/sweeps", "/v1/jobs", "/v1/experiments", "/v1/platforms",
		"/v1/workloads", "/v1/healthz", "/healthz", "/metrics",
		"/v1/workers/register":
		return path
	}
	if rest, ok := strings.CutPrefix(path, "/v1/jobs/"); ok {
		switch {
		case strings.HasSuffix(rest, "/result") && strings.Count(rest, "/") == 1:
			return "/v1/jobs/{id}/result"
		case !strings.Contains(rest, "/"):
			return "/v1/jobs/{id}"
		}
		return "other"
	}
	if rest, ok := strings.CutPrefix(path, "/v1/workers/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 && !strings.Contains(rest[i+1:], "/") {
			switch op := rest[i+1:]; op {
			case "lease", "complete", "heartbeat", "deregister":
				return "/v1/workers/{id}/" + op
			}
		}
		return "other"
	}
	return "other"
}

// Instrument wraps a handler with the daemon's HTTP observability:
// request counts and latency by normalized route, an in-flight gauge, and
// one structured access-log line per request carrying a process-unique
// request id. cmd/ohmserve wraps the *combined* mux (API plus worker
// protocol) so coordinator traffic from workers is measured too; wrapping
// happens once at the edge, never inside NewHandler, so nothing double
// counts.
func Instrument(logger *slog.Logger, next http.Handler) http.Handler {
	logger = obs.Or(logger)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := fmt.Sprintf("r-%08d", reqSeq.Add(1))
		mHTTPInFlight.Inc()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		mHTTPInFlight.Dec()
		code := sw.code
		if code == 0 {
			code = http.StatusOK // handler wrote nothing; net/http sends 200
		}
		route := routeLabel(r.URL.Path)
		elapsed := time.Since(start)
		mHTTPRequests.With(route, r.Method, strconv.Itoa(code)).Inc()
		mHTTPDuration.With(route).ObserveDuration(elapsed)
		// Polling traffic (worker long-polls and heartbeats, probe and
		// scrape endpoints) logs at debug; one line per poll at info would
		// drown the lines that matter.
		lvl := slog.LevelInfo
		switch route {
		case "/v1/workers/{id}/lease", "/v1/workers/{id}/heartbeat",
			"/v1/healthz", "/healthz", "/metrics":
			lvl = slog.LevelDebug
		}
		logger.Log(r.Context(), lvl, "http request",
			obs.KeyRequestID, rid,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"code", code,
			"bytes", sw.bytes,
			"duration", elapsed.String(),
		)
	})
}
