package serve

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
)

// Admission metrics. Tenant is a client-supplied label, so cardinality is
// bounded by MaxTenants (over-capacity tenants reject under the fixed
// "capacity" tenant label instead of minting a new series).
var (
	mAdmissionAccepted = obs.NewCounterVec("ohm_admission_accepted_total",
		"Job submissions admitted, by tenant.", "tenant")
	mAdmissionRejected = obs.NewCounterVec("ohm_admission_rejected_total",
		"Job submissions rejected by admission control, by tenant and reason.", "tenant", "reason")
	mAdmissionTenants = obs.NewGauge("ohm_admission_tenants",
		"Tenants currently tracked by admission control.")
)

// Machine-readable rejection reasons (AdmissionError.Reason and the
// "reason" field of 429 bodies).
const (
	// ReasonRateLimited: the tenant's token bucket is empty — submissions
	// arrived faster than the sustained rate plus burst allowance.
	ReasonRateLimited = "rate_limited"
	// ReasonTenantJobs: the tenant is at its cap of live (queued or
	// running) jobs.
	ReasonTenantJobs = "tenant_jobs_limit"
	// ReasonTenantCells: admitting the job would push the tenant's total
	// outstanding cells over its cap.
	ReasonTenantCells = "tenant_cells_limit"
	// ReasonTenantCapacity: the server tracks its maximum number of
	// distinct tenants and none could be evicted.
	ReasonTenantCapacity = "tenant_capacity"
)

// DefaultTenant is the tenant a request without an X-Ohm-Tenant header
// bills against.
const DefaultTenant = "default"

// AdmissionError is a rejected submission: which tenant, why, and how
// long the client should wait before retrying (the Retry-After header).
type AdmissionError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	switch e.Reason {
	case ReasonRateLimited:
		return fmt.Sprintf("serve: tenant %q over submit rate limit", e.Tenant)
	case ReasonTenantJobs:
		return fmt.Sprintf("serve: tenant %q at live-job limit", e.Tenant)
	case ReasonTenantCells:
		return fmt.Sprintf("serve: tenant %q at outstanding-cell limit", e.Tenant)
	case ReasonTenantCapacity:
		return "serve: tenant table full"
	}
	return fmt.Sprintf("serve: tenant %q rejected (%s)", e.Tenant, e.Reason)
}

// AdmissionConfig sets per-tenant limits. Zero values disable the
// corresponding limit, so the zero config admits everything (as does a
// nil *Admission).
type AdmissionConfig struct {
	// Rate is the sustained submissions/second each tenant may make;
	// Burst is the bucket depth (how many submissions can arrive at once
	// after idle). Burst defaults to max(1, Rate) when Rate is set.
	Rate  float64
	Burst int
	// MaxJobs caps a tenant's live (queued or running) jobs.
	MaxJobs int
	// MaxCells caps a tenant's total outstanding cells across live jobs.
	MaxCells int
	// MaxTenants bounds the tenant table (and the metric label space);
	// idle tenants with no live jobs are evicted to make room. 0 means
	// the default (1024).
	MaxTenants int
}

// defaultMaxTenants bounds tenant-table growth when unset: the tenant id
// is client-supplied, so without a cap a scanner could mint unbounded
// tracking state and metric series.
const defaultMaxTenants = 1024

// tenant is one tenant's admission state.
type tenant struct {
	tokens   float64   // current bucket level
	refilled time.Time // last refill instant
	jobs     int       // live (queued or running) jobs
	cells    int       // outstanding cells across live jobs
	seen     time.Time // last Admit, for idle eviction
}

// Admission implements per-tenant token-bucket rate limiting plus quota
// caps on live jobs and outstanding cells. All methods are nil-safe: a
// nil *Admission admits everything, so callers wire it only when limits
// are configured.
type Admission struct {
	cfg AdmissionConfig
	now func() time.Time // injected in tests

	mu      sync.Mutex
	tenants map[string]*tenant
}

// NewAdmission builds an admission controller with the given limits.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(math.Max(1, cfg.Rate))
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = defaultMaxTenants
	}
	return &Admission{cfg: cfg, now: time.Now, tenants: make(map[string]*tenant)}
}

// get returns the tenant's state, creating it if the table has room
// (evicting an idle tenant when full). nil means the table is full of
// tenants with live work.
func (a *Admission) get(name string, now time.Time) *tenant {
	t := a.tenants[name]
	if t != nil {
		return t
	}
	if len(a.tenants) >= a.cfg.MaxTenants {
		// Evict the longest-idle tenant with no live work; its bucket
		// state is the only thing lost, and an idle bucket is full anyway.
		var victim string
		var oldest time.Time
		for n, s := range a.tenants {
			if s.jobs == 0 && s.cells == 0 && (victim == "" || s.seen.Before(oldest)) {
				victim, oldest = n, s.seen
			}
		}
		if victim == "" {
			return nil
		}
		delete(a.tenants, victim)
		mAdmissionTenants.Dec()
	}
	t = &tenant{tokens: float64(a.cfg.Burst), refilled: now, seen: now}
	a.tenants[name] = t
	mAdmissionTenants.Inc()
	return t
}

// refill tops the bucket up for elapsed time.
func (a *Admission) refill(t *tenant, now time.Time) {
	if a.cfg.Rate <= 0 {
		return
	}
	elapsed := now.Sub(t.refilled).Seconds()
	if elapsed <= 0 {
		return
	}
	t.tokens = math.Min(float64(a.cfg.Burst), t.tokens+elapsed*a.cfg.Rate)
	t.refilled = now
}

// Admit charges one job of cells cells against the tenant, returning an
// *AdmissionError if any limit rejects it. On success the tenant's live
// counters include the job until Release.
func (a *Admission) Admit(name string, cells int) error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	t := a.get(name, now)
	if t == nil {
		// Bill the fixed "capacity" label, not the client-supplied name:
		// an untracked tenant must not mint a new metric series.
		mAdmissionRejected.With("capacity", ReasonTenantCapacity).Inc()
		return &AdmissionError{Tenant: name, Reason: ReasonTenantCapacity, RetryAfter: time.Second}
	}
	t.seen = now
	a.refill(t, now)
	if a.cfg.MaxJobs > 0 && t.jobs >= a.cfg.MaxJobs {
		mAdmissionRejected.With(name, ReasonTenantJobs).Inc()
		return &AdmissionError{Tenant: name, Reason: ReasonTenantJobs, RetryAfter: time.Second}
	}
	if a.cfg.MaxCells > 0 && t.cells+cells > a.cfg.MaxCells {
		mAdmissionRejected.With(name, ReasonTenantCells).Inc()
		return &AdmissionError{Tenant: name, Reason: ReasonTenantCells, RetryAfter: time.Second}
	}
	if a.cfg.Rate > 0 {
		if t.tokens < 1 {
			mAdmissionRejected.With(name, ReasonRateLimited).Inc()
			// Time until one token accrues, rounded up to whole seconds
			// for the Retry-After header (min 1s).
			wait := time.Duration(math.Ceil((1-t.tokens)/a.cfg.Rate)) * time.Second
			if wait < time.Second {
				wait = time.Second
			}
			return &AdmissionError{Tenant: name, Reason: ReasonRateLimited, RetryAfter: wait}
		}
		t.tokens--
	}
	t.jobs++
	t.cells += cells
	mAdmissionAccepted.With(name).Inc()
	return nil
}

// Restore re-counts a journal-replayed live job against its tenant
// without consuming rate tokens: replay is the server's doing, not
// client traffic.
func (a *Admission) Restore(name string, cells int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	t := a.get(name, now)
	if t == nil {
		return // table full of live tenants; the job still runs, uncounted
	}
	t.jobs++
	t.cells += cells
}

// Release returns a terminal job's quota to its tenant.
func (a *Admission) Release(name string, cells int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.tenants[name]
	if t == nil {
		return
	}
	t.jobs--
	t.cells -= cells
	if t.jobs < 0 {
		t.jobs = 0
	}
	if t.cells < 0 {
		t.cells = 0
	}
}

// Tenants returns how many tenants are tracked (tests and health).
func (a *Admission) Tenants() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.tenants)
}
