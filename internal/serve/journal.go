package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Journal metrics (promauto idiom; see internal/batch/obs.go for the
// conventions). Several journals may coexist in one process (tests), so
// counters accumulate and assertions read deltas.
var (
	mJournalRecords = obs.NewCounterVec("ohm_journal_records_total",
		"Journal records appended, by record type.", "type")
	mJournalErrors = obs.NewCounter("ohm_journal_errors_total",
		"Journal appends that failed (durability degraded, service continued).")
	mJournalCompactions = obs.NewCounter("ohm_journal_compactions_total",
		"Journal rewrites that folded history into its compact form.")
	mJournalReplayed = obs.NewCounterVec("ohm_journal_replayed_jobs_total",
		"Jobs reconstructed from the journal at startup, by disposition (requeued, terminal, failed).", "disposition")
	mJournalBytes = obs.NewGauge("ohm_journal_bytes",
		"Bytes in live job journals (torn tails excluded).")
)

// Journal record types. One JSONL line per event:
//
//	submit   a job was accepted (synced; carries the original request)
//	start    a worker began executing the job (unsynced)
//	cells    per-cell completion watermark (unsynced, throttled)
//	finish   the job reached a terminal state (synced)
//	archived compacted form of a finished job: status only, no request
//
// Sync policy: records that change what a restart must do (submit,
// finish, archived) are fsynced before the caller proceeds; progress
// records (start, cells) are plain appends whose loss is harmless — a
// job replayed without them simply re-queues as if it never started,
// and every cell it had completed is already in the content-addressed
// result cache, so the re-run is warm.
const (
	recSubmit   = "submit"
	recStart    = "start"
	recCells    = "cells"
	recFinish   = "finish"
	recArchived = "archived"
)

// journalRecord is the wire form of one journal line. Fields are a union
// across record types; see the type constants above for which apply.
type journalRecord struct {
	T      string    `json:"t"`
	ID     string    `json:"id"`
	At     time.Time `json:"at,omitempty"`
	Tenant string    `json:"tenant,omitempty"`

	// submit
	Req *Request `json:"req,omitempty"`

	// cells watermark
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	Hits  int `json:"hits,omitempty"`
	Sim   int `json:"sim,omitempty"`

	// finish / archived
	State State  `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// archived keeps enough of the request to answer GET /v1/jobs/{id}
	// without pinning the full spec.
	Kind       string    `json:"kind,omitempty"`
	Experiment string    `json:"experiment,omitempty"`
	Created    time.Time `json:"created,omitempty"`
	Finished   time.Time `json:"finished,omitempty"`
}

// ReplayedJob is one job reconstructed from the journal: either a
// terminal job to re-enter into bounded history (results were in-memory
// only and are gone — the per-cell reports survive in the result cache,
// the rendered payload does not), or a pending job to re-queue. Since
// every cell a pending job had completed is already in the
// content-addressed cache, its re-run is warm and completes
// byte-identical with near-zero recomputation.
type ReplayedJob struct {
	ID                     string
	Tenant                 string
	Req                    Request // zero for archived jobs
	Kind                   string
	Experiment             string
	State                  State // StateQueued for jobs to re-queue
	Error                  string
	Created                time.Time
	Finished               time.Time
	Done, Total, Hits, Sim int
}

// Terminal reports whether the replayed job finished before the crash.
func (r ReplayedJob) Terminal() bool { return r.State.Terminal() }

// defaultCompactBytes triggers a rewrite when the journal file outgrows
// it; watermark and start records dominate growth and all fold away.
const defaultCompactBytes = 1 << 20

// Journal is the manager's durable job log: an append-only JSONL file
// recording submissions, state transitions and per-cell completion
// watermarks, replayed at startup so a coordinator restart resumes
// queued and running jobs instead of losing them.
//
// Appends go to the end of one open file; records that a restart depends
// on are fsynced (see the record-type comment). A torn final line — the
// crash landed mid-write — is detected at open and truncated away, never
// parsed. Compaction rewrites the whole file through a temp file +
// rename (the same crash-safe idiom the result cache uses), so a crash
// during compaction leaves either the old journal or the new one, never
// a blend.
type Journal struct {
	// CompactBytes triggers Compact when the file outgrows it; <=0 means
	// the default (1 MiB). Set before use.
	CompactBytes int64

	path string

	mu    sync.Mutex
	f     *os.File
	bytes int64
}

// OpenJournal opens (creating if needed) the journal at path, replays
// its records, and returns the journal ready for appends plus every job
// the log knows about in submission order. A trailing torn line is
// truncated. The parent directory is created if missing.
func OpenJournal(path string) (*Journal, []ReplayedJob, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: open journal: %w", err)
	}
	jobs, good, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop a torn tail (crash mid-append) so future appends extend a
	// well-formed log instead of gluing onto half a record.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: truncate torn journal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: seek journal: %w", err)
	}
	j := &Journal{path: path, f: f, bytes: good}
	mJournalBytes.Add(good)
	return j, jobs, nil
}

// replay scans the journal, folding records into per-job state. It
// returns the jobs in submission order and the byte offset of the last
// fully parsed line (everything beyond it is a torn tail).
func replay(r io.Reader) ([]ReplayedJob, int64, error) {
	byID := make(map[string]*ReplayedJob)
	var order []string
	var good int64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxSubmitBytes+64*1024)
	for sc.Scan() {
		line := sc.Bytes()
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A malformed line mid-file would desynchronize everything
			// after it; only the *final* line may be torn, so stop here
			// and truncate the rest.
			break
		}
		good += int64(len(line)) + 1 // the scanner ate the newline
		j := byID[rec.ID]
		if j == nil && rec.ID != "" {
			j = &ReplayedJob{ID: rec.ID, State: StateQueued}
			byID[rec.ID] = j
			order = append(order, rec.ID)
		}
		if j == nil {
			continue
		}
		switch rec.T {
		case recSubmit:
			j.Tenant = rec.Tenant
			j.Created = rec.At
			if rec.Req != nil {
				j.Req = *rec.Req
				j.Kind = rec.Req.Kind()
				j.Experiment = rec.Req.Experiment
			}
		case recCells:
			j.Done, j.Total, j.Hits, j.Sim = rec.Done, rec.Total, rec.Hits, rec.Sim
		case recFinish:
			j.State = rec.State
			j.Error = rec.Error
			j.Finished = rec.At
		case recArchived:
			j.Tenant = rec.Tenant
			j.Kind = rec.Kind
			j.Experiment = rec.Experiment
			j.State = rec.State
			j.Error = rec.Error
			j.Created = rec.Created
			j.Finished = rec.Finished
			j.Done, j.Total, j.Hits, j.Sim = rec.Done, rec.Total, rec.Hits, rec.Sim
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return nil, 0, fmt.Errorf("serve: scan journal: %w", err)
	}
	jobs := make([]ReplayedJob, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, *byID[id])
	}
	sort.SliceStable(jobs, func(a, b int) bool {
		return jobSeq(jobs[a].ID) < jobSeq(jobs[b].ID)
	})
	return jobs, good, nil
}

// jobSeq parses the numeric suffix of a "job-000042" id; 0 if malformed.
func jobSeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Size returns the current journal size in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// append writes one record as a JSONL line, fsyncing when sync is set.
func (j *Journal) append(rec journalRecord, sync bool) error {
	data, err := json.Marshal(rec)
	if err != nil {
		mJournalErrors.Inc()
		return fmt.Errorf("serve: journal encode: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("serve: journal closed")
	}
	if _, err := j.f.Write(data); err != nil {
		mJournalErrors.Inc()
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			mJournalErrors.Inc()
			return fmt.Errorf("serve: journal sync: %w", err)
		}
	}
	j.bytes += int64(len(data))
	mJournalBytes.Add(int64(len(data)))
	mJournalRecords.With(rec.T).Inc()
	return nil
}

// Submit durably records an accepted job; the submission fails if this
// does (a job the journal never saw would silently vanish on restart).
func (j *Journal) Submit(id, tenant string, req Request, created time.Time) error {
	return j.append(journalRecord{T: recSubmit, ID: id, Tenant: tenant, Req: &req, At: created}, true)
}

// Start records that a worker picked the job up (unsynced; losing it
// replays the job as queued, which is exactly what a restart does with
// running jobs anyway).
func (j *Journal) Start(id string, at time.Time) error {
	return j.append(journalRecord{T: recStart, ID: id, At: at}, false)
}

// Cells records a per-cell completion watermark (unsynced; see Start).
func (j *Journal) Cells(id string, done, total, hits, sim int) error {
	return j.append(journalRecord{T: recCells, ID: id, Done: done, Total: total, Hits: hits, Sim: sim}, false)
}

// Finish durably records a terminal state.
func (j *Journal) Finish(id string, state State, errMsg string, at time.Time) error {
	return j.append(journalRecord{T: recFinish, ID: id, State: state, Error: errMsg, At: at}, true)
}

// compactBytes resolves the compaction threshold.
func (j *Journal) compactBytes() int64 {
	if j.CompactBytes > 0 {
		return j.CompactBytes
	}
	return defaultCompactBytes
}

// NeedsCompaction reports whether the file has outgrown the threshold.
func (j *Journal) NeedsCompaction() bool {
	return j.Size() > j.compactBytes()
}

// Compact atomically replaces the journal with the given records — the
// caller's snapshot of every job worth remembering (terminal jobs as
// archived one-liners, live jobs as fresh submit records). The rewrite
// goes through a temp file + fsync + rename, so a crash mid-compaction
// leaves a valid journal either way.
func (j *Journal) Compact(recs []journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("serve: journal closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, "journal-*.tmp")
	if err != nil {
		mJournalErrors.Inc()
		return fmt.Errorf("serve: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	var written int64
	w := bufio.NewWriter(tmp)
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			mJournalErrors.Inc()
			return fmt.Errorf("serve: compact encode: %w", err)
		}
		data = append(data, '\n')
		n, err := w.Write(data)
		written += int64(n)
		if err != nil {
			tmp.Close()
			mJournalErrors.Inc()
			return fmt.Errorf("serve: compact write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		mJournalErrors.Inc()
		return fmt.Errorf("serve: compact flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		mJournalErrors.Inc()
		return fmt.Errorf("serve: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		mJournalErrors.Inc()
		return fmt.Errorf("serve: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		mJournalErrors.Inc()
		return fmt.Errorf("serve: compact rename: %w", err)
	}
	// The old fd now points at an unlinked inode; reopen the new file
	// for further appends.
	nf, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		mJournalErrors.Inc()
		return fmt.Errorf("serve: compact reopen: %w", err)
	}
	j.f.Close()
	j.f = nf
	mJournalBytes.Add(written - j.bytes)
	j.bytes = written
	mJournalCompactions.Inc()
	return nil
}

// Close releases the journal file. Appends after Close error.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	mJournalBytes.Add(-j.bytes)
	j.bytes = 0
	return err
}
