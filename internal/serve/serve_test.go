package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeRun is an instant deterministic RunFunc for API-mechanics tests that
// don't need a real simulation.
func fakeRun(cfg config.Config, workload string) (stats.Report, error) {
	return stats.Report{
		IPC:      float64(cfg.Platform) + float64(len(workload)),
		Elapsed:  sim.Time(cfg.MaxInstructions) * sim.Nanosecond,
		EnergyPJ: map[string]float64{"laser": 1},
		Extra:    map[string]float64{},
	}, nil
}

// api wraps an httptest server over a fresh manager.
type api struct {
	t  *testing.T
	ts *httptest.Server
	m  *Manager
}

func newAPI(t *testing.T, runner *batch.Runner, workers, queue int) *api {
	t.Helper()
	m := NewManager(runner, workers, queue)
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return &api{t: t, ts: ts, m: m}
}

// do issues a request and returns (status code, body).
func (a *api) do(method, path string, body string) (int, []byte) {
	a.t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, a.ts.URL+path, rd)
	if err != nil {
		a.t.Fatal(err)
	}
	resp, err := a.ts.Client().Do(req)
	if err != nil {
		a.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		a.t.Fatal(err)
	}
	return resp.StatusCode, data
}

// submit posts a job and returns its id.
func (a *api) submit(body string) string {
	a.t.Helper()
	code, data := a.do("POST", "/v1/sweeps", body)
	if code != http.StatusAccepted {
		a.t.Fatalf("submit = %d: %s", code, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		a.t.Fatal(err)
	}
	if st.ID == "" || st.State != StateQueued {
		a.t.Fatalf("submit status = %+v", st)
	}
	return st.ID
}

// wait polls the job until it reaches a terminal state.
func (a *api) wait(id string) Status {
	a.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, data := a.do("GET", "/v1/jobs/"+id, "")
		if code != http.StatusOK {
			a.t.Fatalf("status = %d: %s", code, data)
		}
		var st Status
		if err := json.Unmarshal(data, &st); err != nil {
			a.t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	a.t.Fatalf("job %s never finished", id)
	return Status{}
}

// TestEndToEndExperimentRoundTrip is the acceptance path: submit a fig16
// job, poll to completion, fetch the JSON result and require it
// byte-identical to what `ohmfig -json fig16` emits for the same
// parameters; then resubmit the identical request and require it to
// complete with zero new simulations — every cell a cache hit.
func TestEndToEndExperimentRoundTrip(t *testing.T) {
	runner := batch.NewRunner(4, batch.NewMemCache())
	a := newAPI(t, runner, 2, 16)
	body := `{"experiment":"fig16","params":{"workloads":["lud"],"max_instructions":800}}`

	id := a.submit(body)
	st := a.wait(id)
	if st.State != StateDone {
		t.Fatalf("job = %+v", st)
	}
	// fig16 sweeps all 7 platforms in both modes for the one workload.
	if st.CellsTotal != 14 || st.CellsDone != 14 {
		t.Fatalf("cells = %d/%d, want 14/14", st.CellsDone, st.CellsTotal)
	}
	if st.Simulated != 14 || st.CacheHits != 0 {
		t.Fatalf("cold job: simulated=%d hits=%d, want 14/0", st.Simulated, st.CacheHits)
	}

	code, got := a.do("GET", "/v1/jobs/"+id+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, got)
	}
	// What ohmfig -json prints for the same parameters (same driver, same
	// encoder; the simulator is deterministic so the runs agree).
	d, _ := experiments.Lookup("fig16")
	r, err := d.RunParams(experiments.Params{Workloads: []string{"lud"}, MaxInstructions: 800})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := experiments.EncodeResultJSON(&want, "fig16", r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served result differs from ohmfig -json output:\n--- served ---\n%s\n--- ohmfig ---\n%s", got, want.Bytes())
	}

	// Warm resubmission: identical spec, zero new simulations.
	id2 := a.submit(body)
	st2 := a.wait(id2)
	if st2.State != StateDone {
		t.Fatalf("warm job = %+v", st2)
	}
	if st2.Simulated != 0 || st2.CacheHits != 14 {
		t.Fatalf("warm job: simulated=%d hits=%d, want 0/14", st2.Simulated, st2.CacheHits)
	}
	_, got2 := a.do("GET", "/v1/jobs/"+id2+"/result", "")
	if !bytes.Equal(got, got2) {
		t.Fatal("warm result differs from cold result")
	}
}

// TestSweepJobFormats covers raw SweepSpec jobs and JSON/CSV negotiation.
func TestSweepJobFormats(t *testing.T) {
	runner := &batch.Runner{Workers: 2, Cache: batch.NewMemCache(), RunFn: fakeRun}
	a := newAPI(t, runner, 1, 8)
	id := a.submit(`{"spec":{"platforms":["ohm-base"],"modes":["planar"],"workloads":["lud","sssp"]}}`)
	st := a.wait(id)
	if st.State != StateDone || st.Kind != "sweep" || st.CellsTotal != 2 {
		t.Fatalf("job = %+v", st)
	}

	code, data := a.do("GET", "/v1/jobs/"+id+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, data)
	}
	var rows []batch.Row
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Platform != "Ohm-base" || rows[1].Workload != "sssp" {
		t.Fatalf("rows = %+v", rows)
	}

	code, data = a.do("GET", "/v1/jobs/"+id+"/result?format=csv", "")
	if code != http.StatusOK {
		t.Fatalf("csv result = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "index,platform,mode,workload") {
		t.Fatalf("csv = %q", data)
	}

	// Accept-header negotiation picks CSV too.
	req, _ := http.NewRequest("GET", a.ts.URL+"/v1/jobs/"+id+"/result", nil)
	req.Header.Set("Accept", "text/csv")
	resp, err := a.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("Accept: text/csv served %q", ct)
	}
}

// gatedRunner returns a runner whose simulations block until release is
// closed, plus the started channel signalled once per begun simulation.
func gatedRunner(workers int, calls *atomic.Int64) (*batch.Runner, chan struct{}, chan struct{}) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	run := func(cfg config.Config, w string) (stats.Report, error) {
		calls.Add(1)
		started <- struct{}{}
		<-release
		return fakeRun(cfg, w)
	}
	return &batch.Runner{Workers: workers, Cache: batch.NewMemCache(), RunFn: run}, started, release
}

// TestCancelRunningAndQueuedJobs covers DELETE /v1/jobs/{id}: a running
// job stops scheduling new cells and ends cancelled; a queued job is
// cancelled in place without ever running.
func TestCancelRunningAndQueuedJobs(t *testing.T) {
	var calls atomic.Int64
	runner, started, release := gatedRunner(1, &calls)
	a := newAPI(t, runner, 1, 8)

	// 4-cell sweep on a 1-worker runner: cell 0 blocks in the gate.
	running := a.submit(`{"spec":{"platforms":["ohm-base"],"modes":["planar"],"workloads":["lud","sssp","pagerank","bfstopo"]}}`)
	<-started
	// Single job worker: this one waits in the FIFO queue.
	queued := a.submit(`{"spec":{"platforms":["oracle"],"modes":["planar"],"workloads":["lud"]}}`)

	if code, data := a.do("DELETE", "/v1/jobs/"+queued, ""); code != http.StatusOK {
		t.Fatalf("cancel queued = %d: %s", code, data)
	}
	code, data := a.do("GET", "/v1/jobs/"+queued, "")
	var st Status
	if err := json.Unmarshal(data, &st); err != nil || code != http.StatusOK {
		t.Fatalf("queued status = %d %v", code, err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued job state = %s, want cancelled immediately", st.State)
	}

	if code, data := a.do("DELETE", "/v1/jobs/"+running, ""); code != http.StatusOK {
		t.Fatalf("cancel running = %d: %s", code, data)
	}
	close(release) // let the in-flight cell drain
	st = a.wait(running)
	if st.State != StateCancelled {
		t.Fatalf("running job state = %s, want cancelled", st.State)
	}
	if st.CellsDone >= st.CellsTotal {
		t.Fatalf("cancelled job claims completion: %d/%d", st.CellsDone, st.CellsTotal)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("cancelled jobs simulated %d cells, want only the in-flight one", got)
	}

	// Results of cancelled jobs are gone; the queued job never simulated.
	if code, _ := a.do("GET", "/v1/jobs/"+running+"/result", ""); code != http.StatusGone {
		t.Fatalf("cancelled result = %d, want 410", code)
	}
}

// TestCancelledResultBody is the regression test for the cancelled-job
// result endpoint: 410 must carry a machine-readable {state, reason}
// envelope (plus the human error sentence), not a generic error body that
// clients have to string-match.
func TestCancelledResultBody(t *testing.T) {
	// A queued job cancelled before running is the clean repro: no result
	// was ever produced.
	var calls atomic.Int64
	gr, started, release := gatedRunner(1, &calls)
	b := newAPI(t, gr, 1, 8)
	blocker := b.submit(`{"spec":{"platforms":["ohm-base"],"modes":["planar"],"workloads":["lud"]}}`)
	<-started
	victim := b.submit(`{"spec":{"platforms":["oracle"],"modes":["planar"],"workloads":["lud"]}}`)
	if code, data := b.do("DELETE", "/v1/jobs/"+victim, ""); code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", code, data)
	}
	code, data := b.do("GET", "/v1/jobs/"+victim+"/result", "")
	if code != http.StatusGone {
		t.Fatalf("cancelled result = %d, want 410: %s", code, data)
	}
	var body struct {
		Error  string `json:"error"`
		State  State  `json:"state"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("cancelled result body is not the structured envelope: %v (%s)", err, data)
	}
	if body.State != StateCancelled {
		t.Fatalf("body.state = %q, want %q", body.State, StateCancelled)
	}
	if body.Reason != ReasonJobCancelled {
		t.Fatalf("body.reason = %q, want %q", body.Reason, ReasonJobCancelled)
	}
	if !strings.Contains(body.Error, victim) {
		t.Fatalf("body.error %q does not name the job", body.Error)
	}
	close(release)
	b.wait(blocker)
}

// TestTwoJobsShareOneSimulation: two concurrent jobs requesting the same
// cell must simulate it once — the single-flight guarantee across jobs.
func TestTwoJobsShareOneSimulation(t *testing.T) {
	var calls atomic.Int64
	runner, started, release := gatedRunner(2, &calls)
	a := newAPI(t, runner, 2, 8)

	spec := `{"spec":{"platforms":["ohm-base"],"modes":["planar"],"workloads":["lud"]}}`
	id1 := a.submit(spec)
	<-started // job 1 leads the cell's simulation
	id2 := a.submit(spec)

	// Wait until job 2 is running (it joins job 1's in-flight cell).
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, data := a.do("GET", "/v1/jobs/"+id2, "")
		var st Status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	st1, st2 := a.wait(id1), a.wait(id2)
	if st1.State != StateDone || st2.State != StateDone {
		t.Fatalf("states = %s/%s", st1.State, st2.State)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("two identical jobs simulated %d times, want 1", got)
	}
	if st1.Simulated+st2.Simulated != 1 || st1.CacheHits+st2.CacheHits != 1 {
		t.Fatalf("cell accounting: job1 sim=%d hit=%d, job2 sim=%d hit=%d",
			st1.Simulated, st1.CacheHits, st2.Simulated, st2.CacheHits)
	}
	// Identical results from both jobs.
	_, r1 := a.do("GET", "/v1/jobs/"+id1+"/result", "")
	_, r2 := a.do("GET", "/v1/jobs/"+id2+"/result", "")
	if !bytes.Equal(r1, r2) {
		t.Fatal("shared-cell jobs returned different results")
	}
}

// TestQueueBoundsAndValidation covers admission control and bad requests.
func TestQueueBoundsAndValidation(t *testing.T) {
	var calls atomic.Int64
	runner, started, release := gatedRunner(1, &calls)
	a := newAPI(t, runner, 1, 1)
	defer close(release)

	spec := func(w string) string {
		return fmt.Sprintf(`{"spec":{"platforms":["ohm-base"],"modes":["planar"],"workloads":[%q]}}`, w)
	}
	a.submit(spec("lud")) // running (blocked in the gate)
	<-started
	queued := a.submit(spec("sssp")) // fills the depth-1 queue
	if code, data := a.do("POST", "/v1/sweeps", spec("pagerank")); code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit = %d: %s", code, data)
	}
	// Cancelling the queued job frees its slot immediately.
	if code, _ := a.do("DELETE", "/v1/jobs/"+queued, ""); code != http.StatusOK {
		t.Fatal("cancel queued failed")
	}
	a.submit(spec("bfstopo"))
	if code, _ := a.do("POST", "/v1/sweeps", spec("pagerank")); code != http.StatusServiceUnavailable {
		t.Fatalf("queue bound lost after cancel+refill: %d", code)
	}

	for _, bad := range []struct {
		body string
		want int
	}{
		{`{"experiment":"fig99"}`, http.StatusBadRequest},
		{`{"experiment":"fig16","spec":{}}`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"unknown_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		if code, data := a.do("POST", "/v1/sweeps", bad.body); code != bad.want {
			t.Fatalf("submit %q = %d (%s), want %d", bad.body, code, data, bad.want)
		}
	}

	if code, _ := a.do("GET", "/v1/jobs/job-999999", ""); code != http.StatusNotFound {
		t.Fatal("unknown job not 404")
	}
	if code, _ := a.do("DELETE", "/v1/jobs/job-999999", ""); code != http.StatusNotFound {
		t.Fatal("unknown job DELETE not 404")
	}
	// Result of an unfinished job: 409 with its status.
	code, data := a.do("GET", "/v1/jobs/job-000001/result", "")
	if code != http.StatusConflict {
		t.Fatalf("unfinished result = %d: %s", code, data)
	}
}

// TestExperimentsListingAndHealth covers the discovery endpoints.
func TestExperimentsListingAndHealth(t *testing.T) {
	runner := &batch.Runner{Workers: 1, Cache: batch.NewMemCache(), RunFn: fakeRun}
	a := newAPI(t, runner, 1, 4)

	code, data := a.do("GET", "/v1/experiments", "")
	if code != http.StatusOK {
		t.Fatalf("experiments = %d", code)
	}
	var list []struct {
		ID          string `json:"id"`
		Title       string `json:"title"`
		PerWorkload bool   `json:"per_workload"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(experiments.IDs()) {
		t.Fatalf("listed %d drivers, registry has %d", len(list), len(experiments.IDs()))
	}
	seen := map[string]bool{}
	for _, e := range list {
		seen[e.ID] = true
		if e.Title == "" {
			t.Fatalf("%s listed without title", e.ID)
		}
	}
	if !seen["fig16"] || !seen["abl-mshr"] || !seen["endurance"] {
		t.Fatalf("listing missing expected ids: %v", seen)
	}

	code, data = a.do("GET", "/healthz", "")
	if code != http.StatusOK || !strings.Contains(string(data), `"status": "ok"`) {
		t.Fatalf("healthz = %d: %s", code, data)
	}
}

// TestShutdownDrains: Shutdown finishes queued and running jobs, then
// refuses new submissions.
func TestShutdownDrains(t *testing.T) {
	var calls atomic.Int64
	runner, started, release := gatedRunner(1, &calls)
	m := NewManager(runner, 1, 8)

	j1, err := m.Submit(Request{Spec: &batch.SweepSpec{
		Platforms: []config.Platform{config.OhmBase},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"lud"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(Request{Spec: &batch.SweepSpec{
		Platforms: []config.Platform{config.Oracle},
		Modes:     []config.MemMode{config.Planar},
		Workloads: []string{"lud"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	done := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		m.Shutdown(ctx)
		close(done)
	}()
	// Drain must let both the running and the queued job finish.
	close(release)
	<-done
	if s := j1.Status().State; s != StateDone {
		t.Fatalf("running job after drain = %s", s)
	}
	if s := j2.Status().State; s != StateDone {
		t.Fatalf("queued job after drain = %s", s)
	}
	if _, err := m.Submit(Request{Experiment: "fig16"}); err != ErrDraining {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
}

// TestExperimentIDCanonicalized: submission accepts any case (Lookup is
// case-insensitive) but status and result must carry the registry
// spelling, preserving byte-identity with `ohmfig -json <id>`.
func TestExperimentIDCanonicalized(t *testing.T) {
	runner := &batch.Runner{Workers: 1, Cache: batch.NewMemCache(), RunFn: fakeRun}
	a := newAPI(t, runner, 1, 4)
	id := a.submit(`{"experiment":"FIG20B"}`)
	st := a.wait(id)
	if st.State != StateDone || st.Experiment != "fig20b" {
		t.Fatalf("status = %+v, want canonical experiment id fig20b", st)
	}
	_, data := a.do("GET", "/v1/jobs/"+id+"/result", "")
	if !bytes.HasPrefix(data, []byte("{\n  \"id\": \"fig20b\",")) {
		t.Fatalf("result document id not canonical:\n%s", data[:40])
	}
}

// TestFinishedJobRetention: the manager evicts the oldest finished jobs
// beyond Retain so a long-lived daemon stays bounded; live jobs survive.
func TestFinishedJobRetention(t *testing.T) {
	runner := &batch.Runner{Workers: 2, Cache: batch.NewMemCache(), RunFn: fakeRun}
	m := NewManager(runner, 1, 16)
	m.Retain = 2
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	a := &api{t: t, ts: ts, m: m}

	var ids []string
	for _, w := range []string{"lud", "sssp", "pagerank", "bfstopo"} {
		id := a.submit(fmt.Sprintf(`{"spec":{"platforms":["ohm-base"],"modes":["planar"],"workloads":[%q]}}`, w))
		a.wait(id)
		ids = append(ids, id)
	}
	if got := len(m.Jobs()); got != 2 {
		t.Fatalf("retained %d finished jobs, want 2", got)
	}
	// The two oldest are evicted (404), the two newest still answer.
	for _, id := range ids[:2] {
		if code, _ := a.do("GET", "/v1/jobs/"+id, ""); code != http.StatusNotFound {
			t.Fatalf("evicted job %s = %d, want 404", id, code)
		}
	}
	for _, id := range ids[2:] {
		if code, _ := a.do("GET", "/v1/jobs/"+id+"/result", ""); code != http.StatusOK {
			t.Fatalf("retained job %s result = %d, want 200", id, code)
		}
	}
}

// TestScenarioSubmission covers the scenario form of POST /v1/sweeps: a
// declarative {preset, mode, overrides, workload} document runs as a
// one-cell sweep, with custom workloads carried through to the result rows.
func TestScenarioSubmission(t *testing.T) {
	runner := &batch.Runner{Workers: 2, Cache: batch.NewMemCache(), RunFn: fakeRun}
	a := newAPI(t, runner, 1, 8)

	id := a.submit(`{"scenario":{
		"preset": "ohm-base",
		"mode": "two-level",
		"overrides": {"optical.waveguides": 2, "xpoint.write_latency_ns": 1200,
		              "max_instructions": 800},
		"workload": {"name": "streamwrite", "apki": 120, "read_ratio": 0.35,
		             "footprint_scale": 3.0, "hot_skew": 0.8}}}`)
	st := a.wait(id)
	if st.State != StateDone || st.Kind != "sweep" || st.CellsTotal != 1 {
		t.Fatalf("scenario job = %+v", st)
	}
	code, data := a.do("GET", "/v1/jobs/"+id+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, data)
	}
	var rows []batch.Row
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Platform != "Ohm-base" || rows[0].Workload != "streamwrite" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].WorkloadDef == nil || rows[0].WorkloadDef.APKI != 120 {
		t.Fatalf("custom workload def lost from the row: %+v", rows[0])
	}
	if rows[0].Waveguides != 2 {
		t.Fatalf("override not applied: waveguides = %d", rows[0].Waveguides)
	}

	// Identical resubmission is served entirely from cache.
	id2 := a.submit(`{"scenario":{
		"preset": "ohm-base",
		"mode": "two-level",
		"overrides": {"optical.waveguides": 2, "xpoint.write_latency_ns": 1200,
		              "max_instructions": 800},
		"workload": {"name": "streamwrite", "apki": 120, "read_ratio": 0.35,
		             "footprint_scale": 3.0, "hot_skew": 0.8}}}`)
	st2 := a.wait(id2)
	if st2.Simulated != 0 || st2.CacheHits != 1 {
		t.Fatalf("warm scenario resubmit: %+v", st2)
	}
}

// TestSpecValidationAt400 pins that malformed specs and scenarios are
// rejected at submission with the offending path in the body, instead of
// becoming failed jobs.
func TestSpecValidationAt400(t *testing.T) {
	runner := &batch.Runner{Workers: 1, Cache: batch.NewMemCache(), RunFn: fakeRun}
	a := newAPI(t, runner, 1, 4)
	cases := []struct {
		body string
		want string
	}{
		{`{"spec":{"overrides":{"gpu.typo": 1}}}`, "gpu.typo"},
		{`{"spec":{"overrides":{"optical.waveguides": "many"}}}`, "optical.waveguides"},
		{`{"spec":{"workloads":["nope"]}}`, "nope"},
		{`{"spec":{"overrides":{"optical.waveguides": 0}}}`, "waveguides"},
		{`{"scenario":{"preset":"warp-drive"}}`, "warp-drive"},
		{`{"scenario":{"overrides":{"dram.typo": 1}}}`, "dram.typo"},
		{`{"scenario":{"workload":{"name":"x","apki":0}}}`, "apki"},
		{`{"spec":{},"scenario":{}}`, "exactly one"},
	}
	for _, c := range cases {
		code, data := a.do("POST", "/v1/sweeps", c.body)
		if code != http.StatusBadRequest || !strings.Contains(string(data), c.want) {
			t.Fatalf("submit %s = %d (%s), want 400 mentioning %q", c.body, code, data, c.want)
		}
	}
}

// TestDiscoveryEndpoints covers GET /v1/platforms, /v1/workloads and
// /v1/healthz.
func TestDiscoveryEndpoints(t *testing.T) {
	var calls atomic.Int64
	runner, started, release := gatedRunner(1, &calls)
	a := newAPI(t, runner, 1, 8)

	code, data := a.do("GET", "/v1/platforms", "")
	if code != http.StatusOK {
		t.Fatalf("platforms = %d", code)
	}
	var platforms []struct {
		Name          string   `json:"name"`
		Title         string   `json:"title"`
		Optical       bool     `json:"optical"`
		Heterogeneous bool     `json:"heterogeneous"`
		Modes         []string `json:"modes"`
	}
	if err := json.Unmarshal(data, &platforms); err != nil {
		t.Fatal(err)
	}
	if len(platforms) != 7 || platforms[0].Name != "origin" || platforms[5].Name != "ohm-bw" {
		t.Fatalf("platforms = %+v", platforms)
	}
	for _, p := range platforms {
		// Two memory modes x two execution modes, every token parseable.
		if p.Title == "" || len(p.Modes) != 4 {
			t.Fatalf("platform entry incomplete: %+v", p)
		}
		for _, tok := range p.Modes {
			if _, _, err := config.ParseModes(tok); err != nil {
				t.Fatalf("advertised mode %q does not parse: %v", tok, err)
			}
		}
	}
	if platforms[0].Optical || !platforms[5].Optical {
		t.Fatal("optical flags wrong")
	}

	code, data = a.do("GET", "/v1/workloads", "")
	if code != http.StatusOK {
		t.Fatalf("workloads = %d", code)
	}
	var workloads []config.Workload
	if err := json.Unmarshal(data, &workloads); err != nil {
		t.Fatal(err)
	}
	if len(workloads) != 10 || workloads[0].Name != "backp" || workloads[8].APKI != 599 {
		t.Fatalf("workloads = %+v", workloads)
	}

	// /v1/healthz: idle, then with one running and one queued job.
	readHealth := func() Health {
		code, data := a.do("GET", "/v1/healthz", "")
		if code != http.StatusOK {
			t.Fatalf("healthz = %d: %s", code, data)
		}
		var h Health
		if err := json.Unmarshal(data, &h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := readHealth()
	if h.Status != "ok" || h.JobsQueued != 0 || h.JobsRunning != 0 || h.QueueCapacity != 8 {
		t.Fatalf("idle health = %+v", h)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("negative uptime: %+v", h)
	}

	a.submit(`{"spec":{"platforms":["ohm-base"],"modes":["planar"],"workloads":["lud"]}}`)
	<-started // the job is running, blocked in the gate
	a.submit(`{"spec":{"platforms":["ohm-base"],"modes":["planar"],"workloads":["sssp"]}}`)
	h = readHealth()
	if h.JobsRunning != 1 || h.JobsQueued != 1 {
		t.Fatalf("loaded health = %+v", h)
	}
	close(release)
}
