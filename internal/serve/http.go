package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/search"
)

// NewHandler returns the daemon's HTTP API:
//
//	POST   /v1/sweeps           submit a job (sweep spec, scenario document or experiment id)
//	POST   /v1/optimize         submit an optimizer job (search spec over override axes)
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        job status with per-cell progress
//	GET    /v1/jobs/{id}/result finished results (JSON, or CSV for sweeps)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/experiments      list the registered experiment drivers
//	GET    /v1/platforms        list the platform presets (discovery)
//	GET    /v1/workloads        list the Table II workload definitions (discovery)
//	GET    /v1/healthz          liveness: uptime, queue depth, jobs running, cache stats
//	GET    /healthz             legacy liveness plus shared-cache counters
//	GET    /metrics             Prometheus text exposition of every registered metric
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(m, w, r)
	})
	mux.HandleFunc("POST /v1/optimize", func(w http.ResponseWriter, r *http.Request) {
		handleOptimize(m, w, r)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		statuses := make([]Status, len(jobs))
		for i, j := range jobs {
			statuses[i] = j.Status()
		}
		writeJSON(w, http.StatusOK, statuses)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		// Hold the job before cancelling: pruneFinished may evict the id
		// from the table concurrently, but the pointer stays valid.
		job, ok := m.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", id)
			return
		}
		m.Cancel(id)
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		handleResult(m, w, r)
	})
	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		type entry struct {
			ID          string `json:"id"`
			Title       string `json:"title"`
			PerWorkload bool   `json:"per_workload"`
		}
		var out []entry
		for _, d := range experiments.Drivers() {
			out = append(out, entry{ID: d.ID, Title: d.Title, PerWorkload: d.PerWorkload})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/platforms", func(w http.ResponseWriter, r *http.Request) {
		type entry struct {
			Name          string   `json:"name"`
			Title         string   `json:"title"`
			Optical       bool     `json:"optical"`
			Heterogeneous bool     `json:"heterogeneous"`
			Modes         []string `json:"modes"`
		}
		modes := make([]string, 0, len(config.AllModes())*len(config.AllExecModes()))
		for _, e := range config.AllExecModes() {
			for _, m := range config.AllModes() {
				modes = append(modes, config.ModeString(m, e))
			}
		}
		var out []entry
		for _, p := range config.Presets() {
			out = append(out, entry{
				Name:          p.Name,
				Title:         p.Title,
				Optical:       p.Platform.Optical(),
				Heterogeneous: p.Platform.Heterogeneous(),
				Modes:         modes,
			})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, config.Workloads())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Health())
	})
	mux.Handle("GET /metrics", obs.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := m.Runner().Stats()
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"status": "ok",
			"cache": map[string]uint64{
				"hits":       st.Hits,
				"misses":     st.Misses,
				"shared":     st.Shared,
				"put_errors": st.PutErrors,
			},
		})
	})
	return mux
}

// maxSubmitBytes bounds POST /v1/sweeps bodies: far above any legitimate
// spec, far below what giant repeated-axis lists need to stress expansion.
const maxSubmitBytes = 4 << 20

// ReasonJobCancelled is the machine-readable reason a cancelled job's
// result endpoint returns (resultUnavailable.Reason).
const ReasonJobCancelled = "job_cancelled"

// ReasonResultLost marks a done job whose result payload did not survive
// a coordinator restart: the journal replays job status, but rendered
// results lived only in the crashed process's memory. Resubmitting the
// same request recomputes it warm from the result cache.
const ReasonResultLost = "result_lost_on_restart"

// TenantHeader names the request header that selects the admission
// tenant a submission bills against; absent means DefaultTenant.
const TenantHeader = "X-Ohm-Tenant"

// maxTenantLen bounds the client-supplied tenant id (it becomes a metric
// label and a journal field).
const maxTenantLen = 64

// tenantFrom extracts and validates the tenant identity of a request.
func tenantFrom(r *http.Request) (string, error) {
	name := r.Header.Get(TenantHeader)
	if name == "" {
		return DefaultTenant, nil
	}
	if len(name) > maxTenantLen {
		return "", fmt.Errorf("tenant id longer than %d bytes", maxTenantLen)
	}
	for _, c := range name {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' {
			continue
		}
		return "", fmt.Errorf("tenant id %q: only [A-Za-z0-9._-] allowed", name)
	}
	return name, nil
}

// resultUnavailable is the structured body of GET /v1/jobs/{id}/result
// when the job reached a terminal state without a result. Error keeps the
// human sentence every other error body carries; State and Reason are for
// scripts.
type resultUnavailable struct {
	Error  string `json:"error"`
	State  State  `json:"state"`
	Reason string `json:"reason"`
}

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad %s header: %v", TenantHeader, err)
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if dr := r.URL.Query().Get("dry_run"); dr != "" && dr != "0" && dr != "false" {
		handleDryRun(w, req)
		return
	}
	submitAndRespond(m, w, tenant, req)
}

// handleOptimize is POST /v1/optimize: the body is the bare search spec
// (the `ohmbatch -optimize` file shape); it submits as an optimize job
// with the same queueing, admission, journaling and cancellation
// semantics as every other job. ?dry_run=1 validates and prices without
// enqueueing, like POST /v1/sweeps.
func handleOptimize(m *Manager, w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad %s header: %v", TenantHeader, err)
		return
	}
	var spec search.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req := Request{Optimize: &spec}
	if dr := r.URL.Query().Get("dry_run"); dr != "" && dr != "0" && dr != "false" {
		handleDryRun(w, req)
		return
	}
	submitAndRespond(m, w, tenant, req)
}

// submitAndRespond enqueues a prepared request and renders the shared
// submission response contract (202 + Location, 429 with Retry-After for
// admission, 503 for pressure, 400 otherwise).
func submitAndRespond(m *Manager, w http.ResponseWriter, tenant string, req Request) {
	job, err := m.SubmitAs(tenant, req)
	var adm *AdmissionError
	switch {
	case err == nil:
		w.Header().Set("Location", "/v1/jobs/"+job.ID())
		writeJSON(w, http.StatusAccepted, job.Status())
	case errors.As(err, &adm):
		// Over-limit tenants get 429 with Retry-After and a machine-
		// readable reason so clients can back off without string-matching.
		secs := int(adm.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, map[string]interface{}{
			"error":               adm.Error(),
			"reason":              adm.Reason,
			"tenant":              adm.Tenant,
			"retry_after_seconds": secs,
		})
	case err == ErrQueueFull, err == ErrDraining:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// dryRunResponse is the body of POST /v1/sweeps?dry_run=1: the request is
// validated and expanded but never enqueued, and the client gets the cell
// count, the DES/analytical split, and a cost estimate so it can decide
// whether to submit — or to resubmit the sweep in analytical mode first.
type dryRunResponse struct {
	Kind         string `json:"kind"`
	Valid        bool   `json:"valid"`
	DistinctKeys int    `json:"distinct_keys,omitempty"`
	// Cost is the static estimate for sweep jobs. It is deliberately
	// absent for experiment and optimize kinds, whose cells are chosen by
	// the driver/search at run time — a zero-cell estimate here used to
	// read as "free", which was a lie.
	Cost *batch.CostEstimate `json:"cost,omitempty"`
	// PlannedEvaluations is the optimizer's twin-evaluation budget (the
	// admission charge); frontier points additionally re-run under DES.
	PlannedEvaluations int `json:"planned_evaluations,omitempty"`
	// Note explains why a field is absent, for humans reading the body.
	Note string `json:"note,omitempty"`
}

// handleDryRun validates a submission without admitting it. Dry runs
// bypass admission control deliberately: they enqueue nothing and cost
// microseconds, and a tenant sizing a sweep before submitting is exactly
// the behaviour admission limits exist to encourage.
func handleDryRun(w http.ResponseWriter, req Request) {
	_, cells, err := req.prepare()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := dryRunResponse{Kind: req.Kind(), Valid: true}
	switch resp.Kind {
	case "optimize":
		resp.PlannedEvaluations = req.Optimize.PlannedEvaluations()
		resp.Note = "planned_evaluations counts analytical-twin evaluations; Pareto-frontier points are additionally confirmed under the event simulator"
	case "experiment":
		resp.Note = "experiment cells are chosen by the driver at run time; no static cost estimate exists"
	default:
		cost := batch.EstimateCost(cells)
		resp.Cost = &cost
		keys := make(map[string]struct{}, len(cells))
		for _, c := range cells {
			if k, err := c.Key(); err == nil {
				keys[k] = struct{}{}
			}
		}
		resp.DistinctKeys = len(keys)
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleResult(m *Manager, w http.ResponseWriter, r *http.Request) {
	job, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st := job.Status()
	switch st.State {
	case StateDone:
		if !job.hasResult() {
			// Done before a restart: the journal replayed the status but
			// the rendered payload is gone. 410 with the reason; a warm
			// resubmit of the same request recomputes it from the cache.
			writeJSON(w, http.StatusGone, resultUnavailable{
				Error:  fmt.Sprintf("job %s finished before a server restart; its result payload was not retained — resubmit to recompute from cache", st.ID),
				State:  st.State,
				Reason: ReasonResultLost,
			})
			return
		}
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", st.Error)
		return
	case StateCancelled:
		// A cancelled job has no result by design, not by failure: answer
		// 410 with a machine-readable envelope so clients can branch on
		// the reason instead of string-matching a generic error body.
		writeJSON(w, http.StatusGone, resultUnavailable{
			Error:  fmt.Sprintf("job %s was cancelled; no result was produced", st.ID),
			State:  st.State,
			Reason: ReasonJobCancelled,
		})
		return
	default:
		// Not finished: answer with the status so pollers can reuse the
		// response, under a conflict code so scripts notice.
		writeJSON(w, http.StatusConflict, st)
		return
	}

	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/csv") {
		format = "csv"
	}
	if format == "" {
		format = "json"
	}

	// Terminal jobs are immutable, so the result fields need no lock.
	switch {
	case st.Kind == "sweep" && format == "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := batch.WriteCSV(w, job.cells, job.reports); err != nil {
			writeError(w, http.StatusInternalServerError, "encode csv: %v", err)
		}
	case st.Kind == "sweep" && format == "json":
		w.Header().Set("Content-Type", "application/json")
		if err := batch.WriteJSON(w, job.cells, job.reports); err != nil {
			writeError(w, http.StatusInternalServerError, "encode json: %v", err)
		}
	case st.Kind == "experiment" && format == "json":
		// The exact bytes `ohmfig -json <id>` prints, so served figures are
		// interchangeable with locally generated ones.
		w.Header().Set("Content-Type", "application/json")
		if err := experiments.EncodeResultJSON(w, job.req.Experiment, job.result); err != nil {
			writeError(w, http.StatusInternalServerError, "encode result: %v", err)
		}
	case st.Kind == "optimize" && format == "json":
		// The exact bytes `ohmbatch -optimize` prints for the same (spec,
		// seed), so optimizer results are byte-identical across surfaces.
		w.Header().Set("Content-Type", "application/json")
		if err := search.WriteJSON(w, job.optResult); err != nil {
			writeError(w, http.StatusInternalServerError, "encode result: %v", err)
		}
	default:
		writeError(w, http.StatusNotAcceptable, "format %q not available for %s jobs", format, st.Kind)
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
