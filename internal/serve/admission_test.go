package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/batch"
)

// fakeClock drives an Admission's token buckets deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestAdmission(cfg AdmissionConfig) (*Admission, *fakeClock) {
	a := NewAdmission(cfg)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	a.now = clk.now
	return a, clk
}

func wantReason(t *testing.T, err error, reason string) *AdmissionError {
	t.Helper()
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("err = %v, want *AdmissionError", err)
	}
	if adm.Reason != reason {
		t.Fatalf("reason = %q, want %q", adm.Reason, reason)
	}
	if adm.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", adm.RetryAfter)
	}
	return adm
}

// TestAdmissionRateLimit exercises the token bucket: burst admits, then
// rejections with a Retry-After that shrinks as the bucket refills.
func TestAdmissionRateLimit(t *testing.T) {
	a, clk := newTestAdmission(AdmissionConfig{Rate: 1, Burst: 2})
	if err := a.Admit("alice", 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit("alice", 0); err != nil {
		t.Fatal(err)
	}
	wantReason(t, a.Admit("alice", 0), ReasonRateLimited)
	// One second at 1/s refills one token.
	clk.advance(time.Second)
	if err := a.Admit("alice", 0); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	wantReason(t, a.Admit("alice", 0), ReasonRateLimited)
}

// TestAdmissionQuotaCaps exercises the live-job and outstanding-cell
// caps, including Release returning quota.
func TestAdmissionQuotaCaps(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{MaxJobs: 2, MaxCells: 100})
	if err := a.Admit("bob", 60); err != nil {
		t.Fatal(err)
	}
	// Cells cap: 60 outstanding, +50 would exceed 100.
	wantReason(t, a.Admit("bob", 50), ReasonTenantCells)
	if err := a.Admit("bob", 40); err != nil {
		t.Fatal(err)
	}
	// Jobs cap: two live jobs is the limit.
	wantReason(t, a.Admit("bob", 0), ReasonTenantJobs)
	// Terminal job returns its quota.
	a.Release("bob", 60)
	if err := a.Admit("bob", 60); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestAdmissionTenantIsolation: one tenant exhausting its limits must not
// affect another.
func TestAdmissionTenantIsolation(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{Rate: 1, Burst: 1, MaxJobs: 1})
	if err := a.Admit("alice", 0); err != nil {
		t.Fatal(err)
	}
	wantReason(t, a.Admit("alice", 0), ReasonTenantJobs)
	if err := a.Admit("bob", 0); err != nil {
		t.Fatalf("bob throttled by alice: %v", err)
	}
}

// TestAdmissionRestoreSkipsTokens: journal replay re-counts quota without
// spending rate tokens.
func TestAdmissionRestoreSkipsTokens(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{Rate: 1, Burst: 1, MaxJobs: 2})
	a.Restore("alice", 10)
	// The bucket is untouched: a fresh submission still has its burst.
	if err := a.Admit("alice", 0); err != nil {
		t.Fatalf("restore consumed tokens: %v", err)
	}
	// But the restored job counts against MaxJobs.
	wantReason(t, a.Admit("alice", 0), ReasonTenantJobs)
}

// TestAdmissionTenantTableBound: the tenant table cannot be grown without
// limit by a client minting tenant ids; idle tenants are evicted to make
// room and tenants with live work are not.
func TestAdmissionTenantTableBound(t *testing.T) {
	a, _ := newTestAdmission(AdmissionConfig{MaxJobs: 4, MaxTenants: 3})
	for _, name := range []string{"a", "b", "c"} {
		if err := a.Admit(name, 0); err != nil {
			t.Fatal(err)
		}
		a.Release(name, 0) // all idle
	}
	if err := a.Admit("d", 0); err != nil {
		t.Fatalf("idle tenant not evicted: %v", err)
	}
	if n := a.Tenants(); n != 3 {
		t.Fatalf("tenants = %d, want 3", n)
	}
	// Now fill the table with live work: no evictable victim remains.
	a2, _ := newTestAdmission(AdmissionConfig{MaxJobs: 4, MaxTenants: 2})
	if err := a2.Admit("x", 0); err != nil {
		t.Fatal(err)
	}
	if err := a2.Admit("y", 0); err != nil {
		t.Fatal(err)
	}
	wantReason(t, a2.Admit("z", 0), ReasonTenantCapacity)
}

// TestAdmissionNil: a nil controller admits everything (the manager's
// default wiring).
func TestAdmissionNil(t *testing.T) {
	var a *Admission
	if err := a.Admit("anyone", 1<<30); err != nil {
		t.Fatal(err)
	}
	a.Release("anyone", 1<<30)
	a.Restore("anyone", 1)
	if a.Tenants() != 0 {
		t.Fatal("nil admission tracks tenants")
	}
}

// TestHTTPAdmission429 pins the HTTP contract: over-limit submissions
// answer 429 with a Retry-After header and a machine-readable JSON body;
// jobs carry their tenant in status; malformed tenant headers answer 400.
func TestHTTPAdmission429(t *testing.T) {
	runner := &batch.Runner{Workers: 1, Cache: batch.NewMemCache(), RunFn: fakeRun}
	a := newAPI(t, runner, 1, 8)
	a.m.Admission = NewAdmission(AdmissionConfig{Rate: 1.0 / 3600, Burst: 2})

	body := `{"spec":{"platforms":["ohm-base"],"modes":["planar"],"workloads":["lud"]}}`

	// Two submissions fit the burst; the third must 429.
	for i := 0; i < 2; i++ {
		code, data := a.do("POST", "/v1/sweeps", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d: %s", i, code, data)
		}
		var st Status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Tenant != DefaultTenant {
			t.Fatalf("tenant = %q, want %q", st.Tenant, DefaultTenant)
		}
	}
	req, err := http.NewRequest("POST", a.ts.URL+"/v1/sweeps", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := a.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want positive seconds", ra)
	}
	var rej struct {
		Error             string `json:"error"`
		Reason            string `json:"reason"`
		Tenant            string `json:"tenant"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	if rej.Reason != ReasonRateLimited || rej.Tenant != DefaultTenant || rej.RetryAfterSeconds < 1 {
		t.Fatalf("429 body = %+v", rej)
	}

	// A different tenant has its own bucket.
	req2, _ := http.NewRequest("POST", a.ts.URL+"/v1/sweeps", strings.NewReader(body))
	req2.Header.Set(TenantHeader, "team-ml")
	resp2, err := a.ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh tenant = %d, want 202", resp2.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "team-ml" {
		t.Fatalf("tenant = %q, want team-ml", st.Tenant)
	}

	// Malformed tenant ids are a client error, not a new tenant.
	req3, _ := http.NewRequest("POST", a.ts.URL+"/v1/sweeps", strings.NewReader(body))
	req3.Header.Set(TenantHeader, "bad tenant!")
	resp3, err := a.ts.Client().Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant header = %d, want 400", resp3.StatusCode)
	}
}
