package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
)

// parseExposition fetches a /metrics exposition and parses every sample
// line into series -> value (series is the literal "name{labels}" text),
// failing on anything the text format forbids. Metrics are process-global,
// so tests assert deltas between scrapes, never absolutes.
func parseExposition(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestJobsListEndpoint pins GET /v1/jobs: every submitted job appears, in
// submission order, with the same status document GET /v1/jobs/{id} serves.
func TestJobsListEndpoint(t *testing.T) {
	runner := &batch.Runner{Workers: 2, Cache: batch.NewMemCache(), RunFn: fakeRun}
	a := newAPI(t, runner, 2, 16)

	body := `{"spec":{"platforms":["origin"],"modes":["planar"],"workloads":["lud"],"max_instructions":1000}}`
	id1 := a.submit(body)
	a.wait(id1)
	id2 := a.submit(`{"experiment":"fig16","params":{"workloads":["lud"],"max_instructions":800}}`)
	a.wait(id2)

	code, data := a.do("GET", "/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list: HTTP %d: %s", code, data)
	}
	var list []Status
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(list))
	}
	if list[0].ID != id1 || list[1].ID != id2 {
		t.Fatalf("list order = [%s %s], want [%s %s]", list[0].ID, list[1].ID, id1, id2)
	}
	if list[0].Kind != "sweep" || list[1].Kind != "experiment" {
		t.Fatalf("kinds = [%s %s]", list[0].Kind, list[1].Kind)
	}
	for _, st := range list {
		if !st.State.Terminal() {
			t.Fatalf("job %s still %s after wait", st.ID, st.State)
		}
	}
}

// TestHealthzCacheStats pins the /v1/healthz cache block: after a job
// simulates and an identical job answers from the disk cache, the health
// document reports the entry count, on-disk bytes and a nonzero hit ratio.
func TestHealthzCacheStats(t *testing.T) {
	dc, err := batch.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runner := &batch.Runner{Workers: 2, Cache: dc, RunFn: fakeRun}
	a := newAPI(t, runner, 1, 16)

	body := `{"spec":{"platforms":["origin"],"modes":["planar"],"workloads":["lud"],"max_instructions":1000}}`
	a.wait(a.submit(body))
	a.wait(a.submit(body)) // warm: must answer from the disk cache

	code, data := a.do("GET", "/v1/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d: %s", code, data)
	}
	var h Health
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Cache == nil {
		t.Fatalf("healthz has no cache block: %s", data)
	}
	c := h.Cache
	if c.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", c.Entries)
	}
	if c.DiskBytes <= 0 {
		t.Fatalf("cache disk_bytes = %d, want > 0", c.DiskBytes)
	}
	if c.Hits < 1 || c.Misses != 1 {
		t.Fatalf("cache traffic hits=%d misses=%d, want >=1 and 1", c.Hits, c.Misses)
	}
	if c.HitRatio <= 0 || c.HitRatio >= 1 {
		t.Fatalf("hit_ratio = %v, want in (0,1)", c.HitRatio)
	}
}

// TestJobTimingBreakdown pins the machine-readable timing block on
// GET /v1/jobs/{id}: a really-simulated job reports queue wait, run time,
// summed cell wall time and a nonzero per-phase split whose components are
// bounded by the cells' wall time.
func TestJobTimingBreakdown(t *testing.T) {
	runner := batch.NewRunner(2, batch.NewMemCache()) // nil RunFn: real simulation
	a := newAPI(t, runner, 1, 16)

	body := `{"spec":{"platforms":["origin"],"modes":["planar"],"workloads":["lud"],"max_instructions":800}}`
	st := a.wait(a.submit(body))
	if st.State != StateDone {
		t.Fatalf("job = %s (%s)", st.State, st.Error)
	}
	tm := st.Timing
	if tm == nil {
		t.Fatal("finished job has no timing block")
	}
	if tm.QueueWait < 0 || tm.Run <= 0 {
		t.Fatalf("queue_wait=%v run=%v", tm.QueueWait, tm.Run)
	}
	if tm.CellsWall <= 0 {
		t.Fatalf("cells_wall = %v, want > 0", tm.CellsWall)
	}
	if tm.RemoteCells != 0 {
		t.Fatalf("remote_cells = %d on a local run", tm.RemoteCells)
	}
	if tm.Phases.IsZero() {
		t.Fatal("phase split is zero for a simulated cell")
	}
	if total := tm.Phases.Total(); total > tm.CellsWall {
		t.Fatalf("phase total %v exceeds cells wall %v", total, tm.CellsWall)
	}

	// A warm rerun answers from cache: the phase split stays zero (nothing
	// simulated) while wall time is still accounted.
	st2 := a.wait(a.submit(body))
	if st2.CacheHits != 1 {
		t.Fatalf("warm rerun cache_hits = %d, want 1", st2.CacheHits)
	}
	if !st2.Timing.Phases.IsZero() {
		t.Fatalf("warm rerun phases = %+v, want zero", st2.Timing.Phases)
	}
}

// TestMiddlewareCountsConcurrentRequests pins the HTTP middleware under
// concurrency: N parallel requests across two routes bump the per-route
// counters and latency histograms by exactly N, with normalized (bounded
// cardinality) route labels, and the exposition stays parseable throughout.
// Metrics are process-global, so everything is asserted as a delta.
func TestMiddlewareCountsConcurrentRequests(t *testing.T) {
	runner := &batch.Runner{Workers: 1, Cache: batch.NewMemCache(), RunFn: fakeRun}
	m := NewManager(runner, 1, 8)
	ts := httptest.NewServer(Instrument(nil, NewHandler(m)))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})

	healthSeries := `ohm_http_requests_total{route="/v1/healthz",method="GET",code="200"}`
	missSeries := `ohm_http_requests_total{route="/v1/jobs/{id}",method="GET",code="404"}`
	histSeries := `ohm_http_request_duration_seconds_count{route="/v1/healthz"}`
	before := parseExposition(t, ts.URL)

	const n = 40
	var wg sync.WaitGroup
	wg.Add(2 * n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/healthz")
			if err == nil {
				resp.Body.Close()
			}
		}()
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/no-such-%d", ts.URL, i))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	after := parseExposition(t, ts.URL)
	if d := after[healthSeries] - before[healthSeries]; d != n {
		t.Fatalf("healthz counter delta = %v, want %d", d, n)
	}
	if d := after[missSeries] - before[missSeries]; d != n {
		t.Fatalf("jobs/{id} 404 counter delta = %v, want %d (ids must collapse to one series)", d, n)
	}
	if d := after[histSeries] - before[histSeries]; d != n {
		t.Fatalf("healthz histogram count delta = %v, want %d", d, n)
	}
	// The scrape itself is in flight while the exposition renders, so the
	// gauge reads 1 in both scrapes; what must hold is that the burst left
	// nothing behind (every Inc matched a Dec).
	if d := after["ohm_http_in_flight_requests"] - before["ohm_http_in_flight_requests"]; d != 0 {
		t.Fatalf("in-flight gauge delta = %v, want 0 after the burst", d)
	}
}

// TestRouteLabelCardinality pins the normalization table: arbitrary paths
// must not mint new series.
func TestRouteLabelCardinality(t *testing.T) {
	cases := map[string]string{
		"/v1/jobs":                     "/v1/jobs",
		"/v1/jobs/job-000001":          "/v1/jobs/{id}",
		"/v1/jobs/job-000001/result":   "/v1/jobs/{id}/result",
		"/v1/jobs/a/b/c":               "other",
		"/v1/workers/register":         "/v1/workers/register",
		"/v1/workers/w-0001/lease":     "/v1/workers/{id}/lease",
		"/v1/workers/w-0001/complete":  "/v1/workers/{id}/complete",
		"/v1/workers/w-0001/heartbeat": "/v1/workers/{id}/heartbeat",
		"/v1/workers/w-0001/steal":     "other",
		"/metrics":                     "/metrics",
		"/v1/healthz":                  "/v1/healthz",
		"/anything/else":               "other",
		"/":                            "other",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
