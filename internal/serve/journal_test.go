package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestJournalRoundTrip pins the replay semantics: submitted jobs come
// back queued, started jobs come back queued too (a restart re-runs
// them), watermarks attach, and finished jobs come back terminal — all in
// submission order.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replayed))
	}
	now := time.Now().UTC().Truncate(time.Second)
	req := Request{Experiment: "fig16"}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Submit("job-000001", "alice", req, now))
	must(j.Start("job-000001", now))
	must(j.Cells("job-000001", 3, 12, 1, 2))
	must(j.Submit("job-000002", "bob", req, now))
	must(j.Start("job-000002", now))
	must(j.Finish("job-000002", StateDone, "", now))
	must(j.Close())

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(replayed))
	}
	r1, r2 := replayed[0], replayed[1]
	if r1.ID != "job-000001" || r2.ID != "job-000002" {
		t.Fatalf("order = %s, %s", r1.ID, r2.ID)
	}
	if r1.Terminal() || r1.State != StateQueued {
		t.Fatalf("in-flight job replayed as %s, want queued", r1.State)
	}
	if r1.Tenant != "alice" || r1.Req.Experiment != "fig16" {
		t.Fatalf("job-000001 lost its identity: %+v", r1)
	}
	if r1.Done != 3 || r1.Total != 12 || r1.Hits != 1 || r1.Sim != 2 {
		t.Fatalf("watermark = %d/%d (%d hits, %d sim)", r1.Done, r1.Total, r1.Hits, r1.Sim)
	}
	if !r1.Created.Equal(now) {
		t.Fatalf("created = %v, want %v", r1.Created, now)
	}
	if !r2.Terminal() || r2.State != StateDone || r2.Tenant != "bob" {
		t.Fatalf("finished job replayed as %+v", r2)
	}
}

// TestJournalTornTail simulates a crash mid-append: the final line is
// half a record, and reopening must truncate it away, keep everything
// before it, and accept fresh appends on the clean tail.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Submit("job-000001", "t", Request{Experiment: "fig16"}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := `{"t":"submit","id":"job-000002","req":{"exper`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 || replayed[0].ID != "job-000001" {
		t.Fatalf("replayed %+v, want only job-000001", replayed)
	}
	// The torn bytes are gone from disk, and the journal appends cleanly.
	if err := j2.Submit("job-000003", "t", Request{Experiment: "fig16"}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "job-000002") {
		t.Fatal("torn record survived reopen")
	}
	_, replayed, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 {
		t.Fatalf("after torn-tail repair replayed %d jobs, want 2", len(replayed))
	}
}

// TestJournalCompaction folds a grown journal into archived one-liners
// and checks both that the file shrank and that archived jobs replay with
// their full status.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC().Truncate(time.Second)
	fin := now.Add(3 * time.Second)
	if err := j.Submit("job-000001", "t", Request{Experiment: "fig16"}, now); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 200; i++ {
		if err := j.Cells("job-000001", i, 200, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Finish("job-000001", StateFailed, "boom", fin); err != nil {
		t.Fatal(err)
	}
	before := j.Size()
	err = j.Compact([]journalRecord{{
		T: recArchived, ID: "job-000001", Tenant: "t",
		State: StateFailed, Error: "boom",
		Kind: "experiment", Experiment: "fig16",
		Created: now, Finished: fin,
		Done: 200, Total: 200, Sim: 200,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if after := j.Size(); after >= before {
		t.Fatalf("compaction grew the journal: %d -> %d bytes", before, after)
	}
	// Appends after compaction land in the new file.
	if err := j.Submit("job-000002", "t", Request{Experiment: "fig16"}, now); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(replayed))
	}
	r := replayed[0]
	if r.State != StateFailed || r.Error != "boom" || r.Kind != "experiment" ||
		r.Experiment != "fig16" || r.Done != 200 || r.Sim != 200 ||
		!r.Created.Equal(now) || !r.Finished.Equal(fin) {
		t.Fatalf("archived job replayed as %+v", r)
	}
	if replayed[1].ID != "job-000002" || replayed[1].State != StateQueued {
		t.Fatalf("post-compaction submit replayed as %+v", replayed[1])
	}
}

// TestJournalNeedsCompaction checks the size trigger.
func TestJournalNeedsCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.CompactBytes = 256
	if j.NeedsCompaction() {
		t.Fatal("empty journal wants compaction")
	}
	for i := 0; i < 20; i++ {
		if err := j.Cells("job-000001", i, 20, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	if !j.NeedsCompaction() {
		t.Fatalf("journal at %d bytes (threshold 256) not flagged", j.Size())
	}
}
