// Package serve turns the batch sweep engine into a long-running,
// multi-tenant simulation service: submitted jobs enter a bounded FIFO
// queue, a fixed worker pool executes them on one process-wide
// batch.Runner — whose result cache, concurrency cap and single-flight
// table are shared across jobs, so two jobs requesting the same cell
// simulate it once and a warm request answers entirely from cache — and
// every job can be cancelled individually or drained together on
// shutdown. cmd/ohmserve exposes the manager over HTTP.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/stats"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Request is the submission body of POST /v1/sweeps: a raw sweep spec, a
// single scenario document, or a registered experiment id plus parameters —
// exactly one.
type Request struct {
	// Experiment names a driver from the internal/experiments registry.
	Experiment string `json:"experiment,omitempty"`
	// Params parameterizes the experiment driver.
	Params experiments.Params `json:"params,omitempty"`
	// Spec is a raw sweep over the evaluation grid (cmd/ohmbatch's shape).
	Spec *batch.SweepSpec `json:"spec,omitempty"`
	// Scenario is one declarative scenario document ({preset, mode,
	// overrides, workload} — the ohmsim -spec shape); it runs as a one-cell
	// sweep with the same cache key every other entry point produces.
	Scenario *config.Spec `json:"scenario,omitempty"`
	// Optimize is an optimizer job: a search over declared override axes
	// (POST /v1/optimize's body, also accepted here).
	Optimize *search.Spec `json:"optimize,omitempty"`
}

// Kind returns "experiment", "sweep" or "optimize".
func (r Request) Kind() string {
	if r.Optimize != nil {
		return "optimize"
	}
	if r.Spec != nil || r.Scenario != nil {
		return "sweep"
	}
	return "experiment"
}

// Validate checks that the request names exactly one runnable thing and
// that it expands cleanly — bad override paths, unknown presets and
// malformed workloads are rejected at submission with the offending path
// in the error, not when the job runs.
func (r Request) Validate() error {
	_, _, err := r.prepare()
	return err
}

// prepare validates and canonicalizes the request: the experiment id takes
// its registry spelling, a scenario becomes its one-cell sweep, and sweep
// specs are expanded and per-cell validated so a bad submission gets a 400
// here rather than a failed job later. The returned cells exist for
// validation only; Submit drops them (see its comment).
func (r Request) prepare() (Request, []batch.Cell, error) {
	n := 0
	if r.Experiment != "" {
		n++
	}
	if r.Spec != nil {
		n++
	}
	if r.Scenario != nil {
		n++
	}
	if r.Optimize != nil {
		n++
	}
	if n != 1 {
		return r, nil, errors.New("serve: request must carry exactly one of \"experiment\", \"spec\", \"scenario\" or \"optimize\"")
	}
	if r.Optimize != nil {
		if err := r.Optimize.Validate(); err != nil {
			return r, nil, fmt.Errorf("serve: %w", err)
		}
		return r, nil, nil
	}
	if r.Experiment != "" {
		// Canonicalize the id (Lookup is case-insensitive) so the job's
		// status and result document carry the registry spelling — the
		// result must stay byte-identical to `ohmfig -json <id>`.
		d, ok := experiments.Lookup(r.Experiment)
		if !ok {
			return r, nil, fmt.Errorf("serve: unknown experiment %q", r.Experiment)
		}
		r.Experiment = d.ID
		return r, nil, nil
	}
	if r.Scenario != nil {
		spec, err := batch.ScenarioSpec(*r.Scenario)
		if err != nil {
			return r, nil, fmt.Errorf("serve: %w", err)
		}
		r.Spec = &spec
	}
	cells, err := r.Spec.Cells()
	if err != nil {
		return r, nil, fmt.Errorf("serve: %w", err)
	}
	for _, c := range cells {
		if err := c.Config.Validate(); err != nil {
			return r, nil, fmt.Errorf("serve: cell %d (%s): %w", c.Index, c, err)
		}
	}
	return r, cells, nil
}

// admissionUnits is what a request charges against tenant quota: the
// expanded cell count for sweeps, the planned twin evaluations for
// optimizer jobs, 0 for experiment jobs (their totals grow as the driver
// runs).
func (r Request) admissionUnits(cells []batch.Cell) int {
	if r.Optimize != nil {
		return r.Optimize.PlannedEvaluations()
	}
	return len(cells)
}

// Status is a job's externally visible state, served by GET /v1/jobs/{id}.
// Cell counters give per-cell progress: CellsDone out of CellsTotal, split
// into CacheHits (served from the result cache or a shared in-flight
// simulation) and Simulated (fresh runs). For experiment jobs CellsTotal
// grows as the driver submits successive batches; for sweep jobs it is
// fixed up front.
type Status struct {
	ID         string     `json:"id"`
	Kind       string     `json:"kind"`
	Experiment string     `json:"experiment,omitempty"`
	Tenant     string     `json:"tenant,omitempty"`
	State      State      `json:"state"`
	CellsTotal int        `json:"cells_total"`
	CellsDone  int        `json:"cells_done"`
	CacheHits  int        `json:"cache_hits"`
	Simulated  int        `json:"simulated"`
	Error      string     `json:"error,omitempty"`
	Created    time.Time  `json:"created"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
	// Replayed marks a job reconstructed from the journal after a
	// restart. Replayed terminal jobs keep their status but not their
	// result payload (see GET /v1/jobs/{id}/result's 410 contract).
	Replayed bool `json:"replayed,omitempty"`
	// Timing is the job's machine-readable time breakdown, present once
	// the job has started; durations are integer nanoseconds.
	Timing *Timing `json:"timing,omitempty"`
	// Optimize is the optimizer's phase-level progress (per-generation
	// counters), present while an optimize job runs and in its final
	// status.
	Optimize *search.Progress `json:"optimize,omitempty"`
}

// Timing answers "where did this job's time go" from GET /v1/jobs/{id}
// alone: queue wait, wall-clock run time, summed per-cell wall time
// (exceeds run time under parallelism; includes queueing and transport
// for remote cells), how many cells remote workers computed, and the
// per-phase split of simulated cells.
type Timing struct {
	QueueWait   time.Duration `json:"queue_wait_ns"`
	Run         time.Duration `json:"run_ns"`
	CellsWall   time.Duration `json:"cells_wall_ns"`
	RemoteCells int           `json:"remote_cells"`
	// AnalyticalCells counts cells resolved by the closed-form twin
	// rather than the event simulator.
	AnalyticalCells int        `json:"analytical_cells"`
	Phases          obs.Phases `json:"phases"`
}

// Job is one submitted unit of work and its (eventual) result.
type Job struct {
	id  string
	req Request
	// orig is the request exactly as the client submitted it, before
	// prepare canonicalized it. The journal stores this form: prepare
	// rejects an already-prepared request (a canonicalized scenario
	// carries both Scenario and Spec), so replay must re-prepare from
	// the original.
	orig Request
	// tenant is the admission-control identity the job bills against.
	tenant string
	// admCells is what Admit charged (sweep cell count; 0 for
	// experiment jobs, whose totals grow as the driver runs), returned
	// by Release when the job goes terminal.
	admCells int
	// replayed marks a job reconstructed from the journal.
	replayed bool
	// released guards double-release of admission quota (run vs
	// queued-cancel both reach terminal accounting). Guarded by mu.
	released bool

	mu         sync.Mutex
	state      State
	cancel     context.CancelFunc // set while running
	cellsTotal int
	cellsDone  int
	cacheHits  int
	simulated  int
	batchBase  int // cells completed in finished batches (experiment jobs)
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time
	span       *obs.JobSpan // per-job cell timing; set when the job starts

	// Results: sweep jobs keep cells+reports (for JSON and CSV rendering);
	// experiment jobs keep the driver's typed result; optimize jobs keep
	// the search result (frontier + decision log) and the latest
	// phase-level progress snapshot.
	cells       []batch.Cell
	reports     []stats.Report
	result      experiments.Result
	optResult   *search.Result
	optProgress *search.Progress
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:         j.id,
		Kind:       j.req.Kind(),
		Experiment: j.req.Experiment,
		Tenant:     j.tenant,
		Replayed:   j.replayed,
		State:      j.state,
		CellsTotal: j.cellsTotal,
		CellsDone:  j.cellsDone,
		CacheHits:  j.cacheHits,
		Simulated:  j.simulated,
		Error:      j.errMsg,
		Created:    j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
		tm := &Timing{QueueWait: j.started.Sub(j.created)}
		if !j.finished.IsZero() {
			tm.Run = j.finished.Sub(j.started)
		} else {
			tm.Run = time.Since(j.started)
		}
		snap := j.span.Snapshot() // nil-safe
		tm.CellsWall = snap.CellsWall
		tm.RemoteCells = snap.RemoteCells
		tm.AnalyticalCells = snap.AnalyticalCells
		tm.Phases = snap.Phases
		s.Timing = tm
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if j.optProgress != nil {
		p := *j.optProgress
		s.Optimize = &p
	}
	return s
}

var (
	// ErrQueueFull rejects a submission when the FIFO queue is at capacity.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects submissions after shutdown began.
	ErrDraining = errors.New("serve: server is draining")
)

// Manager owns the job queue and worker pool.
type Manager struct {
	runner *batch.Runner

	// Retain bounds how many finished (done/failed/cancelled) jobs — and
	// their result payloads — stay queryable; the oldest are evicted
	// beyond it. <=0 means the default. Queued and running jobs are never
	// evicted. Set before the first Submit.
	Retain int

	// Executor runs every job's cells; nil means the in-process
	// batch.LocalExecutor over the shared runner. cmd/ohmserve installs
	// the dist.Dispatcher here so cells fan out to remote workers while
	// job semantics (progress, cancel, drain) stay identical. Set before
	// the first Submit.
	Executor batch.Executor

	// Logger, when non-nil, receives job lifecycle events (submitted,
	// started, finished) tagged with job ids. Set before the first Submit.
	Logger *slog.Logger

	// Journal, when non-nil, durably records job lifecycle so a restart
	// replays it (see Recover). Set before the first Submit.
	Journal *Journal

	// Admission, when non-nil, applies per-tenant rate limits and quota
	// caps to submissions. Set before the first Submit.
	Admission *Admission

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	started time.Time // for /v1/healthz uptime

	mu      sync.Mutex
	cond    *sync.Cond // signalled on queue activity and shutdown
	depth   int        // max pending jobs
	pending []*Job     // FIFO of queued jobs; cancellation splices out
	jobs    map[string]*Job
	order   []string
	seq     int
	closed  bool
}

// defaultRetain bounds finished-job history when Manager.Retain is unset:
// a long-running daemon must not grow memory with every job ever served.
const defaultRetain = 512

// NewManager starts workers goroutines executing jobs from a FIFO queue of
// depth queueDepth, all on the given shared runner. workers bounds how many
// jobs run concurrently; the runner's own worker cap bounds how many cells
// simulate concurrently across them.
func NewManager(runner *batch.Runner, workers, queueDepth int) *Manager {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		runner:  runner,
		baseCtx: ctx,
		stop:    stop,
		depth:   queueDepth,
		jobs:    make(map[string]*Job),
		started: time.Now(),
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// Runner returns the shared engine (for surfacing cache stats).
func (m *Manager) Runner() *batch.Runner { return m.runner }

// executor resolves the cell executor, defaulting to in-process.
func (m *Manager) executor() batch.Executor {
	if m.Executor != nil {
		return m.Executor
	}
	return batch.LocalExecutor{Runner: m.runner}
}

// log returns the manager's logger, or the no-op logger.
func (m *Manager) log() *slog.Logger { return obs.Or(m.Logger) }

// Health is the liveness snapshot served by GET /v1/healthz: deployments
// probe it to decide whether the daemon is up and how loaded it is.
type Health struct {
	Status        string  `json:"status"` // "ok" or "draining"
	UptimeSeconds float64 `json:"uptime_seconds"`
	JobsQueued    int     `json:"jobs_queued"`
	JobsRunning   int     `json:"jobs_running"`
	QueueCapacity int     `json:"queue_capacity"`
	Draining      bool    `json:"draining"`
	// WorkersConnected counts registered remote workers when the manager
	// executes through a distributing executor; absent otherwise.
	WorkersConnected *int `json:"workers_connected,omitempty"`
	// AnalyticalCells counts cells this process resolved in analytical
	// (closed-form twin) mode since startup; absent without a runner.
	AnalyticalCells *uint64 `json:"analytical_cells,omitempty"`
	// Cache summarizes the shared result cache; absent when the runner
	// has no cache.
	Cache *CacheHealth `json:"cache,omitempty"`
}

// CacheHealth is the result-cache summary inside /v1/healthz: size (when
// the cache can report it — disk_bytes is memory bytes for the in-memory
// cache) and the runner's traffic counters with a derived hit ratio.
type CacheHealth struct {
	// Entries and DiskBytes are -1 when the cache cannot report its size.
	Entries   int64   `json:"entries"`
	DiskBytes int64   `json:"disk_bytes"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Shared    uint64  `json:"shared"`
	PutErrors uint64  `json:"put_errors"`
	HitRatio  float64 `json:"hit_ratio"` // hits / (hits + misses); 0 with no traffic
}

// Health snapshots queue depth, running jobs and uptime.
func (m *Manager) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := Health{
		Status:        "ok",
		UptimeSeconds: time.Since(m.started).Seconds(),
		JobsQueued:    len(m.pending),
		QueueCapacity: m.depth,
		Draining:      m.closed,
	}
	if m.closed {
		h.Status = "draining"
	}
	// Lock order is m.mu before job.mu, the same as pruneFinished.
	for _, id := range m.order {
		if m.jobs[id].Status().State == StateRunning {
			h.JobsRunning++
		}
	}
	if wc, ok := m.Executor.(interface{ WorkerCount() int }); ok {
		n := wc.WorkerCount()
		h.WorkersConnected = &n
	}
	if m.runner != nil {
		n := m.runner.Stats().Analytical
		h.AnalyticalCells = &n
	}
	if m.runner != nil && m.runner.Cache != nil {
		rs := m.runner.Stats()
		ch := &CacheHealth{
			Entries:   -1,
			DiskBytes: -1,
			Hits:      rs.Hits,
			Misses:    rs.Misses,
			Shared:    rs.Shared,
			PutErrors: rs.PutErrors,
		}
		if total := rs.Hits + rs.Misses; total > 0 {
			ch.HitRatio = float64(rs.Hits) / float64(total)
		}
		if sc, ok := m.runner.Cache.(batch.StatCache); ok {
			cs := sc.CacheStats()
			ch.Entries, ch.DiskBytes = cs.Entries, cs.Bytes
		}
		h.Cache = ch
	}
	return h
}

// Submit validates and enqueues a job under the default tenant.
func (m *Manager) Submit(req Request) (*Job, error) {
	return m.SubmitAs(DefaultTenant, req)
}

// SubmitAs validates and enqueues a job billed to the given tenant. The
// expanded cell list prepare built for validation is deliberately
// dropped: a few hundred bytes of spec may expand to ~MaxCells cells,
// and pinning that on every queued job would amplify small submissions
// into resident memory — run() re-expands (microseconds) when the job
// actually starts.
func (m *Manager) SubmitAs(tenantName string, req Request) (*Job, error) {
	orig := req
	req, cells, err := req.prepare()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrDraining
	}
	// Only live queued jobs count against the bound: cancelling a queued
	// job frees its slot immediately.
	if len(m.pending) >= m.depth {
		return nil, ErrQueueFull
	}
	// Admission runs after the cheap structural checks so a full queue
	// answers 503 (server pressure) rather than charging tenant tokens.
	units := req.admissionUnits(cells)
	if err := m.Admission.Admit(tenantName, units); err != nil {
		return nil, err
	}
	m.seq++
	job := &Job{
		id:       fmt.Sprintf("job-%06d", m.seq),
		req:      req,
		orig:     orig,
		tenant:   tenantName,
		admCells: units,
		state:    StateQueued,
		created:  time.Now().UTC(),
	}
	// Durably record the submission before it becomes visible: a job the
	// journal never saw would silently vanish on restart. On journal
	// failure the submission is refused whole (quota returned, seq burned).
	if m.Journal != nil {
		if err := m.Journal.Submit(job.id, tenantName, orig, job.created); err != nil {
			m.Admission.Release(tenantName, job.admCells)
			m.log().Error("journal append failed; submission refused",
				obs.KeyJobID, job.id, "err", err.Error())
			return nil, err
		}
	}
	m.pending = append(m.pending, job)
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.cond.Signal()
	mJobsSubmitted.With(req.Kind()).Inc()
	mJobsQueued.Inc()
	m.log().Info("job submitted",
		obs.KeyJobID, job.id, "kind", req.Kind(), "experiment", req.Experiment,
		obs.KeyTenant, tenantName, "queued", len(m.pending))
	return job, nil
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel stops a job: a queued job is cancelled immediately and its queue
// slot freed, a running job has its context cancelled — in-flight cells
// drain, unstarted cells never run. Cancelling a terminal job is a no-op.
// It reports whether the job exists.
func (m *Manager) Cancel(id string) bool {
	// Lock order everywhere is m.mu before job.mu (pruneFinished relies on
	// the same order).
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	job.mu.Lock()
	var cancel context.CancelFunc
	var finished bool
	switch job.state {
	case StateQueued:
		job.state = StateCancelled
		job.finished = time.Now().UTC()
		finished = true
		for i, p := range m.pending {
			if p == job {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				mJobsQueued.Dec()
				break
			}
		}
		// Cancelled before a worker picked it up: this is its terminal
		// accounting (run() never sees it, or early-returns).
		mJobsFinished.With(string(StateCancelled)).Inc()
		m.releaseLocked(job)
		m.log().Info("job cancelled while queued", obs.KeyJobID, job.id)
	case StateRunning:
		cancel = job.cancel
	}
	job.mu.Unlock()
	m.mu.Unlock()
	if finished && m.Journal != nil {
		if err := m.Journal.Finish(job.id, StateCancelled, "", job.finished); err != nil {
			m.log().Warn("journal finish failed", obs.KeyJobID, job.id, "err", err.Error())
		}
	}
	if cancel != nil {
		cancel()
	}
	return true
}

// releaseLocked returns a terminal job's admission quota exactly once.
// Caller holds job.mu.
func (m *Manager) releaseLocked(job *Job) {
	if job.released {
		return
	}
	job.released = true
	m.Admission.Release(job.tenant, job.admCells)
}

// worker executes queued jobs until shutdown empties the queue.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pending) == 0 {
			m.mu.Unlock()
			return
		}
		job := m.pending[0]
		m.pending = m.pending[1:]
		mJobsQueued.Dec()
		m.mu.Unlock()
		m.run(job)
	}
}

// run executes one job to a terminal state.
func (m *Manager) run(job *Job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting in the queue
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now().UTC()
	job.cancel = cancel
	span := &obs.JobSpan{}
	job.span = span
	queueWait := job.started.Sub(job.created)
	job.mu.Unlock()

	// Every cell executed on this job's behalf — locally by the runner or
	// remotely via a dispatcher — finds the span in its context and folds
	// its wall time and phase split into the job's timing breakdown.
	ctx = obs.WithSpan(ctx, span)

	mJobsRunning.Inc()
	if m.Journal != nil {
		// Unsynced: losing this record replays the job as queued, which
		// is what a restart does with running jobs anyway.
		if err := m.Journal.Start(job.id, job.started); err != nil {
			m.log().Warn("journal start failed", obs.KeyJobID, job.id, "err", err.Error())
		}
	}
	m.log().Info("job started",
		obs.KeyJobID, job.id, "kind", job.req.Kind(), "experiment", job.req.Experiment,
		obs.KeyTenant, job.tenant, "queue_wait", queueWait.String())

	// progress folds every batch the job submits into cumulative per-cell
	// counters. Drivers submit batches sequentially, so tracking one open
	// batch (batchBase + the current batch's done/total) is exact.
	progress := func(done, total int, hit bool) {
		job.mu.Lock()
		job.cellsDone = job.batchBase + done
		job.cellsTotal = job.batchBase + total
		if hit {
			job.cacheHits++
		} else {
			job.simulated++
		}
		if done == total {
			job.batchBase += total
		}
		cd, ct, ch, cs := job.cellsDone, job.cellsTotal, job.cacheHits, job.simulated
		job.mu.Unlock()
		// Watermark every 16th cell (and batch boundaries): purely
		// informational across restarts — replay re-runs the job warm
		// from the cache regardless — so the journal grows slowly.
		if m.Journal != nil && (done == total || cd%16 == 0) {
			_ = m.Journal.Cells(job.id, cd, ct, ch, cs)
		}
	}

	var err error
	if job.req.Optimize != nil {
		// The optimizer submits successive evaluation batches through the
		// shared executor exactly like an experiment driver, so the cell
		// counters accumulate through the same progress closure; OnPhase
		// additionally surfaces per-generation search progress.
		var res *search.Result
		res, err = search.Run(ctx, *job.req.Optimize, search.Options{
			Executor: m.executor(),
			Progress: progress,
			OnPhase: func(p search.Progress) {
				job.mu.Lock()
				job.optProgress = &p
				job.mu.Unlock()
			},
		})
		if err == nil {
			job.mu.Lock()
			job.optResult = res
			job.mu.Unlock()
		}
	} else if job.req.Spec != nil {
		// Re-expansion of the submit-validated spec (Submit dropped the
		// cells to keep queued jobs small); it cannot fail differently
		// than it did at validation, but the error path stays honest.
		var cells []batch.Cell
		cells, err = job.req.Spec.Cells()
		if err == nil {
			job.mu.Lock()
			job.cellsTotal = len(cells)
			job.mu.Unlock()
			var reports []stats.Report
			reports, err = m.executor().RunContext(ctx, cells, progress)
			if err == nil {
				job.mu.Lock()
				job.cells, job.reports = cells, reports
				job.mu.Unlock()
			}
		}
	} else {
		d, _ := experiments.Lookup(job.req.Experiment) // validated at submit
		o := job.req.Params.Options()
		o.Engine = &experiments.Engine{Runner: m.runner, Executor: m.executor(), Ctx: ctx, Progress: progress}
		var res experiments.Result
		res, err = d.Run(o, job.req.Params.AblWorkload())
		if err == nil {
			job.mu.Lock()
			job.result = res
			job.mu.Unlock()
		}
	}

	job.mu.Lock()
	job.finished = time.Now().UTC()
	job.cancel = nil
	switch {
	case err == nil:
		job.state = StateDone
	case errors.Is(err, context.Canceled):
		job.state = StateCancelled
	default:
		job.state = StateFailed
		job.errMsg = err.Error()
	}
	state := job.state
	runFor := job.finished.Sub(job.started)
	done, hits := job.cellsDone, job.cacheHits
	finishedAt, errMsg := job.finished, job.errMsg
	m.releaseLocked(job)
	job.mu.Unlock()

	mJobsRunning.Dec()
	mJobsFinished.With(string(state)).Inc()
	mJobDuration.ObserveDuration(runFor)
	if m.Journal != nil {
		if jerr := m.Journal.Finish(job.id, state, errMsg, finishedAt); jerr != nil {
			m.log().Warn("journal finish failed", obs.KeyJobID, job.id, "err", jerr.Error())
		}
	}
	lvl := slog.LevelInfo
	if state == StateFailed {
		lvl = slog.LevelWarn
	}
	m.log().Log(context.Background(), lvl, "job finished",
		obs.KeyJobID, job.id, "state", string(state), obs.KeyTenant, job.tenant,
		"cells", done, "cache_hits", hits,
		"duration", runFor.String(), "err", job.errMsg)
	m.pruneFinished()
	if m.Journal != nil && m.Journal.NeedsCompaction() {
		if err := m.compactJournal(); err != nil {
			m.log().Warn("journal compaction failed", "err", err.Error())
		}
	}
}

// hasResult reports whether the job holds a renderable result payload.
// Journal-replayed terminal jobs keep their status but not their result
// (payloads lived only in the crashed process's memory).
func (j *Job) hasResult() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result != nil || j.reports != nil || j.optResult != nil
}

// compactJournal rewrites the journal as one record per remembered job:
// terminal jobs fold to archived one-liners (status only — their result
// payloads are in memory and their cells in the result cache), live jobs
// to fresh submit records. Start/watermark noise from job execution is
// what compaction exists to shed.
func (m *Manager) compactJournal() error {
	m.mu.Lock()
	recs := make([]journalRecord, 0, len(m.order))
	for _, id := range m.order {
		job := m.jobs[id]
		st := job.Status() // lock order: m.mu before job.mu
		if st.State.Terminal() {
			recs = append(recs, journalRecord{
				T: recArchived, ID: id, Tenant: job.tenant,
				State: st.State, Error: st.Error,
				Kind: st.Kind, Experiment: st.Experiment,
				Created: st.Created, Finished: *st.Finished,
				Done: st.CellsDone, Total: st.CellsTotal,
				Hits: st.CacheHits, Sim: st.Simulated,
			})
		} else {
			recs = append(recs, journalRecord{
				T: recSubmit, ID: id, Tenant: job.tenant,
				Req: &job.orig, At: st.Created,
			})
		}
	}
	m.mu.Unlock()
	return m.Journal.Compact(recs)
}

// Recover loads journal-replayed jobs into the manager: terminal jobs
// re-enter bounded history (status queryable, result payload gone), jobs
// that were queued or running re-queue and run again — warm, since every
// cell they completed is already in the content-addressed result cache,
// so the re-run is byte-identical with near-zero recomputation. Call
// once, after setting Journal/Admission/Executor and before serving
// traffic. Replayed live jobs keep their original ids; the id sequence
// resumes past the highest replayed id.
func (m *Manager) Recover(replayed []ReplayedJob) {
	if len(replayed) == 0 {
		return
	}
	requeued, terminal, failed := 0, 0, 0
	for _, r := range replayed {
		m.mu.Lock()
		if r.ID == "" || m.jobs[r.ID] != nil {
			m.mu.Unlock()
			continue
		}
		if s := jobSeq(r.ID); s > m.seq {
			m.seq = s
		}
		job := &Job{
			id:       r.ID,
			orig:     r.Req,
			tenant:   r.Tenant,
			replayed: true,
			created:  r.Created,
		}
		if r.Terminal() {
			job.state = r.State
			job.errMsg = r.Error
			job.finished = r.Finished
			if job.finished.IsZero() {
				job.finished = job.created
			}
			job.released = true // terminal before the crash; nothing charged
			job.req = r.Req
			if job.req.Kind() != r.Kind && r.Kind != "" {
				// Archived records drop the request; keep Kind honest by
				// reconstructing the minimal shape Status needs.
				job.req = Request{Experiment: r.Experiment}
				switch r.Kind {
				case "sweep":
					job.req = Request{Spec: &batch.SweepSpec{}}
				case "optimize":
					job.req = Request{Optimize: &search.Spec{}}
				}
			}
			job.cellsDone, job.cellsTotal = r.Done, r.Total
			job.cacheHits, job.simulated = r.Hits, r.Sim
			m.jobs[job.id] = job
			m.order = append(m.order, job.id)
			m.mu.Unlock()
			terminal++
			mJournalReplayed.With("terminal").Inc()
			continue
		}
		// Live at the crash: re-prepare the original request and re-queue.
		req, cells, err := r.Req.prepare()
		if err != nil {
			// The request no longer validates (registry or schema moved
			// under it across the restart): record a failed job rather
			// than dropping it silently.
			job.state = StateFailed
			job.errMsg = fmt.Sprintf("replay: %v", err)
			job.finished = time.Now().UTC()
			job.released = true
			job.req = r.Req
			m.jobs[job.id] = job
			m.order = append(m.order, job.id)
			m.mu.Unlock()
			if m.Journal != nil {
				_ = m.Journal.Finish(job.id, StateFailed, job.errMsg, job.finished)
			}
			failed++
			mJournalReplayed.With("failed").Inc()
			m.log().Warn("replayed job no longer valid",
				obs.KeyJobID, job.id, "err", err.Error())
			continue
		}
		job.req = req
		job.state = StateQueued
		job.admCells = req.admissionUnits(cells)
		// Re-count quota without charging rate tokens: replay is the
		// server's doing, not client traffic.
		m.Admission.Restore(job.tenant, job.admCells)
		m.pending = append(m.pending, job)
		m.jobs[job.id] = job
		m.order = append(m.order, job.id)
		m.cond.Signal()
		mJobsQueued.Inc()
		m.mu.Unlock()
		requeued++
		mJournalReplayed.With("requeued").Inc()
		m.log().Info("job replayed from journal",
			obs.KeyJobID, job.id, obs.KeyTenant, job.tenant,
			"kind", job.req.Kind(), "experiment", job.req.Experiment,
			"cells_done_before_crash", r.Done, "cells_total", r.Total)
	}
	m.pruneFinished()
	if m.Journal != nil {
		if err := m.compactJournal(); err != nil {
			m.log().Warn("journal compaction failed", "err", err.Error())
		}
	}
	m.log().Info("journal replayed",
		"requeued", requeued, "terminal", terminal, "invalid", failed)
}

// pruneFinished evicts the oldest terminal jobs beyond the retention
// bound so a long-lived daemon's job table (and the result payloads it
// pins) stays bounded. Evicted ids answer 404 afterwards.
func (m *Manager) pruneFinished() {
	retain := m.Retain
	if retain <= 0 {
		retain = defaultRetain
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	finished := 0
	for _, id := range m.order {
		if st := m.jobs[id].Status().State; st.Terminal() {
			finished++
		}
	}
	for i := 0; finished > retain && i < len(m.order); {
		id := m.order[i]
		if st := m.jobs[id].Status().State; !st.Terminal() {
			i++
			continue
		}
		delete(m.jobs, id)
		m.order = append(m.order[:i], m.order[i+1:]...)
		finished--
	}
}

// Shutdown drains the manager: intake stops (Submit returns ErrDraining),
// queued and running jobs are given until ctx expires to finish, then
// everything still running is cancelled and awaited. Safe to call once.
func (m *Manager) Shutdown(ctx context.Context) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: cancel every remaining job (including queued ones the
		// workers will now skip) and wait for in-flight cells to drain.
		m.stop()
		for _, job := range m.Jobs() {
			m.Cancel(job.ID())
		}
		<-done
	}
	m.stop()
}
