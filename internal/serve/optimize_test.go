package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/search"
	"repro/internal/stats"
)

// optimizeBody is a small real spec: analytical-twin evaluations over two
// axes, one DES confirmation, fidelity capped so the whole job runs in
// well under a second.
const optimizeBody = `{
  "base": {"preset": "ohm-bw", "mode": "two-level", "workload": "pagerank",
           "overrides": {"max_instructions": 3000}},
  "axes": [
    {"path": "optical.waveguides", "min": 1, "max": 8},
    {"path": "gpu.mshr_entries", "values": [8, 16, 32]}
  ],
  "objectives": [{"metric": "throughput"}, {"metric": "energy_pj"}],
  "search": {"algorithm": "random", "seed": 3, "budget": 6, "confirm_top": 1}
}`

// TestOptimizeEndToEnd submits an optimizer job over HTTP, watches the
// per-generation progress surface, and requires the result bytes to be
// identical to what search.Run produces in-process for the same spec —
// the same contract `ohmbatch -optimize` is pinned to.
func TestOptimizeEndToEnd(t *testing.T) {
	runner := batch.NewRunner(4, batch.NewMemCache())
	a := newAPI(t, runner, 2, 16)

	// Dry run: priced by planned twin evaluations (1 baseline + budget),
	// no static cell-cost estimate (serve half of the dry-run bugfix).
	code, data := a.do("POST", "/v1/optimize?dry_run=1", optimizeBody)
	if code != http.StatusOK {
		t.Fatalf("dry run = %d: %s", code, data)
	}
	var dry struct {
		Kind               string              `json:"kind"`
		PlannedEvaluations int                 `json:"planned_evaluations"`
		Cost               *batch.CostEstimate `json:"cost"`
	}
	if err := json.Unmarshal(data, &dry); err != nil {
		t.Fatal(err)
	}
	if dry.Kind != "optimize" || dry.PlannedEvaluations != 7 {
		t.Fatalf("dry run = %+v, want kind=optimize planned=7", dry)
	}
	if dry.Cost != nil {
		t.Fatalf("dry run priced an optimizer job with a static cell estimate: %+v", dry.Cost)
	}

	code, data = a.do("POST", "/v1/optimize", optimizeBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Kind != "optimize" {
		t.Fatalf("submitted kind = %q, want optimize", st.Kind)
	}
	final := a.wait(st.ID)
	if final.State != StateDone {
		t.Fatalf("job = %+v", final)
	}
	if final.Optimize == nil || final.Optimize.Evaluated == 0 || final.Optimize.FrontierSize == 0 {
		t.Fatalf("terminal status lacks optimizer progress: %+v", final.Optimize)
	}

	code, got := a.do("GET", "/v1/jobs/"+st.ID+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, got)
	}

	// Reference: the same spec through search.Run on a fresh runner and
	// cold cache must produce the exact bytes the server returned.
	var spec search.Spec
	if err := json.Unmarshal([]byte(optimizeBody), &spec); err != nil {
		t.Fatal(err)
	}
	ref := batch.NewRunner(4, batch.NewMemCache())
	res, err := search.Run(context.Background(), spec, search.Options{
		Executor: batch.LocalExecutor{Runner: ref},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := search.WriteJSON(&want, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served optimizer result differs from in-process search.Run (%d vs %d bytes)",
			len(got), want.Len())
	}

	// An identical resubmit reuses the mode-salted cache: done again,
	// byte-identical.
	code, data = a.do("POST", "/v1/optimize", optimizeBody)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit = %d: %s", code, data)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if f := a.wait(st.ID); f.State != StateDone {
		t.Fatalf("warm job = %+v", f)
	}
	_, got2 := a.do("GET", "/v1/jobs/"+st.ID+"/result", "")
	if !bytes.Equal(got2, got) {
		t.Fatal("warm optimizer rerun bytes differ")
	}
}

// gatedExecutor passes batches through to the wrapped executor only after
// gate closes; entered is signaled when a batch arrives, so a test can
// cancel a job that is provably mid-generation.
type gatedExecutor struct {
	inner   batch.Executor
	gate    chan struct{}
	entered chan struct{}
}

func (g *gatedExecutor) RunContext(ctx context.Context, cells []batch.Cell, progress batch.Progress) ([]stats.Report, error) {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.inner.RunContext(ctx, cells, progress)
}

// TestOptimizeCancelMidGeneration cancels an optimizer job while a
// generation batch is in flight: the job must land in cancelled (not
// failed), and the worker slot must come free for the next job.
func TestOptimizeCancelMidGeneration(t *testing.T) {
	runner := batch.NewRunner(2, batch.NewMemCache())
	runner.RunFn = fakeRun
	m := NewManager(runner, 1, 8)
	gated := &gatedExecutor{
		inner:   batch.LocalExecutor{Runner: runner},
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 1),
	}
	m.Executor = gated
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})

	var spec search.Spec
	if err := json.Unmarshal([]byte(optimizeBody), &spec); err != nil {
		t.Fatal(err)
	}
	job, err := m.Submit(Request{Optimize: &spec})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gated.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("optimizer never reached its first batch")
	}
	if !m.Cancel(job.ID()) {
		t.Fatalf("cancel %s returned false", job.ID())
	}
	st := waitStatus(t, job, "cancelled", func(st Status) bool { return st.State.Terminal() })
	if st.State != StateCancelled {
		t.Fatalf("mid-generation cancel = %+v, want cancelled", st)
	}
	close(gated.gate) // later jobs flow through the executor unhindered

	// The slot is free: a small sweep completes after the cancellation.
	next, err := m.Submit(Request{Spec: specOf(t, `{"platforms":["oracle"],"modes":["planar"],"workloads":["lud"]}`)})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitStatus(t, next, "done", func(st Status) bool { return st.State.Terminal() }); st.State != StateDone {
		t.Fatalf("job after cancel = %+v", st)
	}
}
